module specsyn

go 1.22
