#!/usr/bin/env bash
# Crash-recovery smoke test for specsynd's durable session store.
#
# Starts the daemon with a -state-dir, builds the example designs, streams
# reload/estimate traffic at it, SIGKILLs it mid-stream (no drain, no
# flush), restarts it against the same directory, and gates on:
#
#   1. the restarted daemon reports zero recovery failures,
#   2. every session built before the kill is back (session-count parity),
#   3. every recovered session still serves estimates with HTTP 200.
#
# Needs: go, curl, jq. Run from the repository root:
#
#   ./scripts/crash_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
ADDR=127.0.0.1:18650
BASE="http://$ADDR"
WORK=$(mktemp -d)
STATE="$WORK/state"
PID=

cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_ready() {
    for _ in $(seq 1 100); do
        if [ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")" = 200 ]; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: daemon never became ready" >&2
    exit 1
}

echo "== build"
go build -o "$WORK/specsynd" ./cmd/specsynd

echo "== start (state dir $STATE)"
"$WORK/specsynd" -addr "$ADDR" -state-dir "$STATE" -checkpoint-every 2 &
PID=$!
wait_ready

DESIGNS="ans fuzzy vol"
echo "== build sessions: $DESIGNS"
for name in $DESIGNS; do
    jq -n --rawfile vhdl "testdata/$name.vhd" --rawfile prob "testdata/$name.prob" \
        '{vhdl: $vhdl, profile: $prob}' |
        curl -sf -X POST "$BASE/v1/designs/$name/build" -d @- >/dev/null
done
BUILT=$(curl -sf "$BASE/v1/stats" | jq .sessions)

echo "== stream traffic, then SIGKILL mid-stream"
for i in $(seq 1 30); do
    for name in $DESIGNS; do
        # Edit-and-revert reloads keep the journal and checkpoints moving;
        # estimates exercise the read path. Failures past the kill point are
        # expected — the daemon dies under this loop.
        jq -n --rawfile vhdl "testdata/$name.vhd" '{vhdl: ($vhdl + "-- edit\n")}' |
            curl -s -o /dev/null -X POST "$BASE/v1/designs/$name/reload" -d @- || true
        curl -s -o /dev/null -X POST "$BASE/v1/designs/$name/estimate" -d '{}' || true
    done
    if [ "$i" = 7 ]; then
        kill -9 "$PID"
        break
    fi
done
wait "$PID" 2>/dev/null || true
PID=

echo "== restart against the same state dir"
"$WORK/specsynd" -addr "$ADDR" -state-dir "$STATE" &
PID=$!
wait_ready

STATS=$(curl -sf "$BASE/v1/stats")
RECOVERED=$(echo "$STATS" | jq .recovered)
FAILURES=$(echo "$STATS" | jq .recovery_failures)
SESSIONS=$(echo "$STATS" | jq .sessions)
echo "recovered=$RECOVERED failures=$FAILURES sessions=$SESSIONS (built $BUILT)"

if [ "$FAILURES" != 0 ]; then
    echo "FAIL: $FAILURES sessions failed to recover" >&2
    exit 1
fi
if [ "$SESSIONS" != "$BUILT" ]; then
    echo "FAIL: session parity: $SESSIONS recovered vs $BUILT built" >&2
    exit 1
fi
for name in $DESIGNS; do
    if ! curl -sf -X POST "$BASE/v1/designs/$name/estimate" -d '{}' >/dev/null; then
        echo "FAIL: recovered session $name does not estimate" >&2
        exit 1
    fi
done

echo "PASS: $SESSIONS/$BUILT sessions recovered after SIGKILL, all serving"
