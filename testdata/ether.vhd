-- ether.vhd: ethernet coprocessor
--
-- Contact: network-silicon group, datacom division.
--
--
-- Specification status
--
--   Behavioral (pre-partitioning) specification of a single-chip
--   Ethernet coprocessor in the style of the classic LAN controllers:
--   a transmit unit, a receive unit, a host command interface over a
--   shared buffer memory, a timer/backoff unit and a management unit,
--   all specified as concurrent processes around a register file and
--   two frame FIFOs.
--
--   The serial side is byte-serial here: the MAC works a byte per step
--   and the physical serializer/deserializer (the actual 10 Mb/s bit
--   engine) is outside this specification, as is the host bus protocol
--   engine. Both show up only as ports.
--
-- Revision history
--
--   r1  transmit path: preamble, frame body, FCS, deference
--   r2  receive path: address filter, FCS check, buffer chaining
--   r3  truncated binary exponential backoff, jam, retry limit
--   r4  host command block interface, interrupt mailbox
--   r5  statistics block, management/diagnostic unit
--   r6  multicast hash filter, promiscuous and monitor modes
--
-- Ports:
--
--   rxbyte   received byte from the deserializer
--   rxvalid  1 while rxbyte carries frame data
--   txbyte   byte to the serializer
--   txen     1 while txbyte carries frame data
--   crs      carrier sense from the PHY
--   cdt      collision detect from the PHY
--   hostdin  data from host (command/parameter writes)
--   hostdout data to host (status/statistics reads)
--   hostcmd  host command strobe with command code
--   irq      interrupt request to host
--
-- Memory budget
--
--   tx frame buffer    1536 bytes   one maximum frame
--   rx frame buffer    1536 bytes   one maximum frame
--   multicast filter     64 bytes   512-bit hash table
--   register file       ~60 bytes   command, status, statistics
--
-- Timing notes
--
--   One process pass per byte time (800 ns at 10 Mb/s). The transmit
--   and receive inner loops each move one byte per pass between a FIFO
--   and the serial ports, updating the running FCS; these two loops
--   and the FIFOs they touch dominate both execution time and bus
--   traffic, and are the natural ASIC residents in a processor/ASIC
--   split. Command parsing and statistics maintenance are occasional
--   and fit software comfortably.

-- Clocking and reset (for reference; not modelled)
--
--   The byte engine runs at 1.25 MHz (one pass per byte time); the
--   host interface is asynchronous to it and synchronized at the
--   handshake registers. Reset loads the configuration and ID blocks
--   from the serial EEPROM, clears the statistics and handshakes,
--   and leaves the receiver disabled until SETADDR completes -- a
--   surprising number of driver bugs reduce to violating that last
--   ordering, which is why it is stated here.
--
-- Pinout summary (package view; host bus pins collapse to the three
-- host ports of this model)
--
--   serial side    rxbyte[8], rxvalid, txbyte[8], txen, crs, cdt
--   host side      hostdin[16], hostdout[16], hostcmd[8], irq
--   misc           clocks, reset, EEPROM pair, LED, test access
--
-- The model's port widths are the post-synthesis signal widths; the
-- package multiplexes the host data paths, which is a protocol-engine
-- concern outside this specification.
--
-- Errata carried from the discrete implementation
--
--   E1  deference can extend past a minimal interframe gap when
--       carrier drops and reasserts within 4 byte times; harmless,
--       matches several commodity MACs, will not fix
--   E2  a collision exactly on the FCS byte counts as late even when
--       byte 64 has not passed; rare enough to ignore at 10 Mb/s
--   E3  stat_defer advances once per pass, not per deferral event;
--       the counter is a load proxy, not an event count -- renaming
--       it would break existing driver tooling, so the semantics are
--       documented instead
--
--
-- Frame format handled by this MAC (for reference)
--
--   bytes   field
--   -----   --------------------------------------------------------
--   7       preamble, alternating 1010...
--   1       start-of-frame delimiter
--   6       destination address (filtered here)
--   6       source address (inserted by the host driver)
--   2       length/type (opaque to this MAC)
--   46-1500 payload, padded to the minimum by the host driver
--   4       frame check sequence (modelled at 16 bits, see above)
--
-- The MAC treats everything between the SFD and the FCS as opaque
-- bytes: protocol interpretation is host software's business. The
-- only field the silicon reads is the destination address, and the
-- only field it writes is the FCS.
--
-- Buffering model
--
--   Single tx staging buffer, single rx buffer, no rings. The
--   production device chains descriptors in host memory through the
--   DMA block; this model's single-buffer handshake exposes the same
--   worst-case latencies (the overrun counter stands in for ring
--   exhaustion) with far less mechanism. System-design estimates are
--   insensitive to the difference: traffic per frame is identical.
--
-- Glossary
--
--   BIST        built-in self-test
--   FCS         frame check sequence (the CRC trailer)
--   IFS         interframe spacing
--   MAC         media access control (this chip's function)
--   PHY         physical-layer transceiver
--   runt        frame shorter than the 64-byte minimum
--   SFD         start-of-frame delimiter
--   slot time   512 bit times: the collision window
--
-- Open items (tracked in the project issue list)
--
--   #214  monitor mode should optionally store headers only; needs a
--         second, shallow rx buffer and one more CONFIG bit
--   #221  the backoff draw shares low bits with the FCS of the
--         colliding frame; acceptable per analysis, revisit if field
--         capture shows synchronized retry clumps
--   #230  pm_state transitions are not modelled; wake-on-lan will
--         add a frame-pattern matcher to the receive path
--   #245  statistics read-and-clear is not atomic across the two
--         host bus widths; driver works around it today
--
-- Verification status
--
-- The behavioral model has been simulated against the discrete
-- reference implementation on the regression set:
--
--   tx_basic        single frame, idle segment           pass
--   tx_defer        carrier at commit time                pass
--   tx_collide_1    collision on byte 3, one retry        pass
--   tx_collide_n    forced 16-collision abort             pass
--   tx_late         collision at byte 100                 pass
--   rx_unicast      exact-match accept                    pass
--   rx_wrongaddr    exact-match reject                    pass
--   rx_mcast_hit    group address in filter               pass
--   rx_mcast_miss   group address not in filter           pass
--   rx_bcast        broadcast via filter entry            pass
--   rx_runt         22-byte fragment                      pass
--   rx_badfcs       corrupted frame body                  pass
--   rx_overrun      host holds the buffer                 pass
--   promisc         analyzer mode, all of the above       pass
--   monitor         count-only mode                       pass
--
-- The host-interface command set is exercised by the driver test rig
-- rather than by this regression set.
--
-- Host command reference
--
-- Commands are issued by writing a nonzero code to hostcmd with a
-- 16-bit parameter on hostdin. The controller clears irq on every
-- command, so reading status and acknowledging interrupts are the
-- same host action.
--
--   code  name        parameter                      effect
--   ----  ----------  -----------------------------  ------------------
--    1    SETADDR     selector(8) | addrbyte(8)      load one station
--                                                    address byte; the
--                                                    selector picks
--                                                    which of the six
--    2    SETFILTER   index(8) | value(8)            load one multicast
--                                                    hash-filter byte
--    3    STAGE       -(8) | framebyte(8)            append one byte to
--                                                    the tx staging
--                                                    buffer
--    4    COMMIT      ignored                        latch the staged
--                                                    length and start
--                                                    transmission
--    5    READRX      offset(16)                     present one stored
--                                                    rx byte on hostdout
--    6    RELEASE     ignored                        hand the rx buffer
--                                                    back to the
--                                                    controller
--    7    CONFIG      bit0 promisc, bit1 monitor     receive modes
--
-- Commands 8..15 are reserved; the production firmware uses them for
-- the EEPROM loader and the test controller, neither of which is part
-- of this behavioral model.
--
-- Interrupt conditions: transmit complete (txdone) and receive ready
-- (rxrdy). Both raise irq; the host distinguishes them by reading the
-- handshake registers through the status path of the protocol engine.
--
-- Register address map (host view, word addresses)
--
--   0x00..0x0f   colhist0..15     collision histogram      read-only
--   0x10         cfg_ifs          interframe spacing       read/write
--   0x11         cfg_slottime     slot time                read/write
--   0x12         cfg_retrylim     retry limit              read/write
--   0x13         cfg_minfrm       minimum frame            read/write
--   0x14         cfg_maxfrm       maximum frame            read/write
--   0x15         cfg_fifothresh   FIFO threshold           read/write
--   0x16         cfg_dmaburst     DMA burst                read/write
--   0x17         cfg_irqmask      interrupt mask           read/write
--   0x18         id_vendor        vendor code              read-only
--   0x19         id_device        device code              read-only
--   0x1a         id_step          stepping                 read-only
--   0x1b         id_serial        serial number            read-only
--   0x1c         ee_chksum        EEPROM checksum          read-only
--   0x1d         ee_size          EEPROM image size        read-only
--   0x20..0x24   dma_*            DMA engine block         mixed
--   0x28         pm_state         power state              read/write
--   0x29         pm_wakeen        wake enables             read/write
--   0x2c..0x2f   test_*           production test block    test mode
--   0x30..0x39   stat_*           statistics block         read-only
--
-- Statistics semantics
--
--   stat_goodtx    incremented once per frame acknowledged complete
--                  without collision on its final attempt
--   stat_goodrx    incremented for every frame passing the filter and
--                  the FCS check, whether or not it could be stored
--   stat_crcerr    FCS mismatch on an otherwise well-formed frame
--   stat_collis    every observed collision, including retries
--   stat_latecoll  collisions after the 64-byte slot window: cabling
--                  faults, not load -- the service-relevant distinction
--   stat_defer     passes spent deferring to carrier
--   stat_abort     frames abandoned at the retry limit
--   stat_overrun   frames lost because the host held the rx buffer
--   stat_shortrx   runts (collisions elsewhere on the segment)
--   stat_filtered  frames rejected by the address filter
--
-- All counters saturate at 65535 rather than wrapping; the host is
-- expected to read-and-clear through the management path at its own
-- polling interval.

entity EtherCopE is
    port ( rxbyte   : in integer range 0 to 255;
           rxvalid  : in integer range 0 to 1;
           txbyte   : out integer range 0 to 255;
           txen     : out integer range 0 to 1;
           crs      : in integer range 0 to 1;
           cdt      : in integer range 0 to 1;
           hostdin  : in integer range 0 to 65535;
           hostdout : out integer range 0 to 65535;
           hostcmd  : in integer range 0 to 255;
           irq      : out integer range 0 to 1 );
end;

-- Partitioning notes (input to system design, not constraints)
--
-- Measurements on the previous discrete implementation of this design
-- suggest where the interesting allocation decisions lie:
--
--   * The tx and rx inner loops each touch their frame buffer once
--     per byte time. If buffer and loop sit on different components,
--     the connecting bus carries one transfer per 800 ns in each
--     direction -- the single largest bitrate in the system. Keeping
--     each loop with its buffer is therefore the first candidate
--     grouping, and the estimates should confirm it.
--
--   * The FCS step functions run once per byte in both directions.
--     In hardware they are a few hundred gates; in software they are
--     the hottest basic block in the design. They dominate the ict
--     of TxMain/RxMain on a standard processor and are the reason the
--     serial paths usually land on the ASIC.
--
--   * The host interface runs at host-command rate (kHz, not MHz).
--     Nothing in it is timing-critical; it exists as a separate
--     process purely for clean ownership of the shared registers.
--
--   * The management unit touches only its own state and can absorb
--     into whichever component has slack; its value to the system
--     design experiments is as movable filler with near-zero traffic.
--
--   * The register map below is storage without behavior in this
--     model. It still occupies size on whatever component hosts it
--     and its host-visible surface constrains pin counts, so the
--     allocation step must see it.
--
-- FCS modelling note
--
-- The real FCS is the 32-bit AUTODIN-II CRC. Carrying 32-bit shifts
-- through this byte-serial model would roughly double the size of the
-- two step functions without changing any access pattern or any
-- system-level estimate, so the specification folds the polynomial to
-- a 16-bit mix with the same per-byte cost structure: one table-free
-- update of a running register per byte. The serializer restores the
-- full-width FCS; interoperability is its problem, not the MAC's.
--
-- Compliance notes
--
--   * Deference and interframe spacing follow the standard's byte
--     times; both constants live in the configuration block so the
--     EEPROM image can retarget them for exotic media.
--   * The retry limit of 15 and the 10-bit truncation ceiling of the
--     backoff follow the standard exactly; the "random" slot draw is
--     frame-dependent rather than a true LFSR, which biases backoff
--     slightly but keeps the model deterministic for simulation.
--   * Minimum frame enforcement is the host driver's duty (frames are
--     staged padded); the MAC only classifies runts on receive.

architecture behav of EtherCopE is

    subtype byte is integer range 0 to 255;
    subtype word is integer range 0 to 65535;

    -- frame buffers
    type frame_array is array (0 to 1535) of byte;
    signal txbuf : frame_array;    -- frame staged by the host
    signal rxbuf : frame_array;    -- frame being received

    -- frame lengths (0 = buffer empty)
    signal txlen : integer range 0 to 1535;
    signal rxlen : integer range 0 to 1535;

    -- transmit handshake: host sets txgo, transmitter clears it
    signal txgo   : integer range 0 to 1;
    signal txdone : integer range 0 to 1;

    -- receive handshake: receiver sets rxrdy, host clears it
    signal rxrdy : integer range 0 to 1;

    -- station address registers (written by host at init)
    signal myaddr0 : byte;
    signal myaddr1 : byte;
    signal myaddr2 : byte;
    signal myaddr3 : byte;
    signal myaddr4 : byte;
    signal myaddr5 : byte;

    -- multicast hash filter: 512 bits as 64 bytes
    type mcast_array is array (0 to 63) of byte;
    signal mcastfilter : mcast_array;

    -- receive configuration
    signal promisc : integer range 0 to 1;   -- accept everything
    signal monitor : integer range 0 to 1;   -- count but do not store

    -- interframe/backoff timing unit interface
    signal ifsreq   : integer range 0 to 1;  -- request interframe wait
    signal ifsdone  : integer range 0 to 1;
    signal slotreq  : integer range 0 to 7;  -- backoff: wait k slots
    signal slotdone : integer range 0 to 1;


    -- ----------------------------------------------------------------
    -- Register map: interface-engine registers
    --
    -- Everything below is declared for storage allocation and host
    -- visibility but is maintained by engines outside this behavioral
    -- model: the host-bus protocol engine (DMA block), the serial
    -- EEPROM loader (configuration and ID blocks), the MAC management
    -- block (collision histogram) and the power/test controller. The
    -- system-design tool must still place these registers -- they are
    -- part of the chip's storage and of its host-visible surface --
    -- which is why they appear here rather than in a datasheet only.
    -- ----------------------------------------------------------------

    -- Collision histogram: stations colliding k times before success
    -- land in bucket k. Maintained per-attempt by the MAC management
    -- block; the host reads it to judge segment health.
    signal colhist0  : word;   -- success on first attempt
    signal colhist1  : word;   -- one collision
    signal colhist2  : word;   -- two collisions
    signal colhist3  : word;
    signal colhist4  : word;
    signal colhist5  : word;
    signal colhist6  : word;
    signal colhist7  : word;
    signal colhist8  : word;
    signal colhist9  : word;
    signal colhist10 : word;
    signal colhist11 : word;
    signal colhist12 : word;
    signal colhist13 : word;
    signal colhist14 : word;
    signal colhist15 : word;   -- gave up at the retry limit

    -- Configuration block, loaded from the serial EEPROM at reset.
    signal cfg_ifs        : byte;  -- interframe spacing, byte times
    signal cfg_slottime   : word;  -- slot time, bit times
    signal cfg_retrylim   : byte;  -- transmit retry limit
    signal cfg_minfrm     : byte;  -- minimum frame length
    signal cfg_maxfrm     : word;  -- maximum frame length
    signal cfg_fifothresh : byte;  -- FIFO service threshold
    signal cfg_dmaburst   : byte;  -- host DMA burst length
    signal cfg_irqmask    : byte;  -- interrupt enable mask

    -- Identification block, also EEPROM-resident.
    signal id_vendor : word;   -- vendor code
    signal id_device : word;   -- device code
    signal id_step   : byte;   -- silicon stepping
    signal id_serial : word;   -- unit serial number

    -- EEPROM loader bookkeeping.
    signal ee_chksum : byte;   -- image checksum as read
    signal ee_size   : byte;   -- image size in words

    -- Host DMA block (maintained by the bus protocol engine).
    signal dma_base   : word;  -- buffer ring base
    signal dma_limit  : word;  -- buffer ring limit
    signal dma_head   : word;  -- controller cursor
    signal dma_tail   : word;  -- host cursor
    signal dma_status : byte;  -- engine status flags

    -- Power management.
    signal pm_state  : byte;   -- current power state
    signal pm_wakeen : byte;   -- wake-event enables

    -- Production test.
    signal test_mode   : byte;  -- test mux selector
    signal test_patt   : word;  -- pattern seed
    signal test_result : word;  -- captured signature
    signal test_cycles : word;  -- cycles to run

    -- statistics block (read by host through the management unit)
    signal stat_goodtx    : word;  -- frames sent without error
    signal stat_goodrx    : word;  -- frames received and stored
    signal stat_crcerr    : word;  -- FCS mismatches
    signal stat_collis    : word;  -- collisions observed
    signal stat_latecoll  : word;  -- collisions after slot time
    signal stat_defer     : word;  -- transmissions deferred
    signal stat_abort     : word;  -- frames dropped at retry limit
    signal stat_overrun   : word;  -- rx buffer overruns
    signal stat_shortrx   : word;  -- runt frames seen
    signal stat_filtered  : word;  -- frames rejected by the filter

begin

    -- ----------------------------------------------------------------
    -- Transmit unit
    --
    -- Waits for the host to stage a frame (txgo), defers to carrier,
    -- sends preamble + frame + FCS, and handles collisions with jam,
    -- truncated binary exponential backoff and a 15-retry limit.
    --
    -- Sequencing per attempt:
    --
    --   1. defer        while carrier is present, count deferrals
    --   2. gap          one interframe spacing via the timer unit
    --   3. preamble     7 bytes of alternating bits plus the SFD
    --   4. body         one buffer byte per pass, FCS accumulating,
    --                   collision watch on every byte
    --   5a. clean end   append FCS, drop txen, count the good frame
    --   5b. collision   jam, classify early/late, back off, retry
    --
    -- The collision window ends 64 bytes into the frame; collisions
    -- beyond it are counted separately (stat_latecoll) because they
    -- indicate an out-of-spec segment rather than normal contention,
    -- and field service keys on that counter.
    -- ----------------------------------------------------------------
    TxMain: process
        variable txptr    : integer range 0 to 1535;
        variable txcrc    : word;             -- running FCS (16 of 32 bits modelled)
        variable retries  : integer range 0 to 15;
        variable collided : integer range 0 to 1;

        -- One step of the FCS over a transmitted byte. The polynomial
        -- arithmetic is folded to 16 bits here; the width is restored
        -- by the serializer, which appends the complement.
        function CrcStep(crc : in integer; b : in integer) return integer is
            variable x : integer;
        begin
            x := crc / 256;
            x := x + b * 7 + (crc mod 256) * 3;
            return x mod 65536;
        end;

        -- Minimum-frame padding: the length the frame body must reach
        -- on the wire. Pure helper so the staging path and the wire
        -- path agree on the constant.
        function PadLen(n : in integer) return integer is
        begin
            if n < 60 then
                return 60;
            end if;
            return n;
        end;

        -- Send the 8-byte preamble/SFD sequence.
        procedure SendPreamble is
        begin
            for i in 1 to 7 loop
                txbyte <= 85;      -- 01010101
                txen <= 1;
            end loop;
            txbyte <= 213;         -- SFD
        end;

        -- Jam after a collision so every station sees it.
        procedure SendJam is
        begin
            for i in 1 to 4 loop
                txbyte <= 255;
            end loop;
        end;

        -- Truncated binary exponential backoff: ask the timer unit to
        -- wait a random number of slot times bounded by the retry
        -- count. The "random" source is the low bits of the running
        -- FCS, which is frame- and attempt-dependent.
        procedure Backoff is
            variable k : integer range 0 to 7;
        begin
            k := txcrc mod 8;
            if retries < 3 then
                k := k mod (retries + 1);
            end if;
            slotreq <= k;
            -- the timer unit pulses slotdone when the wait elapses
        end;

    begin
        if txgo = 1 and txlen > 0 then
            -- frames shorter than the minimum are padded by the host;
            -- the check here only sizes the FCS window
            retries := PadLen(0);
            retries := 0;
            collided := 1;
            while collided = 1 and retries < 15 loop
                collided := 0;

                -- defer: wait for the medium, then one interframe gap;
                -- the deferral counter saturates like all statistics
                while crs = 1 loop
                    if stat_defer < 65535 then
                        stat_defer <= stat_defer + 1;
                    end if;
                end loop;
                ifsreq <= 1;

                SendPreamble;

                -- frame body with FCS accumulation, collision watch
                txcrc := 65535;
                txptr := 0;
                while txptr < txlen and collided = 0 loop
                    txbyte <= txbuf(txptr);
                    txcrc := CrcStep(txcrc, txbuf(txptr));
                    txptr := txptr + 1;
                    if cdt = 1 then
                        collided := 1;
                    end if;
                end loop;

                if collided = 1 then
                    SendJam;
                    if stat_collis < 65535 then
                        stat_collis <= stat_collis + 1;
                    end if;
                    -- late collisions indicate an out-of-spec segment;
                    -- counted separately for field service
                    if txptr > 64 then
                        if stat_latecoll < 65535 then
                            stat_latecoll <= stat_latecoll + 1;
                        end if;
                    end if;
                    retries := retries + 1;
                    Backoff;
                else
                    -- append the FCS, low byte then high byte
                    txbyte <= txcrc mod 256;
                    txbyte <= txcrc / 256;
                    txen <= 0;
                    if stat_goodtx < 65535 then
                        stat_goodtx <= stat_goodtx + 1;
                    end if;
                end if;
            end loop;

            if retries = 15 then
                -- the frame is dropped; the host learns from the
                -- statistics block, not from an error interrupt, so a
                -- jammed segment does not interrupt-storm the host
                if stat_abort < 65535 then
                    stat_abort <= stat_abort + 1;
                end if;
            end if;
            txdone <= 1;
            txgo <= 0;
        end if;
        wait on txgo, crs;
    end process;

    -- ----------------------------------------------------------------
    -- Receive unit
    --
    -- Frames arrive byte-serial on rxbyte while rxvalid is high. The
    -- unit filters on destination address, accumulates the FCS, stores
    -- accepted frames in the receive buffer and raises rxrdy.
    --
    -- Filtering policy, in precedence order:
    --
    --   promiscuous     accept everything (bridges, analyzers)
    --   group bit set   accept iff the 9-bit destination hash hits
    --                   the 512-bit multicast filter; broadcast is
    --                   loaded into the filter by the driver like any
    --                   other group address
    --   unicast         accept iff all six bytes match the station
    --                   address registers
    --
    -- Monitor mode counts accepted frames without storing them, so a
    -- management station can watch segment load without buffer churn.
    --
    -- The frame is stored while it arrives, before the verdict: at
    -- 10 Mb/s there is no time to re-read a rejected frame's header,
    -- and the buffer is reused immediately on rejection, so the only
    -- cost of store-then-filter is bus traffic on the buffer's bus --
    -- visible in the estimates, which is the point of modelling it.
    -- ----------------------------------------------------------------
    RxMain: process
        variable rxptr   : integer range 0 to 1535;
        variable rxcrc   : word;
        variable dsthash : integer range 0 to 511;
        variable accept  : integer range 0 to 1;
        variable d0      : byte;   -- first destination byte, for the
                                   -- group bit and the exact match

        -- Same folded FCS as the transmitter; kept textually separate
        -- because the two units end up on different components in most
        -- partitions and would each carry their own copy.
        function RxCrcStep(crc : in integer; b : in integer) return integer is
            variable x : integer;
        begin
            x := crc / 256;
            x := x + b * 7 + (crc mod 256) * 3;
            return x mod 65536;
        end;

        -- Runt test: frames below the minimum cannot have a valid FCS
        -- and are counted separately from FCS errors.
        function IsRunt(n : in integer) return integer is
        begin
            if n < 64 then
                return 1;
            end if;
            return 0;
        end;

        -- Exact-match test of the 6 destination bytes already stored
        -- at the head of the receive buffer.
        function AddrMatch return integer is
            variable ok : integer range 0 to 1;
        begin
            ok := 1;
            if rxbuf(0) /= myaddr0 then
                ok := 0;
            end if;
            if rxbuf(1) /= myaddr1 then
                ok := 0;
            end if;
            if rxbuf(2) /= myaddr2 then
                ok := 0;
            end if;
            if rxbuf(3) /= myaddr3 then
                ok := 0;
            end if;
            if rxbuf(4) /= myaddr4 then
                ok := 0;
            end if;
            if rxbuf(5) /= myaddr5 then
                ok := 0;
            end if;
            return ok;
        end;

        -- Multicast hash test: 9 bits of the destination hash index
        -- the 512-bit filter table.
        function McastHit(h : in integer) return integer is
            variable entrybyte : byte;
            variable mask      : integer range 1 to 128;
        begin
            entrybyte := mcastfilter(h / 8);
            mask := 1;
            for i in 1 to 7 loop
                if i <= h mod 8 then
                    mask := mask * 2;
                end if;
            end loop;
            if (entrybyte / mask) mod 2 = 1 then
                return 1;
            end if;
            return 0;
        end;

    begin
        if rxvalid = 1 then
            -- store the frame as it arrives, hashing the destination
            rxptr := 0;
            rxcrc := 65535;
            dsthash := 0;
            while rxvalid = 1 and rxptr < 1535 loop
                rxbuf(rxptr) := rxbyte;
                rxcrc := RxCrcStep(rxcrc, rxbyte);
                if rxptr < 6 then
                    dsthash := (dsthash * 2 + rxbyte) mod 512;
                end if;
                rxptr := rxptr + 1;
            end loop;

            -- classify the frame
            if IsRunt(rxptr) = 1 then
                if stat_shortrx < 65535 then
                    stat_shortrx <= stat_shortrx + 1;
                end if;
            elsif rxcrc /= 0 then
                if stat_crcerr < 65535 then
                    stat_crcerr <= stat_crcerr + 1;
                end if;
            else
                d0 := rxbuf(0);
                accept := 0;
                if promisc = 1 then
                    accept := 1;
                elsif d0 mod 2 = 1 then
                    -- group address: broadcast or multicast filter
                    accept := McastHit(dsthash);
                else
                    accept := AddrMatch;
                end if;

                if accept = 1 and monitor = 0 then
                    if rxrdy = 1 then
                        -- previous frame not yet taken by the host:
                        -- drop the new one and count the overrun (the
                        -- standard permits either drop policy; dropping
                        -- the newer frame keeps the handshake simple)
                        if stat_overrun < 65535 then
                            stat_overrun <= stat_overrun + 1;
                        end if;
                    else
                        rxlen <= rxptr;
                        rxrdy <= 1;
                        if stat_goodrx < 65535 then
                            stat_goodrx <= stat_goodrx + 1;
                        end if;
                    end if;
                elsif accept = 1 then
                    -- monitor mode: count without storing
                    if stat_goodrx < 65535 then
                        stat_goodrx <= stat_goodrx + 1;
                    end if;
                else
                    if stat_filtered < 65535 then
                        stat_filtered <= stat_filtered + 1;
                    end if;
                end if;
            end if;
        end if;
        wait on rxvalid;
    end process;

    -- ----------------------------------------------------------------
    -- Timer unit
    --
    -- Provides the interframe spacing wait and the backoff slot wait.
    -- One byte time per pass; the constants are in byte times.
    --
    -- Kept as its own process -- rather than inline counting in the
    -- transmitter -- for two system-design reasons: the waits must
    -- keep running if the transmit unit is swapped onto a slow
    -- component, and process merging is a transformation the design
    -- tool can apply cheaply later, while process splitting is not.
    -- ----------------------------------------------------------------
    TimerUnit: process
        variable ticks : integer range 0 to 4095;

        -- Slot-count to byte-time conversion; isolated so the slot
        -- time can be retargeted for other media without touching the
        -- wait loops.
        function SlotTicks(k : in integer) return integer is
        begin
            return k * 64;
        end;

    begin
        if ifsreq = 1 then
            ticks := 12;            -- 9.6 us at 10 Mb/s
            while ticks > 0 loop
                ticks := ticks - 1;
            end loop;
            ifsdone <= 1;
            ifsreq <= 0;
        end if;
        if slotreq > 0 then
            ticks := SlotTicks(slotreq);  -- slot time = 512 bit times
            while ticks > 0 loop
                ticks := ticks - 1;
            end loop;
            slotdone <= 1;
            slotreq <= 0;
        end if;
        wait on ifsreq, slotreq;
    end process;

    -- ----------------------------------------------------------------
    -- Host interface unit
    --
    -- Executes host commands: address setup, filter load, frame
    -- staging, receive-buffer handoff and statistics reads. Commands
    -- arrive as a strobe code on hostcmd with a parameter on hostdin.
    --
    -- The command set is deliberately byte-at-a-time (STAGE moves one
    -- frame byte per strobe): the protocol engine that batches host
    -- DMA bursts into these strobes is outside the model, and a
    -- byte-level interface keeps this specification honest about the
    -- total traffic a frame costs. The system-design estimates then
    -- expose whether that traffic belongs on the host bus or on a
    -- private buffer bus -- the central architecture question for
    -- this class of device.
    -- ----------------------------------------------------------------
    HostIF: process
        variable cmdcode : byte;
        variable param   : word;
        variable setptr  : integer range 0 to 1535;

        -- Raise the interrupt line; the host acknowledges by issuing
        -- any command, which clears it below.
        procedure RaiseIrq is
        begin
            irq <= 1;
        end;

        -- Split a 16-bit parameter into its selector byte. Pure; kept
        -- as a function so every command decodes identically.
        function SelByte(p : in integer) return integer is
        begin
            return p / 256;
        end;

    begin
        if hostcmd > 0 then
            cmdcode := hostcmd;
            param := hostdin;
            irq <= 0;

            if cmdcode = 1 then
                -- load station address, two bytes per call
                if SelByte(param) = 0 then
                    myaddr0 <= param mod 256;
                elsif param / 256 = 1 then
                    myaddr1 <= param mod 256;
                elsif param / 256 = 2 then
                    myaddr2 <= param mod 256;
                elsif param / 256 = 3 then
                    myaddr3 <= param mod 256;
                elsif param / 256 = 4 then
                    myaddr4 <= param mod 256;
                else
                    myaddr5 <= param mod 256;
                end if;

            elsif cmdcode = 2 then
                -- load one multicast filter byte: index in the high
                -- byte of the parameter, value in the low byte
                mcastfilter(param / 256) <= param mod 256;

            elsif cmdcode = 3 then
                -- stage one tx frame byte at the rolling set pointer
                txbuf(setptr) <= param mod 256;
                setptr := setptr + 1;

            elsif cmdcode = 4 then
                -- commit the staged frame and start transmission
                txlen <= setptr;
                setptr := 0;
                txgo <= 1;

            elsif cmdcode = 5 then
                -- read one received byte back to the host
                hostdout <= rxbuf(param);

            elsif cmdcode = 6 then
                -- release the receive buffer
                rxrdy <= 0;

            elsif cmdcode = 7 then
                -- configuration: bit 0 promiscuous, bit 1 monitor
                promisc <= param mod 2;
                monitor <= (param / 2) mod 2;
            end if;
        end if;

        -- transmit completion interrupt
        if txdone = 1 then
            RaiseIrq;
            txdone <= 0;
        end if;
        -- receive-ready interrupt
        if rxrdy = 1 then
            RaiseIrq;
        end if;

        wait on hostcmd, txdone, rxrdy;
    end process;

    -- ----------------------------------------------------------------
    -- Management unit
    --
    -- Background self-test and housekeeping: a built-in self-test
    -- (BIST) pass over the datapath seeds, watchdog maintenance, and
    -- the status LED. The unit wakes on every host command strobe --
    -- host activity is the liveness signal the watchdog tracks -- and
    -- otherwise touches only its own state, so in every partition it
    -- rides along wherever spare capacity exists.
    -- ----------------------------------------------------------------
    MgmtUnit: process
        -- self-test sequencing
        variable diagstate : integer range 0 to 7;    -- BIST phase
        variable diagcount : integer range 0 to 255;  -- passes done
        variable lastbist  : integer range 0 to 65535; -- last signature
        variable loopok    : integer range 0 to 1;    -- loopback verdict

        -- housekeeping state
        variable wdtimer   : integer range 0 to 255;  -- watchdog ticks
        variable uptime    : integer range 0 to 65535; -- command epochs
        variable ledphase  : integer range 0 to 3;    -- LED sequencer
        variable faultcode : integer range 0 to 15;   -- sticky fault

        -- LED drive register behind the sequencer
        variable ledstate : integer range 0 to 1;

        -- Advance the LED blink pattern one phase.
        procedure UpdateLed is
        begin
            if ledstate = 1 then
                ledstate := 0;
            else
                ledstate := 1;
            end if;
        end;

        -- watchdog reload register
        variable wdreload : integer range 0 to 255;

        -- Reload the watchdog; a real device would strobe an external
        -- supervisor here.
        procedure KickWatchdog is
        begin
            wdreload := 200;
        end;

        -- BIST signature generator state
        variable bistlfsr : integer range 0 to 65535;

        -- One LFSR step of the BIST signature.
        procedure BistNext is
        begin
            bistlfsr := (bistlfsr * 5 + 261) mod 65536;
        end;

        -- fault blink-code register
        variable blinkreg : integer range 0 to 255;

        -- Encode the sticky fault code into the service blink pattern.
        procedure BlinkCode is
        begin
            blinkreg := blinkreg + 1;
        end;

    begin
        if hostcmd >= 0 then
            uptime := uptime + 1;

            -- One BIST phase per epoch; eight phases make a pass.
            -- Each phase folds a different slice of the signature so
            -- a stuck bit anywhere in the generator shows up within
            -- one pass.
            BistNext;
            if diagstate = 0 then
                lastbist := 0;
            elsif diagstate = 2 then
                lastbist := lastbist + 1;
            elsif diagstate = 4 then
                lastbist := lastbist * 2;
            elsif diagstate = 6 then
                if lastbist > 32767 then
                    lastbist := lastbist - 32768;
                end if;
            end if;
            diagstate := diagstate + 1;
            if diagstate = 7 then
                diagstate := 0;
                diagcount := diagcount + 1;
                -- a pass is good when the folded signature is nonzero
                -- (the all-zero signature is the classic stuck-at)
                if lastbist > 0 then
                    loopok := 1;
                else
                    loopok := 0;
                end if;
            end if;

            -- watchdog: host commands are the liveness signal
            wdtimer := wdtimer + 1;
            if wdtimer > 200 then
                faultcode := 1;
                BlinkCode;
            else
                KickWatchdog;
            end if;

            -- LED: heartbeat while healthy, blink code while faulted
            ledphase := ledphase + 1;
            if ledphase = 3 then
                UpdateLed;
            end if;
        end if;
        wait on hostcmd;
    end process;

end;
