-- vol.vhd: volume-measuring medical instrument
--
-- Revision history
--
--   r1  flow integration and display
--   r2  breath-phase detection with hysteresis, alarm limits
--   r3  idle-time zero-offset calibration process
--   r4  peak-hold register, service identification registers
--
-- A spirometry-style instrument: a flow sensor is sampled continuously,
-- samples are offset-corrected and integrated over each breath phase to
-- obtain the tidal volume, and the running result drives a display and a
-- low/high-volume alarm. A second process maintains the zero-offset
-- calibration whenever the mouthpiece is idle.
--
-- Ports:
--
--   flow   raw flow sensor reading, 10-bit unsigned
--   mode   0 = idle/calibrate, 1 = measure
--   disp   displayed tidal volume, millilitres
--   alarm  0 = none, 1 = low volume, 2 = high volume
--
-- Implementation notes
--
-- The measurement loop runs once per sensor sample. Its heavy pieces
-- are the 8-sample smoothing window and the integrator; both touch the
-- sample window array, so mapping the window and the Smooth/Average
-- pair to the same component avoids one bus transfer per sample.
--
-- The calibration process is intentionally simple -- an accumulate-and
-- -divide every 64 idle samples -- and runs rarely; it is a natural
-- software-side resident in a processor/ASIC split.
--
-- All arithmetic is integer; the sensor is linear over the measured
-- range, so no lookup-table correction is needed.

entity VolMeterE is
    port ( flow  : in integer range 0 to 1023;
           mode  : in integer range 0 to 1;
           disp  : out integer range 0 to 4095;
           alarm : out integer range 0 to 3 );
end;

architecture behav of VolMeterE is

    -- zero-flow offset shared between the calibration process (write)
    -- and the measurement loop (read)
    signal offsetcal : integer range 0 to 1023;

begin

    VolMain: process
        -- most recent corrected sample and integration state
        variable flowval  : integer range 0 to 1023;
        variable accum    : integer;
        variable volume   : integer range 0 to 4095;
        variable tidalvol : integer range 0 to 4095;

        -- breath phase tracking: 0 = exhale, 1 = inhale
        variable phase     : integer range 0 to 1;
        variable lastphase : integer range 0 to 1;
        variable breaths   : integer range 0 to 255;

        -- peak tidal volume since power-up (service statistic)
        variable maxtidal  : integer range 0 to 4095;

        -- alarm thresholds in millilitres
        constant lowthresh  : integer := 300;
        constant highthresh : integer := 3000;

        -- device identification registers, reported over the (not yet
        -- modelled) service interface; values are factory-set
        variable serialno    : integer := 10472;
        variable fwrev       : integer := 23;
        variable selftestreg : integer := 0;

        -- smoothing window over the last 8 corrected samples
        type win_array is array (0 to 7) of integer;
        variable window : win_array;
        variable widx   : integer range 0 to 7;

        -- Saturate a value into a closed range; pure combinational
        -- helper, shared by the integration and display paths.
        function Clamp(v : in integer; lo : in integer; hi : in integer)
            return integer is
        begin
            if v < lo then
                return lo;
            end if;
            if v > hi then
                return hi;
            end if;
            return v;
        end;

        -- Convert integrator counts to millilitres. The scale factor
        -- folds the sensor gain, the sampling period and the 8-sample
        -- smoothing into a single division.
        function CountsToMl(c : in integer) return integer is
        begin
            return Clamp(c / 50, 0, 4095);
        end;

        -- Read the sensor and subtract the calibrated zero offset.
        procedure ReadFlow is
        begin
            if flow > offsetcal then
                flowval := flow - offsetcal;
            else
                flowval := 0;
            end if;
        end;

        -- Average of the smoothing window.
        function Average return integer is
            variable sum : integer;
        begin
            sum := 0;
            for i in 0 to 7 loop
                sum := sum + window(i);
            end loop;
            return sum / 8;
        end;

        -- Push the newest sample into the smoothing window.
        procedure Smooth is
        begin
            window(widx) := flowval;
            if widx = 7 then
                widx := 0;
            else
                widx := widx + 1;
            end if;
        end;

        -- Detect the current breath phase from the smoothed flow: a flow
        -- above the hysteresis band means inhalation.
        function DetectPhase return integer is
            variable avg : integer;
        begin
            avg := Average;
            if avg > 40 then
                return 1;
            end if;
            if avg < 20 then
                return 0;
            end if;
            return lastphase;
        end;

        -- Integrate flow over the inhale phase; latch the tidal volume
        -- at the inhale-to-exhale transition.
        procedure Integrate is
        begin
            if phase = 1 then
                accum := accum + flowval;
            end if;
            if lastphase = 1 and phase = 0 then
                volume := CountsToMl(accum);
                tidalvol := volume;
                if volume > maxtidal then
                    maxtidal := volume;
                end if;
                accum := 0;
                breaths := breaths + 1;
            end if;
        end;

        -- Drive the alarm port from the latched tidal volume.
        procedure CheckAlarm is
        begin
            if tidalvol < lowthresh then
                alarm <= 1;
            elsif tidalvol > highthresh then
                alarm <= 2;
            else
                alarm <= 0;
            end if;
        end;

    begin
        if mode = 1 then
            ReadFlow;
            Smooth;
            lastphase := phase;
            phase := DetectPhase;
            Integrate;
            CheckAlarm;
            disp <= tidalvol;
        end if;
        wait on flow;
    end process;

    -- Zero-offset calibration: while the instrument is idle the sensor
    -- should read its resting value; track it with a slow moving average
    -- so sensor drift is followed without chasing breath transients.
    CalProc: process
        variable calsum : integer;
        variable calcnt : integer range 0 to 63;

    begin
        if mode = 0 then
            calsum := calsum + flow;
            calcnt := calcnt + 1;
            if calcnt = 63 then
                offsetcal <= calsum / 64;
                calsum := 0;
                calcnt := 0;
            end if;
        end if;
        wait on flow;
    end process;

end;
