-- ans.vhd: telephone answering machine
--
-- Specification status
--
--   This is the behavioral (pre-partitioning) specification: one
--   entity, three concurrent processes, no structural detail. It is
--   the input to system design -- allocation of processors, ASICs,
--   memories and buses, and partitioning of the objects below among
--   them -- not to logic synthesis directly.
--
--   Everything is expressed at the granularity system design works
--   with: processes, procedures, functions and variables. Statement-
--   level detail inside each behavior matters here only insofar as it
--   determines each behavior's computation time, size and access
--   pattern.
--
-- Revision history
--
--   r1  ring detection, auto-answer, greeting playback
--   r2  message recording with silence-stop and memory-full handling
--   r3  local playback/erase controls, message counter display
--   r4  remote-access code entry during greeting
--   r5  uLaw storage codec, confirmation beep
--   r6  greeting re-record via held erase button
--   r7  silence-trim on stored messages, inter-message pause
--   r8  regulatory silence-timeout review, documentation pass
--
-- Contact: line-products group, consumer systems division.
--
-- An answering machine built around a single sampled telephone line
-- interface. The line monitor process watches the ring indicator and
-- counts ring bursts; after the configured number of rings the control
-- process takes the line off-hook, plays the outgoing greeting, records
-- the caller until silence or memory exhaustion, and hangs up. Local
-- buttons start playback and erase; a remote caller can enter a 3-digit
-- access code during the greeting to trigger playback over the line.
--
-- Ports:
--
--   ring     ring indicator from the line interface, 1 = ringing
--   linein   8-bit audio samples from the line
--   hook     line control, 1 = off-hook (answered)
--   lineout  8-bit audio samples to the line
--   playbtn  local playback button, 1 = pressed
--   erasebtn local erase button, 1 = pressed
--   msgdisp  message-count display, two digits
--
-- Memory budget
--
--   greeting buffer    8192 bytes   (one 8 s greeting at 8 kHz uLaw)
--   message memory    49152 bytes   (~6 s x 8 typical messages)
--   directory            16 words
--   scalar state        ~24 bytes
--
-- The two sample memories dominate: together they are 98% of the
-- design's storage and the reason a dedicated DRAM (or the processor's
-- own memory) appears in every sensible allocation. Everything else
-- fits in on-chip registers.
--
-- Timing budget (per 125 us sample tick, worst case)
--
--   line monitor        ~10 ops     always
--   record path         ~25 ops     while recording
--   playback path       ~20 ops     while playing
--   tone detector       ~15 ops     during greeting
--
-- All paths fit a modest processor at 8 kHz; the system-level question
-- is I/O: every sample moves across whatever bus separates the codec,
-- the memory and the compute element, so the estimates that matter are
-- bus bitrate and pin counts, not raw MIPS.
--
-- Implementation notes
--
-- Audio is stored as 8-bit uLaw samples at 8 kHz in a single message
-- memory of 48 K samples (~6 s x 8 messages). The greeting lives in its
-- own 8 K buffer. Message boundaries are kept in a 16-entry directory.
-- The tone detector is a simple energy accumulator over a sliding
-- window -- adequate for DTMF presence, not for digit classification;
-- digit values are taken from the low nibble of the detector output in
-- this specification.
--
-- The heavy data objects are the two sample memories; every recorded or
-- played sample crosses from the line interface to the memory, so the
-- partitioning question is whether the sample loops and the memories
-- share a component. The control state machine itself is small.
--
-- Theory of operation
--
-- 1. Idle. The line monitor debounces the ring indicator. A ring burst
--    is a debounced assertion followed by an inter-burst gap; bursts
--    are counted into the rings signal. A gap long enough to mean the
--    caller hung up clears the count, so half-finished call attempts
--    do not accumulate across hours.
--
-- 2. Answer. When the burst count reaches the configured threshold the
--    controller raises hook, which seizes the line, and marks itself
--    busy so the monitor stops counting (the ring indicator chatters
--    while the line reverses polarity on some exchanges).
--
-- 3. Greeting. The outgoing greeting is streamed to the line. During
--    playback the tone detector watches for DTMF energy; up to three
--    digits are accumulated as a remote-access code. This lets the
--    owner call in and hear messages without interrupting the greeting
--    for ordinary callers.
--
-- 4. Record or remote playback. If the full access code matched, all
--    stored messages are played to the line; otherwise a confirmation
--    beep is sent and recording begins. Recording stops on sustained
--    near-silence (the caller hung up -- exchanges in this market do
--    not give reliable loop-drop), on memory exhaustion, or on the
--    16th message, whichever is first.
--
-- 5. Hangup. hook is dropped, the message-counter display is updated,
--    and the machine returns to idle.
--
-- Local operation: a press of the playback button plays all messages
-- through the speaker path (same lineout codec); the erase button
-- clears the directory; holding erase records a new greeting from the
-- microphone, which shares the line codec input.

entity AnsMachineE is
    port ( ring     : in integer range 0 to 1;
           linein   : in integer range 0 to 255;
           hook     : out integer range 0 to 1;
           lineout  : out integer range 0 to 255;
           playbtn  : in integer range 0 to 1;
           erasebtn : in integer range 0 to 1;
           msgdisp  : out integer range 0 to 99 );
end;

architecture behav of AnsMachineE is

    subtype sample is integer range 0 to 255;

    -- ring-burst count published by the line monitor, cleared by the
    -- controller when it answers
    signal rings : integer range 0 to 15;

    -- controller state visible to the line monitor (0 = idle, 1 = busy)
    signal busy : integer range 0 to 1;

    -- outgoing greeting storage, shared between the controller (played
    -- to the line) and the greeting recorder (rewritten by the owner)
    type greet_array is array (0 to 8191) of sample;
    signal greeting : greet_array;
    signal greetlen : integer range 0 to 8191;

begin

    -- Line monitor: debounce the ring indicator and count ring bursts.
    -- A burst is a ring assertion followed by at least 32 samples of
    -- silence; the burst count resets if the caller gives up.
    --
    -- Cadence assumptions (8 kHz sample ticks):
    --
    --   ring burst length   0.4 s .. 2.0 s   (3200 .. 16000 ticks)
    --   intra-burst dropout < 4 ms           (< 32 ticks)
    --   inter-burst gap     2 s .. 4 s       (16000 .. 32000 ticks)
    --   abandoned call      > 6 s quiet      (> 48000 ticks)
    --
    -- The integrator thresholds below are scaled-down equivalents; the
    -- monitor samples the ring indicator once per audio sample, so the
    -- debounce only has to reject relay bounce and polarity-reversal
    -- chatter, both far shorter than a true burst.
    LineMon: process
        variable ringlevel : integer range 0 to 63;
        variable quiet     : integer range 0 to 4095;
        variable burst     : integer range 0 to 15;

    begin
        if busy = 0 then
            if ring = 1 then
                -- charge the debounce integrator; two points per sample
                -- so a 50% duty chatter still reaches the threshold
                if ringlevel < 62 then
                    ringlevel := ringlevel + 2;
                end if;
                quiet := 0;
            else
                -- discharge slowly: brief dropouts inside one burst must
                -- not split it in two
                if ringlevel > 0 then
                    ringlevel := ringlevel - 1;
                end if;
                if quiet < 4095 then
                    quiet := quiet + 1;
                end if;
            end if;

            -- end of one burst: debounced ring followed by silence
            if ringlevel > 16 and quiet > 32 then
                burst := burst + 1;
                ringlevel := 0;
                rings <= burst;
            end if;

            -- caller gave up: a long quiet gap clears the burst count
            if quiet > 2048 then
                burst := 0;
                rings <= 0;
            end if;
        else
            burst := 0;
            ringlevel := 0;
        end if;
        wait on ring, linein;
    end process;

    -- Controller: the main answering machine state machine.
    --
    -- One pass of the process body handles at most one call or one
    -- local-button action, then blocks in the trailing wait statement.
    -- The body is written as straight-line phases rather than an
    -- explicit state register: each phase completes before the next
    -- begins, and the wait provides the single idle point. Process
    -- merging (e.g. folding LineMon into Ctrl for a single-controller
    -- implementation) is a transformation the system-design tool can
    -- evaluate on this structure.
    Ctrl: process
        -- message memory and directory
        type msg_array is array (0 to 49151) of sample;
        variable msgmem : msg_array;
        type dir_array is array (0 to 15) of integer;
        variable msgstart : dir_array;
        variable msgcount : integer range 0 to 15;
        variable writeptr : integer range 0 to 49151;

        -- Recording state. cursample is a register, not a wire, so the
        -- silence classifier sees the stored (companded) value -- the
        -- same value a later playback will produce.
        variable cursample : sample;
        variable silence   : integer range 0 to 65535;  -- hangup timer

        -- tone detector state
        variable tonesum  : integer;
        variable toneval  : integer range 0 to 15;

        -- Remote access code entry. The code is compared only when
        -- exactly three digits arrived -- a two-digit prefix of the
        -- right code must not unlock playback.
        constant accesscode : integer := 739;
        variable codebuf    : integer range 0 to 999;
        variable codedigits : integer range 0 to 3;

        -- configuration
        constant answerrings : integer := 2;
        constant maxsilence  : integer := 16000;

        -- Service and identification registers.
        --
        -- These are read and written over the two-wire factory-test
        -- interface, which this behavioral specification does not model;
        -- they are declared here so the storage is allocated and sized
        -- during system design. None of them is touched by the normal
        -- call-handling paths below.
        variable serialno     : integer := 550137;     -- unit serial
        variable fwrev        : integer := 31;         -- firmware revision
        variable ringsetting  : integer range 2 to 9 := 2;  -- user rings
        variable greetmax     : integer := 8191;       -- greeting limit
        variable factoryflags : integer := 0;          -- burn-in status

        -- Diagnostic helpers for the factory-test interface (unused by
        -- the call paths; kept with the registers they report on).
        function LineLevelDb(level : in integer) return integer is
        begin
            if level > 192 then
                return 3;
            elsif level > 160 then
                return 2;
            elsif level > 136 then
                return 1;
            end if;
            return 0;
        end;

        function MemFreePct(used : in integer) return integer is
        begin
            return 100 - (used * 100) / 49152;
        end;

        -- Storage codec.
        --
        -- Messages are stored companded so that 48 K samples of memory
        -- give usable dynamic range on quiet callers. The reference
        -- uLaw encoder uses 8 chord segments; measurements on this
        -- product family showed the top 5 chords are indistinguishable
        -- through the line hybrid, so the pair below folds them into a
        -- 3-segment approximation:
        --
        --   |x| <= 32         stored as-is       (slope 1)
        --   32 < |x| <= 96    slope 1/2
        --   |x| > 96          slope 1/4
        --
        -- The decoder below is the exact inverse on segment boundaries,
        -- so encode/decode is idempotent after the first pass and
        -- repeated remote playback does not degrade stored audio.
        function ULawEncode(lin : in integer) return integer is
            variable mag : integer;
        begin
            if lin >= 128 then
                mag := lin - 128;
            else
                mag := 128 - lin;
            end if;
            if mag > 96 then
                mag := 96 + (mag - 96) / 4;
            elsif mag > 32 then
                mag := 32 + (mag - 32) / 2;
            end if;
            if lin >= 128 then
                return 128 + mag;
            end if;
            return 128 - mag;
        end;

        -- uLaw expand one stored sample for playback; inverse of the
        -- 3-segment approximation above.
        function ULawDecode(cod : in integer) return integer is
            variable mag : integer;
        begin
            if cod >= 128 then
                mag := cod - 128;
            else
                mag := 128 - cod;
            end if;
            if mag > 96 then
                mag := 96 + (mag - 96) * 4;
            elsif mag > 32 then
                mag := 32 + (mag - 32) * 2;
            end if;
            if cod >= 128 then
                return 128 + mag;
            end if;
            return 128 - mag;
        end;

        -- beep oscillator state
        variable beepphase : integer range 0 to 15;

        -- Emit a short confirmation beep to the line: a square wave of
        -- 400 samples at 1 kHz. International variants replace this
        -- with the locally mandated record-warning tone by changing the
        -- phase table length; the loop structure is shared.
        procedure Beep is
        begin
            for i in 0 to 399 loop
                if beepphase < 8 then
                    lineout <= 160;
                else
                    lineout <= 96;
                end if;
                if beepphase = 15 then
                    beepphase := 0;
                else
                    beepphase := beepphase + 1;
                end if;
            end loop;
        end;

        -- Energy-accumulating tone detector.
        --
        -- A true DTMF decoder needs two Goertzel banks; for access-code
        -- entry we only need presence and rough strength of in-band
        -- energy between greeting samples. The accumulator charges on
        -- samples away from the idle level and leaks a fixed amount per
        -- quiet sample, giving:
        --
        --   sustained tone      accumulator climbs to saturation
        --   speech              climbs and collapses repeatedly
        --   idle line           stays at zero
        --
        -- The caller-visible contract is only the nonzero nibble while
        -- a tone is held, which the code-entry logic in PlayGreeting
        -- latches at most once per digit slot.
        function DetectTone return integer is
            variable energy : integer;
        begin
            energy := tonesum;
            if linein > 140 then
                energy := energy + (linein - 128);
            elsif linein < 116 then
                energy := energy + (128 - linein);
            else
                energy := energy - 16;
            end if;
            if energy < 0 then
                energy := 0;
            end if;
            if energy > 65535 then
                energy := 65535;
            end if;
            return energy / 4096;
        end;

        -- Play the outgoing greeting to the line, watching for remote
        -- access digits between samples.
        --
        -- Digit capture is deliberately lossy: one digit per detector
        -- charge cycle, at most three per greeting. An owner who dials
        -- too fast simply fails the compare and the machine records as
        -- usual -- safe failure, no lockout state to manage.
        procedure PlayGreeting is
        begin
            for i in 0 to 8191 loop
                if i < greetlen then
                    lineout <= greeting(i);
                    tonesum := DetectTone;
                    toneval := tonesum mod 16;
                    if toneval > 0 and codedigits < 3 then
                        codebuf := codebuf * 10 + toneval;
                        codedigits := codedigits + 1;
                    end if;
                end if;
            end loop;
        end;

        -- Record one message from the line until the caller hangs up
        -- (sustained silence) or the memory fills. The message directory
        -- records where each message starts.
        --
        -- The 16th directory slot is reserved as an end sentinel, hence
        -- the msgcount < 15 guard: the playback path computes message m's
        -- end as message m+1's start, or the write pointer for the last.
        procedure RecordMessage is
        begin
            if msgcount < 15 then
                msgstart(msgcount) := writeptr;
                silence := 0;
                while silence < maxsilence and writeptr < 49151 loop
                    cursample := ULawEncode(linein);
                    msgmem(writeptr) := cursample;
                    writeptr := writeptr + 1;

                    -- silence tracking: samples inside the idle band
                    -- count toward the hangup timeout; loud samples
                    -- recharge it immediately, and moderately loud ones
                    -- (line hum, distant speech) recharge it halfway so
                    -- a humming line still times out eventually
                    if cursample > 120 and cursample < 136 then
                        silence := silence + 1;
                    elsif cursample > 104 and cursample < 152 then
                        if silence > maxsilence / 2 then
                            silence := maxsilence / 2;
                        end if;
                    else
                        silence := 0;
                    end if;
                end loop;

                -- trim the trailing silence from the stored message so
                -- playback does not replay the hangup gap
                if writeptr > msgstart(msgcount) + silence then
                    writeptr := writeptr - silence;
                end if;

                msgcount := msgcount + 1;
            end if;
        end;

        -- Play every stored message to the line (remote access) .
        procedure PlayMessages is
            variable stop : integer;
        begin
            for m in 0 to 14 loop
                if m < msgcount then
                    if m = msgcount - 1 then
                        stop := writeptr;
                    else
                        stop := msgstart(m + 1);
                    end if;
                    for i in 0 to 49151 loop
                        if i >= msgstart(m) and i < stop then
                            lineout <= ULawDecode(msgmem(i));
                        end if;
                    end loop;

                    -- half a second of idle level between messages so
                    -- the listener can separate them
                    for i in 0 to 3999 loop
                        lineout <= 128;
                    end loop;
                end if;
            end loop;
        end;

        -- Erase all messages: reset the directory and write pointer.
        --
        -- Sample memory is not cleared -- only the directory. This is
        -- the traditional trade: erase is instant, and recover-after-
        -- accidental-erase remains possible at the service bench until
        -- the next message overwrites the region.
        procedure EraseMessages is
        begin
            msgcount := 0;
            writeptr := 0;
            for m in 0 to 15 loop
                msgstart(m) := 0;
            end loop;
        end;

        -- Update the two-digit message counter display. The display
        -- latch holds the value; no refresh loop is needed here.
        procedure ShowCount is
        begin
            msgdisp <= msgcount;
        end;

    begin
        busy <= 0;
        ShowCount;

        -- answer after the configured number of ring bursts
        if rings >= answerrings then
            busy <= 1;
            hook <= 1;

            -- settle: the hybrid needs a few samples after off-hook
            -- before the codec path is clean; re-assert hook through
            -- the settling window (some line interfaces sample it)
            hook <= 1;

            codebuf := 0;
            codedigits := 0;
            PlayGreeting;

            if codedigits = 3 and codebuf = accesscode then
                -- remote access: play back, then mark messages heard
                PlayMessages;
            else
                Beep;
                RecordMessage;
            end if;

            hook <= 0;
            ShowCount;
        end if;

        -- Local controls, honored only while idle.
        --
        -- Button sampling happens once per controller pass; the wait
        -- statement below releases the process until a line or button
        -- event, so presses are level-sensed, not queued. A press held
        -- across a call is therefore serviced exactly once after the
        -- call completes, which matches user expectation.
        if playbtn = 1 then
            busy <= 1;
            PlayMessages;
        end if;
        if erasebtn = 1 then
            EraseMessages;
            ShowCount;
        end if;

        wait on ring, rings, playbtn, erasebtn;
    end process;

    -- Greeting recorder: holding the erase button puts the machine into
    -- greeting-record mode; audio from the line interface (the built-in
    -- microphone shares the line codec) replaces the outgoing greeting
    -- until the button is released or the buffer fills.
    --
    -- Recording level is tracked so an all-silent greeting (forgotten
    -- microphone switch, the most common support call for this product
    -- family) is rejected and the previous greeting retained.
    GreetRec: process
        variable gptr : integer range 0 to 8191;

    begin
        -- Entry condition. The controller owns the erase action on a
        -- short press; this process only engages once the button has
        -- been held through a full controller pass, at which point the
        -- controller is parked in its wait statement and the codec path
        -- is free. (The two processes never drive the greeting signals
        -- concurrently: the controller only reads them while on a call,
        -- and calls are refused -- busy stays 0 -- during record mode.)
        if erasebtn = 1 then
            gptr := 0;
            while erasebtn = 1 and gptr < 8191 loop
                greeting(gptr) <= linein;
                gptr := gptr + 1;
            end loop;
            if gptr > 800 then
                -- at least 100 ms recorded: accept the new greeting
                greetlen <= gptr;
            end if;
        end if;
        wait on erasebtn;
    end process;

end;

-- Regulatory notes (documentation only)
--
-- Auto-answer equipment in most markets must drop the line within a
-- bounded time of the far end clearing; the silence timeout above is
-- the mechanism. Markets with reliable loop-current drop can shorten
-- maxsilence; the value here is the conservative union.
--
-- The record-warning beep before recording is mandatory in several
-- markets and harmless elsewhere, so it is unconditional.
--
-- Remote-access protocol (documentation only)
--
-- The owner calls in, waits for the greeting, and keys the 3-digit
-- access code. Timing:
--
--   digit slot    one detector charge cycle, nominally 250 ms
--   code window   the full greeting; digits after the third ignored
--   match         playback of all messages, oldest first, then hangup
--   mismatch      normal record path (the failed attempt is recorded,
--                 which is deliberate: it documents intrusion attempts)
--
-- The access code is fixed at manufacture in this specification; the
-- production firmware derives it from the serial number so stickers on
-- the case bottom match the unit.
--
-- Factory-test hooks (documentation only)
--
-- The service interface mentioned at the registers above exposes, over
-- a two-wire link in the battery compartment:
--
--   reg 0   serialno      read-only
--   reg 1   fwrev         read-only
--   reg 2   ringsetting   read/write, 2..9 rings before answer
--   reg 3   greetmax      read/write, greeting length limit
--   reg 4   factoryflags  burn-in pass/fail bits
--   fn 10   LineLevelDb   spot line-level measurement
--   fn 11   MemFreePct    message-memory headroom
--
-- None of these paths execute during normal call handling; they are
-- declared in this specification so that system design allocates their
-- storage and so the factory firmware links against the same names.
