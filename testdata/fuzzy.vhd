-- fuzzy.vhd: fuzzy-logic controller
--
-- Full version of the paper's Figure 1 example. Fuzzy controllers are
-- common in consumer applications -- video camera focus, thermostats,
-- automobile cruise control -- wherever smooth transitions are needed
-- from one output value to the next.
--
-- Structure:
--
--   FuzzyMain  the control loop. Samples the two sensor inputs,
--              truncates the stored membership rules by the membership
--              degree of each sampled value (EvaluateRule), combines the
--              two truncated rule sets pointwise (Convolve), defuzzifies
--              by centroid (ComputeCentroid), then smooths and clips the
--              actuator value before driving out1.
--
--   CalMain    the calibration process. On request (cal = 1) it reloads
--              the membership rules from the factory table with the
--              configured gain, self-tests the result, and publishes
--              readiness on the rulesready handshake plus a diagnostic
--              nibble on stat.
--
-- Ports:
--
--   in1, in2   sensor inputs, 8-bit unsigned
--   cal        calibration request, level-sensitive
--   out1       actuator output, 8-bit unsigned
--   stat       status nibble: bit 0 ready, bits 1-3 saturated error count

entity FuzzyControllerE is
    port ( in1  : in integer range 0 to 255;
           in2  : in integer range 0 to 255;
           cal  : in integer range 0 to 1;
           out1 : out integer range 0 to 255;
           stat : out integer range 0 to 15 );
end;

-- Revision history
--
--   r1  initial control loop, fixed rules
--   r2  calibration process, rulesready handshake, stat port
--   r3  split rule truncation loops, shape self-test
--   r4  factory-default table generation moved on-chip
--
-- Implementation notes
--
-- The control loop re-executes whenever either sensor changes. One
-- start-to-finish execution truncates 2 x 128 rule entries, convolves
-- 128 points and accumulates a 128-point weighted sum, so the inner
-- loops dominate the execution time; EvaluateRule and Convolve are the
-- natural candidates for the ASIC side of a processor/ASIC split, while
-- the calibration path runs rarely and can stay in software.
--
-- The membership rule stores (mr1, mr2) are the largest data objects:
-- 384 bytes each. When the arrays are mapped to an off-chip memory the
-- inner loops issue one bus transfer per entry, which is what makes the
-- partitioning decision for these arrays interesting: keeping them with
-- EvaluateRule avoids 256 cross-chip transfers per control step, but
-- costs on-chip storage.
--
-- All scalar state is 8 bits wide; rule indices need 9 bits. The
-- history ring (histbuf) exists for field diagnostics only and has no
-- effect on the control output.

architecture behav of FuzzyControllerE is

    -- Interprocess handshake: the calibration process raises rulesready
    -- once the membership rules have been loaded and verified; the main
    -- control loop holds its output until then.
    signal rulesready : integer range 0 to 1;

    subtype byte is integer range 0 to 255;

    -- membership rules: 3 segments of 128 entries each, shared between
    -- the control loop (read) and the calibration process (write)
    type mr_array is array (1 to 384) of byte;
    signal mr1 : mr_array;   -- rules for input 1
    signal mr2 : mr_array;   -- rules for input 2

    function Min(a : in integer; b : in integer) return integer is
    begin
        if a < b then
            return a;
        end if;
        return b;
    end;

    function Max(a : in integer; b : in integer) return integer is
    begin
        if a > b then
            return a;
        end if;
        return b;
    end;

begin

    FuzzyMain: process
        -- sampled input values
        variable in1val : byte;
        variable in2val : byte;

        -- truncated membership rules
        type tmr_array is array (1 to 128) of byte;
        variable tmr1 : tmr_array;
        variable tmr2 : tmr_array;

        -- convolution result
        variable conv : tmr_array;

        -- defuzzified output and smoothing state
        variable centroid : byte;
        variable lastout  : byte;
        variable smoothed : byte;

        -- configuration constants
        constant gain     : integer := 2;
        constant deadband : integer := 3;

        -- Clip a raw output value into the legal actuator range and apply
        -- the deadband around the previous output. The actuator's
        -- mechanical stops sit just inside the electrical range, hence
        -- the asymmetric limits.
        function Clip(v : in integer) return integer is
            variable r : integer;
        begin
            r := v;
            if r > 250 then
                r := 250;
            end if;
            if r < 5 then
                r := 5;
            end if;
            if r > lastout - deadband and r < lastout + deadband then
                r := lastout;
            end if;
            return r;
        end;

        -- Sample both analog inputs into local storage.
        procedure SampleInputs is
        begin
            in1val := in1;
            in2val := in2;
        end;

        -- Truncate the membership rules of one input by the membership
        -- degree of its current value (Figure 1 of the paper).
        --
        -- The rule store is laid out in three 128-entry segments:
        --   1..128    antecedent membership, lower half
        --   129..256  antecedent membership, upper half
        --   257..384  consequent membership function
        -- The membership degree of the sampled value is the minimum of
        -- its two antecedent lookups.
        procedure EvaluateRule(num : in integer) is
            variable trunc : byte;
        begin
            if (num = 1) then
                trunc := Min(mr1(in1val), mr1(128 + in1val));
            elsif (num = 2) then
                trunc := Min(mr2(in2val), mr2(128 + in2val));
            end if;

            -- The output segment of the rule store (entries 257..384)
            -- holds the consequent membership function; truncate it at
            -- the degree computed above. The two halves are processed
            -- separately so a synthesis tool may fold them onto one
            -- comparator.
            for i in 1 to 64 loop
                if (num = 1) then
                    tmr1(i) := Min(trunc, mr1(256 + i));
                elsif (num = 2) then
                    tmr2(i) := Min(trunc, mr2(256 + i));
                end if;
            end loop;
            for i in 65 to 128 loop
                if (num = 1) then
                    tmr1(i) := Min(trunc, mr1(256 + i));
                elsif (num = 2) then
                    tmr2(i) := Min(trunc, mr2(256 + i));
                end if;
            end loop;
        end;

        -- Combine the two truncated membership functions pointwise.
        procedure Convolve is
        begin
            for i in 1 to 128 loop
                conv(i) := Max(tmr1(i), tmr2(i));
            end loop;
        end;

        -- Defuzzify: centroid (weighted mean) of the convolved function.
        --
        -- A zero sum means the convolved membership function is empty
        -- (no rule fired); the controller then outputs its resting value
        -- rather than dividing by zero.
        function ComputeCentroid return integer is
            variable sum  : integer;
            variable wsum : integer;
        begin
            sum := 0;
            wsum := 0;
            for i in 1 to 128 loop
                sum := sum + conv(i);
                wsum := wsum + i * conv(i);
            end loop;
            if sum = 0 then
                return 0;
            end if;
            return (gain * wsum) / sum;
        end;

        -- Output history ring, kept for the diagnostic status nibble.
        -- Sixteen entries cover one service-tool polling interval.
        type hist_array is array (0 to 15) of byte;
        variable histbuf : hist_array;
        variable histidx : integer range 0 to 15;

        -- Append the latest actuator value to the history ring.
        procedure RecordHistory is
        begin
            histbuf(histidx) := lastout;
            if histidx = 15 then
                histidx := 0;
            else
                histidx := histidx + 1;
            end if;
        end;

    begin
        -- One control step per sensor event.
        --
        -- Hold the actuator at its previous value until the membership
        -- rules have been calibrated at least once; driving actuators
        -- from uncalibrated rules is the classic field failure of these
        -- controllers.
        if rulesready = 1 then
            SampleInputs;
            EvaluateRule(1);
            EvaluateRule(2);
            Convolve;
            centroid := ComputeCentroid;
            -- first-order smoothing of the output trajectory
            smoothed := (centroid + 3 * lastout) / 4;
            lastout := Clip(smoothed);
            RecordHistory;
        end if;
        out1 <= lastout;
        wait on in1, in2;
    end process;

    -- Calibration process: on request, reload the membership rules from
    -- the built-in table, verify them, and publish readiness plus a
    -- status nibble (bit 0: ready, bits 1-3: error count, saturated).
    --
    -- Calibration runs concurrently with the control loop; the
    -- rulesready handshake keeps the loop from consuming a half-written
    -- rule store. A production device would also sequence the actuator
    -- to a safe position during recalibration.
    CalMain: process
        -- factory membership-rule table (three segments, as mr_array)
        type rom_array is array (1 to 384) of byte;
        variable romtable : rom_array;

        -- calibration state
        variable scale    : integer range 1 to 8;
        variable errcount : integer range 0 to 255;

        -- Load one input's membership rules from the factory table,
        -- applying the current gain scale.
        procedure LoadRules(num : in integer) is
        begin
            for i in 1 to 384 loop
                if (num = 1) then
                    mr1(i) <= Min(255, romtable(i) * scale);
                elsif (num = 2) then
                    mr2(i) <= Min(255, romtable(i) * scale);
                end if;
            end loop;
        end;

        -- Verify that each loaded rule segment stays within the byte
        -- range and is non-degenerate; returns the number of bad entries.
        function SelfTest return integer is
            variable bad : integer;
        begin
            bad := 0;
            -- Range check: every entry must stay in the byte range after
            -- gain scaling.
            for i in 1 to 384 loop
                if mr1(i) > 255 then
                    bad := bad + 1;
                end if;
                if mr2(i) > 255 then
                    bad := bad + 1;
                end if;
            end loop;
            -- Shape check: the antecedent segments must rise from their
            -- left edge and fall to their right edge; a flat or inverted
            -- profile means the gain wiped out the rule.
            if mr1(1) >= mr1(64) then
                bad := bad + 1;
            end if;
            if mr1(128) >= mr1(64) then
                bad := bad + 1;
            end if;
            if mr2(1) >= mr2(64) then
                bad := bad + 1;
            end if;
            if mr2(128) >= mr2(64) then
                bad := bad + 1;
            end if;
            return bad;
        end;

    begin
        if cal = 1 then
            -- First pass: (re)generate the factory-default table as a
            -- symmetric triangular profile per 128-entry segment. A real
            -- device would read this from configuration ROM; generating
            -- it keeps the example self-contained.
            for i in 1 to 128 loop
                if i < 65 then
                    romtable(i) := 2 * i;
                    romtable(128 + i) := 255 - 2 * i;
                    romtable(256 + i) := 2 * i;
                else
                    romtable(i) := 255 - 2 * (i - 64);
                    romtable(128 + i) := 2 * (i - 64);
                    romtable(256 + i) := 255 - 2 * (i - 64);
                end if;
            end loop;
            scale := 2;
            LoadRules(1);
            LoadRules(2);
            errcount := SelfTest;
            if errcount = 0 then
                rulesready <= 1;
                stat <= 1;
            else
                rulesready <= 0;
                stat <= 1 + 2 * Min(7, errcount);
            end if;
        end if;
        wait on cal;
    end process;

end;
