package vhdl

import (
	"os"
	"path/filepath"
	"testing"
)

// readTestdata loads a file from the repository's shared testdata
// directory (two levels up from this package).
func readTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("testdata: %v", err)
	}
	return string(data)
}
