package vhdl

import "strconv"

// This file computes content fingerprints over the AST, the change-detection
// layer of the incremental rebuild: a 64-bit hash per behavior unit (process
// or subprogram) plus one "context" hash covering everything a unit's
// meaning can depend on outside any unit — entity ports and
// architecture-level type/subtype/object declarations. The hash walks the
// same fragments the printer emits (names, operators, literals, structure
// tags), so two subtrees have equal fingerprints exactly when their printed
// forms are equal: formatting and comments never perturb a fingerprint,
// any token-level edit does. Nested subprogram bodies are excluded from
// their parent's hash (only their signatures are folded in) because each
// nested subprogram is its own unit — a body edit inside a helper changes
// that helper's fingerprint alone, which is what bounds re-analysis to the
// edited unit plus its dependents.

// UnitFP is the fingerprint of one behavior unit.
type UnitFP struct {
	// Path is the unit's lexical path: slash-joined enclosing unit names,
	// with "#n" appended on same-path collisions. It is stable across edits
	// elsewhere in the file and is the identity rebuilds match units by.
	Path string
	Name string // declared name or process label
	Hash uint64 // fingerprint of the unit's printed form
	Pos  Pos    // declaration position in the current source
}

// DesignFP is the fingerprint set of a whole design file.
type DesignFP struct {
	// Context hashes the declarations outside every unit: entity names and
	// ports, architecture names, and architecture-level type, subtype and
	// object declarations (including initializers). Any unit may depend on
	// these, so a context change invalidates the whole design.
	Context uint64
	// Units lists every process and subprogram in deterministic AST order
	// (architecture declarations first, then processes, nested units
	// directly after their parent).
	Units []UnitFP

	byPath map[string]int
}

// Lookup returns the unit with the given path.
func (fp *DesignFP) Lookup(path string) (UnitFP, bool) {
	i, ok := fp.byPath[path]
	if !ok {
		return UnitFP{}, false
	}
	return fp.Units[i], true
}

// Fingerprint computes the fingerprint set of a design file.
func Fingerprint(df *DesignFile) *DesignFP {
	fp := &DesignFP{byPath: make(map[string]int)}
	ctx := newFNV()
	for _, e := range df.Entities {
		ctx.str("entity")
		ctx.str(e.Name)
		for _, pd := range e.Ports {
			ctx.str("port")
			for _, n := range pd.Names {
				ctx.str(n)
			}
			ctx.num(int64(pd.Dir))
			ctx.typeRef(pd.Type)
		}
	}
	for _, a := range df.Architectures {
		ctx.str("architecture")
		ctx.str(a.Name)
		ctx.str(a.EntityName)
		for _, d := range a.Decls {
			if _, isSub := d.(*SubprogramDecl); !isSub {
				ctx.decl(d)
			}
		}
		fp.units(a.Decls, "")
		for _, ps := range a.Processes {
			h := newFNV()
			h.str("process")
			h.str(ps.Label)
			for _, s := range ps.Sensitivity {
				h.str(s)
			}
			h.unitDecls(ps.Decls)
			h.stmts(ps.Body)
			fp.add(UnitFP{Path: ps.Label, Name: ps.Label, Hash: h.sum(), Pos: ps.Pos})
			fp.units(ps.Decls, ps.Label+"/")
		}
	}
	fp.Context = ctx.sum()
	return fp
}

// units appends a fingerprint for every subprogram in decls, recursively,
// each nested unit directly after its parent.
func (fp *DesignFP) units(decls []Decl, prefix string) {
	for _, d := range decls {
		sp, ok := d.(*SubprogramDecl)
		if !ok {
			continue
		}
		h := newFNV()
		h.signature(sp)
		h.unitDecls(sp.Decls)
		h.stmts(sp.Body)
		path := prefix + sp.Name
		fp.add(UnitFP{Path: path, Name: sp.Name, Hash: h.sum(), Pos: sp.Pos})
		fp.units(sp.Decls, path+"/")
	}
}

func (fp *DesignFP) add(u UnitFP) {
	if _, taken := fp.byPath[u.Path]; taken {
		base := u.Path
		for n := 2; ; n++ {
			u.Path = base + "#" + strconv.Itoa(n)
			if _, taken := fp.byPath[u.Path]; !taken {
				break
			}
		}
	}
	fp.byPath[u.Path] = len(fp.Units)
	fp.Units = append(fp.Units, u)
}

// fnv is an incremental FNV-1a 64 hasher over printed-form fragments,
// mixing eight-byte lanes instead of single bytes: fingerprinting runs on
// every incremental rebuild, and one multiply per word is 8x cheaper than
// one per byte. Every string fragment ends with a mix of its length, so
// adjacent fragments never alias ("ab"+"c" vs "a"+"bc"). The hashes live
// only in memory and are compared within one process, so the exact mixing
// function is free to change.
type fnv struct{ h uint64 }

func newFNV() fnv { return fnv{h: 14695981039346656037} }

func (f *fnv) sum() uint64 { return f.h }

func (f *fnv) word(w uint64) {
	f.h = (f.h ^ w) * 1099511628211
}

func (f *fnv) byte(b byte) {
	f.word(uint64(b))
}

func (f *fnv) str(s string) {
	i := 0
	for ; i+8 <= len(s); i += 8 {
		f.word(uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56)
	}
	var tail uint64
	for sh := 0; i < len(s); i, sh = i+1, sh+8 {
		tail |= uint64(s[i]) << sh
	}
	f.word(tail)
	f.word(uint64(len(s)))
}

func (f *fnv) num(v int64) {
	f.word(uint64(v))
}

func (f *fnv) bool(b bool) {
	if b {
		f.byte(1)
	} else {
		f.byte(0)
	}
}

// signature folds in a subprogram's name, kind, parameters and return type
// — everything a caller can observe without the body.
func (f *fnv) signature(sp *SubprogramDecl) {
	f.str("subprogram")
	f.str(sp.Name)
	f.bool(sp.IsFunction)
	for _, pd := range sp.Params {
		f.str("param")
		for _, n := range pd.Names {
			f.str(n)
		}
		f.num(int64(pd.Dir))
		f.typeRef(pd.Type)
	}
	if sp.Return != nil {
		f.str("return")
		f.typeRef(sp.Return)
	}
}

// unitDecls folds in a unit's declarative part: non-subprogram declarations
// fully, nested subprograms by signature only (their bodies are separate
// units).
func (f *fnv) unitDecls(decls []Decl) {
	for _, d := range decls {
		if sp, ok := d.(*SubprogramDecl); ok {
			f.signature(sp)
			continue
		}
		f.decl(d)
	}
}

func (f *fnv) decl(d Decl) {
	switch dd := d.(type) {
	case *TypeDecl:
		f.str("type")
		f.str(dd.Name)
		switch {
		case dd.Def.Array != nil:
			ad := dd.Def.Array
			f.str("array")
			f.rangeOf(ad.Low, ad.High, ad.Downto)
			f.typeRef(ad.Element)
		case dd.Def.Range != nil:
			f.str("range")
			f.rangeOf(dd.Def.Range.Low, dd.Def.Range.High, dd.Def.Range.Downto)
		default:
			f.str("enum")
			for _, lit := range dd.Def.EnumLits {
				f.str(lit)
			}
		}
	case *SubtypeDecl:
		f.str("subtype")
		f.str(dd.Name)
		f.typeRef(dd.Base)
	case *ObjectDecl:
		f.str("object")
		f.num(int64(dd.Class))
		for _, n := range dd.Names {
			f.str(n)
		}
		f.typeRef(dd.Type)
		if dd.Init != nil {
			f.str(":=")
			f.expr(dd.Init)
		}
	case *SubprogramDecl:
		f.signature(dd)
		f.unitDecls(dd.Decls)
		f.stmts(dd.Body)
	}
}

func (f *fnv) typeRef(tr *TypeRef) {
	if tr == nil {
		f.str("<nil>")
		return
	}
	f.str(tr.Name)
	if tr.Range != nil {
		f.str("range")
		f.rangeOf(tr.Range.Low, tr.Range.High, tr.Range.Downto)
	}
	if tr.Index != nil {
		f.str("index")
		f.rangeOf(tr.Index.Low, tr.Index.High, tr.Index.Downto)
	}
}

func (f *fnv) rangeOf(low, high Expr, downto bool) {
	f.expr(low)
	f.expr(high)
	f.bool(downto)
}

func (f *fnv) stmts(stmts []Stmt) {
	for _, s := range stmts {
		f.stmt(s)
	}
	f.byte('$') // close the list: nesting vs. succession never alias
}

func (f *fnv) stmt(s Stmt) {
	switch st := s.(type) {
	case *AssignStmt:
		f.str("assign")
		f.bool(st.IsSignal)
		f.expr(st.Target)
		f.expr(st.Value)
	case *IfStmt:
		f.str("if")
		f.expr(st.Cond)
		f.stmts(st.Then)
		for _, el := range st.Elifs {
			f.str("elsif")
			f.expr(el.Cond)
			f.stmts(el.Body)
		}
		f.str("else")
		f.stmts(st.Else)
	case *CaseStmt:
		f.str("case")
		f.expr(st.Expr)
		for _, w := range st.Whens {
			if w.Choices == nil {
				f.str("others")
			}
			for _, c := range w.Choices {
				f.expr(c)
			}
			f.stmts(w.Body)
		}
	case *ForStmt:
		f.str("for")
		f.str(st.Label)
		f.str(st.Var)
		f.rangeOf(st.Low, st.High, st.Downto)
		f.stmts(st.Body)
	case *WhileStmt:
		f.str("while")
		f.str(st.Label)
		f.expr(st.Cond)
		f.stmts(st.Body)
	case *LoopStmt:
		f.str("loop")
		f.str(st.Label)
		f.stmts(st.Body)
	case *ExitStmt:
		f.str("exit")
		f.str(st.Label)
		f.expr(st.Cond)
	case *CallStmt:
		f.str("call")
		f.str(st.Name)
		for _, a := range st.Args {
			f.expr(a)
		}
	case *WaitStmt:
		f.str("wait")
		for _, sig := range st.OnSignals {
			f.str(sig)
		}
		f.expr(st.Until)
	case *ReturnStmt:
		f.str("return")
		f.expr(st.Value)
	case *NullStmt:
		f.str("null")
	}
	f.byte(';')
}

func (f *fnv) expr(e Expr) {
	if e == nil {
		f.str("<nil>")
		return
	}
	switch x := e.(type) {
	case *NameExpr:
		f.str("n")
		f.str(x.Name)
	case *IntExpr:
		f.str("i")
		f.num(x.Val)
	case *CharExpr:
		f.str("c")
		f.byte(x.Val)
	case *StrExpr:
		f.str("s")
		f.str(x.Val)
	case *CallExpr:
		f.str("call")
		f.str(x.Name)
		for _, a := range x.Args {
			f.expr(a)
		}
		f.byte(')')
	case *BinExpr:
		f.str("bin")
		f.num(int64(x.Op))
		f.expr(x.L)
		f.expr(x.R)
	case *UnaryExpr:
		f.str("un")
		f.num(int64(x.Op))
		f.expr(x.X)
	case *AttrExpr:
		f.str("attr")
		f.str(x.Prefix)
		f.str(x.Attr)
	case *AggregateExpr:
		f.str("aggr")
		for _, a := range x.Assocs {
			f.bool(a.IsOthers)
			f.expr(a.Choice)
			f.expr(a.Value)
		}
		f.byte(')')
	}
}
