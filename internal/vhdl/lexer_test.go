package vhdl

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(src string) []Kind {
	toks, _ := LexAll(src)
	out := make([]Kind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.Kind)
	}
	return out
}

func TestLexSymbols(t *testing.T) {
	cases := []struct {
		src  string
		want []Kind
	}{
		{"( ) ; : , .", []Kind{LPAREN, RPAREN, SEMI, COLON, COMMA, DOT, EOF}},
		{":= <= => = /=", []Kind{ASSIGN, SIGASSIGN, ARROW, EQ, NEQ, EOF}},
		{"< > >= + - * / & |", []Kind{LT, GT, GE, PLUS, MINUS, STAR, SLASH, AMP, BAR, EOF}},
	}
	for _, c := range cases {
		got := kinds(c.src)
		if len(got) != len(c.want) {
			t.Fatalf("%q: got %v, want %v", c.src, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q token %d: got %v, want %v", c.src, i, got[i], c.want[i])
			}
		}
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	for _, src := range []string{"entity", "ENTITY", "Entity", "eNtItY"} {
		toks, errs := LexAll(src)
		if len(errs) != 0 {
			t.Fatalf("%q: unexpected errors %v", src, errs)
		}
		if toks[0].Kind != KwENTITY {
			t.Errorf("%q lexed as %v, want entity keyword", src, toks[0].Kind)
		}
	}
}

func TestLexIdentifierNormalization(t *testing.T) {
	toks, _ := LexAll("FuzzyMain")
	if toks[0].Kind != IDENT {
		t.Fatalf("got %v, want IDENT", toks[0].Kind)
	}
	if toks[0].Text != "fuzzymain" {
		t.Errorf("normalized text = %q, want fuzzymain", toks[0].Text)
	}
	if toks[0].Orig != "FuzzyMain" {
		t.Errorf("original text = %q, want FuzzyMain", toks[0].Orig)
	}
}

func TestLexIntegers(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"0", 0},
		{"384", 384},
		{"1_000_000", 1000000},
		{"16#ff#", 255},
		{"2#1010#", 10},
	}
	for _, c := range cases {
		toks, errs := LexAll(c.src)
		if len(errs) != 0 {
			t.Errorf("%q: errors %v", c.src, errs)
			continue
		}
		if toks[0].Kind != INTLIT || toks[0].Val != c.want {
			t.Errorf("%q = %d (kind %v), want %d", c.src, toks[0].Val, toks[0].Kind, c.want)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, errs := LexAll("a -- this is a comment\nb")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comment not skipped: %v", toks)
	}
	if toks[1].Pos.Line != 2 {
		t.Errorf("token after comment at line %d, want 2", toks[1].Pos.Line)
	}
}

func TestLexCharLiteralVsAttributeTick(t *testing.T) {
	toks, _ := LexAll("'0'")
	if toks[0].Kind != CHARLIT || toks[0].Val != '0' {
		t.Errorf("char literal: got %v", toks[0])
	}
	toks, _ = LexAll("x'length")
	if toks[0].Kind != IDENT || toks[1].Kind != TICK || toks[2].Kind != IDENT {
		t.Errorf("attribute tick: got %v %v %v", toks[0], toks[1], toks[2])
	}
}

func TestLexStringLiteral(t *testing.T) {
	toks, errs := LexAll(`"hello world"`)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != STRLIT || toks[0].Text != "hello world" {
		t.Errorf("got %v", toks[0])
	}
	_, errs = LexAll("\"unterminated\n")
	if len(errs) == 0 {
		t.Error("unterminated string should produce an error")
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := LexAll("a\n  bb\n\tc")
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("bb at %v", toks[1].Pos)
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("c at line %d", toks[2].Pos.Line)
	}
}

func TestLexInvalidByteRecovers(t *testing.T) {
	toks, errs := LexAll("a $ b")
	if len(errs) != 1 {
		t.Fatalf("want 1 error, got %v", errs)
	}
	if len(toks) != 3 { // a, b, EOF
		t.Errorf("lexer did not recover: %v", toks)
	}
}

func TestLexEOFIdempotent(t *testing.T) {
	l := NewLexer("x")
	l.Next()
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != EOF {
			t.Fatalf("call %d after end: %v, want EOF", i, tok)
		}
	}
}

// Property: lexing never panics and always terminates with EOF, for any
// input string.
func TestLexTotalQuick(t *testing.T) {
	f := func(s string) bool {
		toks, _ := LexAll(s)
		return len(toks) >= 1 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the lexer is insensitive to case for keyword recognition.
func TestLexCaseInsensitiveQuick(t *testing.T) {
	words := []string{"process", "begin", "end", "if", "then", "loop", "wait"}
	for _, w := range words {
		up := strings.ToUpper(w)
		a, _ := LexAll(w)
		b, _ := LexAll(up)
		if a[0].Kind != b[0].Kind {
			t.Errorf("%q and %q lex to different kinds", w, up)
		}
	}
}

func TestKindString(t *testing.T) {
	if SIGASSIGN.String() != "<=" {
		t.Errorf("SIGASSIGN.String() = %q", SIGASSIGN.String())
	}
	if KwPROCESS.String() != "'process'" {
		t.Errorf("KwPROCESS.String() = %q", KwPROCESS.String())
	}
	if !KwPROCESS.IsKeyword() || IDENT.IsKeyword() {
		t.Error("IsKeyword misclassifies")
	}
}
