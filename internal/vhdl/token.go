// Package vhdl implements a lexer, parser and abstract syntax tree for the
// behavioral VHDL subset used by the SpecSyn/SLIF reproduction.
//
// The subset covers what the paper's examples exercise: entities with ports,
// architectures containing processes, procedures and functions, scalar and
// array types (including integer range subtypes), variable and signal
// assignment, if/elsif/else, case, for/while/plain loops, wait statements,
// subprogram calls and returns. VHDL is case-insensitive; the lexer
// normalizes identifiers to lower case but records the original spelling.
package vhdl

import "fmt"

// Kind classifies a lexical token.
type Kind int

// Token kinds. Keyword kinds are contiguous so IsKeyword can test a range.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	CHARLIT
	STRLIT

	// Delimiters and operators.
	LPAREN    // (
	RPAREN    // )
	SEMI      // ;
	COLON     // :
	COMMA     // ,
	DOT       // .
	ASSIGN    // :=
	SIGASSIGN // <=  (also less-equal; parser disambiguates)
	ARROW     // =>
	EQ        // =
	NEQ       // /=
	LT        // <
	GT        // >
	GE        // >=
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	AMP       // &
	BAR       // |
	TICK      // '

	// Keywords.
	kwBegin
	KwABS
	KwAND
	KwARCHITECTURE
	KwARRAY
	KwBEGIN
	KwBODY
	KwCASE
	KwCONSTANT
	KwDOWNTO
	KwELSE
	KwELSIF
	KwEND
	KwENTITY
	KwEXIT
	KwFOR
	KwFUNCTION
	KwIF
	KwIN
	KwINOUT
	KwIS
	KwLOOP
	KwMOD
	KwNAND
	KwNOR
	KwNOT
	KwNULL
	KwOF
	KwON
	KwOR
	KwOTHERS
	KwOUT
	KwPACKAGE
	KwPORT
	KwPROCEDURE
	KwPROCESS
	KwRANGE
	KwREM
	KwRETURN
	KwSIGNAL
	KwSUBTYPE
	KwTHEN
	KwTO
	KwTYPE
	KwUNTIL
	KwUSE
	KwVARIABLE
	KwWAIT
	KwWHEN
	KwWHILE
	KwXOR
	kwEnd
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", INTLIT: "integer literal",
	CHARLIT: "character literal", STRLIT: "string literal",
	LPAREN: "(", RPAREN: ")", SEMI: ";", COLON: ":", COMMA: ",", DOT: ".",
	ASSIGN: ":=", SIGASSIGN: "<=", ARROW: "=>", EQ: "=", NEQ: "/=",
	LT: "<", GT: ">", GE: ">=", PLUS: "+", MINUS: "-", STAR: "*",
	SLASH: "/", AMP: "&", BAR: "|", TICK: "'",
}

var keywords = map[string]Kind{
	"abs": KwABS, "and": KwAND, "architecture": KwARCHITECTURE,
	"array": KwARRAY, "begin": KwBEGIN, "body": KwBODY, "case": KwCASE,
	"constant": KwCONSTANT, "downto": KwDOWNTO, "else": KwELSE,
	"elsif": KwELSIF, "end": KwEND, "entity": KwENTITY, "exit": KwEXIT,
	"for": KwFOR, "function": KwFUNCTION, "if": KwIF, "in": KwIN,
	"inout": KwINOUT, "is": KwIS, "loop": KwLOOP, "mod": KwMOD,
	"nand": KwNAND, "nor": KwNOR, "not": KwNOT, "null": KwNULL,
	"of": KwOF, "on": KwON, "or": KwOR, "others": KwOTHERS, "out": KwOUT,
	"package": KwPACKAGE, "port": KwPORT, "procedure": KwPROCEDURE,
	"process": KwPROCESS, "range": KwRANGE, "rem": KwREM,
	"return": KwRETURN, "signal": KwSIGNAL, "subtype": KwSUBTYPE,
	"then": KwTHEN, "to": KwTO, "type": KwTYPE, "until": KwUNTIL,
	"use": KwUSE, "variable": KwVARIABLE, "wait": KwWAIT, "when": KwWHEN,
	"while": KwWHILE, "xor": KwXOR,
}

// keywordNames is the inverse of keywords, built once for diagnostics.
var keywordNames = func() map[Kind]string {
	m := make(map[Kind]string, len(keywords))
	for s, k := range keywords {
		m[k] = s
	}
	return m
}()

// String returns a human-readable description of the kind, suitable for
// diagnostics ("expected ';'").
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	if s, ok := keywordNames[k]; ok {
		return "'" + s + "'"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > kwBegin && k < kwEnd }

// Pos is a position in a source file.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based, in bytes
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // normalized (lower-case) text for IDENT; literal text otherwise
	Orig string // original spelling, for diagnostics and pretty-printing
	Val  int64  // value for INTLIT
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Orig)
	case INTLIT:
		return fmt.Sprintf("integer %d", t.Val)
	case CHARLIT, STRLIT:
		return fmt.Sprintf("literal %s", t.Orig)
	default:
		return t.Kind.String()
	}
}

// keywordsByInitial buckets the reserved words by first byte: the lexer
// calls Lookup for every identifier, and a handful of length-gated string
// compares beats hashing the spelling into the map.
var keywordsByInitial = func() [26][]struct {
	s string
	k Kind
} {
	var buckets [26][]struct {
		s string
		k Kind
	}
	for s, k := range keywords {
		i := s[0] - 'a'
		buckets[i] = append(buckets[i], struct {
			s string
			k Kind
		}{s, k})
	}
	return buckets
}()

// Lookup maps an identifier spelling (already lower-cased) to its keyword
// kind, or IDENT if it is not reserved.
func Lookup(lower string) Kind {
	if len(lower) == 0 || lower[0] < 'a' || lower[0] > 'z' {
		return IDENT
	}
	for _, e := range keywordsByInitial[lower[0]-'a'] {
		if e.s == lower {
			return e.k
		}
	}
	return IDENT
}
