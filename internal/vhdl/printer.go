package vhdl

import (
	"fmt"
	"io"
	"strings"
)

// This file implements a pretty-printer (unparser) for the AST. Print is
// the inverse of Parse up to formatting: parsing the printed text yields a
// structurally identical tree, which TestPrintParseRoundTrip asserts for
// the four example specifications. Tools use it to emit normalized
// specifications after front-end processing.

// Print writes the design file as formatted VHDL.
func Print(w io.Writer, df *DesignFile) error {
	p := &printer{w: w}
	for i, e := range df.Entities {
		if i > 0 {
			p.line("")
		}
		p.entity(e)
		// Print the matching architectures immediately after their entity.
		for _, a := range df.Architectures {
			if a.EntityName == e.Name {
				p.line("")
				p.architecture(a)
			}
		}
	}
	return p.err
}

// Format returns the design file as a string.
func Format(df *DesignFile) string {
	var sb strings.Builder
	_ = Print(&sb, df)
	return sb.String()
}

type printer struct {
	w      io.Writer
	indent int
	err    error
}

func (p *printer) line(format string, args ...any) {
	if p.err != nil {
		return
	}
	text := fmt.Sprintf(format, args...)
	if text == "" {
		_, p.err = fmt.Fprintln(p.w)
		return
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s\n", strings.Repeat("    ", p.indent), text)
}

func (p *printer) entity(e *Entity) {
	if len(e.Ports) == 0 {
		p.line("entity %s is", e.Name)
		p.line("end;")
		return
	}
	p.line("entity %s is", e.Name)
	p.indent++
	for i, pd := range e.Ports {
		prefix := "port ( "
		if i > 0 {
			prefix = "       "
		}
		suffix := ";"
		if i == len(e.Ports)-1 {
			suffix = " );"
		}
		p.line("%s%s : %s %s%s", prefix, strings.Join(pd.Names, ", "), pd.Dir, typeRef(pd.Type), suffix)
	}
	p.indent--
	p.line("end;")
}

func (p *printer) architecture(a *Architecture) {
	p.line("architecture %s of %s is", a.Name, a.EntityName)
	p.indent++
	p.decls(a.Decls)
	p.indent--
	p.line("begin")
	p.indent++
	for i, ps := range a.Processes {
		if i > 0 {
			p.line("")
		}
		p.process(ps)
	}
	p.indent--
	p.line("end;")
}

func (p *printer) decls(decls []Decl) {
	for _, d := range decls {
		switch dd := d.(type) {
		case *TypeDecl:
			switch {
			case dd.Def.Array != nil:
				ad := dd.Def.Array
				p.line("type %s is array (%s) of %s;", dd.Name, rangeStr(ad.Low, ad.High, ad.Downto), typeRef(ad.Element))
			case dd.Def.Range != nil:
				r := dd.Def.Range
				p.line("type %s is range %s;", dd.Name, rangeStr(r.Low, r.High, r.Downto))
			default:
				p.line("type %s is (%s);", dd.Name, strings.Join(dd.Def.EnumLits, ", "))
			}
		case *SubtypeDecl:
			p.line("subtype %s is %s;", dd.Name, typeRef(dd.Base))
		case *ObjectDecl:
			init := ""
			if dd.Init != nil {
				init = " := " + exprStr(dd.Init)
			}
			p.line("%s %s : %s%s;", dd.Class, strings.Join(dd.Names, ", "), typeRef(dd.Type), init)
		case *SubprogramDecl:
			p.subprogram(dd)
		}
	}
}

func (p *printer) subprogram(sp *SubprogramDecl) {
	kind := "procedure"
	if sp.IsFunction {
		kind = "function"
	}
	sig := kind + " " + sp.Name
	if len(sp.Params) > 0 {
		var parts []string
		for _, pd := range sp.Params {
			parts = append(parts, fmt.Sprintf("%s : %s %s", strings.Join(pd.Names, ", "), pd.Dir, typeRef(pd.Type)))
		}
		sig += "(" + strings.Join(parts, "; ") + ")"
	}
	if sp.Return != nil {
		sig += " return " + typeRef(sp.Return)
	}
	p.line("%s is", sig)
	p.indent++
	p.decls(sp.Decls)
	p.indent--
	p.line("begin")
	p.indent++
	p.stmts(sp.Body)
	p.indent--
	p.line("end;")
}

func (p *printer) process(ps *ProcessStmt) {
	head := ps.Label + ": process"
	if len(ps.Sensitivity) > 0 {
		head += " (" + strings.Join(ps.Sensitivity, ", ") + ")"
	}
	p.line("%s", head)
	p.indent++
	p.decls(ps.Decls)
	p.indent--
	p.line("begin")
	p.indent++
	p.stmts(ps.Body)
	p.indent--
	p.line("end process;")
}

func (p *printer) stmts(stmts []Stmt) {
	for _, s := range stmts {
		p.stmt(s)
	}
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *AssignStmt:
		op := ":="
		if st.IsSignal {
			op = "<="
		}
		p.line("%s %s %s;", exprStr(st.Target), op, exprStr(st.Value))
	case *IfStmt:
		p.line("if %s then", exprStr(st.Cond))
		p.indent++
		p.stmts(st.Then)
		p.indent--
		for _, el := range st.Elifs {
			p.line("elsif %s then", exprStr(el.Cond))
			p.indent++
			p.stmts(el.Body)
			p.indent--
		}
		if len(st.Else) > 0 {
			p.line("else")
			p.indent++
			p.stmts(st.Else)
			p.indent--
		}
		p.line("end if;")
	case *CaseStmt:
		p.line("case %s is", exprStr(st.Expr))
		p.indent++
		for _, w := range st.Whens {
			if w.Choices == nil {
				p.line("when others =>")
			} else {
				var cs []string
				for _, c := range w.Choices {
					cs = append(cs, exprStr(c))
				}
				p.line("when %s =>", strings.Join(cs, " | "))
			}
			p.indent++
			p.stmts(w.Body)
			p.indent--
		}
		p.indent--
		p.line("end case;")
	case *ForStmt:
		dir := "to"
		if st.Downto {
			dir = "downto"
		}
		p.line("%sfor %s in %s %s %s loop", label(st.Label), st.Var, exprStr(st.Low), dir, exprStr(st.High))
		p.indent++
		p.stmts(st.Body)
		p.indent--
		p.line("end loop;")
	case *WhileStmt:
		p.line("%swhile %s loop", label(st.Label), exprStr(st.Cond))
		p.indent++
		p.stmts(st.Body)
		p.indent--
		p.line("end loop;")
	case *LoopStmt:
		p.line("%sloop", label(st.Label))
		p.indent++
		p.stmts(st.Body)
		p.indent--
		p.line("end loop;")
	case *ExitStmt:
		text := "exit"
		if st.Label != "" {
			text += " " + st.Label
		}
		if st.Cond != nil {
			text += " when " + exprStr(st.Cond)
		}
		p.line("%s;", text)
	case *CallStmt:
		if len(st.Args) == 0 {
			p.line("%s;", st.Name)
			return
		}
		var args []string
		for _, a := range st.Args {
			args = append(args, exprStr(a))
		}
		p.line("%s(%s);", st.Name, strings.Join(args, ", "))
	case *WaitStmt:
		switch {
		case len(st.OnSignals) > 0:
			p.line("wait on %s;", strings.Join(st.OnSignals, ", "))
		case st.Until != nil:
			p.line("wait until %s;", exprStr(st.Until))
		default:
			p.line("wait;")
		}
	case *ReturnStmt:
		if st.Value != nil {
			p.line("return %s;", exprStr(st.Value))
		} else {
			p.line("return;")
		}
	case *NullStmt:
		p.line("null;")
	}
}

func label(l string) string {
	if l == "" {
		return ""
	}
	return l + ": "
}

func typeRef(tr *TypeRef) string {
	if tr == nil {
		return "integer"
	}
	switch {
	case tr.Range != nil:
		return fmt.Sprintf("%s range %s", tr.Name, rangeStr(tr.Range.Low, tr.Range.High, tr.Range.Downto))
	case tr.Index != nil:
		return fmt.Sprintf("%s(%s)", tr.Name, rangeStr(tr.Index.Low, tr.Index.High, tr.Index.Downto))
	}
	return tr.Name
}

func rangeStr(low, high Expr, downto bool) string {
	if downto {
		return exprStr(high) + " downto " + exprStr(low)
	}
	return exprStr(low) + " to " + exprStr(high)
}

// opText maps operator token kinds to VHDL source text.
var opText = map[Kind]string{
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", AMP: "&",
	EQ: "=", NEQ: "/=", LT: "<", SIGASSIGN: "<=", GT: ">", GE: ">=",
	KwAND: "and", KwOR: "or", KwXOR: "xor", KwNAND: "nand", KwNOR: "nor",
	KwMOD: "mod", KwREM: "rem", KwNOT: "not", KwABS: "abs",
}

// exprStr renders an expression. Subexpressions are parenthesized
// conservatively, which keeps precedence correct without tracking operator
// binding strength; the round-trip test relies on structural equality, not
// textual identity.
func exprStr(e Expr) string {
	switch x := e.(type) {
	case *IntExpr:
		return fmt.Sprintf("%d", x.Val)
	case *CharExpr:
		return "'" + string(rune(x.Val)) + "'"
	case *StrExpr:
		return `"` + x.Val + `"`
	case *NameExpr:
		return x.Name
	case *AttrExpr:
		return x.Prefix + "'" + x.Attr
	case *UnaryExpr:
		op := opText[x.Op]
		if x.Op == KwNOT || x.Op == KwABS {
			op += " "
		}
		return op + paren(x.X)
	case *BinExpr:
		return paren(x.L) + " " + opText[x.Op] + " " + paren(x.R)
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, exprStr(a))
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *AggregateExpr:
		var parts []string
		for _, a := range x.Assocs {
			switch {
			case a.IsOthers:
				parts = append(parts, "others => "+exprStr(a.Value))
			case a.Choice != nil:
				parts = append(parts, exprStr(a.Choice)+" => "+exprStr(a.Value))
			default:
				parts = append(parts, exprStr(a.Value))
			}
		}
		return "(" + strings.Join(parts, ", ") + ")"
	}
	return "0"
}

// paren wraps composite subexpressions.
func paren(e Expr) string {
	switch e.(type) {
	case *BinExpr, *UnaryExpr:
		return "(" + exprStr(e) + ")"
	}
	return exprStr(e)
}
