package vhdl

import (
	"testing"
)

// FuzzParse drives the lexer+parser with arbitrary input. Invariants: no
// panic, and when parsing succeeds the printed form must reparse cleanly
// (print/parse closure). Run long with:
//
//	go test -fuzz=FuzzParse ./internal/vhdl
//
// In normal test runs only the seed corpus executes.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"entity E is end;",
		"entity E is port (a : in integer); end; architecture x of E is begin end;",
		tinyEntity,
		"entity E is port ( : in ); end;",
		"architecture x of Nothing is begin end;",
		"P: process begin wait; end process;",
		"entity E is end; architecture x of E is begin P: process begin a(1)(2) := 3; end process; end;",
		"-- comment only\n",
		"entity \x00 is end;",
		"entity E is end; architecture x of E is signal s : integer range 5 downto 1; begin end;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		df, err := Parse(src)
		if err != nil || df == nil {
			return
		}
		printed := Format(df)
		if _, err := Parse(printed); err != nil {
			t.Fatalf("printed form of valid parse does not reparse: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
	})
}
