package vhdl

import (
	"strings"
	"testing"
)

const tinyEntity = `
entity E is
    port ( a : in integer; b : out integer );
end;
architecture behav of E is
begin
    P: process
    begin
        b <= a;
        wait on a;
    end process;
end;
`

func TestParseEntityPorts(t *testing.T) {
	df := MustParse(tinyEntity)
	if len(df.Entities) != 1 {
		t.Fatalf("entities = %d", len(df.Entities))
	}
	e := df.Entities[0]
	if e.Name != "e" {
		t.Errorf("entity name %q", e.Name)
	}
	if len(e.Ports) != 2 {
		t.Fatalf("port groups = %d", len(e.Ports))
	}
	if e.Ports[0].Dir != DirIn || e.Ports[1].Dir != DirOut {
		t.Errorf("port dirs: %v %v", e.Ports[0].Dir, e.Ports[1].Dir)
	}
}

func TestParseGroupedPorts(t *testing.T) {
	df := MustParse(`entity E is port ( a, b, c : in integer ); end;
architecture x of E is begin end;`)
	if got := df.Entities[0].Ports[0].Names; len(got) != 3 {
		t.Fatalf("grouped names = %v", got)
	}
}

func TestParseProcessStructure(t *testing.T) {
	df := MustParse(tinyEntity)
	a := df.Architectures[0]
	if len(a.Processes) != 1 {
		t.Fatalf("processes = %d", len(a.Processes))
	}
	p := a.Processes[0]
	if p.Label != "p" {
		t.Errorf("label %q", p.Label)
	}
	if len(p.Body) != 2 {
		t.Fatalf("body statements = %d", len(p.Body))
	}
	if _, ok := p.Body[0].(*AssignStmt); !ok {
		t.Errorf("first statement %T, want AssignStmt", p.Body[0])
	}
	if _, ok := p.Body[1].(*WaitStmt); !ok {
		t.Errorf("second statement %T, want WaitStmt", p.Body[1])
	}
}

func TestParseUnlabeledProcessGetsLabel(t *testing.T) {
	df := MustParse(`entity E is end;
architecture x of E is begin
process begin wait; end process;
end;`)
	if lbl := df.Architectures[0].Processes[0].Label; !strings.HasPrefix(lbl, "process_l") {
		t.Errorf("generated label %q", lbl)
	}
}

func TestParseDeclarations(t *testing.T) {
	src := `
entity E is end;
architecture x of E is
    type mr_array is array (1 to 384) of integer;
    subtype byte is integer range 0 to 255;
    type state is (idle, run, stop);
    signal s1, s2 : byte;
    constant k : integer := 42;
begin
    P: process
        variable v : mr_array;
    begin
        v(1) := k;
        wait;
    end process;
end;
`
	df := MustParse(src)
	decls := df.Architectures[0].Decls
	if len(decls) != 5 {
		t.Fatalf("architecture decls = %d", len(decls))
	}
	td, ok := decls[0].(*TypeDecl)
	if !ok || td.Def.Array == nil {
		t.Fatalf("decl 0: %#v", decls[0])
	}
	if lo, _ := td.Def.Array.Low.(*IntExpr); lo.Val != 1 {
		t.Errorf("array low %v", td.Def.Array.Low)
	}
	if _, ok := decls[1].(*SubtypeDecl); !ok {
		t.Errorf("decl 1: %T", decls[1])
	}
	en, ok := decls[2].(*TypeDecl)
	if !ok || len(en.Def.EnumLits) != 3 {
		t.Errorf("enum decl: %#v", decls[2])
	}
	od, ok := decls[3].(*ObjectDecl)
	if !ok || od.Class != ClassSignal || len(od.Names) != 2 {
		t.Errorf("signal decl: %#v", decls[3])
	}
	cd, ok := decls[4].(*ObjectDecl)
	if !ok || cd.Class != ClassConstant || cd.Init == nil {
		t.Errorf("constant decl: %#v", decls[4])
	}
}

func TestParseDowntoNormalized(t *testing.T) {
	df := MustParse(`entity E is end;
architecture x of E is
    type w is array (7 downto 0) of integer;
begin end;`)
	ad := df.Architectures[0].Decls[0].(*TypeDecl).Def.Array
	if !ad.Downto {
		t.Error("downto flag lost")
	}
	if lo := ad.Low.(*IntExpr).Val; lo != 0 {
		t.Errorf("low bound %d after normalization, want 0", lo)
	}
	if hi := ad.High.(*IntExpr).Val; hi != 7 {
		t.Errorf("high bound %d, want 7", hi)
	}
}

func TestParseSubprograms(t *testing.T) {
	src := `
entity E is end;
architecture x of E is
    function Min(a : in integer; b : in integer) return integer is
    begin
        if a < b then
            return a;
        end if;
        return b;
    end;
    procedure P2(n : in integer) is
        variable t : integer;
    begin
        t := n;
    end;
begin end;
`
	df := MustParse(src)
	fn := df.Architectures[0].Decls[0].(*SubprogramDecl)
	if !fn.IsFunction || fn.Name != "min" || len(fn.Params) != 2 || fn.Return == nil {
		t.Errorf("function decl: %+v", fn)
	}
	pr := df.Architectures[0].Decls[1].(*SubprogramDecl)
	if pr.IsFunction || len(pr.Decls) != 1 || len(pr.Body) != 1 {
		t.Errorf("procedure decl: %+v", pr)
	}
}

func TestParseControlStatements(t *testing.T) {
	src := `
entity E is end;
architecture x of E is begin
P: process
    variable v, i2 : integer;
begin
    if v = 1 then
        v := 2;
    elsif v = 2 then
        v := 3;
    else
        v := 0;
    end if;
    case v is
        when 0 => v := 1;
        when 1 | 2 => v := 2;
        when others => null;
    end case;
    for i in 1 to 10 loop
        v := v + i;
    end loop;
    while v > 0 loop
        v := v - 1;
    end loop;
    outer: loop
        exit outer when v = 5;
        v := v + 1;
    end loop;
    wait until v = 3;
end process;
end;
`
	df := MustParse(src)
	body := df.Architectures[0].Processes[0].Body
	if len(body) != 6 {
		t.Fatalf("statements = %d", len(body))
	}
	ifs := body[0].(*IfStmt)
	if len(ifs.Elifs) != 1 || len(ifs.Else) != 1 {
		t.Errorf("if arms: %d elifs, %d else", len(ifs.Elifs), len(ifs.Else))
	}
	cs := body[1].(*CaseStmt)
	if len(cs.Whens) != 3 {
		t.Fatalf("case whens = %d", len(cs.Whens))
	}
	if cs.Whens[2].Choices != nil {
		t.Error("when others should have nil choices")
	}
	if len(cs.Whens[1].Choices) != 2 {
		t.Errorf("bar-separated choices = %d", len(cs.Whens[1].Choices))
	}
	fs := body[2].(*ForStmt)
	if fs.Var != "i" {
		t.Errorf("for var %q", fs.Var)
	}
	ls := body[4].(*LoopStmt)
	if ls.Label != "outer" {
		t.Errorf("loop label %q", ls.Label)
	}
	es := ls.Body[0].(*ExitStmt)
	if es.Label != "outer" || es.Cond == nil {
		t.Errorf("exit: %+v", es)
	}
	ws := body[5].(*WaitStmt)
	if ws.Until == nil {
		t.Error("wait until lost its condition")
	}
}

func TestParseExprPrecedence(t *testing.T) {
	// a + b * c must parse as a + (b*c).
	df := MustParse(`entity E is end;
architecture x of E is begin
P: process variable a, b, c, r : integer; begin
    r := a + b * c;
    wait;
end process; end;`)
	asn := df.Architectures[0].Processes[0].Body[0].(*AssignStmt)
	add := asn.Value.(*BinExpr)
	if add.Op != PLUS {
		t.Fatalf("top op %v", add.Op)
	}
	mul, ok := add.R.(*BinExpr)
	if !ok || mul.Op != STAR {
		t.Fatalf("right operand %#v, want multiplication", add.R)
	}
}

func TestParseRelationalInCondition(t *testing.T) {
	// <= in expression position is the less-equal operator.
	df := MustParse(`entity E is end;
architecture x of E is begin
P: process variable a, b : integer; begin
    if a <= b then
        a := b;
    end if;
    wait;
end process; end;`)
	cond := df.Architectures[0].Processes[0].Body[0].(*IfStmt).Cond.(*BinExpr)
	if cond.Op != SIGASSIGN {
		t.Errorf("condition op %v", cond.Op)
	}
}

func TestParseSignalVsVariableAssign(t *testing.T) {
	df := MustParse(`entity E is port (o : out integer); end;
architecture x of E is begin
P: process variable v : integer; begin
    v := 1;
    o <= v;
    wait;
end process; end;`)
	body := df.Architectures[0].Processes[0].Body
	if body[0].(*AssignStmt).IsSignal {
		t.Error(":= marked as signal assignment")
	}
	if !body[1].(*AssignStmt).IsSignal {
		t.Error("<= not marked as signal assignment")
	}
}

func TestParseIndexedAssignAndCall(t *testing.T) {
	df := MustParse(`entity E is end;
architecture x of E is
    procedure Q(n : in integer) is begin null; end;
begin
P: process
    type arr is array (0 to 3) of integer;
    variable a : arr;
begin
    a(2) := 5;
    Q(1);
    Q;
    wait;
end process; end;`)
	body := df.Architectures[0].Processes[0].Body
	asn := body[0].(*AssignStmt)
	tgt, ok := asn.Target.(*CallExpr)
	if !ok || tgt.Name != "a" || len(tgt.Args) != 1 {
		t.Errorf("indexed target: %#v", asn.Target)
	}
	call := body[1].(*CallStmt)
	if call.Name != "q" || len(call.Args) != 1 {
		t.Errorf("call: %+v", call)
	}
	bare := body[2].(*CallStmt)
	if bare.Name != "q" || len(bare.Args) != 0 {
		t.Errorf("parameterless call: %+v", bare)
	}
}

func TestParseAggregate(t *testing.T) {
	df := MustParse(`entity E is end;
architecture x of E is begin
P: process
    type arr is array (0 to 3) of integer;
    variable a : arr;
begin
    a := (others => 0);
    wait;
end process; end;`)
	v := df.Architectures[0].Processes[0].Body[0].(*AssignStmt).Value
	agg, ok := v.(*AggregateExpr)
	if !ok || len(agg.Assocs) != 1 || agg.Assocs[0].Choice != nil {
		t.Errorf("aggregate: %#v", v)
	}
}

func TestParseErrorsReported(t *testing.T) {
	_, err := Parse("entity E is port ( : in integer ); end;")
	if err == nil {
		t.Error("missing port name should be an error")
	}
	_, err = Parse("process x;")
	if err == nil {
		t.Error("stray statement at design level should be an error")
	}
}

func TestParseErrorRecovery(t *testing.T) {
	// One broken statement must not hide the rest of the file.
	src := `entity E is end;
architecture x of E is begin
P: process variable v : integer; begin
    v := := 1;
    v := 2;
    wait;
end process; end;`
	df, err := Parse(src)
	if err == nil {
		t.Fatal("expected a syntax error")
	}
	if df == nil || len(df.Architectures) != 1 {
		t.Fatal("recovery lost the architecture")
	}
	if n := len(df.Architectures[0].Processes[0].Body); n < 2 {
		t.Errorf("recovered %d statements, want at least 2", n)
	}
}

func TestParseTestdataExamplesClean(t *testing.T) {
	// The four paper examples must parse without diagnostics.
	for _, name := range []string{"ans", "ether", "fuzzy", "vol"} {
		src := readTestdata(t, name+".vhd")
		if _, err := Parse(src); err != nil {
			t.Errorf("%s.vhd: %v", name, err)
		}
	}
}

func TestWalkStmtsVisitsNested(t *testing.T) {
	df := MustParse(tinyEntity)
	n := 0
	WalkStmts(df.Architectures[0].Processes[0].Body, func(Stmt) { n++ })
	if n != 2 {
		t.Errorf("visited %d statements, want 2", n)
	}
}

func TestExprPos(t *testing.T) {
	df := MustParse(tinyEntity)
	asn := df.Architectures[0].Processes[0].Body[0].(*AssignStmt)
	if p := ExprPos(asn.Value); p.Line == 0 {
		t.Error("ExprPos lost position")
	}
}
