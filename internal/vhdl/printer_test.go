package vhdl

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// stripPos deep-copies structural identity by comparing printed forms: the
// cheap way to compare two ASTs ignoring positions is to print both and
// compare text, since Print is position-independent.
func normalized(t *testing.T, src string) string {
	t.Helper()
	df, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Format(df)
}

// TestPrintParseRoundTrip: for each example spec, parse → print → parse →
// print must be a fixed point, and the second parse must be error-free.
func TestPrintParseRoundTrip(t *testing.T) {
	for _, name := range []string{"ans", "ether", "fuzzy", "vol"} {
		src := readTestdata(t, name+".vhd")
		once := normalized(t, src)
		df2, err := Parse(once)
		if err != nil {
			t.Fatalf("%s: reparse of printed form failed: %v", name, err)
		}
		twice := Format(df2)
		if once != twice {
			t.Errorf("%s: print is not a fixed point", name)
		}
	}
}

// TestPrintStructurePreserved compares structural features across the
// round trip for the fuzzy example.
func TestPrintStructurePreserved(t *testing.T) {
	src := readTestdata(t, "fuzzy.vhd")
	df1 := MustParse(src)
	df2 := MustParse(Format(df1))

	if len(df1.Entities) != len(df2.Entities) {
		t.Fatal("entity count changed")
	}
	if !reflect.DeepEqual(portNames(df1), portNames(df2)) {
		t.Errorf("ports changed: %v vs %v", portNames(df1), portNames(df2))
	}
	c1, c2 := countStmts(df1), countStmts(df2)
	if c1 != c2 {
		t.Errorf("statement count changed: %d vs %d", c1, c2)
	}
}

func portNames(df *DesignFile) []string {
	var out []string
	for _, e := range df.Entities {
		for _, pd := range e.Ports {
			out = append(out, pd.Names...)
		}
	}
	return out
}

func countStmts(df *DesignFile) int {
	n := 0
	count := func(stmts []Stmt) {
		WalkStmts(stmts, func(Stmt) { n++ })
	}
	for _, a := range df.Architectures {
		for _, p := range a.Processes {
			count(p.Body)
			for _, d := range p.Decls {
				if sp, ok := d.(*SubprogramDecl); ok {
					count(sp.Body)
				}
			}
		}
		for _, d := range a.Decls {
			if sp, ok := d.(*SubprogramDecl); ok {
				count(sp.Body)
			}
		}
	}
	return n
}

func TestPrintSpecifics(t *testing.T) {
	src := `
entity E is
    port ( a, b : in integer range 0 to 255; o : out integer );
end;
architecture x of E is
    type arr is array (7 downto 0) of integer;
    signal s : arr;
begin
    P: process
        variable v : integer := 3;
    begin
        v := (a + b) * 2;
        s(0) <= v;
        lab: for i in 10 downto 1 loop
            exit lab when i = v;
        end loop;
        case v is
            when 1 | 2 => null;
            when others => v := 0;
        end case;
        wait on a, b;
    end process;
end;
`
	out := normalized(t, src)
	for _, frag := range []string{
		"a, b : in integer range 0 to 255",
		"array (7 downto 0) of integer",
		":= 3",
		"(a + b) * 2",
		"s(0) <= v",
		"for i in 10 downto 1 loop",
		"exit lab when",
		"when 1 | 2 =>",
		"when others =>",
		"wait on a, b;",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("printed form missing %q:\n%s", frag, out)
		}
	}
}

func TestPrintAggregates(t *testing.T) {
	out := normalized(t, `
entity E is end;
architecture x of E is begin
P: process
    type arr is array (0 to 3) of integer;
    variable v : arr;
begin
    v := (others => 0);
    wait;
end process; end;`)
	if !strings.Contains(out, "(others => 0)") {
		t.Errorf("aggregate lost:\n%s", out)
	}
}

func TestFormatIsDeterministic(t *testing.T) {
	src := readTestdata(t, "vol.vhd")
	df := MustParse(src)
	if Format(df) != Format(df) {
		t.Error("Format not deterministic")
	}
}

// Ensure the printer handles every statement kind without error output.
func TestPrintAllStatementKinds(t *testing.T) {
	df := MustParse(`
entity E is end;
architecture x of E is
    function f return integer is
    begin
        return 1;
    end;
begin
P: process
    variable v : integer;
begin
    v := f;
    null;
    while v > 0 loop
        v := v - 1;
    end loop;
    loop
        exit;
    end loop;
    wait until v = 0;
end process; end;`)
	out := Format(df)
	for _, frag := range []string{"return 1;", "null;", "while", "exit;", "wait until"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	// And it reparses cleanly.
	if _, err := Parse(out); err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
}

func ExampleFormat() {
	df := MustParse("entity Tiny is port ( a : in integer ); end; architecture rtl of Tiny is begin P: process begin wait on a; end process; end;")
	fmt.Print(Format(df))
	// Output:
	// entity tiny is
	//     port ( a : in integer );
	// end;
	//
	// architecture rtl of tiny is
	// begin
	//     p: process
	//     begin
	//         wait on a;
	//     end process;
	// end;
}
