package vhdl

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// A ParseError describes a syntax error with its position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parser is a recursive-descent parser for the VHDL subset. It records all
// errors it encounters and synchronizes on semicolons, so one syntax error
// does not hide later ones.
type Parser struct {
	toks   []Token
	i      int
	Errors []*ParseError
}

var tokPool = sync.Pool{New: func() any { return new([]Token) }}

// Parse parses a complete design file. It returns the (possibly partial)
// tree and an error summarizing all lexical and syntax diagnostics, or nil
// if the file is clean.
func Parse(src string) (*DesignFile, error) {
	// Token buffers are recycled across parses: the tree built below copies
	// token values and holds only substrings of src, so nothing references
	// the buffer once parseDesignFile returns. On large designs the buffer
	// is megabytes, and reuse keeps it off the allocation hot path that
	// incremental rebuilds hit on every edit.
	bufp := tokPool.Get().(*[]Token)
	toks, lexErrs := lexAppend((*bufp)[:0], src)
	p := &Parser{toks: toks}
	df := p.parseDesignFile()
	p.toks = nil
	*bufp = toks[:0]
	tokPool.Put(bufp)
	var msgs []string
	for _, e := range lexErrs {
		msgs = append(msgs, e.Error())
	}
	for _, e := range p.Errors {
		msgs = append(msgs, e.Error())
	}
	if len(msgs) > 0 {
		return df, errors.New(strings.Join(msgs, "\n"))
	}
	return df, nil
}

// MustParse is Parse that panics on error; for tests and examples with
// known-good sources.
func MustParse(src string) *DesignFile {
	df, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return df
}

func (p *Parser) cur() Token { return p.toks[p.i] }
func (p *Parser) peek() Token { // token after cur
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.i]
	if t.Kind != EOF {
		p.i++
	}
	return t
}

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

// accept consumes the current token if it has kind k.
func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	p.Errors = append(p.Errors, &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// expect consumes a token of kind k or records an error. It returns the
// consumed (or current, on failure) token.
func (p *Parser) expect(k Kind) Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return p.cur()
}

// expectIdent consumes an identifier and returns its normalized text.
func (p *Parser) expectIdent() string {
	if p.at(IDENT) {
		return p.next().Text
	}
	p.errorf(p.cur().Pos, "expected identifier, found %s", p.cur())
	return ""
}

// sync skips tokens up to and including the next semicolon (or to EOF),
// used for error recovery.
func (p *Parser) sync() {
	for !p.at(EOF) {
		if p.next().Kind == SEMI {
			return
		}
	}
}

func (p *Parser) parseDesignFile() *DesignFile {
	df := &DesignFile{}
	for !p.at(EOF) {
		switch p.cur().Kind {
		case KwENTITY:
			if e := p.parseEntity(); e != nil {
				df.Entities = append(df.Entities, e)
			}
		case KwARCHITECTURE:
			if a := p.parseArchitecture(); a != nil {
				df.Architectures = append(df.Architectures, a)
			}
		case KwUSE, KwPACKAGE:
			// Library context clauses are accepted and ignored.
			p.sync()
		default:
			p.errorf(p.cur().Pos, "expected design unit, found %s", p.cur())
			p.sync()
		}
	}
	return df
}

func (p *Parser) parseEntity() *Entity {
	pos := p.expect(KwENTITY).Pos
	e := &Entity{Name: p.expectIdent(), Pos: pos}
	p.expect(KwIS)
	if p.accept(KwPORT) {
		p.expect(LPAREN)
		for {
			if pd := p.parsePortDecl(); pd != nil {
				e.Ports = append(e.Ports, pd)
			}
			if !p.accept(SEMI) {
				break
			}
		}
		p.expect(RPAREN)
		p.expect(SEMI)
	}
	p.expect(KwEND)
	p.accept(KwENTITY)
	if p.at(IDENT) {
		p.next()
	}
	p.expect(SEMI)
	return e
}

func (p *Parser) parsePortDecl() *PortDecl {
	pos := p.cur().Pos
	pd := &PortDecl{Pos: pos}
	pd.Names = p.parseIdentList()
	p.expect(COLON)
	pd.Dir = p.parseDir()
	pd.Type = p.parseTypeRef()
	return pd
}

func (p *Parser) parseIdentList() []string {
	names := []string{p.expectIdent()}
	for p.accept(COMMA) {
		names = append(names, p.expectIdent())
	}
	return names
}

func (p *Parser) parseDir() PortDir {
	switch {
	case p.accept(KwIN):
		return DirIn
	case p.accept(KwOUT):
		return DirOut
	case p.accept(KwINOUT):
		return DirInOut
	}
	return DirIn // default mode per LRM
}

// parseTypeRef parses a type mark with an optional range or index constraint.
func (p *Parser) parseTypeRef() *TypeRef {
	pos := p.cur().Pos
	tr := &TypeRef{Name: p.expectIdent(), Pos: pos}
	switch {
	case p.accept(KwRANGE):
		tr.Range = p.parseRangeDef()
	case p.at(LPAREN):
		p.next()
		tr.Index = p.parseRangeDef()
		p.expect(RPAREN)
	}
	return tr
}

func (p *Parser) parseRangeDef() *RangeDef {
	r := &RangeDef{}
	r.Low = p.parseSimpleExpr()
	switch {
	case p.accept(KwTO):
	case p.accept(KwDOWNTO):
		r.Downto = true
	default:
		p.errorf(p.cur().Pos, "expected 'to' or 'downto', found %s", p.cur())
	}
	r.High = p.parseSimpleExpr()
	if r.Downto {
		r.Low, r.High = r.High, r.Low
	}
	return r
}

func (p *Parser) parseArchitecture() *Architecture {
	pos := p.expect(KwARCHITECTURE).Pos
	a := &Architecture{Name: p.expectIdent(), Pos: pos}
	p.expect(KwOF)
	a.EntityName = p.expectIdent()
	p.expect(KwIS)
	a.Decls = p.parseDecls()
	p.expect(KwBEGIN)
	for !p.at(KwEND) && !p.at(EOF) {
		if ps := p.parseConcurrentStmt(); ps != nil {
			a.Processes = append(a.Processes, ps)
		}
	}
	p.expect(KwEND)
	p.accept(KwARCHITECTURE)
	if p.at(IDENT) {
		p.next()
	}
	p.expect(SEMI)
	return a
}

// parseDecls parses a declarative part, stopping before 'begin' / 'end'.
func (p *Parser) parseDecls() []Decl {
	var decls []Decl
	for {
		switch p.cur().Kind {
		case KwTYPE:
			if d := p.parseTypeDecl(); d != nil {
				decls = append(decls, d)
			}
		case KwSUBTYPE:
			if d := p.parseSubtypeDecl(); d != nil {
				decls = append(decls, d)
			}
		case KwVARIABLE, KwSIGNAL, KwCONSTANT:
			if d := p.parseObjectDecl(); d != nil {
				decls = append(decls, d)
			}
		case KwPROCEDURE, KwFUNCTION:
			if d := p.parseSubprogram(); d != nil {
				decls = append(decls, d)
			}
		default:
			return decls
		}
	}
}

func (p *Parser) parseTypeDecl() *TypeDecl {
	pos := p.expect(KwTYPE).Pos
	td := &TypeDecl{Name: p.expectIdent(), Pos: pos}
	p.expect(KwIS)
	td.Def = &TypeDef{}
	switch {
	case p.accept(KwARRAY):
		p.expect(LPAREN)
		ad := &ArrayDef{}
		ad.Low = p.parseSimpleExpr()
		switch {
		case p.accept(KwTO):
		case p.accept(KwDOWNTO):
			ad.Downto = true
		default:
			p.errorf(p.cur().Pos, "expected 'to' or 'downto' in array bounds")
		}
		ad.High = p.parseSimpleExpr()
		if ad.Downto {
			ad.Low, ad.High = ad.High, ad.Low
		}
		p.expect(RPAREN)
		p.expect(KwOF)
		ad.Element = p.parseTypeRef()
		td.Def.Array = ad
	case p.accept(KwRANGE):
		td.Def.Range = p.parseRangeDef()
	case p.at(LPAREN):
		// Enumeration type: type state is (idle, run, stop);
		p.next()
		for {
			td.Def.EnumLits = append(td.Def.EnumLits, p.expectIdent())
			if !p.accept(COMMA) {
				break
			}
		}
		p.expect(RPAREN)
	default:
		p.errorf(p.cur().Pos, "unsupported type definition at %s", p.cur())
		p.sync()
		return td
	}
	p.expect(SEMI)
	return td
}

func (p *Parser) parseSubtypeDecl() *SubtypeDecl {
	pos := p.expect(KwSUBTYPE).Pos
	sd := &SubtypeDecl{Name: p.expectIdent(), Pos: pos}
	p.expect(KwIS)
	sd.Base = p.parseTypeRef()
	p.expect(SEMI)
	return sd
}

func (p *Parser) parseObjectDecl() *ObjectDecl {
	od := &ObjectDecl{Pos: p.cur().Pos}
	switch p.next().Kind {
	case KwVARIABLE:
		od.Class = ClassVariable
	case KwSIGNAL:
		od.Class = ClassSignal
	case KwCONSTANT:
		od.Class = ClassConstant
	}
	od.Names = p.parseIdentList()
	p.expect(COLON)
	od.Type = p.parseTypeRef()
	if p.accept(ASSIGN) {
		od.Init = p.parseExpr()
	}
	p.expect(SEMI)
	return od
}

func (p *Parser) parseSubprogram() *SubprogramDecl {
	sp := &SubprogramDecl{Pos: p.cur().Pos}
	sp.IsFunction = p.next().Kind == KwFUNCTION
	sp.Name = p.expectIdent()
	if p.accept(LPAREN) {
		for {
			pd := &ParamDecl{Pos: p.cur().Pos}
			// Optional object class on parameters is accepted and ignored.
			if p.at(KwVARIABLE) || p.at(KwSIGNAL) || p.at(KwCONSTANT) {
				p.next()
			}
			pd.Names = p.parseIdentList()
			p.expect(COLON)
			pd.Dir = p.parseDir()
			pd.Type = p.parseTypeRef()
			sp.Params = append(sp.Params, pd)
			if !p.accept(SEMI) {
				break
			}
		}
		p.expect(RPAREN)
	}
	if sp.IsFunction {
		p.expect(KwRETURN)
		sp.Return = p.parseTypeRef()
	}
	p.expect(KwIS)
	sp.Decls = p.parseDecls()
	p.expect(KwBEGIN)
	sp.Body = p.parseStmts()
	p.expect(KwEND)
	p.accept(KwPROCEDURE)
	p.accept(KwFUNCTION)
	if p.at(IDENT) {
		p.next()
	}
	p.expect(SEMI)
	return sp
}

// parseConcurrentStmt parses one concurrent statement. Only processes
// (optionally labeled) are supported in the subset.
func (p *Parser) parseConcurrentStmt() *ProcessStmt {
	label := ""
	if p.at(IDENT) && p.peek().Kind == COLON {
		label = p.next().Text
		p.next() // colon
	}
	if !p.at(KwPROCESS) {
		p.errorf(p.cur().Pos, "expected process statement, found %s", p.cur())
		p.sync()
		return nil
	}
	pos := p.next().Pos
	ps := &ProcessStmt{Label: label, Pos: pos}
	if ps.Label == "" {
		ps.Label = fmt.Sprintf("process_l%d", pos.Line)
	}
	if p.accept(LPAREN) {
		ps.Sensitivity = p.parseIdentList()
		p.expect(RPAREN)
	}
	p.accept(KwIS)
	ps.Decls = p.parseDecls()
	p.expect(KwBEGIN)
	ps.Body = p.parseStmts()
	p.expect(KwEND)
	p.expect(KwPROCESS)
	if p.at(IDENT) {
		p.next()
	}
	p.expect(SEMI)
	return ps
}

// stmt terminators
func (p *Parser) atStmtListEnd() bool {
	switch p.cur().Kind {
	case KwEND, KwELSE, KwELSIF, KwWHEN, EOF:
		return true
	}
	return false
}

func (p *Parser) parseStmts() []Stmt {
	var stmts []Stmt
	for !p.atStmtListEnd() {
		before := p.i
		if s := p.parseStmt(); s != nil {
			stmts = append(stmts, s)
		}
		if p.i == before { // no progress: bail out of a confused state
			p.sync()
		}
	}
	return stmts
}

func (p *Parser) parseStmt() Stmt {
	switch p.cur().Kind {
	case KwIF:
		return p.parseIf()
	case KwCASE:
		return p.parseCase()
	case KwFOR:
		return p.parseFor("")
	case KwWHILE:
		return p.parseWhile("")
	case KwLOOP:
		return p.parseLoop("")
	case KwWAIT:
		return p.parseWait()
	case KwRETURN:
		pos := p.next().Pos
		rs := &ReturnStmt{Pos: pos}
		if !p.at(SEMI) {
			rs.Value = p.parseExpr()
		}
		p.expect(SEMI)
		return rs
	case KwNULL:
		pos := p.next().Pos
		p.expect(SEMI)
		return &NullStmt{Pos: pos}
	case KwEXIT:
		pos := p.next().Pos
		es := &ExitStmt{Pos: pos}
		if p.at(IDENT) {
			es.Label = p.next().Text
		}
		if p.accept(KwWHEN) {
			es.Cond = p.parseExpr()
		}
		p.expect(SEMI)
		return es
	case IDENT:
		return p.parseIdentStmt()
	}
	p.errorf(p.cur().Pos, "expected statement, found %s", p.cur())
	p.sync()
	return nil
}

// parseIdentStmt handles statements that begin with an identifier: labeled
// loops, assignments, and procedure calls.
func (p *Parser) parseIdentStmt() Stmt {
	// Labeled loop?
	if p.peek().Kind == COLON {
		label := p.cur().Text
		switch p.toks[p.i+2].Kind {
		case KwFOR:
			p.next()
			p.next()
			return p.parseFor(label)
		case KwWHILE:
			p.next()
			p.next()
			return p.parseWhile(label)
		case KwLOOP:
			p.next()
			p.next()
			return p.parseLoop(label)
		}
	}
	pos := p.cur().Pos
	name := p.next().Text
	switch p.cur().Kind {
	case LPAREN:
		// Either an indexed assignment target or a procedure call.
		args := p.parseArgs()
		switch p.cur().Kind {
		case ASSIGN:
			p.next()
			v := p.parseExpr()
			p.expect(SEMI)
			return &AssignStmt{Target: &CallExpr{Name: name, Args: args, Pos: pos}, Value: v, Pos: pos}
		case SIGASSIGN:
			p.next()
			v := p.parseExpr()
			p.expect(SEMI)
			return &AssignStmt{Target: &CallExpr{Name: name, Args: args, Pos: pos}, Value: v, IsSignal: true, Pos: pos}
		default:
			p.expect(SEMI)
			return &CallStmt{Name: name, Args: args, Pos: pos}
		}
	case ASSIGN:
		p.next()
		v := p.parseExpr()
		p.expect(SEMI)
		return &AssignStmt{Target: &NameExpr{Name: name, Pos: pos}, Value: v, Pos: pos}
	case SIGASSIGN:
		p.next()
		v := p.parseExpr()
		p.expect(SEMI)
		return &AssignStmt{Target: &NameExpr{Name: name, Pos: pos}, Value: v, IsSignal: true, Pos: pos}
	default:
		// Parameterless procedure call: "Convolve;"
		p.expect(SEMI)
		return &CallStmt{Name: name, Pos: pos}
	}
}

func (p *Parser) parseArgs() []Expr {
	p.expect(LPAREN)
	var args []Expr
	if !p.at(RPAREN) {
		for {
			args = append(args, p.parseExpr())
			if !p.accept(COMMA) {
				break
			}
		}
	}
	p.expect(RPAREN)
	return args
}

func (p *Parser) parseIf() Stmt {
	pos := p.expect(KwIF).Pos
	s := &IfStmt{Pos: pos}
	s.Cond = p.parseExpr()
	p.expect(KwTHEN)
	s.Then = p.parseStmts()
	for p.at(KwELSIF) {
		epos := p.next().Pos
		cond := p.parseExpr()
		p.expect(KwTHEN)
		body := p.parseStmts()
		s.Elifs = append(s.Elifs, ElifClause{Cond: cond, Body: body, Pos: epos})
	}
	if p.accept(KwELSE) {
		s.Else = p.parseStmts()
	}
	p.expect(KwEND)
	p.expect(KwIF)
	p.expect(SEMI)
	return s
}

func (p *Parser) parseCase() Stmt {
	pos := p.expect(KwCASE).Pos
	s := &CaseStmt{Pos: pos}
	s.Expr = p.parseExpr()
	p.expect(KwIS)
	for p.at(KwWHEN) {
		wpos := p.next().Pos
		w := WhenClause{Pos: wpos}
		if p.accept(KwOTHERS) {
			w.Choices = nil
		} else {
			for {
				w.Choices = append(w.Choices, p.parseSimpleExpr())
				if !p.accept(BAR) {
					break
				}
			}
		}
		p.expect(ARROW)
		w.Body = p.parseStmts()
		s.Whens = append(s.Whens, w)
	}
	p.expect(KwEND)
	p.expect(KwCASE)
	p.expect(SEMI)
	return s
}

func (p *Parser) parseFor(label string) Stmt {
	pos := p.expect(KwFOR).Pos
	s := &ForStmt{Pos: pos, Label: label}
	s.Var = p.expectIdent()
	p.expect(KwIN)
	s.Low = p.parseSimpleExpr()
	switch {
	case p.accept(KwTO):
	case p.accept(KwDOWNTO):
		s.Downto = true
	default:
		p.errorf(p.cur().Pos, "expected 'to' or 'downto' in for range")
	}
	s.High = p.parseSimpleExpr()
	p.expect(KwLOOP)
	s.Body = p.parseStmts()
	p.expect(KwEND)
	p.expect(KwLOOP)
	if p.at(IDENT) {
		p.next()
	}
	p.expect(SEMI)
	return s
}

func (p *Parser) parseWhile(label string) Stmt {
	pos := p.expect(KwWHILE).Pos
	s := &WhileStmt{Pos: pos, Label: label}
	s.Cond = p.parseExpr()
	p.expect(KwLOOP)
	s.Body = p.parseStmts()
	p.expect(KwEND)
	p.expect(KwLOOP)
	if p.at(IDENT) {
		p.next()
	}
	p.expect(SEMI)
	return s
}

func (p *Parser) parseLoop(label string) Stmt {
	pos := p.expect(KwLOOP).Pos
	s := &LoopStmt{Pos: pos, Label: label}
	s.Body = p.parseStmts()
	p.expect(KwEND)
	p.expect(KwLOOP)
	if p.at(IDENT) {
		p.next()
	}
	p.expect(SEMI)
	return s
}

func (p *Parser) parseWait() Stmt {
	pos := p.expect(KwWAIT).Pos
	s := &WaitStmt{Pos: pos}
	switch {
	case p.accept(KwON):
		s.OnSignals = p.parseIdentList()
	case p.accept(KwUNTIL):
		s.Until = p.parseExpr()
	case p.accept(KwFOR):
		// Time expressions ("wait for 10 ms") are skipped to the semicolon.
		for !p.at(SEMI) && !p.at(EOF) {
			p.next()
		}
	}
	p.expect(SEMI)
	return s
}

// Expression grammar, loosest to tightest:
//
//	expr     := relation { (and|or|xor|nand|nor) relation }
//	relation := simple [ (=|/=|<|<=|>|>=) simple ]
//	simple   := [sign] term { (+|-|&) term }
//	term     := factor { (*|/|mod|rem) factor }
//	factor   := [not|abs] primary
//	primary  := literal | name | name(args) | name'attr | (expr) | aggregate
func (p *Parser) parseExpr() Expr {
	e := p.parseRelation()
	for {
		op := p.cur().Kind
		switch op {
		case KwAND, KwOR, KwXOR, KwNAND, KwNOR:
			pos := p.next().Pos
			r := p.parseRelation()
			e = &BinExpr{Op: op, L: e, R: r, Pos: pos}
		default:
			return e
		}
	}
}

func (p *Parser) parseRelation() Expr {
	e := p.parseSimpleExpr()
	op := p.cur().Kind
	switch op {
	case EQ, NEQ, LT, SIGASSIGN, GT, GE:
		pos := p.next().Pos
		r := p.parseSimpleExpr()
		// SIGASSIGN in an expression context is the <= relational operator.
		return &BinExpr{Op: op, L: e, R: r, Pos: pos}
	}
	return e
}

func (p *Parser) parseSimpleExpr() Expr {
	var e Expr
	switch p.cur().Kind {
	case MINUS, PLUS:
		op := p.next()
		e = &UnaryExpr{Op: op.Kind, X: p.parseTerm(), Pos: op.Pos}
	default:
		e = p.parseTerm()
	}
	for {
		op := p.cur().Kind
		switch op {
		case PLUS, MINUS, AMP:
			pos := p.next().Pos
			r := p.parseTerm()
			e = &BinExpr{Op: op, L: e, R: r, Pos: pos}
		default:
			return e
		}
	}
}

func (p *Parser) parseTerm() Expr {
	e := p.parseFactor()
	for {
		op := p.cur().Kind
		switch op {
		case STAR, SLASH, KwMOD, KwREM:
			pos := p.next().Pos
			r := p.parseFactor()
			e = &BinExpr{Op: op, L: e, R: r, Pos: pos}
		default:
			return e
		}
	}
}

func (p *Parser) parseFactor() Expr {
	switch p.cur().Kind {
	case KwNOT, KwABS:
		op := p.next()
		return &UnaryExpr{Op: op.Kind, X: p.parseFactor(), Pos: op.Pos}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		return &IntExpr{Val: t.Val, Pos: t.Pos}
	case CHARLIT:
		p.next()
		return &CharExpr{Val: byte(t.Val), Pos: t.Pos}
	case STRLIT:
		p.next()
		return &StrExpr{Val: t.Text, Pos: t.Pos}
	case IDENT:
		p.next()
		switch p.cur().Kind {
		case LPAREN:
			args := p.parseArgs()
			return &CallExpr{Name: t.Text, Args: args, Pos: t.Pos}
		case TICK:
			p.next()
			attr := p.expectIdent()
			return &AttrExpr{Prefix: t.Text, Attr: attr, Pos: t.Pos}
		}
		return &NameExpr{Name: t.Text, Pos: t.Pos}
	case LPAREN:
		p.next()
		if p.at(KwOTHERS) {
			return p.parseAggregateTail(nil, t.Pos)
		}
		e := p.parseExpr()
		switch p.cur().Kind {
		case ARROW, COMMA:
			return p.parseAggregateTail(e, t.Pos)
		}
		p.expect(RPAREN)
		return e
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &IntExpr{Val: 0, Pos: t.Pos}
}

// parseAggregateTail finishes parsing an aggregate whose opening paren has
// been consumed. first is the already-parsed first element (nil when the
// aggregate starts with 'others').
func (p *Parser) parseAggregateTail(first Expr, pos Pos) Expr {
	agg := &AggregateExpr{Pos: pos}
	// Handle the already-parsed first element.
	if first != nil {
		if p.accept(ARROW) {
			agg.Assocs = append(agg.Assocs, AggrAssoc{Choice: first, Value: p.parseExpr()})
		} else {
			agg.Assocs = append(agg.Assocs, AggrAssoc{Value: first})
		}
		if !p.accept(COMMA) {
			p.expect(RPAREN)
			return agg
		}
	}
	for {
		var a AggrAssoc
		if p.accept(KwOTHERS) {
			p.expect(ARROW)
			a = AggrAssoc{Value: p.parseExpr(), IsOthers: true}
		} else {
			e := p.parseExpr()
			if p.accept(ARROW) {
				a = AggrAssoc{Choice: e, Value: p.parseExpr()}
			} else {
				a = AggrAssoc{Value: e}
			}
		}
		agg.Assocs = append(agg.Assocs, a)
		if !p.accept(COMMA) {
			break
		}
	}
	p.expect(RPAREN)
	return agg
}
