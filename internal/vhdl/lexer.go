package vhdl

import (
	"fmt"
	"strconv"
	"strings"
)

// A LexError describes a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer converts VHDL source text into a token stream. It is resilient:
// on an invalid byte it records an error, skips the byte, and continues, so
// a single bad character does not abort parsing of the rest of the file.
type Lexer struct {
	src    string
	off    int // byte offset of the next unread byte
	line   int
	col    int
	Errors []*LexError
}

// NewLexer returns a lexer over src. File is consumed as raw bytes; VHDL
// source in the subset is ASCII.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) errorf(p Pos, format string, args ...any) {
	l.Errors = append(l.Errors, &LexError{Pos: p, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) || c == '_' }

// skipBlank consumes whitespace and "--" comments. It scans with a local
// offset and batches the line/col bookkeeping: this loop visits most bytes
// of the file, and a method call per byte dominates lexing time.
func (l *Lexer) skipBlank() {
	src, i := l.src, l.off
	line, col := l.line, l.col
	for i < len(src) {
		c := src[i]
		if c == '\n' {
			line++
			col = 1
			i++
		} else if c == ' ' || c == '\t' || c == '\r' {
			col++
			i++
		} else if c == '-' && i+1 < len(src) && src[i+1] == '-' {
			for i < len(src) && src[i] != '\n' {
				i++
				col++
			}
		} else {
			break
		}
	}
	l.line, l.col, l.off = line, col, i
}

// pos returns the position of the next unread byte.
func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

// Next returns the next token. At end of input it returns an EOF token
// (repeatedly, if called again).
func (l *Lexer) Next() Token {
	l.skipBlank()
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: p}
	}
	c := l.peek()
	switch {
	case isLetter(c):
		return l.ident(p)
	case isDigit(c):
		return l.number(p)
	}
	l.advance()
	switch c {
	case '(':
		return Token{Kind: LPAREN, Pos: p}
	case ')':
		return Token{Kind: RPAREN, Pos: p}
	case ';':
		return Token{Kind: SEMI, Pos: p}
	case ',':
		return Token{Kind: COMMA, Pos: p}
	case '.':
		return Token{Kind: DOT, Pos: p}
	case '+':
		return Token{Kind: PLUS, Pos: p}
	case '-':
		return Token{Kind: MINUS, Pos: p}
	case '*':
		return Token{Kind: STAR, Pos: p}
	case '&':
		return Token{Kind: AMP, Pos: p}
	case '|':
		return Token{Kind: BAR, Pos: p}
	case ':':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: ASSIGN, Pos: p}
		}
		return Token{Kind: COLON, Pos: p}
	case '=':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: ARROW, Pos: p}
		}
		return Token{Kind: EQ, Pos: p}
	case '/':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: NEQ, Pos: p}
		}
		return Token{Kind: SLASH, Pos: p}
	case '<':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: SIGASSIGN, Pos: p}
		}
		return Token{Kind: LT, Pos: p}
	case '>':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: GE, Pos: p}
		}
		return Token{Kind: GT, Pos: p}
	case '\'':
		return l.charlit(p)
	case '"':
		return l.strlit(p)
	}
	l.errorf(p, "invalid character %q", string(rune(c)))
	return l.Next()
}

func (l *Lexer) ident(p Pos) Token {
	src, i := l.src, l.off
	start := i
	hasUpper := false
	// Identifiers never contain newlines, so the column advances by the
	// token length and the scan stays in this tight loop.
	for i < len(src) && isIdent(src[i]) {
		if c := src[i]; c >= 'A' && c <= 'Z' {
			hasUpper = true
		}
		i++
	}
	l.col += i - l.off
	l.off = i
	orig := l.src[start:l.off]
	// VHDL identifiers are case-insensitive; most source is already
	// lower-case, so only allocate a lowered copy when needed.
	lower := orig
	if hasUpper {
		lower = strings.ToLower(orig)
	}
	return Token{Kind: Lookup(lower), Text: lower, Orig: orig, Pos: p}
}

func (l *Lexer) number(p Pos) Token {
	src, i := l.src, l.off
	start := i
	for i < len(src) && (isDigit(src[i]) || src[i] == '_') {
		i++
	}
	l.col += i - l.off
	l.off = i
	// Based literals like 16#FF# are accepted for completeness.
	if l.peek() == '#' {
		l.advance()
		for l.off < len(l.src) && l.peek() != '#' && !isSpace(l.peek()) {
			l.advance()
		}
		if l.peek() == '#' {
			l.advance()
		}
	}
	text := l.src[start:l.off]
	val, err := parseIntLiteral(text)
	if err != nil {
		l.errorf(p, "invalid integer literal %q: %v", text, err)
	}
	return Token{Kind: INTLIT, Text: text, Orig: text, Val: val, Pos: p}
}

// parseIntLiteral handles plain decimal with optional underscores and VHDL
// based literals of the form base#digits#.
func parseIntLiteral(text string) (int64, error) {
	clean := strings.ReplaceAll(text, "_", "")
	if i := strings.IndexByte(clean, '#'); i >= 0 {
		base, err := strconv.ParseInt(clean[:i], 10, 64)
		if err != nil || base < 2 || base > 16 {
			return 0, fmt.Errorf("bad base in %q", text)
		}
		body := strings.TrimSuffix(clean[i+1:], "#")
		return strconv.ParseInt(strings.ToLower(body), int(base), 64)
	}
	return strconv.ParseInt(clean, 10, 64)
}

func (l *Lexer) charlit(p Pos) Token {
	// The tick may be a character literal '0' or an attribute tick (x'range).
	// A char literal is exactly '<c>'. Otherwise emit TICK.
	if l.off+1 < len(l.src) && l.src[l.off+1] == '\'' {
		c := l.advance()
		l.advance() // closing quote
		text := string(rune(c))
		return Token{Kind: CHARLIT, Text: text, Orig: "'" + text + "'", Val: int64(c), Pos: p}
	}
	return Token{Kind: TICK, Pos: p}
}

func (l *Lexer) strlit(p Pos) Token {
	start := l.off
	for l.off < len(l.src) && l.peek() != '"' && l.peek() != '\n' {
		l.advance()
	}
	text := l.src[start:l.off]
	if l.peek() == '"' {
		l.advance()
	} else {
		l.errorf(p, "unterminated string literal")
	}
	return Token{Kind: STRLIT, Text: text, Orig: `"` + text + `"`, Pos: p}
}

// LexAll tokenizes the whole input, returning the tokens (terminated by a
// single EOF token) and any lexical errors.
func LexAll(src string) ([]Token, []*LexError) {
	// Pre-size for the observed token density of the subset (one token per
	// ~5 bytes of formatted source) to avoid repeated growth copies.
	return lexAppend(make([]Token, 0, len(src)/5+16), src)
}

// lexAppend tokenizes src onto toks, reusing its capacity. The returned
// tokens only reference substrings of src, never each other, so a caller
// that copies what it needs may recycle the buffer.
func lexAppend(toks []Token, src string) ([]Token, []*LexError) {
	l := NewLexer(src)
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, l.Errors
		}
	}
}
