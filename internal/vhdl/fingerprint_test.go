package vhdl

import (
	"strings"
	"testing"
)

const fpSrc = `
entity e is
    port ( clk : in bit; q : out integer );
end;

architecture a of e is
    variable shared_v : integer := 3;
    procedure outer(x : in integer) is
        variable t : integer;
        procedure inner(y : in integer) is
        begin
            t := y + 1;
        end;
    begin
        inner(x);
        t := t * 2;
    end;
begin
    main: process (clk)
        variable acc : integer;
    begin
        acc := shared_v;
        outer(acc);
        q <= acc;
    end process;

    aux: process
    begin
        wait on clk;
    end process;
end;
`

func fpOf(t *testing.T, src string) *DesignFP {
	t.Helper()
	df, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Fingerprint(df)
}

func TestFingerprintDeterministicAndFormatInsensitive(t *testing.T) {
	a := fpOf(t, fpSrc)
	b := fpOf(t, fpSrc)
	if a.Context != b.Context || len(a.Units) != len(b.Units) {
		t.Fatal("fingerprints of identical source differ")
	}
	for i := range a.Units {
		if a.Units[i] != b.Units[i] {
			t.Errorf("unit %d differs across identical parses", i)
		}
	}
	// Reformatting (print round-trip) and comments must not perturb any hash.
	pretty := Format(MustParse(fpSrc))
	c := fpOf(t, "-- a leading comment\n"+pretty)
	if c.Context != a.Context {
		t.Error("context hash changed under reformatting")
	}
	for _, u := range a.Units {
		cu, ok := c.Lookup(u.Path)
		if !ok {
			t.Fatalf("unit %q lost in reformatted source", u.Path)
		}
		if cu.Hash != u.Hash {
			t.Errorf("unit %q hash changed under reformatting", u.Path)
		}
	}
}

func TestFingerprintPaths(t *testing.T) {
	fp := fpOf(t, fpSrc)
	want := []string{"outer", "outer/inner", "main", "aux"}
	if len(fp.Units) != len(want) {
		t.Fatalf("got %d units, want %d", len(fp.Units), len(want))
	}
	for i, path := range want {
		if fp.Units[i].Path != path {
			t.Errorf("unit %d path = %q, want %q", i, fp.Units[i].Path, path)
		}
		if fp.Units[i].Pos.Line == 0 {
			t.Errorf("unit %q has no position", path)
		}
	}
}

// editUnits returns the set of unit paths whose hash differs between the
// two sources, plus whether the context hash differs.
func fpDiff(t *testing.T, oldSrc, newSrc string) (changed []string, ctx bool) {
	t.Helper()
	a, b := fpOf(t, oldSrc), fpOf(t, newSrc)
	for _, u := range a.Units {
		if nu, ok := b.Lookup(u.Path); !ok || nu.Hash != u.Hash {
			changed = append(changed, u.Path)
		}
	}
	return changed, a.Context != b.Context
}

func TestFingerprintLocalizesBodyEdit(t *testing.T) {
	edited := strings.Replace(fpSrc, "acc := shared_v;", "acc := shared_v + 1;", 1)
	changed, ctx := fpDiff(t, fpSrc, edited)
	if ctx {
		t.Error("process body edit changed the context hash")
	}
	if len(changed) != 1 || changed[0] != "main" {
		t.Errorf("changed units = %v, want [main]", changed)
	}
}

func TestFingerprintNestedBodyExcludedFromParent(t *testing.T) {
	edited := strings.Replace(fpSrc, "t := y + 1;", "t := y + 2;", 1)
	changed, ctx := fpDiff(t, fpSrc, edited)
	if ctx {
		t.Error("nested subprogram edit changed the context hash")
	}
	if len(changed) != 1 || changed[0] != "outer/inner" {
		t.Errorf("changed units = %v, want [outer/inner]", changed)
	}
	// Editing the parent's own statements must not touch the nested unit.
	edited = strings.Replace(fpSrc, "t := t * 2;", "t := t * 3;", 1)
	changed, _ = fpDiff(t, fpSrc, edited)
	if len(changed) != 1 || changed[0] != "outer" {
		t.Errorf("changed units = %v, want [outer]", changed)
	}
}

func TestFingerprintContextCoversArchDecls(t *testing.T) {
	edited := strings.Replace(fpSrc, "shared_v : integer := 3", "shared_v : integer := 4", 1)
	changed, ctx := fpDiff(t, fpSrc, edited)
	if !ctx {
		t.Error("architecture-level initializer edit did not change the context hash")
	}
	if len(changed) != 0 {
		t.Errorf("initializer edit changed unit hashes %v", changed)
	}
	// Port edits are context too.
	edited = strings.Replace(fpSrc, "q : out integer", "q : out bit", 1)
	if _, ctx := fpDiff(t, fpSrc, edited); !ctx {
		t.Error("port type edit did not change the context hash")
	}
}

func TestFingerprintRenameMovesPath(t *testing.T) {
	edited := strings.ReplaceAll(fpSrc, "aux", "aux2")
	a, b := fpOf(t, fpSrc), fpOf(t, edited)
	if _, ok := b.Lookup("aux"); ok {
		t.Error("renamed unit still present under old path")
	}
	if _, ok := b.Lookup("aux2"); !ok {
		t.Error("renamed unit missing under new path")
	}
	if _, ok := a.Lookup("aux"); !ok {
		t.Error("original unit missing")
	}
}

func TestFingerprintExamplesMatchPrintedForm(t *testing.T) {
	// On the paper examples: two processes have equal hashes iff their
	// printed forms are equal, tying the fingerprint to the printer
	// contract it stands in for.
	for _, name := range []string{"ans", "ether", "fuzzy", "vol"} {
		src := readTestdata(t, name+".vhd")
		df := MustParse(src)
		fp := Fingerprint(df)
		printed := make(map[string]string)
		for _, a := range df.Architectures {
			for _, ps := range a.Processes {
				var sb strings.Builder
				p := &printer{w: &sb}
				p.process(ps)
				printed[ps.Label] = sb.String()
			}
		}
		seen := make(map[uint64]string) // hash → printed form
		for _, u := range fp.Units {
			text, ok := printed[u.Name]
			if !ok {
				continue // subprogram, not a process
			}
			if prev, dup := seen[u.Hash]; dup && prev != text {
				t.Errorf("%s: hash collision between distinct printed forms", name)
			}
			seen[u.Hash] = text
		}
	}
}
