package vhdl

// This file defines the abstract syntax tree produced by the parser.
// Node names follow the VHDL LRM vocabulary where practical.

// DesignFile is the root of a parsed source file. The subset allows any
// number of entity/architecture pairs per file.
type DesignFile struct {
	Entities      []*Entity
	Architectures []*Architecture
}

// Entity is an entity declaration: name plus port list.
type Entity struct {
	Name  string
	Ports []*PortDecl
	Pos   Pos
}

// PortDir is a port or parameter direction.
type PortDir int

// Port and parameter directions.
const (
	DirIn PortDir = iota
	DirOut
	DirInOut
)

func (d PortDir) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	default:
		return "inout"
	}
}

// PortDecl declares one or more ports of the same mode and type.
type PortDecl struct {
	Names []string
	Dir   PortDir
	Type  *TypeRef
	Pos   Pos
}

// Architecture is an architecture body: declarations plus concurrent
// statements (processes, in this subset).
type Architecture struct {
	Name       string
	EntityName string
	Decls      []Decl
	Processes  []*ProcessStmt
	Pos        Pos
}

// Decl is any declarative-part item.
type Decl interface{ declNode() }

// TypeDecl declares a named type ("type mr_array is array (1 to 384) of integer;").
type TypeDecl struct {
	Name string
	Def  *TypeDef
	Pos  Pos
}

// SubtypeDecl declares a constrained alias ("subtype byte is integer range 0 to 255;").
type SubtypeDecl struct {
	Name string
	Base *TypeRef
	Pos  Pos
}

// ObjectClass distinguishes variables, signals and constants.
type ObjectClass int

// Object classes.
const (
	ClassVariable ObjectClass = iota
	ClassSignal
	ClassConstant
)

func (c ObjectClass) String() string {
	switch c {
	case ClassVariable:
		return "variable"
	case ClassSignal:
		return "signal"
	default:
		return "constant"
	}
}

// ObjectDecl declares one or more variables/signals/constants.
type ObjectDecl struct {
	Class ObjectClass
	Names []string
	Type  *TypeRef
	Init  Expr // optional
	Pos   Pos
}

// ParamDecl is a subprogram parameter group.
type ParamDecl struct {
	Names []string
	Dir   PortDir
	Type  *TypeRef
	Pos   Pos
}

// SubprogramDecl declares a procedure or function with its body.
type SubprogramDecl struct {
	Name       string
	IsFunction bool
	Params     []*ParamDecl
	Return     *TypeRef // functions only
	Decls      []Decl
	Body       []Stmt
	Pos        Pos
}

// ProcessStmt is a process with an optional label and sensitivity list.
type ProcessStmt struct {
	Label       string
	Sensitivity []string
	Decls       []Decl
	Body        []Stmt
	Pos         Pos
}

func (*TypeDecl) declNode()       {}
func (*SubtypeDecl) declNode()    {}
func (*ObjectDecl) declNode()     {}
func (*SubprogramDecl) declNode() {}

// TypeDef is the definition part of a type declaration.
type TypeDef struct {
	// Exactly one of Array / Range is set; a nil both means an enumeration,
	// recorded via EnumLits.
	Array    *ArrayDef
	Range    *RangeDef
	EnumLits []string
}

// ArrayDef is a constrained array definition.
type ArrayDef struct {
	Low, High Expr // index bounds (usually integer literals)
	Downto    bool
	Element   *TypeRef
}

// RangeDef is an integer range constraint.
type RangeDef struct {
	Low, High Expr
	Downto    bool
}

// TypeRef names a type, optionally with an inline range constraint
// ("integer range 0 to 255") or an index constraint ("bit_vector(7 downto 0)").
type TypeRef struct {
	Name  string
	Range *RangeDef // optional
	Index *RangeDef // optional, for array index constraints
	Pos   Pos
}

// Stmt is any sequential statement.
type Stmt interface{ stmtNode() }

// AssignStmt is a variable (:=) or signal (<=) assignment.
type AssignStmt struct {
	Target   Expr // NameExpr or IndexExpr
	Value    Expr
	IsSignal bool
	Pos      Pos
}

// IfStmt is if/elsif*/else.
type IfStmt struct {
	Cond  Expr
	Then  []Stmt
	Elifs []ElifClause
	Else  []Stmt
	Pos   Pos
}

// ElifClause is one elsif arm.
type ElifClause struct {
	Cond Expr
	Body []Stmt
	Pos  Pos
}

// CaseStmt is a case statement.
type CaseStmt struct {
	Expr  Expr
	Whens []WhenClause
	Pos   Pos
}

// WhenClause is one case alternative; a nil Choices slice means "when others".
type WhenClause struct {
	Choices []Expr
	Body    []Stmt
	Pos     Pos
}

// ForStmt is a for loop over a static range. Low and High are the left
// and right bounds in source order: for a downto loop Low is the larger
// bound. (RangeDef and ArrayDef, by contrast, are normalized Low <= High
// at parse time.)
type ForStmt struct {
	Var    string
	Low    Expr
	High   Expr
	Downto bool
	Body   []Stmt
	Label  string
	Pos    Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond  Expr
	Body  []Stmt
	Label string
	Pos   Pos
}

// LoopStmt is a bare (infinite) loop.
type LoopStmt struct {
	Body  []Stmt
	Label string
	Pos   Pos
}

// ExitStmt exits the innermost (or labeled) loop, optionally conditional.
type ExitStmt struct {
	Label string
	Cond  Expr
	Pos   Pos
}

// CallStmt is a procedure call statement.
type CallStmt struct {
	Name string
	Args []Expr
	Pos  Pos
}

// WaitStmt is "wait", "wait on ...", "wait until ...", or "wait for ..." —
// the subset records which form but not time expressions precisely.
type WaitStmt struct {
	OnSignals []string
	Until     Expr
	Pos       Pos
}

// ReturnStmt returns from a subprogram, with an optional value.
type ReturnStmt struct {
	Value Expr
	Pos   Pos
}

// NullStmt is the VHDL null statement.
type NullStmt struct{ Pos Pos }

func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*CaseStmt) stmtNode()   {}
func (*ForStmt) stmtNode()    {}
func (*WhileStmt) stmtNode()  {}
func (*LoopStmt) stmtNode()   {}
func (*ExitStmt) stmtNode()   {}
func (*CallStmt) stmtNode()   {}
func (*WaitStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode() {}
func (*NullStmt) stmtNode()   {}

// Expr is any expression.
type Expr interface{ exprNode() }

// NameExpr is a simple name reference.
type NameExpr struct {
	Name string
	Pos  Pos
}

// IntExpr is an integer literal.
type IntExpr struct {
	Val int64
	Pos Pos
}

// CharExpr is a character literal such as '0'.
type CharExpr struct {
	Val byte
	Pos Pos
}

// StrExpr is a string literal.
type StrExpr struct {
	Val string
	Pos Pos
}

// CallExpr is either an array index or a function call; VHDL syntax cannot
// distinguish them, so the semantic pass resolves which.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// BinExpr is a binary operation. Op is the token kind of the operator
// (PLUS, KwAND, EQ, ...).
type BinExpr struct {
	Op   Kind
	L, R Expr
	Pos  Pos
}

// UnaryExpr is a unary operation (MINUS, PLUS, KwNOT, KwABS).
type UnaryExpr struct {
	Op  Kind
	X   Expr
	Pos Pos
}

// AttrExpr is an attribute reference such as x'length or clk'event.
type AttrExpr struct {
	Prefix string
	Attr   string
	Pos    Pos
}

// AggregateExpr is a simple aggregate such as (others => 0).
type AggregateExpr struct {
	Assocs []AggrAssoc
	Pos    Pos
}

// AggrAssoc is one association in an aggregate. IsOthers marks an
// "others => value" association; otherwise a nil Choice is positional.
type AggrAssoc struct {
	Choice   Expr // nil for others/positional
	Value    Expr
	IsOthers bool
}

func (*NameExpr) exprNode()      {}
func (*IntExpr) exprNode()       {}
func (*CharExpr) exprNode()      {}
func (*StrExpr) exprNode()       {}
func (*CallExpr) exprNode()      {}
func (*BinExpr) exprNode()       {}
func (*UnaryExpr) exprNode()     {}
func (*AttrExpr) exprNode()      {}
func (*AggregateExpr) exprNode() {}

// ExprPos returns the source position of an expression.
func ExprPos(e Expr) Pos {
	switch x := e.(type) {
	case *NameExpr:
		return x.Pos
	case *IntExpr:
		return x.Pos
	case *CharExpr:
		return x.Pos
	case *StrExpr:
		return x.Pos
	case *CallExpr:
		return x.Pos
	case *BinExpr:
		return x.Pos
	case *UnaryExpr:
		return x.Pos
	case *AttrExpr:
		return x.Pos
	case *AggregateExpr:
		return x.Pos
	}
	return Pos{}
}

// StmtPos returns the source position of a statement.
func StmtPos(s Stmt) Pos {
	switch x := s.(type) {
	case *AssignStmt:
		return x.Pos
	case *IfStmt:
		return x.Pos
	case *CaseStmt:
		return x.Pos
	case *ForStmt:
		return x.Pos
	case *WhileStmt:
		return x.Pos
	case *LoopStmt:
		return x.Pos
	case *ExitStmt:
		return x.Pos
	case *CallStmt:
		return x.Pos
	case *WaitStmt:
		return x.Pos
	case *ReturnStmt:
		return x.Pos
	case *NullStmt:
		return x.Pos
	}
	return Pos{}
}

// WalkStmts applies f to every statement in the list, recursing into
// compound statements. It is the workhorse for access extraction, CDFG
// construction and frequency analysis.
func WalkStmts(stmts []Stmt, f func(Stmt)) {
	for _, s := range stmts {
		f(s)
		switch st := s.(type) {
		case *IfStmt:
			WalkStmts(st.Then, f)
			for _, e := range st.Elifs {
				WalkStmts(e.Body, f)
			}
			WalkStmts(st.Else, f)
		case *CaseStmt:
			for _, w := range st.Whens {
				WalkStmts(w.Body, f)
			}
		case *ForStmt:
			WalkStmts(st.Body, f)
		case *WhileStmt:
			WalkStmts(st.Body, f)
		case *LoopStmt:
			WalkStmts(st.Body, f)
		}
	}
}

// WalkExpr applies f to e and every subexpression of e.
func WalkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *CallExpr:
		for _, a := range x.Args {
			WalkExpr(a, f)
		}
	case *BinExpr:
		WalkExpr(x.L, f)
		WalkExpr(x.R, f)
	case *UnaryExpr:
		WalkExpr(x.X, f)
	case *AggregateExpr:
		for _, a := range x.Assocs {
			WalkExpr(a.Choice, f)
			WalkExpr(a.Value, f)
		}
	}
}
