package profile

import (
	"strings"
	"testing"
)

// FuzzProfileParse checks that arbitrary profile text never panics and
// that accepted profiles survive Dump/Parse.
func FuzzProfileParse(f *testing.F) {
	f.Add("beh.br1 0.5 0.5\nbeh.loop1 10 20\ndefaultloop 2\n")
	f.Add("")
	f.Add("# only a comment")
	f.Add("beh.br1 2.0")
	f.Add("x.loop1 1 2 3")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := p.Dump(&sb); err != nil {
			t.Fatalf("dump: %v", err)
		}
		if _, err := Parse(strings.NewReader(sb.String())); err != nil {
			t.Fatalf("dumped profile does not reparse: %v\n%s", err, sb.String())
		}
	})
}
