// Package profile implements branch-probability files and the expected
// access-count engine of §2.4.1: the accfreq (and accmin/accmax) weight of
// each SLIF channel is the number of times the access occurs during an
// average start-to-finish execution of the source behavior, "as determined
// from a branch probability file ... obtained manually or through
// profiling".
//
// Profile file format (one record per line, '#' comments):
//
//	<behavior>.br<N>   <p1> [p2 ...]   # probabilities of branch site N's arms
//	<behavior>.loop<N> <count> [max]   # iteration count of loop site N
//	defaultloop <count>
//
// Branch and loop sites are numbered per behavior in source (pre-order)
// order, starting at 1. An if with e elsif arms and an else has e+2 arms;
// a case has one arm per when clause. Missing branch records default to
// uniform arm probabilities; missing loop records default to the file's
// defaultloop (1 if unset). For-loops with static bounds never consult the
// profile — their counts are exact.
package profile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Profile holds branch probabilities and loop iteration counts.
type Profile struct {
	branch      map[string][]float64
	loop        map[string]float64
	loopMax     map[string]float64
	DefaultLoop float64
}

// Empty returns a profile with no records: uniform branches, 1-iteration
// dynamic loops.
func Empty() *Profile {
	return &Profile{
		branch:      make(map[string][]float64),
		loop:        make(map[string]float64),
		loopMax:     make(map[string]float64),
		DefaultLoop: 1,
	}
}

// SetBranch records the arm probabilities of branch site n of behavior beh.
func (p *Profile) SetBranch(beh string, n int, probs ...float64) {
	p.branch[fmt.Sprintf("%s.br%d", strings.ToLower(beh), n)] = probs
}

// SetLoop records the expected (and optionally maximum) iteration count of
// dynamic-loop site n of behavior beh.
func (p *Profile) SetLoop(beh string, n int, count float64, maxCount ...float64) {
	key := fmt.Sprintf("%s.loop%d", strings.ToLower(beh), n)
	p.loop[key] = count
	if len(maxCount) > 0 {
		p.loopMax[key] = maxCount[0]
	}
}

// Branch returns the probability of arm (0-based) of branch site n of
// behavior beh, defaulting to 1/arms when unrecorded. Recorded
// probabilities are normalized over the arms they cover; arms beyond the
// recorded list share the remainder uniformly.
func (p *Profile) Branch(beh string, n, arm, arms int) float64 {
	if arms <= 0 {
		return 1
	}
	probs, ok := p.branch[fmt.Sprintf("%s.br%d", strings.ToLower(beh), n)]
	if !ok || len(probs) == 0 {
		return 1 / float64(arms)
	}
	if arm < len(probs) {
		return probs[arm]
	}
	var sum float64
	for _, q := range probs {
		sum += q
	}
	rest := arms - len(probs)
	if rest <= 0 {
		return 0
	}
	rem := 1 - sum
	if rem < 0 {
		rem = 0
	}
	return rem / float64(rest)
}

// Loop returns the expected and maximum iteration counts of dynamic-loop
// site n of behavior beh.
func (p *Profile) Loop(beh string, n int) (avg, maxCount float64) {
	key := fmt.Sprintf("%s.loop%d", strings.ToLower(beh), n)
	avg, ok := p.loop[key]
	if !ok {
		avg = p.DefaultLoop
	}
	maxCount, ok = p.loopMax[key]
	if !ok {
		maxCount = avg
	}
	return avg, maxCount
}

// Parse reads a profile file.
func Parse(r io.Reader) (*Profile, error) {
	p := Empty()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		f := strings.Fields(text)
		if f[0] == "defaultloop" {
			if len(f) != 2 {
				return nil, fmt.Errorf("profile: line %d: malformed defaultloop", line)
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, fmt.Errorf("profile: line %d: %v", line, err)
			}
			p.DefaultLoop = v
			continue
		}
		key := strings.ToLower(f[0])
		vals := make([]float64, 0, len(f)-1)
		for _, s := range f[1:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("profile: line %d: bad number %q", line, s)
			}
			vals = append(vals, v)
		}
		switch {
		case strings.Contains(key, ".br"):
			if len(vals) == 0 {
				return nil, fmt.Errorf("profile: line %d: branch record needs probabilities", line)
			}
			for _, v := range vals {
				if v < 0 || v > 1 {
					return nil, fmt.Errorf("profile: line %d: probability %g out of [0,1]", line, v)
				}
			}
			p.branch[key] = vals
		case strings.Contains(key, ".loop"):
			if len(vals) == 0 || len(vals) > 2 {
				return nil, fmt.Errorf("profile: line %d: loop record needs count [max]", line)
			}
			p.loop[key] = vals[0]
			if len(vals) == 2 {
				p.loopMax[key] = vals[1]
			} else {
				p.loopMax[key] = vals[0]
			}
		default:
			return nil, fmt.Errorf("profile: line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// Dump writes the profile in the file format Parse reads, sorted for
// stable diffs. Parse(Dump(p)) reproduces p's records.
func (p *Profile) Dump(w io.Writer) error {
	var lines []string
	for key, probs := range p.branch {
		parts := make([]string, 0, len(probs)+1)
		parts = append(parts, key)
		for _, v := range probs {
			parts = append(parts, strconv.FormatFloat(v, 'g', -1, 64))
		}
		lines = append(lines, strings.Join(parts, " "))
	}
	for key, count := range p.loop {
		line := key + " " + strconv.FormatFloat(count, 'g', -1, 64)
		if maxV, ok := p.loopMax[key]; ok && maxV != count {
			line += " " + strconv.FormatFloat(maxV, 'g', -1, 64)
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	if p.DefaultLoop != 1 {
		lines = append([]string{"defaultloop " + strconv.FormatFloat(p.DefaultLoop, 'g', -1, 64)}, lines...)
	}
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a profile file from disk.
func Load(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}
