package profile

import (
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// Counts carries the expected, minimum and maximum number of times an
// event occurs per start-to-finish execution of its behavior.
type Counts struct {
	Avg, Min, Max float64
}

// One is the count of an event that happens exactly once per execution.
var One = Counts{Avg: 1, Min: 1, Max: 1}

func (c Counts) scale(avg, min, max float64) Counts {
	return Counts{Avg: c.Avg * avg, Min: c.Min * min, Max: c.Max * max}
}

// Visitor receives counted traversal events from WalkCounted.
//
// OnStmt fires once per statement with the statement's execution counts.
// OnExpr fires once per expression node (recursively) with the node's
// evaluation counts. Assignment targets are not passed to OnExpr — the
// write access they represent is the visitor's business via OnStmt — but
// their index expressions are.
type Visitor struct {
	OnStmt func(s vhdl.Stmt, c Counts)
	OnExpr func(e vhdl.Expr, c Counts)
}

// WalkCounted traverses behavior b's body firing the visitor's callbacks
// with expected/min/max execution counts, combining static for-loop bounds
// with the profile's branch probabilities and dynamic-loop counts. Branch
// and loop sites are numbered in pre-order per behavior, so every consumer
// of the same profile sees identical site ids.
func WalkCounted(d *sem.Design, b *sem.Behavior, p *Profile, v Visitor) {
	w := &walker{d: d, b: b, p: p, v: v}
	w.stmts(b.Body, One)
}

type walker struct {
	d       *sem.Design
	b       *sem.Behavior
	p       *Profile
	v       Visitor
	branchN int // branch sites seen so far (1-based ids)
	loopN   int // dynamic loop sites seen so far
}

// expr visits every node of an expression tree.
func (w *walker) expr(e vhdl.Expr, c Counts) {
	if e == nil {
		return
	}
	if w.v.OnExpr != nil {
		w.v.OnExpr(e, c)
	}
	switch x := e.(type) {
	case *vhdl.CallExpr:
		for _, a := range x.Args {
			w.expr(a, c)
		}
	case *vhdl.BinExpr:
		w.expr(x.L, c)
		w.expr(x.R, c)
	case *vhdl.UnaryExpr:
		w.expr(x.X, c)
	case *vhdl.AggregateExpr:
		for _, a := range x.Assocs {
			if a.Choice != nil {
				w.expr(a.Choice, c)
			}
			w.expr(a.Value, c)
		}
	}
}

func (w *walker) stmts(stmts []vhdl.Stmt, c Counts) {
	for _, s := range stmts {
		w.stmt(s, c)
	}
}

func (w *walker) stmt(s vhdl.Stmt, c Counts) {
	if w.v.OnStmt != nil {
		w.v.OnStmt(s, c)
	}
	switch st := s.(type) {
	case *vhdl.AssignStmt:
		w.expr(st.Value, c)
		// The target itself is a write access reported via OnStmt; only
		// its index expressions are evaluated as reads.
		if t, ok := st.Target.(*vhdl.CallExpr); ok {
			for _, a := range t.Args {
				w.expr(a, c)
			}
		}

	case *vhdl.IfStmt:
		w.expr(st.Cond, c)
		w.branchN++
		site := w.branchN
		arms := 2 + len(st.Elifs) // then, elifs..., else (possibly empty)
		beh := w.b.UniqueID
		arm := 0
		w.stmts(st.Then, c.scale(w.p.Branch(beh, site, arm, arms), 0, 1))
		for _, el := range st.Elifs {
			arm++
			// elsif conditions run whenever preceding arms failed;
			// approximated with the full count (cheap, conservative).
			w.expr(el.Cond, c)
			w.stmts(el.Body, c.scale(w.p.Branch(beh, site, arm, arms), 0, 1))
		}
		arm++
		if len(st.Else) > 0 {
			w.stmts(st.Else, c.scale(w.p.Branch(beh, site, arm, arms), 0, 1))
		}

	case *vhdl.CaseStmt:
		w.expr(st.Expr, c)
		w.branchN++
		site := w.branchN
		arms := len(st.Whens)
		beh := w.b.UniqueID
		for i, when := range st.Whens {
			for _, choice := range when.Choices {
				w.expr(choice, c)
			}
			w.stmts(when.Body, c.scale(w.p.Branch(beh, site, i, arms), 0, 1))
		}

	case *vhdl.ForStmt:
		w.expr(st.Low, c)
		w.expr(st.High, c)
		n, static := w.staticTrip(st.Low, st.High, st.Downto)
		if !static {
			w.loopN++
			avg, maxN := w.p.Loop(w.b.UniqueID, w.loopN)
			w.stmts(st.Body, c.scale(avg, 0, maxN))
			return
		}
		w.stmts(st.Body, c.scale(n, n, n))

	case *vhdl.WhileStmt:
		w.loopN++
		avg, maxN := w.p.Loop(w.b.UniqueID, w.loopN)
		// The condition is evaluated once more than the body runs.
		w.expr(st.Cond, c.scale(avg+1, 1, maxN+1))
		w.stmts(st.Body, c.scale(avg, 0, maxN))

	case *vhdl.LoopStmt:
		// A bare loop around a process body repeats forever; one
		// start-to-finish execution is one trip, unless profiled otherwise.
		w.loopN++
		avg, maxN := w.p.Loop(w.b.UniqueID, w.loopN)
		w.stmts(st.Body, c.scale(avg, 1, maxN))

	case *vhdl.ExitStmt:
		w.expr(st.Cond, c)

	case *vhdl.CallStmt:
		for _, a := range st.Args {
			w.expr(a, c)
		}

	case *vhdl.WaitStmt:
		w.expr(st.Until, c)

	case *vhdl.ReturnStmt:
		w.expr(st.Value, c)
	}
}

// staticTrip returns the trip count of a for loop with static bounds.
// The bounds arrive in source order, so a downto loop has low > high; a
// genuinely empty range in either direction yields 0 only when the
// statement is not a downto loop (the caller passes bounds as written).
func (w *walker) staticTrip(low, high vhdl.Expr, downto bool) (float64, bool) {
	lo, ok1 := w.d.EvalStatic(w.b, low)
	hi, ok2 := w.d.EvalStatic(w.b, high)
	if !ok1 || !ok2 {
		return 0, false
	}
	if downto {
		lo, hi = hi, lo
	}
	if hi < lo {
		return 0, true
	}
	return float64(hi - lo + 1), true
}

// Event is one access performed by a behavior: a read or write of a
// variable, signal or port, or a subprogram call.
type Event struct {
	Target  *sem.Symbol // resolved target: SymObject, SymPort or SymBehavior
	IsCall  bool
	IsWrite bool
	Counts  Counts
}

// Walk enumerates the access events of behavior b with their expected
// counts (the §2.4.1 accfreq/accmin/accmax inputs). Events for subprogram
// parameters, loop variables, enum literals and type names are not emitted
// — they are not SLIF objects.
func Walk(d *sem.Design, b *sem.Behavior, p *Profile, emit func(Event)) {
	// Loop variables live in no scope, so they resolve to nil and are
	// skipped here. A loop variable that shadows a declared object would
	// be miscounted as an object access; the subset forbids such shadowing.
	access := func(name string, isCall, isWrite bool, c Counts) {
		sym := d.Lookup(b, name)
		if sym == nil {
			return
		}
		switch sym.Kind {
		case sem.SymEnumLit, sem.SymType, sem.SymLoopVar:
			return
		case sem.SymObject:
			if sym.Object != nil && sym.Object.IsParam {
				return
			}
		}
		emit(Event{Target: sym, IsCall: isCall, IsWrite: isWrite, Counts: c})
	}
	WalkCounted(d, b, p, Visitor{
		OnStmt: func(s vhdl.Stmt, c Counts) {
			switch st := s.(type) {
			case *vhdl.AssignStmt:
				switch t := st.Target.(type) {
				case *vhdl.NameExpr:
					access(t.Name, false, true, c)
				case *vhdl.CallExpr:
					access(t.Name, false, true, c)
				}
			case *vhdl.CallStmt:
				access(st.Name, true, false, c)
			case *vhdl.WaitStmt:
				for _, sig := range st.OnSignals {
					access(sig, false, false, c)
				}
			}
		},
		OnExpr: func(e vhdl.Expr, c Counts) {
			switch x := e.(type) {
			case *vhdl.NameExpr:
				access(x.Name, false, false, c)
			case *vhdl.CallExpr:
				sym := d.Lookup(b, x.Name)
				isCall := sym != nil && sym.Kind == sem.SymBehavior
				access(x.Name, isCall, false, c)
			}
		},
	})
}
