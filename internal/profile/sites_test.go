package profile

import (
	"testing"

	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// TestSitesMatchWalkCounted guards the contract that IndexSites and
// WalkCounted number branch/loop sites identically: a profile built from
// one numbering and consumed through the other must line up. The behavior
// below interleaves ifs, a case, static and dynamic loops.
func TestSitesMatchWalkCounted(t *testing.T) {
	src := `
entity E is end;
architecture x of E is begin
P: process
    variable a, b, c, n : integer;
begin
    if a = 1 then          -- branch site 1
        b := 1;
    end if;
    for i in 1 to 4 loop   -- static: no loop site
        case b is          -- branch site 2
            when 0 => c := 1;
            when others => c := 2;
        end case;
    end loop;
    while n > 0 loop       -- loop site 1
        if c = 2 then      -- branch site 3
            n := n - 1;
        end if;
    end loop;
    wait;
end process; end;`
	df, err := vhdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	var p *sem.Behavior
	for _, b := range d.Behaviors {
		if b.IsProcess {
			p = b
		}
	}
	sites := IndexSites(d, p)

	// Expected static structure.
	branchIDs := map[int]bool{}
	for _, id := range sites.Branch {
		branchIDs[id] = true
	}
	if len(sites.Branch) != 3 || !branchIDs[1] || !branchIDs[2] || !branchIDs[3] {
		t.Fatalf("branch sites: %v", sites.Branch)
	}
	if len(sites.Loop) != 1 {
		t.Fatalf("loop sites: %v", sites.Loop)
	}
	for _, id := range sites.Loop {
		if id != 1 {
			t.Errorf("while loop got site %d, want 1", id)
		}
	}

	// Cross-check against WalkCounted: craft a profile that zeroes branch
	// site 3's then-arm. If the numbering agreed, accesses to n inside
	// that arm count 0; if WalkCounted numbered the site differently the
	// default 1/2 would leak through.
	prof := Empty()
	prof.SetBranch("p", 3, 0, 1) // never take the if inside the while
	prof.SetLoop("p", 1, 10)
	var nCount float64
	Walk(d, p, prof, func(ev Event) {
		if ev.Target.Kind == sem.SymObject && ev.Target.Object.Name == "n" && ev.IsWrite {
			nCount += ev.Counts.Avg
		}
	})
	if nCount != 0 {
		t.Errorf("n written %v times; site numbering between IndexSites and WalkCounted disagrees", nCount)
	}

	// And the complement: full probability gives 10 writes (one per
	// while iteration).
	prof2 := Empty()
	prof2.SetBranch("p", 3, 1, 0)
	prof2.SetLoop("p", 1, 10)
	nCount = 0
	Walk(d, p, prof2, func(ev Event) {
		if ev.Target.Kind == sem.SymObject && ev.Target.Object.Name == "n" && ev.IsWrite {
			nCount += ev.Counts.Avg
		}
	})
	if nCount != 10 {
		t.Errorf("n written %v times, want 10", nCount)
	}
}

func TestIndexSitesArms(t *testing.T) {
	src := `
entity E is end;
architecture x of E is begin
P: process
    variable a, b : integer;
begin
    if a = 1 then
        b := 1;
    elsif a = 2 then
        b := 2;
    elsif a = 3 then
        b := 3;
    else
        b := 0;
    end if;
    wait;
end process; end;`
	df, _ := vhdl.Parse(src)
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	var p *sem.Behavior
	for _, b := range d.Behaviors {
		if b.IsProcess {
			p = b
		}
	}
	sites := IndexSites(d, p)
	for s, arms := range sites.Arms {
		if _, isIf := s.(*vhdl.IfStmt); isIf && arms != 4 {
			t.Errorf("if with 2 elsifs has %d arms, want 4", arms)
		}
	}
}
