package profile

import (
	"math"
	"testing"

	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// design elaborates a snippet and returns its one process behavior.
func design(t *testing.T, src string) (*sem.Design, *sem.Behavior) {
	t.Helper()
	df, err := vhdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range d.Behaviors {
		if b.IsProcess {
			return d, b
		}
	}
	t.Fatal("no process")
	return nil, nil
}

// counts aggregates Walk events by target name.
func counts(d *sem.Design, b *sem.Behavior, p *Profile) map[string]Counts {
	out := map[string]Counts{}
	Walk(d, b, p, func(ev Event) {
		var name string
		switch ev.Target.Kind {
		case sem.SymObject:
			name = ev.Target.Object.UniqueID
		case sem.SymPort:
			name = ev.Target.Port.Name
		case sem.SymBehavior:
			name = ev.Target.Behavior.UniqueID
		}
		c := out[name]
		c.Avg += ev.Counts.Avg
		c.Min += ev.Counts.Min
		c.Max += ev.Counts.Max
		out[name] = c
	})
	return out
}

func eq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestStraightLineCounts(t *testing.T) {
	_, _ = design, counts
	d, b := design(t, `
entity E is port (a : in integer); end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    v := a;
    w := v + v;
    wait on a;
end process; end;`)
	got := counts(d, b, Empty())
	if !eq(got["v"].Avg, 3) { // one write + two reads
		t.Errorf("v = %v, want 3", got["v"])
	}
	if !eq(got["w"].Avg, 1) {
		t.Errorf("w = %v", got["w"])
	}
	if !eq(got["a"].Avg, 2) { // read by assignment and by wait
		t.Errorf("a = %v", got["a"])
	}
}

func TestStaticForLoopCounts(t *testing.T) {
	d, b := design(t, `
entity E is end;
architecture x of E is begin
P: process
    type arr is array (1 to 128) of integer;
    variable a : arr;
    variable s : integer;
begin
    for i in 1 to 128 loop
        s := s + a(i);
    end loop;
    wait;
end process; end;`)
	got := counts(d, b, Empty())
	if !eq(got["a"].Avg, 128) || !eq(got["a"].Min, 128) || !eq(got["a"].Max, 128) {
		t.Errorf("a = %+v, want 128 exactly in all modes", got["a"])
	}
	if !eq(got["s"].Avg, 256) { // read + write per iteration
		t.Errorf("s = %+v", got["s"])
	}
}

func TestBranchProbabilities(t *testing.T) {
	src := `
entity E is end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    if v = 1 then
        w := 1;
    elsif v = 2 then
        w := 2;
        w := 3;
    end if;
    wait;
end process; end;`
	d, b := design(t, src)
	p := Empty()
	p.SetBranch("p", 1, 0.25, 0.5, 0.25) // then, elsif, else
	got := counts(d, b, p)
	// w: 0.25×1 + 0.5×2 = 1.25 expected writes.
	if !eq(got["w"].Avg, 1.25) {
		t.Errorf("w.Avg = %v, want 1.25", got["w"].Avg)
	}
	// Min: branches may be skipped entirely.
	if !eq(got["w"].Min, 0) {
		t.Errorf("w.Min = %v, want 0", got["w"].Min)
	}
	// Max: every arm taken (they are alternatives, but max is per-access).
	if !eq(got["w"].Max, 3) {
		t.Errorf("w.Max = %v, want 3", got["w"].Max)
	}
	// The condition reads happen regardless: v read by if and elsif.
	if !eq(got["v"].Avg, 2) {
		t.Errorf("v.Avg = %v, want 2", got["v"].Avg)
	}
}

func TestCaseProbabilities(t *testing.T) {
	d, b := design(t, `
entity E is end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    case v is
        when 0 => w := 1;
        when 1 => w := 2;
        when others => null;
    end case;
    wait;
end process; end;`)
	p := Empty()
	p.SetBranch("p", 1, 0.6, 0.3, 0.1)
	got := counts(d, b, p)
	if !eq(got["w"].Avg, 0.9) {
		t.Errorf("w.Avg = %v, want 0.9", got["w"].Avg)
	}
	// Unprofiled: uniform thirds.
	got = counts(d, b, Empty())
	if !eq(got["w"].Avg, 2.0/3.0) {
		t.Errorf("uniform w.Avg = %v, want 2/3", got["w"].Avg)
	}
}

func TestWhileLoopProfile(t *testing.T) {
	d, b := design(t, `
entity E is end;
architecture x of E is begin
P: process
    variable v, n : integer;
begin
    while n > 0 loop
        v := v + 1;
    end loop;
    wait;
end process; end;`)
	p := Empty()
	p.SetLoop("p", 1, 10, 100)
	got := counts(d, b, p)
	if !eq(got["v"].Avg, 20) { // read+write × 10 iterations
		t.Errorf("v.Avg = %v, want 20", got["v"].Avg)
	}
	if !eq(got["v"].Max, 200) {
		t.Errorf("v.Max = %v, want 200", got["v"].Max)
	}
	if !eq(got["v"].Min, 0) {
		t.Errorf("v.Min = %v, want 0", got["v"].Min)
	}
	// Condition: n read avg+1 = 11 times.
	if !eq(got["n"].Avg, 11) {
		t.Errorf("n.Avg = %v, want 11", got["n"].Avg)
	}
}

func TestCallAndParamsInvisible(t *testing.T) {
	d, b := design(t, `
entity E is end;
architecture x of E is
    procedure Q(n : in integer) is
        variable local : integer;
    begin
        local := n;
    end;
begin
P: process
begin
    Q(1);
    Q(2);
    wait;
end process; end;`)
	got := counts(d, b, Empty())
	if !eq(got["q"].Avg, 2) {
		t.Errorf("call count = %v, want 2", got["q"].Avg)
	}
	if _, ok := got["n"]; ok {
		t.Error("parameter emitted as an access")
	}
	// Q's own accesses: local write, no param event.
	var q *sem.Behavior
	for _, bb := range d.Behaviors {
		if bb.Name == "q" {
			q = bb
		}
	}
	qc := counts(d, q, Empty())
	if !eq(qc["local"].Avg, 1) {
		t.Errorf("q's local = %v", qc["local"])
	}
	if len(qc) != 1 {
		t.Errorf("q accesses: %v", qc)
	}
}

func TestNestedScaling(t *testing.T) {
	d, b := design(t, `
entity E is end;
architecture x of E is begin
P: process
    variable v, g : integer;
begin
    for i in 1 to 10 loop
        if g = 1 then
            v := 1;
        end if;
    end loop;
    wait;
end process; end;`)
	p := Empty()
	p.SetBranch("p", 1, 0.3, 0.7)
	got := counts(d, b, p)
	if !eq(got["v"].Avg, 3) { // 10 × 0.3
		t.Errorf("v.Avg = %v, want 3", got["v"].Avg)
	}
	if !eq(got["v"].Max, 10) {
		t.Errorf("v.Max = %v, want 10", got["v"].Max)
	}
}

func TestLoopVarNotEmitted(t *testing.T) {
	d, b := design(t, `
entity E is end;
architecture x of E is begin
P: process
    variable s : integer;
begin
    for i in 1 to 4 loop
        s := s + i;
    end loop;
    wait;
end process; end;`)
	got := counts(d, b, Empty())
	if _, ok := got["i"]; ok {
		t.Error("loop variable emitted")
	}
}

func TestIndexedWriteCountsIndexReads(t *testing.T) {
	d, b := design(t, `
entity E is end;
architecture x of E is begin
P: process
    type arr is array (0 to 7) of integer;
    variable a : arr;
    variable idx : integer;
begin
    a(idx) := 1;
    wait;
end process; end;`)
	got := counts(d, b, Empty())
	if !eq(got["a"].Avg, 1) {
		t.Errorf("a = %v", got["a"])
	}
	if !eq(got["idx"].Avg, 1) {
		t.Errorf("idx = %v (index expression read lost)", got["idx"])
	}
}

func TestSiteNumberingSharedWithOpCounts(t *testing.T) {
	// Two visitors over the same behavior must see the same branch site
	// ids; this guards the WalkCounted contract.
	d, b := design(t, `
entity E is end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    if v = 1 then
        w := 1;
    end if;
    if v = 2 then
        w := 2;
    end if;
    wait;
end process; end;`)
	p := Empty()
	p.SetBranch("p", 1, 1, 0) // always take first if
	p.SetBranch("p", 2, 0, 1) // never take second if
	got := counts(d, b, p)
	if !eq(got["w"].Avg, 1) {
		t.Errorf("w.Avg = %v, want 1 (site numbering broken?)", got["w"].Avg)
	}
}
