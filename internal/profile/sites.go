package profile

import (
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// Sites maps a behavior's branch and dynamic-loop statements to the site
// ids the profile records are keyed by. The numbering is the pre-order
// numbering WalkCounted uses: every if/case is a branch site, every
// while/bare loop and every for loop with non-static bounds is a loop
// site, both numbered from 1 in statement pre-order.
//
// The simulator uses this to emit profile records whose ids agree with the
// estimator's interpretation; TestSitesMatchWalkCounted guards the
// equivalence.
type Sites struct {
	Branch map[vhdl.Stmt]int // if/case statement → branch site id
	Arms   map[vhdl.Stmt]int // branch statement → number of arms
	Loop   map[vhdl.Stmt]int // dynamic loop statement → loop site id
}

// IndexSites computes the site numbering of behavior b.
func IndexSites(d *sem.Design, b *sem.Behavior) *Sites {
	s := &Sites{
		Branch: map[vhdl.Stmt]int{},
		Arms:   map[vhdl.Stmt]int{},
		Loop:   map[vhdl.Stmt]int{},
	}
	ix := &siteIndexer{d: d, b: b, s: s}
	ix.stmts(b.Body)
	return s
}

type siteIndexer struct {
	d       *sem.Design
	b       *sem.Behavior
	s       *Sites
	branchN int
	loopN   int
}

func (ix *siteIndexer) stmts(stmts []vhdl.Stmt) {
	for _, st := range stmts {
		ix.stmt(st)
	}
}

func (ix *siteIndexer) stmt(s vhdl.Stmt) {
	switch st := s.(type) {
	case *vhdl.IfStmt:
		ix.branchN++
		ix.s.Branch[s] = ix.branchN
		ix.s.Arms[s] = 2 + len(st.Elifs)
		ix.stmts(st.Then)
		for _, el := range st.Elifs {
			ix.stmts(el.Body)
		}
		ix.stmts(st.Else)
	case *vhdl.CaseStmt:
		ix.branchN++
		ix.s.Branch[s] = ix.branchN
		ix.s.Arms[s] = len(st.Whens)
		for _, w := range st.Whens {
			ix.stmts(w.Body)
		}
	case *vhdl.ForStmt:
		lo, ok1 := ix.d.EvalStatic(ix.b, st.Low)
		hi, ok2 := ix.d.EvalStatic(ix.b, st.High)
		_ = lo
		_ = hi
		if !ok1 || !ok2 {
			ix.loopN++
			ix.s.Loop[s] = ix.loopN
		}
		ix.stmts(st.Body)
	case *vhdl.WhileStmt:
		ix.loopN++
		ix.s.Loop[s] = ix.loopN
		ix.stmts(st.Body)
	case *vhdl.LoopStmt:
		ix.loopN++
		ix.s.Loop[s] = ix.loopN
		ix.stmts(st.Body)
	}
}
