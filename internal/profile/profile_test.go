package profile

import (
	"math"
	"strings"
	"testing"
)

func TestParseRecords(t *testing.T) {
	src := `
# comment line
defaultloop 2
beh.br1 0.5 0.5    # inline comment
beh.loop1 100 200
other.br2 0.25
`
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.DefaultLoop != 2 {
		t.Errorf("defaultloop = %v", p.DefaultLoop)
	}
	if got := p.Branch("beh", 1, 0, 2); got != 0.5 {
		t.Errorf("branch arm 0 = %v", got)
	}
	avg, max := p.Loop("beh", 1)
	if avg != 100 || max != 200 {
		t.Errorf("loop = %v,%v", avg, max)
	}
	// Unrecorded loop falls back to the default.
	avg, max = p.Loop("beh", 9)
	if avg != 2 || max != 2 {
		t.Errorf("default loop = %v,%v", avg, max)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"beh.br1 1.5",     // probability out of range
		"beh.br1",         // no values
		"beh.loop1",       // no count
		"beh.loop1 1 2 3", // too many
		"garbage 1",       // unknown record
		"defaultloop",     // malformed
		"beh.br1 x",       // not a number
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestBranchDefaults(t *testing.T) {
	p := Empty()
	// Unrecorded: uniform across arms.
	if got := p.Branch("b", 1, 0, 4); got != 0.25 {
		t.Errorf("uniform = %v", got)
	}
	// Recorded for fewer arms than asked: remainder spread.
	p.SetBranch("b", 1, 0.5)
	if got := p.Branch("b", 1, 0, 2); got != 0.5 {
		t.Errorf("recorded arm = %v", got)
	}
	if got := p.Branch("b", 1, 1, 2); got != 0.5 {
		t.Errorf("remainder arm = %v", got)
	}
	p.SetBranch("b", 2, 0.5, 0.3)
	if got := p.Branch("b", 2, 2, 4); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("split remainder = %v", got)
	}
}

func TestBranchCaseInsensitive(t *testing.T) {
	p := Empty()
	p.SetBranch("EvaluateRule", 1, 0.7)
	if got := p.Branch("evaluaterule", 1, 0, 2); got != 0.7 {
		t.Errorf("case-insensitive lookup = %v", got)
	}
}

func TestSetLoopMax(t *testing.T) {
	p := Empty()
	p.SetLoop("b", 1, 10, 50)
	avg, max := p.Loop("b", 1)
	if avg != 10 || max != 50 {
		t.Errorf("loop = %v,%v", avg, max)
	}
	p.SetLoop("b", 2, 7)
	avg, max = p.Loop("b", 2)
	if avg != 7 || max != 7 {
		t.Errorf("loop without max = %v,%v", avg, max)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	p := Empty()
	p.DefaultLoop = 3
	p.SetBranch("beh", 1, 0.25, 0.75)
	p.SetBranch("other", 2, 0.1, 0.2, 0.7)
	p.SetLoop("beh", 1, 12, 48)
	p.SetLoop("beh", 2, 7)

	var sb strings.Builder
	if err := p.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if q.DefaultLoop != 3 {
		t.Errorf("defaultloop lost: %v", q.DefaultLoop)
	}
	if got := q.Branch("beh", 1, 1, 2); got != 0.75 {
		t.Errorf("branch lost: %v", got)
	}
	avg, max := q.Loop("beh", 1)
	if avg != 12 || max != 48 {
		t.Errorf("loop lost: %v/%v", avg, max)
	}
	avg, max = q.Loop("beh", 2)
	if avg != 7 || max != 7 {
		t.Errorf("loop without max lost: %v/%v", avg, max)
	}
	// Deterministic output.
	var sb2 strings.Builder
	_ = p.Dump(&sb2)
	if sb.String() != sb2.String() {
		t.Error("Dump not deterministic")
	}
}
