// This file implements the incremental, edit-aware rebuild of the SLIF
// graph. A source edit during interactive system design typically touches
// one behavior; re-running the whole pipeline (parse → elaborate → six
// passes) for every keystroke wastes nearly all of its work. Rebuild
// instead diffs the previous and new sources at design-unit granularity via
// AST content fingerprints (internal/vhdl.Fingerprint), re-runs the
// per-behavior pass bodies for just the changed units and their dependents,
// and patches the previous graph copy-on-write. The previous graph is never
// mutated — concurrent readers (estimators, partition searches) keep a
// consistent view — and the result is byte-identical, in compiled snapshot
// form, to a from-scratch Build of the new source.
//
// Anything the unit diff cannot localize falls back to a full Build with
// the reason recorded in the Delta: a change to the architecture context
// (ports, arch-level declarations), any change to the unit or object
// sequence (add/remove/rename/reorder, signature or type edits, implicit
// symbols appearing or vanishing), or ambiguous duplicate unit paths.

package builder

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"specsyn/internal/core"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// Delta reports what a Rebuild did.
type Delta struct {
	// Changed lists the behaviors (by SLIF node name) whose unit
	// fingerprint differed between the two sources.
	Changed []string
	// Dependents lists the behaviors re-processed without a fingerprint
	// change of their own: lexical descendants of a changed unit (their
	// meaning can depend on the parent's declarations) and transitive
	// callers (their operation counts inline callee bodies).
	Dependents []string
	// AddedNodes and RemovedNodes name the SLIF nodes that exist in only
	// one of the graphs. Non-empty only on a full rebuild; the fast path
	// never changes the node set.
	AddedNodes   []string
	RemovedNodes []string
	// Full marks a fall-back to a from-scratch Build, with Reason saying
	// why the edit could not be localized.
	Full   bool
	Reason string
}

// Empty reports whether the rebuild found no semantic change at all — the
// previous graph was returned unmodified (comment or formatting edits).
func (d Delta) Empty() bool {
	return !d.Full && len(d.Changed) == 0 && len(d.Dependents) == 0
}

// frontEnd is one cached parse+elaborate+fingerprint of a source text.
type frontEnd struct {
	df *vhdl.DesignFile
	d  *sem.Design
	fp *vhdl.DesignFP
}

// The front-end cache memoizes parse results by exact source text. Reload
// chains always look up the previous source (it was the new source of the
// preceding call), so an incremental rebuild pays for one parse, not two.
// The cap keeps a small editing history without holding every draft alive.
const feCacheCap = 3

var feCache = struct {
	sync.Mutex
	m   map[string]*frontEnd
	mru []string // oldest first
}{m: make(map[string]*frontEnd)}

func frontend(src string) (*frontEnd, error) {
	feCache.Lock()
	if fe := feCache.m[src]; fe != nil {
		for i, s := range feCache.mru {
			if s == src {
				feCache.mru = append(append(feCache.mru[:i:i], feCache.mru[i+1:]...), src)
				break
			}
		}
		feCache.Unlock()
		return fe, nil
	}
	feCache.Unlock()

	df, err := vhdl.Parse(src)
	if err != nil {
		return nil, err
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		return nil, err
	}
	fe := &frontEnd{df: df, d: d, fp: vhdl.Fingerprint(df)}

	feCache.Lock()
	defer feCache.Unlock()
	if won := feCache.m[src]; won != nil { // lost a race; keep the first
		return won, nil
	}
	feCache.m[src] = fe
	feCache.mru = append(feCache.mru, src)
	if len(feCache.mru) > feCacheCap {
		delete(feCache.m, feCache.mru[0])
		feCache.mru = feCache.mru[1:]
	}
	return fe, nil
}

// Frontend returns the parsed and elaborated form of src through the same
// memoizing cache Rebuild uses, so a caller that just rebuilt can fetch
// the matching design for free.
func Frontend(src string) (*vhdl.DesignFile, *sem.Design, error) {
	fe, err := frontend(src)
	if err != nil {
		return nil, nil, err
	}
	return fe.df, fe.d, nil
}

// Rebuild builds the SLIF graph of newSrc, reusing prev — the graph built
// from prevSrc with the same Options — wherever the edit did not reach.
// Three outcomes, reported in the Delta:
//
//   - no semantic change: prev itself is returned (pointer-equal), Delta
//     empty;
//   - localized edit: a copy-on-write patch of prev with only the changed
//     behaviors and their dependents re-extracted; prev is not mutated;
//   - anything else: a from-scratch Build, Delta.Full set with the reason.
//
// In every case the result is byte-identical (core.Compile + MarshalBinary)
// to Build of the new source, in the pre-allocation form Build produces:
// component sets on prev (an applied allocation) are ignored, never copied,
// and never mutated — re-apply the allocation to the result.
func Rebuild(prev *core.Graph, prevSrc, newSrc string, opts Options) (*core.Graph, Delta, error) {
	newFE, err := frontend(newSrc)
	if err != nil {
		return nil, Delta{}, err
	}
	if prev == nil {
		return rebuildFull(prev, newFE, opts, "no previous graph")
	}
	prevFE, err := frontend(prevSrc)
	if err != nil {
		return rebuildFull(prev, newFE, opts, "previous source no longer parses")
	}
	if reason := structureChanged(prevFE, newFE); reason != "" {
		return rebuildFull(prev, newFE, opts, reason)
	}

	// Unit-level diff. The two fingerprint unit sequences are now known to
	// agree path-for-path, so changed units are found positionally.
	changed := make(map[string]bool)
	for i, u := range newFE.fp.Units {
		if prevFE.fp.Units[i].Hash != u.Hash {
			changed[u.Path] = true
		}
	}
	if len(changed) == 0 {
		return prev, Delta{}, nil
	}
	affectedPath := func(path string) bool {
		if changed[path] {
			return true
		}
		for cp := range changed {
			if strings.HasPrefix(path, cp+"/") {
				return true
			}
		}
		return false
	}

	// Map the new design's behaviors onto unit paths. Every non-implicit
	// behavior must have a fingerprinted unit; a mismatch means the lexical
	// naming schemes disagree and the edit cannot be trusted to localize.
	var delta Delta
	affected := make(map[string]*sem.Behavior)
	byID := make(map[string]*sem.Behavior, len(newFE.d.Behaviors))
	for _, b := range newFE.d.Behaviors {
		byID[b.UniqueID] = b
		if b.Implicit {
			continue
		}
		path := behaviorPath(b)
		if _, ok := newFE.fp.Lookup(path); !ok {
			return rebuildFull(prev, newFE, opts, fmt.Sprintf("behavior %s has no fingerprinted unit", b.UniqueID))
		}
		if affectedPath(path) {
			affected[b.UniqueID] = b
			if changed[path] {
				delta.Changed = append(delta.Changed, b.UniqueID)
			} else {
				delta.Dependents = append(delta.Dependents, b.UniqueID)
			}
		}
	}

	// Pull in transitive callers via the previous graph's access relation:
	// a behavior with a channel into an affected behavior inlines its
	// operation counts (internal/synth) and must be re-weighted too.
	queue := make([]string, 0, len(affected))
	for id := range affected {
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, c := range prev.InChans(id) {
			caller := c.Src.Name
			if _, ok := affected[caller]; ok {
				continue
			}
			b := byID[caller]
			if b == nil {
				return rebuildFull(prev, newFE, opts, fmt.Sprintf("caller %s not in new design", caller))
			}
			affected[caller] = b
			delta.Dependents = append(delta.Dependents, caller)
			queue = append(queue, caller)
		}
	}
	sort.Strings(delta.Changed)
	sort.Strings(delta.Dependents)

	g, err := patch(prev, newFE, opts, affected)
	if err != nil {
		return nil, Delta{}, err
	}
	if g == nil { // surgery refused (non-builder-shaped prev): rebuild
		return rebuildFull(prev, newFE, opts, "previous graph not in builder form")
	}
	return g, delta, nil
}

// patch replays the per-behavior pass bodies for the affected behaviors on
// a copy-on-write copy of prev. It returns (nil, nil) if prev's channel
// layout refuses the splice — the caller then falls back to a full build.
func patch(prev *core.Graph, fe *frontEnd, opts Options, affected map[string]*sem.Behavior) (*core.Graph, error) {
	s := newBuildState(fe.d, opts)
	if err := s.validateTechs(); err != nil {
		return nil, fmt.Errorf("builder: pass weights: %w", err)
	}

	// Swap fresh nodes in for every affected behavior, then point the
	// resolver overlay at them so destination resolution during the replay
	// never sees the stale index entries.
	cow := prev.ShallowClone()
	fresh := make(map[string]*core.Node, len(affected))
	for id, b := range affected {
		fresh[id] = extractBehavior(b)
	}
	for i, n := range cow.Nodes {
		if f := fresh[n.Name]; f != nil {
			cow.Nodes[i] = f
		}
	}
	s.g = cow
	s.res = make(map[string]core.Endpoint, len(fresh))
	for id, n := range fresh {
		s.res[id] = n
	}

	// Replay frequencies → wires → tags → weights for each affected
	// behavior in design order, splicing each rebuilt channel block in at
	// the old block's position. Old and new destinations are collected for
	// the one index repair at the end.
	reindex := make(map[string]bool, 2*len(affected))
	for id := range affected {
		reindex[id] = true
	}
	for _, b := range fe.d.Behaviors {
		id := b.UniqueID
		if affected[id] == nil {
			continue
		}
		if old := prev.NodeByName(id); old != nil {
			for _, c := range prev.BehChans(old) {
				reindex[c.Dst.EndpointName()] = true
			}
		}
		chans, err := s.behaviorChannels(b, fresh[id])
		if err != nil {
			return nil, fmt.Errorf("builder: pass frequencies: %w", behErr(b, err))
		}
		for _, c := range chans {
			s.wireChannel(c)
			reindex[c.Dst.EndpointName()] = true
		}
		if !s.opts.SkipTags {
			s.tagChannels(b, chans)
		}
		if err := cow.SpliceBehChans(id, chans); err != nil {
			return nil, nil
		}
		s.behaviorWeights(b, fresh[id])
	}

	names := make([]string, 0, len(reindex))
	for n := range reindex {
		names = append(names, n)
	}
	cow.ReindexNodes(names...)

	if s.opts.Overrides != nil {
		s.opts.Overrides.applyTo(fresh)
	}
	if err := passValidate(s); err != nil {
		return nil, fmt.Errorf("builder: pass validate: %w", err)
	}
	return cow, nil
}

// rebuildFull is the fall-back: a from-scratch Build of the new source,
// with the node-set difference against prev reported in the Delta.
func rebuildFull(prev *core.Graph, fe *frontEnd, opts Options, reason string) (*core.Graph, Delta, error) {
	g, err := Build(fe.d, opts)
	if err != nil {
		return nil, Delta{}, err
	}
	d := Delta{Full: true, Reason: reason}
	prevNames := make(map[string]bool)
	if prev != nil {
		for _, n := range prev.Nodes {
			prevNames[n.Name] = true
		}
	}
	newNames := make(map[string]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		newNames[n.Name] = true
		if !prevNames[n.Name] {
			d.AddedNodes = append(d.AddedNodes, n.Name)
		}
	}
	if prev != nil {
		for _, n := range prev.Nodes {
			if !newNames[n.Name] {
				d.RemovedNodes = append(d.RemovedNodes, n.Name)
			}
		}
	}
	return g, d, nil
}

// behaviorPath is the lexical path of an elaborated behavior, matching the
// paths internal/vhdl.Fingerprint assigns to AST units: enclosing names
// joined with slashes. Both sides name unlabeled processes by the parser's
// synthesized label, so the schemes agree by construction.
func behaviorPath(b *sem.Behavior) string {
	if b.Parent == nil {
		return b.Name
	}
	return behaviorPath(b.Parent) + "/" + b.Name
}

// structureChanged reports (as a non-empty reason) every condition under
// which the unit diff cannot localize the edit and Rebuild must fall back
// to a full build.
func structureChanged(prev, next *frontEnd) string {
	if prev.fp.Context != next.fp.Context {
		return "architecture context changed"
	}
	if len(prev.fp.Units) != len(next.fp.Units) {
		return "design unit added or removed"
	}
	for i, u := range next.fp.Units {
		if prev.fp.Units[i].Path != u.Path {
			return fmt.Sprintf("design unit %s renamed or moved", prev.fp.Units[i].Path)
		}
		// A duplicate path carries a "#n" disambiguator; positional
		// matching across edits is not safe for those.
		if strings.Contains(u.Path, "#") {
			return fmt.Sprintf("duplicate unit path %s", u.Path)
		}
	}

	// The elaborated element sequences must agree on everything the kept
	// annotations depend on: any add/remove/rename/reorder, signature or
	// type change, or implicit symbol appearing/vanishing defeats reuse.
	pd, nd := prev.d, next.d
	if pd.Name != nd.Name || pd.ArchName != nd.ArchName {
		return "entity or architecture renamed"
	}
	if len(pd.Ports) != len(nd.Ports) {
		return "port added or removed"
	}
	for i, p := range nd.Ports {
		q := pd.Ports[i]
		if p.Name != q.Name || p.Dir != q.Dir || p.Type.AccessBits() != q.Type.AccessBits() {
			return fmt.Sprintf("port %s changed", q.Name)
		}
	}
	if len(pd.Behaviors) != len(nd.Behaviors) {
		return "behavior added or removed"
	}
	for i, b := range nd.Behaviors {
		q := pd.Behaviors[i]
		if b.Name != q.Name || b.UniqueID != q.UniqueID ||
			b.IsProcess != q.IsProcess || b.IsFunction != q.IsFunction ||
			b.Implicit != q.Implicit || b.ParamBits() != q.ParamBits() {
			return fmt.Sprintf("behavior %s changed shape", q.UniqueID)
		}
	}
	if len(pd.Objects) != len(nd.Objects) {
		return "object added or removed"
	}
	for i, o := range nd.Objects {
		q := pd.Objects[i]
		if o.Name != q.Name || o.UniqueID != q.UniqueID || o.Class != q.Class ||
			o.Implicit != q.Implicit || o.IsParam != q.IsParam ||
			ownerID(o) != ownerID(q) ||
			o.Type.AccessBits() != q.Type.AccessBits() || o.Type.TotalBits() != q.Type.TotalBits() {
			return fmt.Sprintf("object %s changed shape", q.UniqueID)
		}
	}
	return ""
}

func ownerID(o *sem.Object) string {
	if o.Owner == nil {
		return ""
	}
	return o.Owner.UniqueID
}
