package builder

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"specsyn/internal/core"
)

// Overrides is a set of designer weight overrides: explicit ict or size
// values that replace the synthesized annotations of named nodes on named
// component types. This is the paper's escape hatch from pre-synthesis —
// a designer who already knows a behavior's measured time on a component
// pins it directly (the Figure 3 Convolve values, for instance).
//
// File format (one record per line, '#' comments):
//
//	ict  <node> <comptype> <value>
//	size <node> <comptype> <value>
type Overrides struct {
	entries []override
}

type override struct {
	kind  string // "ict" or "size"
	node  string
	tech  string
	value float64
}

// Len returns the number of override records.
func (o *Overrides) Len() int {
	if o == nil {
		return 0
	}
	return len(o.entries)
}

// Set appends one override record programmatically. kind is "ict" or
// "size".
func (o *Overrides) Set(kind, node, tech string, value float64) error {
	if kind != "ict" && kind != "size" {
		return fmt.Errorf("overrides: unknown kind %q (want ict or size)", kind)
	}
	o.entries = append(o.entries, override{kind: kind, node: node, tech: tech, value: value})
	return nil
}

// ParseOverrides reads an override file.
func ParseOverrides(r io.Reader) (*Overrides, error) {
	o := &Overrides{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		f := strings.Fields(text)
		if f[0] != "ict" && f[0] != "size" {
			return nil, fmt.Errorf("overrides: line %d: unknown record %q (want ict or size)", line, f[0])
		}
		if len(f) != 4 {
			return nil, fmt.Errorf("overrides: line %d: want '%s <node> <comptype> <value>'", line, f[0])
		}
		v, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return nil, fmt.Errorf("overrides: line %d: bad value %q", line, f[3])
		}
		o.entries = append(o.entries, override{kind: f[0], node: strings.ToLower(f[1]), tech: f[2], value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return o, nil
}

// LoadOverrides reads an override file from disk.
func LoadOverrides(path string) (*Overrides, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseOverrides(f)
}

// apply installs the overrides into a built graph. Referencing a node the
// specification does not declare is an error — a silently ignored
// override is a mis-estimated design.
func (o *Overrides) apply(g *core.Graph) error {
	for _, e := range o.entries {
		n := g.NodeByName(e.node)
		if n == nil {
			return fmt.Errorf("overrides: unknown node %q", e.node)
		}
		if e.kind == "ict" {
			n.SetICT(e.tech, e.value)
		} else {
			n.SetSize(e.tech, e.value)
		}
	}
	return nil
}

// applyTo re-pins the overrides naming one of the given fresh nodes. The
// incremental rebuilder recomputes weights only for the replaced behavior
// nodes; their overrides must be re-applied on top, while every other node
// keeps the already-overridden annotations it carried over — and the full
// build that produced the previous graph has already validated that every
// entry names a declared node.
func (o *Overrides) applyTo(fresh map[string]*core.Node) {
	for _, e := range o.entries {
		n := fresh[e.node]
		if n == nil {
			continue
		}
		if e.kind == "ict" {
			n.SetICT(e.tech, e.value)
		} else {
			n.SetSize(e.tech, e.value)
		}
	}
}
