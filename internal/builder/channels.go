package builder

import (
	"specsyn/internal/core"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
)

// passFrequencies creates the channel set C with its §2.4.1 frequency
// annotations. For every behavior, the profile-weighted access walk
// enumerates reads, writes and calls with expected/min/max counts per
// start-to-finish execution; repeated accesses to the same destination
// merge into one channel (SLIF keeps one edge per (src, dst) pair, keyed
// by Channel.Key()), in first-access order so builds are deterministic.
func passFrequencies(s *state) error {
	for _, b := range s.d.Behaviors {
		src := s.g.NodeByName(b.UniqueID)
		chans, err := s.behaviorChannels(b, src)
		if err != nil {
			return behErr(b, err)
		}
		for _, c := range chans {
			if err := s.g.AddChannel(c); err != nil {
				return behErr(b, err)
			}
		}
	}
	return nil
}

// behaviorChannels is the frequency pass's per-behavior body: it computes
// the merged channel list of one behavior in first-access order, with the
// §2.4.1 avg/min/max access counts, registering each channel's destination
// symbol in s.chanSym. The channels are returned unattached so that the
// full pass and the incremental rebuilder can splice them in differently.
func (s *state) behaviorChannels(b *sem.Behavior, src *core.Node) ([]*core.Channel, error) {
	var (
		order []*core.Channel
		bySym = map[*sem.Symbol]*core.Channel{}
		walkE error
	)
	profile.Walk(s.d, b, s.prof, func(ev profile.Event) {
		if walkE != nil {
			return
		}
		c := bySym[ev.Target]
		if c == nil {
			dst, err := s.endpoint(ev.Target)
			if err != nil {
				walkE = err
				return
			}
			c = &core.Channel{Src: src, Dst: dst, Tag: core.NoTag}
			bySym[ev.Target] = c
			s.chanSym[c] = ev.Target
			order = append(order, c)
		}
		c.AccFreq += ev.Counts.Avg
		c.AccMin += ev.Counts.Min
		c.AccMax += ev.Counts.Max
	})
	if walkE != nil {
		return nil, walkE
	}
	return order, nil
}

// passChannelWires annotates every channel with the per-access transfer
// width feeding the estimator's transfer model — scalar accesses cost
// their encoding, array accesses one element plus its address, calls the
// parameter (and result) bits — and derives the §2.3 concurrency tags
// unless the build opted out.
func passChannelWires(s *state) error {
	for _, c := range s.g.Channels {
		s.wireChannel(c)
	}
	if s.opts.SkipTags {
		return nil
	}
	return passTags(s)
}

// wireChannel is the wire pass's per-channel body: it sets the channel's
// per-access bit count from the resolved destination symbol.
func (s *state) wireChannel(c *core.Channel) {
	switch sym := s.chanSym[c]; sym.Kind {
	case sem.SymObject:
		c.Bits = sym.Object.Type.AccessBits()
	case sem.SymPort:
		c.Bits = sym.Port.Type.AccessBits()
	case sem.SymBehavior:
		c.Bits = sym.Behavior.ParamBits()
	}
}
