package builder

import (
	"specsyn/internal/core"
	"specsyn/internal/sem"
	"specsyn/internal/synth"
)

// passWeights precomputes the §2.4 ict_list and size_list of every node on
// every candidate technology — the step the paper performs by compiling or
// synthesizing each behavior per component type before system design
// begins. Behaviors get operation-count-derived weights on processors and
// custom hardware (memories cannot host behaviors); variables get storage
// access/footprint weights on every technology class.
func passWeights(s *state) error {
	if err := s.validateTechs(); err != nil {
		return err
	}
	for _, b := range s.d.Behaviors {
		s.behaviorWeights(b, s.g.NodeByName(b.UniqueID))
	}
	for _, o := range s.d.Objects {
		s.variableWeights(o, s.g.NodeByName(o.UniqueID))
	}
	return nil
}

// validateTechs checks every candidate technology once per build.
func (s *state) validateTechs() error {
	for _, t := range s.techs {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// behaviorWeights is the weight pass's per-behavior body: operation counts
// via internal/synth, then per-technology ict/size annotations.
func (s *state) behaviorWeights(b *sem.Behavior, n *core.Node) {
	ops := synth.CountOps(s.d, b, s.prof)
	for _, t := range s.techs {
		if ict, size, ok := t.BehaviorWeights(ops); ok {
			n.SetICT(t.Name, ict)
			n.SetSize(t.Name, size)
		}
	}
}

// variableWeights is the weight pass's per-object body.
func (s *state) variableWeights(o *sem.Object, n *core.Node) {
	for _, t := range s.techs {
		if ict, size, ok := t.VariableWeights(o.Type.TotalBits()); ok {
			n.SetICT(t.Name, ict)
			n.SetSize(t.Name, size)
		}
	}
}

// passOverrides applies designer weight overrides on top of the computed
// annotations; a designer-specified value always wins (§2.1: "the designer
// may simply specify an ict" without the synthesis step).
func passOverrides(s *state) error {
	if s.opts.Overrides == nil {
		return nil
	}
	return s.opts.Overrides.apply(s.g)
}
