package builder

import (
	"specsyn/internal/core"
	"specsyn/internal/sched"
	"specsyn/internal/sem"
)

// Concurrency tags (§2.3): two channel accesses that cannot overlap in
// time may share bus wires, and the estimator counts same-tag channels by
// their maximum rather than their sum. The paper obtains the tags "by
// scheduling the contents of the behavior"; internal/sched implements that
// as an ASAP schedule of each behavior's top-level statements under data
// dependencies, with waits, calls and returns serializing. The builder's
// job here is only to translate sched's per-target verdicts onto the
// channels of the graph.
func passTags(s *state) error {
	for _, b := range s.d.Behaviors {
		src := s.g.NodeByName(b.UniqueID)
		s.tagChannels(b, s.g.BehChans(src))
	}
	return nil
}

// tagChannels is the tag pass's per-behavior body: it schedules one
// behavior and stamps the verdicts onto the given channels (which must all
// originate from that behavior).
func (s *state) tagChannels(b *sem.Behavior, chans []*core.Channel) {
	if len(chans) == 0 {
		return
	}
	tags := sched.Tags(s.d, b)
	for _, c := range chans {
		if tag, ok := tags[targetID(s.chanSym[c])]; ok {
			c.Tag = tag
		}
	}
}

// targetID names a channel's destination the way sched keys its verdicts.
func targetID(sym *sem.Symbol) string {
	switch sym.Kind {
	case sem.SymObject:
		return sym.Object.UniqueID
	case sem.SymPort:
		return sym.Port.Name
	case sem.SymBehavior:
		return sym.Behavior.UniqueID
	}
	return ""
}
