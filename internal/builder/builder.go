// Package builder constructs the annotated SLIF access graph of §2 from an
// elaborated design. It is the preprocessing step the paper's speed claims
// rest on: every annotation estimation needs — internal computation times
// and sizes per component type, access frequencies, transferred bits,
// concurrency tags — is computed here, once, so that estimating a candidate
// partition later is a matter of table lookups and sums.
//
// The construction runs as a staged pipeline of named passes over the
// elaborated design, each owning one annotation family:
//
//  1. extract      — behavior/variable nodes and entity ports (BV, IO)
//  2. frequencies  — channels with profile-weighted accfreq/accmin/accmax
//  3. channelwires — per-access bit counts and concurrency tags (§2.3)
//  4. weights      — per-technology ict_list/size_list via internal/synth
//  5. overrides    — designer weight overrides (the -ov file)
//  6. validate     — Graph.Validate on the finished SLIF
//
// Passes run in order and each is independently testable; a pass failure
// aborts the build with the pass named in the error.
package builder

import (
	"fmt"

	"specsyn/internal/core"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/synth"
	"specsyn/internal/vhdl"
)

// Options configures a build.
type Options struct {
	// Profile supplies branch probabilities and dynamic loop counts for
	// the frequency and weight passes. Nil means profile.Empty(): uniform
	// branches, single-trip dynamic loops.
	Profile *profile.Profile

	// Techs lists the component technologies to precompute ict/size
	// weights for. Empty means synth.StdTechs().
	Techs []*synth.Tech

	// Overrides, when non-nil, replaces computed weights with
	// designer-specified values after the weight pass.
	Overrides *Overrides

	// SkipTags disables concurrency-tag derivation; every channel gets
	// core.NoTag. The naive re-analysis baseline builds with this set so
	// its per-query model and the preprocessed graph stay comparable.
	SkipTags bool
}

// state is the pipeline's working set, threaded through every pass.
type state struct {
	d     *sem.Design
	opts  Options
	prof  *profile.Profile
	techs []*synth.Tech

	g       *core.Graph
	chanSym map[*core.Channel]*sem.Symbol // channel → resolved destination
}

// pass is one named pipeline stage.
type pass struct {
	name string
	run  func(*state) error
}

// pipeline is the build order. Each pass owns the annotations its name
// suggests; see the package comment.
var pipeline = []pass{
	{"extract", passExtract},
	{"frequencies", passFrequencies},
	{"channelwires", passChannelWires},
	{"weights", passWeights},
	{"overrides", passOverrides},
	{"validate", passValidate},
}

// Build constructs the annotated SLIF graph of an elaborated design.
func Build(d *sem.Design, opts Options) (*core.Graph, error) {
	if d == nil {
		return nil, fmt.Errorf("builder: nil design")
	}
	s := &state{
		d:       d,
		opts:    opts,
		prof:    opts.Profile,
		techs:   opts.Techs,
		g:       core.NewGraph(d.Name),
		chanSym: make(map[*core.Channel]*sem.Symbol),
	}
	if s.prof == nil {
		s.prof = profile.Empty()
	}
	if len(s.techs) == 0 {
		s.techs = synth.StdTechs()
	}
	for _, p := range pipeline {
		if err := p.run(s); err != nil {
			return nil, fmt.Errorf("builder: pass %s: %w", p.name, err)
		}
	}
	return s.g, nil
}

// BuildVHDL parses, elaborates and builds in one step.
func BuildVHDL(src string, opts Options) (*core.Graph, error) {
	df, err := vhdl.Parse(src)
	if err != nil {
		return nil, err
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		return nil, err
	}
	return Build(d, opts)
}

// passValidate is the final gate: the graph the pipeline hands out must
// satisfy every SLIF invariant.
func passValidate(s *state) error {
	return s.g.Validate()
}
