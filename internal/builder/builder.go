// Package builder constructs the annotated SLIF access graph of §2 from an
// elaborated design. It is the preprocessing step the paper's speed claims
// rest on: every annotation estimation needs — internal computation times
// and sizes per component type, access frequencies, transferred bits,
// concurrency tags — is computed here, once, so that estimating a candidate
// partition later is a matter of table lookups and sums.
//
// The construction runs as an explicit pass graph over the elaborated
// design, each pass owning one annotation family and declaring the passes
// whose outputs it reads:
//
//  1. extract      — behavior/variable nodes and entity ports (BV, IO)
//  2. frequencies  — channels with profile-weighted accfreq/accmin/accmax
//  3. channelwires — per-access bit counts and concurrency tags (§2.3)
//  4. weights      — per-technology ict_list/size_list via internal/synth
//  5. overrides    — designer weight overrides (the -ov file)
//  6. validate     — Graph.Validate on the finished SLIF
//
// Passes run in dependency order and each is independently testable; a
// pass failure aborts the build with the pass named in the error. Every
// pass whose work is per-behavior exposes its loop body as a separate
// function (behaviorChannels, wireChannel, tagChannels, behaviorWeights,
// ...), which Rebuild invokes for just the edited slice of the design —
// see rebuild.go.
package builder

import (
	"fmt"
	"strings"

	"specsyn/internal/core"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/synth"
	"specsyn/internal/vhdl"
)

// Options configures a build.
type Options struct {
	// Profile supplies branch probabilities and dynamic loop counts for
	// the frequency and weight passes. Nil means profile.Empty(): uniform
	// branches, single-trip dynamic loops.
	Profile *profile.Profile

	// Techs lists the component technologies to precompute ict/size
	// weights for. Empty means synth.StdTechs().
	Techs []*synth.Tech

	// Overrides, when non-nil, replaces computed weights with
	// designer-specified values after the weight pass.
	Overrides *Overrides

	// SkipTags disables concurrency-tag derivation; every channel gets
	// core.NoTag. The naive re-analysis baseline builds with this set so
	// its per-query model and the preprocessed graph stay comparable.
	SkipTags bool
}

// state is the pipeline's working set, threaded through every pass.
type state struct {
	d     *sem.Design
	opts  Options
	prof  *profile.Profile
	techs []*synth.Tech

	g       *core.Graph
	chanSym map[*core.Channel]*sem.Symbol // channel → resolved destination

	// res, when non-nil, maps node names to the endpoint struct a rebuild
	// has decided on, shadowing g's (possibly mid-surgery) indexes. It lets
	// the per-behavior pass bodies resolve destinations to fresh replacement
	// nodes before the copy-on-write graph's indexes are repaired.
	res map[string]core.Endpoint
}

// pass is one node of the build's pass graph.
type pass struct {
	name string
	run  func(*state) error
	// needs names the passes whose outputs this pass reads. The pipeline
	// order must respect it (checked once at init), and Rebuild relies on
	// it: a per-behavior re-run replays the bodies of every pass
	// downstream of the first invalidated one, in this order.
	needs []string
}

// pipeline is the pass graph in execution order. Each pass owns the
// annotations its name suggests; see the package comment.
var pipeline = []pass{
	{name: "extract", run: passExtract},
	{name: "frequencies", run: passFrequencies, needs: []string{"extract"}},
	{name: "channelwires", run: passChannelWires, needs: []string{"frequencies"}},
	{name: "weights", run: passWeights, needs: []string{"extract"}},
	{name: "overrides", run: passOverrides, needs: []string{"weights"}},
	{name: "validate", run: passValidate, needs: []string{"frequencies", "channelwires", "weights", "overrides"}},
}

func init() {
	// The pass graph is data, so a reordering that breaks a declared
	// dependency is a programming error worth failing fast on.
	done := map[string]bool{}
	for _, p := range pipeline {
		for _, n := range p.needs {
			if !done[n] {
				panic(fmt.Sprintf("builder: pass %s runs before its input %s", p.name, n))
			}
		}
		done[p.name] = true
	}
}

// Build constructs the annotated SLIF graph of an elaborated design.
func Build(d *sem.Design, opts Options) (*core.Graph, error) {
	if d == nil {
		return nil, fmt.Errorf("builder: nil design")
	}
	s := newBuildState(d, opts)
	for _, p := range pipeline {
		if err := p.run(s); err != nil {
			return nil, fmt.Errorf("builder: pass %s: %w", p.name, err)
		}
	}
	return s.g, nil
}

// newBuildState assembles the pipeline working set with defaults applied.
func newBuildState(d *sem.Design, opts Options) *state {
	s := &state{
		d:       d,
		opts:    opts,
		prof:    opts.Profile,
		techs:   opts.Techs,
		g:       core.NewGraph(d.Name),
		chanSym: make(map[*core.Channel]*sem.Symbol),
	}
	if s.prof == nil {
		s.prof = profile.Empty()
	}
	if len(s.techs) == 0 {
		s.techs = synth.StdTechs()
	}
	return s
}

// BuildVHDL parses, elaborates and builds in one step.
func BuildVHDL(src string, opts Options) (*core.Graph, error) {
	df, err := vhdl.Parse(src)
	if err != nil {
		return nil, err
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		return nil, err
	}
	return Build(d, opts)
}

// passValidate is the final gate: the graph the pipeline hands out must
// satisfy every SLIF invariant. A violation is reported with the source
// position of the behavior or object whose node the invariant names, so
// the designer's editor can jump to the offending line.
func passValidate(s *state) error {
	err := s.g.Validate()
	if err == nil {
		return nil
	}
	// Graph.Validate names the faulty node or channel; locate the unit
	// whose UniqueID the message mentions and prefix its position. Longest
	// match wins, since one UniqueID may be a substring of another.
	msg := err.Error()
	var best string
	var pos vhdl.Pos
	for _, b := range s.d.Behaviors {
		if b.Pos.Line != 0 && len(b.UniqueID) > len(best) && strings.Contains(msg, b.UniqueID) {
			best, pos = b.UniqueID, b.Pos
		}
	}
	for _, o := range s.d.Objects {
		if o.Pos.Line != 0 && len(o.UniqueID) > len(best) && strings.Contains(msg, o.UniqueID) {
			best, pos = o.UniqueID, o.Pos
		}
	}
	if best == "" {
		return err
	}
	return fmt.Errorf("%s: %w", pos, err)
}
