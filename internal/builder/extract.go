package builder

import (
	"fmt"

	"specsyn/internal/core"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// passExtract populates the graph's BV and IO sets from the elaborated
// design: one behavior node per process/subprogram (in elaboration order,
// which interleaves architecture-level subprograms, processes and their
// nested subprograms deterministically), one variable node per declared
// object, and one port per entity port. Variables carry their storage
// footprint; ports carry their per-access bit count. The per-element
// builders (extractPort, extractBehavior, extractObject) are the pass's
// per-unit bodies, which Rebuild calls for just the affected subset.
func passExtract(s *state) error {
	for _, p := range s.d.Ports {
		np, err := extractPort(p)
		if err != nil {
			return err
		}
		if err := s.g.AddPort(np); err != nil {
			return err
		}
	}
	for _, b := range s.d.Behaviors {
		if err := s.g.AddNode(extractBehavior(b)); err != nil {
			return behErr(b, err)
		}
	}
	for _, o := range s.d.Objects {
		if err := s.g.AddNode(extractObject(o)); err != nil {
			return objErr(o, err)
		}
	}
	return nil
}

// extractPort builds the IO element for one entity port.
func extractPort(p *sem.Port) (*core.Port, error) {
	dir, err := portDir(p.Dir)
	if err != nil {
		return nil, err
	}
	return &core.Port{Name: p.Name, Dir: dir, Bits: p.Type.AccessBits()}, nil
}

// extractBehavior builds the (unannotated) behavior node for one behavior.
func extractBehavior(b *sem.Behavior) *core.Node {
	return &core.Node{Name: b.UniqueID, Kind: core.BehaviorNode, IsProcess: b.IsProcess}
}

// extractObject builds the variable node for one declared object.
func extractObject(o *sem.Object) *core.Node {
	return &core.Node{Name: o.UniqueID, Kind: core.VariableNode, StorageBits: o.Type.TotalBits()}
}

func portDir(d vhdl.PortDir) (core.PortDir, error) {
	switch d {
	case vhdl.DirIn:
		return core.In, nil
	case vhdl.DirOut:
		return core.Out, nil
	case vhdl.DirInOut:
		return core.InOut, nil
	}
	return core.In, fmt.Errorf("unknown port direction %v", d)
}

// behErr prefixes an error with the behavior's declaration position, so a
// build or rebuild failure points at the line the designer edited.
func behErr(b *sem.Behavior, err error) error {
	if err == nil || b.Pos.Line == 0 {
		return err
	}
	return fmt.Errorf("%s: in %s: %w", b.Pos, b.Name, err)
}

// objErr is behErr for object declarations.
func objErr(o *sem.Object, err error) error {
	if err == nil || o.Pos.Line == 0 {
		return err
	}
	return fmt.Errorf("%s: in declaration of %s: %w", o.Pos, o.Name, err)
}

// endpoint resolves an access target symbol to its graph endpoint. A
// rebuild's resolver overlay (state.res) wins over the graph indexes, which
// during copy-on-write surgery still point at the replaced structs.
func (s *state) endpoint(sym *sem.Symbol) (core.Endpoint, error) {
	if s.res != nil {
		var name string
		switch sym.Kind {
		case sem.SymObject:
			name = sym.Object.UniqueID
		case sem.SymPort:
			name = sym.Port.Name
		case sem.SymBehavior:
			name = sym.Behavior.UniqueID
		}
		if ep, ok := s.res[name]; ok {
			return ep, nil
		}
	}
	switch sym.Kind {
	case sem.SymObject:
		if n := s.g.NodeByName(sym.Object.UniqueID); n != nil {
			return n, nil
		}
	case sem.SymPort:
		if p := s.g.PortByName(sym.Port.Name); p != nil {
			return p, nil
		}
	case sem.SymBehavior:
		if n := s.g.NodeByName(sym.Behavior.UniqueID); n != nil {
			return n, nil
		}
	}
	return nil, fmt.Errorf("access target %q has no graph endpoint", sym.Name)
}
