package builder

import (
	"fmt"

	"specsyn/internal/core"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// passExtract populates the graph's BV and IO sets from the elaborated
// design: one behavior node per process/subprogram (in elaboration order,
// which interleaves architecture-level subprograms, processes and their
// nested subprograms deterministically), one variable node per declared
// object, and one port per entity port. Variables carry their storage
// footprint; ports carry their per-access bit count.
func passExtract(s *state) error {
	for _, p := range s.d.Ports {
		dir, err := portDir(p.Dir)
		if err != nil {
			return err
		}
		if err := s.g.AddPort(&core.Port{Name: p.Name, Dir: dir, Bits: p.Type.AccessBits()}); err != nil {
			return err
		}
	}
	for _, b := range s.d.Behaviors {
		n := &core.Node{Name: b.UniqueID, Kind: core.BehaviorNode, IsProcess: b.IsProcess}
		if err := s.g.AddNode(n); err != nil {
			return err
		}
	}
	for _, o := range s.d.Objects {
		n := &core.Node{Name: o.UniqueID, Kind: core.VariableNode, StorageBits: o.Type.TotalBits()}
		if err := s.g.AddNode(n); err != nil {
			return err
		}
	}
	return nil
}

func portDir(d vhdl.PortDir) (core.PortDir, error) {
	switch d {
	case vhdl.DirIn:
		return core.In, nil
	case vhdl.DirOut:
		return core.Out, nil
	case vhdl.DirInOut:
		return core.InOut, nil
	}
	return core.In, fmt.Errorf("unknown port direction %v", d)
}

// endpoint resolves an access target symbol to its graph endpoint.
func (s *state) endpoint(sym *sem.Symbol) (core.Endpoint, error) {
	switch sym.Kind {
	case sem.SymObject:
		if n := s.g.NodeByName(sym.Object.UniqueID); n != nil {
			return n, nil
		}
	case sem.SymPort:
		if p := s.g.PortByName(sym.Port.Name); p != nil {
			return p, nil
		}
	case sem.SymBehavior:
		if n := s.g.NodeByName(sym.Behavior.UniqueID); n != nil {
			return n, nil
		}
	}
	return nil, fmt.Errorf("access target %q has no graph endpoint", sym.Name)
}
