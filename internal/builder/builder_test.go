package builder

import (
	"os"
	"path/filepath"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/synth"
	"specsyn/internal/vhdl"
)

// elaborate parses and elaborates an inline specification.
func elaborate(t *testing.T, src string) *sem.Design {
	t.Helper()
	df, err := vhdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// newState prepares a pipeline state without running any pass, so tests
// can drive passes individually.
func newState(d *sem.Design, opts Options) *state {
	s := &state{
		d:       d,
		opts:    opts,
		prof:    opts.Profile,
		techs:   opts.Techs,
		g:       core.NewGraph(d.Name),
		chanSym: make(map[*core.Channel]*sem.Symbol),
	}
	if s.prof == nil {
		s.prof = profile.Empty()
	}
	if len(s.techs) == 0 {
		s.techs = synth.StdTechs()
	}
	return s
}

// runThrough runs pipeline passes up to and including the named one.
func runThrough(t *testing.T, s *state, last string) {
	t.Helper()
	for _, p := range pipeline {
		if err := p.run(s); err != nil {
			t.Fatalf("pass %s: %v", p.name, err)
		}
		if p.name == last {
			return
		}
	}
	t.Fatalf("no pass named %q", last)
}

const tinySrc = `
entity TinyE is
    port ( din : in integer range 0 to 255;
           dout : out integer range 0 to 255 );
end;
architecture behav of TinyE is
    signal acc : integer range 0 to 255;
begin
    Main: process
        variable tmp : integer range 0 to 255;
        procedure Step is
        begin
            tmp := din;
            acc <= tmp + acc;
        end;
    begin
        Step;
        dout <= acc;
        wait on din;
    end process;
end;
`

// TestPassExtract checks the first pass alone: nodes in elaboration
// order with kinds, storage footprints and port widths — no channels yet.
func TestPassExtract(t *testing.T) {
	s := newState(elaborate(t, tinySrc), Options{})
	runThrough(t, s, "extract")

	if got := len(s.g.Channels); got != 0 {
		t.Fatalf("extract created %d channels", got)
	}
	wantNodes := []struct {
		name    string
		process bool
		storage int64
	}{
		{"main", true, 0},
		{"step", false, 0},
		{"acc", false, 8},
		{"tmp", false, 8},
	}
	if len(s.g.Nodes) != len(wantNodes) {
		t.Fatalf("nodes = %d, want %d", len(s.g.Nodes), len(wantNodes))
	}
	for i, w := range wantNodes {
		n := s.g.Nodes[i]
		if n.Name != w.name || n.IsProcess != w.process || n.StorageBits != w.storage {
			t.Errorf("node %d = %s/process=%v/storage=%d, want %+v", i, n.Name, n.IsProcess, n.StorageBits, w)
		}
	}
	if len(s.g.Ports) != 2 || s.g.Ports[0].Name != "din" || s.g.Ports[0].Bits != 8 {
		t.Errorf("ports: %+v", s.g.Ports)
	}
	if s.g.Ports[1].Dir != core.Out {
		t.Errorf("dout direction = %v", s.g.Ports[1].Dir)
	}
}

// TestPassFrequencies checks the second pass: one channel per (src, dst)
// pair with summed expected counts, in first-access order, and no bit
// annotation yet (that belongs to the next pass).
func TestPassFrequencies(t *testing.T) {
	s := newState(elaborate(t, tinySrc), Options{})
	runThrough(t, s, "frequencies")

	main := s.g.NodeByName("main")
	keys := func(cs []*core.Channel) []string {
		var out []string
		for _, c := range cs {
			out = append(out, c.Dst.EndpointName())
		}
		return out
	}
	got := keys(s.g.BehChans(main))
	want := []string{"step", "dout", "acc", "din"}
	if len(got) != len(want) {
		t.Fatalf("main channels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("main channels = %v, want %v", got, want)
		}
	}
	// acc: read once in the dout assignment by main. step reads/writes it
	// separately — those accesses belong to step's own channel.
	acc := s.g.FindChannel("main", "acc")
	if acc.AccFreq != 1 || acc.AccMin != 1 || acc.AccMax != 1 {
		t.Errorf("main->acc counts = %v/%v/%v", acc.AccFreq, acc.AccMin, acc.AccMax)
	}
	stepAcc := s.g.FindChannel("step", "acc")
	if stepAcc == nil || stepAcc.AccFreq != 2 {
		t.Errorf("step->acc = %+v, want freq 2 (read + write)", stepAcc)
	}
	if acc.Bits != 0 {
		t.Errorf("frequencies pass set bits %d; that is the channelwires pass's job", acc.Bits)
	}
}

// TestPassChannelWires checks the bit-width annotation: scalars transfer
// their encoding, arrays an element plus its address, calls their
// parameter and result bits.
func TestPassChannelWires(t *testing.T) {
	src := `
entity BitsE is
    port ( din : in integer range 0 to 255 );
end;
architecture behav of BitsE is
    type buf_array is array (1 to 128) of integer range 0 to 255;
    signal buf : buf_array;
    function Pick(i : in integer) return integer is
    begin
        return buf(i);
    end;
begin
    Main: process
        variable v : integer range 0 to 7;
    begin
        v := Pick(din);
        buf(v) <= din;
        wait on din;
    end process;
end;
`
	s := newState(elaborate(t, src), Options{})
	runThrough(t, s, "channelwires")

	checks := map[[2]string]int{
		{"main", "v"}:    3,       // scalar 0..7
		{"main", "buf"}:  8 + 7,   // element + address bits of a 128-entry array
		{"main", "pick"}: 32 + 32, // integer parameter + integer result
		{"main", "din"}:  8,
		{"pick", "buf"}:  8 + 7,
	}
	for key, bits := range checks {
		c := s.g.FindChannel(key[0], key[1])
		if c == nil {
			t.Fatalf("missing channel %s->%s", key[0], key[1])
		}
		if c.Bits != bits {
			t.Errorf("%s->%s bits = %d, want %d", key[0], key[1], c.Bits, bits)
		}
	}
}

// TestPassWeights checks the per-technology annotation: behaviors get
// ict/size on processors and ASICs but not memories; variables get all
// four technologies of the standard library.
func TestPassWeights(t *testing.T) {
	s := newState(elaborate(t, tinySrc), Options{})
	runThrough(t, s, "weights")

	main := s.g.NodeByName("main")
	for _, tech := range []string{"proc10", "proc20", "asic50"} {
		if _, ok := main.ICT[tech]; !ok {
			t.Errorf("main has no ict on %s", tech)
		}
	}
	if _, ok := main.ICT["sram8"]; ok {
		t.Error("behavior annotated for a memory technology")
	}
	acc := s.g.NodeByName("acc")
	for _, tech := range []string{"proc10", "proc20", "asic50", "sram8"} {
		if _, ok := acc.ICT[tech]; !ok {
			t.Errorf("acc has no ict on %s", tech)
		}
	}
	// 8 stored bits: 1 byte on a processor, 8 register gates/bit on the
	// ASIC, one 8-bit word in the SRAM.
	if acc.Size["proc10"] != 1 || acc.Size["asic50"] != 64 || acc.Size["sram8"] != 1 {
		t.Errorf("acc sizes: %v", acc.Size)
	}
	// The faster processor halves the ict.
	if main.ICT["proc20"] >= main.ICT["proc10"] {
		t.Errorf("proc20 ict %v not faster than proc10 %v", main.ICT["proc20"], main.ICT["proc10"])
	}
}

// TestDefaultTechsAndProfile: empty options mean the standard technology
// set and the empty profile — the form the benchmarks build with.
func TestDefaultTechsAndProfile(t *testing.T) {
	g, err := BuildVHDL(tinySrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NodeByName("main")
	if _, ok := n.ICT["proc10"]; !ok {
		t.Error("default build missing proc10 weights")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

// TestSkipTags: the naive-baseline build form marks every channel NoTag.
func TestSkipTags(t *testing.T) {
	g, err := BuildVHDL(tinySrc, Options{SkipTags: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Channels {
		if c.Tag != core.NoTag {
			t.Errorf("channel %s tagged %d with SkipTags", c.Key(), c.Tag)
		}
	}
}

// TestTags exercises the §2.3 tag derivation on a purpose-built process:
// two independent statements share a group; a data dependence starts a
// new one; a wait is a barrier; and a tag needs at least two channels to
// survive demotion.
func TestTags(t *testing.T) {
	src := `
entity TagE is
    port ( a : in integer range 0 to 255;
           b : in integer range 0 to 255;
           go : in integer range 0 to 1;
           q : out integer range 0 to 255 );
end;
architecture behav of TagE is
begin
    Main: process
        variable x : integer range 0 to 255;
        variable y : integer range 0 to 255;
    begin
        x := a;        -- group 1
        y := b;        -- group 1: no shared objects, merges
        q <= x + y;    -- group 2: reads what group 1 wrote
        wait on go;    -- group 3: a wait is always its own group
    end process;
end;
`
	g, err := BuildVHDL(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"a":  1, // touched only by group 1, shared with b: tag kept
		"b":  1,
		"x":  -1, // written in group 1, read in group 2: spans groups
		"y":  -1,
		"q":  -1, // only channel of group 2: singleton tag demoted
		"go": -1, // only channel of group 3: singleton tag demoted
	}
	for dst, tag := range want {
		c := g.FindChannel("main", dst)
		if c == nil {
			t.Fatalf("missing channel main->%s", dst)
		}
		if c.Tag != tag {
			t.Errorf("main->%s tag = %d, want %d", dst, c.Tag, tag)
		}
	}
}

// TestBuildErrors covers the failure paths of Build/BuildVHDL.
func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("nil design accepted")
	}
	if _, err := BuildVHDL("not vhdl at all", Options{}); err == nil {
		t.Error("garbage source accepted")
	}
	if _, err := BuildVHDL("entity E is end;", Options{}); err == nil {
		t.Error("entity without architecture accepted")
	}
	bad := []*synth.Tech{{Name: "", Class: synth.StdProc}}
	if _, err := BuildVHDL(tinySrc, Options{Techs: bad}); err == nil {
		t.Error("invalid technology accepted")
	}
}

// readTestdata loads a file from the shared testdata directory.
func readTestdata(t testing.TB, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// buildFuzzy builds the paper's running example with its shipped profile.
func buildFuzzy(t testing.TB) *core.Graph {
	t.Helper()
	prof, err := profile.Load(filepath.Join("..", "..", "testdata", "fuzzy.prob"))
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildVHDL(readTestdata(t, "fuzzy.vhd"), Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGoldenFigure4Counts pins the fuzzy example's published Figure 4
// object counts: 35 behavior+variable nodes and 56 channels must survive
// Build unchanged, so refactors of the pipeline can't silently drop nodes
// or edges.
func TestGoldenFigure4Counts(t *testing.T) {
	st := buildFuzzy(t).Stats()
	if st.BV != 35 || st.Channels != 56 {
		t.Errorf("fuzzy: BV=%d C=%d, want BV=35 C=56 (Figure 4)", st.BV, st.Channels)
	}
}

// TestFigure3Fragment asserts the annotation values of the paper's
// Figure 3 fragment, which uses 128-entry rule arrays: accessing one of
// 128 bytes costs 8 data + 7 address = 15 bits, EvaluateRule touches the
// rule store 65 times per execution and the sampled input once.
func TestFigure3Fragment(t *testing.T) {
	src := `
entity Fig3E is
    port ( in1 : in integer range 0 to 255 );
end;
architecture behav of Fig3E is
    subtype byte is integer range 0 to 255;
    type mr_array is array (1 to 128) of byte;
    signal mr1 : mr_array;
    signal in1val : byte;
    function Min(a : in integer; b : in integer) return integer is
    begin
        if a < b then
            return a;
        end if;
        return b;
    end;
begin
    Main: process
        type tmr_array is array (1 to 64) of byte;
        variable tmr1 : tmr_array;
        procedure EvaluateRule is
            variable trunc : byte;
        begin
            trunc := mr1(in1val);
            for i in 1 to 64 loop
                tmr1(i) := Min(trunc, mr1(64 + i));
            end loop;
        end;
    begin
        EvaluateRule;
        wait on in1;
    end process;
end;
`
	g, err := BuildVHDL(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mr1 := g.FindChannel("evaluaterule", "mr1")
	if mr1 == nil {
		t.Fatal("missing channel evaluaterule->mr1")
	}
	if mr1.AccFreq != 65 || mr1.Bits != 15 {
		t.Errorf("evaluaterule->mr1 = freq %v bits %d, want freq 65 bits 15 (Figure 3)", mr1.AccFreq, mr1.Bits)
	}
	in1val := g.FindChannel("evaluaterule", "in1val")
	if in1val == nil || in1val.AccFreq != 1 || in1val.Bits != 8 {
		t.Errorf("evaluaterule->in1val = %+v, want freq 1 bits 8 (Figure 3)", in1val)
	}
}

// TestFullSpecFigure3 checks the same quantities on the full fuzzy
// specification, whose rule arrays have 384 entries (9 address bits):
// the shapes scale exactly as §2.4.1 predicts.
func TestFullSpecFigure3(t *testing.T) {
	g := buildFuzzy(t)
	mr1 := g.FindChannel("evaluaterule", "mr1")
	if mr1.AccFreq != 65 || mr1.Bits != 17 {
		t.Errorf("evaluaterule->mr1 = freq %v bits %d, want freq 65 bits 17", mr1.AccFreq, mr1.Bits)
	}
}

// TestBuildDeterministic: two builds of the same design produce channel
// lists in identical order with identical annotations.
func TestBuildDeterministic(t *testing.T) {
	g1 := buildFuzzy(t)
	g2 := buildFuzzy(t)
	if len(g1.Channels) != len(g2.Channels) {
		t.Fatalf("channel counts differ: %d vs %d", len(g1.Channels), len(g2.Channels))
	}
	for i := range g1.Channels {
		a, b := g1.Channels[i], g2.Channels[i]
		if a.Key() != b.Key() || a.AccFreq != b.AccFreq || a.Bits != b.Bits || a.Tag != b.Tag {
			t.Fatalf("channel %d differs: %s vs %s", i, a.Key(), b.Key())
		}
	}
}
