package builder

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// The differential suite: hundreds of random single-behavior edits per
// example, each checked against the one invariant the incremental rebuild
// promises — the compiled snapshot of Rebuild's result is byte-identical to
// a from-scratch Build of the edited source — plus exactness of the
// reported Delta against an independently computed affected set.

// snapBytes is the byte-identity oracle: compiled snapshot bytes.
func snapBytes(t testing.TB, g *core.Graph) []byte {
	t.Helper()
	s, err := core.Compile(g)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// normalize round-trips a source through the printer so that subsequent
// AST-edit → Format cycles produce minimal textual diffs (and synthesized
// process labels are baked in, keeping unit identities stable as lines
// shift).
func normalize(src string) string {
	return vhdl.Format(vhdl.MustParse(src))
}

// editUnit is one editable behavior body with its fingerprint path.
type editUnit struct {
	path string
	body *[]vhdl.Stmt
}

func collectUnits(df *vhdl.DesignFile) []editUnit {
	var out []editUnit
	var subs func(decls []vhdl.Decl, prefix string)
	subs = func(decls []vhdl.Decl, prefix string) {
		for _, d := range decls {
			if sp, ok := d.(*vhdl.SubprogramDecl); ok {
				out = append(out, editUnit{path: prefix + sp.Name, body: &sp.Body})
				subs(sp.Decls, prefix+sp.Name+"/")
			}
		}
	}
	for _, a := range df.Architectures {
		subs(a.Decls, "")
		for _, ps := range a.Processes {
			out = append(out, editUnit{path: ps.Label, body: &ps.Body})
			subs(ps.Decls, ps.Label+"/")
		}
	}
	return out
}

// Edit kinds. Only stmtDelete can change the elaborated symbol sequence
// (dropping the last reference to an implicit symbol), so only it may
// legitimately fall back to a full rebuild.
const (
	editInsertNull = iota
	editDelete
	editDuplicate
	editLoopBound
	numEditKinds
)

// applyRandomEdit mutates one random behavior body of df in place and
// returns the edited unit's path and the edit kind; ok is false when the
// drawn edit is not applicable (empty body, no literal loop bound).
func applyRandomEdit(rng *rand.Rand, df *vhdl.DesignFile) (path string, kind int, ok bool) {
	units := collectUnits(df)
	u := units[rng.Intn(len(units))]
	kind = rng.Intn(numEditKinds)
	switch kind {
	case editInsertNull:
		i := rng.Intn(len(*u.body) + 1)
		*u.body = append((*u.body)[:i:i], append([]vhdl.Stmt{&vhdl.NullStmt{}}, (*u.body)[i:]...)...)
	case editDelete:
		if len(*u.body) < 2 {
			return "", kind, false
		}
		i := rng.Intn(len(*u.body))
		*u.body = append((*u.body)[:i:i], (*u.body)[i+1:]...)
	case editDuplicate:
		if len(*u.body) == 0 {
			return "", kind, false
		}
		i := rng.Intn(len(*u.body))
		*u.body = append((*u.body)[:i:i], append([]vhdl.Stmt{(*u.body)[i]}, (*u.body)[i:]...)...)
	case editLoopBound:
		var loops []*vhdl.ForStmt
		vhdl.WalkStmts(*u.body, func(st vhdl.Stmt) {
			if fs, isFor := st.(*vhdl.ForStmt); isFor {
				if _, lit := fs.High.(*vhdl.IntExpr); lit {
					loops = append(loops, fs)
				}
			}
		})
		if len(loops) == 0 {
			return "", kind, false
		}
		fs := loops[rng.Intn(len(loops))]
		fs.High = &vhdl.IntExpr{Val: fs.High.(*vhdl.IntExpr).Val + 1}
	}
	return u.path, kind, true
}

// expectedAffected computes, independently of Rebuild's implementation, the
// set of behaviors a body edit at editedPath must touch: the unit itself,
// its lexical descendants, and the closure of callers over the previous
// graph's access relation.
func expectedAffected(d *sem.Design, prev *core.Graph, editedPath string) map[string]bool {
	exp := make(map[string]bool)
	var queue []string
	for _, b := range d.Behaviors {
		if b.Implicit {
			continue
		}
		p := behaviorPath(b)
		if p == editedPath || strings.HasPrefix(p, editedPath+"/") {
			exp[b.UniqueID] = true
			queue = append(queue, b.UniqueID)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, c := range prev.InChans(id) {
			if !exp[c.Src.Name] {
				exp[c.Src.Name] = true
				queue = append(queue, c.Src.Name)
			}
		}
	}
	return exp
}

func exampleOptions(t testing.TB, name string) Options {
	t.Helper()
	prof, err := profile.Load(filepath.Join("..", "..", "testdata", name+".prob"))
	if err != nil {
		t.Fatal(err)
	}
	return Options{Profile: prof}
}

func testRebuildDifferential(t *testing.T, name string, edits int) {
	opts := exampleOptions(t, name)
	src := normalize(readTestdata(t, name+".vhd"))
	prev, err := BuildVHDL(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20260808))
	applied := 0
	for i := 0; i < edits; i++ {
		df := vhdl.MustParse(src)
		path, kind, ok := applyRandomEdit(rng, df)
		if !ok {
			continue
		}
		newSrc := vhdl.Format(df)
		want, err := BuildVHDL(newSrc, opts)
		if err != nil {
			// The edit broke the design (a delete can orphan a name); the
			// rebuild must refuse it the same way.
			if _, _, rerr := Rebuild(prev, src, newSrc, opts); rerr == nil {
				t.Fatalf("edit %d (%s): full build fails (%v) but Rebuild succeeds", i, path, err)
			}
			continue
		}
		got, delta, err := Rebuild(prev, src, newSrc, opts)
		if err != nil {
			t.Fatalf("edit %d (%s): rebuild: %v", i, path, err)
		}
		if !bytes.Equal(snapBytes(t, got), snapBytes(t, want)) {
			t.Fatalf("edit %d (%s, kind %d): rebuild diverges from full build (delta %+v)", i, path, kind, delta)
		}
		if delta.Full {
			if kind != editDelete {
				t.Fatalf("edit %d (%s, kind %d): unexpected full fallback: %s", i, path, kind, delta.Reason)
			}
		} else {
			fe, err := frontend(newSrc)
			if err != nil {
				t.Fatal(err)
			}
			exp := expectedAffected(fe.d, prev, path)
			gotSet := make(map[string]bool)
			for _, id := range delta.Changed {
				gotSet[id] = true
			}
			for _, id := range delta.Dependents {
				gotSet[id] = true
			}
			if len(gotSet) != len(exp) {
				t.Fatalf("edit %d (%s): delta names %d behaviors, want %d (%+v vs %v)", i, path, len(gotSet), len(exp), delta, exp)
			}
			for id := range exp {
				if !gotSet[id] {
					t.Fatalf("edit %d (%s): delta misses affected behavior %s", i, path, id)
				}
			}
			if len(delta.AddedNodes) != 0 || len(delta.RemovedNodes) != 0 {
				t.Fatalf("edit %d (%s): fast path reported node set changes: %+v", i, path, delta)
			}
		}
		applied++
		// Half the time, accept the edit: later iterations then rebuild on
		// top of an already-rebuilt graph, exercising chained reloads.
		if rng.Intn(2) == 0 {
			src, prev = newSrc, got
		}
	}
	if applied < edits/2 {
		t.Fatalf("only %d/%d edits applicable; generator broken", applied, edits)
	}
}

func TestRebuildDifferential(t *testing.T) {
	edits := 200
	if testing.Short() {
		edits = 30
	}
	for _, name := range []string{"ans", "ether", "fuzzy", "vol"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			testRebuildDifferential(t, name, edits)
		})
	}
}

// TestRebuildNoSemanticChange pins the cheapest path: a comment or
// formatting edit returns the previous graph itself, untouched.
func TestRebuildNoSemanticChange(t *testing.T) {
	opts := exampleOptions(t, "fuzzy")
	src := normalize(readTestdata(t, "fuzzy.vhd"))
	prev, err := BuildVHDL(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	newSrc := "-- edited only in comments\n" + src + "\n-- trailing note\n"
	got, delta, err := Rebuild(prev, src, newSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != prev {
		t.Error("comment-only edit must return the previous graph pointer")
	}
	if !delta.Empty() {
		t.Errorf("comment-only edit reported a delta: %+v", delta)
	}
}

// TestRebuildRenameFallsBack: renaming a unit defeats path matching; the
// rebuild must detect it, fall back to a full build, and say so.
func TestRebuildRenameFallsBack(t *testing.T) {
	opts := exampleOptions(t, "fuzzy")
	src := normalize(readTestdata(t, "fuzzy.vhd"))
	prev, err := BuildVHDL(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	df := vhdl.MustParse(src)
	var renamed bool
	for _, a := range df.Architectures {
		for _, d := range a.Decls {
			if sp, ok := d.(*vhdl.SubprogramDecl); ok {
				sp.Name += "_rn"
				renamed = true
				break
			}
		}
		if renamed {
			break
		}
	}
	if !renamed {
		t.Skip("fuzzy has no architecture-level subprogram to rename")
	}
	newSrc := vhdl.Format(df)
	want, err := BuildVHDL(newSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, delta, err := Rebuild(prev, src, newSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Full {
		t.Errorf("rename did not force a full rebuild: %+v", delta)
	}
	if !bytes.Equal(snapBytes(t, got), snapBytes(t, want)) {
		t.Error("full-fallback rebuild diverges from full build")
	}
	// The old name survives as an implicit call target, so only the new
	// name is guaranteed to show up in the node-set diff.
	if len(delta.AddedNodes) == 0 {
		t.Errorf("rename must report the added node: %+v", delta)
	}
}

// TestRebuildPrevUntouched: the fast path is copy-on-write; a concurrent
// reader of the previous graph must observe it bit-for-bit unchanged.
func TestRebuildPrevUntouched(t *testing.T) {
	opts := exampleOptions(t, "fuzzy")
	src := normalize(readTestdata(t, "fuzzy.vhd"))
	prev, err := BuildVHDL(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := snapBytes(t, prev)
	df := vhdl.MustParse(src)
	units := collectUnits(df)
	*units[0].body = append([]vhdl.Stmt{&vhdl.NullStmt{}}, *units[0].body...)
	got, delta, err := Rebuild(prev, src, vhdl.Format(df), opts)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Full || delta.Empty() {
		t.Fatalf("expected a fast-path rebuild, got %+v", delta)
	}
	if got == prev {
		t.Fatal("fast path returned the previous graph for a semantic edit")
	}
	if !bytes.Equal(snapBytes(t, prev), before) {
		t.Error("rebuild mutated the previous graph")
	}
}

// TestRebuildWithOverrides: designer weight overrides must be re-pinned on
// re-extracted nodes, keeping byte-identity with a full overridden build.
func TestRebuildWithOverrides(t *testing.T) {
	ov, err := LoadOverrides(filepath.Join("..", "..", "testdata", "fuzzy.ov"))
	if err != nil {
		t.Fatal(err)
	}
	opts := exampleOptions(t, "fuzzy")
	opts.Overrides = ov
	src := normalize(readTestdata(t, "fuzzy.vhd"))
	prev, err := BuildVHDL(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		df := vhdl.MustParse(src)
		path, _, ok := applyRandomEdit(rng, df)
		if !ok {
			continue
		}
		newSrc := vhdl.Format(df)
		want, err := BuildVHDL(newSrc, opts)
		if err != nil {
			continue
		}
		got, _, err := Rebuild(prev, src, newSrc, opts)
		if err != nil {
			t.Fatalf("edit %d (%s): %v", i, path, err)
		}
		if !bytes.Equal(snapBytes(t, got), snapBytes(t, want)) {
			t.Fatalf("edit %d (%s): overridden rebuild diverges from full build", i, path)
		}
	}
}

// FuzzRebuild feeds arbitrary edited sources through Rebuild against a
// fixed baseline: whenever the edited source builds from scratch, the
// incremental result must be byte-identical; whenever it does not, Rebuild
// must fail too.
func FuzzRebuild(f *testing.F) {
	base := normalize(readTestdata(f, "fuzzy.vhd"))
	f.Add(base)
	f.Add(strings.Replace(base, "null;", "", 1))
	f.Add(strings.Replace(base, ";", ";\nnull;", 1))
	f.Add("entity e is end; architecture a of e is begin process begin wait; end process; end;")
	prev, err := BuildVHDL(base, Options{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, newSrc string) {
		want, werr := BuildVHDL(newSrc, Options{})
		got, _, gerr := Rebuild(prev, base, newSrc, Options{})
		if werr != nil {
			if gerr == nil {
				t.Fatalf("full build fails (%v) but Rebuild succeeds", werr)
			}
			return
		}
		if gerr != nil {
			t.Fatalf("full build succeeds but Rebuild fails: %v", gerr)
		}
		if !bytes.Equal(snapBytes(t, got), snapBytes(t, want)) {
			t.Fatal("rebuild diverges from full build")
		}
	})
}
