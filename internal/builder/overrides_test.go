package builder

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestParseOverrides(t *testing.T) {
	src := `
# Figure 3: measured Convolve values replace the synthesized ones.
ict Convolve proc10 80
size convolve asic50 2500   # trailing comments too
`
	o, err := ParseOverrides(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 2 {
		t.Fatalf("Len = %d, want 2", o.Len())
	}
	// Node names are case-folded like every other SLIF identifier.
	if o.entries[0].node != "convolve" || o.entries[0].kind != "ict" || o.entries[0].value != 80 {
		t.Errorf("entry 0 = %+v", o.entries[0])
	}
}

func TestParseOverridesErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown record", "frob convolve proc10 80", "unknown record"},
		{"missing fields", "ict convolve proc10", "want 'ict"},
		{"extra fields", "size convolve proc10 80 90", "want 'size"},
		{"bad value", "ict convolve proc10 eighty", "bad value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseOverrides(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
			if !strings.Contains(err.Error(), "line 1") {
				t.Errorf("error %q lacks a line number", err)
			}
		})
	}
}

func TestLoadOverrides(t *testing.T) {
	o, err := LoadOverrides(filepath.Join("..", "..", "testdata", "fuzzy.ov"))
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() == 0 {
		t.Fatal("fuzzy.ov parsed empty")
	}
	if _, err := LoadOverrides(filepath.Join("..", "..", "testdata", "no-such.ov")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestSetRejectsUnknownKind(t *testing.T) {
	o := &Overrides{}
	if err := o.Set("weight", "convolve", "proc10", 80); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := o.Set("ict", "convolve", "proc10", 80); err != nil || o.Len() != 1 {
		t.Errorf("Set failed: %v, Len=%d", err, o.Len())
	}
}

// TestOverrideWinsOverComputed: the pipeline computes weights in pass 4
// and applies overrides in pass 5, so a designer-specified value must be
// what the finished graph reports.
func TestOverrideWinsOverComputed(t *testing.T) {
	base, err := BuildVHDL(tinySrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	computed := base.NodeByName("step").ICT["proc10"]
	if computed == 80 {
		t.Fatal("pick a different override value; 80 collides with the computed one")
	}

	o := &Overrides{}
	if err := o.Set("ict", "step", "proc10", 80); err != nil {
		t.Fatal(err)
	}
	g, err := BuildVHDL(tinySrc, Options{Overrides: o})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NodeByName("step").ICT["proc10"]; got != 80 {
		t.Errorf("overridden ict = %v, want 80 (computed was %v)", got, computed)
	}
	// Untouched annotations keep their computed values.
	if g.NodeByName("step").ICT["proc20"] != base.NodeByName("step").ICT["proc20"] {
		t.Error("override leaked onto another technology")
	}
}

// TestOverrideUnknownNode: referencing an undeclared object is an error
// surfaced through Build, not a silent no-op.
func TestOverrideUnknownNode(t *testing.T) {
	o := &Overrides{}
	if err := o.Set("ict", "nosuchnode", "proc10", 80); err != nil {
		t.Fatal(err)
	}
	_, err := BuildVHDL(tinySrc, Options{Overrides: o})
	if err == nil {
		t.Fatal("unknown node accepted")
	}
	if !strings.Contains(err.Error(), "nosuchnode") || !strings.Contains(err.Error(), "overrides") {
		t.Errorf("error %q does not name the bad node", err)
	}
}
