// Package alloc implements the allocation task of §1: choosing the set of
// system components — processors, ASICs, memories, buses — that the
// functional objects will be partitioned among. It provides a text
// component-library format, conversion of an allocation into SLIF component
// sets, and a small exhaustive allocation explorer that partitions each
// candidate allocation and ranks them by cost.
package alloc

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/partition"
	"specsyn/internal/synth"
)

// Library is a set of component technologies plus a concrete allocation of
// component instances. File format (one record per line, '#' comments):
//
//	proctype <name> clock <MHz>
//	asictype <name> clock <MHz>
//	memtype  <name> word <bits> access <us>
//	proc <name> <type> [sizecon <v>] [pincon <n>]
//	mem  <name> <type> [sizecon <v>]
//	bus  <name> width <n> ts <us> td <us>
type Library struct {
	Techs []*synth.Tech
	Procs []*core.Processor
	Mems  []*core.Memory
	Buses []*core.Bus
}

// TechByName returns the named technology, or nil.
func (l *Library) TechByName(name string) *synth.Tech {
	return synth.TechByName(l.Techs, name)
}

// Apply installs the library's component instances into the graph. The
// graph must not already have components.
func (l *Library) Apply(g *core.Graph) error {
	if len(g.Procs)+len(g.Mems)+len(g.Buses) > 0 {
		return fmt.Errorf("alloc: graph %q already has components", g.Name)
	}
	for _, p := range l.Procs {
		if l.TechByName(p.TypeName) == nil {
			return fmt.Errorf("alloc: processor %q uses undeclared type %q", p.Name, p.TypeName)
		}
		g.AddProcessor(p)
	}
	for _, m := range l.Mems {
		if l.TechByName(m.TypeName) == nil {
			return fmt.Errorf("alloc: memory %q uses undeclared type %q", m.Name, m.TypeName)
		}
		g.AddMemory(m)
	}
	for _, b := range l.Buses {
		g.AddBus(b)
	}
	return nil
}

// Std returns the default library: one standard processor and one ASIC
// (the paper's Figure 4 "processor-asic architecture"), one memory, and a
// 16-bit system bus that is fast on-component and slower across chips.
func Std() *Library {
	techs := synth.StdTechs()
	return &Library{
		Techs: techs,
		Procs: []*core.Processor{
			{Name: "cpu", TypeName: "proc10"},
			{Name: "asic", TypeName: "asic50", Custom: true},
		},
		Mems:  []*core.Memory{{Name: "ram", TypeName: "sram8"}},
		Buses: []*core.Bus{{Name: "sysbus", BitWidth: 16, TS: 0.05, TD: 0.4}},
	}
}

// Parse reads a library file.
func Parse(r io.Reader) (*Library, error) {
	l := &Library{}
	sc := bufio.NewScanner(r)
	line := 0
	getF := func(f []string, i int) (float64, error) {
		if i >= len(f) {
			return 0, fmt.Errorf("missing field %d", i)
		}
		return strconv.ParseFloat(f[i], 64)
	}
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		f := strings.Fields(text)
		fail := func(err error) (*Library, error) {
			return nil, fmt.Errorf("alloc: line %d: %v", line, err)
		}
		switch f[0] {
		case "proctype", "asictype":
			if len(f) != 4 || f[2] != "clock" {
				return fail(fmt.Errorf("want '%s <name> clock <MHz>'", f[0]))
			}
			mhz, err := getF(f, 3)
			if err != nil {
				return fail(err)
			}
			if f[0] == "proctype" {
				l.Techs = append(l.Techs, synth.GenericProcessor(f[1], mhz))
			} else {
				l.Techs = append(l.Techs, synth.GenericASIC(f[1], mhz))
			}
		case "memtype":
			if len(f) != 6 || f[2] != "word" || f[4] != "access" {
				return fail(fmt.Errorf("want 'memtype <name> word <bits> access <us>'"))
			}
			bits, err1 := strconv.Atoi(f[3])
			acc, err2 := getF(f, 5)
			if err1 != nil || err2 != nil {
				return fail(fmt.Errorf("bad numbers"))
			}
			l.Techs = append(l.Techs, synth.GenericMemory(f[1], bits, acc))
		case "proc":
			if len(f) < 3 {
				return fail(fmt.Errorf("want 'proc <name> <type> ...'"))
			}
			p := &core.Processor{Name: f[1], TypeName: f[2]}
			if t := synth.TechByName(l.Techs, f[2]); t != nil && t.Class == synth.CustomHW {
				p.Custom = true
			}
			for i := 3; i+1 < len(f); i += 2 {
				v, err := getF(f, i+1)
				if err != nil {
					return fail(err)
				}
				switch f[i] {
				case "sizecon":
					p.SizeCon = v
				case "pincon":
					p.PinCon = int(v)
				default:
					return fail(fmt.Errorf("unknown attribute %q", f[i]))
				}
			}
			l.Procs = append(l.Procs, p)
		case "mem":
			if len(f) < 3 {
				return fail(fmt.Errorf("want 'mem <name> <type> ...'"))
			}
			m := &core.Memory{Name: f[1], TypeName: f[2]}
			if len(f) >= 5 && f[3] == "sizecon" {
				v, err := getF(f, 4)
				if err != nil {
					return fail(err)
				}
				m.SizeCon = v
			}
			l.Mems = append(l.Mems, m)
		case "bus":
			if len(f) != 8 || f[2] != "width" || f[4] != "ts" || f[6] != "td" {
				return fail(fmt.Errorf("want 'bus <name> width <n> ts <us> td <us>'"))
			}
			w, err1 := strconv.Atoi(f[3])
			ts, err2 := getF(f, 5)
			td, err3 := getF(f, 7)
			if err1 != nil || err2 != nil || err3 != nil {
				return fail(fmt.Errorf("bad numbers"))
			}
			if w <= 0 {
				return fail(fmt.Errorf("bus %q has non-positive width %d", f[1], w))
			}
			l.Buses = append(l.Buses, &core.Bus{Name: f[1], BitWidth: w, TS: ts, TD: td})
		default:
			return fail(fmt.Errorf("unknown record %q", f[0]))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// Load reads a library file from disk.
func Load(path string) (*Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Candidate is one allocation option for the explorer.
type Candidate struct {
	Name  string
	Procs []*core.Processor
	Mems  []*core.Memory
	Buses []*core.Bus
}

// Outcome is the explorer's result for one candidate allocation.
type Outcome struct {
	Candidate Candidate
	Cost      float64
	Evals     int
	Err       error

	// Partial marks a candidate whose search was cut short (deadline or
	// cancellation): Cost is the best found before the cut, or +Inf for a
	// candidate the sweep never reached (Skipped).
	Partial bool
	// Skipped marks a candidate the sweep was cancelled before starting.
	Skipped bool
	// Report, for parallel exploration, is the partition engine's
	// structured account of the candidate's multi-leg search.
	Report *partition.SearchReport
}

// install clones the base graph and applies one candidate allocation.
func (c Candidate) install(g *core.Graph) *core.Graph {
	ng := g.Clone(false)
	for _, p := range c.Procs {
		cp := *p
		ng.AddProcessor(&cp)
	}
	for _, m := range c.Mems {
		cm := *m
		ng.AddMemory(&cm)
	}
	for _, b := range c.Buses {
		cb := *b
		ng.AddBus(&cb)
	}
	return ng
}

// sortOutcomes ranks by cost; skipped candidates (cost +Inf) sink to the
// bottom in their original order.
func sortOutcomes(outcomes []Outcome) {
	sort.SliceStable(outcomes, func(i, j int) bool { return outcomes[i].Cost < outcomes[j].Cost })
}

// Explore partitions the design under every candidate allocation (using
// the greedy constructive algorithm followed by group migration) and
// returns outcomes sorted by cost. This is the allocation task driven by
// the estimation speed SLIF provides. Cancelling the context stops the
// in-flight candidate at its next check (yielding a Partial outcome) and
// marks the remaining candidates Skipped — the outcomes for completed
// candidates are always returned.
func Explore(ctx context.Context, g *core.Graph, cands []Candidate, cons partition.Constraints, w partition.Weights) []Outcome {
	outcomes := make([]Outcome, 0, len(cands))
	for _, cand := range cands {
		out := Outcome{Candidate: cand, Cost: math.Inf(1)}
		if ctx != nil && ctx.Err() != nil {
			out.Err = ctx.Err()
			out.Partial, out.Skipped = true, true
			outcomes = append(outcomes, out)
			continue
		}
		ng := cand.install(g)
		if len(ng.Buses) == 0 {
			out.Err = fmt.Errorf("alloc: candidate %q has no bus", cand.Name)
			outcomes = append(outcomes, out)
			continue
		}
		ev := partition.NewEvaluator(ng, cons, w, estimate.Options{})
		cfg := partition.Config{Eval: ev, Policy: partition.SingleBus(ng.Buses[0]), IdxPolicy: partition.SingleBusIdx(ng, ng.Buses[0]), Seed: 1}
		res, err := partition.Greedy(ctx, ng, cfg)
		if err == nil && !res.Partial {
			res, err = partition.GroupMigration(ctx, res.Best, cfg)
		}
		if err != nil {
			out.Err = err
		} else {
			out.Cost = res.Cost
			out.Evals = ev.Evals
			out.Partial = res.Partial
		}
		outcomes = append(outcomes, out)
	}
	sortOutcomes(outcomes)
	return outcomes
}

// ExploreParallel is Explore with each candidate partitioned by the
// parallel multi-start engine instead of a single greedy construction: the
// mixed greedy/anneal/random portfolio runs on opt's worker pool, and the
// winning leg is polished with group migration. Because the portfolio's
// first leg is the canonical greedy construction, each candidate's cost is
// never worse than what a plain greedy start would give. Candidates are
// processed in order, so the ranking is deterministic for a given seed and
// leg plan. Each completed candidate's Outcome carries the engine's
// SearchReport; cancelling the context mid-sweep returns the finished
// candidates' outcomes, a Partial outcome for the interrupted one, and
// Skipped outcomes (cost +Inf) for the rest.
func ExploreParallel(ctx context.Context, g *core.Graph, cands []Candidate, cons partition.Constraints, w partition.Weights, opt partition.ParallelOptions) []Outcome {
	outcomes := make([]Outcome, 0, len(cands))
	for _, cand := range cands {
		out := Outcome{Candidate: cand, Cost: math.Inf(1)}
		if ctx != nil && ctx.Err() != nil {
			out.Err = ctx.Err()
			out.Partial, out.Skipped = true, true
			outcomes = append(outcomes, out)
			continue
		}
		ng := cand.install(g)
		if len(ng.Buses) == 0 {
			out.Err = fmt.Errorf("alloc: candidate %q has no bus", cand.Name)
			outcomes = append(outcomes, out)
			continue
		}
		ev := partition.NewEvaluator(ng, cons, w, estimate.Options{})
		cfg := partition.Config{Eval: ev, Policy: partition.SingleBus(ng.Buses[0]), IdxPolicy: partition.SingleBusIdx(ng, ng.Buses[0]), Seed: 1}
		multi, err := partition.MultiStart(ctx, ng, cfg, opt)
		res := multi.Result
		if err == nil {
			rep := multi.Report
			out.Report = &rep
			if !res.Partial {
				var polished partition.Result
				polished, err = partition.GroupMigration(ctx, multi.Best, cfg)
				if err == nil && polished.Cost < res.Cost {
					res = polished
				}
			}
		}
		if err != nil {
			out.Err = err
		} else {
			out.Cost = res.Cost
			out.Evals = ev.Evals
			out.Partial = res.Partial
		}
		outcomes = append(outcomes, out)
	}
	sortOutcomes(outcomes)
	return outcomes
}
