package alloc

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"specsyn/internal/builder"
	"specsyn/internal/core"
	"specsyn/internal/partition"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/synth"
	"specsyn/internal/vhdl"
)

func TestParseLibrary(t *testing.T) {
	src := `
# a library
proctype p1 clock 10
asictype a1 clock 50
memtype  m1 word 16 access 0.2
proc cpu p1 sizecon 4096 pincon 40
proc hw a1
mem ram m1 sizecon 2048
bus b width 16 ts 0.05 td 0.4
`
	lib, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Techs) != 3 || len(lib.Procs) != 2 || len(lib.Mems) != 1 || len(lib.Buses) != 1 {
		t.Fatalf("library shape: %+v", lib)
	}
	if lib.TechByName("a1").Class != synth.CustomHW {
		t.Error("asictype not custom")
	}
	if !lib.Procs[1].Custom {
		t.Error("processor of custom type not marked custom")
	}
	if lib.Procs[0].SizeCon != 4096 || lib.Procs[0].PinCon != 40 {
		t.Errorf("constraints: %+v", lib.Procs[0])
	}
	if lib.Buses[0].TD != 0.4 {
		t.Errorf("bus: %+v", lib.Buses[0])
	}
}

func TestParseLibraryErrors(t *testing.T) {
	bad := []string{
		"proctype p1 mhz 10",
		"memtype m word x access 1",
		"proc cpu",
		"proc cpu t1 weird 3",
		"bus b width 16",
		"nonsense 1 2",
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestStdLibraryMatchesFile(t *testing.T) {
	// The checked-in std.lib must agree with the built-in Std() on shape.
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "std.lib"))
	if err != nil {
		t.Fatal(err)
	}
	fileLib, err := Parse(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	std := Std()
	if len(fileLib.Procs) != len(std.Procs) || len(fileLib.Buses) != len(std.Buses) {
		t.Errorf("std.lib diverged from alloc.Std(): %d/%d procs, %d/%d buses",
			len(fileLib.Procs), len(std.Procs), len(fileLib.Buses), len(std.Buses))
	}
}

func TestApply(t *testing.T) {
	g := core.NewGraph("g")
	lib := Std()
	if err := lib.Apply(g); err != nil {
		t.Fatal(err)
	}
	if len(g.Procs) != 2 || len(g.Mems) != 1 || len(g.Buses) != 1 {
		t.Errorf("apply result: %+v", g.Stats())
	}
	// Double apply is rejected.
	if err := lib.Apply(g); err == nil {
		t.Error("second apply accepted")
	}
	// Undeclared type rejected.
	g2 := core.NewGraph("g2")
	bad := &Library{Procs: []*core.Processor{{Name: "x", TypeName: "ghost"}}}
	if err := bad.Apply(g2); err == nil {
		t.Error("undeclared type accepted")
	}
}

// buildFuzzy builds the fuzzy example's bare graph for the explorer.
func buildFuzzy(t *testing.T) *core.Graph {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "fuzzy.vhd"))
	if err != nil {
		t.Fatal(err)
	}
	df, err := vhdl.Parse(string(data))
	if err != nil {
		t.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	g, err := builder.Build(d, builder.Options{Profile: profile.Empty(), Techs: Std().Techs})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExploreRanksAllocations(t *testing.T) {
	g := buildFuzzy(t)
	bus := &core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4}
	cands := []Candidate{
		{
			Name:  "sw-only-tiny",
			Procs: []*core.Processor{{Name: "cpu", TypeName: "proc10", SizeCon: 64}},
			Buses: []*core.Bus{bus},
		},
		{
			Name: "cpu+asic",
			Procs: []*core.Processor{
				{Name: "cpu", TypeName: "proc10", SizeCon: 65536},
				{Name: "asic", TypeName: "asic50", Custom: true, SizeCon: 1e7},
			},
			Mems:  []*core.Memory{{Name: "ram", TypeName: "sram8", SizeCon: 65536}},
			Buses: []*core.Bus{bus},
		},
	}
	outs := Explore(context.Background(), g, cands, partition.Constraints{}, partition.DefaultWeights())
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	// Sorted by cost: the unconstrained two-component allocation must win
	// over the absurdly tiny single processor.
	if outs[0].Candidate.Name != "cpu+asic" {
		t.Errorf("ranking: %s first (cost %v), then %s (cost %v)",
			outs[0].Candidate.Name, outs[0].Cost, outs[1].Candidate.Name, outs[1].Cost)
	}
	for _, o := range outs {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Candidate.Name, o.Err)
		}
		if o.Evals == 0 {
			t.Errorf("%s: no evaluations recorded", o.Candidate.Name)
		}
	}
}

func TestExploreNoBus(t *testing.T) {
	g := buildFuzzy(t)
	outs := Explore(context.Background(), g, []Candidate{{Name: "nobus"}}, partition.Constraints{}, partition.DefaultWeights())
	if outs[0].Err == nil {
		t.Error("allocation without a bus accepted")
	}
	outs = ExploreParallel(context.Background(), g, []Candidate{{Name: "nobus"}}, partition.Constraints{}, partition.DefaultWeights(), partition.ParallelOptions{})
	if outs[0].Err == nil {
		t.Error("parallel explorer accepted an allocation without a bus")
	}
}

// TestExploreParallelMatchesRanking: the multi-start explorer must agree
// with the sequential one on the winning architecture and never score a
// candidate worse than the plain greedy+migration path (its portfolio
// contains that construction as leg 0).
func TestExploreParallelMatchesRanking(t *testing.T) {
	g := buildFuzzy(t)
	bus := &core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4}
	cands := []Candidate{
		{
			Name:  "sw-only-tiny",
			Procs: []*core.Processor{{Name: "cpu", TypeName: "proc10", SizeCon: 64}},
			Buses: []*core.Bus{bus},
		},
		{
			Name: "cpu+asic",
			Procs: []*core.Processor{
				{Name: "cpu", TypeName: "proc10", SizeCon: 65536},
				{Name: "asic", TypeName: "asic50", Custom: true, SizeCon: 1e7},
			},
			Mems:  []*core.Memory{{Name: "ram", TypeName: "sram8", SizeCon: 65536}},
			Buses: []*core.Bus{bus},
		},
	}
	seq := Explore(context.Background(), g, cands, partition.Constraints{}, partition.DefaultWeights())
	par := ExploreParallel(context.Background(), g, cands, partition.Constraints{}, partition.DefaultWeights(), partition.ParallelOptions{Workers: 4, Legs: 6})
	if len(par) != 2 {
		t.Fatalf("outcomes = %d", len(par))
	}
	if par[0].Candidate.Name != seq[0].Candidate.Name {
		t.Errorf("parallel winner %s != sequential winner %s", par[0].Candidate.Name, seq[0].Candidate.Name)
	}
	byName := map[string]Outcome{}
	for _, o := range seq {
		byName[o.Candidate.Name] = o
	}
	for _, o := range par {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Candidate.Name, o.Err)
			continue
		}
		if ref := byName[o.Candidate.Name]; o.Cost > ref.Cost+1e-9 {
			t.Errorf("%s: parallel cost %v worse than sequential %v", o.Candidate.Name, o.Cost, ref.Cost)
		}
	}
	// Determinism: a rerun reproduces every cost exactly.
	again := ExploreParallel(context.Background(), g, cands, partition.Constraints{}, partition.DefaultWeights(), partition.ParallelOptions{Workers: 2, Legs: 6})
	for i := range par {
		if par[i].Cost != again[i].Cost || par[i].Candidate.Name != again[i].Candidate.Name {
			t.Errorf("rerun diverged at %d: %s/%v vs %s/%v",
				i, par[i].Candidate.Name, par[i].Cost, again[i].Candidate.Name, again[i].Cost)
		}
	}
}

// TestExploreParallelCancellation: cancelling the sweep still returns one
// outcome per candidate — finished candidates keep their results, the
// interrupted one is partial, the unreached ones are skipped — and every
// searched candidate carries a non-nil SearchReport.
func TestExploreParallelCancellation(t *testing.T) {
	g := buildFuzzy(t)
	bus := &core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4}
	var cands []Candidate
	for _, name := range []string{"a", "b", "c", "d"} {
		cands = append(cands, Candidate{
			Name:  name,
			Procs: []*core.Processor{{Name: "cpu", TypeName: "proc10", SizeCon: 65536}},
			Buses: []*core.Bus{bus},
		})
	}

	// Pre-cancelled: everything is skipped, nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs := ExploreParallel(ctx, g, cands, partition.Constraints{}, partition.DefaultWeights(), partition.ParallelOptions{Legs: 2})
	if len(outs) != len(cands) {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(cands))
	}
	for _, o := range outs {
		if !o.Skipped || !o.Partial || o.Err == nil || !math.IsInf(o.Cost, 1) {
			t.Errorf("%s: pre-cancelled outcome = %+v, want skipped/partial/error/+Inf", o.Candidate.Name, o)
		}
	}

	// Deadline mid-sweep: the sweep is cut short but stays accounted for.
	// The deadline is poll-count based, not wall-clock — incremental move
	// costing made the sweep faster than any timer a test could portably
	// pick, and the engine only ever observes a deadline through Err polls.
	ctx2 := &expiringCtx{Context: context.Background(), after: 10}
	outs = ExploreParallel(ctx2, g, cands, partition.Constraints{}, partition.DefaultWeights(), partition.ParallelOptions{Legs: 2})
	if len(outs) != len(cands) {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(cands))
	}
	cut := 0
	for _, o := range outs {
		if o.Partial || o.Skipped {
			cut++
		}
		if o.Skipped {
			continue
		}
		if o.Err == nil && o.Report == nil {
			t.Errorf("%s: searched candidate has no report", o.Candidate.Name)
		}
	}
	if cut == 0 {
		t.Error("1ms deadline cut nothing short")
	}

	// The same sweep uncancelled runs clean (sanity for the same cands).
	outs = ExploreParallel(context.Background(), g, cands, partition.Constraints{}, partition.DefaultWeights(), partition.ParallelOptions{Legs: 2})
	for _, o := range outs {
		if o.Err != nil || o.Partial || o.Skipped {
			t.Errorf("%s: clean sweep outcome = %+v", o.Candidate.Name, o)
		}
	}
}

// expiringCtx is a context whose deadline "passes" after a fixed number of
// Err polls — a machine-speed-independent stand-in for a mid-sweep timeout
// (the search engines observe deadlines exclusively through Err).
type expiringCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *expiringCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.DeadlineExceeded
	}
	return nil
}

// TestExploreCancellationSequential mirrors the parallel test for the
// plain Explore loop.
func TestExploreCancellationSequential(t *testing.T) {
	g := buildFuzzy(t)
	bus := &core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4}
	cands := []Candidate{
		{Name: "a", Procs: []*core.Processor{{Name: "cpu", TypeName: "proc10"}}, Buses: []*core.Bus{bus}},
		{Name: "b", Procs: []*core.Processor{{Name: "cpu", TypeName: "proc10"}}, Buses: []*core.Bus{bus}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs := Explore(ctx, g, cands, partition.Constraints{}, partition.DefaultWeights())
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(outs))
	}
	for _, o := range outs {
		if !o.Skipped || o.Err == nil {
			t.Errorf("%s: outcome = %+v, want skipped with error", o.Candidate.Name, o)
		}
	}
}
