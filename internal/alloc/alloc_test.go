package alloc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specsyn/internal/builder"
	"specsyn/internal/core"
	"specsyn/internal/partition"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/synth"
	"specsyn/internal/vhdl"
)

func TestParseLibrary(t *testing.T) {
	src := `
# a library
proctype p1 clock 10
asictype a1 clock 50
memtype  m1 word 16 access 0.2
proc cpu p1 sizecon 4096 pincon 40
proc hw a1
mem ram m1 sizecon 2048
bus b width 16 ts 0.05 td 0.4
`
	lib, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Techs) != 3 || len(lib.Procs) != 2 || len(lib.Mems) != 1 || len(lib.Buses) != 1 {
		t.Fatalf("library shape: %+v", lib)
	}
	if lib.TechByName("a1").Class != synth.CustomHW {
		t.Error("asictype not custom")
	}
	if !lib.Procs[1].Custom {
		t.Error("processor of custom type not marked custom")
	}
	if lib.Procs[0].SizeCon != 4096 || lib.Procs[0].PinCon != 40 {
		t.Errorf("constraints: %+v", lib.Procs[0])
	}
	if lib.Buses[0].TD != 0.4 {
		t.Errorf("bus: %+v", lib.Buses[0])
	}
}

func TestParseLibraryErrors(t *testing.T) {
	bad := []string{
		"proctype p1 mhz 10",
		"memtype m word x access 1",
		"proc cpu",
		"proc cpu t1 weird 3",
		"bus b width 16",
		"nonsense 1 2",
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestStdLibraryMatchesFile(t *testing.T) {
	// The checked-in std.lib must agree with the built-in Std() on shape.
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "std.lib"))
	if err != nil {
		t.Fatal(err)
	}
	fileLib, err := Parse(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	std := Std()
	if len(fileLib.Procs) != len(std.Procs) || len(fileLib.Buses) != len(std.Buses) {
		t.Errorf("std.lib diverged from alloc.Std(): %d/%d procs, %d/%d buses",
			len(fileLib.Procs), len(std.Procs), len(fileLib.Buses), len(std.Buses))
	}
}

func TestApply(t *testing.T) {
	g := core.NewGraph("g")
	lib := Std()
	if err := lib.Apply(g); err != nil {
		t.Fatal(err)
	}
	if len(g.Procs) != 2 || len(g.Mems) != 1 || len(g.Buses) != 1 {
		t.Errorf("apply result: %+v", g.Stats())
	}
	// Double apply is rejected.
	if err := lib.Apply(g); err == nil {
		t.Error("second apply accepted")
	}
	// Undeclared type rejected.
	g2 := core.NewGraph("g2")
	bad := &Library{Procs: []*core.Processor{{Name: "x", TypeName: "ghost"}}}
	if err := bad.Apply(g2); err == nil {
		t.Error("undeclared type accepted")
	}
}

// buildFuzzy builds the fuzzy example's bare graph for the explorer.
func buildFuzzy(t *testing.T) *core.Graph {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "fuzzy.vhd"))
	if err != nil {
		t.Fatal(err)
	}
	df, err := vhdl.Parse(string(data))
	if err != nil {
		t.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	g, err := builder.Build(d, builder.Options{Profile: profile.Empty(), Techs: Std().Techs})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExploreRanksAllocations(t *testing.T) {
	g := buildFuzzy(t)
	bus := &core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4}
	cands := []Candidate{
		{
			Name:  "sw-only-tiny",
			Procs: []*core.Processor{{Name: "cpu", TypeName: "proc10", SizeCon: 64}},
			Buses: []*core.Bus{bus},
		},
		{
			Name: "cpu+asic",
			Procs: []*core.Processor{
				{Name: "cpu", TypeName: "proc10", SizeCon: 65536},
				{Name: "asic", TypeName: "asic50", Custom: true, SizeCon: 1e7},
			},
			Mems:  []*core.Memory{{Name: "ram", TypeName: "sram8", SizeCon: 65536}},
			Buses: []*core.Bus{bus},
		},
	}
	outs := Explore(g, cands, partition.Constraints{}, partition.DefaultWeights())
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	// Sorted by cost: the unconstrained two-component allocation must win
	// over the absurdly tiny single processor.
	if outs[0].Candidate.Name != "cpu+asic" {
		t.Errorf("ranking: %s first (cost %v), then %s (cost %v)",
			outs[0].Candidate.Name, outs[0].Cost, outs[1].Candidate.Name, outs[1].Cost)
	}
	for _, o := range outs {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Candidate.Name, o.Err)
		}
		if o.Evals == 0 {
			t.Errorf("%s: no evaluations recorded", o.Candidate.Name)
		}
	}
}

func TestExploreNoBus(t *testing.T) {
	g := buildFuzzy(t)
	outs := Explore(g, []Candidate{{Name: "nobus"}}, partition.Constraints{}, partition.DefaultWeights())
	if outs[0].Err == nil {
		t.Error("allocation without a bus accepted")
	}
	outs = ExploreParallel(g, []Candidate{{Name: "nobus"}}, partition.Constraints{}, partition.DefaultWeights(), partition.ParallelOptions{})
	if outs[0].Err == nil {
		t.Error("parallel explorer accepted an allocation without a bus")
	}
}

// TestExploreParallelMatchesRanking: the multi-start explorer must agree
// with the sequential one on the winning architecture and never score a
// candidate worse than the plain greedy+migration path (its portfolio
// contains that construction as leg 0).
func TestExploreParallelMatchesRanking(t *testing.T) {
	g := buildFuzzy(t)
	bus := &core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4}
	cands := []Candidate{
		{
			Name:  "sw-only-tiny",
			Procs: []*core.Processor{{Name: "cpu", TypeName: "proc10", SizeCon: 64}},
			Buses: []*core.Bus{bus},
		},
		{
			Name: "cpu+asic",
			Procs: []*core.Processor{
				{Name: "cpu", TypeName: "proc10", SizeCon: 65536},
				{Name: "asic", TypeName: "asic50", Custom: true, SizeCon: 1e7},
			},
			Mems:  []*core.Memory{{Name: "ram", TypeName: "sram8", SizeCon: 65536}},
			Buses: []*core.Bus{bus},
		},
	}
	seq := Explore(g, cands, partition.Constraints{}, partition.DefaultWeights())
	par := ExploreParallel(g, cands, partition.Constraints{}, partition.DefaultWeights(), partition.ParallelOptions{Workers: 4, Legs: 6})
	if len(par) != 2 {
		t.Fatalf("outcomes = %d", len(par))
	}
	if par[0].Candidate.Name != seq[0].Candidate.Name {
		t.Errorf("parallel winner %s != sequential winner %s", par[0].Candidate.Name, seq[0].Candidate.Name)
	}
	byName := map[string]Outcome{}
	for _, o := range seq {
		byName[o.Candidate.Name] = o
	}
	for _, o := range par {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Candidate.Name, o.Err)
			continue
		}
		if ref := byName[o.Candidate.Name]; o.Cost > ref.Cost+1e-9 {
			t.Errorf("%s: parallel cost %v worse than sequential %v", o.Candidate.Name, o.Cost, ref.Cost)
		}
	}
	// Determinism: a rerun reproduces every cost exactly.
	again := ExploreParallel(g, cands, partition.Constraints{}, partition.DefaultWeights(), partition.ParallelOptions{Workers: 2, Legs: 6})
	for i := range par {
		if par[i].Cost != again[i].Cost || par[i].Candidate.Name != again[i].Candidate.Name {
			t.Errorf("rerun diverged at %d: %s/%v vs %s/%v",
				i, par[i].Candidate.Name, par[i].Cost, again[i].Candidate.Name, again[i].Cost)
		}
	}
}
