package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specsyn/internal/vhdl"
)

var testdata = filepath.Join("..", "..", "testdata")

func readExample(t testing.TB, name string) (vhdlSrc, prob string) {
	t.Helper()
	v, err := os.ReadFile(filepath.Join(testdata, name+".vhd"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := os.ReadFile(filepath.Join(testdata, name+".prob"))
	if err != nil {
		t.Fatal(err)
	}
	return string(v), string(p)
}

// postJSON sends one request and decodes the response into out (unless
// out is nil), returning the status code.
func postJSON(t testing.TB, client *http.Client, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, data)
		}
	}
	return resp.StatusCode
}

func buildDesign(t testing.TB, ts *httptest.Server, id, name string) {
	t.Helper()
	src, prob := readExample(t, name)
	var resp BuildResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/designs/"+id+"/build",
		BuildRequest{VHDL: src, Profile: prob}, &resp); code != http.StatusOK {
		t.Fatalf("build %s: status %d", id, code)
	}
	if resp.BV == 0 || resp.Procs == 0 || resp.Buses == 0 {
		t.Fatalf("build %s: empty response %+v", id, resp)
	}
}

// insertNull returns src with a null statement prepended to the body of
// its first process — the canonical one-behavior edit.
func insertNull(t testing.TB, src string) string {
	t.Helper()
	df := vhdl.MustParse(src)
	ps := df.Architectures[0].Processes[0]
	ps.Body = append([]vhdl.Stmt{&vhdl.NullStmt{}}, ps.Body...)
	return vhdl.Format(df)
}

// TestServerLifecycle walks one session through every endpoint: build,
// estimate, search, reload (empty and incremental), explore, list, stats,
// delete.
func TestServerLifecycle(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	c := ts.Client()
	buildDesign(t, ts, "fuzzy", "fuzzy")

	var est EstimateResponse
	if code := postJSON(t, c, ts.URL+"/v1/designs/fuzzy/estimate", EstimateRequest{}, &est); code != http.StatusOK {
		t.Fatalf("estimate: status %d", code)
	}
	if len(est.Report.Comps) == 0 || len(est.Report.Processes) == 0 {
		t.Fatalf("estimate: empty report %+v", est)
	}

	var moved EstimateResponse
	if code := postJSON(t, c, ts.URL+"/v1/designs/fuzzy/estimate",
		EstimateRequest{Assign: map[string]string{"evaluaterule": "asic"}}, &moved); code != http.StatusOK {
		t.Fatalf("estimate with assign: status %d", code)
	}
	if code := postJSON(t, c, ts.URL+"/v1/designs/fuzzy/estimate",
		EstimateRequest{Assign: map[string]string{"nonesuch": "asic"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("estimate with bad node: status %d, want 400", code)
	}

	var search SearchResponse
	if code := postJSON(t, c, ts.URL+"/v1/designs/fuzzy/search",
		SearchRequest{Algo: "greedy", Seed: 1}, &search); code != http.StatusOK {
		t.Fatalf("search: status %d", code)
	}
	if search.Evals == 0 || len(search.Assignment) == 0 {
		t.Fatalf("search: empty result %+v", search)
	}

	// Determinism through the API: same seed, same cost.
	var again SearchResponse
	postJSON(t, c, ts.URL+"/v1/designs/fuzzy/search", SearchRequest{Algo: "greedy", Seed: 1}, &again)
	if again.Cost != search.Cost {
		t.Errorf("same-seed search diverged: %v vs %v", again.Cost, search.Cost)
	}

	src, _ := readExample(t, "fuzzy")
	var rel ReloadResponse
	if code := postJSON(t, c, ts.URL+"/v1/designs/fuzzy/reload",
		ReloadRequest{VHDL: "-- comment\n" + src}, &rel); code != http.StatusOK {
		t.Fatalf("reload: status %d", code)
	}
	if !rel.Empty {
		t.Errorf("comment edit reported non-empty delta: %+v", rel)
	}
	if code := postJSON(t, c, ts.URL+"/v1/designs/fuzzy/reload",
		ReloadRequest{VHDL: insertNull(t, src)}, &rel); code != http.StatusOK {
		t.Fatalf("incremental reload: status %d", code)
	}
	if rel.Empty || rel.Full || len(rel.Changed) == 0 {
		t.Errorf("one-behavior edit: delta %+v", rel)
	}

	var exp ExploreResponse
	if code := postJSON(t, c, ts.URL+"/v1/designs/fuzzy/explore",
		ExploreRequest{Legs: 4, MaxEvals: 5000, Seed: 7}, &exp); code != http.StatusOK {
		t.Fatalf("explore: status %d", code)
	}
	if exp.LegsPlanned != 4 || exp.Evals == 0 {
		t.Fatalf("explore: %+v", exp)
	}

	resp, err := c.Get(ts.URL + "/v1/designs")
	if err != nil {
		t.Fatal(err)
	}
	var infos []SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].ID != "fuzzy" {
		t.Fatalf("list: %+v", infos)
	}

	resp, err = c.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Sessions != 1 || stats.Evals == 0 || stats.Failures != 0 || stats.Panics != 0 {
		t.Fatalf("stats: %+v", stats)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/designs/fuzzy", nil)
	dresp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if code := postJSON(t, c, ts.URL+"/v1/designs/fuzzy/estimate", EstimateRequest{}, nil); code != http.StatusNotFound {
		t.Fatalf("estimate after delete: status %d, want 404", code)
	}
}

// TestServerAdaptiveExplore drives the adaptive portfolio through the
// API: the response carries rounds and a monotone anytime curve, repeat
// requests at the same seed are identical, and the orchestrator counters
// reach /v1/stats.
func TestServerAdaptiveExplore(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	c := ts.Client()
	buildDesign(t, ts, "fuzzy", "fuzzy")

	req := ExploreRequest{Algo: "portfolio", Legs: 5, Seed: 7, MaxEvals: 4000,
		RoundEvals: 128, MaxRounds: 4, KillMargin: 0.05, Share: true}
	var exp ExploreResponse
	if code := postJSON(t, c, ts.URL+"/v1/designs/fuzzy/explore", req, &exp); code != http.StatusOK {
		t.Fatalf("adaptive explore: status %d", code)
	}
	if exp.Rounds == 0 || len(exp.Curve) != exp.Rounds {
		t.Fatalf("adaptive explore: rounds %d, curve %d points", exp.Rounds, len(exp.Curve))
	}
	for i := 1; i < len(exp.Curve); i++ {
		if exp.Curve[i].BestCost > exp.Curve[i-1].BestCost {
			t.Errorf("anytime curve not monotone at round %d", i)
		}
	}
	if len(exp.Assignment) == 0 {
		t.Fatal("adaptive explore: empty assignment")
	}

	var again ExploreResponse
	postJSON(t, c, ts.URL+"/v1/designs/fuzzy/explore", req, &again)
	if again.Cost != exp.Cost || again.Rounds != exp.Rounds ||
		again.LegsKilled != exp.LegsKilled || again.LegsRespawned != exp.LegsRespawned {
		t.Errorf("same-seed adaptive explore diverged: %+v vs %+v", again, exp)
	}

	resp, err := c.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Rounds != int64(exp.Rounds+again.Rounds) {
		t.Errorf("stats rounds %d, want %d", stats.Rounds, exp.Rounds+again.Rounds)
	}
	if stats.LegsKilled != int64(exp.LegsKilled+again.LegsKilled) ||
		stats.LegsRespawned != int64(exp.LegsRespawned+again.LegsRespawned) {
		t.Errorf("stats kill/respawn counters drifted: %+v", stats)
	}
}

// TestServerBadInput checks the input-validation edges: broken VHDL, bad
// JSON, missing sessions, bad reloads that must not corrupt the session.
func TestServerBadInput(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	c := ts.Client()

	if code := postJSON(t, c, ts.URL+"/v1/designs/x/build",
		BuildRequest{VHDL: "entity broken is"}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("broken build: status %d, want 422", code)
	}
	if code := postJSON(t, c, ts.URL+"/v1/designs/x/estimate", EstimateRequest{}, nil); code != http.StatusNotFound {
		t.Fatalf("estimate without session: status %d, want 404", code)
	}
	resp, err := c.Post(ts.URL+"/v1/designs/x/build", "application/json", strings.NewReader("{broken json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d, want 400", resp.StatusCode)
	}

	// A failed reload must leave the session serving its previous graph.
	buildDesign(t, ts, "ans", "ans")
	if code := postJSON(t, c, ts.URL+"/v1/designs/ans/reload",
		ReloadRequest{VHDL: "entity broken is"}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("broken reload: status %d, want 422", code)
	}
	if code := postJSON(t, c, ts.URL+"/v1/designs/ans/estimate", EstimateRequest{}, nil); code != http.StatusOK {
		t.Fatalf("estimate after failed reload: status %d", code)
	}

	var stats Stats
	resp, err = c.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats.Failures != 0 {
		t.Errorf("client errors were counted as failures: %+v", stats)
	}
	if stats.ClientErrs == 0 {
		t.Errorf("no client errors recorded: %+v", stats)
	}
}

// TestServerSearchBudgetAndDeadline checks that request budgets flow into
// the ctx-first search APIs: a tiny eval budget yields a partial result,
// and a server-side MaxEvals cap binds even when the request asks for more.
func TestServerSearchBudgetAndDeadline(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxEvals: 50}))
	defer ts.Close()
	c := ts.Client()
	buildDesign(t, ts, "fuzzy", "fuzzy")

	var res SearchResponse
	if code := postJSON(t, c, ts.URL+"/v1/designs/fuzzy/search",
		SearchRequest{Algo: "random", Iters: 100000, MaxEvals: 1000000}, &res); code != http.StatusOK {
		t.Fatalf("budgeted search: status %d", code)
	}
	// The server cap (50) must bind despite the request asking for 1e6.
	// The budget runner may spend one grace eval past the cap.
	if res.Evals > 51 {
		t.Fatalf("server MaxEvals cap did not bind: %d evals", res.Evals)
	}
	if !res.Partial {
		t.Errorf("capped search not marked partial: %+v", res)
	}
}

// TestServerPanicContainment drives a panicking handler through the
// containment middleware: 500 out, panic counted, daemon still serving.
func TestServerPanicContainment(t *testing.T) {
	s := New(Config{})
	s.mux.HandleFunc("GET /boom", s.contained(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic: status %d, want 500", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("kaboom")) {
		t.Errorf("panic response does not name the panic: %s", body)
	}
	if st := s.Stats(); st.Panics != 1 || st.Failures != 1 {
		t.Errorf("panic not counted: %+v", st)
	}

	// The daemon is still alive and serving.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: status %d", hresp.StatusCode)
	}
}

// TestServerHealthz pins the liveness endpoint.
func TestServerHealthz(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

// TestServerConcurrentMixedTraffic hammers one server with concurrent
// builds, estimates, searches and reloads across two designs — the
// daemon-shaped smoke test. Run under -race this doubles as the session
// locking proof at the HTTP layer.
func TestServerConcurrentMixedTraffic(t *testing.T) {
	ts := httptest.NewServer(New(Config{SessionSlots: 4, SessionQueue: 64}))
	defer ts.Close()
	c := ts.Client()
	buildDesign(t, ts, "fuzzy", "fuzzy")
	buildDesign(t, ts, "vol", "vol")
	fuzzySrc, _ := readExample(t, "fuzzy")
	volSrc, _ := readExample(t, "vol")
	edited := map[string]string{"fuzzy": insertNull(t, fuzzySrc), "vol": insertNull(t, volSrc)}
	orig := map[string]string{"fuzzy": fuzzySrc, "vol": volSrc}

	const clients = 6
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			ids := []string{"fuzzy", "vol"}
			id := ids[i%2]
			for j := 0; j < 6; j++ {
				var code int
				switch j % 3 {
				case 0:
					code = postJSON(t, c, ts.URL+"/v1/designs/"+id+"/estimate", EstimateRequest{}, nil)
				case 1:
					code = postJSON(t, c, ts.URL+"/v1/designs/"+id+"/search",
						SearchRequest{Algo: "greedy", Seed: int64(i*10 + j)}, nil)
				case 2:
					src := edited[id]
					if j%2 == 0 {
						src = orig[id]
					}
					code = postJSON(t, c, ts.URL+"/v1/designs/"+id+"/reload", ReloadRequest{VHDL: src}, nil)
				}
				if code != http.StatusOK {
					errc <- fmt.Errorf("client %d op %d on %s: status %d", i, j, id, code)
					return
				}
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
	if st := s0(ts, t); st.Failures != 0 || st.Panics != 0 || st.Rejects != 0 {
		t.Errorf("mixed traffic left failures: %+v", st)
	}
}

func s0(ts *httptest.Server, t *testing.T) Stats {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}
