package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"specsyn/internal/specsyn"
)

// errBusy is returned when a session's queue (running + waiting requests)
// is at capacity; the handler maps it to 503 so clients can back off.
var errBusy = errors.New("serve: session queue full")

// session is one cached design: a built specsyn.Env behind the daemon's
// concurrency discipline.
//
// The locking contract mirrors Env.Reload's copy-on-write guarantee:
// Reload never mutates the current graph, it installs a new one. So
// readers (estimate, search, explore) take the read lock only long enough
// to shallow-copy the Env — pinning the graph, design and deps cache they
// will use — and run the expensive work outside any lock. The single
// writer (reload) holds the write lock for the whole incremental rebuild,
// serializing source-diff chains so every reload diffs against the source
// that actually produced the current graph.
type session struct {
	id string

	mu  sync.RWMutex // guards env's fields; see contract above
	env *specsyn.Env

	created time.Time

	// slots caps the requests concurrently *running* against this
	// session; maxQueue additionally bounds the ones *waiting* for a
	// slot. pending counts both, so admission is one atomic add.
	slots    chan struct{}
	maxQueue int
	pending  atomic.Int64

	// Durability bookkeeping (guarded by mu): seq is the latest journal
	// sequence applied to this session and ckptSeq the one its on-disk
	// checkpoint covers — their difference is the dirty reload count. The
	// auxiliary input texts ride along for checkpoint writes. flushMu
	// serializes checkpoint writers independently of mu, so a slow image
	// write never blocks readers or the reload writer, and an
	// eviction-triggered flush cannot interleave with a periodic one.
	seq, ckptSeq                uint64
	profile, library, overrides string
	flushMu                     sync.Mutex
}

// persist reads the session's durability cursor.
func (s *session) persist() (seq, ckptSeq uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq, s.ckptSeq
}

func newSession(id string, env *specsyn.Env, slots, queue int) *session {
	if slots < 1 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &session{
		id:       id,
		env:      env,
		created:  time.Now(),
		slots:    make(chan struct{}, slots),
		maxQueue: queue,
	}
}

// acquire admits one request: it fails fast with errBusy when the session
// already has a full complement of running and queued requests, otherwise
// waits for a slot or for the request's context.
func (s *session) acquire(ctx context.Context) error {
	if s.pending.Add(1) > int64(cap(s.slots)+s.maxQueue) {
		s.pending.Add(-1)
		return errBusy
	}
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.pending.Add(-1)
		return ctx.Err()
	}
}

func (s *session) release() {
	<-s.slots
	s.pending.Add(-1)
}

// snapshot pins the session's current state for a reader: a shallow Env
// copy shares the graph, design, library and deps-cache pointers, all of
// which reloads replace rather than mutate.
func (s *session) snapshot() specsyn.Env {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return *s.env
}

// withWrite runs fn as the session's single writer.
func (s *session) withWrite(fn func(env *specsyn.Env) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fn(s.env)
}

// cache is the LRU session store: most recently used at the front, evicted
// from the back once len exceeds max. Eviction only unlinks the session —
// requests already admitted keep their Env snapshot and finish normally;
// the memory goes when the last of them returns.
type cache struct {
	mu  sync.Mutex
	max int
	ll  *list.List               // of *session
	m   map[string]*list.Element // id → element
}

func newCache(max int) *cache {
	if max < 1 {
		max = 1
	}
	return &cache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the session and bumps it to most-recently-used.
func (c *cache) get(id string) *session {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.m[id]
	if el == nil {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*session)
}

// put installs (or replaces) a session and returns the sessions the LRU
// cap evicted to make room — the caller flushes their dirty state to the
// store before letting them go.
func (c *cache) put(s *session) (evicted []*session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.m[s.id]; el != nil {
		el.Value = s
		c.ll.MoveToFront(el)
		return nil
	}
	c.m[s.id] = c.ll.PushFront(s)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		old := oldest.Value.(*session)
		delete(c.m, old.id)
		evicted = append(evicted, old)
	}
	return evicted
}

func (c *cache) delete(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.m[id]
	if el == nil {
		return false
	}
	c.ll.Remove(el)
	delete(c.m, id)
	return true
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// sessions lists the cached sessions, most recently used first.
func (c *cache) sessions() []*session {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*session, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*session))
	}
	return out
}
