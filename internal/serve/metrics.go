package serve

import (
	"sync/atomic"
	"time"
)

// Metrics is the daemon's observability surface: monotonic counters over
// the server's whole life plus two point-in-time gauges. Every field is
// updated with atomics, so handlers touch it lock-free; Snapshot reads a
// consistent-enough view for dashboards (the counters are independent).
type Metrics struct {
	start time.Time

	requests  atomic.Int64 // requests accepted into a handler
	failures  atomic.Int64 // 5xx responses, panics included
	rejects   atomic.Int64 // load-shed responses (session queue full)
	clientErr atomic.Int64 // 4xx responses (bad input, unknown session)
	panics    atomic.Int64 // handler panics contained by the middleware
	evals     atomic.Int64 // cost evaluations spent by search/estimate work
	builds    atomic.Int64 // full builds + incremental reloads performed
	evictions atomic.Int64 // sessions dropped by the LRU cap
	queued    atomic.Int64 // gauge: requests waiting or running in a session

	rounds        atomic.Int64 // adaptive explore rounds scheduled
	legsKilled    atomic.Int64 // portfolio legs killed for lagging the incumbent
	legsRespawned atomic.Int64 // killed or crashed legs respawned with fresh seeds

	checkpoints  atomic.Int64 // compiled-image checkpoints written to the store
	restores     atomic.Int64 // sessions restored from a checkpoint (no front end)
	recovered    atomic.Int64 // sessions brought back by startup recovery
	recoveryFail atomic.Int64 // sessions that failed to restore or recover
	storeErrs    atomic.Int64 // store operations that failed (serving continued)
}

// Stats is one JSON-serializable snapshot of the metrics, served at
// /v1/stats and published through expvar by cmd/specsynd.
type Stats struct {
	UptimeSec   float64 `json:"uptime_sec"`
	Requests    int64   `json:"requests"`
	Failures    int64   `json:"failures"`
	Rejects     int64   `json:"rejects"`
	ClientErrs  int64   `json:"client_errors"`
	Panics      int64   `json:"panics"`
	Evals       int64   `json:"evals"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	Builds      int64   `json:"builds"`
	Evictions   int64   `json:"evictions"`
	QueueDepth  int64   `json:"queue_depth"`
	Sessions    int     `json:"sessions"`

	Rounds        int64 `json:"search_rounds"`
	LegsKilled    int64 `json:"legs_killed"`
	LegsRespawned int64 `json:"legs_respawned"`

	Checkpoints      int64 `json:"checkpoints"`
	Restores         int64 `json:"restores"`
	Recovered        int64 `json:"recovered"`
	RecoveryFailures int64 `json:"recovery_failures"`
	StoreErrors      int64 `json:"store_errors"`
}

func (m *Metrics) snapshot(sessions int) Stats {
	up := time.Since(m.start).Seconds()
	evals := m.evals.Load()
	var eps float64
	if up > 0 {
		eps = float64(evals) / up
	}
	return Stats{
		UptimeSec:   up,
		Requests:    m.requests.Load(),
		Failures:    m.failures.Load(),
		Rejects:     m.rejects.Load(),
		ClientErrs:  m.clientErr.Load(),
		Panics:      m.panics.Load(),
		Evals:       evals,
		EvalsPerSec: eps,
		Builds:      m.builds.Load(),
		Evictions:   m.evictions.Load(),
		QueueDepth:  m.queued.Load(),
		Sessions:    sessions,

		Rounds:        m.rounds.Load(),
		LegsKilled:    m.legsKilled.Load(),
		LegsRespawned: m.legsRespawned.Load(),

		Checkpoints:      m.checkpoints.Load(),
		Restores:         m.restores.Load(),
		Recovered:        m.recovered.Load(),
		RecoveryFailures: m.recoveryFail.Load(),
		StoreErrors:      m.storeErrs.Load(),
	}
}
