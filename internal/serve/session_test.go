package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"specsyn/internal/partition"
	"specsyn/internal/profile"
	"specsyn/internal/specsyn"
)

// loadEnv builds one example into a fresh Env, bypassing HTTP.
func loadEnv(t testing.TB, name string) *specsyn.Env {
	t.Helper()
	src, prob := readExample(t, name)
	env := specsyn.New()
	env.LoadVHDL(src)
	p, err := profile.Load(testdata + "/" + name + ".prob")
	if err != nil {
		t.Fatal(err)
	}
	_ = prob
	env.Prof = p
	if err := env.Build(); err != nil {
		t.Fatal(err)
	}
	return env
}

// TestSessionCacheEviction fills the LRU past its cap and checks the
// least-recently-used session goes first, the survivors keep serving, and
// the eviction is counted.
func TestSessionCacheEviction(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxSessions: 2}))
	defer ts.Close()
	c := ts.Client()

	buildDesign(t, ts, "a", "ans")
	buildDesign(t, ts, "b", "vol")
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if code := postJSON(t, c, ts.URL+"/v1/designs/a/estimate", EstimateRequest{}, nil); code != http.StatusOK {
		t.Fatalf("estimate a: %d", code)
	}
	buildDesign(t, ts, "c", "fuzzy")

	if code := postJSON(t, c, ts.URL+"/v1/designs/b/estimate", EstimateRequest{}, nil); code != http.StatusNotFound {
		t.Fatalf("evicted session b still resolves: status %d, want 404", code)
	}
	for _, id := range []string{"a", "c"} {
		if code := postJSON(t, c, ts.URL+"/v1/designs/"+id+"/estimate", EstimateRequest{}, nil); code != http.StatusOK {
			t.Fatalf("survivor %s: status %d", id, code)
		}
	}
	if st := s0(ts, t); st.Evictions != 1 || st.Sessions != 2 {
		t.Errorf("eviction accounting: %+v", st)
	}

	// Rebuilding an existing id replaces in place — no eviction.
	buildDesign(t, ts, "a", "ans")
	if st := s0(ts, t); st.Evictions != 1 || st.Sessions != 2 {
		t.Errorf("in-place rebuild evicted: %+v", st)
	}
}

// TestSessionQueueLimit pins the load-shedding contract: with one slot and
// a queue of one, a third simultaneous request is refused with 503 and
// counted as a reject, not a failure.
func TestSessionQueueLimit(t *testing.T) {
	s := New(Config{SessionSlots: 1, SessionQueue: 1, MaxConcurrent: 8})
	ts := httptest.NewServer(s)
	defer ts.Close()
	buildDesign(t, ts, "ans", "ans")

	sess := s.cache.get("ans")
	if sess == nil {
		t.Fatal("session missing")
	}
	// Occupy the one slot out-of-band, so one HTTP request can queue and
	// the next must be shed.
	if err := sess.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() {
		done <- postJSON(t, ts.Client(), ts.URL+"/v1/designs/ans/estimate", EstimateRequest{}, nil)
	}()
	// Wait until that request is actually parked in the queue.
	for i := 0; sess.pending.Load() < 2 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := sess.pending.Load(); got != 2 {
		t.Fatalf("queued request not pending: %d", got)
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/designs/ans/estimate", EstimateRequest{}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("over-queue request: status %d, want 503", code)
	}
	sess.release() // the parked request proceeds
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued request: status %d", code)
	}
	st := s.Stats()
	if st.Rejects != 1 || st.Failures != 0 {
		t.Errorf("shed accounting: %+v", st)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth gauge leaked: %+v", st)
	}
}

// TestSessionReloadRacesParallelSearch is the satellite concurrency test:
// one session, one underlying Env, a writer thrashing Reload while readers
// run PartitionSearchParallel — through the session's locking discipline,
// exactly as the daemon's handlers do it. Under -race any violation of the
// copy-on-write contract or the snapshot pattern fails loudly.
func TestSessionReloadRacesParallelSearch(t *testing.T) {
	env := loadEnv(t, "fuzzy")
	sess := newSession("fuzzy", env, 8, 64)
	src := env.Source
	edited := insertNull(t, src)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				snap := sess.snapshot()
				if _, err := snap.PartitionSearchParallel(context.Background(), "multi",
					partition.Constraints{}, partition.DefaultWeights(),
					int64(r*100+i), 0, 2000, partition.ParallelOptions{Legs: 4}); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			next := edited
			if i%2 == 1 {
				next = src
			}
			if err := sess.withWrite(func(env *specsyn.Env) error {
				_, err := env.Reload(next)
				return err
			}); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCacheLRUOrder pins the cache's bookkeeping without HTTP.
func TestCacheLRUOrder(t *testing.T) {
	c := newCache(2)
	mk := func(id string) *session { return newSession(id, specsyn.New(), 1, 0) }
	if ev := c.put(mk("x")); len(ev) != 0 {
		t.Fatalf("put x evicted %d", len(ev))
	}
	c.put(mk("y"))
	c.get("x") // x now MRU
	if ev := c.put(mk("z")); len(ev) != 1 || ev[0].id != "y" {
		t.Fatalf("put z evicted %v, want [y]", ev)
	}
	if c.get("y") != nil {
		t.Error("y survived, want evicted")
	}
	if c.get("x") == nil || c.get("z") == nil {
		t.Error("x/z missing")
	}
	ids := []string{}
	for _, s := range c.sessions() {
		ids = append(ids, s.id)
	}
	if len(ids) != 2 {
		t.Fatalf("sessions: %v", ids)
	}
	if !c.delete("x") || c.delete("x") {
		t.Error("delete x semantics")
	}
	if c.len() != 1 {
		t.Errorf("len %d", c.len())
	}
}
