// Package serve is SpecSyn-as-a-service: the HTTP/JSON layer that holds
// built specsyn.Env sessions in an LRU cache and serves estimation,
// partition-search and exploration requests for many designs at once —
// the paper's "build the SLIF once, estimate thousands of designs from
// it" thesis operationalized as a daemon.
//
// Concurrency model, in one paragraph: every design session is a built
// Env behind a single-writer/many-reader lock. Readers (estimate, search,
// explore) pin the session state with a shallow Env copy and run outside
// the lock — safe because Reload is copy-on-write and never mutates the
// graph a running search walks. The one writer (reload) holds the write
// lock across its incremental rebuild so source-diff chains stay coherent.
// Admission control is two-level: a global worker pool bounds the heavy
// work in flight across the whole process, and each session has its own
// slot count plus a bounded wait queue; a request beyond the queue is
// load-shed with 503 rather than buried. Every handler runs under a
// deadline (request-supplied, capped by the server) and an eval budget
// (request-supplied, capped by the server), and panics are contained per
// request — one poisoned design cannot take the daemon down.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"specsyn/internal/alloc"
	"specsyn/internal/builder"
	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/partition"
	"specsyn/internal/specsyn"
	"specsyn/internal/store"
)

// Config tunes the daemon; the zero value serves with sane defaults.
type Config struct {
	// MaxSessions caps the LRU session cache; 0 means 64.
	MaxSessions int
	// MaxConcurrent bounds heavy work (build, reload, estimate, search)
	// in flight across all sessions; 0 means GOMAXPROCS.
	MaxConcurrent int
	// SessionSlots is the number of requests that may run against one
	// session concurrently; 0 means 2.
	SessionSlots int
	// SessionQueue is the number of requests that may wait for a session
	// slot beyond the running ones; further requests get 503. 0 means 8;
	// negative means no waiting at all.
	SessionQueue int
	// DefaultTimeout is the per-request deadline when the request names
	// none; 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any request-supplied deadline; 0 means 2m.
	MaxTimeout time.Duration
	// MaxEvals caps any request-supplied cost-evaluation budget, and is
	// the budget for requests that name none. 0 means unlimited.
	MaxEvals int
	// Library is the component library for builds that do not ship one;
	// nil means alloc.Std().
	Library *alloc.Library
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Store, if non-nil, makes sessions durable: inputs are journaled on
	// build/reload/delete, compiled images are checkpointed, and Recover
	// replays the store on startup. nil serves from memory only.
	Store *store.Store
	// CheckpointEvery writes a session checkpoint once this many journal
	// records have accumulated past the last one (builds always
	// checkpoint); 0 means 8.
	CheckpointEvery int
	// RetryAfter is the backoff hint sent in the Retry-After header of
	// load-shed 503 responses; 0 means 1s.
	RetryAfter time.Duration
}

func (c Config) maxSessions() int {
	if c.MaxSessions > 0 {
		return c.MaxSessions
	}
	return 64
}

func (c Config) maxConcurrent() int {
	if c.MaxConcurrent > 0 {
		return c.MaxConcurrent
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) sessionSlots() int {
	if c.SessionSlots > 0 {
		return c.SessionSlots
	}
	return 2
}

func (c Config) sessionQueue() int {
	switch {
	case c.SessionQueue > 0:
		return c.SessionQueue
	case c.SessionQueue < 0:
		return 0
	}
	return 8
}

func (c Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout > 0 {
		return c.DefaultTimeout
	}
	return 30 * time.Second
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return 2 * time.Minute
}

func (c Config) library() *alloc.Library {
	if c.Library != nil {
		return c.Library
	}
	return alloc.Std()
}

func (c Config) checkpointEvery() int {
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return 8
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return time.Second
}

// Server is the exploration daemon. Create it with New and mount it as an
// http.Handler; it is safe for concurrent use.
type Server struct {
	cfg     Config
	cache   *cache
	work    chan struct{} // global heavy-work pool
	metrics Metrics
	mux     *http.ServeMux

	// ready is false only while Recover replays the store; draining is
	// set by BeginDrain. Either one 503s data-plane requests and /readyz,
	// while /healthz keeps answering — liveness and readiness are
	// different questions.
	ready    atomic.Bool
	draining atomic.Bool

	// restoreMu singleflights restore-on-miss so a burst of requests for
	// one evicted session decodes its checkpoint once.
	restoreMu sync.Mutex
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	s := &Server{
		cfg:   cfg,
		cache: newCache(cfg.maxSessions()),
		work:  make(chan struct{}, cfg.maxConcurrent()),
		mux:   http.NewServeMux(),
	}
	s.metrics.start = time.Now()
	s.ready.Store(true) // Recover, if used, flips it off for the replay

	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch {
		case !s.ready.Load():
			w.Header().Set("Retry-After", s.retryAfterSecs())
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "recovering")
		case s.draining.Load():
			w.Header().Set("Retry-After", s.retryAfterSecs())
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
		default:
			fmt.Fprintln(w, "ready")
		}
	})
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/designs", s.handleList)
	s.mux.HandleFunc("POST /v1/designs/{id}/build", s.contained(s.handleBuild))
	s.mux.HandleFunc("POST /v1/designs/{id}/reload", s.contained(s.handleReload))
	s.mux.HandleFunc("POST /v1/designs/{id}/estimate", s.contained(s.handleEstimate))
	s.mux.HandleFunc("POST /v1/designs/{id}/search", s.contained(s.handleSearch))
	s.mux.HandleFunc("POST /v1/designs/{id}/explore", s.contained(s.handleExplore))
	s.mux.HandleFunc("DELETE /v1/designs/{id}", s.handleDelete)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stats returns a snapshot of the daemon's counters, for /v1/stats and
// for expvar publication by the main package.
func (s *Server) Stats() Stats {
	return s.metrics.snapshot(s.cache.len())
}

// contained wraps a handler with request accounting and panic containment:
// a panicking request becomes a 500 with the failure counted, and the
// daemon keeps serving.
func (s *Server) contained(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Add(1)
		if !s.ready.Load() {
			s.writeError(w, http.StatusServiceUnavailable, errors.New("starting: session recovery in progress"))
			return
		}
		if s.draining.Load() {
			s.writeError(w, http.StatusServiceUnavailable, errors.New("draining: daemon is shutting down"))
			return
		}
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.panics.Add(1) // writeError counts the failure
				s.writeError(w, http.StatusInternalServerError,
					fmt.Errorf("panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack()))
			}
		}()
		h(w, r)
	}
}

// errorBody is every non-2xx response's JSON shape.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	switch {
	case status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests:
		s.metrics.rejects.Add(1)
		// Load-shed responses carry a backoff hint so clients retry
		// instead of hammering or giving up.
		w.Header().Set("Retry-After", s.retryAfterSecs())
	case status >= 500:
		s.metrics.failures.Add(1)
	case status >= 400:
		s.metrics.clientErr.Add(1)
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// retryAfterSecs renders the configured backoff as whole seconds (the
// header's delay-seconds form), never less than 1.
func (s *Server) retryAfterSecs() string {
	secs := int((s.cfg.retryAfter() + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing left to report
}

func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

// deadline derives the request context every heavy handler runs under:
// the request-supplied timeout (milliseconds), clamped to the server cap,
// defaulting to the server's standard deadline.
func (s *Server) deadline(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.cfg.defaultTimeout()
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if max := s.cfg.maxTimeout(); d > max {
		d = max
	}
	return context.WithTimeout(r.Context(), d)
}

// budget clamps a request-supplied eval budget to the server cap.
func (s *Server) budget(maxEvals int) int {
	cap := s.cfg.MaxEvals
	if cap <= 0 {
		return maxEvals
	}
	if maxEvals <= 0 || maxEvals > cap {
		return cap
	}
	return maxEvals
}

// acquireWork takes a global worker-pool slot, respecting the context.
func (s *Server) acquireWork(ctx context.Context) error {
	select {
	case s.work <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) releaseWork() { <-s.work }

// admit runs the two-level admission for one session-bound request and
// returns a release closure, or writes the refusal and returns false.
func (s *Server) admit(ctx context.Context, sess *session, w http.ResponseWriter) (func(), bool) {
	s.metrics.queued.Add(1)
	if err := sess.acquire(ctx); err != nil {
		s.metrics.queued.Add(-1)
		if errors.Is(err, errBusy) {
			s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("session %s: %w", sess.id, err))
		} else {
			s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("session %s: queue wait: %w", sess.id, err))
		}
		return nil, false
	}
	if err := s.acquireWork(ctx); err != nil {
		sess.release()
		s.metrics.queued.Add(-1)
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("worker pool wait: %w", err))
		return nil, false
	}
	return func() {
		s.releaseWork()
		sess.release()
		s.metrics.queued.Add(-1)
	}, true
}

// lookup fetches the session — from the cache, or restored from the
// durable store after an LRU eviction or restart — or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	if sess := s.cache.get(id); sess != nil {
		return sess, true
	}
	if s.cfg.Store != nil && s.cfg.Store.Has(id) {
		sess, err := s.restoreMiss(id)
		if err != nil {
			s.metrics.recoveryFail.Add(1)
			s.writeError(w, http.StatusInternalServerError,
				fmt.Errorf("session %q failed to restore from the store: %w", id, err))
			return nil, false
		}
		return sess, true
	}
	s.writeError(w, http.StatusNotFound, fmt.Errorf("no session %q (build it first)", id))
	return nil, false
}

// BuildRequest creates or replaces one design session. VHDL is required;
// profile, library and overrides are the same text formats the CLI loads
// from disk, and optional.
type BuildRequest struct {
	VHDL      string `json:"vhdl"`
	Profile   string `json:"profile,omitempty"`
	Library   string `json:"library,omitempty"`
	Overrides string `json:"overrides,omitempty"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
}

// BuildResponse summarizes a fresh build.
type BuildResponse struct {
	ID       string  `json:"id"`
	BV       int     `json:"behaviors_variables"`
	Channels int     `json:"channels"`
	Procs    int     `json:"processors"`
	Buses    int     `json:"buses"`
	BuildMs  float64 `json:"build_ms"`
	Evicted  int     `json:"evicted,omitempty"`
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req BuildRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.VHDL) == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("vhdl source is required"))
		return
	}
	ctx, cancel := s.deadline(r, req.TimeoutMs)
	defer cancel()
	if err := s.acquireWork(ctx); err != nil {
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("worker pool wait: %w", err))
		return
	}
	defer s.releaseWork()

	env, err := s.newEnv(req.VHDL, req.Profile, req.Library, req.Overrides)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := env.Build(); err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.metrics.builds.Add(1)

	sess := newSession(id, env, s.cfg.sessionSlots(), s.cfg.sessionQueue())
	sess.profile, sess.library, sess.overrides = req.Profile, req.Library, req.Overrides
	sess.seq = s.journalBuild(id, req)
	evicted := s.install(sess)
	// A fresh build is always checkpointed: restore-on-miss and crash
	// recovery then skip the front end entirely.
	s.checkpoint(sess)
	st := env.Graph.Stats()
	writeJSON(w, http.StatusOK, BuildResponse{
		ID: id, BV: st.BV, Channels: st.Channels,
		Procs: len(env.Graph.Procs), Buses: len(env.Graph.Buses),
		BuildMs: float64(env.BuildTime.Microseconds()) / 1000,
		Evicted: evicted,
	})
}

// ReloadRequest swaps an edited source into the session.
type ReloadRequest struct {
	VHDL      string `json:"vhdl"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
}

// ReloadResponse reports what the incremental rebuild did.
type ReloadResponse struct {
	ID         string   `json:"id"`
	Empty      bool     `json:"empty"`
	Full       bool     `json:"full"`
	Reason     string   `json:"reason,omitempty"`
	Changed    []string `json:"changed,omitempty"`
	Dependents []string `json:"dependents,omitempty"`
	BuildMs    float64  `json:"build_ms"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req ReloadRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.VHDL) == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("vhdl source is required"))
		return
	}
	ctx, cancel := s.deadline(r, req.TimeoutMs)
	defer cancel()
	release, ok := s.admit(ctx, sess, w)
	if !ok {
		return
	}
	defer release()

	var delta builder.Delta
	var buildTime time.Duration
	err := sess.withWrite(func(env *specsyn.Env) error {
		var err error
		delta, err = env.Reload(req.VHDL)
		buildTime = env.BuildTime
		if err == nil {
			// Journal inside the write lock: journal order is apply order,
			// so replay reproduces exactly this source chain. (withWrite
			// holds sess.mu, which also guards sess.seq.)
			if seq := s.journalReload(sess.id, req.VHDL); seq > 0 {
				sess.seq = seq
			}
		}
		return err
	})
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.metrics.builds.Add(1)
	s.maybeCheckpoint(sess)
	writeJSON(w, http.StatusOK, ReloadResponse{
		ID: sess.id, Empty: delta.Empty(), Full: delta.Full, Reason: delta.Reason,
		Changed: delta.Changed, Dependents: delta.Dependents,
		BuildMs: float64(buildTime.Microseconds()) / 1000,
	})
}

// EstimateRequest asks for the full §3 metric report. Assign moves the
// named nodes onto the named components on top of the all-software default
// partition before estimating.
type EstimateRequest struct {
	Assign    map[string]string `json:"assign,omitempty"`
	TimeoutMs int               `json:"timeout_ms,omitempty"`
}

// EstimateResponse carries the report plus the estimation latency — the
// paper's T-est, measured per request.
type EstimateResponse struct {
	ID         string           `json:"id"`
	Report     *estimate.Report `json:"report"`
	EstimateMs float64          `json:"estimate_ms"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req EstimateRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.deadline(r, req.TimeoutMs)
	defer cancel()
	release, ok := s.admit(ctx, sess, w)
	if !ok {
		return
	}
	defer release()

	env := sess.snapshot()
	pt, err := env.DefaultPartition()
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	for node, comp := range req.Assign {
		n := env.Graph.NodeByName(node)
		if n == nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("assign: no node %q", node))
			return
		}
		var c core.Component
		if p := env.Graph.ProcByName(comp); p != nil {
			c = p
		} else if m := env.Graph.MemByName(comp); m != nil {
			c = m
		}
		if c == nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("assign: no component %q", comp))
			return
		}
		if err := pt.Assign(n, c); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("assign %s→%s: %w", node, comp, err))
			return
		}
	}
	rep, dur, err := env.Estimate(pt, estimate.Options{})
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.metrics.evals.Add(1)
	writeJSON(w, http.StatusOK, EstimateResponse{
		ID: sess.id, Report: rep,
		EstimateMs: float64(dur.Microseconds()) / 1000,
	})
}

// SearchRequest runs one partition-search algorithm on the session.
type SearchRequest struct {
	Algo      string `json:"algo"`           // random, greedy, cluster, gm, anneal, exhaustive
	Seed      int64  `json:"seed,omitempty"` // 0 is a valid, deterministic seed
	Iters     int    `json:"iters,omitempty"`
	MaxEvals  int    `json:"max_evals,omitempty"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
}

// SearchResponse reports the best partition found.
type SearchResponse struct {
	ID         string            `json:"id"`
	Algo       string            `json:"algo"`
	Cost       float64           `json:"cost"`
	Evals      int               `json:"evals"`
	Partial    bool              `json:"partial"`
	Assignment map[string]string `json:"assignment"`
	SearchMs   float64           `json:"search_ms"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req SearchRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Algo == "" {
		req.Algo = "greedy"
	}
	ctx, cancel := s.deadline(r, req.TimeoutMs)
	defer cancel()
	release, ok := s.admit(ctx, sess, w)
	if !ok {
		return
	}
	defer release()

	env := sess.snapshot()
	start := time.Now()
	res, err := env.PartitionSearch(ctx, req.Algo, partition.Constraints{},
		partition.DefaultWeights(), req.Seed, req.Iters, s.budget(req.MaxEvals))
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.metrics.evals.Add(int64(res.Evals))
	if res.Best == nil {
		s.writeError(w, http.StatusUnprocessableEntity,
			errors.New("search stopped before evaluating any partition (deadline or budget too tight)"))
		return
	}
	writeJSON(w, http.StatusOK, SearchResponse{
		ID: sess.id, Algo: req.Algo, Cost: res.Cost, Evals: res.Evals,
		Partial: res.Partial, Assignment: assignment(&env, res.Best),
		SearchMs: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// ExploreRequest runs the parallel multi-start engine on the session.
type ExploreRequest struct {
	Algo      string `json:"algo,omitempty"` // multi (default), random or portfolio
	Seed      int64  `json:"seed,omitempty"`
	Legs      int    `json:"legs,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	Iters     int    `json:"iters,omitempty"`
	MaxEvals  int    `json:"max_evals,omitempty"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`

	// Adaptive orchestrator knobs; Adaptive (or Share, which implies it)
	// switches the engine to round-based scheduling.
	Adaptive   bool    `json:"adaptive,omitempty"`
	Share      bool    `json:"share,omitempty"`
	RoundEvals int     `json:"round_evals,omitempty"`
	MaxRounds  int     `json:"max_rounds,omitempty"`
	KillMargin float64 `json:"kill_margin,omitempty"`
}

// ExploreResponse reports the merged portfolio result.
type ExploreResponse struct {
	ID            string                 `json:"id"`
	Algo          string                 `json:"algo"`
	Cost          float64                `json:"cost"`
	Evals         int                    `json:"evals"`
	Partial       bool                   `json:"partial"`
	BestLeg       int                    `json:"best_leg"`
	LegsPlanned   int                    `json:"legs_planned"`
	LegsCompleted int                    `json:"legs_completed"`
	Panics        int                    `json:"panics_contained"`
	Rounds        int                    `json:"rounds,omitempty"`
	LegsKilled    int                    `json:"legs_killed,omitempty"`
	LegsRespawned int                    `json:"legs_respawned,omitempty"`
	Curve         []partition.CurvePoint `json:"curve,omitempty"`
	Assignment    map[string]string      `json:"assignment"`
	SearchMs      float64                `json:"search_ms"`
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req ExploreRequest
	if err := readJSON(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Algo == "" {
		req.Algo = "multi"
	}
	ctx, cancel := s.deadline(r, req.TimeoutMs)
	defer cancel()
	release, ok := s.admit(ctx, sess, w)
	if !ok {
		return
	}
	defer release()

	env := sess.snapshot()
	start := time.Now()
	res, err := env.PartitionSearchParallel(ctx, req.Algo, partition.Constraints{},
		partition.DefaultWeights(), req.Seed, req.Iters, s.budget(req.MaxEvals),
		partition.ParallelOptions{
			Workers: req.Workers, Legs: req.Legs,
			Adaptive: req.Adaptive, Share: req.Share,
			RoundEvals: req.RoundEvals, MaxRounds: req.MaxRounds, KillMargin: req.KillMargin,
		})
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.metrics.evals.Add(int64(res.Report.Evals))
	s.metrics.rounds.Add(int64(res.Report.Rounds))
	s.metrics.legsKilled.Add(int64(res.Report.LegsKilled))
	s.metrics.legsRespawned.Add(int64(res.Report.LegsRespawned))
	if res.Best == nil {
		s.writeError(w, http.StatusUnprocessableEntity,
			errors.New("explore stopped before evaluating any partition (deadline or budget too tight)"))
		return
	}
	writeJSON(w, http.StatusOK, ExploreResponse{
		ID: sess.id, Algo: req.Algo, Cost: res.Cost, Evals: res.Report.Evals,
		Partial: res.Report.Partial, BestLeg: res.BestLeg,
		LegsPlanned: res.Report.LegsPlanned, LegsCompleted: res.Report.LegsCompleted,
		Panics:        len(res.Report.Panics),
		Rounds:        res.Report.Rounds,
		LegsKilled:    res.Report.LegsKilled,
		LegsRespawned: res.Report.LegsRespawned,
		Curve:         res.Report.Curve,
		Assignment:    assignment(&env, res.Best),
		SearchMs:      float64(time.Since(start).Microseconds()) / 1000,
	})
}

// assignment flattens a partition to node-name → component-name, the JSON
// form of a design decision.
func assignment(env *specsyn.Env, pt *core.Partition) map[string]string {
	out := make(map[string]string, len(env.Graph.Nodes))
	for _, n := range env.Graph.Nodes {
		if c := pt.BvComp(n); c != nil {
			out[n.Name] = c.CompName()
		}
	}
	return out
}

// SessionInfo is one row of the session listing.
type SessionInfo struct {
	ID         string    `json:"id"`
	BV         int       `json:"behaviors_variables"`
	Channels   int       `json:"channels"`
	Created    time.Time `json:"created"`
	QueueDepth int64     `json:"queue_depth"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	sessions := s.cache.sessions()
	out := make([]SessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		env := sess.snapshot()
		st := env.Graph.Stats()
		out = append(out, SessionInfo{
			ID: sess.id, BV: st.BV, Channels: st.Channels,
			Created: sess.created, QueueDepth: sess.pending.Load(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	id := r.PathValue("id")
	inCache := s.cache.delete(id)
	inStore := s.cfg.Store != nil && s.cfg.Store.Has(id)
	if !inCache && !inStore {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
		return
	}
	if inStore {
		s.journalDelete(id)
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
