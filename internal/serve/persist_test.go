package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"specsyn/internal/faultinject"
	"specsyn/internal/store"
)

// openStore opens the durable store at dir and closes it with the test.
func openStore(t *testing.T, dir string, fsys faultinject.FS) *store.Store {
	t.Helper()
	st, _, err := store.Open(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func estimateJSON(t *testing.T, ts *httptest.Server, id string) *EstimateResponse {
	t.Helper()
	var est EstimateResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/designs/"+id+"/estimate",
		EstimateRequest{}, &est); code != http.StatusOK {
		t.Fatalf("estimate %s: status %d", id, code)
	}
	return &est
}

func searchJSON(t *testing.T, ts *httptest.Server, id string, seed int64) *SearchResponse {
	t.Helper()
	var res SearchResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/designs/"+id+"/search",
		SearchRequest{Algo: "greedy", Seed: seed}, &res); code != http.StatusOK {
		t.Fatalf("search %s: status %d", id, code)
	}
	return &res
}

// TestCrashRecoveryBitIdentical is the tentpole pin: build and reload a
// session, "crash" (abandon the server without any drain), recover a new
// daemon from the same state directory, and require bit-identical
// estimates and search results. The reload is left dirty — journaled but
// past the last checkpoint — so recovery exercises the checkpoint
// restore plus the single incremental replay Reload.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	srv := New(Config{Store: st, CheckpointEvery: 100})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	buildDesign(t, ts, "fuzzy", "fuzzy")
	src, _ := readExample(t, "fuzzy")
	var rel ReloadResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/designs/fuzzy/reload",
		ReloadRequest{VHDL: insertNull(t, src)}, &rel); code != http.StatusOK {
		t.Fatalf("reload: status %d", code)
	}
	if rel.Empty || rel.Full {
		t.Fatalf("reload was not incremental: %+v", rel)
	}
	estBefore := estimateJSON(t, ts, "fuzzy")
	searchBefore := searchJSON(t, ts, "fuzzy", 7)
	ts.Close() // crash: no drain, no checkpoint of the dirty reload

	st2 := openStore(t, dir, nil)
	srv2 := New(Config{Store: st2})
	rep := srv2.Recover(t.Logf)
	if rep.Sessions != 1 || rep.Restored != 1 || rep.Failed != 0 {
		t.Fatalf("recover report = %+v, want 1 restored", rep)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	estAfter := estimateJSON(t, ts2, "fuzzy")
	if !reflect.DeepEqual(estBefore.Report, estAfter.Report) {
		t.Fatal("recovered session's estimate differs from the pre-crash one")
	}
	searchAfter := searchJSON(t, ts2, "fuzzy", 7)
	if searchBefore.Cost != searchAfter.Cost || searchBefore.Evals != searchAfter.Evals ||
		!reflect.DeepEqual(searchBefore.Assignment, searchAfter.Assignment) {
		t.Fatalf("recovered search differs: %+v vs %+v", searchBefore, searchAfter)
	}
	if stats := srv2.Stats(); stats.Restores != 1 || stats.Recovered != 1 {
		t.Fatalf("stats = %+v, want restores=1 recovered=1", stats)
	}
}

// TestEvictionRestore pins the LRU/persistence interplay: a session pushed
// out by the cache cap comes back from its checkpoint on the next request,
// without re-running the front end, and estimates identically.
func TestEvictionRestore(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	srv := New(Config{Store: st, MaxSessions: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	buildDesign(t, ts, "a", "fuzzy")
	estBefore := estimateJSON(t, ts, "a")
	buildsBefore := srv.Stats().Builds

	buildDesign(t, ts, "b", "ans") // evicts "a", checkpointing it
	if srv.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", srv.Stats().Evictions)
	}
	if srv.cache.get("a") != nil {
		t.Fatal("a still cached")
	}

	estAfter := estimateJSON(t, ts, "a") // restore-on-miss
	if !reflect.DeepEqual(estBefore.Report, estAfter.Report) {
		t.Fatal("restored session's estimate differs")
	}
	stats := srv.Stats()
	if stats.Restores != 1 {
		t.Fatalf("restores = %d, want 1", stats.Restores)
	}
	// One build for "b", none for the restore: the front end did not run.
	if stats.Builds != buildsBefore+1 {
		t.Fatalf("builds = %d, want %d (restore must skip the front end)",
			stats.Builds, buildsBefore+1)
	}
	// Deleting the restored session removes it from store and cache alike.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/designs/a", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.Has("a") {
		t.Fatalf("delete: status %d, store has a: %v", resp.StatusCode, st.Has("a"))
	}
}

// TestDeleteEvictedSession pins deletion of a session that lives only in
// the store: it must 200 and purge the store, not 404.
func TestDeleteEvictedSession(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	srv := New(Config{Store: st, MaxSessions: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	buildDesign(t, ts, "a", "fuzzy")
	buildDesign(t, ts, "b", "fuzzy") // evicts "a"
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/designs/a", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete evicted: status %d", resp.StatusCode)
	}
	if st.Has("a") {
		t.Fatal("store still has the deleted session")
	}
	// And it is really gone: lookups 404 now.
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/designs/a/estimate",
		EstimateRequest{}, nil); code != http.StatusNotFound {
		t.Fatalf("estimate deleted: status %d, want 404", code)
	}
}

// TestReadyzAndDrain pins the readiness surface: /readyz (not /healthz)
// goes 503 during drain, data-plane requests are shed with Retry-After,
// and Drain flushes the dirty session.
func TestReadyzAndDrain(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	srv := New(Config{Store: st, CheckpointEvery: 100, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := c.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", resp.StatusCode)
	}

	buildDesign(t, ts, "fuzzy", "fuzzy")
	src, _ := readExample(t, "fuzzy")
	if code := postJSON(t, c, ts.URL+"/v1/designs/fuzzy/reload",
		ReloadRequest{VHDL: insertNull(t, src)}, nil); code != http.StatusOK {
		t.Fatalf("reload: status %d", code)
	}

	srv.BeginDrain()
	if resp := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable ||
		resp.Header.Get("Retry-After") != "3" {
		t.Fatalf("/readyz during drain: %d, Retry-After %q",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain: %d (liveness must not flap)", resp.StatusCode)
	}
	resp, err := c.Post(ts.URL+"/v1/designs/fuzzy/estimate", "application/json",
		bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "3" {
		t.Fatalf("shed request: %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	rep := srv.Drain(context.Background())
	if rep.Dirty != 1 || rep.Flushed != 1 || rep.Errors != 0 {
		t.Fatalf("drain report = %+v", rep)
	}
	// After the flush, the checkpoint covers the journal tip: a recovery
	// needs no front-end work at all.
	st2 := openStore(t, dir, nil)
	sd, err := st2.Load("fuzzy")
	if err != nil || sd.Ckpt == nil || sd.Ckpt.VHDL != sd.VHDL {
		t.Fatalf("post-drain store: %+v (ckpt %+v), %v", sd, sd.Ckpt, err)
	}
}

// TestStoreFaultsDegradeGracefully pins availability-over-durability:
// injected store failures surface in the store_errors counter but every
// serving request still succeeds.
func TestStoreFaultsDegradeGracefully(t *testing.T) {
	dir := t.TempDir()
	// Fail every journal write after the first two appends (build lands,
	// later reloads do not).
	cfs := faultinject.NewChaosFS(nil, faultinject.FSPlan{FailWriteAt: 4, EveryWrite: 1})
	st := openStore(t, dir, cfs)
	srv := New(Config{Store: st, CheckpointEvery: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	buildDesign(t, ts, "fuzzy", "fuzzy")
	src, _ := readExample(t, "fuzzy")
	for i := 0; i < 3; i++ {
		edited := insertNull(t, src)
		if code := postJSON(t, ts.Client(), ts.URL+"/v1/designs/fuzzy/reload",
			ReloadRequest{VHDL: edited}, nil); code != http.StatusOK {
			t.Fatalf("reload %d under store faults: status %d", i, code)
		}
		src = edited
	}
	if estimateJSON(t, ts, "fuzzy") == nil {
		t.Fatal("estimate failed")
	}
	if stats := srv.Stats(); stats.StoreErrors == 0 {
		t.Fatal("injected store failures not counted")
	}
}

// TestConcurrentCheckpointEviction hammers one session with concurrent
// reloads, explicit checkpoints and eviction-triggered flushes; the store
// must come out decodable and at a consistent sequence. Run under -race
// this also proves the locking discipline.
func TestConcurrentCheckpointEviction(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, nil)
	srv := New(Config{Store: st, MaxSessions: 1, CheckpointEvery: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	buildDesign(t, ts, "a", "fuzzy")
	sess := srv.cache.get("a")
	src, _ := readExample(t, "fuzzy")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				srv.checkpoint(sess)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		edited := src
		for i := 0; i < 3; i++ {
			edited = insertNull(t, edited)
			postJSON(t, ts.Client(), ts.URL+"/v1/designs/a/reload", ReloadRequest{VHDL: edited}, nil)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Evictions while checkpoints are in flight: build other sessions
		// into a cap-1 cache.
		buildDesign(t, ts, "b", "ans")
		buildDesign(t, ts, "c", "fuzzy")
	}()
	wg.Wait()

	srv.Drain(context.Background())
	st2 := openStore(t, dir, nil)
	for _, id := range st2.Sessions() {
		sd, err := st2.Load(id)
		if err != nil || sd.Ckpt == nil {
			t.Fatalf("session %q after chaos: %+v, %v", id, sd, err)
		}
		if sd.Ckpt.VHDL != sd.VHDL {
			t.Fatalf("session %q checkpoint lags the journal after drain", id)
		}
	}
}

// TestRecoverGatesRequests pins the not-ready gate: while recovery is
// replaying, data-plane requests and /readyz answer 503.
func TestRecoverGatesRequests(t *testing.T) {
	srv := New(Config{})
	srv.ready.Store(false) // as Recover does for the replay window
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while recovering: %d", resp.StatusCode)
	}
	var body bytes.Buffer
	body.WriteString(`{"vhdl":"x"}`)
	resp, err = ts.Client().Post(ts.URL+"/v1/designs/x/build", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("build while recovering: %d", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("shed response body: %v (%+v)", err, eb)
	}
}
