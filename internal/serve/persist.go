package serve

// Durability wiring: how the daemon uses internal/store.
//
// Inputs are journaled inside the session's write lock, so journal order
// is exactly apply order. Checkpoints — compiled SLIF images — are written
// outside it: the env pin (a shallow copy under the read lock) stays
// consistent because reloads install new graphs rather than mutating, and
// each session's flushMu serializes its checkpoint writers. Store failures
// never fail a serving request: the daemon logs them, counts them in
// store_errors, and keeps serving from memory — availability over
// durability.

import (
	"context"
	"fmt"
	"log"
	"strings"

	"specsyn/internal/alloc"
	"specsyn/internal/builder"
	"specsyn/internal/core"
	"specsyn/internal/profile"
	"specsyn/internal/specsyn"
)

// newEnv assembles a session environment from raw input texts — the one
// construction path shared by fresh builds, recovery rebuilds and
// checkpoint restores.
func (s *Server) newEnv(vhdl, profileText, libraryText, overridesText string) (*specsyn.Env, error) {
	env := specsyn.New()
	env.Lib = s.cfg.library()
	env.LoadVHDL(vhdl)
	if profileText != "" {
		p, err := profile.Parse(strings.NewReader(profileText))
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		env.Prof = p
	}
	if libraryText != "" {
		l, err := alloc.Parse(strings.NewReader(libraryText))
		if err != nil {
			return nil, fmt.Errorf("library: %w", err)
		}
		env.Lib = l
	}
	if overridesText != "" {
		o, err := builder.ParseOverrides(strings.NewReader(overridesText))
		if err != nil {
			return nil, fmt.Errorf("overrides: %w", err)
		}
		env.Overrides = o
	}
	return env, nil
}

// storeFailed records a store error without failing the request.
func (s *Server) storeFailed(op, id string, err error) {
	s.metrics.storeErrs.Add(1)
	log.Printf("serve: store %s %q: %v (serving continues)", op, id, err)
}

// journalBuild appends a build record; 0 means no store or a failed append.
func (s *Server) journalBuild(id string, req BuildRequest) uint64 {
	if s.cfg.Store == nil {
		return 0
	}
	seq, err := s.cfg.Store.AppendBuild(id, req.VHDL, req.Profile, req.Library, req.Overrides)
	if err != nil {
		s.storeFailed("journal build", id, err)
		return 0
	}
	return seq
}

// journalReload appends a reload record; 0 means no store or a failed
// append. Called under the session's write lock so journal order is apply
// order.
func (s *Server) journalReload(id, vhdl string) uint64 {
	if s.cfg.Store == nil {
		return 0
	}
	seq, err := s.cfg.Store.AppendReload(id, vhdl)
	if err != nil {
		s.storeFailed("journal reload", id, err)
		return 0
	}
	return seq
}

// journalDelete appends a tombstone and removes the checkpoint.
func (s *Server) journalDelete(id string) {
	if s.cfg.Store == nil {
		return
	}
	if err := s.cfg.Store.AppendDelete(id); err != nil {
		s.storeFailed("journal delete", id, err)
	}
}

// checkpoint flushes one session's compiled image to the store, if it is
// dirty (journaled past its last checkpoint). Returns false only when a
// flush was needed and failed.
func (s *Server) checkpoint(sess *session) bool {
	if s.cfg.Store == nil {
		return true
	}
	sess.flushMu.Lock()
	defer sess.flushMu.Unlock()
	sess.mu.RLock()
	env := *sess.env
	seq, ckptSeq := sess.seq, sess.ckptSeq
	prof, lib, ovr := sess.profile, sess.library, sess.overrides
	sess.mu.RUnlock()
	if seq == 0 || seq == ckptSeq {
		return true // never journaled, or already covered
	}
	snap, err := core.Compile(env.Graph)
	if err != nil {
		s.storeFailed("compile checkpoint", sess.id, err)
		return false
	}
	if err := s.cfg.Store.Checkpoint(sess.id, seq, snap, env.Source, prof, lib, ovr); err != nil {
		s.storeFailed("checkpoint", sess.id, err)
		return false
	}
	s.metrics.checkpoints.Add(1)
	sess.mu.Lock()
	if seq > sess.ckptSeq {
		sess.ckptSeq = seq
	}
	sess.mu.Unlock()
	return true
}

// maybeCheckpoint flushes when the dirty reload count reaches the
// configured period.
func (s *Server) maybeCheckpoint(sess *session) {
	if s.cfg.Store == nil {
		return
	}
	if seq, ckptSeq := sess.persist(); seq-ckptSeq >= uint64(s.cfg.checkpointEvery()) {
		s.checkpoint(sess)
	}
}

// install puts a session in the LRU cache, checkpointing any sessions the
// cap pushes out so restore-on-miss can bring them back without the front
// end. Returns the eviction count.
func (s *Server) install(sess *session) int {
	evicted := s.cache.put(sess)
	if len(evicted) > 0 {
		s.metrics.evictions.Add(int64(len(evicted)))
		for _, ev := range evicted {
			s.checkpoint(ev)
		}
	}
	return len(evicted)
}

// restore rebuilds one session from the store: from its checkpoint when
// possible — decode, Decompile, and at most one incremental Reload to the
// journal tip, no front-end parse of an unchanged source — otherwise a
// full build from the journaled inputs. usedCkpt reports which path ran.
func (s *Server) restore(id string) (sess *session, usedCkpt bool, err error) {
	data, err := s.cfg.Store.Load(id)
	if data == nil {
		return nil, false, err
	}
	if err != nil {
		// Checkpoint unreadable; the journaled inputs still rebuild it.
		s.storeFailed("load checkpoint", id, err)
	}
	var env *specsyn.Env
	if data.Ckpt != nil {
		env, err = s.newEnv("", data.Profile, data.Library, data.Overrides)
		if err != nil {
			env = nil // inputs text damaged? fall through to full build and its error
		} else {
			env.Graph = data.Ckpt.Graph
			env.Source = data.Ckpt.VHDL
			if data.VHDL != data.Ckpt.VHDL {
				if _, rerr := env.Reload(data.VHDL); rerr != nil {
					s.storeFailed("replay reload", id, rerr)
					env = nil
				}
			}
		}
		usedCkpt = env != nil
	}
	if env == nil {
		env, err = s.newEnv(data.VHDL, data.Profile, data.Library, data.Overrides)
		if err != nil {
			return nil, false, err
		}
		if err := env.Build(); err != nil {
			return nil, false, err
		}
		s.metrics.builds.Add(1)
	}
	sess = newSession(id, env, s.cfg.sessionSlots(), s.cfg.sessionQueue())
	sess.seq = data.Seq
	if usedCkpt {
		sess.ckptSeq = data.Ckpt.Seq
		s.metrics.restores.Add(1)
	}
	sess.profile, sess.library, sess.overrides = data.Profile, data.Library, data.Overrides
	return sess, usedCkpt, nil
}

// restoreMiss singleflights restore-on-miss for lookup: one goroutine
// rebuilds, the rest find the result in the cache.
func (s *Server) restoreMiss(id string) (*session, error) {
	s.restoreMu.Lock()
	defer s.restoreMu.Unlock()
	if sess := s.cache.get(id); sess != nil {
		return sess, nil
	}
	sess, _, err := s.restore(id)
	if err != nil {
		return nil, err
	}
	s.install(sess)
	s.checkpoint(sess) // cover any replayed reload tail
	return sess, nil
}

// RecoverReport summarizes a startup recovery replay.
type RecoverReport struct {
	Sessions int // sessions the store knew about
	Restored int // brought back from a checkpoint (no front end)
	Rebuilt  int // rebuilt through the front end from journaled inputs
	Failed   int // could not be brought back at all
}

// Recover replays the store into the session cache. The server reports
// not-ready — /readyz and every data-plane handler answer 503 — until it
// returns, so a load balancer never routes to a half-recovered daemon.
// logf (nil ok) receives one line per failure.
func (s *Server) Recover(logf func(format string, args ...any)) RecoverReport {
	var rep RecoverReport
	if s.cfg.Store == nil {
		return rep
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.ready.Store(false)
	defer s.ready.Store(true)
	for _, id := range s.cfg.Store.Sessions() {
		rep.Sessions++
		sess, usedCkpt, err := s.restore(id)
		if err != nil {
			rep.Failed++
			s.metrics.recoveryFail.Add(1)
			logf("serve: recover %q: %v", id, err)
			continue
		}
		if usedCkpt {
			rep.Restored++
		} else {
			rep.Rebuilt++
		}
		s.metrics.recovered.Add(1)
		s.install(sess)
		s.checkpoint(sess)
	}
	return rep
}

// DrainReport summarizes a graceful-shutdown flush.
type DrainReport struct {
	Dirty   int // sessions that needed a final checkpoint
	Flushed int // of those, how many made it to disk
	Errors  int // failed flushes plus a failed journal compaction
}

// BeginDrain flips the server into draining: /readyz answers 503 so load
// balancers stop routing here, and new data-plane requests are shed.
// In-flight requests are unaffected — the HTTP server's Shutdown waits
// for them.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain checkpoints every dirty session and compacts the journal. Call it
// after the HTTP server has stopped accepting requests; ctx bounds the
// flush work.
func (s *Server) Drain(ctx context.Context) DrainReport {
	var rep DrainReport
	if s.cfg.Store == nil {
		return rep
	}
	for _, sess := range s.cache.sessions() {
		if ctx.Err() != nil {
			rep.Errors++
			break
		}
		if seq, ckptSeq := sess.persist(); seq == ckptSeq {
			continue
		}
		rep.Dirty++
		if s.checkpoint(sess) {
			rep.Flushed++
		} else {
			rep.Errors++
		}
	}
	if err := s.cfg.Store.Compact(); err != nil {
		s.storeFailed("compact", "", err)
		rep.Errors++
	}
	return rep
}
