// Package naive implements the baseline SLIF's preprocessing is measured
// against: estimating design metrics by re-analyzing the specification on
// every query instead of looking up precomputed annotations.
//
// §2.1 of the paper: "If we take the most accurate approach of compiling
// that set of procedures into the processor's instruction set, we suffer
// from long delays to obtain the estimate ... On the other hand, we can
// take a faster approach in which we initially compile each procedure ...
// before beginning system design." This package is the former approach —
// every Size or Exectime query re-derives operation counts, bit widths and
// access frequencies from the AST — so benchmarks can report the speedup
// the preprocessed SLIF annotations buy (the abstract's "order of
// magnitude less time and memory").
//
// The numeric results are identical to the SLIF estimator's by
// construction: both use the same models; only the caching discipline
// differs. Tests assert that equivalence.
package naive

import (
	"fmt"

	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/synth"
)

// Mapping assigns each behavior and variable (by unique ID) to a component
// type name, and names the bus parameters — the minimal partition
// description a from-scratch estimator needs.
type Mapping struct {
	CompType map[string]string // node unique ID → technology name
	CompInst map[string]string // node unique ID → component instance name
	BusWidth int
	BusTS    float64 // same-component transfer time
	BusTD    float64 // cross-component transfer time
}

// Estimator re-derives everything per query.
type Estimator struct {
	d     *sem.Design
	prof  *profile.Profile
	techs []*synth.Tech
	m     Mapping
}

// New returns a naive estimator over an elaborated design.
func New(d *sem.Design, prof *profile.Profile, techs []*synth.Tech, m Mapping) *Estimator {
	if prof == nil {
		prof = profile.Empty()
	}
	return &Estimator{d: d, prof: prof, techs: techs, m: m}
}

func (e *Estimator) tech(nodeID string) (*synth.Tech, error) {
	name, ok := e.m.CompType[nodeID]
	if !ok {
		return nil, fmt.Errorf("naive: %q is not mapped", nodeID)
	}
	t := synth.TechByName(e.techs, name)
	if t == nil {
		return nil, fmt.Errorf("naive: unknown technology %q", name)
	}
	return t, nil
}

func (e *Estimator) behavior(id string) *sem.Behavior {
	for _, b := range e.d.Behaviors {
		if b.UniqueID == id {
			return b
		}
	}
	return nil
}

// ict re-derives the internal computation time of a node on its mapped
// technology — the work SLIF does once at build time.
func (e *Estimator) ict(id string) (float64, error) {
	t, err := e.tech(id)
	if err != nil {
		return 0, err
	}
	if b := e.behavior(id); b != nil {
		ops := synth.CountOps(e.d, b, e.prof) // full AST re-walk, every call
		v, _, ok := t.BehaviorWeights(ops)
		if !ok {
			return 0, fmt.Errorf("naive: behavior %q cannot run on %q", id, t.Name)
		}
		return v, nil
	}
	for _, o := range e.d.Objects {
		if o.UniqueID == id {
			v, _, ok := t.VariableWeights(o.Type.TotalBits())
			if !ok {
				return 0, fmt.Errorf("naive: variable %q cannot live on %q", id, t.Name)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("naive: unknown node %q", id)
}

// Size re-derives eq. 4/5 for one component instance: it re-walks the AST
// of every behavior mapped to the instance.
func (e *Estimator) Size(instance string) (float64, error) {
	var sum float64
	for _, b := range e.d.Behaviors {
		if e.m.CompInst[b.UniqueID] != instance {
			continue
		}
		t, err := e.tech(b.UniqueID)
		if err != nil {
			return 0, err
		}
		ops := synth.CountOps(e.d, b, e.prof)
		_, sz, ok := t.BehaviorWeights(ops)
		if !ok {
			return 0, fmt.Errorf("naive: behavior %q cannot run on %q", b.UniqueID, t.Name)
		}
		sum += sz
	}
	for _, o := range e.d.Objects {
		if e.m.CompInst[o.UniqueID] != instance {
			continue
		}
		t, err := e.tech(o.UniqueID)
		if err != nil {
			return 0, err
		}
		_, sz, ok := t.VariableWeights(o.Type.TotalBits())
		if !ok {
			return 0, fmt.Errorf("naive: variable %q cannot live on %q", o.UniqueID, t.Name)
		}
		sum += sz
	}
	return sum, nil
}

// Exectime re-derives eq. 1 for a behavior: access frequencies and bits
// come from a fresh profile walk, ict weights from fresh op counting —
// recursively for every reached behavior, with no memoization.
func (e *Estimator) Exectime(id string) (float64, error) {
	return e.exectime(id, map[string]bool{})
}

func (e *Estimator) exectime(id string, path map[string]bool) (float64, error) {
	if path[id] {
		return 0, fmt.Errorf("naive: recursion through %q", id)
	}
	path[id] = true
	defer delete(path, id)

	own, err := e.ict(id)
	if err != nil {
		return 0, err
	}
	b := e.behavior(id)
	if b == nil {
		return own, nil // variable: storage access time only
	}

	// Re-derive the access list (SLIF's channels) from scratch.
	type agg struct {
		freq float64
		bits int
		kind sem.SymKind
		dst  string
	}
	accesses := map[string]*agg{}
	var order []string
	profile.Walk(e.d, b, e.prof, func(ev profile.Event) {
		var dst string
		var bits int
		switch ev.Target.Kind {
		case sem.SymObject:
			dst = ev.Target.Object.UniqueID
			bits = ev.Target.Object.Type.AccessBits()
		case sem.SymPort:
			dst = ev.Target.Port.Name
			bits = ev.Target.Port.Type.AccessBits()
		case sem.SymBehavior:
			dst = ev.Target.Behavior.UniqueID
			bits = ev.Target.Behavior.ParamBits()
		default:
			return
		}
		a := accesses[dst]
		if a == nil {
			a = &agg{bits: bits, kind: ev.Target.Kind, dst: dst}
			accesses[dst] = a
			order = append(order, dst)
		}
		a.freq += ev.Counts.Avg
	})

	var comm float64
	for _, dst := range order {
		a := accesses[dst]
		var transfers int
		if a.bits > 0 {
			transfers = (a.bits + e.m.BusWidth - 1) / e.m.BusWidth
		}
		bdt := e.m.BusTD
		if a.kind != sem.SymPort && e.m.CompInst[a.dst] == e.m.CompInst[id] {
			bdt = e.m.BusTS
		}
		var dstTime float64
		if a.kind != sem.SymPort {
			dstTime, err = e.exectime(a.dst, path)
			if err != nil {
				return 0, err
			}
		}
		comm += a.freq * (bdt*float64(transfers) + dstTime)
	}
	return own + comm, nil
}
