package naive

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"specsyn/internal/builder"
	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/synth"
	"specsyn/internal/vhdl"
)

// load elaborates an example and builds both the SLIF graph and a naive
// estimator over the same all-software mapping.
func load(t testing.TB, name string) (*sem.Design, *core.Graph, *Estimator, *core.Partition) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name+".vhd"))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Load(filepath.Join("..", "..", "testdata", name+".prob"))
	if err != nil {
		t.Fatal(err)
	}
	df, err := vhdl.Parse(string(data))
	if err != nil {
		t.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	techs := synth.StdTechs()
	g, err := builder.Build(d, builder.Options{Profile: prof, Techs: techs, SkipTags: true})
	if err != nil {
		t.Fatal(err)
	}
	cpu := &core.Processor{Name: "cpu", TypeName: "proc10"}
	g.AddProcessor(cpu)
	bus := &core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4}
	g.AddBus(bus)
	pt := core.AllToProcessor(g, cpu, bus)

	m := Mapping{
		CompType: map[string]string{},
		CompInst: map[string]string{},
		BusWidth: 16, BusTS: 0.05, BusTD: 0.4,
	}
	for _, n := range g.Nodes {
		m.CompType[n.Name] = "proc10"
		m.CompInst[n.Name] = "cpu"
	}
	return d, g, New(d, prof, techs, m), pt
}

// TestAgreesWithSLIF: the naive estimator and the SLIF estimator implement
// the same models, so their numbers must coincide — only the time to
// produce them differs.
func TestAgreesWithSLIF(t *testing.T) {
	for _, name := range []string{"fuzzy", "vol"} {
		_, g, nv, pt := load(t, name)
		est := estimate.New(g, pt, estimate.Options{})
		for _, p := range g.Processes() {
			slifT, err := est.Exectime(p)
			if err != nil {
				t.Fatalf("%s/%s: slif: %v", name, p.Name, err)
			}
			naiveT, err := nv.Exectime(p.Name)
			if err != nil {
				t.Fatalf("%s/%s: naive: %v", name, p.Name, err)
			}
			if math.Abs(slifT-naiveT) > 1e-6*math.Max(1, slifT) {
				t.Errorf("%s/%s: exectime disagrees: slif %v, naive %v", name, p.Name, slifT, naiveT)
			}
		}
		slifSize, err := est.Size(g.ProcByName("cpu"))
		if err != nil {
			t.Fatal(err)
		}
		naiveSize, err := nv.Size("cpu")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(slifSize-naiveSize) > 1e-6 {
			t.Errorf("%s: size disagrees: slif %v, naive %v", name, slifSize, naiveSize)
		}
	}
}

func TestUnmappedNodeFails(t *testing.T) {
	d, _, _, _ := load(t, "vol")
	nv := New(d, nil, synth.StdTechs(), Mapping{CompType: map[string]string{}, CompInst: map[string]string{}, BusWidth: 16})
	if _, err := nv.Exectime("volmain"); err == nil {
		t.Error("unmapped node estimated")
	}
}

func TestUnknownTech(t *testing.T) {
	d, _, _, _ := load(t, "vol")
	m := Mapping{CompType: map[string]string{"volmain": "ghost"}, CompInst: map[string]string{"volmain": "x"}, BusWidth: 16}
	nv := New(d, nil, synth.StdTechs(), m)
	if _, err := nv.Exectime("volmain"); err == nil {
		t.Error("unknown technology accepted")
	}
}

// BenchmarkNaiveVsSLIF reproduces the abstract's headline claim: SLIF's
// preprocessed annotations deliver estimates "in an order of magnitude
// less time" than per-query re-analysis. Run with -bench to compare
// naive/<x> against slif/<x>.
func BenchmarkNaiveVsSLIF(b *testing.B) {
	for _, name := range []string{"fuzzy", "ether"} {
		_, g, nv, pt := load(b, name)
		b.Run("slif/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est := estimate.New(g, pt, estimate.Options{})
				for _, p := range g.Processes() {
					if _, err := est.Exectime(p); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := est.Size(g.ProcByName("cpu")); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("naive/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range g.Processes() {
					if _, err := nv.Exectime(p.Name); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := nv.Size("cpu"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
