// Package faultinject provides deterministic, seeded fault injection for
// the exploration and durability stacks. It defines the Hook interface the
// partition evaluator consults before every cost evaluation (a nil hook
// costs one branch — the production fast path is untouched) plus concrete
// injectors that panic, delay, or fail legs of a parallel search on a
// reproducible schedule; and the FS/File filesystem surface the session
// store writes through, with a ChaosFS that fails, tears, or delays those
// writes on an equally reproducible schedule (see fs.go).
//
// The package is a leaf: it depends only on the standard library, so any
// layer (partition, alloc, tests) can import it without cycles. The
// contract with the engine:
//
//   - Sequential searches call cfg.Eval.Hook.BeforeEval() once per cost
//     evaluation, if the hook is non-nil.
//   - The parallel engine derives a fresh per-leg hook via
//     Hook.ForLeg(leg, seed) before running each leg on a worker, so
//     injection decisions key on the leg index and the leg's derived seed —
//     never on worker scheduling — and a fixed seed reproduces the same
//     faults at any worker count.
//   - A hook may return an error (injected estimator failure), sleep
//     (injected latency), or panic (injected crash); the engine contains
//     the panic, records it with the leg's seed, and keeps the other legs
//     running.
package faultinject

import (
	"fmt"
	"time"
)

// Hook intercepts evaluator activity. Implementations returned by ForLeg
// are used by exactly one goroutine at a time and may keep per-leg state
// (e.g. an evaluation counter); the prototype hook installed on an
// evaluator may be shared and must derive, not mutate.
type Hook interface {
	// BeforeEval fires immediately before one cost evaluation. Returning a
	// non-nil error makes the evaluation fail as if the estimator had
	// failed; the call may also sleep or panic.
	BeforeEval() error
	// ForLeg returns the hook one parallel search leg should use — a
	// derived instance keyed on the leg index and the leg's derived seed,
	// the hook itself if it is stateless, or nil to leave the leg unhooked.
	ForLeg(leg int, seed int64) Hook
}

// Panic is the value an injected panic carries: everything needed to
// reproduce the crash (the leg and its derived seed) plus where in the leg
// it fired.
type Panic struct {
	Leg  int   // leg index the panic was injected into
	Seed int64 // the leg's derived seed
	Eval int   // evaluation count within the leg at which it fired
}

func (p *Panic) String() string {
	return fmt.Sprintf("faultinject: injected panic in leg %d (seed %d) at eval %d", p.Leg, p.Seed, p.Eval)
}

// Error is the injected estimator error. It wraps nothing: an injected
// failure must be distinguishable from a real one.
type Error struct {
	Leg  int
	Seed int64
	Eval int
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected estimator error in leg %d (seed %d) at eval %d", e.Leg, e.Seed, e.Eval)
}

// mix64 is the splitmix64 finalizer — the same mixer the partition
// sampler uses, so seeded injection composes with the engine's own
// per-leg seed derivation without sharing streams.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Injector is a deterministic fault plan over the legs of a parallel
// search. The zero value injects nothing. Legs can be selected explicitly
// (PanicLegs/ErrLegs) or pseudo-randomly (PanicProb with Seed); either
// way the decision is a pure function of (plan, leg index), so a run is
// bit-reproducible at any worker count.
//
// The Injector itself is the inert prototype: its BeforeEval never fires.
// Install it as an evaluator's hook and the parallel engine derives the
// live per-leg hooks via ForLeg; for sequential searches, install
// inj.ForLeg(0, seed) directly.
type Injector struct {
	// PanicLegs lists leg indices whose PanicAtEval-th evaluation panics.
	PanicLegs []int
	// PanicAtEval is the 0-based evaluation count within the leg at which
	// an injected panic fires.
	PanicAtEval int

	// PanicProb panics each leg independently with this probability,
	// decided by mix64(Seed, leg) — deterministic per (Seed, leg).
	PanicProb float64
	// Seed drives the PanicProb decision.
	Seed int64

	// ErrLegs lists leg indices whose ErrAtEval-th evaluation returns an
	// injected estimator error instead of a cost.
	ErrLegs []int
	// ErrAtEval is the 0-based evaluation count at which the error fires.
	ErrAtEval int

	// Delay, if positive, is slept before every DelayEvery-th evaluation
	// of every leg (DelayEvery 0 means every evaluation) — the knob that
	// makes deadline tests independent of machine speed.
	Delay      time.Duration
	DelayEvery int
}

// BeforeEval on the prototype injects nothing; only leg-derived hooks fire.
func (in *Injector) BeforeEval() error { return nil }

// ForLeg derives the live hook for one leg, or nil if the plan injects
// nothing into it.
func (in *Injector) ForLeg(leg int, seed int64) Hook {
	h := &legHook{leg: leg, seed: seed, panicAt: -1, errAt: -1}
	for _, l := range in.PanicLegs {
		if l == leg {
			h.panicAt = in.PanicAtEval
		}
	}
	if in.PanicProb > 0 {
		// 53-bit uniform draw from the (Seed, leg) stream.
		u := float64(mix64(mix64(uint64(in.Seed))+0x9E3779B97F4A7C15*uint64(leg+1))>>11) / (1 << 53)
		if u < in.PanicProb {
			h.panicAt = in.PanicAtEval
		}
	}
	for _, l := range in.ErrLegs {
		if l == leg {
			h.errAt = in.ErrAtEval
		}
	}
	if in.Delay > 0 {
		h.delay = in.Delay
		h.delayEvery = in.DelayEvery
		if h.delayEvery <= 0 {
			h.delayEvery = 1
		}
	}
	if h.panicAt < 0 && h.errAt < 0 && h.delay == 0 {
		return nil
	}
	return h
}

// legHook is the live, single-goroutine hook for one leg.
type legHook struct {
	leg        int
	seed       int64
	n          int // evaluations seen
	panicAt    int // -1 = never
	errAt      int // -1 = never
	delay      time.Duration
	delayEvery int
}

func (h *legHook) BeforeEval() error {
	n := h.n
	h.n++
	if h.delay > 0 && n%h.delayEvery == 0 {
		time.Sleep(h.delay)
	}
	if h.panicAt >= 0 && n == h.panicAt {
		panic(&Panic{Leg: h.leg, Seed: h.seed, Eval: n})
	}
	if h.errAt >= 0 && n == h.errAt {
		return &Error{Leg: h.leg, Seed: h.seed, Eval: n}
	}
	return nil
}

// ForLeg on an already-derived hook rebinds it to a new leg — a fresh
// counter with the same plan slice is not reconstructible here, so derive
// from the Injector instead; this exists only to satisfy Hook.
func (h *legHook) ForLeg(leg int, seed int64) Hook {
	cp := *h
	cp.leg, cp.seed, cp.n = leg, seed, 0
	return &cp
}

// Delayer is a stateless hook that sleeps D before every evaluation in
// every leg — the simplest way to slow a search down enough for a
// deadline to fire deterministically in tests.
type Delayer struct{ D time.Duration }

func (d Delayer) BeforeEval() error      { time.Sleep(d.D); return nil }
func (d Delayer) ForLeg(int, int64) Hook { return d }
