package faultinject

// The filesystem fault layer: the store-facing counterpart of the
// evaluator hooks above. The session store (internal/store) does all its
// durability I/O through the FS interface; production hands it OSFS, and
// crash tests hand it a ChaosFS that fails, tears, or delays writes on a
// deterministic schedule — so "kill the daemon mid-write and recover" is
// an ordinary table-driven test, exactly as the evaluator hooks made
// injected search panics ordinary tests.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// File is a writable file handle as the store needs it: write, fsync,
// close. Reads go through FS.ReadFile — recovery slurps whole files.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface the session store writes through. Every
// mutation the store's durability depends on is a method here, so a fault
// plan can intercept all of them.
type FS interface {
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the names (not paths) of the entries in dir, sorted.
	ReadDir(dir string) ([]string, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making a rename durable.
	SyncDir(dir string) error
}

// OSFS is the production FS: the os package, nothing else.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }
func (OSFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// FSError is an injected filesystem fault — distinguishable from a real
// one, like the evaluator's Error type.
type FSError struct {
	Op string // "write", "torn write", "sync", "rename"
	N  int    // 1-based count of that operation at which it fired
}

func (e *FSError) Error() string {
	return fmt.Sprintf("faultinject: injected %s error (op %d)", e.Op, e.N)
}

// FSPlan is a deterministic filesystem fault schedule. Counts are 1-based
// over the whole ChaosFS (all files); zero disables a fault. The zero
// plan injects nothing.
type FSPlan struct {
	// FailWriteAt makes the Nth Write call fail with nothing written.
	FailWriteAt int
	// TornWriteAt makes the Nth Write call write only the first half of
	// its buffer and then fail — the torn-frame crash model. A journal
	// append hit by it leaves a half-frame on disk that recovery must
	// truncate, not choke on.
	TornWriteAt int
	// EveryWrite repeats the FailWriteAt/TornWriteAt faults every N
	// writes after the first firing (0 = fire once).
	EveryWrite int
	// FailSyncAt makes the Nth Sync or SyncDir call fail (the write
	// preceding it may or may not be on "disk" — exactly the ambiguity a
	// real fsync failure leaves).
	FailSyncAt int
	// FailRenameAt makes the Nth Rename fail before renaming, so the
	// temp file exists but the atomic install never happened.
	FailRenameAt int
	// Delay, if positive, is slept before every DelayEvery-th write and
	// sync (DelayEvery 0 means every one) — the slow-disk knob.
	Delay      time.Duration
	DelayEvery int
}

// ChaosFS wraps a base FS with an FSPlan. It is safe for concurrent use;
// the operation counters are global to the ChaosFS so a fixed plan fires
// at a reproducible point in a single-writer store's operation stream.
type ChaosFS struct {
	Base FS
	Plan FSPlan

	mu      sync.Mutex
	writes  int
	syncs   int
	renames int
}

// NewChaosFS wraps base (OSFS if nil) with plan.
func NewChaosFS(base FS, plan FSPlan) *ChaosFS {
	if base == nil {
		base = OSFS{}
	}
	return &ChaosFS{Base: base, Plan: plan}
}

// Counts reports how many writes, syncs and renames the FS has seen —
// handy for asserting a fault actually fired.
func (c *ChaosFS) Counts() (writes, syncs, renames int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes, c.syncs, c.renames
}

// fires reports whether a 1-based schedule point at (plus EveryWrite
// repeats, for write faults) matches count n.
func fires(at, every, n int) bool {
	if at <= 0 || n < at {
		return false
	}
	if n == at {
		return true
	}
	return every > 0 && (n-at)%every == 0
}

// nextWrite advances the write counter and returns the fault to apply:
// 0 = none, 1 = fail, 2 = torn.
func (c *ChaosFS) nextWrite() (kind, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	n = c.writes
	c.sleepLocked(n)
	switch {
	case fires(c.Plan.FailWriteAt, c.Plan.EveryWrite, n):
		return 1, n
	case fires(c.Plan.TornWriteAt, c.Plan.EveryWrite, n):
		return 2, n
	}
	return 0, n
}

func (c *ChaosFS) nextSync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncs++
	c.sleepLocked(c.syncs)
	if c.Plan.FailSyncAt > 0 && c.syncs == c.Plan.FailSyncAt {
		return &FSError{Op: "sync", N: c.syncs}
	}
	return nil
}

func (c *ChaosFS) sleepLocked(n int) {
	if c.Plan.Delay <= 0 {
		return
	}
	every := c.Plan.DelayEvery
	if every <= 0 {
		every = 1
	}
	if n%every == 0 {
		time.Sleep(c.Plan.Delay)
	}
}

func (c *ChaosFS) MkdirAll(dir string) error { return c.Base.MkdirAll(dir) }

func (c *ChaosFS) Create(name string) (File, error) {
	f, err := c.Base.Create(name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, f: f}, nil
}

func (c *ChaosFS) Append(name string) (File, error) {
	f, err := c.Base.Append(name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, f: f}, nil
}

func (c *ChaosFS) ReadFile(name string) ([]byte, error)   { return c.Base.ReadFile(name) }
func (c *ChaosFS) ReadDir(dir string) ([]string, error)   { return c.Base.ReadDir(dir) }
func (c *ChaosFS) Remove(name string) error               { return c.Base.Remove(name) }
func (c *ChaosFS) Truncate(name string, size int64) error { return c.Base.Truncate(name, size) }

func (c *ChaosFS) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	c.renames++
	n := c.renames
	fail := c.Plan.FailRenameAt > 0 && n == c.Plan.FailRenameAt
	c.mu.Unlock()
	if fail {
		return &FSError{Op: "rename", N: n}
	}
	return c.Base.Rename(oldpath, newpath)
}

func (c *ChaosFS) SyncDir(dir string) error {
	if err := c.nextSync(); err != nil {
		return err
	}
	return c.Base.SyncDir(dir)
}

// chaosFile applies the plan's write faults to one handle.
type chaosFile struct {
	fs *ChaosFS
	f  File
}

func (cf *chaosFile) Write(p []byte) (int, error) {
	switch kind, n := cf.fs.nextWrite(); kind {
	case 1:
		return 0, &FSError{Op: "write", N: n}
	case 2:
		half := len(p) / 2
		if wn, err := cf.f.Write(p[:half]); err != nil {
			return wn, err
		}
		return half, &FSError{Op: "torn write", N: n}
	}
	return cf.f.Write(p)
}

func (cf *chaosFile) Sync() error {
	if err := cf.fs.nextSync(); err != nil {
		return err
	}
	return cf.f.Sync()
}

func (cf *chaosFile) Close() error { return cf.f.Close() }
