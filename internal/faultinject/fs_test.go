package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOSFSBasics drives the production FS through the store's whole
// operation vocabulary on a real temp dir.
func TestOSFSBasics(t *testing.T) {
	fs := OSFS{}
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := fs.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(sub, "f")
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := fs.Append(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(name)
	if err != nil || string(data) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := fs.Truncate(name, 5); err != nil {
		t.Fatal(err)
	}
	data, _ = fs.ReadFile(name)
	if string(data) != "hello" {
		t.Fatalf("after truncate: %q", data)
	}
	dst := filepath.Join(sub, "g")
	if err := fs.Rename(name, dst); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(sub)
	if err != nil || len(names) != 1 || names[0] != "g" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := fs.Remove(dst); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(dst); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("removed file still readable: %v", err)
	}
}

// TestChaosFSWriteFaults pins the injected write faults: the scheduled
// write fails (clean or torn), the schedule is deterministic, and a torn
// write leaves exactly the first half of the buffer on disk.
func TestChaosFSWriteFaults(t *testing.T) {
	run := func(plan FSPlan) (contents []byte, errs []error) {
		dir := t.TempDir()
		fs := NewChaosFS(OSFS{}, plan)
		name := filepath.Join(dir, "f")
		f, err := fs.Append(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			_, err := f.Write([]byte("01234567"))
			errs = append(errs, err)
		}
		f.Close()
		data, err := OSFS{}.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		return data, errs
	}

	data, errs := run(FSPlan{FailWriteAt: 2})
	if errs[0] != nil || errs[1] == nil || errs[2] != nil {
		t.Fatalf("FailWriteAt=2 errs = %v", errs)
	}
	var fe *FSError
	if !errors.As(errs[1], &fe) || fe.Op != "write" || fe.N != 2 {
		t.Fatalf("injected error = %v", errs[1])
	}
	if string(data) != "012345670123456701234567" {
		t.Fatalf("failed write leaked bytes: %q", data)
	}

	data, errs = run(FSPlan{TornWriteAt: 3})
	if errs[2] == nil {
		t.Fatalf("TornWriteAt=3 errs = %v", errs)
	}
	if string(data) != "0123456701234567"+"0123"+"01234567" {
		t.Fatalf("torn write wrote %q", data)
	}

	// EveryWrite repeats the fault.
	_, errs = run(FSPlan{FailWriteAt: 1, EveryWrite: 2})
	if errs[0] == nil || errs[1] != nil || errs[2] == nil || errs[3] != nil {
		t.Fatalf("EveryWrite schedule = %v", errs)
	}

	// Same plan, same failure point: determinism.
	_, errs1 := run(FSPlan{TornWriteAt: 3})
	_, errs2 := run(FSPlan{TornWriteAt: 3})
	for i := range errs1 {
		if (errs1[i] == nil) != (errs2[i] == nil) {
			t.Fatalf("nondeterministic schedule at write %d", i)
		}
	}
}

// TestChaosFSSyncAndRenameFaults pins the sync and rename schedules.
func TestChaosFSSyncAndRenameFaults(t *testing.T) {
	dir := t.TempDir()
	fs := NewChaosFS(OSFS{}, FSPlan{FailSyncAt: 2, FailRenameAt: 1})
	f, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1 should pass: %v", err)
	}
	if err := f.Sync(); err == nil {
		t.Fatal("sync 2 should fail")
	}
	f.Close()

	if err := fs.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); err == nil {
		t.Fatal("rename 1 should fail")
	}
	if _, err := os.Stat(filepath.Join(dir, "f")); err != nil {
		t.Fatalf("failed rename moved the file: %v", err)
	}
	if err := fs.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); err != nil {
		t.Fatalf("rename 2 should pass: %v", err)
	}
	if w, s, r := fs.Counts(); w != 1 || s < 2 || r != 2 {
		t.Fatalf("Counts = %d writes, %d syncs, %d renames", w, s, r)
	}
}
