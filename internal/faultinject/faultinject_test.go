package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestInjectorInertPrototype(t *testing.T) {
	in := &Injector{PanicLegs: []int{0}, PanicAtEval: 0}
	// The prototype itself never fires, however it is configured.
	for i := 0; i < 10; i++ {
		if err := in.BeforeEval(); err != nil {
			t.Fatalf("prototype BeforeEval returned %v", err)
		}
	}
}

func TestForLegSelectsPlannedLegs(t *testing.T) {
	in := &Injector{PanicLegs: []int{2}, PanicAtEval: 1, ErrLegs: []int{4}, ErrAtEval: 0}

	if h := in.ForLeg(0, 7); h != nil {
		t.Error("unplanned leg got a live hook")
	}

	h := in.ForLeg(2, 7)
	if h == nil {
		t.Fatal("planned panic leg got no hook")
	}
	if err := h.BeforeEval(); err != nil { // eval 0: quiet
		t.Fatal(err)
	}
	defer func() {
		p, ok := recover().(*Panic)
		if !ok {
			t.Fatal("eval 1 did not panic with *Panic")
		}
		if p.Leg != 2 || p.Seed != 7 || p.Eval != 1 {
			t.Errorf("panic payload = %+v, want leg 2, seed 7, eval 1", p)
		}
		if p.String() == "" {
			t.Error("empty panic description")
		}
	}()
	_ = h.BeforeEval() // eval 1: injected panic
}

func TestForLegInjectsError(t *testing.T) {
	in := &Injector{ErrLegs: []int{4}, ErrAtEval: 2}
	h := in.ForLeg(4, 9)
	if h == nil {
		t.Fatal("planned error leg got no hook")
	}
	for i := 0; i < 2; i++ {
		if err := h.BeforeEval(); err != nil {
			t.Fatalf("eval %d: premature error %v", i, err)
		}
	}
	err := h.BeforeEval()
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("eval 2 returned %v, want *Error", err)
	}
	if ie.Leg != 4 || ie.Seed != 9 || ie.Eval != 2 {
		t.Errorf("error payload = %+v", ie)
	}
	// One-shot: later evaluations are clean again.
	if err := h.BeforeEval(); err != nil {
		t.Errorf("eval 3: error fired twice: %v", err)
	}
}

func TestPanicProbDeterministic(t *testing.T) {
	all := &Injector{PanicProb: 1, Seed: 3}
	none := &Injector{PanicProb: 0, Seed: 3}
	for leg := 0; leg < 32; leg++ {
		if all.ForLeg(leg, 0) == nil {
			t.Errorf("PanicProb=1: leg %d unhooked", leg)
		}
		if none.ForLeg(leg, 0) != nil {
			t.Errorf("PanicProb=0: leg %d hooked", leg)
		}
	}

	// A fractional probability must pick the same leg subset every time —
	// the decision is a pure function of (Seed, leg).
	half := &Injector{PanicProb: 0.5, Seed: 11}
	pick := func() (legs []int) {
		for leg := 0; leg < 64; leg++ {
			if half.ForLeg(leg, 0) != nil {
				legs = append(legs, leg)
			}
		}
		return legs
	}
	a, b := pick(), pick()
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("PanicProb=0.5 hooked %d/64 legs — draw looks degenerate", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PanicProb leg selection not deterministic")
		}
	}
}

func TestDelayerStateless(t *testing.T) {
	d := Delayer{D: time.Microsecond}
	if h := d.ForLeg(3, 99); h != Hook(d) {
		t.Error("Delayer.ForLeg should return itself")
	}
	if err := d.BeforeEval(); err != nil {
		t.Fatal(err)
	}
}

func TestLegHookRebind(t *testing.T) {
	in := &Injector{ErrLegs: []int{1}, ErrAtEval: 0}
	h := in.ForLeg(1, 5)
	if err := h.BeforeEval(); err == nil {
		t.Fatal("error did not fire")
	}
	// Rebinding resets the counter and retargets the metadata.
	h2 := h.ForLeg(8, 6)
	err := h2.BeforeEval()
	var ie *Error
	if !errors.As(err, &ie) || ie.Leg != 8 || ie.Seed != 6 || ie.Eval != 0 {
		t.Fatalf("rebound hook returned %v, want *Error{Leg:8 Seed:6 Eval:0}", err)
	}
}
