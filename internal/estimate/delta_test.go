package estimate

import (
	"strings"
	"testing"

	"specsyn/internal/core"
)

// TestDepsOrderAndAffected checks the callee-first order and the
// transitive dependent sets on the reference graph:
//
//	main → sub → arr, main → v, main → out1 (port, no dependency)
func TestDepsOrderAndAffected(t *testing.T) {
	g := buildGraph(t)
	deps, err := NewDeps(g)
	if err != nil {
		t.Fatal(err)
	}
	if deps.Len() != len(g.Nodes) {
		t.Fatalf("Len = %d, want %d", deps.Len(), len(g.Nodes))
	}
	pos := map[string]int{}
	for k, i := range deps.Order() {
		pos[deps.Node(i).Name] = k
	}
	// Callees must come before callers.
	if !(pos["arr"] < pos["sub"] && pos["sub"] < pos["main"] && pos["v"] < pos["main"]) {
		t.Errorf("order is not callee-first: %v", pos)
	}
	affected := func(name string) []string {
		i, ok := deps.Index(g.NodeByName(name))
		if !ok {
			t.Fatalf("node %q not indexed", name)
		}
		var out []string
		for _, a := range deps.Affected(i) {
			out = append(out, deps.Node(a).Name)
		}
		return out
	}
	cases := map[string][]string{
		"arr":  {"arr", "sub", "main"},
		"v":    {"v", "main"},
		"sub":  {"sub", "main"},
		"main": {"main"},
	}
	for name, want := range cases {
		got := affected(name)
		if len(got) != len(want) {
			t.Errorf("Affected(%s) = %v, want %v", name, got, want)
			continue
		}
		for k := range want {
			if got[k] != want[k] {
				t.Errorf("Affected(%s) = %v, want %v", name, got, want)
				break
			}
		}
	}
}

func TestDepsRejectsRecursion(t *testing.T) {
	// Self-access.
	g := core.NewGraph("selfloop")
	a := &core.Node{Name: "a", Kind: core.BehaviorNode, IsProcess: true}
	if err := g.AddNode(a); err != nil {
		t.Fatal(err)
	}
	if err := g.AddChannel(&core.Channel{Src: a, Dst: a, AccFreq: 1, Bits: 8, Tag: core.NoTag}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDeps(g); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("self-loop NewDeps error = %v, want cycle", err)
	}

	// Two-node cycle.
	g2 := core.NewGraph("pair")
	x := &core.Node{Name: "x", Kind: core.BehaviorNode, IsProcess: true}
	y := &core.Node{Name: "y", Kind: core.BehaviorNode}
	for _, n := range []*core.Node{x, y} {
		if err := g2.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []*core.Channel{
		{Src: x, Dst: y, AccFreq: 1, Bits: 8, Tag: core.NoTag},
		{Src: y, Dst: x, AccFreq: 1, Bits: 8, Tag: core.NoTag},
	} {
		if err := g2.AddChannel(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewDeps(g2); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("two-node cycle NewDeps error = %v, want cycle", err)
	}
}

// incrFor builds an Incr over g bound to pt captured as an assignment
// vector — the snapshot-era binding sequence every consumer performs.
func incrFor(t *testing.T, g *core.Graph, pt *core.Partition, opt Options) *Incr {
	t.Helper()
	deps, err := NewDeps(g)
	if err != nil {
		t.Fatal(err)
	}
	in := NewIncr(deps, opt)
	asg := core.NewAssignment(deps.Snapshot())
	if err := deps.Snapshot().Capture(pt, asg); err != nil {
		t.Fatal(err)
	}
	if err := in.Bind(asg); err != nil {
		t.Fatal(err)
	}
	return in
}

// checkIncrMatches compares every node's incremental Exectime against a
// fresh full estimator over the same partition.
func checkIncrMatches(t *testing.T, g *core.Graph, pt *core.Partition, in *Incr, opt Options) {
	t.Helper()
	est := New(g, pt, opt)
	for _, n := range g.Nodes {
		want, err := est.Exectime(n)
		if err != nil {
			t.Fatalf("oracle Exectime(%s): %v", n.Name, err)
		}
		got, ok := in.Exectime(n)
		if !ok {
			t.Fatalf("Incr has no value for %s", n.Name)
		}
		if !almost(got, want) {
			t.Errorf("Incr Exectime(%s) = %v, oracle %v", n.Name, got, want)
		}
	}
}

func TestIncrMatchesEstimator(t *testing.T) {
	g := buildGraph(t)
	for _, opt := range []Options{{}, {Mode: Min}, {Mode: Max}} {
		for _, mk := range []func(testing.TB, *core.Graph) *core.Partition{
			func(tb testing.TB, g *core.Graph) *core.Partition { return allCPU(t, g) },
			func(tb testing.TB, g *core.Graph) *core.Partition { return hwSplit(t, g) },
		} {
			pt := mk(t, g)
			checkIncrMatches(t, g, pt, incrFor(t, g, pt, opt), opt)
		}
	}
}

// TestIncrTracksMoves refreshes only the affected region after each node
// move and checks every value against a fresh estimator each time.
func TestIncrTracksMoves(t *testing.T) {
	g := buildGraph(t)
	pt := allCPU(t, g)
	opt := Options{}
	deps, err := NewDeps(g)
	if err != nil {
		t.Fatal(err)
	}
	snap := deps.Snapshot()
	in := NewIncr(deps, opt)
	asg := core.NewAssignment(snap)
	if err := snap.Capture(pt, asg); err != nil {
		t.Fatal(err)
	}
	if err := in.Bind(asg); err != nil {
		t.Fatal(err)
	}

	cpu, asic := g.ProcByName("cpu"), g.ProcByName("asic")
	moves := []struct {
		node string
		to   *core.Processor
	}{
		{"sub", asic}, {"arr", asic}, {"v", asic}, {"sub", cpu}, {"arr", cpu}, {"main", asic},
	}
	for _, m := range moves {
		n := g.NodeByName(m.node)
		if err := pt.Assign(n, m.to); err != nil {
			t.Fatal(err)
		}
		// Mirror the move into the assignment vector — one int32 store —
		// and refresh only the affected region.
		ni := snap.NodeID(m.node)
		asg.NodeComp[ni] = snap.CompID(m.to.Name)
		if err := in.RecomputeAffected(deps.Affected(ni)); err != nil {
			t.Fatal(err)
		}
		checkIncrMatches(t, g, pt, in, opt)
	}
}

// TestIncrConcurrencyTags checks the per-group max of tagged channels
// against the full estimator.
func TestIncrConcurrencyTags(t *testing.T) {
	g := core.NewGraph("tags")
	main := &core.Node{Name: "main", Kind: core.BehaviorNode, IsProcess: true}
	a := &core.Node{Name: "a", Kind: core.VariableNode, StorageBits: 8}
	b := &core.Node{Name: "b", Kind: core.VariableNode, StorageBits: 8}
	for _, n := range []*core.Node{main, a, b} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	main.SetICT("proc10", 10)
	main.SetSize("proc10", 100)
	for _, n := range []*core.Node{a, b} {
		n.SetICT("proc10", 0.2)
		n.SetSize("proc10", 1)
	}
	for _, c := range []*core.Channel{
		{Src: main, Dst: a, AccFreq: 4, Bits: 16, Tag: 7},
		{Src: main, Dst: b, AccFreq: 2, Bits: 16, Tag: 7},
	} {
		if err := g.AddChannel(c); err != nil {
			t.Fatal(err)
		}
	}
	g.AddProcessor(&core.Processor{Name: "cpu", TypeName: "proc10", SizeCon: 4096, PinCon: 40})
	g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})

	pt := core.AllToProcessor(g, g.ProcByName("cpu"), g.Buses[0])
	for _, opt := range []Options{{}, {UseTags: true}} {
		in := incrFor(t, g, pt, opt)
		checkIncrMatches(t, g, pt, in, opt)
	}
}
