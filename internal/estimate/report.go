package estimate

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// This file emits reports in machine-readable forms: CSV for spreadsheets
// and pipelines, Markdown for documents. Both carry exactly the fields of
// Report; String() remains the aligned-text form for terminals.

// WriteCSV emits three record groups — components, buses, processes — each
// with a leading header row whose first column names the group.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()

	if err := cw.Write([]string{"component", "type", "custom", "size", "sizecon", "io", "pincon", "nodes", "violated"}); err != nil {
		return err
	}
	for _, c := range r.Comps {
		if err := cw.Write([]string{
			c.Name, c.Type, strconv.FormatBool(c.Custom),
			fmtF(c.Size), fmtF(c.SizeCon),
			strconv.Itoa(c.IO), strconv.Itoa(c.PinCon), strconv.Itoa(c.Nodes),
			strconv.FormatBool(c.SizeViolated() || c.PinViolated()),
		}); err != nil {
			return err
		}
	}
	if err := cw.Write([]string{"bus", "bitrate_bits_per_us", "channels"}); err != nil {
		return err
	}
	for _, b := range r.Buses {
		if err := cw.Write([]string{b.Name, fmtF(b.Bitrate), strconv.Itoa(b.Channels)}); err != nil {
			return err
		}
	}
	if err := cw.Write([]string{"process", "exectime_us"}); err != nil {
		return err
	}
	for _, p := range r.Processes {
		if err := cw.Write([]string{p.Name, fmtF(p.Exectime)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown emits the report as GitHub-flavored Markdown tables.
func (r *Report) WriteMarkdown(w io.Writer) error {
	write := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := write("| component | type | size | sizecon | io | pins | nodes |\n|---|---|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, c := range r.Comps {
		mark := ""
		if c.SizeViolated() || c.PinViolated() {
			mark = " ⚠"
		}
		if err := write("| %s%s | %s | %.1f | %.1f | %d | %d | %d |\n",
			c.Name, mark, c.Type, c.Size, c.SizeCon, c.IO, c.PinCon, c.Nodes); err != nil {
			return err
		}
	}
	if err := write("\n| bus | bitrate (bits/µs) | channels |\n|---|---|---|\n"); err != nil {
		return err
	}
	for _, b := range r.Buses {
		if err := write("| %s | %.3f | %d |\n", b.Name, b.Bitrate, b.Channels); err != nil {
			return err
		}
	}
	if err := write("\n| process | exectime (µs) |\n|---|---|\n"); err != nil {
		return err
	}
	for _, p := range r.Processes {
		if err := write("| %s | %.3f |\n", p.Name, p.Exectime); err != nil {
			return err
		}
	}
	return nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
