package estimate

import (
	"sync"

	"specsyn/internal/core"
)

// DepsCache memoizes the compiled snapshot and dependency index of the
// current graph across estimator and evaluator constructions, keyed by
// graph identity. It exists for the interactive reload loop: an
// incremental rebuild that finds no semantic change keeps the graph
// pointer, so the next partition search reuses the compiled state instead
// of paying NewDeps again; any new graph pointer naturally misses and
// replaces the entry. One entry suffices — a session has one current
// graph — and errors are cached too, so a recursive design does not
// recompile on every search just to fail again.
//
// The zero value is ready to use. Safe for concurrent use.
type DepsCache struct {
	mu   sync.Mutex
	g    *core.Graph
	deps *Deps
	err  error
}

// For returns the dependency index compiled from g, building it on the
// first call for this graph pointer and serving the memoized result on
// subsequent calls.
func (c *DepsCache) For(g *core.Graph) (*Deps, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.g == g {
		return c.deps, c.err
	}
	deps, err := NewDeps(g)
	c.g, c.deps, c.err = g, deps, err
	return deps, err
}

// Invalidate drops the cached entry. Needed only when a graph is mutated
// in place under the same pointer — the copy-on-write rebuild never does
// that, but external graph surgery must call this before the next For.
func (c *DepsCache) Invalidate() {
	c.mu.Lock()
	c.g, c.deps, c.err = nil, nil, nil
	c.mu.Unlock()
}
