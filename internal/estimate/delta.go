// This file implements the incremental execution-time engine behind
// partition's delta evaluator: a static reverse dependency index over the
// access graph (Deps, built on the compiled core.Snapshot) plus a dense
// array of per-node Exectime values (Incr) that a caller updates for just
// the nodes a move affects, instead of re-walking the whole graph. It is
// the update-not-reanalyze discipline of §4 applied to the partitioning
// inner loop, and since the snapshot refactor the recompute itself is pure
// array arithmetic: no partition maps, no annotation-map hashing.

package estimate

import (
	"fmt"
	"math"
	"sort"

	"specsyn/internal/core"
)

// Deps is the static dependency structure of a graph's access relation: a
// callee-first topological order plus, per node, the topologically sorted
// set of nodes whose Exectime transitively depends on it (the node itself
// included). It is partition-independent — build it once per graph and
// reuse it across searches; it also owns the graph's compiled Snapshot,
// which every consumer (Incr, partition.DeltaEval, parallel workers)
// shares read-only. Building fails on a recursive (cyclic) access graph,
// for which incremental update is undefined; callers fall back to the
// full estimator, which reports the cycle precisely (or tolerates it
// under Options.IgnoreRecursion).
type Deps struct {
	g        *core.Graph
	snap     *core.Snapshot
	idx      map[*core.Node]int32
	pos      []int32   // topological position per node index
	order    []int32   // node indices, callees before callers
	affected [][]int32 // node index → topo-sorted dependents incl. self
}

// NewDeps compiles g and indexes its access relation. The graph must not
// gain or lose nodes or channels while the index is in use.
func NewDeps(g *core.Graph) (*Deps, error) {
	snap, err := core.Compile(g)
	if err != nil {
		return nil, err
	}
	n := snap.NumNodes()
	d := &Deps{
		g:    g,
		snap: snap,
		idx:  make(map[*core.Node]int32, n),
		pos:  make([]int32, n),
	}
	for i, nd := range g.Nodes {
		d.idx[nd] = int32(i)
	}
	// dependents[v] lists the nodes whose Commtime reads Exectime(v);
	// ndeps[u] counts u's outstanding callees. Channel keys are unique per
	// (src, dst), so no edge is recorded twice.
	dependents := make([][]int32, n)
	ndeps := make([]int32, n)
	for ci := 0; ci < snap.NumChans(); ci++ {
		v := snap.ChanDst[ci]
		if v < 0 {
			continue // port access: transfer time only, no Exectime dependency
		}
		u := snap.ChanSrc[ci]
		if u == v {
			return nil, fmt.Errorf("estimate: access graph cycle (recursion) through %q", snap.NodeNames[v])
		}
		ndeps[u]++
		dependents[v] = append(dependents[v], u)
	}
	// Kahn's algorithm, callees first. The FIFO queue seeded in node order
	// keeps the order deterministic.
	queue := make([]int32, 0, n)
	for i := range ndeps {
		if ndeps[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	d.order = make([]int32, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d.pos[v] = int32(len(d.order))
		d.order = append(d.order, v)
		for _, u := range dependents[v] {
			if ndeps[u]--; ndeps[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(d.order) != n {
		return nil, fmt.Errorf("estimate: access graph of %q has a cycle (recursion)", g.Name)
	}
	// Per-node transitive closure of dependents, sorted topologically so
	// that recomputing a closure in slice order never reads a stale callee.
	d.affected = make([][]int32, n)
	seen := make([]bool, n)
	stack := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		aff := make([]int32, 0, 1+len(dependents[i]))
		stack = append(stack[:0], int32(i))
		seen[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			aff = append(aff, v)
			for _, u := range dependents[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Slice(aff, func(a, b int) bool { return d.pos[aff[a]] < d.pos[aff[b]] })
		d.affected[i] = aff
		for _, v := range aff {
			seen[v] = false
		}
	}
	return d, nil
}

// Graph returns the graph the index is over.
func (d *Deps) Graph() *core.Graph { return d.g }

// Snapshot returns the graph's compiled snapshot. It is immutable and safe
// to share across goroutines.
func (d *Deps) Snapshot() *core.Snapshot { return d.snap }

// Len returns the node count.
func (d *Deps) Len() int { return len(d.pos) }

// Index returns the dense node index of n.
func (d *Deps) Index(n *core.Node) (int32, bool) {
	i, ok := d.idx[n]
	return i, ok
}

// Node returns the node at dense index i.
func (d *Deps) Node(i int32) *core.Node { return d.g.Nodes[i] }

// Order returns every node index callee-first; recomputing Exectime in
// this order never reads a stale callee.
func (d *Deps) Order() []int32 { return d.order }

// Affected returns the indices of the nodes whose Exectime depends on node
// i, including i itself, topologically sorted callee-first. The slice is
// owned by the index; callers must not modify it.
func (d *Deps) Affected(i int32) []int32 { return d.affected[i] }

// Incr holds one Exectime value per node for a bound assignment and
// recomputes them incrementally: after a node move, refreshing just
// Deps.Affected(moved) restores every value — O(affected region), not
// O(graph). Each refreshed value is recomputed from scratch with the same
// per-channel summation the full estimator's Commtime performs, so
// incremental values accumulate no floating-point drift of their own.
//
// The engine reads the design through the compiled Snapshot and the
// partition through a core.Assignment vector — the recompute loop is pure
// index arithmetic over flat arrays. An Incr is bound to one assignment at
// a time via Bind and is not safe for concurrent use (the Deps/Snapshot it
// reads are shareable; the Incr's scratch is not).
type Incr struct {
	deps *Deps
	snap *core.Snapshot
	opt  Options
	asg  *core.Assignment

	nc   int       // snapshot component count
	et   []float64 // Exectime per node index
	freq []float64 // per channel: access count under opt.Mode

	// Concurrency-tag groups (Options.UseTags): group index per
	// out-channel (parallel to Snapshot.OutChan; -1 = sequential), group
	// count per node, and a shared running-max scratch sized for the
	// largest group count.
	grp  []int32
	ngrp []int32
	gmax []float64
}

// NewIncr returns an incremental engine over deps. Bind an assignment
// before reading values.
func NewIncr(deps *Deps, opt Options) *Incr {
	snap := deps.Snapshot()
	n := snap.NumNodes()
	in := &Incr{
		deps: deps,
		snap: snap,
		opt:  opt,
		nc:   snap.NumComps(),
		et:   make([]float64, n),
		freq: make([]float64, snap.NumChans()),
		grp:  make([]int32, len(snap.OutChan)),
		ngrp: make([]int32, n),
	}
	for ci := 0; ci < snap.NumChans(); ci++ {
		in.freq[ci] = chanFreq(snap, opt.Mode, int32(ci))
	}
	maxGroups := int32(0)
	var byTag map[int32]int32
	for i := 0; i < n; i++ {
		var groups int32
		for t := range byTag {
			delete(byTag, t)
		}
		for k := snap.OutStart[i]; k < snap.OutStart[i+1]; k++ {
			in.grp[k] = -1
			tag := snap.ChanTag[snap.OutChan[k]]
			if opt.UseTags && tag != core.NoTag {
				// Group indices in first-appearance order: deterministic,
				// unlike the full estimator's map-ordered group sum (the
				// two agree up to summation order).
				if byTag == nil {
					byTag = make(map[int32]int32)
				}
				gi, ok := byTag[tag]
				if !ok {
					gi = groups
					groups++
					byTag[tag] = gi
				}
				in.grp[k] = gi
			}
		}
		in.ngrp[i] = groups
		if groups > maxGroups {
			maxGroups = groups
		}
	}
	in.gmax = make([]float64, maxGroups)
	return in
}

// chanFreq mirrors Options.Freq on snapshot arrays: min/max annotations
// that were never set (are zero) fall back to the average, independently.
func chanFreq(s *core.Snapshot, mode Mode, ci int32) float64 {
	switch mode {
	case Min:
		if s.ChanMin[ci] != 0 {
			return s.ChanMin[ci]
		}
	case Max:
		if s.ChanMax[ci] != 0 {
			return s.ChanMax[ci]
		}
	}
	return s.ChanFreq[ci]
}

// Deps returns the dependency index the engine was built over.
func (in *Incr) Deps() *Deps { return in.deps }

// Bind points the engine at an assignment (over the same snapshot) and
// recomputes every node's Exectime callee-first — O(|BV| + |C|). After a
// Bind, RecomputeAffected keeps the values current move by move. The
// engine reads the assignment live: callers that mutate it must refresh
// the affected region before the next read.
func (in *Incr) Bind(a *core.Assignment) error {
	in.asg = a
	return in.RecomputeAffected(in.deps.order)
}

// RecomputeAffected refreshes Exectime for the given node indices, which
// must be sorted callee-first (Deps.Affected and Deps.Order both are).
func (in *Incr) RecomputeAffected(order []int32) error {
	for _, i := range order {
		if err := in.recompute(i); err != nil {
			return err
		}
	}
	return nil
}

// Et returns the current Exectime of the node with dense index i.
func (in *Incr) Et(i int32) float64 { return in.et[i] }

// Exectime returns the current Exectime of n.
func (in *Incr) Exectime(n *core.Node) (float64, bool) {
	i, ok := in.deps.Index(n)
	if !ok {
		return 0, false
	}
	return in.et[i], true
}

// recompute evaluates eq. 1 for one node from its callees' current values,
// entirely from the snapshot arrays and the bound assignment vector.
func (in *Incr) recompute(i int32) error {
	s := in.snap
	ci := in.asg.NodeComp[i]
	if ci < 0 {
		return fmt.Errorf("estimate: node %q is not mapped to a component", s.NodeNames[i])
	}
	ict := s.ICT[int(i)*in.nc+int(ci)]
	if math.IsNaN(ict) { // no annotation for the component's type
		return fmt.Errorf("estimate: node %q has no ict weight for component type %q", s.NodeNames[i], s.TypeNames[s.CompType[ci]])
	}
	if s.NodeKind[i] != core.BehaviorNode {
		in.et[i] = ict
		return nil
	}
	ng := in.ngrp[i]
	for k := int32(0); k < ng; k++ {
		in.gmax[k] = 0
	}
	var total float64
	for k := s.OutStart[i]; k < s.OutStart[i+1]; k++ {
		ch := s.OutChan[k]
		// TransferTime (eq. 1): the same semantics as the full
		// estimator's transferTime — an unmapped bus is an error even for
		// zero-bit channels, a zero-bit access costs nothing, and a
		// non-positive width is an error, never a divide-by-zero.
		bi := in.asg.ChanBus[ch]
		if bi < 0 {
			return fmt.Errorf("estimate: channel %s is not mapped to a bus", s.ChanKey(ch))
		}
		var tt float64
		if bits := s.ChanBits[ch]; bits != 0 {
			w := s.BusWidth[bi]
			if w <= 0 {
				return fmt.Errorf("estimate: channel %s: bus %q has non-positive bitwidth %d", s.ChanKey(ch), s.BusNames[bi], w)
			}
			transfers := (bits + w - 1) / w
			di := s.ChanDst[ch]
			bdt := s.BusTD[bi]
			if di >= 0 && in.asg.NodeComp[di] == ci {
				bdt = s.BusTS[bi]
			}
			tt = bdt * float64(transfers)
		}
		var dstTime float64
		if di := s.ChanDst[ch]; di >= 0 {
			dstTime = in.et[di]
		}
		cost := in.freq[ch] * (tt + dstTime)
		if gi := in.grp[k]; gi >= 0 {
			if cost > in.gmax[gi] {
				in.gmax[gi] = cost
			}
		} else {
			total += cost
		}
	}
	for k := int32(0); k < ng; k++ {
		total += in.gmax[k]
	}
	in.et[i] = ict + total
	return nil
}
