// This file implements the incremental execution-time engine behind
// partition's delta evaluator: a static reverse dependency index over the
// access graph (Deps) plus a dense array of per-node Exectime values
// (Incr) that a caller updates for just the nodes a move affects, instead
// of re-walking the whole graph. It is the update-not-reanalyze discipline
// of §4 applied to the partitioning inner loop.

package estimate

import (
	"fmt"
	"sort"

	"specsyn/internal/core"
)

// Deps is the static dependency structure of a graph's access relation: a
// callee-first topological order plus, per node, the topologically sorted
// set of nodes whose Exectime transitively depends on it (the node itself
// included). It is partition-independent — build it once per graph and
// reuse it across searches. Building fails on a recursive (cyclic) access
// graph, for which incremental update is undefined; callers fall back to
// the full estimator, which reports the cycle precisely (or tolerates it
// under Options.IgnoreRecursion).
type Deps struct {
	g        *core.Graph
	idx      map[*core.Node]int32
	pos      []int32   // topological position per node index
	order    []int32   // node indices, callees before callers
	affected [][]int32 // node index → topo-sorted dependents incl. self
}

// NewDeps indexes g's access relation. The graph must not gain or lose
// nodes or channels while the index is in use.
func NewDeps(g *core.Graph) (*Deps, error) {
	n := len(g.Nodes)
	d := &Deps{
		g:   g,
		idx: make(map[*core.Node]int32, n),
		pos: make([]int32, n),
	}
	for i, nd := range g.Nodes {
		d.idx[nd] = int32(i)
	}
	// dependents[v] lists the nodes whose Commtime reads Exectime(v);
	// ndeps[u] counts u's outstanding callees. Channel keys are unique per
	// (src, dst), so no edge is recorded twice.
	dependents := make([][]int32, n)
	ndeps := make([]int32, n)
	for _, c := range g.Channels {
		dst, ok := c.Dst.(*core.Node)
		if !ok {
			continue // port access: transfer time only, no Exectime dependency
		}
		u, v := d.idx[c.Src], d.idx[dst]
		if u == v {
			return nil, fmt.Errorf("estimate: access graph cycle (recursion) through %q", dst.Name)
		}
		ndeps[u]++
		dependents[v] = append(dependents[v], u)
	}
	// Kahn's algorithm, callees first. The FIFO queue seeded in node order
	// keeps the order deterministic.
	queue := make([]int32, 0, n)
	for i := range ndeps {
		if ndeps[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	d.order = make([]int32, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d.pos[v] = int32(len(d.order))
		d.order = append(d.order, v)
		for _, u := range dependents[v] {
			if ndeps[u]--; ndeps[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(d.order) != n {
		return nil, fmt.Errorf("estimate: access graph of %q has a cycle (recursion)", g.Name)
	}
	// Per-node transitive closure of dependents, sorted topologically so
	// that recomputing a closure in slice order never reads a stale callee.
	d.affected = make([][]int32, n)
	seen := make([]bool, n)
	stack := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		aff := make([]int32, 0, 1+len(dependents[i]))
		stack = append(stack[:0], int32(i))
		seen[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			aff = append(aff, v)
			for _, u := range dependents[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Slice(aff, func(a, b int) bool { return d.pos[aff[a]] < d.pos[aff[b]] })
		d.affected[i] = aff
		for _, v := range aff {
			seen[v] = false
		}
	}
	return d, nil
}

// Graph returns the graph the index is over.
func (d *Deps) Graph() *core.Graph { return d.g }

// Len returns the node count.
func (d *Deps) Len() int { return len(d.pos) }

// Index returns the dense node index of n.
func (d *Deps) Index(n *core.Node) (int32, bool) {
	i, ok := d.idx[n]
	return i, ok
}

// Node returns the node at dense index i.
func (d *Deps) Node(i int32) *core.Node { return d.g.Nodes[i] }

// Order returns every node index callee-first; recomputing Exectime in
// this order never reads a stale callee.
func (d *Deps) Order() []int32 { return d.order }

// Affected returns the indices of the nodes whose Exectime depends on node
// i, including i itself, topologically sorted callee-first. The slice is
// owned by the index; callers must not modify it.
func (d *Deps) Affected(i int32) []int32 { return d.affected[i] }

// Incr holds one Exectime value per node for a bound partition and
// recomputes them incrementally: after a node move, refreshing just
// Deps.Affected(moved) restores every value — O(affected region), not
// O(graph). Each refreshed value is recomputed from scratch with the same
// per-channel summation the full estimator's Commtime performs, so
// incremental values accumulate no floating-point drift of their own.
//
// An Incr is bound to one partition at a time via Rebind and is not safe
// for concurrent use.
type Incr struct {
	deps *Deps
	opt  Options
	pt   *core.Partition

	et  []float64         // Exectime per node index
	out [][]*core.Channel // BehChans per node index
	dst [][]int32         // destination node index per out-channel; -1 = port

	// Concurrency-tag groups (Options.UseTags): group index per
	// out-channel (-1 = sequential), group count per node, and a shared
	// running-max scratch sized for the largest group count.
	grp  [][]int32
	ngrp []int32
	gmax []float64
}

// NewIncr returns an incremental engine over deps. Bind a partition with
// Rebind before reading values.
func NewIncr(deps *Deps, opt Options) *Incr {
	n := deps.Len()
	in := &Incr{
		deps: deps,
		opt:  opt,
		et:   make([]float64, n),
		out:  make([][]*core.Channel, n),
		dst:  make([][]int32, n),
		grp:  make([][]int32, n),
		ngrp: make([]int32, n),
	}
	maxGroups := int32(0)
	for i, nd := range deps.g.Nodes {
		chans := deps.g.BehChans(nd)
		in.out[i] = chans
		dst := make([]int32, len(chans))
		grp := make([]int32, len(chans))
		var groups int32
		var byTag map[int]int32
		for k, c := range chans {
			dst[k] = -1
			if dn, ok := c.Dst.(*core.Node); ok {
				dst[k], _ = deps.Index(dn)
			}
			grp[k] = -1
			if opt.UseTags && c.Tag != core.NoTag {
				// Group indices in first-appearance order: deterministic,
				// unlike the full estimator's map-ordered group sum (the
				// two agree up to summation order).
				if byTag == nil {
					byTag = make(map[int]int32)
				}
				gi, ok := byTag[c.Tag]
				if !ok {
					gi = groups
					groups++
					byTag[c.Tag] = gi
				}
				grp[k] = gi
			}
		}
		in.dst[i] = dst
		in.grp[i] = grp
		in.ngrp[i] = groups
		if groups > maxGroups {
			maxGroups = groups
		}
	}
	in.gmax = make([]float64, maxGroups)
	return in
}

// Rebind points the engine at a partition (over the same graph) and
// recomputes every node's Exectime callee-first — O(|BV| + |C|). After a
// Rebind, RecomputeAffected keeps the values current move by move.
func (in *Incr) Rebind(pt *core.Partition) error {
	in.pt = pt
	return in.RecomputeAffected(in.deps.order)
}

// RecomputeAffected refreshes Exectime for the given node indices, which
// must be sorted callee-first (Deps.Affected and Deps.Order both are).
func (in *Incr) RecomputeAffected(order []int32) error {
	for _, i := range order {
		if err := in.recompute(i); err != nil {
			return err
		}
	}
	return nil
}

// Et returns the current Exectime of the node with dense index i.
func (in *Incr) Et(i int32) float64 { return in.et[i] }

// Exectime returns the current Exectime of n.
func (in *Incr) Exectime(n *core.Node) (float64, bool) {
	i, ok := in.deps.Index(n)
	if !ok {
		return 0, false
	}
	return in.et[i], true
}

// recompute evaluates eq. 1 for one node from its callees' current values.
func (in *Incr) recompute(i int32) error {
	n := in.deps.g.Nodes[i]
	comp := in.pt.BvComp(n)
	if comp == nil {
		return fmt.Errorf("estimate: node %q is not mapped to a component", n.Name)
	}
	ict, ok := n.ICT[comp.TypeKey()]
	if !ok {
		return fmt.Errorf("estimate: node %q has no ict weight for component type %q", n.Name, comp.TypeKey())
	}
	if !n.IsBehavior() {
		in.et[i] = ict
		return nil
	}
	grp := in.grp[i]
	dst := in.dst[i]
	ng := in.ngrp[i]
	for k := int32(0); k < ng; k++ {
		in.gmax[k] = 0
	}
	var total float64
	for k, c := range in.out[i] {
		dc := in.pt.DstComp(c)
		tt, err := transferTime(c, in.pt.ChanBus(c), dc != nil && comp == dc)
		if err != nil {
			return err
		}
		var dstTime float64
		if di := dst[k]; di >= 0 {
			dstTime = in.et[di]
		}
		cost := in.opt.Freq(c) * (tt + dstTime)
		if gi := grp[k]; gi >= 0 {
			if cost > in.gmax[gi] {
				in.gmax[gi] = cost
			}
		} else {
			total += cost
		}
	}
	for k := int32(0); k < ng; k++ {
		total += in.gmax[k]
	}
	in.et[i] = ict + total
	return nil
}
