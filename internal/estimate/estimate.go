// Package estimate computes the §3 design metrics of the SLIF paper from a
// (Graph, Partition) pair: execution time (eq. 1), channel and bus bitrate
// (eqs. 2–3), software/hardware/memory size (eqs. 4–5) and component I/O
// (eq. 6). Everything is table lookups, sums and one memoized traversal —
// no re-analysis of the specification — which is the point of SLIF's
// preprocessed annotations.
package estimate

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"specsyn/internal/core"
)

// Mode selects which access-count annotation drives the estimate (§2.4.1
// defines average, minimum and maximum access frequencies).
type Mode int

// Estimation modes.
const (
	Avg Mode = iota
	Min
	Max
)

func (m Mode) String() string {
	switch m {
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return "avg"
	}
}

// Options tune the estimator beyond the paper's baseline equations. The
// zero value reproduces the paper exactly.
type Options struct {
	// Mode selects average (default), minimum or maximum access counts.
	Mode Mode

	// UseTags enables the concurrency extension: same-source channels that
	// share a concurrency tag (§2.3) are assumed to overlap, so the group
	// contributes its maximum rather than its sum to communication time.
	// The paper's baseline ("the simplest method") assumes all accesses
	// are sequential; leave false to reproduce it.
	UseTags bool

	// SharingFactor, in [0,1), discounts summed size on *custom* processors
	// to approximate hardware sharing (the paper's ref [1] problem). 0
	// reproduces the paper's stated sum-of-weights assumption.
	SharingFactor float64

	// ClampBusBitrate caps each bus's reported bitrate at its physical
	// capacity (bitwidth over the smallest positive transfer time, see
	// BusCapacity), the simple form of the paper's ref [2] extension. False
	// reproduces eqs. 2–3 exactly.
	ClampBusBitrate bool

	// IgnoreRecursion makes a recursive access-graph cycle contribute zero
	// execution time for the back edge instead of failing; the paper notes
	// cycles denote recursion but gives no equation for them.
	IgnoreRecursion bool
}

// Estimator evaluates the §3 metric equations. It memoizes Exectime per
// behavior, so estimating every metric for a partition costs O(|BV| + |C|).
// An Estimator is bound to one partition state: create a new one (or call
// Reset / Rebind) after changing the partition. Rebind reuses the memo
// storage, so a search loop that estimates thousands of candidate
// partitions pays for the maps once, not per candidate.
type Estimator struct {
	g    *core.Graph
	pt   *core.Partition
	opt  Options
	memo map[*core.Node]float64
	path map[*core.Node]bool // cycle detection stack
}

// New returns an estimator over g with partition pt.
func New(g *core.Graph, pt *core.Partition, opt Options) *Estimator {
	return &Estimator{
		g: g, pt: pt, opt: opt,
		memo: make(map[*core.Node]float64),
		path: make(map[*core.Node]bool),
	}
}

// Reset discards memoized results; call after mutating the partition. The
// map storage is retained and reused.
func (e *Estimator) Reset() {
	clear(e.memo)
	clear(e.path)
}

// Rebind points the estimator at a different partition (over the same
// graph) and discards memoized results, reusing the allocated maps. It is
// the allocation-free alternative to New for hot search loops.
func (e *Estimator) Rebind(pt *core.Partition) {
	e.pt = pt
	e.Reset()
}

// Freq returns the channel's access count under the options' mode. A min
// or max annotation that was never set (is zero) falls back to the average,
// each independently: a channel carrying only an AccMax still estimates
// with AccFreq in Min mode, never with a spurious zero.
func (o Options) Freq(c *core.Channel) float64 {
	switch o.Mode {
	case Min:
		if c.AccMin != 0 {
			return c.AccMin
		}
	case Max:
		if c.AccMax != 0 {
			return c.AccMax
		}
	}
	return c.AccFreq
}

// freq returns the access count for the selected mode.
func (e *Estimator) freq(c *core.Channel) float64 { return e.opt.Freq(c) }

// transferTime is TransferTime(c, p) of eq. 1 given the channel's bus and
// whether both endpoints share a component — the shared core of the full
// estimator and the incremental engine. A zero-bit (control-only) access
// costs nothing regardless of the bus; any other access over a bus with a
// non-positive width is an error, never a divide-by-zero.
func transferTime(c *core.Channel, bus *core.Bus, sameComp bool) (float64, error) {
	if bus == nil {
		return 0, fmt.Errorf("estimate: channel %s is not mapped to a bus", c.Key())
	}
	if c.Bits == 0 {
		return 0, nil // control-only access (e.g. parameterless call)
	}
	if bus.BitWidth <= 0 {
		return 0, fmt.Errorf("estimate: channel %s: bus %q has non-positive bitwidth %d", c.Key(), bus.Name, bus.BitWidth)
	}
	transfers := (c.Bits + bus.BitWidth - 1) / bus.BitWidth
	bdt := bus.TD
	if sameComp {
		bdt = bus.TS
	}
	return bdt * float64(transfers), nil
}

// TransferTime implements TransferTime(c, p) of eq. 1: the bus data
// transfer time (ts within one component, td across components) times the
// number of physical transfers, ceil(bits / bitwidth).
func (e *Estimator) TransferTime(c *core.Channel) (float64, error) {
	src, dst := e.pt.BvComp(c.Src), e.pt.DstComp(c)
	return transferTime(c, e.pt.ChanBus(c), dst != nil && src == dst)
}

// Exectime implements eq. 1 for a behavior node, and for a variable node
// returns its storage access time on its mapped component. The access
// graph must be acyclic unless Options.IgnoreRecursion is set.
func (e *Estimator) Exectime(n *core.Node) (float64, error) {
	if v, ok := e.memo[n]; ok {
		return v, nil
	}
	if e.path[n] {
		if e.opt.IgnoreRecursion {
			return 0, nil
		}
		return 0, fmt.Errorf("estimate: access graph cycle (recursion) through %q", n.Name)
	}
	comp := e.pt.BvComp(n)
	if comp == nil {
		return 0, fmt.Errorf("estimate: node %q is not mapped to a component", n.Name)
	}
	ict, ok := e.pt.BvIct(n, comp)
	if !ok {
		return 0, fmt.Errorf("estimate: node %q has no ict weight for component type %q", n.Name, comp.TypeKey())
	}
	if !n.IsBehavior() {
		e.memo[n] = ict
		return ict, nil
	}

	e.path[n] = true
	defer delete(e.path, n)

	comm, err := e.commTime(n)
	if err != nil {
		return 0, err
	}
	total := ict + comm
	e.memo[n] = total
	return total, nil
}

// commTime implements Commtime(b) of eq. 1: Σ over accessed channels of
// freq × (TransferTime + Exectime(dst)). With UseTags, same-tag channel
// groups contribute their max instead of their sum.
func (e *Estimator) commTime(b *core.Node) (float64, error) {
	var total float64
	tagged := map[int]float64{} // tag → max cost within the concurrent group
	for _, c := range e.g.BehChans(b) {
		tt, err := e.TransferTime(c)
		if err != nil {
			return 0, err
		}
		var dstTime float64
		if d, ok := c.Dst.(*core.Node); ok {
			// External ports respond within the transfer itself; nodes
			// contribute their own execution (or storage-access) time.
			dstTime, err = e.Exectime(d)
			if err != nil {
				return 0, err
			}
		}
		cost := e.freq(c) * (tt + dstTime)
		if e.opt.UseTags && c.Tag != core.NoTag {
			tagged[c.Tag] = math.Max(tagged[c.Tag], cost)
		} else {
			total += cost
		}
	}
	for _, v := range tagged {
		total += v
	}
	return total, nil
}

// ChanBitrate implements eq. 2: bits transferred per unit time over the
// channel during one start-to-finish execution of its source behavior. The
// result is in bits/µs (= Mbit/s) given µs ict weights.
func (e *Estimator) ChanBitrate(c *core.Channel) (float64, error) {
	et, err := e.Exectime(c.Src)
	if err != nil {
		return 0, err
	}
	volume := e.freq(c) * float64(c.Bits)
	if volume == 0 {
		return 0, nil
	}
	if et == 0 {
		return 0, fmt.Errorf("estimate: channel %s source %q has zero execution time but non-zero traffic", c.Key(), c.Src.Name)
	}
	return volume / et, nil
}

// BusBitrate implements eq. 3: the sum of the bitrates of the channels
// mapped to the bus, optionally clamped at physical capacity.
func (e *Estimator) BusBitrate(b *core.Bus) (float64, error) {
	var sum float64
	for _, c := range e.g.Channels {
		if e.pt.ChanBus(c) != b {
			continue
		}
		br, err := e.ChanBitrate(c)
		if err != nil {
			return 0, err
		}
		sum += br
	}
	if e.opt.ClampBusBitrate {
		if capacity, ok := BusCapacity(b); ok && sum > capacity {
			sum = capacity
		}
	}
	return sum, nil
}

// BusCapacity returns the physical capacity of a bus in bits/µs: bitwidth
// divided by the smallest positive per-transfer time. A TS-only bus
// (TD == 0, TS > 0) is still capacity-limited by TS. ok is false when the
// bus has no positive transfer time or width, i.e. no finite capacity.
func BusCapacity(b *core.Bus) (capacity float64, ok bool) {
	t := b.TD
	if t <= 0 || (b.TS > 0 && b.TS < t) {
		t = b.TS
	}
	if t <= 0 || b.BitWidth <= 0 {
		return 0, false
	}
	return float64(b.BitWidth) / t, true
}

// Size implements eqs. 4–5: the sum of the size weights, on the component's
// type, of every node mapped to the component. For custom processors a
// non-zero SharingFactor discounts the sum (hardware-sharing ablation).
func (e *Estimator) Size(comp core.Component) (float64, error) {
	var sum float64
	for _, n := range e.pt.NodesOn(comp) {
		w, ok := e.pt.BvSize(n, comp)
		if !ok {
			return 0, fmt.Errorf("estimate: node %q has no size weight for component type %q", n.Name, comp.TypeKey())
		}
		sum += w
	}
	if p, ok := comp.(*core.Processor); ok && p.Custom && e.opt.SharingFactor > 0 {
		sum *= 1 - e.opt.SharingFactor
	}
	return sum, nil
}

// IO implements eq. 6: the total bitwidth of the buses that carry at least
// one channel crossing the component's boundary.
func (e *Estimator) IO(comp core.Component) int {
	total := 0
	for _, b := range e.pt.CutBuses(comp) {
		total += b.BitWidth
	}
	return total
}

// CompReport is the estimate for one processor or memory. The JSON tags
// are the serving daemon's wire format.
type CompReport struct {
	Name    string  `json:"name"`
	Type    string  `json:"type"`
	Custom  bool    `json:"custom"`
	IsMem   bool    `json:"is_mem"`
	Size    float64 `json:"size"`
	SizeCon float64 `json:"size_con"`
	IO      int     `json:"io"`
	PinCon  int     `json:"pin_con"`
	Nodes   int     `json:"nodes"`
}

// SizeViolated reports whether the size constraint is exceeded.
func (r *CompReport) SizeViolated() bool { return r.SizeCon > 0 && r.Size > r.SizeCon }

// PinViolated reports whether the pin constraint is exceeded.
func (r *CompReport) PinViolated() bool { return r.PinCon > 0 && r.IO > r.PinCon }

// BusReport is the estimate for one bus.
type BusReport struct {
	Name     string  `json:"name"`
	Bitrate  float64 `json:"bitrate"` // bits/µs
	Channels int     `json:"channels"`
}

// ProcessReport is the execution-time estimate for one process behavior.
type ProcessReport struct {
	Name     string  `json:"name"`
	Exectime float64 `json:"exectime"` // µs per start-to-finish execution
}

// Report bundles every §3 metric for a partition: what SpecSyn shows the
// designer after each allocation/partitioning step.
type Report struct {
	Comps     []CompReport    `json:"components"`
	Buses     []BusReport     `json:"buses"`
	Processes []ProcessReport `json:"processes"`
}

// Report computes all metrics for the current partition.
func (e *Estimator) Report() (*Report, error) {
	rep := &Report{}
	for _, comp := range e.g.Components() {
		sz, err := e.Size(comp)
		if err != nil {
			return nil, err
		}
		cr := CompReport{
			Name: comp.CompName(), Type: comp.TypeKey(),
			Size: sz, IO: e.IO(comp), Nodes: len(e.pt.NodesOn(comp)),
		}
		switch c := comp.(type) {
		case *core.Processor:
			cr.Custom, cr.SizeCon, cr.PinCon = c.Custom, c.SizeCon, c.PinCon
		case *core.Memory:
			cr.IsMem, cr.SizeCon = true, c.SizeCon
		}
		rep.Comps = append(rep.Comps, cr)
	}
	for _, b := range e.g.Buses {
		br, err := e.BusBitrate(b)
		if err != nil {
			return nil, err
		}
		rep.Buses = append(rep.Buses, BusReport{Name: b.Name, Bitrate: br, Channels: len(e.pt.ChansOn(b))})
	}
	for _, p := range e.g.Processes() {
		et, err := e.Exectime(p)
		if err != nil {
			return nil, err
		}
		rep.Processes = append(rep.Processes, ProcessReport{Name: p.Name, Exectime: et})
	}
	return rep, nil
}

// String renders the report as an aligned table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-10s %10s %10s %6s %6s %6s\n", "component", "type", "size", "sizecon", "io", "pins", "nodes")
	for _, c := range r.Comps {
		mark := ""
		if c.SizeViolated() || c.PinViolated() {
			mark = "  VIOLATED"
		}
		fmt.Fprintf(&sb, "%-12s %-10s %10.1f %10.1f %6d %6d %6d%s\n",
			c.Name, c.Type, c.Size, c.SizeCon, c.IO, c.PinCon, c.Nodes, mark)
	}
	for _, b := range r.Buses {
		fmt.Fprintf(&sb, "bus %-8s bitrate %.3f bits/us over %d channels\n", b.Name, b.Bitrate, b.Channels)
	}
	procs := append([]ProcessReport(nil), r.Processes...)
	sort.Slice(procs, func(i, j int) bool { return procs[i].Name < procs[j].Name })
	for _, p := range procs {
		fmt.Fprintf(&sb, "process %-12s exectime %.3f us\n", p.Name, p.Exectime)
	}
	return sb.String()
}
