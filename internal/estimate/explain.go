package estimate

import (
	"fmt"
	"sort"
	"strings"

	"specsyn/internal/core"
)

// Contribution is one term of a behavior's execution time under eq. 1:
// either the behavior's own internal computation time, or one accessed
// channel's freq × (transfer + destination) cost.
type Contribution struct {
	Label    string  // "ict" or the accessed object's name
	Freq     float64 // access count (1 for ict)
	Transfer float64 // per-access bus transfer time (µs)
	DstTime  float64 // per-access destination execution/storage time (µs)
	Total    float64 // contribution to the behavior's exectime (µs)
}

// Breakdown explains where a behavior's execution time goes, sorted by
// descending contribution. The sum of the contributions equals
// Exectime(b). This is the answer to the designer's first question after
// an estimate — "what do I move to make this faster?"
func (e *Estimator) Breakdown(b *core.Node) ([]Contribution, error) {
	comp := e.pt.BvComp(b)
	if comp == nil {
		return nil, fmt.Errorf("estimate: node %q is not mapped to a component", b.Name)
	}
	ict, ok := e.pt.BvIct(b, comp)
	if !ok {
		return nil, fmt.Errorf("estimate: node %q has no ict weight for component type %q", b.Name, comp.TypeKey())
	}
	out := []Contribution{{Label: "ict", Freq: 1, Total: ict}}
	if !b.IsBehavior() {
		return out, nil
	}
	for _, c := range e.g.BehChans(b) {
		tt, err := e.TransferTime(c)
		if err != nil {
			return nil, err
		}
		var dstTime float64
		if d, ok := c.Dst.(*core.Node); ok {
			dstTime, err = e.Exectime(d)
			if err != nil {
				return nil, err
			}
		}
		f := e.freq(c)
		out = append(out, Contribution{
			Label:    c.Dst.EndpointName(),
			Freq:     f,
			Transfer: tt,
			DstTime:  dstTime,
			Total:    f * (tt + dstTime),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out, nil
}

// FormatBreakdown renders a breakdown as an aligned table with a total row.
func FormatBreakdown(rows []Contribution) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %10s %12s %12s %12s\n", "contribution", "freq", "transfer", "dst time", "total (us)")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-24s %10.4g %12.4f %12.4f %12.3f\n",
			r.Label, r.Freq, r.Transfer, r.DstTime, r.Total)
		sum += r.Total
	}
	fmt.Fprintf(&sb, "%-24s %10s %12s %12s %12.3f\n", "= exectime", "", "", "", sum)
	return sb.String()
}
