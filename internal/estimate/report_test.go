package estimate

import (
	"bytes"
	"encoding/csv"
	"math"
	"specsyn/internal/core"
	"strings"
	"testing"
)

func TestBreakdownSumsToExectime(t *testing.T) {
	g := buildGraph(t)
	est := New(g, hwSplit(t, g), Options{})
	main := g.NodeByName("main")
	want, err := est.Exectime(main)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := est.Breakdown(main)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range rows {
		sum += r.Total
	}
	if math.Abs(sum-want) > 1e-9 {
		t.Errorf("breakdown sums to %v, exectime is %v", sum, want)
	}
	// Sorted descending, and the ict row is present.
	foundICT := false
	for i := 1; i < len(rows); i++ {
		if rows[i].Total > rows[i-1].Total+1e-12 {
			t.Errorf("rows not sorted: %v after %v", rows[i].Total, rows[i-1].Total)
		}
	}
	for _, r := range rows {
		if r.Label == "ict" {
			foundICT = true
		}
	}
	if !foundICT {
		t.Error("ict row missing")
	}
	// The heavy contributor must be the sub call (2 × (0.8 + 1.7) = 5 >
	// ict 10? no: ict 10 is the largest). Top row is ict here.
	if rows[0].Label != "ict" {
		t.Errorf("top contributor = %q, want ict", rows[0].Label)
	}
	out := FormatBreakdown(rows)
	for _, frag := range []string{"contribution", "= exectime", "ict"} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted breakdown missing %q:\n%s", frag, out)
		}
	}
}

func TestBreakdownVariable(t *testing.T) {
	g := buildGraph(t)
	est := New(g, allCPU(t, g), Options{})
	rows, err := est.Breakdown(g.NodeByName("v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Label != "ict" {
		t.Errorf("variable breakdown: %+v", rows)
	}
}

func TestBreakdownUnmapped(t *testing.T) {
	g := buildGraph(t)
	est := New(g, core.NewPartition(g), Options{})
	if _, err := est.Breakdown(g.NodeByName("main")); err == nil {
		t.Error("unmapped breakdown accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	g := buildGraph(t)
	rep, err := New(g, hwSplit(t, g), Options{}).Report()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	cr := csv.NewReader(bytes.NewReader(buf.Bytes()))
	cr.FieldsPerRecord = -1 // the three groups have different widths
	records, err := cr.ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v\n%s", err, buf.String())
	}
	// 3 headers + 3 components + 1 bus + 1 process = 8 rows.
	if len(records) != 8 {
		t.Errorf("rows = %d:\n%s", len(records), buf.String())
	}
	if records[0][0] != "component" || records[4][0] != "bus" || records[6][0] != "process" {
		t.Errorf("group headers misplaced:\n%s", buf.String())
	}
}

func TestWriteMarkdown(t *testing.T) {
	g := buildGraph(t)
	g.ProcByName("asic").SizeCon = 1 // force a violation marker
	rep, err := New(g, hwSplit(t, g), Options{}).Report()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"| component |", "| cpu |", "| asic ⚠ |", "| bus |", "| process |", "| main |"} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, out)
		}
	}
}
