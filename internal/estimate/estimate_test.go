package estimate

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"specsyn/internal/core"
)

// buildGraph constructs the reference graph used throughout:
//
//	main (process): ict 10 (proc10), 1 (asic50)
//	  ── freq 2, bits 32 ──▶ sub: ict 10/1
//	  ── freq 1, bits 8  ──▶ v (variable): ict .2/.02/.1
//	  ── freq 1, bits 8  ──▶ out1 (port)
//	sub
//	  ── freq 10, bits 15 ──▶ arr (variable)
//
// bus: 16 wires, ts=0.05, td=0.4
func buildGraph(t testing.TB) *core.Graph {
	t.Helper()
	g := core.NewGraph("est")
	main := &core.Node{Name: "main", Kind: core.BehaviorNode, IsProcess: true}
	sub := &core.Node{Name: "sub", Kind: core.BehaviorNode}
	v := &core.Node{Name: "v", Kind: core.VariableNode, StorageBits: 8}
	arr := &core.Node{Name: "arr", Kind: core.VariableNode, StorageBits: 1024}
	for _, n := range []*core.Node{main, sub, v, arr} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	out1 := &core.Port{Name: "out1", Dir: core.Out, Bits: 8}
	if err := g.AddPort(out1); err != nil {
		t.Fatal(err)
	}
	add := func(c *core.Channel) {
		if err := g.AddChannel(c); err != nil {
			t.Fatal(err)
		}
	}
	add(&core.Channel{Src: main, Dst: sub, AccFreq: 2, AccMax: 2, Bits: 32, Tag: core.NoTag})
	add(&core.Channel{Src: main, Dst: v, AccFreq: 1, AccMin: 1, AccMax: 1, Bits: 8, Tag: core.NoTag})
	add(&core.Channel{Src: main, Dst: out1, AccFreq: 1, AccMin: 1, AccMax: 1, Bits: 8, Tag: core.NoTag})
	add(&core.Channel{Src: sub, Dst: arr, AccFreq: 10, AccMax: 20, Bits: 15, Tag: core.NoTag})

	for _, n := range []*core.Node{main, sub} {
		n.SetICT("proc10", 10)
		n.SetICT("asic50", 1)
		n.SetSize("proc10", 100)
		n.SetSize("asic50", 800)
	}
	for _, n := range []*core.Node{v, arr} {
		n.SetICT("proc10", 0.2)
		n.SetICT("asic50", 0.02)
		n.SetICT("sram8", 0.1)
		n.SetSize("proc10", float64(n.StorageBits/8))
		n.SetSize("asic50", float64(n.StorageBits*8))
		n.SetSize("sram8", float64(n.StorageBits/8))
	}
	g.AddProcessor(&core.Processor{Name: "cpu", TypeName: "proc10", SizeCon: 4096, PinCon: 40})
	g.AddProcessor(&core.Processor{Name: "asic", TypeName: "asic50", Custom: true, SizeCon: 100000, PinCon: 64})
	g.AddMemory(&core.Memory{Name: "ram", TypeName: "sram8", SizeCon: 2048})
	g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})
	return g
}

// allCPU maps everything to the cpu.
func allCPU(t testing.TB, g *core.Graph) *core.Partition {
	t.Helper()
	pt := core.AllToProcessor(g, g.ProcByName("cpu"), g.Buses[0])
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	return pt
}

// hwSplit maps sub+arr to the asic, rest to the cpu.
func hwSplit(t testing.TB, g *core.Graph) *core.Partition {
	t.Helper()
	pt := allCPU(t, g)
	asic := g.ProcByName("asic")
	if err := pt.Assign(g.NodeByName("sub"), asic); err != nil {
		t.Fatal(err)
	}
	if err := pt.Assign(g.NodeByName("arr"), asic); err != nil {
		t.Fatal(err)
	}
	return pt
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestExectimeAllSoftware hand-computes eq. 1 for the all-cpu mapping.
//
//	TransferTime(main→sub)  = ceil(32/16)=2 transfers × ts .05 = .1
//	TransferTime(main→v)    = 1 × .05 = .05
//	TransferTime(main→out1) = 1 × td .4 = .4  (ports are off-component)
//	TransferTime(sub→arr)   = 1 × .05 = .05
//	Exectime(arr) = .2 (storage ict on proc10)
//	Exectime(sub) = 10 + 10×(.05+.2) = 12.5
//	Exectime(v)   = .2
//	Exectime(main)= 10 + 2×(.1+12.5) + 1×(.05+.2) + 1×(.4+0) = 35.85
func TestExectimeAllSoftware(t *testing.T) {
	g := buildGraph(t)
	est := New(g, allCPU(t, g), Options{})
	sub, err := est.Exectime(g.NodeByName("sub"))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sub, 12.5) {
		t.Errorf("Exectime(sub) = %v, want 12.5", sub)
	}
	main, err := est.Exectime(g.NodeByName("main"))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(main, 35.85) {
		t.Errorf("Exectime(main) = %v, want 35.85", main)
	}
}

// TestExectimeSplit repeats the computation for the hardware split:
//
//	sub on asic: ict 1; sub→arr internal on asic: 1×.05 per access, arr ict .02
//	Exectime(sub) = 1 + 10×(.05+.02) = 1.7
//	main→sub now crosses: 2 transfers × td .4 = .8
//	Exectime(main) = 10 + 2×(.8+1.7) + 1×(.05+.2) + 1×.4 = 15.65
func TestExectimeSplit(t *testing.T) {
	g := buildGraph(t)
	est := New(g, hwSplit(t, g), Options{})
	sub, err := est.Exectime(g.NodeByName("sub"))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sub, 1.7) {
		t.Errorf("Exectime(sub) = %v, want 1.7", sub)
	}
	main, err := est.Exectime(g.NodeByName("main"))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(main, 15.65) {
		t.Errorf("Exectime(main) = %v, want 15.65", main)
	}
}

// TestTransferTime checks the ceil(bits/width) × ts|td structure directly.
func TestTransferTime(t *testing.T) {
	g := buildGraph(t)
	est := New(g, allCPU(t, g), Options{})
	cases := []struct {
		src, dst string
		want     float64
	}{
		{"main", "sub", 0.1},  // 32 bits / 16 wires = 2 × ts
		{"main", "v", 0.05},   // 8/16 → 1 × ts
		{"main", "out1", 0.4}, // port → td
		{"sub", "arr", 0.05},  // 15/16 → 1 × ts
	}
	for _, c := range cases {
		tt, err := est.TransferTime(g.FindChannel(c.src, c.dst))
		if err != nil {
			t.Fatal(err)
		}
		if !almost(tt, c.want) {
			t.Errorf("TransferTime(%s->%s) = %v, want %v", c.src, c.dst, tt, c.want)
		}
	}
}

// TestChanBitrate checks eq. 2: freq×bits / Exectime(src).
func TestChanBitrate(t *testing.T) {
	g := buildGraph(t)
	est := New(g, allCPU(t, g), Options{})
	// sub→arr: 10×15 bits over 12.5 µs = 12 bits/µs.
	br, err := est.ChanBitrate(g.FindChannel("sub", "arr"))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(br, 12) {
		t.Errorf("ChanBitrate(sub->arr) = %v, want 12", br)
	}
}

// TestBusBitrate checks eq. 3: the bus carries the sum of its channels.
func TestBusBitrate(t *testing.T) {
	g := buildGraph(t)
	est := New(g, allCPU(t, g), Options{})
	var want float64
	for _, c := range g.Channels {
		br, err := est.ChanBitrate(c)
		if err != nil {
			t.Fatal(err)
		}
		want += br
	}
	got, err := est.BusBitrate(g.Buses[0])
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, want) {
		t.Errorf("BusBitrate = %v, want sum of channels %v", got, want)
	}
	if want <= 0 {
		t.Error("bus carries no traffic?")
	}
}

// TestSize checks eqs. 4–5 for both components and the memory.
func TestSize(t *testing.T) {
	g := buildGraph(t)
	pt := hwSplit(t, g)
	// Move v to the memory to exercise eq. 5.
	if err := pt.Assign(g.NodeByName("v"), g.MemByName("ram")); err != nil {
		t.Fatal(err)
	}
	est := New(g, pt, Options{})
	cpu, err := est.Size(g.ProcByName("cpu"))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(cpu, 100) { // main only
		t.Errorf("Size(cpu) = %v, want 100", cpu)
	}
	asic, err := est.Size(g.ProcByName("asic"))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(asic, 800+8192) { // sub + arr registers
		t.Errorf("Size(asic) = %v, want 8992", asic)
	}
	ram, err := est.Size(g.MemByName("ram"))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ram, 1) { // v: 8 bits / 8-bit words
		t.Errorf("Size(ram) = %v, want 1", ram)
	}
}

// TestIO checks eq. 6: cut buses' width summed once per bus.
func TestIO(t *testing.T) {
	g := buildGraph(t)
	est := New(g, hwSplit(t, g), Options{})
	// cpu boundary is crossed by main→sub and main→out1, both on the one
	// 16-bit bus: IO = 16, counted once.
	if got := est.IO(g.ProcByName("cpu")); got != 16 {
		t.Errorf("IO(cpu) = %d, want 16", got)
	}
	if got := est.IO(g.ProcByName("asic")); got != 16 {
		t.Errorf("IO(asic) = %d, want 16", got)
	}
	// All-software: only the port write crosses.
	est2 := New(g, allCPU(t, g), Options{})
	if got := est2.IO(g.ProcByName("cpu")); got != 16 {
		t.Errorf("IO(cpu, all-sw) = %d, want 16", got)
	}
}

func TestModes(t *testing.T) {
	g := buildGraph(t)
	for _, mode := range []Mode{Min, Avg, Max} {
		est := New(g, allCPU(t, g), Options{Mode: mode})
		et, err := est.Exectime(g.NodeByName("main"))
		if err != nil {
			t.Fatal(err)
		}
		if et < 10 {
			t.Errorf("mode %v exectime %v below ict", mode, et)
		}
	}
	// min <= avg <= max
	var ets [3]float64
	for i, mode := range []Mode{Min, Avg, Max} {
		est := New(g, allCPU(t, g), Options{Mode: mode})
		ets[i], _ = est.Exectime(g.NodeByName("main"))
	}
	if !(ets[0] <= ets[1] && ets[1] <= ets[2]) {
		t.Errorf("min/avg/max ordering violated: %v", ets)
	}
}

// TestMinModeFallsBackWithoutMin pins the §2.4.1 fallback contract: an
// annotation that was never set falls back to the average, per annotation.
// main→sub and sub→arr carry an AccMax but no AccMin; Min mode must
// estimate them with AccFreq, not silently zero their contribution (the
// historical asymmetry with Max mode).
func TestMinModeFallsBackWithoutMin(t *testing.T) {
	g := buildGraph(t)
	est := New(g, allCPU(t, g), Options{Mode: Min})
	et, err := est.Exectime(g.NodeByName("main"))
	if err != nil {
		t.Fatal(err)
	}
	// Every channel's AccMin is either equal to AccFreq or unset, so the
	// Min-mode estimate must equal the Avg-mode hand computation (35.85);
	// the zeroing bug yielded 10.65.
	if !almost(et, 35.85) {
		t.Errorf("Min-mode Exectime(main) = %v, want 35.85 (fallback to average)", et)
	}
}

// TestRebindReusesEstimator checks that one estimator rebound across
// partitions reproduces fresh-estimator results exactly.
func TestRebindReusesEstimator(t *testing.T) {
	g := buildGraph(t)
	pts := []*core.Partition{allCPU(t, g), hwSplit(t, g), allCPU(t, g)}
	est := New(g, pts[0], Options{})
	for i, pt := range pts {
		est.Rebind(pt)
		got, err := est.Exectime(g.NodeByName("main"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := New(g, pt, Options{}).Exectime(g.NodeByName("main"))
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, want) {
			t.Errorf("rebind %d: Exectime(main) = %v, fresh estimator says %v", i, got, want)
		}
	}
}

func TestRecursionDetected(t *testing.T) {
	g := buildGraph(t)
	// Add a back edge sub→main: a recursion cycle.
	if err := g.AddChannel(&core.Channel{
		Src: g.NodeByName("sub"), Dst: g.NodeByName("main"),
		AccFreq: 1, Bits: 8, Tag: core.NoTag,
	}); err != nil {
		t.Fatal(err)
	}
	pt := core.AllToProcessor(g, g.ProcByName("cpu"), g.Buses[0])
	est := New(g, pt, Options{})
	if _, err := est.Exectime(g.NodeByName("main")); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("recursion not detected: %v", err)
	}
	// With IgnoreRecursion the estimate completes.
	est2 := New(g, pt, Options{IgnoreRecursion: true})
	if _, err := est2.Exectime(g.NodeByName("main")); err != nil {
		t.Errorf("IgnoreRecursion failed: %v", err)
	}
}

func TestErrorsOnIncompletePartition(t *testing.T) {
	g := buildGraph(t)
	pt := core.NewPartition(g)
	est := New(g, pt, Options{})
	if _, err := est.Exectime(g.NodeByName("main")); err == nil {
		t.Error("unmapped node estimated")
	}
	// Mapped node but unmapped channel.
	for _, n := range g.Nodes {
		if err := pt.Assign(n, g.ProcByName("cpu")); err != nil {
			t.Fatal(err)
		}
	}
	est.Reset()
	if _, err := est.Exectime(g.NodeByName("main")); err == nil {
		t.Error("unmapped channel estimated")
	}
}

func TestMissingWeightReported(t *testing.T) {
	g := buildGraph(t)
	delete(g.NodeByName("sub").ICT, "asic50")
	est := New(g, hwSplit(t, g), Options{})
	_, err := est.Exectime(g.NodeByName("main"))
	if err == nil || !strings.Contains(err.Error(), "no ict weight") {
		t.Errorf("missing weight not reported: %v", err)
	}
}

func TestConcurrencyTagsReduceCommTime(t *testing.T) {
	g := buildGraph(t)
	// Tag main's two variable/port accesses as concurrent.
	g.FindChannel("main", "v").Tag = 1
	g.FindChannel("main", "out1").Tag = 1
	pt := allCPU(t, g)
	seq, err := New(g, pt, Options{}).Exectime(g.NodeByName("main"))
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(g, pt, Options{UseTags: true}).Exectime(g.NodeByName("main"))
	if err != nil {
		t.Fatal(err)
	}
	if par >= seq {
		t.Errorf("tags did not reduce exectime: %v >= %v", par, seq)
	}
	// Overlap means the group costs its max: .4 instead of .25+.4.
	if !almost(seq-par, 0.25) {
		t.Errorf("overlap saving = %v, want 0.25", seq-par)
	}
}

func TestSharingFactor(t *testing.T) {
	g := buildGraph(t)
	pt := hwSplit(t, g)
	base, err := New(g, pt, Options{}).Size(g.ProcByName("asic"))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := New(g, pt, Options{SharingFactor: 0.25}).Size(g.ProcByName("asic"))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(shared, base*0.75) {
		t.Errorf("sharing factor: %v, want %v", shared, base*0.75)
	}
	// Standard processors are not discounted.
	cpuBase, _ := New(g, pt, Options{}).Size(g.ProcByName("cpu"))
	cpuShared, _ := New(g, pt, Options{SharingFactor: 0.25}).Size(g.ProcByName("cpu"))
	if !almost(cpuBase, cpuShared) {
		t.Error("sharing factor applied to a standard processor")
	}
}

func TestClampBusBitrate(t *testing.T) {
	g := buildGraph(t)
	pt := allCPU(t, g)
	raw, err := New(g, pt, Options{}).BusBitrate(g.Buses[0])
	if err != nil {
		t.Fatal(err)
	}
	clamped, err := New(g, pt, Options{ClampBusBitrate: true}).BusBitrate(g.Buses[0])
	if err != nil {
		t.Fatal(err)
	}
	capacity := float64(g.Buses[0].BitWidth) / g.Buses[0].TS
	if clamped > capacity+1e-9 {
		t.Errorf("clamped bitrate %v exceeds capacity %v", clamped, capacity)
	}
	if raw <= capacity && !almost(raw, clamped) {
		t.Errorf("clamp changed an under-capacity bus: %v vs %v", raw, clamped)
	}
}

func TestReport(t *testing.T) {
	g := buildGraph(t)
	rep, err := New(g, hwSplit(t, g), Options{}).Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Comps) != 3 || len(rep.Buses) != 1 || len(rep.Processes) != 1 {
		t.Fatalf("report shape: %+v", rep)
	}
	s := rep.String()
	for _, frag := range []string{"cpu", "asic", "ram", "bitrate", "process main"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}

func TestReportConstraintViolation(t *testing.T) {
	g := buildGraph(t)
	g.ProcByName("asic").SizeCon = 10 // impossible
	rep, err := New(g, hwSplit(t, g), Options{}).Report()
	if err != nil {
		t.Fatal(err)
	}
	var asicRep *CompReport
	for i := range rep.Comps {
		if rep.Comps[i].Name == "asic" {
			asicRep = &rep.Comps[i]
		}
	}
	if asicRep == nil || !asicRep.SizeViolated() {
		t.Error("size violation not flagged")
	}
	if !strings.Contains(rep.String(), "VIOLATED") {
		t.Error("violation not rendered")
	}
}

// Property: execution time is monotone in ict — raising any node's ict
// never lowers any process's exectime.
func TestExectimeMonotoneQuick(t *testing.T) {
	g := buildGraph(t)
	pt := allCPU(t, g)
	base, err := New(g, pt, Options{}).Exectime(g.NodeByName("main"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(which uint8, delta uint16) bool {
		n := g.Nodes[int(which)%len(g.Nodes)]
		old := n.ICT["proc10"]
		n.ICT["proc10"] = old + float64(delta)
		defer func() { n.ICT["proc10"] = old }()
		et, err := New(g, pt, Options{}).Exectime(g.NodeByName("main"))
		return err == nil && et >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: TransferTime uses ceiling division — bits in (k·width, (k+1)·width]
// all cost the same, and one more bit costs one more transfer.
func TestTransferCeilingQuick(t *testing.T) {
	g := buildGraph(t)
	pt := allCPU(t, g)
	c := g.FindChannel("main", "v")
	f := func(k uint8) bool {
		width := g.Buses[0].BitWidth
		kk := int(k%8) + 1
		c.Bits = kk * width // exactly k transfers
		est := New(g, pt, Options{})
		atEdge, err1 := est.TransferTime(c)
		c.Bits = kk*width + 1 // one bit over: k+1 transfers
		est.Reset()
		overEdge, err2 := est.TransferTime(c)
		c.Bits = 8
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(atEdge, float64(kk)*g.Buses[0].TS) &&
			almost(overEdge, float64(kk+1)*g.Buses[0].TS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Size is additive — moving a node from one processor to another
// moves exactly its weight.
func TestSizeAdditiveQuick(t *testing.T) {
	g := buildGraph(t)
	f := func(which uint8) bool {
		pt := allCPU(t, g)
		n := g.Nodes[int(which)%len(g.Nodes)]
		cpu, asic := g.ProcByName("cpu"), g.ProcByName("asic")
		before, err := New(g, pt, Options{}).Size(cpu)
		if err != nil {
			return false
		}
		if err := pt.Assign(n, asic); err != nil {
			return false
		}
		est := New(g, pt, Options{})
		afterCPU, err1 := est.Size(cpu)
		afterASIC, err2 := est.Size(asic)
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(before-afterCPU, n.Size["proc10"]) &&
			almost(afterASIC, n.Size["asic50"])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTransferTimeZeroWidthBusError is the div-by-zero regression: a bus
// with a non-positive width must surface as an error naming the bus, not
// a panic, both from TransferTime and from anything that sums it.
func TestTransferTimeZeroWidthBusError(t *testing.T) {
	g := buildGraph(t)
	g.Buses[0].BitWidth = 0
	est := New(g, allCPU(t, g), Options{})
	_, err := est.TransferTime(g.FindChannel("main", "sub"))
	if err == nil || !strings.Contains(err.Error(), "bitwidth") {
		t.Fatalf("TransferTime on zero-width bus: err = %v, want bitwidth error", err)
	}
	if _, err := est.Exectime(g.NodeByName("main")); err == nil {
		t.Error("Exectime through a zero-width bus succeeded, want error")
	}
	// Control-only accesses (Bits == 0) never touch the width and stay fine.
	g2 := buildGraph(t)
	g2.Buses[0].BitWidth = 0
	ctl := g2.FindChannel("main", "v")
	ctl.Bits = 0
	tt, err := New(g2, allCPU(t, g2), Options{}).TransferTime(ctl)
	if err != nil || tt != 0 {
		t.Errorf("control-only transfer on zero-width bus = %v, %v; want 0, nil", tt, err)
	}
}

// TestBusCapacity covers the TS-only clamp regression: the capacity must
// use the smallest positive of TS/TD, and be absent only when the bus has
// no positive transfer time (or no wires).
func TestBusCapacity(t *testing.T) {
	cases := []struct {
		bus  core.Bus
		want float64
		ok   bool
	}{
		{core.Bus{BitWidth: 16, TS: 0.05, TD: 0.4}, 16 / 0.05, true},
		{core.Bus{BitWidth: 16, TD: 0.4}, 16 / 0.4, true},   // TD-only
		{core.Bus{BitWidth: 16, TS: 0.05}, 16 / 0.05, true}, // TS-only: the old code skipped this
		{core.Bus{BitWidth: 16, TS: 0.4, TD: 0.05}, 16 / 0.05, true},
		{core.Bus{BitWidth: 16}, 0, false},
		{core.Bus{BitWidth: 0, TS: 0.05}, 0, false},
	}
	for _, c := range cases {
		got, ok := BusCapacity(&c.bus)
		if ok != c.ok || (ok && !almost(got, c.want)) {
			t.Errorf("BusCapacity(%+v) = %v, %v; want %v, %v", c.bus, got, ok, c.want, c.ok)
		}
	}
}

// TestClampBusBitrateTSOnly drives the clamp end-to-end on a TS-only bus
// whose raw per-channel sum exceeds capacity: two independent writers each
// near the single-channel throughput bound.
func TestClampBusBitrateTSOnly(t *testing.T) {
	g := core.NewGraph("tsonly")
	for _, name := range []string{"p1", "p2"} {
		p := &core.Node{Name: name, Kind: core.BehaviorNode, IsProcess: true}
		v := &core.Node{Name: name + "v", Kind: core.VariableNode, StorageBits: 16}
		p.SetICT("proc10", 1)
		p.SetSize("proc10", 10)
		v.SetICT("proc10", 0.001)
		v.SetSize("proc10", 2)
		for _, n := range []*core.Node{p, v} {
			if err := g.AddNode(n); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.AddChannel(&core.Channel{Src: p, Dst: v, AccFreq: 1e6, Bits: 16, Tag: core.NoTag}); err != nil {
			t.Fatal(err)
		}
	}
	g.AddProcessor(&core.Processor{Name: "cpu", TypeName: "proc10", SizeCon: 4096, PinCon: 40})
	g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05}) // TD == 0: TS-only
	pt := core.AllToProcessor(g, g.ProcByName("cpu"), g.Buses[0])

	raw, err := New(g, pt, Options{}).BusBitrate(g.Buses[0])
	if err != nil {
		t.Fatal(err)
	}
	capacity, ok := BusCapacity(g.Buses[0])
	if !ok {
		t.Fatal("TS-only bus has no capacity")
	}
	if raw <= capacity {
		t.Fatalf("test graph does not exceed capacity: raw %v <= %v", raw, capacity)
	}
	clamped, err := New(g, pt, Options{ClampBusBitrate: true}).BusBitrate(g.Buses[0])
	if err != nil {
		t.Fatal(err)
	}
	if !almost(clamped, capacity) {
		t.Errorf("TS-only clamped bitrate = %v, want capacity %v", clamped, capacity)
	}
}
