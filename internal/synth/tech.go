package synth

import (
	"fmt"
	"math"
)

// Class is the kind of component technology a Tech models.
type Class int

// Technology classes.
const (
	StdProc  Class = iota // standard (software) processor
	CustomHW              // ASIC / FPGA custom hardware
	MemoryT               // standard memory
)

func (c Class) String() string {
	switch c {
	case StdProc:
		return "processor"
	case CustomHW:
		return "custom"
	default:
		return "memory"
	}
}

// Tech is one component type: the key into every node's ict_list/size_list.
// Only the fields of the matching Class are consulted.
type Tech struct {
	Name  string
	Class Class

	// Standard processors.
	ClockMHz      float64               // instruction clock
	CyclesPerOp   [numOpClasses]float64 // execution cycles per operation
	InstrPerOp    [numOpClasses]float64 // emitted instructions per operation
	BytesPerInstr float64               // code density
	DataAccessUs  float64               // on-processor variable read/write time

	// Custom hardware.
	OpDelayUs   [numOpClasses]float64 // per-operation datapath delay
	GatesPerOp  [numOpClasses]float64 // functional-unit cost
	CtrlGates   float64               // controller gates per statement
	RegGatesBit float64               // register gates per stored bit
	RegAccessUs float64               // on-chip register read/write time

	// Memories.
	AccessUs float64 // word read/write time
	WordBits int     // word width
}

// BehaviorWeights returns the ict (µs per execution) and size weight of a
// behavior with the given operation counts on this technology. ok is false
// when the technology cannot host behaviors (memories).
func (t *Tech) BehaviorWeights(ops *Ops) (ict, size float64, ok bool) {
	switch t.Class {
	case StdProc:
		var cycles, instrs float64
		for c := 0; c < int(numOpClasses); c++ {
			cycles += ops.Dyn[c] * t.CyclesPerOp[c]
			instrs += ops.Static[c] * t.InstrPerOp[c]
		}
		ict = cycles / t.ClockMHz
		size = math.Ceil(instrs * t.BytesPerInstr)
		return ict, size, true
	case CustomHW:
		var delay, gates float64
		for c := 0; c < int(numOpClasses); c++ {
			delay += ops.Dyn[c] * t.OpDelayUs[c]
			gates += ops.Static[c] * t.GatesPerOp[c]
		}
		gates += float64(ops.Stmts) * t.CtrlGates
		return delay, math.Ceil(gates), true
	}
	return 0, 0, false
}

// VariableWeights returns the access time (ict) and size weight of a
// variable with the given storage footprint on this technology.
func (t *Tech) VariableWeights(storageBits int64) (ict, size float64, ok bool) {
	if storageBits <= 0 {
		storageBits = 1
	}
	switch t.Class {
	case StdProc:
		return t.DataAccessUs, math.Ceil(float64(storageBits) / 8), true
	case CustomHW:
		return t.RegAccessUs, math.Ceil(float64(storageBits) * t.RegGatesBit), true
	case MemoryT:
		wb := t.WordBits
		if wb <= 0 {
			wb = 8
		}
		return t.AccessUs, math.Ceil(float64(storageBits) / float64(wb)), true
	}
	return 0, 0, false
}

// Validate checks that the technology's parameters are usable.
func (t *Tech) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("synth: technology with empty name")
	}
	switch t.Class {
	case StdProc:
		if t.ClockMHz <= 0 {
			return fmt.Errorf("synth: processor %q has non-positive clock", t.Name)
		}
		if t.BytesPerInstr <= 0 {
			return fmt.Errorf("synth: processor %q has non-positive code density", t.Name)
		}
	case MemoryT:
		if t.WordBits <= 0 {
			return fmt.Errorf("synth: memory %q has non-positive word width", t.Name)
		}
	}
	return nil
}

// uniformOps builds a per-class table from a map, applying def elsewhere.
func uniformOps(def float64, m map[OpClass]float64) [numOpClasses]float64 {
	var out [numOpClasses]float64
	for c := 0; c < int(numOpClasses); c++ {
		out[c] = def
	}
	for c, v := range m {
		out[c] = v
	}
	return out
}

// GenericProcessor returns a RISC-like standard processor model named name
// running at clockMHz.
func GenericProcessor(name string, clockMHz float64) *Tech {
	return &Tech{
		Name:     name,
		Class:    StdProc,
		ClockMHz: clockMHz,
		CyclesPerOp: uniformOps(1, map[OpClass]float64{
			OpMul: 4, OpDiv: 12, OpIndex: 2, OpBranch: 2, OpCall: 6, OpIO: 4,
		}),
		InstrPerOp: uniformOps(1, map[OpClass]float64{
			OpDiv: 2, OpIndex: 2, OpBranch: 2, OpCall: 3, OpMove: 1, OpIO: 2,
		}),
		BytesPerInstr: 4,
		DataAccessUs:  2 / clockMHz, // load/store
	}
}

// GenericASIC returns a standard-cell custom-hardware model with the given
// datapath clock.
func GenericASIC(name string, clockMHz float64) *Tech {
	cycle := 1 / clockMHz
	return &Tech{
		Name:  name,
		Class: CustomHW,
		OpDelayUs: uniformOps(cycle, map[OpClass]float64{
			OpMul: 3 * cycle, OpDiv: 10 * cycle, OpIO: 2 * cycle,
			OpBranch: cycle / 2, OpCall: cycle,
		}),
		GatesPerOp: uniformOps(50, map[OpClass]float64{
			OpAdd: 150, OpMul: 1200, OpDiv: 2500, OpCmp: 80,
			OpLogic: 20, OpMove: 10, OpIndex: 120, OpBranch: 30,
			OpCall: 60, OpIO: 40,
		}),
		CtrlGates:   12,
		RegGatesBit: 8,
		RegAccessUs: cycle,
	}
}

// GenericMemory returns a standard memory model with the given word width
// and access time.
func GenericMemory(name string, wordBits int, accessUs float64) *Tech {
	return &Tech{Name: name, Class: MemoryT, WordBits: wordBits, AccessUs: accessUs}
}

// StdTechs returns the default technology library used by the examples and
// benchmarks: a mid-1990s style 10 MHz embedded processor, a faster 20 MHz
// processor, a 50 MHz standard-cell ASIC, and an 8-bit wide SRAM — the
// "processor-asic architecture" of the paper's Figure 4 experiment plus a
// memory.
func StdTechs() []*Tech {
	return []*Tech{
		GenericProcessor("proc10", 10),
		GenericProcessor("proc20", 20),
		GenericASIC("asic50", 50),
		GenericMemory("sram8", 8, 0.1),
	}
}

// TechByName finds a technology in a slice, or nil.
func TechByName(techs []*Tech, name string) *Tech {
	for _, t := range techs {
		if t.Name == name {
			return t
		}
	}
	return nil
}
