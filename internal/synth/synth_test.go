package synth

import (
	"testing"
	"testing/quick"

	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

func behavior(t *testing.T, src, name string) (*sem.Design, *sem.Behavior) {
	t.Helper()
	df, err := vhdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range d.Behaviors {
		if b.Name == name {
			return d, b
		}
	}
	t.Fatalf("behavior %q not found", name)
	return nil, nil
}

const opsSrc = `
entity E is end;
architecture x of E is begin
P: process
    type arr is array (0 to 9) of integer;
    variable a : arr;
    variable v, w : integer;
begin
    v := v + w * 2;
    if v > 0 then
        a(v) := v / 3;
    end if;
    for i in 0 to 9 loop
        w := w + a(i);
    end loop;
    wait;
end process; end;
`

func TestCountOpsStaticVsDynamic(t *testing.T) {
	d, b := behavior(t, opsSrc, "p")
	ops := CountOps(d, b, profile.Empty())

	// Static: operation sites in the source.
	if ops.Static[OpMul] != 1 {
		t.Errorf("static mul = %v", ops.Static[OpMul])
	}
	if ops.Static[OpDiv] != 1 {
		t.Errorf("static div = %v", ops.Static[OpDiv])
	}
	// Adds: v+w*2 and w+a(i) = 2 sites.
	if ops.Static[OpAdd] != 2 {
		t.Errorf("static add = %v", ops.Static[OpAdd])
	}
	// Dynamic: loop body add runs 10 times, plus the top-level add once.
	if ops.Dyn[OpAdd] != 11 {
		t.Errorf("dyn add = %v, want 11", ops.Dyn[OpAdd])
	}
	// The if arm divides with default probability 1/2.
	if ops.Dyn[OpDiv] != 0.5 {
		t.Errorf("dyn div = %v, want 0.5", ops.Dyn[OpDiv])
	}
	// Moves: 3 assignment sites; loop assignment runs 10×, if-arm 0.5×.
	if ops.Static[OpMove] != 3 {
		t.Errorf("static moves = %v", ops.Static[OpMove])
	}
	if ops.Dyn[OpMove] != 11.5 {
		t.Errorf("dyn moves = %v, want 11.5", ops.Dyn[OpMove])
	}
	if ops.Stmts == 0 {
		t.Error("statement count missing")
	}
}

func TestProcessorWeights(t *testing.T) {
	d, b := behavior(t, opsSrc, "p")
	ops := CountOps(d, b, profile.Empty())
	tech := GenericProcessor("proc10", 10)
	ict, size, ok := tech.BehaviorWeights(ops)
	if !ok {
		t.Fatal("processor rejected a behavior")
	}
	if ict <= 0 || size <= 0 {
		t.Errorf("weights: ict %v size %v", ict, size)
	}
	// Twice the clock must halve the time, leave size unchanged.
	fast := GenericProcessor("proc20", 20)
	ict2, size2, _ := fast.BehaviorWeights(ops)
	if diff := ict/ict2 - 2; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("clock scaling: %v vs %v", ict, ict2)
	}
	if size != size2 {
		t.Errorf("size depends on clock: %v vs %v", size, size2)
	}
}

func TestASICWeights(t *testing.T) {
	d, b := behavior(t, opsSrc, "p")
	ops := CountOps(d, b, profile.Empty())
	asic := GenericASIC("asic50", 50)
	ict, size, ok := asic.BehaviorWeights(ops)
	if !ok || ict <= 0 || size <= 0 {
		t.Fatalf("asic weights: %v %v %v", ict, size, ok)
	}
	// The ASIC at 50 MHz should beat the 10 MHz processor on time.
	proc := GenericProcessor("proc10", 10)
	pict, _, _ := proc.BehaviorWeights(ops)
	if ict >= pict {
		t.Errorf("asic (%v) not faster than processor (%v)", ict, pict)
	}
}

func TestMemoryRejectsBehaviors(t *testing.T) {
	d, b := behavior(t, opsSrc, "p")
	ops := CountOps(d, b, profile.Empty())
	mem := GenericMemory("sram8", 8, 0.1)
	if _, _, ok := mem.BehaviorWeights(ops); ok {
		t.Error("memory accepted a behavior")
	}
}

func TestVariableWeights(t *testing.T) {
	mem := GenericMemory("sram8", 8, 0.1)
	ict, words, ok := mem.VariableWeights(1024)
	if !ok || ict != 0.1 || words != 128 {
		t.Errorf("memory variable: %v %v %v", ict, words, ok)
	}
	// Partial word rounds up.
	_, words, _ = mem.VariableWeights(9)
	if words != 2 {
		t.Errorf("9 bits in 8-bit words = %v, want 2", words)
	}
	proc := GenericProcessor("p", 10)
	_, bytes, _ := proc.VariableWeights(1024)
	if bytes != 128 {
		t.Errorf("processor bytes = %v", bytes)
	}
	asic := GenericASIC("a", 50)
	_, gates, _ := asic.VariableWeights(8)
	if gates != 8*asic.RegGatesBit {
		t.Errorf("asic register gates = %v", gates)
	}
	// Zero storage still costs something.
	if _, sz, _ := proc.VariableWeights(0); sz <= 0 {
		t.Error("zero-bit variable got zero size")
	}
}

func TestTechValidate(t *testing.T) {
	good := StdTechs()
	for _, tech := range good {
		if err := tech.Validate(); err != nil {
			t.Errorf("%s: %v", tech.Name, err)
		}
	}
	bad := []*Tech{
		{Name: "", Class: StdProc, ClockMHz: 1, BytesPerInstr: 1},
		{Name: "p", Class: StdProc, ClockMHz: 0, BytesPerInstr: 1},
		{Name: "p", Class: StdProc, ClockMHz: 1, BytesPerInstr: 0},
		{Name: "m", Class: MemoryT, WordBits: 0},
	}
	for i, tech := range bad {
		if err := tech.Validate(); err == nil {
			t.Errorf("bad tech %d validated", i)
		}
	}
}

func TestTechByName(t *testing.T) {
	techs := StdTechs()
	if TechByName(techs, "proc10") == nil {
		t.Error("proc10 missing from standard library")
	}
	if TechByName(techs, "nope") != nil {
		t.Error("found a tech that does not exist")
	}
}

// Property: more dynamic operations never decrease ict; more static
// operations never decrease size.
func TestWeightsMonotoneQuick(t *testing.T) {
	d, b := behavior(t, opsSrc, "p")
	base := CountOps(d, b, profile.Empty())
	techs := []*Tech{GenericProcessor("p", 10), GenericASIC("a", 50)}
	f := func(class uint8, extra uint16) bool {
		c := OpClass(class) % numOpClasses
		bigger := *base
		bigger.Dyn[c] += float64(extra)
		bigger.Static[c] += float64(extra)
		for _, tech := range techs {
			i0, s0, _ := tech.BehaviorWeights(base)
			i1, s1, _ := tech.BehaviorWeights(&bigger)
			if i1 < i0 || s1 < s0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOpClassString(t *testing.T) {
	if OpAdd.String() != "add" || OpIO.String() != "io" {
		t.Error("op class names broken")
	}
}

func TestOpsTotal(t *testing.T) {
	d, b := behavior(t, opsSrc, "p")
	ops := CountOps(d, b, profile.Empty())
	static, dyn := ops.Total()
	if static <= 0 || dyn <= 0 {
		t.Errorf("totals: %v/%v", static, dyn)
	}
	if dyn <= static {
		t.Errorf("loop-heavy behavior must have dyn (%v) > static (%v)", dyn, static)
	}
}

func TestClassString(t *testing.T) {
	if StdProc.String() != "processor" || CustomHW.String() != "custom" || MemoryT.String() != "memory" {
		t.Error("Class names broken")
	}
}
