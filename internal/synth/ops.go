// Package synth estimates the preprocessed SLIF node weights of §2.4: the
// internal computation time (ict_list) and size (size_list) of every
// behavior and variable on every candidate component type.
//
// The paper obtains these weights by compiling each behavior to a target
// processor's instruction set or synthesizing it to a target technology
// library before system design begins (§2.1), or by letting the designer
// specify them directly. This package substitutes abstract retargetable
// models — a generic instruction-count model for standard processors, an
// operation/gate model for custom hardware, and a word model for memories —
// which preserves the property SLIF needs: weights are computed once per
// component type, then estimation is pure lookup-and-sum.
package synth

import (
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// OpClass classifies specification operations for the weight models.
type OpClass int

// Operation classes.
const (
	OpAdd    OpClass = iota // +, -, &, unary -, abs
	OpMul                   // *
	OpDiv                   // /, mod, rem
	OpCmp                   // relational operators
	OpLogic                 // and/or/xor/nand/nor/not
	OpMove                  // assignment
	OpIndex                 // array element address computation
	OpBranch                // if/case/loop control
	OpCall                  // subprogram call overhead
	OpIO                    // wait / port synchronization
	numOpClasses
)

var opClassNames = [...]string{
	"add", "mul", "div", "cmp", "logic", "move", "index", "branch", "call", "io",
}

func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return "op?"
}

// Ops holds per-class operation counts for one behavior. Static counts are
// source occurrences (what hardware must exist / code must be emitted);
// Dyn counts are expected executions per start-to-finish run (what time
// costs), computed with the same branch/loop model as channel frequencies.
type Ops struct {
	Static [numOpClasses]float64
	Dyn    [numOpClasses]float64
	Stmts  int // static statement count, for controller sizing
}

// Total returns the summed static and dynamic counts.
func (o *Ops) Total() (static, dyn float64) {
	for c := 0; c < int(numOpClasses); c++ {
		static += o.Static[c]
		dyn += o.Dyn[c]
	}
	return static, dyn
}

func (o *Ops) add(c OpClass, dynCount float64) {
	o.Static[c]++
	o.Dyn[c] += dynCount
}

// CountOps analyzes behavior b, classifying every operation and weighting
// dynamic counts by the profile.
func CountOps(d *sem.Design, b *sem.Behavior, prof *profile.Profile) *Ops {
	ops := &Ops{}
	profile.WalkCounted(d, b, prof, profile.Visitor{
		OnStmt: func(s vhdl.Stmt, c profile.Counts) {
			ops.Stmts++
			switch st := s.(type) {
			case *vhdl.AssignStmt:
				ops.add(OpMove, c.Avg)
				if t, ok := st.Target.(*vhdl.CallExpr); ok {
					if sym := d.Lookup(b, t.Name); sym != nil && sym.Kind == sem.SymObject {
						ops.add(OpIndex, c.Avg)
					}
				}
			case *vhdl.IfStmt, *vhdl.CaseStmt, *vhdl.ForStmt, *vhdl.WhileStmt, *vhdl.LoopStmt, *vhdl.ExitStmt:
				ops.add(OpBranch, c.Avg)
			case *vhdl.CallStmt:
				ops.add(OpCall, c.Avg)
			case *vhdl.WaitStmt:
				ops.add(OpIO, c.Avg)
			case *vhdl.ReturnStmt:
				ops.add(OpBranch, c.Avg)
			}
		},
		OnExpr: func(e vhdl.Expr, c profile.Counts) {
			switch x := e.(type) {
			case *vhdl.BinExpr:
				switch x.Op {
				case vhdl.PLUS, vhdl.MINUS, vhdl.AMP:
					ops.add(OpAdd, c.Avg)
				case vhdl.STAR:
					ops.add(OpMul, c.Avg)
				case vhdl.SLASH, vhdl.KwMOD, vhdl.KwREM:
					ops.add(OpDiv, c.Avg)
				case vhdl.EQ, vhdl.NEQ, vhdl.LT, vhdl.SIGASSIGN, vhdl.GT, vhdl.GE:
					ops.add(OpCmp, c.Avg)
				default:
					ops.add(OpLogic, c.Avg)
				}
			case *vhdl.UnaryExpr:
				switch x.Op {
				case vhdl.MINUS, vhdl.PLUS, vhdl.KwABS:
					ops.add(OpAdd, c.Avg)
				default:
					ops.add(OpLogic, c.Avg)
				}
			case *vhdl.CallExpr:
				sym := d.Lookup(b, x.Name)
				if sym == nil {
					return
				}
				switch sym.Kind {
				case sem.SymBehavior:
					ops.add(OpCall, c.Avg)
				case sem.SymObject, sem.SymPort:
					ops.add(OpIndex, c.Avg)
				}
			}
		},
	})
	return ops
}
