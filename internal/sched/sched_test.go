package sched

import (
	"testing"

	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

func process(t *testing.T, src string) (*sem.Design, *sem.Behavior) {
	t.Helper()
	df, err := vhdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range d.Behaviors {
		if b.IsProcess {
			return d, b
		}
	}
	t.Fatal("no process")
	return nil, nil
}

func TestScheduleIndependentStatementsShareStep(t *testing.T) {
	d, b := process(t, `
entity E is port (a, bb : in integer); end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    v := a;
    w := bb;
end process; end;`)
	steps := Schedule(d, b)
	if len(steps) != 2 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[0] != 1 || steps[1] != 1 {
		t.Errorf("independent statements scheduled %v, want both in step 1", steps)
	}
}

func TestScheduleDataDependencySerializes(t *testing.T) {
	d, b := process(t, `
entity E is port (a : in integer); end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    v := a;
    w := v;
end process; end;`)
	steps := Schedule(d, b)
	if steps[0] != 1 || steps[1] != 2 {
		t.Errorf("RAW dependency ignored: %v", steps)
	}
}

func TestScheduleWARAndWAW(t *testing.T) {
	d, b := process(t, `
entity E is port (a : in integer); end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    w := v;
    v := a;
    v := a + 1;
end process; end;`)
	steps := Schedule(d, b)
	if !(steps[0] < steps[1] && steps[1] < steps[2]) {
		t.Errorf("WAR/WAW ordering violated: %v", steps)
	}
}

func TestCallsSerialize(t *testing.T) {
	d, b := process(t, `
entity E is end;
architecture x of E is
    procedure Q is begin null; end;
begin
P: process
    variable v, w : integer;
begin
    v := 1;
    Q;
    w := 2;
end process; end;`)
	steps := Schedule(d, b)
	if !(steps[0] < steps[1] && steps[1] < steps[2]) {
		t.Errorf("call did not serialize: %v", steps)
	}
}

func TestTagsConcurrentGroup(t *testing.T) {
	d, b := process(t, `
entity E is port (a, bb : in integer); end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    v := a;
    w := bb;
end process; end;`)
	tags := Tags(d, b)
	// v, w, a, bb all touched only in step 1 → one shared tag.
	if tags["v"] == NoTag || tags["v"] != tags["w"] {
		t.Errorf("concurrent writes not tagged together: %v", tags)
	}
	if tags["a"] != tags["v"] {
		t.Errorf("port reads not in the group: %v", tags)
	}
}

func TestTagsSequentialGetsNoTag(t *testing.T) {
	d, b := process(t, `
entity E is port (a : in integer); end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    v := a;
    w := v;
end process; end;`)
	tags := Tags(d, b)
	// v is touched in steps 1 and 2 → strictly sequential.
	if tags["v"] != NoTag {
		t.Errorf("multi-step target tagged: %v", tags)
	}
}

func TestTagsSingletonGroupDropped(t *testing.T) {
	d, b := process(t, `
entity E is port (a : in integer); end;
architecture x of E is begin
P: process
    variable v : integer;
begin
    v := 1;
end process; end;`)
	tags := Tags(d, b)
	if tags["v"] != NoTag {
		t.Errorf("a group of one is not concurrency: %v", tags)
	}
}

func TestCompoundStatementFootprint(t *testing.T) {
	// The write inside the if body must conflict with the later read.
	d, b := process(t, `
entity E is port (a : in integer); end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    if a = 1 then
        v := 1;
    end if;
    w := v;
end process; end;`)
	steps := Schedule(d, b)
	if !(steps[0] < steps[1]) {
		t.Errorf("nested write not in footprint: %v", steps)
	}
}

func TestTagsOnTestdataFuzzy(t *testing.T) {
	// Smoke: tags derive for every behavior of the real example without
	// panic, and every tagged target shares its tag with at least one
	// other target of the same behavior.
	src := readTestdata(t, "fuzzy.vhd")
	df, err := vhdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range d.Behaviors {
		tags := Tags(d, b)
		count := map[int]int{}
		for _, tag := range tags {
			if tag != NoTag {
				count[tag]++
			}
		}
		for tag, n := range count {
			if n < 2 {
				t.Errorf("%s: tag %d has a single member", b.Name, tag)
			}
		}
	}
}
