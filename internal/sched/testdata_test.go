package sched

import (
	"os"
	"path/filepath"
	"testing"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("testdata: %v", err)
	}
	return string(data)
}
