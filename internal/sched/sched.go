// Package sched derives the concurrency tags of §2.3/§2.4.1: SLIF marks
// same-source channels that could be accessed concurrently with a shared
// tag. The paper obtains this information "by scheduling the contents of
// the behavior"; this package implements that scheduling as an ASAP
// schedule of the behavior's top-level statements under data dependencies.
//
// Two top-level statements conflict when one writes an object the other
// reads or writes (RAW/WAR/WAW), or when either transfers control
// (call/wait/return), which serializes. Statements land in the earliest
// step after all their dependencies; accesses performed in the same step
// could overlap, so the channels they belong to share a tag. A channel
// whose target is touched in several different steps is strictly
// sequential and gets no tag, matching the paper's conservative baseline.
package sched

import (
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// NoTag mirrors core.NoTag without importing core (sched is independent of
// the graph representation).
const NoTag = -1

// stmtInfo is the read/write footprint of one top-level statement.
type stmtInfo struct {
	reads    map[string]bool // target unique IDs
	writes   map[string]bool
	serial   bool // transfers control: orders against everything
	accessed []string
}

// Schedule assigns an ASAP control step (1-based) to each top-level
// statement of behavior b. Exposed for tests and the transform engine.
func Schedule(d *sem.Design, b *sem.Behavior) []int {
	infos := analyze(d, b)
	steps := make([]int, len(infos))
	for i := range infos {
		step := 1
		for j := 0; j < i; j++ {
			if conflicts(infos[j], infos[i]) && steps[j]+1 > step {
				step = steps[j] + 1
			}
		}
		steps[i] = step
	}
	return steps
}

// Tags returns the concurrency tag for each accessed target (by unique ID)
// of behavior b: targets only touched within one control step share that
// step's number as their tag; targets touched in several steps, and
// singleton groups, get NoTag.
func Tags(d *sem.Design, b *sem.Behavior) map[string]int {
	infos := analyze(d, b)
	steps := Schedule(d, b)

	// Which steps touch each target?
	targetSteps := map[string]map[int]bool{}
	for i, info := range infos {
		for _, t := range info.accessed {
			if targetSteps[t] == nil {
				targetSteps[t] = map[int]bool{}
			}
			targetSteps[t][steps[i]] = true
		}
	}

	// Candidate tag = the single step of a single-step target.
	tags := map[string]int{}
	perStep := map[int]int{} // step → number of single-step targets in it
	for t, ss := range targetSteps {
		if len(ss) == 1 {
			for s := range ss {
				tags[t] = s
				perStep[s]++
			}
		} else {
			tags[t] = NoTag
		}
	}
	// A "group" of one is not concurrency.
	for t, tag := range tags {
		if tag != NoTag && perStep[tag] < 2 {
			tags[t] = NoTag
		}
	}
	return tags
}

// analyze computes read/write footprints of b's top-level statements.
func analyze(d *sem.Design, b *sem.Behavior) []stmtInfo {
	infos := make([]stmtInfo, 0, len(b.Body))
	for _, s := range b.Body {
		info := stmtInfo{reads: map[string]bool{}, writes: map[string]bool{}}
		collect(d, b, s, &info)
		infos = append(infos, info)
	}
	return infos
}

func conflicts(a, bb stmtInfo) bool {
	if a.serial || bb.serial {
		return true
	}
	for w := range a.writes {
		if bb.reads[w] || bb.writes[w] {
			return true
		}
	}
	for w := range bb.writes {
		if a.reads[w] {
			return true
		}
	}
	return false
}

// note records an access to a resolved name in the footprint.
func note(d *sem.Design, b *sem.Behavior, name string, write bool, info *stmtInfo) {
	sym := d.Lookup(b, name)
	if sym == nil {
		return
	}
	var id string
	switch sym.Kind {
	case sem.SymObject:
		if sym.Object.IsParam {
			return
		}
		id = sym.Object.UniqueID
	case sem.SymPort:
		id = sym.Port.Name
	case sem.SymBehavior:
		id = sym.Behavior.UniqueID
		info.serial = true // calls serialize in the baseline schedule
		info.reads[id] = true
		info.accessed = append(info.accessed, id)
		return
	default:
		return
	}
	if write {
		info.writes[id] = true
	} else {
		info.reads[id] = true
	}
	info.accessed = append(info.accessed, id)
}

func collectExpr(d *sem.Design, b *sem.Behavior, e vhdl.Expr, info *stmtInfo) {
	vhdl.WalkExpr(e, func(x vhdl.Expr) {
		switch n := x.(type) {
		case *vhdl.NameExpr:
			note(d, b, n.Name, false, info)
		case *vhdl.CallExpr:
			note(d, b, n.Name, false, info)
		case *vhdl.AttrExpr:
			note(d, b, n.Prefix, false, info)
		}
	})
}

// collect accumulates the footprint of a statement subtree into info.
func collect(d *sem.Design, b *sem.Behavior, s vhdl.Stmt, info *stmtInfo) {
	switch st := s.(type) {
	case *vhdl.AssignStmt:
		collectExpr(d, b, st.Value, info)
		switch t := st.Target.(type) {
		case *vhdl.NameExpr:
			note(d, b, t.Name, true, info)
		case *vhdl.CallExpr:
			note(d, b, t.Name, true, info)
			for _, a := range t.Args {
				collectExpr(d, b, a, info)
			}
		}
	case *vhdl.IfStmt:
		collectExpr(d, b, st.Cond, info)
		for _, sub := range st.Then {
			collect(d, b, sub, info)
		}
		for _, el := range st.Elifs {
			collectExpr(d, b, el.Cond, info)
			for _, sub := range el.Body {
				collect(d, b, sub, info)
			}
		}
		for _, sub := range st.Else {
			collect(d, b, sub, info)
		}
	case *vhdl.CaseStmt:
		collectExpr(d, b, st.Expr, info)
		for _, w := range st.Whens {
			for _, sub := range w.Body {
				collect(d, b, sub, info)
			}
		}
	case *vhdl.ForStmt:
		for _, sub := range st.Body {
			collect(d, b, sub, info)
		}
	case *vhdl.WhileStmt:
		collectExpr(d, b, st.Cond, info)
		for _, sub := range st.Body {
			collect(d, b, sub, info)
		}
	case *vhdl.LoopStmt:
		for _, sub := range st.Body {
			collect(d, b, sub, info)
		}
	case *vhdl.ExitStmt:
		collectExpr(d, b, st.Cond, info)
	case *vhdl.CallStmt:
		note(d, b, st.Name, false, info)
		info.serial = true
		for _, a := range st.Args {
			collectExpr(d, b, a, info)
		}
	case *vhdl.WaitStmt:
		info.serial = true
		for _, sig := range st.OnSignals {
			note(d, b, sig, false, info)
		}
		collectExpr(d, b, st.Until, info)
	case *vhdl.ReturnStmt:
		info.serial = true
		collectExpr(d, b, st.Value, info)
	}
}
