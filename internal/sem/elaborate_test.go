package sem

import (
	"testing"

	"specsyn/internal/vhdl"
)

func elab(t *testing.T, src string) *Design {
	t.Helper()
	df, err := vhdl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := Elaborate(df)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return d
}

const semSrc = `
entity E is
    port ( a : in integer range 0 to 255; o : out integer range 0 to 255 );
end;
architecture behav of E is
    subtype byte is integer range 0 to 255;
    type arr is array (1 to 128) of byte;
    signal shared : byte;

    function Min(x : in integer; y : in integer) return integer is
    begin
        if x < y then
            return x;
        end if;
        return y;
    end;
begin
    Main: process
        variable v : byte;
        variable tbl : arr;

        procedure Inner(n : in integer) is
            variable loc : integer;
        begin
            loc := n;
            v := Min(tbl(loc), shared);
        end;
    begin
        v := a;
        Inner(3);
        o <= v;
        wait on a;
    end process;
end;
`

func TestElaborateBehaviors(t *testing.T) {
	d := elab(t, semSrc)
	names := map[string]*Behavior{}
	for _, b := range d.Behaviors {
		names[b.Name] = b
	}
	if b := names["main"]; b == nil || !b.IsProcess {
		t.Error("main process missing or not a process")
	}
	if b := names["min"]; b == nil || !b.IsFunction || b.Return == nil {
		t.Error("min function missing or malformed")
	}
	if b := names["inner"]; b == nil || b.IsProcess || b.IsFunction {
		t.Error("inner procedure missing or misclassified")
	}
}

func TestElaborateObjects(t *testing.T) {
	d := elab(t, semSrc)
	byName := map[string]*Object{}
	for _, o := range d.Objects {
		byName[o.Name] = o
	}
	if o := byName["shared"]; o == nil || o.Owner != nil {
		t.Error("architecture signal shared missing or owned")
	}
	if o := byName["v"]; o == nil || o.Owner == nil || o.Owner.Name != "main" {
		t.Error("process variable v missing or wrong owner")
	}
	if o := byName["tbl"]; o == nil || !o.Type.IsArray() || o.Type.Len != 128 {
		t.Errorf("array variable tbl: %+v", byName["tbl"])
	}
	if o := byName["loc"]; o == nil || o.Owner.Name != "inner" {
		t.Error("subprogram local loc missing")
	}
	// Parameters must not be objects.
	for _, bad := range []string{"n", "x", "y"} {
		if byName[bad] != nil {
			t.Errorf("parameter %q leaked into Objects", bad)
		}
	}
}

func TestScopeResolution(t *testing.T) {
	d := elab(t, semSrc)
	var inner *Behavior
	for _, b := range d.Behaviors {
		if b.Name == "inner" {
			inner = b
		}
	}
	if inner == nil {
		t.Fatal("no inner")
	}
	// Inner sees: its local, its param, the enclosing process's variables,
	// the architecture signal, the function, and the ports.
	for _, name := range []string{"loc", "n", "v", "tbl", "shared", "min", "a"} {
		if d.Lookup(inner, name) == nil {
			t.Errorf("inner cannot resolve %q", name)
		}
	}
	// The param resolves as a param-marked object.
	if sym := d.Lookup(inner, "n"); sym.Object == nil || !sym.Object.IsParam {
		t.Error("parameter n not marked IsParam")
	}
}

func TestParamBits(t *testing.T) {
	d := elab(t, semSrc)
	for _, b := range d.Behaviors {
		switch b.Name {
		case "min":
			// two default integers in, one default integer back
			if got := b.ParamBits(); got != 96 {
				t.Errorf("min ParamBits = %d, want 96", got)
			}
		case "inner":
			if got := b.ParamBits(); got != 32 {
				t.Errorf("inner ParamBits = %d, want 32", got)
			}
		}
	}
}

func TestImplicitSymbols(t *testing.T) {
	src := `
entity E is end;
architecture x of E is begin
P: process
begin
    UndeclaredProc(1);
    undeclaredvar := 3;
    wait;
end process;
end;
`
	d := elab(t, src)
	if len(d.Warnings) != 2 {
		t.Fatalf("warnings = %v", d.Warnings)
	}
	foundB, foundV := false, false
	for _, b := range d.Behaviors {
		if b.Name == "undeclaredproc" && b.Implicit {
			foundB = true
		}
	}
	for _, o := range d.Objects {
		if o.Name == "undeclaredvar" && o.Implicit {
			foundV = true
		}
	}
	if !foundB || !foundV {
		t.Errorf("implicit symbols missing (behavior %v, variable %v)", foundB, foundV)
	}
}

func TestLoopVarNotImplicit(t *testing.T) {
	src := `
entity E is end;
architecture x of E is begin
P: process
    variable v : integer;
begin
    for i in 1 to 4 loop
        v := v + i;
    end loop;
    wait;
end process;
end;
`
	d := elab(t, src)
	for _, o := range d.Objects {
		if o.Name == "i" {
			t.Error("loop variable became an object")
		}
	}
	if len(d.Warnings) != 0 {
		t.Errorf("warnings: %v", d.Warnings)
	}
}

func TestUniqueIDCollision(t *testing.T) {
	src := `
entity E is end;
architecture x of E is begin
P1: process
    variable v : integer;
begin
    v := 1;
    wait;
end process;
P2: process
    variable v : integer;
begin
    v := 2;
    wait;
end process;
end;
`
	d := elab(t, src)
	seen := map[string]bool{}
	for _, b := range d.Behaviors {
		if seen[b.UniqueID] {
			t.Errorf("duplicate unique id %q", b.UniqueID)
		}
		seen[b.UniqueID] = true
	}
	for _, o := range d.Objects {
		if seen[o.UniqueID] {
			t.Errorf("duplicate unique id %q", o.UniqueID)
		}
		seen[o.UniqueID] = true
	}
	// The two v's must be qualified by owner.
	if !seen["p1.v"] || !seen["p2.v"] {
		t.Errorf("qualified names missing: %v", seen)
	}
}

func TestForwardCallResolution(t *testing.T) {
	src := `
entity E is end;
architecture x of E is
    procedure A is
    begin
        B;
    end;
    procedure B is
    begin
        null;
    end;
begin
P: process begin A; wait; end process;
end;
`
	d := elab(t, src)
	if len(d.Warnings) != 0 {
		t.Errorf("forward call produced warnings: %v", d.Warnings)
	}
}

func TestEvalStatic(t *testing.T) {
	src := `
entity E is end;
architecture x of E is
    constant n : integer := 8;
    constant m : integer := n * 2 - 1;
begin
P: process
    variable v : integer;
begin
    v := m;
    wait;
end process;
end;
`
	d := elab(t, src)
	var p *Behavior
	for _, b := range d.Behaviors {
		if b.IsProcess {
			p = b
		}
	}
	v, ok := d.EvalStatic(p, &vhdl.NameExpr{Name: "m"})
	if !ok || v != 15 {
		t.Errorf("EvalStatic(m) = %d,%v, want 15,true", v, ok)
	}
}

func TestMissingArchitecture(t *testing.T) {
	df := vhdl.MustParse("entity Lonely is end;")
	if _, err := ElaborateAll(df); err == nil {
		t.Error("entity without architecture should fail")
	}
}

func TestElaborateTestdata(t *testing.T) {
	for _, name := range []string{"ans", "ether", "fuzzy", "vol"} {
		src := readTestdata(t, name+".vhd")
		df, err := vhdl.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		d, err := Elaborate(df)
		if err != nil {
			t.Fatalf("%s: elaborate: %v", name, err)
		}
		if len(d.Warnings) != 0 {
			t.Errorf("%s: unexpected warnings: %v", name, d.Warnings)
		}
	}
}

func TestElaborateAllMultipleDesigns(t *testing.T) {
	src := `
entity A is port (x : in integer); end;
architecture xa of A is begin
P: process begin wait on x; end process;
end;
entity B is port (y : out integer); end;
architecture xb of B is begin
Q: process begin y <= 1; wait; end process;
end;
`
	df := vhdl.MustParse(src)
	ds, err := ElaborateAll(df)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("designs = %d", len(ds))
	}
	if ds[0].Name != "a" || ds[1].Name != "b" {
		t.Errorf("names: %s, %s", ds[0].Name, ds[1].Name)
	}
	// The one-design helper must refuse the two-design file.
	if _, err := Elaborate(df); err == nil {
		t.Error("Elaborate accepted a two-design file")
	}
}

func TestBitVectorPorts(t *testing.T) {
	src := `
entity E is
    port ( bus8 : in bit_vector(7 downto 0); flag : out bit );
end;
architecture x of E is
    type bit_vector is array (0 to 0) of bit;
begin
P: process begin flag <= '0'; wait on bus8; end process;
end;
`
	// bit_vector is not predefined in the subset; declaring it in the
	// architecture after use in the port list will not resolve, so this
	// documents the subset boundary: the port type falls back with an
	// elaboration error rather than a crash.
	df, perr := vhdl.Parse(src)
	if perr != nil {
		t.Fatalf("parse: %v", perr)
	}
	if _, err := Elaborate(df); err == nil {
		t.Log("bit_vector resolved (forward type use accepted)")
	}
}

func TestEvalConstOperators(t *testing.T) {
	src := `
entity E is end;
architecture x of E is
    constant a : integer := 17;
    constant b : integer := 5;
    constant neg : integer := -a;
    constant sum : integer := a + b;
    constant dif : integer := a - b;
    constant prod : integer := a * b;
    constant quo : integer := a / b;
    constant m : integer := (0 - a) mod b;
    constant r : integer := a rem b;
    constant ab : integer := abs (0 - a);
    constant pos : integer := +b;
begin
P: process begin wait; end process;
end;
`
	d := elab(t, src)
	want := map[string]int64{
		"neg": -17, "sum": 22, "dif": 12, "prod": 85, "quo": 3,
		"m": 3, // VHDL mod: result has the sign of the divisor
		"r": 2, "ab": 17, "pos": 5,
	}
	for name, w := range want {
		sym := d.Lookup(nil, name)
		if sym == nil || !sym.HasConst {
			t.Errorf("constant %q not statically evaluated", name)
			continue
		}
		if sym.ConstVal != w {
			t.Errorf("%s = %d, want %d", name, sym.ConstVal, w)
		}
	}
}

func TestEvalConstDivByZeroNotStatic(t *testing.T) {
	src := `
entity E is end;
architecture x of E is
    constant z : integer := 0;
begin
P: process
    variable v : integer;
begin
    v := z;
    wait;
end process;
end;
`
	d := elab(t, src)
	var p *Behavior
	for _, b := range d.Behaviors {
		if b.IsProcess {
			p = b
		}
	}
	if _, ok := d.EvalStatic(p, &vhdl.BinExpr{Op: vhdl.SLASH,
		L: &vhdl.IntExpr{Val: 1}, R: &vhdl.NameExpr{Name: "z"}}); ok {
		t.Error("division by zero evaluated statically")
	}
}

func TestEnumTypeDecl(t *testing.T) {
	src := `
entity E is end;
architecture x of E is
    type state is (idle, run, stop);
    signal s : state;
begin
P: process
begin
    if s = run then
        s <= stop;
    end if;
    wait on s;
end process;
end;
`
	d := elab(t, src)
	st := d.Types["state"]
	if st == nil || st.Kind != KindEnum || len(st.EnumLits) != 3 {
		t.Fatalf("enum type: %+v", st)
	}
	if st.Bits() != 2 {
		t.Errorf("3-literal enum bits = %d, want 2", st.Bits())
	}
	// Enum literals resolve with positions.
	if sym := d.Lookup(nil, "stop"); sym == nil || !sym.HasConst || sym.ConstVal != 2 {
		t.Errorf("enum literal stop: %+v", sym)
	}
}

func TestIntegerRangeTypeDecl(t *testing.T) {
	src := `
entity E is end;
architecture x of E is
    type small is range 0 to 63;
    signal s : small;
begin
P: process begin s <= 1; wait on s; end process;
end;
`
	d := elab(t, src)
	if tp := d.Types["small"]; tp == nil || tp.Kind != KindInteger || tp.Bits() != 6 {
		t.Errorf("range type: %+v", d.Types["small"])
	}
}
