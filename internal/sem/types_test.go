package sem

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("testdata: %v", err)
	}
	return string(data)
}

func TestIntBits(t *testing.T) {
	cases := []struct {
		low, high int64
		want      int
	}{
		{0, 0, 1},
		{0, 1, 1},
		{0, 255, 8}, // the paper's 8-bit integer (Figure 3)
		{0, 256, 9},
		{1, 384, 9},
		{0, 1023, 10},
		{-1, 0, 1},
		{-128, 127, 8},
		{-129, 127, 9},
		{0, 1<<31 - 1, 31},
		{-(1 << 31), 1<<31 - 1, 32}, // default integer
	}
	for _, c := range cases {
		tp := &Type{Kind: KindInteger, Low: c.low, High: c.high}
		if got := tp.Bits(); got != c.want {
			t.Errorf("bits(%d..%d) = %d, want %d", c.low, c.high, got, c.want)
		}
	}
}

func TestAddrBits(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{1, 1}, {2, 1}, {3, 2}, {128, 7}, {129, 8}, {384, 9}, {512, 9}, {513, 10},
	}
	for _, c := range cases {
		if got := addrBits(c.n); got != c.want {
			t.Errorf("addrBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestArrayAccessBits(t *testing.T) {
	byte8 := &Type{Kind: KindInteger, Low: 0, High: 255}
	// The paper's Figure 3: a 128-element array of 8-bit scalars costs
	// 7 address bits + 8 data bits = 15 per access.
	arr := &Type{Kind: KindArray, Elem: byte8, Len: 128}
	if got := arr.AccessBits(); got != 15 {
		t.Errorf("AccessBits(arr128 of byte) = %d, want 15", got)
	}
	if got := arr.TotalBits(); got != 1024 {
		t.Errorf("TotalBits = %d, want 1024", got)
	}
	// Scalars transfer their encoding only.
	if got := byte8.AccessBits(); got != 8 {
		t.Errorf("AccessBits(byte) = %d, want 8", got)
	}
}

func TestEnumBits(t *testing.T) {
	for n, want := range map[int]int{2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4} {
		lits := make([]string, n)
		tp := &Type{Kind: KindEnum, EnumLits: lits}
		if got := tp.Bits(); got != want {
			t.Errorf("enum(%d).Bits = %d, want %d", n, got, want)
		}
	}
}

func TestPredefinedTypes(t *testing.T) {
	m := predefinedTypes()
	if m["integer"].Bits() != 32 {
		t.Errorf("integer bits = %d", m["integer"].Bits())
	}
	if m["bit"].Bits() != 1 || m["boolean"].Bits() != 1 {
		t.Error("bit/boolean must be 1 bit")
	}
	if m["natural"].Low != 0 || m["positive"].Low != 1 {
		t.Error("natural/positive bounds wrong")
	}
}

// Property: widening a range never shrinks the bit count, and bit counts
// are always at least 1.
func TestIntBitsMonotoneQuick(t *testing.T) {
	f := func(a, b int32, widen uint8) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		t1 := &Type{Kind: KindInteger, Low: lo, High: hi}
		t2 := &Type{Kind: KindInteger, Low: lo, High: hi + int64(widen)}
		return t1.Bits() >= 1 && t2.Bits() >= t1.Bits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: an array access always costs at least its element's bits and
// at least one address bit more than a scalar of the element type.
func TestArrayAccessBitsQuick(t *testing.T) {
	f := func(rawLen uint16, rawHigh uint8) bool {
		length := int64(rawLen%2048) + 1
		elem := &Type{Kind: KindInteger, Low: 0, High: int64(rawHigh)}
		arr := &Type{Kind: KindArray, Elem: elem, Len: length}
		return arr.AccessBits() >= elem.Bits()+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	intT := &Type{Name: "byte", Kind: KindInteger, Low: 0, High: 255}
	if got := intT.String(); got != "byte range 0 to 255" {
		t.Errorf("String() = %q", got)
	}
	arr := &Type{Name: "arr", Kind: KindArray, Elem: intT, Len: 16}
	if got := arr.String(); got != "arr array(16) of byte" {
		t.Errorf("String() = %q", got)
	}
	enum := &Type{Name: "state", Kind: KindEnum, EnumLits: []string{"a", "b"}}
	if got := enum.String(); got != "state" {
		t.Errorf("String() = %q", got)
	}
}
