package sem

import (
	"errors"
	"fmt"
	"strings"

	"specsyn/internal/vhdl"
)

// SymKind classifies resolved symbols.
type SymKind int

// Symbol kinds.
const (
	SymPort SymKind = iota
	SymObject
	SymBehavior
	SymEnumLit
	SymType
	SymLoopVar
)

// Symbol is one resolved name.
type Symbol struct {
	Kind     SymKind
	Name     string
	Port     *Port
	Object   *Object
	Behavior *Behavior
	Type     *Type
	ConstVal int64 // enum literal position, or constant value when HasConst
	HasConst bool
}

// Port is an elaborated entity port.
type Port struct {
	Name string
	Dir  vhdl.PortDir
	Type *Type
}

// Object is an elaborated variable, signal or constant. Every Object
// becomes a variable node in SLIF.
type Object struct {
	Name     string // declared name
	UniqueID string // collision-free name used as the SLIF node name
	Class    vhdl.ObjectClass
	Type     *Type
	Owner    *Behavior // declaring process/subprogram; nil at architecture level
	Implicit bool      // created for an unresolved name
	IsParam  bool      // subprogram parameter: transferred via the call channel, not a SLIF node
	Init     vhdl.Expr // declaration initializer, if any (used by the simulator)
	Pos      vhdl.Pos  // declaration position; zero for implicit objects
}

// Param is an elaborated subprogram parameter.
type Param struct {
	Name string
	Dir  vhdl.PortDir
	Type *Type
}

// Behavior is an elaborated process, procedure or function. Behaviors map
// one-to-one onto SLIF behavior nodes.
type Behavior struct {
	Name       string // declared name or process label
	UniqueID   string // collision-free name used as the SLIF node name
	IsProcess  bool
	IsFunction bool
	Params     []*Param
	Return     *Type
	Decls      []*Object // locally declared objects
	Body       []vhdl.Stmt
	Implicit   bool      // created for an unresolved call target
	Parent     *Behavior // lexically enclosing behavior, nil at architecture level
	Pos        vhdl.Pos  // declaration position; zero for implicit behaviors
	scope      *scope
}

// ParamBits returns the number of bits needed to transfer all parameters
// (and the function result, if any) in one call, per §2.4.1.
func (b *Behavior) ParamBits() int {
	n := 0
	for _, p := range b.Params {
		n += p.Type.AccessBits()
	}
	if b.Return != nil {
		n += b.Return.Bits()
	}
	return n
}

// Design is the elaborated model of one entity/architecture pair.
type Design struct {
	Name      string // entity name
	ArchName  string
	Ports     []*Port
	Types     map[string]*Type
	Behaviors []*Behavior
	Objects   []*Object
	Warnings  []string

	arch *scope
}

// scope is a lexical scope chain.
type scope struct {
	parent *scope
	syms   map[string]*Symbol
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, syms: make(map[string]*Symbol)}
}

func (s *scope) define(name string, sym *Symbol) { s.syms[name] = sym }

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

// Lookup resolves a name in the behavior's scope chain (locals and
// parameters, then the enclosing process if any, then architecture
// declarations, entity ports and predefined names). It returns nil for
// names that did not resolve during elaboration — after a successful
// Elaborate, every name that appears in a body resolves.
func (d *Design) Lookup(b *Behavior, name string) *Symbol {
	if b != nil && b.scope != nil {
		return b.scope.lookup(name)
	}
	return d.arch.lookup(name)
}

// elaborator carries state while elaborating a design file.
type elaborator struct {
	d    *Design
	errs []string
}

func (e *elaborator) errorf(pos vhdl.Pos, format string, args ...any) {
	e.errs = append(e.errs, fmt.Sprintf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (e *elaborator) warnf(format string, args ...any) {
	e.d.Warnings = append(e.d.Warnings, fmt.Sprintf(format, args...))
}

// ElaborateAll elaborates every entity in the file that has a matching
// architecture, in source order.
func ElaborateAll(df *vhdl.DesignFile) ([]*Design, error) {
	var designs []*Design
	var errs []string
	for _, ent := range df.Entities {
		var arch *vhdl.Architecture
		for _, a := range df.Architectures {
			if a.EntityName == ent.Name {
				arch = a
				break
			}
		}
		if arch == nil {
			errs = append(errs, fmt.Sprintf("entity %s has no architecture", ent.Name))
			continue
		}
		d, err := elaboratePair(ent, arch)
		if err != nil {
			errs = append(errs, err.Error())
		}
		if d != nil {
			designs = append(designs, d)
		}
	}
	if len(designs) == 0 && len(errs) == 0 {
		errs = append(errs, "design file contains no entity/architecture pair")
	}
	if len(errs) > 0 {
		return designs, errors.New(strings.Join(errs, "\n"))
	}
	return designs, nil
}

// Elaborate elaborates a file expected to contain exactly one design.
func Elaborate(df *vhdl.DesignFile) (*Design, error) {
	ds, err := ElaborateAll(df)
	if err != nil {
		return nil, err
	}
	if len(ds) != 1 {
		return nil, fmt.Errorf("expected exactly one design, found %d", len(ds))
	}
	return ds[0], nil
}

func elaboratePair(ent *vhdl.Entity, arch *vhdl.Architecture) (*Design, error) {
	e := &elaborator{d: &Design{
		Name:     ent.Name,
		ArchName: arch.Name,
		Types:    predefinedTypes(),
	}}
	d := e.d
	d.arch = newScope(nil)
	for name, t := range d.Types {
		d.arch.define(name, &Symbol{Kind: SymType, Name: name, Type: t})
	}

	// Entity ports.
	for _, pd := range ent.Ports {
		t := e.resolveTypeRef(d.arch, pd.Type)
		for _, name := range pd.Names {
			p := &Port{Name: name, Dir: pd.Dir, Type: t}
			d.Ports = append(d.Ports, p)
			d.arch.define(name, &Symbol{Kind: SymPort, Name: name, Port: p, Type: t})
		}
	}

	// Architecture declarative part: first pass registers names so that
	// subprograms and processes may reference one another; the second pass
	// elaborates bodies.
	e.declarePass(d.arch, arch.Decls, nil)
	for _, ps := range arch.Processes {
		e.declareProcess(d.arch, ps)
	}
	e.bodyPass(d.arch, arch.Decls, nil)
	for _, ps := range arch.Processes {
		e.elabProcessBody(d.arch, ps)
	}

	// Resolve every name used in every body, creating implicit symbols for
	// unresolved calls (external behaviors) and names (external variables),
	// so downstream passes never see unresolved names.
	e.resolveBodies()

	e.assignUniqueIDs()

	if len(e.errs) > 0 {
		return d, errors.New(strings.Join(e.errs, "\n"))
	}
	return d, nil
}

// declarePass registers types, objects and subprogram names in sc. owner is
// the enclosing behavior (nil at architecture level).
func (e *elaborator) declarePass(sc *scope, decls []vhdl.Decl, owner *Behavior) {
	d := e.d
	for _, decl := range decls {
		switch dd := decl.(type) {
		case *vhdl.TypeDecl:
			t := e.elabTypeDef(sc, dd)
			d.Types[dd.Name] = t
			sc.define(dd.Name, &Symbol{Kind: SymType, Name: dd.Name, Type: t})
			for i, lit := range t.EnumLits {
				sc.define(lit, &Symbol{Kind: SymEnumLit, Name: lit, Type: t, ConstVal: int64(i), HasConst: true})
			}
		case *vhdl.SubtypeDecl:
			t := e.resolveTypeRef(sc, dd.Base)
			named := *t
			named.Name = dd.Name
			d.Types[dd.Name] = &named
			sc.define(dd.Name, &Symbol{Kind: SymType, Name: dd.Name, Type: &named})
		case *vhdl.ObjectDecl:
			t := e.resolveTypeRef(sc, dd.Type)
			for _, name := range dd.Names {
				obj := &Object{Name: name, Class: dd.Class, Type: t, Owner: owner, Init: dd.Init, Pos: dd.Pos}
				d.Objects = append(d.Objects, obj)
				if owner != nil {
					owner.Decls = append(owner.Decls, obj)
				}
				sym := &Symbol{Kind: SymObject, Name: name, Object: obj, Type: t}
				if dd.Class == vhdl.ClassConstant && dd.Init != nil {
					if v, ok := e.evalConst(sc, dd.Init); ok {
						sym.ConstVal, sym.HasConst = v, true
					}
				}
				sc.define(name, sym)
			}
		case *vhdl.SubprogramDecl:
			b := &Behavior{Name: dd.Name, IsFunction: dd.IsFunction, Body: dd.Body, Parent: owner, Pos: dd.Pos}
			for _, pd := range dd.Params {
				t := e.resolveTypeRef(sc, pd.Type)
				for _, n := range pd.Names {
					b.Params = append(b.Params, &Param{Name: n, Dir: pd.Dir, Type: t})
				}
			}
			if dd.Return != nil {
				b.Return = e.resolveTypeRef(sc, dd.Return)
			}
			d.Behaviors = append(d.Behaviors, b)
			sc.define(dd.Name, &Symbol{Kind: SymBehavior, Name: dd.Name, Behavior: b, Type: b.Return})
		}
	}
}

// bodyPass elaborates subprogram bodies declared in decls: builds their
// local scopes (params + locals) and recursively handles nested decls.
func (e *elaborator) bodyPass(sc *scope, decls []vhdl.Decl, owner *Behavior) {
	for _, decl := range decls {
		dd, ok := decl.(*vhdl.SubprogramDecl)
		if !ok {
			continue
		}
		sym := sc.lookup(dd.Name)
		if sym == nil || sym.Kind != SymBehavior {
			continue
		}
		b := sym.Behavior
		b.scope = newScope(sc)
		for _, p := range b.Params {
			b.scope.define(p.Name, &Symbol{Kind: SymObject, Name: p.Name, Type: p.Type,
				Object: &Object{Name: p.Name, Class: vhdl.ClassVariable, Type: p.Type, Owner: b, IsParam: true}})
		}
		// Parameters are not SLIF nodes; mark them by not appending to
		// d.Objects. Their Object field exists only so expression walkers
		// can treat them uniformly as local data.
		e.declarePass(b.scope, dd.Decls, b)
		e.bodyPass(b.scope, dd.Decls, b)
	}
}

func (e *elaborator) declareProcess(sc *scope, ps *vhdl.ProcessStmt) {
	b := &Behavior{Name: ps.Label, IsProcess: true, Body: ps.Body, Pos: ps.Pos}
	e.d.Behaviors = append(e.d.Behaviors, b)
	sc.define(ps.Label, &Symbol{Kind: SymBehavior, Name: ps.Label, Behavior: b})
}

func (e *elaborator) elabProcessBody(sc *scope, ps *vhdl.ProcessStmt) {
	sym := sc.lookup(ps.Label)
	if sym == nil || sym.Kind != SymBehavior {
		return
	}
	b := sym.Behavior
	b.scope = newScope(sc)
	e.declarePass(b.scope, ps.Decls, b)
	e.bodyPass(b.scope, ps.Decls, b)
}

// resolveTypeRef resolves a type mark plus optional constraints to a
// concrete type.
func (e *elaborator) resolveTypeRef(sc *scope, tr *vhdl.TypeRef) *Type {
	if tr == nil {
		return e.d.Types["integer"]
	}
	base := e.d.Types[tr.Name]
	if base == nil {
		if sym := sc.lookup(tr.Name); sym != nil && sym.Kind == SymType {
			base = sym.Type
		}
	}
	if base == nil {
		e.errorf(tr.Pos, "unknown type %q (defaulting to integer)", tr.Name)
		base = e.d.Types["integer"]
	}
	if tr.Range != nil {
		lo, _ := e.evalConst(sc, tr.Range.Low)
		hi, ok := e.evalConst(sc, tr.Range.High)
		if !ok {
			e.errorf(tr.Pos, "non-constant range on type %q", tr.Name)
			return base
		}
		return &Type{Name: tr.Name, Kind: KindInteger, Low: lo, High: hi}
	}
	if tr.Index != nil {
		lo, _ := e.evalConst(sc, tr.Index.Low)
		hi, ok := e.evalConst(sc, tr.Index.High)
		if !ok {
			e.errorf(tr.Pos, "non-constant index constraint on type %q", tr.Name)
			return base
		}
		elem := base
		if base.Kind == KindArray {
			elem = base.Elem
		}
		return &Type{Name: tr.Name, Kind: KindArray, Elem: elem, Len: hi - lo + 1, IdxLow: lo}
	}
	return base
}

func (e *elaborator) elabTypeDef(sc *scope, td *vhdl.TypeDecl) *Type {
	switch {
	case td.Def.Array != nil:
		ad := td.Def.Array
		lo, _ := e.evalConst(sc, ad.Low)
		hi, ok := e.evalConst(sc, ad.High)
		if !ok {
			e.errorf(td.Pos, "non-constant array bounds in type %q", td.Name)
			hi = lo
		}
		elem := e.resolveTypeRef(sc, ad.Element)
		return &Type{Name: td.Name, Kind: KindArray, Elem: elem, Len: hi - lo + 1, IdxLow: lo}
	case td.Def.Range != nil:
		lo, _ := e.evalConst(sc, td.Def.Range.Low)
		hi, ok := e.evalConst(sc, td.Def.Range.High)
		if !ok {
			e.errorf(td.Pos, "non-constant range in type %q", td.Name)
			hi = lo
		}
		return &Type{Name: td.Name, Kind: KindInteger, Low: lo, High: hi}
	default:
		return &Type{Name: td.Name, Kind: KindEnum, EnumLits: td.Def.EnumLits}
	}
}

// evalConst evaluates a static expression: literals, constants with static
// initializers, enum literal positions, and integer arithmetic over them.
func (e *elaborator) evalConst(sc *scope, expr vhdl.Expr) (int64, bool) {
	switch x := expr.(type) {
	case *vhdl.IntExpr:
		return x.Val, true
	case *vhdl.CharExpr:
		return int64(x.Val), true
	case *vhdl.NameExpr:
		if sym := sc.lookup(x.Name); sym != nil && sym.HasConst {
			return sym.ConstVal, true
		}
		return 0, false
	case *vhdl.UnaryExpr:
		v, ok := e.evalConst(sc, x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case vhdl.MINUS:
			return -v, true
		case vhdl.PLUS:
			return v, true
		case vhdl.KwABS:
			if v < 0 {
				return -v, true
			}
			return v, true
		}
		return 0, false
	case *vhdl.BinExpr:
		l, ok1 := e.evalConst(sc, x.L)
		r, ok2 := e.evalConst(sc, x.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case vhdl.PLUS:
			return l + r, true
		case vhdl.MINUS:
			return l - r, true
		case vhdl.STAR:
			return l * r, true
		case vhdl.SLASH:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case vhdl.KwMOD:
			if r == 0 {
				return 0, false
			}
			return ((l % r) + r) % r, true
		case vhdl.KwREM:
			if r == 0 {
				return 0, false
			}
			return l % r, true
		}
		return 0, false
	}
	return 0, false
}

// EvalStatic evaluates a static expression in a behavior's scope. It is
// exported for the frequency engine, which needs loop bounds.
func (d *Design) EvalStatic(b *Behavior, expr vhdl.Expr) (int64, bool) {
	e := &elaborator{d: d}
	sc := d.arch
	if b != nil && b.scope != nil {
		sc = b.scope
	}
	return e.evalConst(sc, expr)
}

// resolveBodies walks every behavior body resolving every referenced name.
// Call targets that do not resolve become implicit external behaviors;
// other unresolved names become implicit architecture-level variables. Both
// are reported as warnings.
func (e *elaborator) resolveBodies() {
	d := e.d
	// Iterate with an index: implicit behaviors appended during the walk
	// have empty bodies, so walking them is trivial but keeps the loop sound.
	for i := 0; i < len(d.Behaviors); i++ {
		b := d.Behaviors[i]
		loopVars := map[string]int{}
		var walkExpr func(expr vhdl.Expr)
		walkExpr = func(expr vhdl.Expr) {
			switch x := expr.(type) {
			case *vhdl.NameExpr:
				e.resolveName(b, x.Name, loopVars, false)
			case *vhdl.AttrExpr:
				e.resolveName(b, x.Prefix, loopVars, false)
			case *vhdl.CallExpr:
				e.resolveName(b, x.Name, loopVars, true)
				for _, a := range x.Args {
					walkExpr(a)
				}
			case *vhdl.BinExpr:
				walkExpr(x.L)
				walkExpr(x.R)
			case *vhdl.UnaryExpr:
				walkExpr(x.X)
			case *vhdl.AggregateExpr:
				for _, a := range x.Assocs {
					if a.Choice != nil {
						walkExpr(a.Choice)
					}
					walkExpr(a.Value)
				}
			}
		}
		var walkStmts func(stmts []vhdl.Stmt)
		walkStmts = func(stmts []vhdl.Stmt) {
			for _, s := range stmts {
				switch st := s.(type) {
				case *vhdl.AssignStmt:
					walkExpr(st.Target)
					walkExpr(st.Value)
				case *vhdl.IfStmt:
					walkExpr(st.Cond)
					walkStmts(st.Then)
					for _, el := range st.Elifs {
						walkExpr(el.Cond)
						walkStmts(el.Body)
					}
					walkStmts(st.Else)
				case *vhdl.CaseStmt:
					walkExpr(st.Expr)
					for _, w := range st.Whens {
						for _, c := range w.Choices {
							walkExpr(c)
						}
						walkStmts(w.Body)
					}
				case *vhdl.ForStmt:
					walkExpr(st.Low)
					walkExpr(st.High)
					loopVars[st.Var]++
					walkStmts(st.Body)
					loopVars[st.Var]--
				case *vhdl.WhileStmt:
					walkExpr(st.Cond)
					walkStmts(st.Body)
				case *vhdl.LoopStmt:
					walkStmts(st.Body)
				case *vhdl.ExitStmt:
					if st.Cond != nil {
						walkExpr(st.Cond)
					}
				case *vhdl.CallStmt:
					e.resolveName(b, st.Name, loopVars, true)
					for _, a := range st.Args {
						walkExpr(a)
					}
				case *vhdl.WaitStmt:
					for _, sig := range st.OnSignals {
						e.resolveName(b, sig, loopVars, false)
					}
					if st.Until != nil {
						walkExpr(st.Until)
					}
				case *vhdl.ReturnStmt:
					if st.Value != nil {
						walkExpr(st.Value)
					}
				}
			}
		}
		walkStmts(b.Body)
	}
}

// resolveName resolves one name use; isCall reports whether it appeared in
// call position (possibly an array index — resolution decides).
func (e *elaborator) resolveName(b *Behavior, name string, loopVars map[string]int, isCall bool) {
	if loopVars[name] > 0 {
		return
	}
	sc := e.d.arch
	if b.scope != nil {
		sc = b.scope
	}
	if sym := sc.lookup(name); sym != nil {
		return
	}
	d := e.d
	if isCall {
		nb := &Behavior{Name: name, Implicit: true}
		d.Behaviors = append(d.Behaviors, nb)
		d.arch.define(name, &Symbol{Kind: SymBehavior, Name: name, Behavior: nb})
		e.warnf("call target %q is undeclared; created implicit external behavior", name)
		return
	}
	t := d.Types["integer"]
	obj := &Object{Name: name, Class: vhdl.ClassVariable, Type: t, Implicit: true}
	d.Objects = append(d.Objects, obj)
	d.arch.define(name, &Symbol{Kind: SymObject, Name: name, Object: obj, Type: t})
	e.warnf("name %q is undeclared; created implicit variable", name)
}

// assignUniqueIDs gives every behavior and object a collision-free node
// name: the declared name when unique, otherwise qualified by owner.
func (e *elaborator) assignUniqueIDs() {
	d := e.d
	count := map[string]int{}
	for _, b := range d.Behaviors {
		count[b.Name]++
	}
	for _, o := range d.Objects {
		count[o.Name]++
	}
	for _, p := range d.Ports {
		count[p.Name]++
	}
	used := map[string]bool{}
	pick := func(short, qualified string) string {
		name := short
		if count[short] > 1 || used[name] {
			name = qualified
		}
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s_%d", qualified, i)
		}
		used[name] = true
		return name
	}
	for _, b := range d.Behaviors {
		b.UniqueID = pick(b.Name, b.Name)
	}
	for _, o := range d.Objects {
		q := o.Name
		if o.Owner != nil {
			q = o.Owner.Name + "." + o.Name
		}
		o.UniqueID = pick(o.Name, q)
	}
}
