// Package sem elaborates a parsed VHDL design file into a resolved design
// model: symbol tables, concrete types with bit widths, behaviors
// (processes and subprograms) with resolvable name scopes, and the set of
// variables that become SLIF nodes.
//
// The bit-width rules implement §2.4.1 of the paper: a scalar is encoded in
// the minimum number of bits for its range; an access to an array of
// scalars costs the element bits plus the address bits needed to select an
// element; behaviors cost the sum of their parameter bits.
package sem

import (
	"fmt"
	"math/bits"
)

// TypeKind classifies elaborated types.
type TypeKind int

// Type kinds.
const (
	KindInteger TypeKind = iota
	KindEnum
	KindArray
)

// Type is an elaborated (fully constrained) type.
type Type struct {
	Name string
	Kind TypeKind

	// Integer types.
	Low, High int64

	// Enumeration types (bit, boolean, character, user enums).
	EnumLits []string

	// Array types.
	Elem   *Type
	Len    int64
	IdxLow int64
}

// intBits returns the number of bits of a two's-complement (or unsigned,
// when low >= 0) encoding covering [low, high].
func intBits(low, high int64) int {
	if low > high {
		low, high = high, low
	}
	if low >= 0 {
		return max(1, bits.Len64(uint64(high)))
	}
	// Signed: need to cover both low and high.
	n := bits.Len64(uint64(high)) + 1
	if m := bits.Len64(uint64(-low-1)) + 1; m > n {
		n = m
	}
	return max(1, n)
}

// addrBits returns the number of address bits needed to select one of n
// elements: ceil(log2(n)), and at least 1 for a 1-element array.
func addrBits(n int64) int {
	if n <= 1 {
		return 1
	}
	return bits.Len64(uint64(n - 1))
}

// Bits returns the encoding width of one value of the type: the data bits
// for a scalar, or the element bits for an array (see AccessBits for the
// per-access cost including addressing).
func (t *Type) Bits() int {
	switch t.Kind {
	case KindInteger:
		return intBits(t.Low, t.High)
	case KindEnum:
		n := len(t.EnumLits)
		if n <= 2 {
			return 1
		}
		return bits.Len64(uint64(n - 1))
	case KindArray:
		return t.Elem.Bits()
	}
	return 1
}

// AccessBits returns the number of bits transferred by one access to an
// object of this type, per §2.4.1: scalars transfer their encoding; arrays
// transfer one element plus the element address. Multidimensional data is
// elaborated as arrays of scalars before this is called.
func (t *Type) AccessBits() int {
	if t.Kind == KindArray {
		return t.Elem.Bits() + addrBits(t.Len)
	}
	return t.Bits()
}

// TotalBits returns the storage footprint in bits (array length × element
// bits for arrays), used for memory sizing.
func (t *Type) TotalBits() int64 {
	if t.Kind == KindArray {
		return t.Len * int64(t.Elem.Bits())
	}
	return int64(t.Bits())
}

// IsArray reports whether t is an array type.
func (t *Type) IsArray() bool { return t.Kind == KindArray }

func (t *Type) String() string {
	switch t.Kind {
	case KindInteger:
		return fmt.Sprintf("%s range %d to %d", t.Name, t.Low, t.High)
	case KindArray:
		return fmt.Sprintf("%s array(%d) of %s", t.Name, t.Len, t.Elem.Name)
	default:
		return t.Name
	}
}

// Predefined types available in every design.
func predefinedTypes() map[string]*Type {
	const i32max = 1<<31 - 1
	intT := &Type{Name: "integer", Kind: KindInteger, Low: -(1 << 31), High: i32max}
	return map[string]*Type{
		"integer":  intT,
		"natural":  {Name: "natural", Kind: KindInteger, Low: 0, High: i32max},
		"positive": {Name: "positive", Kind: KindInteger, Low: 1, High: i32max},
		"bit":      {Name: "bit", Kind: KindEnum, EnumLits: []string{"'0'", "'1'"}},
		"boolean":  {Name: "boolean", Kind: KindEnum, EnumLits: []string{"false", "true"}},
		"character": {
			Name: "character", Kind: KindInteger, Low: 0, High: 255,
		},
	}
}
