package interp

import (
	"fmt"

	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// frame is one activation record: subprogram locals/params plus the loop
// variable stack. Process activations use a frame too (for loop vars);
// process variables live in the machine's global cells.
type frame struct {
	beh      *sem.Behavior
	parent   *frame // static link: frame of the lexically enclosing behavior
	locals   map[*sem.Object]*cell
	loopVars []loopVar
}

type loopVar struct {
	name string
	val  int64
}

func newFrame(b *sem.Behavior) *frame {
	return &frame{beh: b, locals: map[*sem.Object]*cell{}}
}

func (fr *frame) loopVal(name string) (int64, bool) {
	for i := len(fr.loopVars) - 1; i >= 0; i-- {
		if fr.loopVars[i].name == name {
			return fr.loopVars[i].val, true
		}
	}
	return 0, false
}

// control-flow result of statement execution.
type ctlKind int

const (
	ctlNone ctlKind = iota
	ctlReturn
	ctlExit
	ctlWait
)

type ctl struct {
	kind      ctlKind
	ret       int64
	exitLabel string
	waitOn    []*cell
	waitUntil vhdl.Expr
	waitPlain bool
}

var ctlPass = ctl{kind: ctlNone}

// cellFor locates the storage of an object: the current frame, then the
// static-link chain (for nested subprograms reading enclosing locals and
// parameters), then the machine's persistent cells.
func (m *Machine) cellFor(fr *frame, o *sem.Object) *cell {
	for f := fr; f != nil; f = f.parent {
		if c, ok := f.locals[o]; ok {
			return c
		}
	}
	if c, ok := m.cells[o]; ok {
		return c
	}
	// Subprogram local accessed outside a registered frame (should not
	// happen in well-scoped specs); allocate on demand so simulation can
	// proceed deterministically.
	c := newCell(o.Type)
	m.cells[o] = c
	return c
}

// lvalue describes an assignable location.
type lvalue struct {
	c    *cell
	idx  int64
	typ  *sem.Type // target's type, for optional range checking
	name string
}

// resolveLV resolves an assignment target.
func (m *Machine) resolveLV(b *sem.Behavior, fr *frame, target vhdl.Expr) (*lvalue, error) {
	switch t := target.(type) {
	case *vhdl.NameExpr:
		return m.lvByName(b, fr, t.Name, 0)
	case *vhdl.CallExpr:
		if len(t.Args) != 1 {
			return nil, fmt.Errorf("array target %q needs exactly one index", t.Name)
		}
		idx, err := m.eval(b, fr, t.Args[0])
		if err != nil {
			return nil, err
		}
		return m.lvByName(b, fr, t.Name, idx)
	}
	return nil, fmt.Errorf("unassignable target %T", target)
}

func (m *Machine) lvByName(b *sem.Behavior, fr *frame, name string, idx int64) (*lvalue, error) {
	sym := m.d.Lookup(b, name)
	if sym == nil {
		return nil, fmt.Errorf("unknown name %q", name)
	}
	switch sym.Kind {
	case sem.SymObject:
		return &lvalue{c: m.cellFor(fr, sym.Object), idx: idx, typ: sym.Object.Type, name: name}, nil
	case sem.SymPort:
		return &lvalue{c: m.ports[sym.Port.Name], idx: idx, typ: sym.Port.Type, name: name}, nil
	}
	return nil, fmt.Errorf("%q is not assignable", name)
}

// eval evaluates an expression to an int64.
func (m *Machine) eval(b *sem.Behavior, fr *frame, e vhdl.Expr) (int64, error) {
	switch x := e.(type) {
	case *vhdl.IntExpr:
		return x.Val, nil
	case *vhdl.CharExpr:
		return int64(x.Val), nil
	case *vhdl.StrExpr:
		return 0, fmt.Errorf("string value in integer context")
	case *vhdl.NameExpr:
		if v, ok := fr.loopVal(x.Name); ok {
			return v, nil
		}
		sym := m.d.Lookup(b, x.Name)
		if sym == nil {
			return 0, fmt.Errorf("unknown name %q", x.Name)
		}
		switch sym.Kind {
		case sem.SymEnumLit:
			return sym.ConstVal, nil
		case sem.SymObject:
			return m.cellFor(fr, sym.Object).get(0)
		case sem.SymPort:
			return m.ports[sym.Port.Name].get(0)
		case sem.SymBehavior:
			// Parameterless function used as a value.
			return m.call(b, fr, sym.Behavior, nil)
		}
		return 0, fmt.Errorf("name %q has no value", x.Name)
	case *vhdl.AttrExpr:
		return m.evalAttr(b, x)
	case *vhdl.UnaryExpr:
		v, err := m.eval(b, fr, x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case vhdl.MINUS:
			return -v, nil
		case vhdl.PLUS:
			return v, nil
		case vhdl.KwABS:
			if v < 0 {
				return -v, nil
			}
			return v, nil
		case vhdl.KwNOT:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("unsupported unary operator %v", x.Op)
	case *vhdl.BinExpr:
		return m.evalBin(b, fr, x)
	case *vhdl.CallExpr:
		sym := m.d.Lookup(b, x.Name)
		if sym == nil {
			return 0, fmt.Errorf("unknown name %q", x.Name)
		}
		switch sym.Kind {
		case sem.SymBehavior:
			return m.call(b, fr, sym.Behavior, x.Args)
		case sem.SymObject, sem.SymPort:
			if len(x.Args) != 1 {
				return 0, fmt.Errorf("array %q needs exactly one index", x.Name)
			}
			idx, err := m.eval(b, fr, x.Args[0])
			if err != nil {
				return 0, err
			}
			if sym.Kind == sem.SymObject {
				return m.cellFor(fr, sym.Object).get(idx)
			}
			return m.ports[sym.Port.Name].get(idx)
		}
		return 0, fmt.Errorf("%q is not callable or indexable", x.Name)
	case *vhdl.AggregateExpr:
		return 0, fmt.Errorf("aggregate in scalar context")
	}
	return 0, fmt.Errorf("unsupported expression %T", e)
}

func (m *Machine) evalAttr(b *sem.Behavior, x *vhdl.AttrExpr) (int64, error) {
	sym := m.d.Lookup(b, x.Prefix)
	if sym == nil || sym.Type == nil {
		return 0, fmt.Errorf("attribute prefix %q has no type", x.Prefix)
	}
	t := sym.Type
	switch x.Attr {
	case "length":
		if t.IsArray() {
			return t.Len, nil
		}
		return 1, nil
	case "low", "left":
		if t.IsArray() {
			return t.IdxLow, nil
		}
		return t.Low, nil
	case "high", "right":
		if t.IsArray() {
			return t.IdxLow + t.Len - 1, nil
		}
		return t.High, nil
	}
	return 0, fmt.Errorf("unsupported attribute %q", x.Attr)
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

func (m *Machine) evalBin(b *sem.Behavior, fr *frame, x *vhdl.BinExpr) (int64, error) {
	// Short-circuit logical operators.
	if x.Op == vhdl.KwAND || x.Op == vhdl.KwOR {
		l, err := m.eval(b, fr, x.L)
		if err != nil {
			return 0, err
		}
		if x.Op == vhdl.KwAND && l == 0 {
			return 0, nil
		}
		if x.Op == vhdl.KwOR && l != 0 {
			return 1, nil
		}
		r, err := m.eval(b, fr, x.R)
		if err != nil {
			return 0, err
		}
		return b2i(r != 0), nil
	}
	l, err := m.eval(b, fr, x.L)
	if err != nil {
		return 0, err
	}
	r, err := m.eval(b, fr, x.R)
	if err != nil {
		return 0, err
	}
	switch x.Op {
	case vhdl.PLUS:
		return l + r, nil
	case vhdl.MINUS:
		return l - r, nil
	case vhdl.STAR:
		return l * r, nil
	case vhdl.SLASH:
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case vhdl.KwMOD:
		if r == 0 {
			return 0, fmt.Errorf("mod by zero")
		}
		return ((l % r) + r) % r, nil
	case vhdl.KwREM:
		if r == 0 {
			return 0, fmt.Errorf("rem by zero")
		}
		return l % r, nil
	case vhdl.EQ:
		return b2i(l == r), nil
	case vhdl.NEQ:
		return b2i(l != r), nil
	case vhdl.LT:
		return b2i(l < r), nil
	case vhdl.SIGASSIGN: // <= in expression position
		return b2i(l <= r), nil
	case vhdl.GT:
		return b2i(l > r), nil
	case vhdl.GE:
		return b2i(l >= r), nil
	case vhdl.KwXOR:
		return b2i((l != 0) != (r != 0)), nil
	case vhdl.KwNAND:
		return b2i(!(l != 0 && r != 0)), nil
	case vhdl.KwNOR:
		return b2i(!(l != 0 || r != 0)), nil
	case vhdl.AMP:
		return 0, fmt.Errorf("concatenation unsupported in integer simulation")
	}
	return 0, fmt.Errorf("unsupported operator %v", x.Op)
}

// call invokes a subprogram and returns its value (0 for procedures).
func (m *Machine) call(caller *sem.Behavior, callerFr *frame, callee *sem.Behavior, args []vhdl.Expr) (int64, error) {
	if callee.Implicit {
		return 0, nil // external stub: no body to run
	}
	if len(args) != len(callee.Params) {
		return 0, fmt.Errorf("call to %q with %d args, want %d", callee.Name, len(args), len(callee.Params))
	}
	m.Activations[callee]++
	fr := newFrame(callee)
	// Static link: the nearest frame on the caller's chain belonging to
	// the callee's lexically enclosing behavior, so nested subprograms
	// (including outlined basic blocks) see enclosing locals and params.
	if callee.Parent != nil {
		for f := callerFr; f != nil; f = f.parent {
			if f.beh == callee.Parent {
				fr.parent = f
				break
			}
		}
	}

	// Bind parameters; remember out/inout copy-back targets.
	type copyBack struct {
		param *sem.Param
		lv    *lvalue
	}
	var backs []copyBack
	for i, p := range callee.Params {
		sym := m.d.Lookup(callee, p.Name)
		if sym == nil || sym.Kind != sem.SymObject {
			return 0, fmt.Errorf("parameter %q of %q unresolvable", p.Name, callee.Name)
		}
		c := newCell(p.Type)
		fr.locals[sym.Object] = c
		if p.Dir != vhdl.DirOut {
			v, err := m.eval(caller, callerFr, args[i])
			if err != nil {
				return 0, err
			}
			if err := c.set(0, v); err != nil {
				return 0, err
			}
		}
		if p.Dir != vhdl.DirIn {
			lv, err := m.resolveLV(caller, callerFr, args[i])
			if err != nil {
				return 0, fmt.Errorf("out parameter %q needs an assignable argument: %w", p.Name, err)
			}
			backs = append(backs, copyBack{param: p, lv: lv})
		}
	}
	// Fresh locals per call (VHDL subprogram variables are re-elaborated).
	for _, o := range callee.Decls {
		c := newCell(o.Type)
		fr.locals[o] = c
		if o.Init != nil && !o.Type.IsArray() {
			v, err := m.eval(callee, fr, o.Init)
			if err != nil {
				return 0, err
			}
			if err := c.set(0, v); err != nil {
				return 0, err
			}
		}
	}

	res, err := m.execStmts(callee, fr, callee.Body)
	if err != nil {
		return 0, fmt.Errorf("in %s: %w", callee.Name, err)
	}
	if res.kind == ctlWait {
		return 0, fmt.Errorf("wait inside subprogram %q", callee.Name)
	}
	var ret int64
	if res.kind == ctlReturn {
		ret = res.ret
	} else if callee.IsFunction {
		return 0, fmt.Errorf("function %q ended without return", callee.Name)
	}
	// Copy out/inout parameters back.
	for _, cb := range backs {
		sym := m.d.Lookup(callee, cb.param.Name)
		v, err := fr.locals[sym.Object].get(0)
		if err != nil {
			return 0, err
		}
		if err := cb.lv.c.set(cb.lv.idx, v); err != nil {
			return 0, err
		}
	}
	return ret, nil
}

func (m *Machine) maxIters() int {
	if m.MaxLoopIters > 0 {
		return m.MaxLoopIters
	}
	return 1 << 20
}

func (m *Machine) maxStmts() int {
	if m.MaxStmts > 0 {
		return m.MaxStmts
	}
	return 1 << 20
}

func (m *Machine) execStmts(b *sem.Behavior, fr *frame, stmts []vhdl.Stmt) (ctl, error) {
	for _, s := range stmts {
		res, err := m.exec(b, fr, s)
		if err != nil {
			return ctlPass, err
		}
		if res.kind != ctlNone {
			return res, nil
		}
	}
	return ctlPass, nil
}

func (m *Machine) exec(b *sem.Behavior, fr *frame, s vhdl.Stmt) (ctl, error) {
	if m.stmts++; m.stmts > m.maxStmts() {
		return ctlPass, fmt.Errorf("%s: activation exceeded the %d-statement budget (runaway loop?)",
			vhdl.StmtPos(s), m.maxStmts())
	}
	ts := m.trace[b]
	switch st := s.(type) {
	case *vhdl.AssignStmt:
		v, err := m.eval(b, fr, st.Value)
		if err != nil {
			return ctlPass, err
		}
		lv, err := m.resolveLV(b, fr, st.Target)
		if err != nil {
			return ctlPass, err
		}
		if m.CheckRanges && lv.typ != nil {
			t := lv.typ
			if t.IsArray() {
				t = t.Elem
			}
			if t.Kind == sem.KindInteger && (v < t.Low || v > t.High) {
				return ctlPass, fmt.Errorf("range check: %d assigned to %q (range %d to %d)",
					v, lv.name, t.Low, t.High)
			}
		}
		return ctlPass, lv.c.set(lv.idx, v)

	case *vhdl.NullStmt:
		return ctlPass, nil

	case *vhdl.IfStmt:
		cond, err := m.eval(b, fr, st.Cond)
		if err != nil {
			return ctlPass, err
		}
		if cond != 0 {
			ts.branch(s, 0)
			return m.execStmts(b, fr, st.Then)
		}
		for i, el := range st.Elifs {
			v, err := m.eval(b, fr, el.Cond)
			if err != nil {
				return ctlPass, err
			}
			if v != 0 {
				ts.branch(s, 1+i)
				return m.execStmts(b, fr, el.Body)
			}
		}
		ts.branch(s, 1+len(st.Elifs)) // the (possibly empty) else arm
		return m.execStmts(b, fr, st.Else)

	case *vhdl.CaseStmt:
		v, err := m.eval(b, fr, st.Expr)
		if err != nil {
			return ctlPass, err
		}
		othersArm := -1
		for i, w := range st.Whens {
			if w.Choices == nil {
				othersArm = i
				continue
			}
			for _, choice := range w.Choices {
				cv, err := m.eval(b, fr, choice)
				if err != nil {
					return ctlPass, err
				}
				if cv == v {
					ts.branch(s, i)
					return m.execStmts(b, fr, w.Body)
				}
			}
		}
		if othersArm >= 0 {
			ts.branch(s, othersArm)
			return m.execStmts(b, fr, st.Whens[othersArm].Body)
		}
		return ctlPass, fmt.Errorf("case value %d matches no alternative", v)

	case *vhdl.ForStmt:
		lo, err := m.eval(b, fr, st.Low)
		if err != nil {
			return ctlPass, err
		}
		hi, err := m.eval(b, fr, st.High)
		if err != nil {
			return ctlPass, err
		}
		fr.loopVars = append(fr.loopVars, loopVar{name: st.Var})
		slot := len(fr.loopVars) - 1
		defer func() { fr.loopVars = fr.loopVars[:slot] }()
		step := int64(1)
		if st.Downto {
			step = -1
		}
		iters := int64(0)
		for i := lo; (step > 0 && i <= hi) || (step < 0 && i >= hi); i += step {
			fr.loopVars[slot].val = i
			iters++
			res, err := m.execStmts(b, fr, st.Body)
			if err != nil {
				return ctlPass, err
			}
			if res.kind == ctlExit && (res.exitLabel == "" || res.exitLabel == st.Label) {
				break
			}
			if res.kind != ctlNone {
				return res, nil
			}
		}
		ts.loop(s, iters)
		return ctlPass, nil

	case *vhdl.WhileStmt:
		iters := int64(0)
		for {
			v, err := m.eval(b, fr, st.Cond)
			if err != nil {
				return ctlPass, err
			}
			if v == 0 {
				break
			}
			if iters++; iters > int64(m.maxIters()) {
				return ctlPass, fmt.Errorf("while loop exceeded %d iterations", m.maxIters())
			}
			res, err := m.execStmts(b, fr, st.Body)
			if err != nil {
				return ctlPass, err
			}
			if res.kind == ctlExit && (res.exitLabel == "" || res.exitLabel == st.Label) {
				break
			}
			if res.kind != ctlNone {
				return res, nil
			}
		}
		ts.loop(s, iters)
		return ctlPass, nil

	case *vhdl.LoopStmt:
		iters := int64(0)
		for {
			if iters++; iters > int64(m.maxIters()) {
				return ctlPass, fmt.Errorf("loop exceeded %d iterations", m.maxIters())
			}
			res, err := m.execStmts(b, fr, st.Body)
			if err != nil {
				return ctlPass, err
			}
			if res.kind == ctlExit && (res.exitLabel == "" || res.exitLabel == st.Label) {
				break
			}
			if res.kind != ctlNone {
				ts.loop(s, iters)
				return res, nil
			}
		}
		ts.loop(s, iters)
		return ctlPass, nil

	case *vhdl.ExitStmt:
		if st.Cond != nil {
			v, err := m.eval(b, fr, st.Cond)
			if err != nil {
				return ctlPass, err
			}
			if v == 0 {
				return ctlPass, nil
			}
		}
		return ctl{kind: ctlExit, exitLabel: st.Label}, nil

	case *vhdl.CallStmt:
		sym := m.d.Lookup(b, st.Name)
		if sym == nil || sym.Kind != sem.SymBehavior {
			return ctlPass, fmt.Errorf("%q is not a procedure", st.Name)
		}
		_, err := m.call(b, fr, sym.Behavior, st.Args)
		return ctlPass, err

	case *vhdl.ReturnStmt:
		res := ctl{kind: ctlReturn}
		if st.Value != nil {
			v, err := m.eval(b, fr, st.Value)
			if err != nil {
				return ctlPass, err
			}
			res.ret = v
		}
		return res, nil

	case *vhdl.WaitStmt:
		res := ctl{kind: ctlWait}
		switch {
		case len(st.OnSignals) > 0:
			for _, name := range st.OnSignals {
				sym := m.d.Lookup(b, name)
				if sym == nil {
					return ctlPass, fmt.Errorf("wait on unknown name %q", name)
				}
				switch sym.Kind {
				case sem.SymObject:
					res.waitOn = append(res.waitOn, m.cellFor(fr, sym.Object))
				case sem.SymPort:
					res.waitOn = append(res.waitOn, m.ports[sym.Port.Name])
				default:
					return ctlPass, fmt.Errorf("wait on non-object %q", name)
				}
			}
		case st.Until != nil:
			res.waitUntil = st.Until
		default:
			res.waitPlain = true
		}
		return res, nil
	}
	return ctlPass, fmt.Errorf("unsupported statement %T", s)
}
