package interp

import (
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

func machine(t *testing.T, src string) (*Machine, *sem.Design) {
	t.Helper()
	df, err := vhdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func readTestdata(t testing.TB, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("testdata: %v", err)
	}
	return string(data)
}

func TestAssignAndArithmetic(t *testing.T) {
	m, _ := machine(t, `
entity E is port (a : in integer; o : out integer); end;
architecture x of E is begin
P: process
    variable v : integer;
begin
    v := a * 3 + 10 / 2 - 1;
    o <= v mod 7;
    wait on a;
end process; end;`)
	if err := m.Step(func(_ int, m *Machine) { _ = m.SetPort("a", 4) }); err != nil {
		t.Fatal(err)
	}
	// v = 4*3 + 5 - 1 = 16; o = 16 mod 7 = 2
	if v, _ := m.Var("v"); v != 16 {
		t.Errorf("v = %d, want 16", v)
	}
	if o, _ := m.Port("o"); o != 2 {
		t.Errorf("o = %d, want 2", o)
	}
}

func TestIfElsifElse(t *testing.T) {
	src := `
entity E is port (a : in integer; o : out integer); end;
architecture x of E is begin
P: process
begin
    if a = 1 then
        o <= 10;
    elsif a = 2 then
        o <= 20;
    else
        o <= 30;
    end if;
    wait on a;
end process; end;`
	for input, want := range map[int64]int64{1: 10, 2: 20, 9: 30} {
		m, _ := machine(t, src)
		if err := m.Step(func(_ int, m *Machine) { _ = m.SetPort("a", input) }); err != nil {
			t.Fatal(err)
		}
		if o, _ := m.Port("o"); o != want {
			t.Errorf("a=%d: o = %d, want %d", input, o, want)
		}
	}
}

func TestCaseStatement(t *testing.T) {
	src := `
entity E is port (a : in integer; o : out integer); end;
architecture x of E is begin
P: process
begin
    case a is
        when 0 => o <= 1;
        when 1 | 2 => o <= 2;
        when others => o <= 99;
    end case;
    wait on a;
end process; end;`
	for input, want := range map[int64]int64{0: 1, 1: 2, 2: 2, 7: 99} {
		m, _ := machine(t, src)
		if err := m.Step(func(_ int, m *Machine) { _ = m.SetPort("a", input) }); err != nil {
			t.Fatal(err)
		}
		if o, _ := m.Port("o"); o != want {
			t.Errorf("a=%d: o = %d, want %d", input, o, want)
		}
	}
}

func TestLoopsAndArrays(t *testing.T) {
	m, _ := machine(t, `
entity E is port (o : out integer); end;
architecture x of E is begin
P: process
    type arr is array (1 to 10) of integer;
    variable a : arr;
    variable s : integer;
begin
    for i in 1 to 10 loop
        a(i) := i * i;
    end loop;
    s := 0;
    for i in 1 to 10 loop
        s := s + a(i);
    end loop;
    o <= s;
    wait;
end process; end;`)
	if err := m.Step(nil); err != nil {
		t.Fatal(err)
	}
	if o, _ := m.Port("o"); o != 385 { // Σ i² for 1..10
		t.Errorf("o = %d, want 385", o)
	}
}

func TestWhileAndExit(t *testing.T) {
	m, _ := machine(t, `
entity E is port (o : out integer); end;
architecture x of E is begin
P: process
    variable n, steps : integer;
begin
    n := 27;
    steps := 0;
    while n > 1 loop
        if n mod 2 = 0 then
            n := n / 2;
        else
            n := 3 * n + 1;
        end if;
        steps := steps + 1;
        exit when steps > 1000;
    end loop;
    o <= steps;
    wait;
end process; end;`)
	if err := m.Step(nil); err != nil {
		t.Fatal(err)
	}
	if o, _ := m.Port("o"); o != 111 { // Collatz(27) = 111 steps
		t.Errorf("o = %d, want 111", o)
	}
}

func TestFunctionsAndProcedures(t *testing.T) {
	m, _ := machine(t, `
entity E is port (o : out integer); end;
architecture x of E is
    function Square(v : in integer) return integer is
    begin
        return v * v;
    end;
    -- out parameter: result by reference
    procedure AddTo(acc : inout integer; v : in integer) is
    begin
        acc := acc + Square(v);
    end;
begin
P: process
    variable total : integer;
begin
    total := 0;
    AddTo(total, 3);
    AddTo(total, 4);
    o <= total;
    wait;
end process; end;`)
	if err := m.Step(nil); err != nil {
		t.Fatal(err)
	}
	if o, _ := m.Port("o"); o != 25 {
		t.Errorf("o = %d, want 25 (3²+4²)", o)
	}
}

func TestSubprogramLocalsFreshPerCall(t *testing.T) {
	m, _ := machine(t, `
entity E is port (o : out integer); end;
architecture x of E is
    function Count return integer is
        variable c : integer := 0;
    begin
        c := c + 1;
        return c;
    end;
begin
P: process
    variable a, b : integer;
begin
    a := Count;
    b := Count;
    o <= a + b;
    wait;
end process; end;`)
	if err := m.Step(nil); err != nil {
		t.Fatal(err)
	}
	// VHDL re-elaborates subprogram locals per call: both calls return 1.
	if o, _ := m.Port("o"); o != 2 {
		t.Errorf("o = %d, want 2 (locals must not persist)", o)
	}
}

func TestProcessVariablesPersist(t *testing.T) {
	m, _ := machine(t, `
entity E is port (tick : in integer; o : out integer); end;
architecture x of E is begin
P: process
    variable count : integer;
begin
    count := count + 1;
    o <= count;
    wait on tick;
end process; end;`)
	for i := int64(0); i < 5; i++ {
		step := i
		if err := m.Step(func(_ int, m *Machine) { _ = m.SetPort("tick", step) }); err != nil {
			t.Fatal(err)
		}
	}
	// First activation at step 0, then reactivated on each tick change.
	if o, _ := m.Port("o"); o != 5 {
		t.Errorf("count = %d, want 5", o)
	}
}

func TestWaitOnBlocksUntilChange(t *testing.T) {
	m, _ := machine(t, `
entity E is port (a : in integer; o : out integer); end;
architecture x of E is begin
P: process
    variable n : integer;
begin
    n := n + 1;
    o <= n;
    wait on a;
end process; end;`)
	// Step with constant input: activates once, then stays suspended.
	for i := 0; i < 4; i++ {
		if err := m.Step(func(_ int, m *Machine) { _ = m.SetPort("a", 7) }); err != nil {
			t.Fatal(err)
		}
	}
	if o, _ := m.Port("o"); o != 1 {
		t.Errorf("activations = %d, want 1 (input never changed)", o)
	}
	// Now change the input: exactly one more activation.
	if err := m.Step(func(_ int, m *Machine) { _ = m.SetPort("a", 8) }); err != nil {
		t.Fatal(err)
	}
	if o, _ := m.Port("o"); o != 2 {
		t.Errorf("activations = %d, want 2", o)
	}
}

func TestWaitUntil(t *testing.T) {
	m, _ := machine(t, `
entity E is port (a : in integer; o : out integer); end;
architecture x of E is begin
P: process
    variable n : integer;
begin
    n := n + 1;
    o <= n;
    wait until a = 3;
end process; end;`)
	inputs := []int64{0, 1, 3, 3, 0, 3}
	for _, v := range inputs {
		vv := v
		if err := m.Step(func(_ int, m *Machine) { _ = m.SetPort("a", vv) }); err != nil {
			t.Fatal(err)
		}
	}
	// Activation at step 0 (fresh), then whenever a==3 at step start:
	// steps with a=3 are 2,3,5 → 1+3 activations.
	if o, _ := m.Port("o"); o != 4 {
		t.Errorf("activations = %d, want 4", o)
	}
}

func TestInterProcessSignal(t *testing.T) {
	m, _ := machine(t, `
entity E is port (a : in integer; o : out integer); end;
architecture x of E is
    signal mail : integer;
begin
Producer: process
begin
    mail <= a * 2;
    wait on a;
end process;
Consumer: process
begin
    o <= mail + 1;
    wait on mail;
end process;
end;`)
	if err := m.Step(func(_ int, m *Machine) { _ = m.SetPort("a", 10) }); err != nil {
		t.Fatal(err)
	}
	if o, _ := m.Port("o"); o != 21 {
		t.Errorf("o = %d, want 21", o)
	}
}

func TestRuntimeErrors(t *testing.T) {
	m, _ := machine(t, `
entity E is port (a : in integer; o : out integer); end;
architecture x of E is begin
P: process
begin
    o <= 1 / a;
    wait on a;
end process; end;`)
	if err := m.Step(nil); err == nil {
		t.Error("division by zero not reported")
	}

	m2, _ := machine(t, `
entity E is port (a : in integer; o : out integer); end;
architecture x of E is begin
P: process
    type arr is array (1 to 4) of integer;
    variable v : arr;
begin
    o <= v(a);
    wait on a;
end process; end;`)
	if err := m2.Step(func(_ int, m *Machine) { _ = m.SetPort("a", 9) }); err == nil {
		t.Error("index out of range not reported")
	}
}

func TestRunawayLoopCaught(t *testing.T) {
	m, _ := machine(t, `
entity E is port (o : out integer); end;
architecture x of E is begin
P: process
    variable n : integer;
begin
    while n = 0 loop
        o <= 1;
    end loop;
    wait;
end process; end;`)
	m.MaxLoopIters = 1000
	if err := m.Step(nil); err == nil {
		t.Error("runaway while loop not caught")
	}
}

func TestStatementBudgetCaught(t *testing.T) {
	// Nested loops whose individual trip counts stay under MaxLoopIters
	// but whose product does not — only the per-activation statement
	// budget catches this shape.
	m, _ := machine(t, `
entity E is port (o : out integer); end;
architecture x of E is begin
P: process
    variable n : integer;
begin
    for i in 1 to 100 loop
        for j in 1 to 100 loop
            n := n + 1;
        end loop;
    end loop;
    o <= n;
    wait;
end process; end;`)
	m.MaxStmts = 500
	err := m.Step(nil)
	if err == nil {
		t.Fatal("statement-budget overrun not caught")
	}
	if !strings.Contains(err.Error(), "500-statement budget") {
		t.Errorf("error does not name the budget: %v", err)
	}
	// The offending statement's source position must be in the message
	// (line:col — every statement in the snippet is past line 4).
	if !regexp.MustCompile(`\b\d+:\d+\b`).MatchString(err.Error()) {
		t.Errorf("error has no source position: %v", err)
	}

	// A generous budget lets the same design finish.
	m2, _ := machine(t, `
entity E is port (o : out integer); end;
architecture x of E is begin
P: process
    variable n : integer;
begin
    for i in 1 to 100 loop
        for j in 1 to 100 loop
            n := n + 1;
        end loop;
    end loop;
    o <= n;
    wait;
end process; end;`)
	m2.MaxStmts = 1 << 20
	if err := m2.Step(nil); err != nil {
		t.Fatal(err)
	}
	if o, _ := m2.Port("o"); o != 10000 {
		t.Errorf("o = %d, want 10000", o)
	}
}

func TestInitializers(t *testing.T) {
	m, _ := machine(t, `
entity E is port (o : out integer); end;
architecture x of E is begin
P: process
    constant base : integer := 40;
    variable v : integer := base + 2;
begin
    o <= v;
    wait;
end process; end;`)
	if err := m.Step(nil); err != nil {
		t.Fatal(err)
	}
	if o, _ := m.Port("o"); o != 42 {
		t.Errorf("o = %d, want 42", o)
	}
}

func TestAttributes(t *testing.T) {
	m, _ := machine(t, `
entity E is port (o : out integer); end;
architecture x of E is begin
P: process
    type arr is array (3 to 10) of integer;
    variable v : arr;
begin
    o <= v'length + v'low + v'high;
    wait;
end process; end;`)
	if err := m.Step(nil); err != nil {
		t.Fatal(err)
	}
	if o, _ := m.Port("o"); o != 8+3+10 {
		t.Errorf("o = %d, want 21", o)
	}
}

// TestMachineVarUnknown covers the introspection error paths.
func TestMachineIntrospection(t *testing.T) {
	m, _ := machine(t, `
entity E is port (a : in integer); end;
architecture x of E is begin
P: process begin wait on a; end process; end;`)
	if _, err := m.Var("ghost"); err == nil {
		t.Error("unknown variable accepted")
	}
	if _, err := m.Port("ghost"); err == nil {
		t.Error("unknown port accepted")
	}
	if err := m.SetPort("ghost", 1); err == nil {
		t.Error("unknown port set accepted")
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCheckRanges(t *testing.T) {
	src := `
entity E is port (a : in integer; o : out integer range 0 to 15); end;
architecture x of E is begin
P: process
    variable v : integer range 0 to 7;
begin
    v := a;
    o <= v;
    wait on a;
end process; end;`
	// In range: fine either way.
	m, _ := machine(t, src)
	m.CheckRanges = true
	if err := m.Step(func(_ int, m *Machine) { _ = m.SetPort("a", 5) }); err != nil {
		t.Fatalf("in-range assignment rejected: %v", err)
	}
	// Out of range: caught only with checking on.
	m2, _ := machine(t, src)
	m2.CheckRanges = true
	if err := m2.Step(func(_ int, m *Machine) { _ = m.SetPort("a", 99) }); err == nil {
		t.Error("range violation not caught")
	}
	m3, _ := machine(t, src)
	if err := m3.Step(func(_ int, m *Machine) { _ = m.SetPort("a", 99) }); err != nil {
		t.Errorf("unchecked mode rejected the assignment: %v", err)
	}
}

// TestExamplesRangeClean: the four specifications simulate without range
// violations under their test stimuli — the simulator as a validation
// tool for the testdata itself.
func TestFuzzyRangeClean(t *testing.T) {
	m, _ := loadExample(t, "fuzzy")
	m.CheckRanges = true
	if err := m.Run(30, fuzzyStimulus); err != nil {
		t.Errorf("fuzzy violates its own declared ranges: %v", err)
	}
}

func TestLogicalAndUnaryOperators(t *testing.T) {
	m, _ := machine(t, `
entity E is port (a, b : in integer; o : out integer); end;
architecture x of E is begin
P: process
    variable r : integer;
begin
    r := 0;
    if a > 0 and b > 0 then
        r := r + 1;
    end if;
    if a > 0 or b > 0 then
        r := r + 2;
    end if;
    if a > 0 xor b > 0 then
        r := r + 4;
    end if;
    if not (a = b) then
        r := r + 8;
    end if;
    if a > 0 nand b > 0 then
        r := r + 16;
    end if;
    if a > 0 nor b > 0 then
        r := r + 32;
    end if;
    r := r + abs (a - b);
    o <= r;
    wait on a, b;
end process; end;`)
	// a=3, b=0: and=0, or=2, xor=4, neq=8, nand=16, nor=0, abs=3 → 33
	if err := m.Step(func(_ int, m *Machine) {
		_ = m.SetPort("a", 3)
		_ = m.SetPort("b", 0)
	}); err != nil {
		t.Fatal(err)
	}
	if o, _ := m.Port("o"); o != 2+4+8+16+3 {
		t.Errorf("o = %d, want 33", o)
	}
}

func TestModRemSemantics(t *testing.T) {
	m, _ := machine(t, `
entity E is port (o : out integer); end;
architecture x of E is begin
P: process
    variable a, b : integer;
begin
    a := 0 - 7;
    b := 3;
    o <= (a mod b) * 100 + (a rem b) + 50;
    wait;
end process; end;`)
	if err := m.Step(nil); err != nil {
		t.Fatal(err)
	}
	// VHDL: (-7) mod 3 = 2 (sign of divisor), (-7) rem 3 = -1 (sign of dividend)
	if o, _ := m.Port("o"); o != 2*100+(-1)+50 {
		t.Errorf("o = %d, want 249", o)
	}
}

func TestEnumLiteralsInSimulation(t *testing.T) {
	m, _ := machine(t, `
entity E is port (go : in integer; o : out integer); end;
architecture x of E is
    type state is (idle, running, done);
    signal st : state;
begin
P: process
begin
    case st is
        when idle =>
            if go = 1 then
                st <= running;
            end if;
        when running =>
            st <= done;
        when others =>
            o <= 1;
    end case;
    wait on go, st;
end process; end;`)
	if err := m.Run(4, func(step int, m *Machine) { _ = m.SetPort("go", 1) }); err != nil {
		t.Fatal(err)
	}
	if o, _ := m.Port("o"); o != 1 {
		t.Errorf("state machine never reached done (o=%d)", o)
	}
}

func TestStepCount(t *testing.T) {
	m, _ := machine(t, `
entity E is port (a : in integer); end;
architecture x of E is begin
P: process begin wait on a; end process; end;`)
	_ = m.Run(7, nil)
	if m.StepCount() != 7 {
		t.Errorf("StepCount = %d", m.StepCount())
	}
}
