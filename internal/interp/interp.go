// Package interp is a behavioral simulator for the elaborated VHDL subset.
//
// The paper's methodology starts from "a simulatable functional
// specification"; this interpreter makes the repository's specifications
// actually simulatable, and — more importantly for SLIF — it implements
// the paper's profiling path: §2.4.1's branch probability file "may be
// obtained manually or through profiling". Machine.Profile() converts the
// execution trace of a stimulated run into a profile.Profile whose site
// numbering matches the estimator's, closing the loop from simulation to
// annotation.
//
// Simulation model (simplifications documented):
//
//   - Discrete steps: each step, the stimulus updates the input ports,
//     then every runnable process executes its body from the top until
//     its next wait statement. Processes in the subset use trailing
//     waits, so one activation is one start-to-finish body execution —
//     exactly the unit SLIF's accfreq weights are defined over.
//   - Signal assignment takes effect immediately (no delta cycles).
//     The four example systems use signals as single-writer mailboxes,
//     for which immediate semantics coincide with VHDL's.
//   - "wait on S" resumes when any listed object's value differs from
//     its value at the start of the last activation — so a process that
//     writes a signal it also waits on re-runs, matching VHDL's
//     post-suspension signal update semantics. "wait until E" resumes
//     when E becomes true; plain "wait" never resumes.
//   - Integer arithmetic is Go int64 with division truncating toward
//     zero (matching VHDL's integer division for positive operands).
package interp

import (
	"fmt"

	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// cell is one storage location: a scalar or an array.
type cell struct {
	scalar int64
	arr    []int64
	isArr  bool
	idxLow int64
}

func newCell(t *sem.Type) *cell {
	if t.IsArray() {
		return &cell{isArr: true, arr: make([]int64, t.Len), idxLow: t.IdxLow}
	}
	return &cell{}
}

func (c *cell) get(idx int64) (int64, error) {
	if !c.isArr {
		return c.scalar, nil
	}
	i := idx - c.idxLow
	if i < 0 || i >= int64(len(c.arr)) {
		return 0, fmt.Errorf("interp: index %d out of range [%d,%d]", idx, c.idxLow, c.idxLow+int64(len(c.arr))-1)
	}
	return c.arr[i], nil
}

func (c *cell) set(idx, v int64) error {
	if !c.isArr {
		c.scalar = v
		return nil
	}
	i := idx - c.idxLow
	if i < 0 || i >= int64(len(c.arr)) {
		return fmt.Errorf("interp: index %d out of range [%d,%d]", idx, c.idxLow, c.idxLow+int64(len(c.arr))-1)
	}
	c.arr[i] = v
	return nil
}

// snapshot returns a change-detection fingerprint of the cell.
func (c *cell) snapshot() int64 {
	if !c.isArr {
		return c.scalar
	}
	var h int64 = 1469598103934665603
	for _, v := range c.arr {
		h = h*1099511628211 + v
	}
	return h
}

// procState tracks one process between activations.
type procState struct {
	beh       *sem.Behavior
	waitOn    []*cell // resume when any changes
	waitSnap  []int64 // snapshots at activation start (see below)
	waitUntil vhdl.Expr
	waitPlain bool // plain wait: never resume
	started   bool

	// watch holds every cell any of the process's wait statements can
	// name, resolved once. Snapshots are taken against activation-start
	// values: in VHDL a signal assignment takes effect after the process
	// suspends, so a process that writes a signal it also waits on wakes
	// itself up — with immediate assignment semantics, comparing against
	// the activation-start snapshot reproduces that behavior.
	watch   []*cell
	preSnap map[*cell]int64
}

// Stimulus drives the input ports before each step. It may read outputs
// through the machine.
type Stimulus func(step int, m *Machine)

// Machine is one elaborated design under simulation.
type Machine struct {
	d     *sem.Design
	cells map[*sem.Object]*cell
	ports map[string]*cell
	procs []*procState

	// trace collectors, per behavior
	trace map[*sem.Behavior]*traceState

	// MaxLoopIters bounds any single loop's iterations per activation to
	// catch runaway specifications; 0 means the default of 1<<20.
	MaxLoopIters int

	// MaxStmts bounds the total statements one activation may execute —
	// the backstop MaxLoopIters cannot provide against nested loops whose
	// product of trip counts explodes, or infinite `loop` bodies that keep
	// each individual loop under the iteration cap. 0 means the default of
	// 1<<20 (~1e6); exceeding the budget aborts the activation with the
	// source position of the statement that ran over.
	MaxStmts int

	// CheckRanges enables VHDL's runtime range checks: assigning a value
	// outside a constrained scalar subtype's range is an error, as it
	// would be in a real simulator. Off by default — the estimation flow
	// never needs it, and some specifications rely on benign wraparound.
	CheckRanges bool

	// Activations counts start-to-finish executions per behavior.
	Activations map[*sem.Behavior]int64

	step  int
	stmts int // statements executed in the current activation
}

// New prepares a machine for the design: allocates storage, evaluates
// initializers, and parks every process at its start.
func New(d *sem.Design) (*Machine, error) {
	m := &Machine{
		d:           d,
		cells:       make(map[*sem.Object]*cell),
		ports:       make(map[string]*cell),
		trace:       make(map[*sem.Behavior]*traceState),
		Activations: make(map[*sem.Behavior]int64),
	}
	for _, o := range d.Objects {
		m.cells[o] = newCell(o.Type)
	}
	for _, p := range d.Ports {
		m.ports[p.Name] = newCell(p.Type)
	}
	for _, b := range d.Behaviors {
		if b.IsProcess {
			ps := &procState{beh: b, preSnap: map[*cell]int64{}}
			// Resolve every waitable name in the body once.
			seen := map[*cell]bool{}
			vhdl.WalkStmts(b.Body, func(st vhdl.Stmt) {
				w, ok := st.(*vhdl.WaitStmt)
				if !ok {
					return
				}
				for _, name := range w.OnSignals {
					sym := d.Lookup(b, name)
					var c *cell
					switch {
					case sym == nil:
						return
					case sym.Kind == sem.SymObject:
						c = m.cells[sym.Object]
					case sym.Kind == sem.SymPort:
						c = m.ports[sym.Port.Name]
					}
					if c != nil && !seen[c] {
						seen[c] = true
						ps.watch = append(ps.watch, c)
					}
				}
			})
			m.procs = append(m.procs, ps)
		}
		m.trace[b] = newTraceState(d, b)
	}
	// Evaluate initializers of persistent objects (process-owned and
	// architecture-level); subprogram locals are initialized per call.
	for _, o := range d.Objects {
		if o.Owner != nil && !o.Owner.IsProcess {
			continue
		}
		if err := m.initObject(o); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// initObject applies a declaration initializer, if any. Scalar
// initializers are evaluated in the declaring behavior's scope (in
// declaration order, so earlier constants are visible); array aggregate
// initializers are skipped — arrays start zeroed.
func (m *Machine) initObject(o *sem.Object) error {
	if o.Init == nil || o.Type.IsArray() {
		return nil
	}
	v, err := m.eval(o.Owner, newFrame(o.Owner), o.Init)
	if err != nil {
		return fmt.Errorf("interp: initializer of %q: %w", o.UniqueID, err)
	}
	return m.cells[o].set(0, v)
}

// SetPort writes an input port's scalar value.
func (m *Machine) SetPort(name string, v int64) error {
	c, ok := m.ports[name]
	if !ok {
		return fmt.Errorf("interp: unknown port %q", name)
	}
	return c.set(0, v)
}

// Port reads a port's scalar value (for observing outputs).
func (m *Machine) Port(name string) (int64, error) {
	c, ok := m.ports[name]
	if !ok {
		return 0, fmt.Errorf("interp: unknown port %q", name)
	}
	return c.get(0)
}

// Var reads a variable or signal by its unique ID (for assertions).
func (m *Machine) Var(uniqueID string) (int64, error) {
	for o, c := range m.cells {
		if o.UniqueID == uniqueID {
			return c.get(0)
		}
	}
	return 0, fmt.Errorf("interp: unknown object %q", uniqueID)
}

// Step advances the simulation by one step: stimulus, then every runnable
// process executes one activation.
func (m *Machine) Step(stim Stimulus) error {
	if stim != nil {
		stim(m.step, m)
	}
	for _, ps := range m.procs {
		runnable, err := m.runnable(ps)
		if err != nil {
			return err
		}
		if !runnable {
			continue
		}
		if err := m.activate(ps); err != nil {
			return fmt.Errorf("interp: process %s: %w", ps.beh.Name, err)
		}
	}
	m.step++
	return nil
}

// Run executes n steps under the stimulus.
func (m *Machine) Run(n int, stim Stimulus) error {
	for i := 0; i < n; i++ {
		if err := m.Step(stim); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) runnable(ps *procState) (bool, error) {
	if !ps.started {
		return true, nil
	}
	if ps.waitPlain {
		return false, nil
	}
	if ps.waitUntil != nil {
		fr := newFrame(ps.beh)
		v, err := m.eval(ps.beh, fr, ps.waitUntil)
		if err != nil {
			return false, err
		}
		return v != 0, nil
	}
	for i, c := range ps.waitOn {
		if c.snapshot() != ps.waitSnap[i] {
			return true, nil
		}
	}
	return false, nil
}

// activate runs one start-to-finish execution of the process body.
func (m *Machine) activate(ps *procState) error {
	ps.started = true
	m.Activations[ps.beh]++
	// Activation-start snapshots of every waitable cell (see procState).
	for _, c := range ps.watch {
		ps.preSnap[c] = c.snapshot()
	}
	m.stmts = 0 // per-activation statement budget (MaxStmts)
	fr := newFrame(ps.beh)
	// Re-initialize subprogram-owned nothing here; process locals persist.
	ctl, err := m.execStmts(ps.beh, fr, ps.beh.Body)
	if err != nil {
		return err
	}
	switch ctl.kind {
	case ctlWait:
		ps.waitPlain = ctl.waitPlain
		ps.waitUntil = ctl.waitUntil
		ps.waitOn = ctl.waitOn
		ps.waitSnap = ps.waitSnap[:0]
		for _, c := range ctl.waitOn {
			if snap, ok := ps.preSnap[c]; ok {
				ps.waitSnap = append(ps.waitSnap, snap)
			} else {
				ps.waitSnap = append(ps.waitSnap, c.snapshot())
			}
		}
	case ctlNone:
		// Body ended without wait: VHDL would loop forever; treat as
		// waiting on nothing until the next step (re-runnable).
		ps.waitPlain = false
		ps.waitUntil = nil
		ps.waitOn = nil
		ps.waitSnap = nil
		ps.started = false
	default:
		return fmt.Errorf("control escaped process body (%d)", ctl.kind)
	}
	return nil
}

// Profile converts the recorded execution trace into a branch-probability
// profile whose site numbering matches profile.WalkCounted. Behaviors that
// never executed contribute no records (their sites fall back to the
// profile defaults).
func (m *Machine) Profile() *profile.Profile {
	p := profile.Empty()
	for b, ts := range m.trace {
		ts.emit(b.UniqueID, p)
	}
	return p
}

// StepCount returns how many steps have run.
func (m *Machine) StepCount() int { return m.step }
