package interp

import (
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// traceState accumulates branch-arm and loop-iteration counts for one
// behavior during simulation, keyed by the same pre-order site numbering
// the profile format uses.
type traceState struct {
	sites *profile.Sites

	armCounts map[int][]int64 // branch site → per-arm execution counts
	loopRuns  map[int]int64   // loop site → times the loop was entered
	loopIters map[int]int64   // loop site → total iterations
	loopMax   map[int]int64   // loop site → max iterations in one run
}

func newTraceState(d *sem.Design, b *sem.Behavior) *traceState {
	return &traceState{
		sites:     profile.IndexSites(d, b),
		armCounts: map[int][]int64{},
		loopRuns:  map[int]int64{},
		loopIters: map[int]int64{},
		loopMax:   map[int]int64{},
	}
}

// branch records that the given branch statement took arm `arm`.
func (ts *traceState) branch(s vhdl.Stmt, arm int) {
	site, ok := ts.sites.Branch[s]
	if !ok {
		return
	}
	counts := ts.armCounts[site]
	if counts == nil {
		counts = make([]int64, ts.sites.Arms[s])
		ts.armCounts[site] = counts
	}
	if arm < len(counts) {
		counts[arm]++
	}
}

// loop records one complete run of a dynamic loop with n iterations.
// Static for loops have no site and are ignored (their counts are exact
// from the bounds).
func (ts *traceState) loop(s vhdl.Stmt, n int64) {
	site, ok := ts.sites.Loop[s]
	if !ok {
		return
	}
	ts.loopRuns[site]++
	ts.loopIters[site] += n
	if n > ts.loopMax[site] {
		ts.loopMax[site] = n
	}
}

// emit writes this behavior's measured statistics into a profile.
func (ts *traceState) emit(behID string, p *profile.Profile) {
	for site, counts := range ts.armCounts {
		var total int64
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		probs := make([]float64, len(counts))
		for i, c := range counts {
			probs[i] = float64(c) / float64(total)
		}
		p.SetBranch(behID, site, probs...)
	}
	for site, runs := range ts.loopRuns {
		if runs == 0 {
			continue
		}
		avg := float64(ts.loopIters[site]) / float64(runs)
		p.SetLoop(behID, site, avg, float64(ts.loopMax[site]))
	}
}
