package interp

import (
	"testing"

	"specsyn/internal/builder"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// loadExample elaborates one of the four paper specifications.
func loadExample(t testing.TB, name string) (*Machine, *sem.Design) {
	t.Helper()
	df, err := vhdl.Parse(readTestdata(t, name+".vhd"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

// fuzzyStimulus calibrates once, then wiggles the two sensor inputs.
func fuzzyStimulus(step int, m *Machine) {
	switch {
	case step == 0:
		_ = m.SetPort("cal", 1)
	case step == 1:
		_ = m.SetPort("cal", 0)
	default:
		_ = m.SetPort("in1", int64(10+(step*37)%100))
		_ = m.SetPort("in2", int64(20+(step*53)%100))
	}
}

// TestFuzzySimulation runs the full fuzzy controller: calibration, then
// control steps; the actuator output must move and stay in range.
func TestFuzzySimulation(t *testing.T) {
	m, d := loadExample(t, "fuzzy")
	if err := m.Run(30, fuzzyStimulus); err != nil {
		t.Fatal(err)
	}
	// Calibration published readiness and a good status.
	if v, err := m.Var("rulesready"); err != nil || v != 1 {
		t.Fatalf("rulesready = %d (%v), want 1", v, err)
	}
	if v, _ := m.Port("stat"); v != 1 {
		t.Errorf("stat = %d, want 1 (self-test pass)", v)
	}
	out, err := m.Port("out1")
	if err != nil {
		t.Fatal(err)
	}
	if out < 5 || out > 250 {
		t.Errorf("out1 = %d outside the clip range [5,250]", out)
	}
	// Both processes actually ran.
	for _, b := range d.Behaviors {
		if b.IsProcess && m.Activations[b] == 0 {
			t.Errorf("process %s never activated", b.Name)
		}
	}
	// The control loop called EvaluateRule twice per step.
	var er *sem.Behavior
	for _, b := range d.Behaviors {
		if b.Name == "evaluaterule" {
			er = b
		}
	}
	if er == nil || m.Activations[er] < 2 {
		t.Fatalf("evaluaterule activations = %d", m.Activations[er])
	}
}

// TestFuzzyMeasuredProfile is the paper's profiling path end to end:
// simulate, extract the branch probability file, and check the measured
// probabilities against the analytically known values — EvaluateRule is
// called once with num=1 and once with num=2 per control step, so its
// branch sites must measure 0.5/0.5.
func TestFuzzyMeasuredProfile(t *testing.T) {
	m, _ := loadExample(t, "fuzzy")
	if err := m.Run(50, fuzzyStimulus); err != nil {
		t.Fatal(err)
	}
	p := m.Profile()
	for site := 1; site <= 2; site++ {
		arm0 := p.Branch("evaluaterule", site, 0, 3)
		arm1 := p.Branch("evaluaterule", site, 1, 3)
		arm2 := p.Branch("evaluaterule", site, 2, 3)
		if !almost(arm0, 0.5, 1e-9) || !almost(arm1, 0.5, 1e-9) || !almost(arm2, 0, 1e-9) {
			t.Errorf("evaluaterule site %d measured %v/%v/%v, want 0.5/0.5/0", site, arm0, arm1, arm2)
		}
	}
}

// TestMeasuredProfileReproducesFig3 closes the loop: the simulated
// profile, fed to the SLIF builder, must reproduce Figure 3's accfreq on
// the evaluaterule→mr1 channel (65 accesses per execution).
func TestMeasuredProfileReproducesFig3(t *testing.T) {
	m, d := loadExample(t, "fuzzy")
	if err := m.Run(50, fuzzyStimulus); err != nil {
		t.Fatal(err)
	}
	g, err := builder.Build(d, builder.Options{Profile: m.Profile()})
	if err != nil {
		t.Fatal(err)
	}
	c := g.FindChannel("evaluaterule", "mr1")
	if c == nil {
		t.Fatal("missing channel evaluaterule->mr1")
	}
	if !almost(c.AccFreq, 65, 1e-6) {
		t.Errorf("measured-profile accfreq = %v, want 65 (Figure 3)", c.AccFreq)
	}
	if !almost(g.FindChannel("evaluaterule", "in1val").AccFreq, 1, 1e-6) {
		t.Errorf("in1val accfreq = %v, want 1", g.FindChannel("evaluaterule", "in1val").AccFreq)
	}
}

// volStimulus drives square-wave breaths: high flow then near-zero.
func volStimulus(step int, m *Machine) {
	_ = m.SetPort("mode", 1)
	if step%60 < 30 {
		_ = m.SetPort("flow", int64(200+step%7)) // inhale, with jitter
	} else {
		_ = m.SetPort("flow", int64(step%3)) // exhale/rest
	}
}

// TestVolSimulation runs the volume instrument through several breaths
// and checks the latched tidal volume and the alarm classification.
func TestVolSimulation(t *testing.T) {
	m, _ := loadExample(t, "vol")
	if err := m.Run(200, volStimulus); err != nil {
		t.Fatal(err)
	}
	disp, err := m.Port("disp")
	if err != nil {
		t.Fatal(err)
	}
	if disp <= 0 {
		t.Fatalf("no tidal volume latched after 3 breaths (disp = %d)", disp)
	}
	// ~30 samples × ~200 counts / 50 ≈ 120 ml — below the 300 ml low
	// threshold, so the alarm must read 1 (low volume).
	if alarm, _ := m.Port("alarm"); alarm != 1 {
		t.Errorf("alarm = %d, want 1 (low volume)", alarm)
	}
	if breaths, _ := m.Var("breaths"); breaths < 2 {
		t.Errorf("breaths = %d, want at least 2", breaths)
	}
}

// TestVolMeasuredProfileBuilds: the instrument's measured profile feeds
// the builder without error and yields plausible integrate frequencies.
func TestVolMeasuredProfile(t *testing.T) {
	m, d := loadExample(t, "vol")
	if err := m.Run(200, volStimulus); err != nil {
		t.Fatal(err)
	}
	g, err := builder.Build(d, builder.Options{Profile: m.Profile()})
	if err != nil {
		t.Fatal(err)
	}
	// The accumulator is touched on the inhale half of the samples:
	// integrate→accum accfreq must be strictly between 0 and 3.
	c := g.FindChannel("integrate", "accum")
	if c == nil {
		t.Fatal("missing channel integrate->accum")
	}
	if c.AccFreq <= 0 || c.AccFreq > 3 {
		t.Errorf("integrate->accum measured accfreq = %v", c.AccFreq)
	}
}

// TestAnsSimulation smoke-runs the answering machine through a ring
// sequence; the controller must go off-hook and return on-hook.
func TestAnsSimulation(t *testing.T) {
	m, _ := loadExample(t, "ans")
	m.MaxLoopIters = 1 << 22 // the record loop runs long

	err := m.Run(400, func(step int, m *Machine) {
		// Two ring bursts: ring high for 30 samples, low for 40, twice;
		// then silence on the line.
		inBurst := (step%70 < 30) && step < 140
		_ = m.SetPort("ring", int64(b2i(inBurst)))
		_ = m.SetPort("linein", int64(128+(step%5))) // near-silence
	})
	if err != nil {
		t.Fatal(err)
	}
	// The whole call (answer, greeting, record, hangup) happens within one
	// controller activation, so observe its durable effects: one recorded
	// message whose length is exactly the silence-timeout's worth of
	// samples, and the line back on-hook.
	if msgs, _ := m.Var("msgcount"); msgs != 1 {
		t.Fatalf("msgcount = %d, want 1 recorded message", msgs)
	}
	if wp, _ := m.Var("writeptr"); wp != 16000 {
		t.Errorf("writeptr = %d, want 16000 (silence-timeout length)", wp)
	}
	if h, _ := m.Port("hook"); h != 0 {
		t.Error("controller did not hang up")
	}
}

// TestEtherSimulation smoke-runs the coprocessor: host stages a frame and
// commits it; the transmitter must report completion and count the frame.
func TestEtherSimulation(t *testing.T) {
	m, _ := loadExample(t, "ether")
	err := m.Run(200, func(step int, m *Machine) {
		switch {
		case step < 80: // stage 80 payload bytes
			_ = m.SetPort("hostcmd", 3)
			_ = m.SetPort("hostdin", int64(step&0xff))
		case step == 80: // commit
			_ = m.SetPort("hostcmd", 4)
		default:
			_ = m.SetPort("hostcmd", 0)
		}
		_ = m.SetPort("crs", 0)
		_ = m.SetPort("cdt", 0)
		_ = m.SetPort("rxvalid", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if good, _ := m.Var("stat_goodtx"); good != 1 {
		t.Errorf("stat_goodtx = %d, want 1", good)
	}
	if en, _ := m.Port("txen"); en != 0 {
		t.Error("txen still asserted after transmission")
	}
}
