package shell

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specsyn/internal/specsyn"
	"specsyn/internal/vhdl"
)

func session(t *testing.T) *Session {
	t.Helper()
	env := specsyn.New()
	base := filepath.Join("..", "..", "testdata")
	if err := env.LoadVHDLFile(filepath.Join(base, "fuzzy.vhd")); err != nil {
		t.Fatal(err)
	}
	if err := env.LoadProfileFile(filepath.Join(base, "fuzzy.prob")); err != nil {
		t.Fatal(err)
	}
	if err := env.Build(); err != nil {
		t.Fatal(err)
	}
	s, err := New(env)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// run feeds a script to the shell and returns its full output.
func run(t *testing.T, s *Session, script string) string {
	t.Helper()
	var out strings.Builder
	if err := s.Run(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestShellShowAndEstimate(t *testing.T) {
	s := session(t)
	out := run(t, s, "show comps\nshow nodes\nest\nquit\n")
	for _, frag := range []string{"cpu", "asic", "ram", "proc fuzzymain", "estimated in", "bye"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestShellMapAndUndo(t *testing.T) {
	s := session(t)
	out := run(t, s, "map convolve asic\nquit\n")
	if !strings.Contains(out, "convolve → asic") {
		t.Fatalf("map failed:\n%s", out)
	}
	asic := s.Env.Graph.ProcByName("asic")
	if s.Pt.BvComp(s.Env.Graph.NodeByName("convolve")) != asic {
		t.Fatal("partition not updated")
	}
	out = run(t, s, "undo\nquit\n")
	if !strings.Contains(out, "reverted") {
		t.Fatalf("undo failed:\n%s", out)
	}
	if s.Pt.BvComp(s.Env.Graph.NodeByName("convolve")) == asic {
		t.Error("undo did not restore the mapping")
	}
}

func TestShellMapErrors(t *testing.T) {
	s := session(t)
	out := run(t, s, "map nosuch asic\nmap convolve nosuch\nmap fuzzymain ram\nundo\nquit\n")
	for _, frag := range []string{
		`unknown node "nosuch"`,
		`unknown component "nosuch"`,
		"may only map to a processor",
		// None of the failed maps may leave a snapshot, so the trailing
		// undo has nothing to revert.
		"nothing to undo",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestShellSearch(t *testing.T) {
	s := session(t)
	out := run(t, s, "search gm\nest\nquit\n")
	if !strings.Contains(out, "gm: cost") {
		t.Fatalf("search failed:\n%s", out)
	}
	if err := s.Pt.Validate(); err != nil {
		t.Errorf("searched partition invalid: %v", err)
	}
}

func TestShellSearchMulti(t *testing.T) {
	s := session(t)
	out := run(t, s, "search multi 4\nquit\n")
	if !strings.Contains(out, "multi: cost") || !strings.Contains(out, "4 legs") {
		t.Fatalf("search multi failed:\n%s", out)
	}
	if err := s.Pt.Validate(); err != nil {
		t.Errorf("searched partition invalid: %v", err)
	}
	// Bad leg counts are usage errors, and the partition stays untouched.
	out = run(t, s, "search multi zero\nquit\n")
	if !strings.Contains(out, "usage: search multi") {
		t.Fatalf("bad leg count not rejected:\n%s", out)
	}
}

func TestShellSearchPortfolio(t *testing.T) {
	s := session(t)
	out := run(t, s, "search portfolio 5\nquit\n")
	if !strings.Contains(out, "portfolio: cost") || !strings.Contains(out, "5 legs") {
		t.Fatalf("search portfolio failed:\n%s", out)
	}
	if !strings.Contains(out, "adaptive:") || !strings.Contains(out, "rounds") {
		t.Fatalf("portfolio search printed no round counters:\n%s", out)
	}
	if err := s.Pt.Validate(); err != nil {
		t.Errorf("searched partition invalid: %v", err)
	}
	out = run(t, s, "search portfolio zero\nquit\n")
	if !strings.Contains(out, "usage: search portfolio") {
		t.Fatalf("bad leg count not rejected:\n%s", out)
	}
}

func TestShellTransforms(t *testing.T) {
	s := session(t)
	// smooth was folded into the main body; recordhistory has one caller.
	out := run(t, s, "inline recordhistory\nest\nquit\n")
	if !strings.Contains(out, "inlined recordhistory") {
		t.Fatalf("inline failed:\n%s", out)
	}
	if s.Env.Graph.NodeByName("recordhistory") != nil {
		t.Error("node still present after inline")
	}
	out = run(t, s, "merge fuzzymain calmain\nest\nquit\n")
	if !strings.Contains(out, "merged into fuzzymain_calmain") {
		t.Fatalf("merge failed:\n%s", out)
	}
}

func TestShellInlineRejectsShared(t *testing.T) {
	s := session(t)
	out := run(t, s, "inline min\nquit\n")
	if !strings.Contains(out, "callers") {
		t.Errorf("shared procedure inline not rejected:\n%s", out)
	}
}

func TestShellSave(t *testing.T) {
	s := session(t)
	path := filepath.Join(t.TempDir(), "out.slif")
	out := run(t, s, "save "+path+"\nquit\n")
	if !strings.Contains(out, "wrote") {
		t.Fatalf("save failed:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "slif fuzzycontrollere") {
		t.Errorf("saved file malformed: %q", string(data[:40]))
	}
}

func TestShellUnknownCommand(t *testing.T) {
	s := session(t)
	out := run(t, s, "frobnicate\nhelp\nquit\n")
	if !strings.Contains(out, `unknown command "frobnicate"`) {
		t.Errorf("unknown command not reported:\n%s", out)
	}
	if !strings.Contains(out, "commands:") {
		t.Errorf("help missing:\n%s", out)
	}
}

func TestShellMapAll(t *testing.T) {
	s := session(t)
	run(t, s, "search gm\nmapall cpu\nquit\n")
	cpu := s.Env.Graph.ProcByName("cpu")
	for _, n := range s.Env.Graph.Nodes {
		if s.Pt.BvComp(n) != cpu {
			t.Fatalf("node %s not on cpu after mapall", n.Name)
		}
	}
}

func TestCompNames(t *testing.T) {
	s := session(t)
	names := s.CompNames()
	want := []string{"asic", "cpu", "ram"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestShellDot(t *testing.T) {
	s := session(t)
	path := filepath.Join(t.TempDir(), "g.dot")
	out := run(t, s, "map convolve asic\ndot "+path+"\nquit\n")
	if !strings.Contains(out, "wrote") {
		t.Fatalf("dot failed:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "subgraph cluster_") {
		t.Error("dot output not clustered")
	}
}

func TestShellExplain(t *testing.T) {
	s := session(t)
	out := run(t, s, "explain fuzzymain\nexplain nosuch\nquit\n")
	for _, frag := range []string{"contribution", "= exectime", "evaluaterule", `unknown node "nosuch"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("explain output missing %q:\n%s", frag, out)
		}
	}
}

// TestShellSearchTimeout: a trailing duration bounds the search, the
// best-so-far partition is installed, and the shell keeps running.
func TestShellSearchTimeout(t *testing.T) {
	s := session(t)
	before := s.Pt
	out := run(t, s, "search anneal 1ns\nshow part\nquit\n")
	if strings.Contains(out, "error:") {
		t.Fatalf("timed-out search errored:\n%s", out)
	}
	if !strings.Contains(out, "anneal:") {
		t.Fatalf("search produced no result line:\n%s", out)
	}
	// A 1ns budget cannot finish; the result must say so.
	if !strings.Contains(out, "(partial)") {
		t.Errorf("cut-short search not reported partial:\n%s", out)
	}
	if s.Pt == before {
		t.Error("search did not install a partition")
	}
	// The partition installed is complete despite the timeout.
	for _, n := range s.Env.Graph.Nodes {
		if s.Pt.BvComp(n) == nil {
			t.Fatalf("node %q unmapped after timed-out search", n.Name)
		}
	}
}

// TestShellSearchMultiTimeout: the timeout composes with the legs arg. A
// 1ns bound expires before any leg starts, so the engine has nothing to
// return — the shell must report that as a command error, keep the old
// partition, and keep running.
func TestShellSearchMultiTimeout(t *testing.T) {
	s := session(t)
	before := s.Pt
	out := run(t, s, "search multi 2 1ns\nshow comps\nquit\n")
	if !strings.Contains(out, "error:") {
		t.Fatalf("fully expired multi search did not report an error:\n%s", out)
	}
	if !strings.Contains(out, "bye") || !strings.Contains(out, "cpu") {
		t.Fatalf("shell did not keep running after the timeout:\n%s", out)
	}
	if s.Pt != before {
		t.Error("failed search replaced the partition")
	}
}

// TestShellSearchCtxProvider: the session-level context provider (the
// Ctrl-C seam) bounds searches even without a timeout argument.
func TestShellSearchCtxProvider(t *testing.T) {
	s := session(t)
	s.NewSearchCtx = func() (context.Context, context.CancelFunc) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // simulate an instant interrupt
		return ctx, func() { cancel() }
	}
	out := run(t, s, "search gm\nquit\n")
	if strings.Contains(out, "error:") {
		t.Fatalf("interrupted search errored:\n%s", out)
	}
	if !strings.Contains(out, "(partial)") {
		t.Errorf("interrupted search not reported partial:\n%s", out)
	}
}

func TestShellReload(t *testing.T) {
	s := session(t)
	dir := t.TempDir()

	// Comment-only edit: graph and partition survive.
	same := filepath.Join(dir, "same.vhd")
	if err := os.WriteFile(same, []byte("-- note\n"+s.Env.Source), 0o644); err != nil {
		t.Fatal(err)
	}
	g0 := s.Env.Graph
	out := run(t, s, "reload "+same+"\nquit\n")
	if !strings.Contains(out, "no semantic change") {
		t.Fatalf("comment reload:\n%s", out)
	}
	if s.Env.Graph != g0 {
		t.Fatal("comment reload replaced the graph")
	}

	// One-behavior edit: incremental rebuild, partition reset, and the
	// session keeps working on the new graph.
	edited := filepath.Join(dir, "edited.vhd")
	df := vhdl.MustParse(s.Env.Source)
	ps := df.Architectures[0].Processes[0]
	ps.Body = append([]vhdl.Stmt{&vhdl.NullStmt{}}, ps.Body...)
	if err := os.WriteFile(edited, []byte(vhdl.Format(df)), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, s, "reload "+edited+"\nest\nsearch greedy\nquit\n")
	for _, frag := range []string{"incremental rebuild in", "partition reset", "estimated in", "greedy:"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
	if s.Env.Graph == g0 {
		t.Fatal("incremental reload kept the old graph")
	}

	// Errors: usage and unreadable file leave the session intact.
	out = run(t, s, "reload\nreload "+filepath.Join(dir, "missing.vhd")+"\nquit\n")
	if !strings.Contains(out, "usage: reload") || !strings.Contains(out, "error:") {
		t.Fatalf("reload error handling:\n%s", out)
	}
}
