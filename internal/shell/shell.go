// Package shell is the interactive designer session the paper's abstract
// promises SLIF enables ("truly practical designer interaction"): load a
// specification once, then move objects between components, re-estimate,
// search, and transform — with every estimate returning in microseconds,
// so the edit/estimate loop feels instantaneous.
//
// The interpreter is line-driven over an io.Reader/io.Writer pair, so the
// same engine backs `specsyn shell` and the package's tests.
package shell

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/partition"
	"specsyn/internal/specsyn"
	"specsyn/internal/xform"
)

// Session is one interactive design session.
type Session struct {
	Env *specsyn.Env
	Pt  *core.Partition

	// NewSearchCtx, when set, supplies the context bounding each `search`
	// command — the seam through which a front end wires Ctrl-C (SIGINT)
	// into in-flight searches. Nil means context.Background(). A `search`
	// with a trailing timeout argument layers a deadline on top.
	NewSearchCtx func() (context.Context, context.CancelFunc)

	history []*core.Partition // undo stack of partition snapshots
	out     io.Writer
}

// New returns a session over an already built environment, starting from
// the all-software partition.
func New(env *specsyn.Env) (*Session, error) {
	pt, err := env.DefaultPartition()
	if err != nil {
		return nil, err
	}
	return &Session{Env: env, Pt: pt}, nil
}

// Run reads commands from r until EOF or "quit", writing responses to w.
// Errors from individual commands are reported and the loop continues; only
// I/O failures abort.
func (s *Session) Run(r io.Reader, w io.Writer) error {
	s.out = w
	sc := bufio.NewScanner(r)
	fmt.Fprintf(w, "specsyn shell — %s loaded (%d nodes, %d channels); 'help' lists commands\n",
		s.Env.Graph.Name, s.Env.Graph.Stats().BV, s.Env.Graph.Stats().Channels)
	s.prompt(w)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			s.prompt(w)
			continue
		}
		fields := strings.Fields(line)
		cmd, args := strings.ToLower(fields[0]), fields[1:]
		if cmd == "quit" || cmd == "exit" {
			fmt.Fprintln(w, "bye")
			return nil
		}
		if err := s.dispatch(cmd, args); err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
		}
		s.prompt(w)
	}
	return sc.Err()
}

func (s *Session) prompt(w io.Writer) { fmt.Fprint(w, "> ") }

func (s *Session) dispatch(cmd string, args []string) error {
	switch cmd {
	case "help":
		return s.cmdHelp()
	case "show":
		return s.cmdShow(args)
	case "map":
		return s.cmdMap(args)
	case "mapall":
		return s.cmdMapAll(args)
	case "est", "estimate":
		return s.cmdEstimate()
	case "explain":
		return s.cmdExplain(args)
	case "search":
		return s.cmdSearch(args)
	case "inline":
		return s.cmdInline(args)
	case "merge":
		return s.cmdMerge(args)
	case "save":
		return s.cmdSave(args)
	case "dot":
		return s.cmdDot(args)
	case "reload":
		return s.cmdReload(args)
	case "undo":
		return s.cmdUndo()
	}
	return fmt.Errorf("unknown command %q (try help)", cmd)
}

func (s *Session) cmdHelp() error {
	fmt.Fprint(s.out, `commands:
  show [nodes|comps|chans|part]   inspect the design
  map <node> <component>          move one object (undoable)
  mapall <component>              move everything to one processor
  est                             full size/pin/bitrate/performance report
  explain <behavior>              where that behavior's exec time goes
  search <random|greedy|cluster|gm|anneal> [timeout]
                                  replace the partition with a searched one;
                                  an optional Go duration (e.g. 500ms) bounds
                                  the search, keeping the best found so far
  search multi [legs] [timeout]   parallel multi-start portfolio (default
                                  legs = GOMAXPROCS), same optional timeout
  search portfolio [legs] [timeout]
                                  adaptive portfolio: round-based scheduling
                                  with incumbent sharing and kill/respawn of
                                  lagging legs; prints round counters
  reload <file.vhd>               re-read an edited specification; the SLIF
                                  graph is rebuilt incrementally (only the
                                  edited behaviors and their dependents)
  inline <procedure>              inline a procedure into its single caller
  merge <procA> <procB>           merge two processes
  save <file.slif>                write the graph + partition
  dot <file.dot>                  Graphviz view, clustered by component
  undo                            revert the last map/mapall/search
  quit
`)
	return nil
}

func (s *Session) cmdShow(args []string) error {
	g := s.Env.Graph
	what := "part"
	if len(args) > 0 {
		what = strings.ToLower(args[0])
	}
	switch what {
	case "nodes":
		for _, n := range g.Nodes {
			kind := "var "
			if n.IsProcess {
				kind = "proc"
			} else if n.IsBehavior() {
				kind = "beh "
			}
			comp := "-"
			if c := s.Pt.BvComp(n); c != nil {
				comp = c.CompName()
			}
			fmt.Fprintf(s.out, "  %s %-24s on %s\n", kind, n.Name, comp)
		}
	case "comps":
		for _, c := range g.Components() {
			fmt.Fprintf(s.out, "  %-12s type %-10s %d nodes\n",
				c.CompName(), c.TypeKey(), len(s.Pt.NodesOn(c)))
		}
		for _, b := range g.Buses {
			fmt.Fprintf(s.out, "  %-12s bus, %d wires, ts %g td %g\n", b.Name, b.BitWidth, b.TS, b.TD)
		}
	case "chans":
		for _, c := range g.Channels {
			fmt.Fprintf(s.out, "  %-28s freq %-8.4g bits %d\n", c.Key(), c.AccFreq, c.Bits)
		}
	case "part":
		fmt.Fprint(s.out, s.Pt.String())
	default:
		return fmt.Errorf("show what? (nodes, comps, chans, part)")
	}
	return nil
}

// snapshot pushes the current partition onto the undo stack.
func (s *Session) snapshot() { s.history = append(s.history, s.Pt.Clone()) }

func (s *Session) cmdUndo() error {
	if len(s.history) == 0 {
		return fmt.Errorf("nothing to undo")
	}
	s.Pt = s.history[len(s.history)-1]
	s.history = s.history[:len(s.history)-1]
	fmt.Fprintln(s.out, "reverted")
	return nil
}

func (s *Session) component(name string) (core.Component, error) {
	g := s.Env.Graph
	if p := g.ProcByName(name); p != nil {
		return p, nil
	}
	if m := g.MemByName(name); m != nil {
		return m, nil
	}
	return nil, fmt.Errorf("unknown component %q", name)
}

func (s *Session) cmdMap(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: map <node> <component>")
	}
	g := s.Env.Graph
	n := g.NodeByName(strings.ToLower(args[0]))
	if n == nil {
		return fmt.Errorf("unknown node %q", args[0])
	}
	comp, err := s.component(strings.ToLower(args[1]))
	if err != nil {
		return err
	}
	s.snapshot()
	if err := s.Pt.Assign(n, comp); err != nil {
		s.history = s.history[:len(s.history)-1]
		return err
	}
	fmt.Fprintf(s.out, "%s → %s\n", n.Name, comp.CompName())
	return nil
}

func (s *Session) cmdMapAll(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: mapall <processor>")
	}
	p := s.Env.Graph.ProcByName(strings.ToLower(args[0]))
	if p == nil {
		return fmt.Errorf("unknown processor %q", args[0])
	}
	s.snapshot()
	for _, n := range s.Env.Graph.Nodes {
		if err := s.Pt.Assign(n, p); err != nil {
			return err
		}
	}
	fmt.Fprintf(s.out, "everything → %s\n", p.Name)
	return nil
}

func (s *Session) cmdEstimate() error {
	start := time.Now()
	rep, err := estimate.New(s.Env.Graph, s.Pt, estimate.Options{}).Report()
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "estimated in %v\n%s", time.Since(start), rep)
	return nil
}

func (s *Session) cmdExplain(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: explain <behavior>")
	}
	n := s.Env.Graph.NodeByName(strings.ToLower(args[0]))
	if n == nil {
		return fmt.Errorf("unknown node %q", args[0])
	}
	rows, err := estimate.New(s.Env.Graph, s.Pt, estimate.Options{}).Breakdown(n)
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, estimate.FormatBreakdown(rows))
	return nil
}

// searchCtx builds the context for one search command: the session's
// provider (or Background) plus an optional deadline.
func (s *Session) searchCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if s.NewSearchCtx != nil {
		ctx, cancel = s.NewSearchCtx()
	}
	if timeout > 0 {
		inner := cancel
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		cancel = func() { tcancel(); inner() }
	}
	return ctx, cancel
}

func (s *Session) cmdSearch(args []string) error {
	// A trailing Go duration bounds the search ("search gm 100ms",
	// "search multi 8 1s"); the best-so-far partition is kept either way.
	var timeout time.Duration
	if len(args) > 0 {
		if d, err := time.ParseDuration(args[len(args)-1]); err == nil && d > 0 {
			timeout = d
			args = args[:len(args)-1]
		}
	}
	algo := "gm"
	if len(args) > 0 {
		algo = strings.ToLower(args[0])
	}
	ctx, cancel := s.searchCtx(timeout)
	defer cancel()
	if algo == "multi" || algo == "portfolio" {
		opt := partition.ParallelOptions{}
		if algo == "portfolio" {
			opt.Adaptive = true
			opt.Share = true
		}
		if len(args) > 1 {
			legs, err := strconv.Atoi(args[1])
			if err != nil || legs < 1 {
				return fmt.Errorf("usage: search %s [legs] [timeout]", algo)
			}
			opt.Legs = legs
		}
		res, err := s.Env.PartitionSearchParallel(ctx, algo, partition.Constraints{}, partition.DefaultWeights(), 1, 0, 0, opt)
		if err != nil {
			return err
		}
		s.snapshot()
		s.Pt = res.Best
		fmt.Fprintf(s.out, "%s: %s (%d legs, best from leg %d)\n", algo, res.Result, len(res.Legs), res.BestLeg)
		if rep := res.Report; rep.Rounds > 0 {
			fmt.Fprintf(s.out, "adaptive: %d rounds, %d legs killed, %d respawned\n",
				rep.Rounds, rep.LegsKilled, rep.LegsRespawned)
		}
		if res.Report.Partial {
			fmt.Fprintf(s.out, "note: search interrupted — %s\n", res.Report.String())
		}
		return nil
	}
	res, err := s.Env.PartitionSearch(ctx, algo, partition.Constraints{}, partition.DefaultWeights(), 1, 0, 0)
	if err != nil {
		return err
	}
	s.snapshot()
	s.Pt = res.Best
	fmt.Fprintf(s.out, "%s: %s\n", algo, res)
	return nil
}

func (s *Session) cmdInline(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: inline <procedure>")
	}
	g := s.Env.Graph
	callee := g.NodeByName(strings.ToLower(args[0]))
	if callee == nil {
		return fmt.Errorf("unknown node %q", args[0])
	}
	callers := g.InChans(callee.Name)
	if len(callers) != 1 {
		return fmt.Errorf("%q has %d callers; inline needs exactly one", callee.Name, len(callers))
	}
	// Graph surgery invalidates node→component mappings for the removed
	// node; rebuild the partition from scratch afterwards.
	if err := xform.Inline(g, callers[0].Src, callee); err != nil {
		return err
	}
	s.resetPartition()
	fmt.Fprintf(s.out, "inlined %s; partition reset to all-software\n", args[0])
	return nil
}

func (s *Session) cmdMerge(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: merge <procA> <procB>")
	}
	g := s.Env.Graph
	a, b := g.NodeByName(strings.ToLower(args[0])), g.NodeByName(strings.ToLower(args[1]))
	if a == nil || b == nil {
		return fmt.Errorf("unknown process")
	}
	merged, err := xform.MergeProcesses(g, a, b, a.Name+"_"+b.Name)
	if err != nil {
		return err
	}
	s.resetPartition()
	fmt.Fprintf(s.out, "merged into %s; partition reset to all-software\n", merged.Name)
	return nil
}

// resetPartition rebuilds the all-software partition after graph surgery
// or replacement and clears the undo stack (old snapshots reference stale
// nodes). It also drops the environment's cached compiled state, which
// in-place transforms would otherwise leave stale.
func (s *Session) resetPartition() {
	s.Env.InvalidateCompiled()
	s.Pt = core.AllToProcessor(s.Env.Graph, s.Env.Graph.Procs[0], s.Env.Graph.Buses[0])
	s.history = nil
}

func (s *Session) cmdReload(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: reload <file.vhd>")
	}
	start := time.Now()
	delta, err := s.Env.ReloadFile(args[0])
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Microsecond)
	switch {
	case delta.Empty():
		// Same graph pointer: partition, undo stack and compiled state all
		// stay valid.
		fmt.Fprintf(s.out, "no semantic change (%v); partition kept\n", elapsed)
	case delta.Full:
		s.resetPartition()
		fmt.Fprintf(s.out, "full rebuild in %v (%s); partition reset to all-software\n", elapsed, delta.Reason)
	default:
		s.resetPartition()
		fmt.Fprintf(s.out, "incremental rebuild in %v (%d changed, %d dependent); partition reset to all-software\n",
			elapsed, len(delta.Changed), len(delta.Dependents))
	}
	return nil
}

func (s *Session) cmdSave(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: save <file.slif>")
	}
	f, err := os.Create(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.Write(f, s.Env.Graph, s.Pt); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "wrote %s\n", args[0])
	return nil
}

func (s *Session) cmdDot(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dot <file.dot>")
	}
	f, err := os.Create(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.WriteDOTPartition(f, s.Env.Graph, s.Pt); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "wrote %s\n", args[0])
	return nil
}

// CompNames returns the component names, sorted — used by tab completion
// hooks and tests.
func (s *Session) CompNames() []string {
	var names []string
	for _, c := range s.Env.Graph.Components() {
		names = append(names, c.CompName())
	}
	sort.Strings(names)
	return names
}
