// Package outline implements the paper's granularity knob (§2.2): "A
// behavior is a process or procedure in the specification; finer
// granularity can be obtained by treating basic blocks as procedures."
//
// Transform rewrites a parsed design so that every compound-statement
// body (if/elsif/else arms, case alternatives, loop bodies) of at least
// MinStmts statements becomes a procedure declared in the enclosing
// behavior, with the original site replaced by a call. Loop variables
// referenced inside an outlined block are passed as `in` parameters.
// Blocks containing exit, return or wait statements are left inline —
// those constructs are only legal in their original position.
//
// The result is a coarser-to-finer family of SLIF graphs from one source:
// the same estimation machinery runs at every granularity, with more
// behaviors, more call channels, and smaller per-behavior weights as the
// knob tightens.
package outline

import (
	"fmt"

	"specsyn/internal/vhdl"
)

// Options controls the transformation.
type Options struct {
	// MinStmts is the smallest block worth outlining (default 2);
	// single-statement arms stay inline.
	MinStmts int
}

// Transform returns a new design file with basic blocks outlined. The
// input is not modified.
func Transform(df *vhdl.DesignFile, opt Options) *vhdl.DesignFile {
	if opt.MinStmts <= 0 {
		opt.MinStmts = 2
	}
	out := &vhdl.DesignFile{Entities: df.Entities}
	for _, a := range df.Architectures {
		na := &vhdl.Architecture{
			Name: a.Name, EntityName: a.EntityName, Pos: a.Pos,
		}
		na.Decls = transformDecls(a.Decls, opt)
		for _, ps := range a.Processes {
			na.Processes = append(na.Processes, transformProcess(ps, opt))
		}
		out.Architectures = append(out.Architectures, na)
	}
	return out
}

func transformDecls(decls []vhdl.Decl, opt Options) []vhdl.Decl {
	out := make([]vhdl.Decl, 0, len(decls))
	for _, d := range decls {
		if sp, ok := d.(*vhdl.SubprogramDecl); ok {
			out = append(out, transformSubprogram(sp, opt))
			continue
		}
		out = append(out, d)
	}
	return out
}

func transformProcess(ps *vhdl.ProcessStmt, opt Options) *vhdl.ProcessStmt {
	o := &outliner{prefix: ps.Label, opt: opt}
	body := o.stmts(ps.Body, nil)
	np := &vhdl.ProcessStmt{
		Label: ps.Label, Sensitivity: ps.Sensitivity, Pos: ps.Pos,
		Decls: append(transformDecls(ps.Decls, opt), o.newDecls...),
		Body:  body,
	}
	return np
}

func transformSubprogram(sp *vhdl.SubprogramDecl, opt Options) *vhdl.SubprogramDecl {
	o := &outliner{prefix: sp.Name, opt: opt}
	body := o.stmts(sp.Body, nil)
	return &vhdl.SubprogramDecl{
		Name: sp.Name, IsFunction: sp.IsFunction, Params: sp.Params,
		Return: sp.Return, Pos: sp.Pos,
		Decls: append(transformDecls(sp.Decls, opt), o.newDecls...),
		Body:  body,
	}
}

// outliner accumulates synthesized procedures for one behavior.
type outliner struct {
	prefix   string
	opt      Options
	counter  int
	newDecls []vhdl.Decl
}

// stmts rewrites a statement list. loopVars are the for-loop variables in
// scope, which outlined blocks receive as parameters.
func (o *outliner) stmts(body []vhdl.Stmt, loopVars []string) []vhdl.Stmt {
	out := make([]vhdl.Stmt, 0, len(body))
	for _, s := range body {
		out = append(out, o.stmt(s, loopVars))
	}
	return out
}

func (o *outliner) stmt(s vhdl.Stmt, loopVars []string) vhdl.Stmt {
	switch st := s.(type) {
	case *vhdl.IfStmt:
		ns := &vhdl.IfStmt{Cond: st.Cond, Pos: st.Pos}
		ns.Then = o.block(st.Then, loopVars)
		for _, el := range st.Elifs {
			ns.Elifs = append(ns.Elifs, vhdl.ElifClause{
				Cond: el.Cond, Body: o.block(el.Body, loopVars), Pos: el.Pos,
			})
		}
		ns.Else = o.block(st.Else, loopVars)
		return ns
	case *vhdl.CaseStmt:
		ns := &vhdl.CaseStmt{Expr: st.Expr, Pos: st.Pos}
		for _, w := range st.Whens {
			ns.Whens = append(ns.Whens, vhdl.WhenClause{
				Choices: w.Choices, Body: o.block(w.Body, loopVars), Pos: w.Pos,
			})
		}
		return ns
	case *vhdl.ForStmt:
		inner := append(append([]string(nil), loopVars...), st.Var)
		return &vhdl.ForStmt{
			Var: st.Var, Low: st.Low, High: st.High, Downto: st.Downto,
			Label: st.Label, Pos: st.Pos,
			Body: o.block(st.Body, inner),
		}
	case *vhdl.WhileStmt:
		return &vhdl.WhileStmt{
			Cond: st.Cond, Label: st.Label, Pos: st.Pos,
			Body: o.block(st.Body, loopVars),
		}
	case *vhdl.LoopStmt:
		return &vhdl.LoopStmt{
			Label: st.Label, Pos: st.Pos,
			Body: o.block(st.Body, loopVars),
		}
	}
	return s
}

// block outlines one compound-statement body into a procedure call when
// eligible; otherwise it recurses into the body in place.
func (o *outliner) block(body []vhdl.Stmt, loopVars []string) []vhdl.Stmt {
	body = o.stmts(body, loopVars) // outline inner blocks first
	if len(body) < o.opt.MinStmts || !outlinable(body) {
		return body
	}
	used := usedNames(body)
	var params []*vhdl.ParamDecl
	var args []vhdl.Expr
	for _, lv := range loopVars {
		if used[lv] {
			params = append(params, &vhdl.ParamDecl{
				Names: []string{lv}, Dir: vhdl.DirIn,
				Type: &vhdl.TypeRef{Name: "integer"},
			})
			args = append(args, &vhdl.NameExpr{Name: lv})
		}
	}
	o.counter++
	name := fmt.Sprintf("%s_bb%d", o.prefix, o.counter)
	o.newDecls = append(o.newDecls, &vhdl.SubprogramDecl{
		Name: name, Params: params, Body: body,
	})
	return []vhdl.Stmt{&vhdl.CallStmt{Name: name, Args: args}}
}

// outlinable reports whether a block may move into a procedure: no exit,
// return or wait anywhere in it (those are position-dependent).
func outlinable(body []vhdl.Stmt) bool {
	ok := true
	vhdl.WalkStmts(body, func(s vhdl.Stmt) {
		switch s.(type) {
		case *vhdl.ExitStmt, *vhdl.ReturnStmt, *vhdl.WaitStmt:
			ok = false
		}
	})
	return ok
}

// usedNames collects every name referenced in a block (reads, writes,
// calls) so loop-variable parameters can be computed.
func usedNames(body []vhdl.Stmt) map[string]bool {
	used := map[string]bool{}
	note := func(e vhdl.Expr) {
		vhdl.WalkExpr(e, func(x vhdl.Expr) {
			switch n := x.(type) {
			case *vhdl.NameExpr:
				used[n.Name] = true
			case *vhdl.CallExpr:
				used[n.Name] = true
			case *vhdl.AttrExpr:
				used[n.Prefix] = true
			}
		})
	}
	vhdl.WalkStmts(body, func(s vhdl.Stmt) {
		switch st := s.(type) {
		case *vhdl.AssignStmt:
			note(st.Target)
			note(st.Value)
		case *vhdl.IfStmt:
			note(st.Cond)
			for _, el := range st.Elifs {
				note(el.Cond)
			}
		case *vhdl.CaseStmt:
			note(st.Expr)
			for _, w := range st.Whens {
				for _, c := range w.Choices {
					note(c)
				}
			}
		case *vhdl.ForStmt:
			note(st.Low)
			note(st.High)
		case *vhdl.WhileStmt:
			note(st.Cond)
		case *vhdl.CallStmt:
			used[st.Name] = true
			for _, a := range st.Args {
				note(a)
			}
		case *vhdl.ExitStmt:
			note(st.Cond)
		case *vhdl.ReturnStmt:
			note(st.Value)
		case *vhdl.WaitStmt:
			for _, sig := range st.OnSignals {
				used[sig] = true
			}
			note(st.Until)
		}
	})
	return used
}
