package outline

import (
	"os"
	"path/filepath"
	"testing"

	"specsyn/internal/builder"
	"specsyn/internal/interp"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

func readTestdata(t testing.TB, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("testdata: %v", err)
	}
	return string(data)
}

func TestOutlineBasic(t *testing.T) {
	src := `
entity E is port (a : in integer; o : out integer); end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    if a > 0 then
        v := a;
        w := v * 2;
    end if;
    o <= w;
    wait on a;
end process; end;
`
	df := vhdl.MustParse(src)
	out := Transform(df, Options{})
	printed := vhdl.Format(out)
	df2, err := vhdl.Parse(printed)
	if err != nil {
		t.Fatalf("outlined design does not reparse: %v\n%s", err, printed)
	}
	d, err := sem.Elaborate(df2)
	if err != nil {
		t.Fatalf("outlined design does not elaborate: %v\n%s", err, printed)
	}
	// One synthesized procedure p_bb1 should exist.
	found := false
	for _, b := range d.Behaviors {
		if b.Name == "p_bb1" {
			found = true
		}
	}
	if !found {
		t.Errorf("no outlined procedure:\n%s", printed)
	}
}

func TestOutlineLoopVarParam(t *testing.T) {
	src := `
entity E is port (o : out integer); end;
architecture x of E is begin
P: process
    type arr is array (0 to 7) of integer;
    variable a : arr;
    variable s : integer;
begin
    for i in 0 to 7 loop
        a(i) := i;
        s := s + a(i);
    end loop;
    o <= s;
    wait;
end process; end;
`
	df := Transform(vhdl.MustParse(src), Options{})
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatalf("elaborate: %v\n%s", err, vhdl.Format(df))
	}
	var bb *sem.Behavior
	for _, b := range d.Behaviors {
		if b.Name == "p_bb1" {
			bb = b
		}
	}
	if bb == nil {
		t.Fatalf("loop body not outlined:\n%s", vhdl.Format(df))
	}
	if len(bb.Params) != 1 || bb.Params[0].Name != "i" {
		t.Errorf("loop variable not passed as parameter: %+v", bb.Params)
	}
	if len(d.Warnings) != 0 {
		t.Errorf("unresolved names after outlining: %v", d.Warnings)
	}
}

func TestOutlineLeavesControlTransfersInline(t *testing.T) {
	src := `
entity E is port (o : out integer); end;
architecture x of E is begin
P: process
    variable v : integer;
begin
    while v < 10 loop
        v := v + 1;
        exit when v = 5;
    end loop;
    o <= v;
    wait;
end process; end;
`
	df := Transform(vhdl.MustParse(src), Options{})
	d, err := sem.Elaborate(df)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range d.Behaviors {
		if b.Name == "p_bb1" {
			t.Error("block containing exit was outlined")
		}
	}
}

// TestOutlineIncreasesGranularity: the paper's claim — treating basic
// blocks as procedures yields a finer SLIF with more behaviors and more
// call channels, from the same source.
func TestOutlineIncreasesGranularity(t *testing.T) {
	src := readTestdata(t, "fuzzy.vhd")
	coarse, err := builder.BuildVHDL(src, builder.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fine := Transform(vhdl.MustParse(src), Options{})
	d, err := sem.Elaborate(fine)
	if err != nil {
		t.Fatalf("elaborate outlined fuzzy: %v", err)
	}
	fg, err := builder.Build(d, builder.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs, fs := coarse.Stats(), fg.Stats()
	if fs.BV <= cs.BV {
		t.Errorf("outlining did not add behaviors: %d → %d", cs.BV, fs.BV)
	}
	if fs.Channels <= cs.Channels {
		t.Errorf("outlining did not add channels: %d → %d", cs.Channels, fs.Channels)
	}
	t.Logf("granularity: coarse %d/%d → fine %d/%d (BV/C)", cs.BV, cs.Channels, fs.BV, fs.Channels)
}

// TestOutlinePreservesBehavior is the strongest check: the outlined fuzzy
// controller must simulate identically to the original — same actuator
// output at every step under the same stimulus.
func TestOutlinePreservesBehavior(t *testing.T) {
	src := readTestdata(t, "fuzzy.vhd")

	run := func(df *vhdl.DesignFile) []int64 {
		d, err := sem.Elaborate(df)
		if err != nil {
			t.Fatal(err)
		}
		m, err := interp.New(d)
		if err != nil {
			t.Fatal(err)
		}
		var outs []int64
		err = m.Run(40, func(step int, m *interp.Machine) {
			switch {
			case step == 0:
				_ = m.SetPort("cal", 1)
			case step == 1:
				_ = m.SetPort("cal", 0)
			default:
				_ = m.SetPort("in1", int64(10+(step*37)%200))
				_ = m.SetPort("in2", int64(20+(step*53)%200))
			}
			v, _ := m.Port("out1")
			outs = append(outs, v)
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}

	orig := run(vhdl.MustParse(src))
	outl := run(Transform(vhdl.MustParse(src), Options{}))
	if len(orig) != len(outl) {
		t.Fatal("trace lengths differ")
	}
	for i := range orig {
		if orig[i] != outl[i] {
			t.Fatalf("step %d: original out1=%d, outlined out1=%d", i, orig[i], outl[i])
		}
	}
}

// TestOutlineAllExamples: every example survives the transformation and
// rebuilds.
func TestOutlineAllExamples(t *testing.T) {
	for _, name := range []string{"ans", "ether", "fuzzy", "vol"} {
		src := readTestdata(t, name+".vhd")
		fine := Transform(vhdl.MustParse(src), Options{})
		d, err := sem.Elaborate(fine)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(d.Warnings) != 0 {
			t.Errorf("%s: warnings: %v", name, d.Warnings)
		}
		if _, err := builder.Build(d, builder.Options{}); err != nil {
			t.Errorf("%s: build: %v", name, err)
		}
	}
}

func TestMinStmtsKnob(t *testing.T) {
	src := readTestdata(t, "vol.vhd")
	count := func(min int) int {
		df := Transform(vhdl.MustParse(src), Options{MinStmts: min})
		d, err := sem.Elaborate(df)
		if err != nil {
			t.Fatal(err)
		}
		return len(d.Behaviors)
	}
	if a, b := count(1), count(4); a <= b {
		t.Errorf("lower MinStmts must outline at least as much: min=1 → %d behaviors, min=4 → %d", a, b)
	}
}
