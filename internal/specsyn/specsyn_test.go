package specsyn

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/partition"
)

var testdata = filepath.Join("..", "..", "testdata")

// load builds one of the four paper examples end to end.
func load(t testing.TB, name string) *Env {
	t.Helper()
	env := New()
	if err := env.LoadVHDLFile(filepath.Join(testdata, name+".vhd")); err != nil {
		t.Fatal(err)
	}
	if err := env.LoadProfileFile(filepath.Join(testdata, name+".prob")); err != nil {
		t.Fatal(err)
	}
	if err := env.LoadLibraryFile(filepath.Join(testdata, "std.lib")); err != nil {
		t.Fatal(err)
	}
	if name == "fuzzy" {
		if err := env.LoadOverridesFile(filepath.Join(testdata, "fuzzy.ov")); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Build(); err != nil {
		t.Fatal(err)
	}
	return env
}

// TestFigure4Counts pins the BV and C columns of the paper's Figure 4
// exactly: the re-authored specifications were written to match them.
func TestFigure4Counts(t *testing.T) {
	want := map[string]struct{ bv, c int }{
		"ans":   {45, 64},
		"ether": {123, 112},
		"fuzzy": {35, 56},
		"vol":   {30, 41},
	}
	for name, w := range want {
		env := load(t, name)
		st := env.Graph.Stats()
		if st.BV != w.bv || st.Channels != w.c {
			t.Errorf("%s: BV=%d C=%d, want BV=%d C=%d", name, st.BV, st.Channels, w.bv, w.c)
		}
	}
}

// TestFigure3Override checks the designer override pinned the Convolve ict
// to the paper's Figure 3 values.
func TestFigure3Override(t *testing.T) {
	env := load(t, "fuzzy")
	n := env.Graph.NodeByName("convolve")
	if n == nil {
		t.Fatal("convolve node missing")
	}
	if n.ICT["proc10"] != 80 || n.ICT["asic50"] != 10 {
		t.Errorf("convolve ict = %v, want 80 (proc10) / 10 (asic50)", n.ICT)
	}
}

// TestEstimateAllExamples runs a complete §3 metric report for every
// example under the default all-software partition and under a hardware
// split, checking basic sanity relations.
func TestEstimateAllExamples(t *testing.T) {
	for _, name := range []string{"ans", "ether", "fuzzy", "vol"} {
		env := load(t, name)
		pt, err := env.DefaultPartition()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, dur, err := env.Estimate(pt, estimate.Options{})
		if err != nil {
			t.Fatalf("%s: estimate: %v", name, err)
		}
		if dur.Seconds() > 0.01 {
			t.Errorf("%s: T-est %v exceeds the paper's hundredth of a second", name, dur)
		}
		for _, p := range rep.Processes {
			if p.Exectime <= 0 || math.IsNaN(p.Exectime) {
				t.Errorf("%s: process %s exectime %v", name, p.Name, p.Exectime)
			}
		}
		var cpuSize float64
		for _, c := range rep.Comps {
			if c.Name == "cpu" {
				cpuSize = c.Size
			}
			if c.Size < 0 {
				t.Errorf("%s: negative size on %s", name, c.Name)
			}
		}
		if cpuSize <= 0 {
			t.Errorf("%s: all-software cpu size %v", name, cpuSize)
		}
	}
}

// TestHardwareAccelerates: moving every behavior and array of the fuzzy
// controller's datapath to the faster ASIC must not slow any process down.
func TestHardwareAccelerates(t *testing.T) {
	env := load(t, "fuzzy")
	g := env.Graph
	sw, err := env.DefaultPartition()
	if err != nil {
		t.Fatal(err)
	}
	swRep, _, err := env.Estimate(sw, estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}

	hw := sw.Clone()
	asic := g.ProcByName("asic")
	for _, n := range g.Nodes {
		if _, ok := n.ICT[asic.TypeName]; ok {
			if err := hw.Assign(n, asic); err != nil {
				t.Fatal(err)
			}
		}
	}
	hwRep, _, err := env.Estimate(hw, estimate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	swTime := map[string]float64{}
	for _, p := range swRep.Processes {
		swTime[p.Name] = p.Exectime
	}
	for _, p := range hwRep.Processes {
		if p.Exectime > swTime[p.Name] {
			t.Errorf("process %s slower on the ASIC: %v > %v", p.Name, p.Exectime, swTime[p.Name])
		}
	}
}

// TestArrayPlacementMatters reproduces the partitioning insight the fuzzy
// spec documents: keeping the rule arrays with EvaluateRule (same
// component) must beat placing them across the bus.
func TestArrayPlacementMatters(t *testing.T) {
	env := load(t, "fuzzy")
	g := env.Graph
	asic := g.ProcByName("asic")

	together, err := env.DefaultPartition() // everything on cpu
	if err != nil {
		t.Fatal(err)
	}
	apart := together.Clone()
	for _, name := range []string{"mr1", "mr2"} {
		if err := apart.Assign(g.NodeByName(name), asic); err != nil {
			t.Fatal(err)
		}
	}
	et := func(pt *core.Partition) float64 {
		est := estimate.New(g, pt, estimate.Options{})
		v, err := est.Exectime(g.NodeByName("fuzzymain"))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if et(together) >= et(apart) {
		t.Errorf("moving the rule arrays across the bus should cost time: together %v, apart %v",
			et(together), et(apart))
	}
}

// TestPartitionSearchAlgorithms runs every search algorithm on the vol
// example with a tight software deadline and checks they find something
// legal, with the informed ones not losing to random.
func TestPartitionSearchAlgorithms(t *testing.T) {
	env := load(t, "vol")
	cons := partition.Constraints{Deadline: map[string]float64{"volmain": 50}}
	w := partition.DefaultWeights()

	random, err := env.PartitionSearch(context.Background(), "random", cons, w, 1, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"greedy", "gm", "anneal", "cluster"} {
		res, err := env.PartitionSearch(context.Background(), algo, cons, w, 1, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := res.Best.Validate(); err != nil {
			t.Errorf("%s: invalid result: %v", algo, err)
		}
		if algo == "gm" && res.Cost > random.Cost+1e-9 {
			t.Errorf("group migration (%v) lost to random sampling (%v)", res.Cost, random.Cost)
		}
	}
	if _, err := env.PartitionSearch(context.Background(), "nonsense", cons, w, 1, 0, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestParallelSearchMatchesSequentialExamples: on the real paper examples,
// the parallel engine at one worker reproduces the sequential algorithms
// exactly — ParallelRandom equals Random, and a single-leg MultiStart
// equals Greedy — and the result is identical again at four workers.
func TestParallelSearchMatchesSequentialExamples(t *testing.T) {
	cons := partition.Constraints{Deadline: map[string]float64{"fuzzymain": 500, "ansmain": 500}}
	w := partition.DefaultWeights()
	for _, name := range []string{"fuzzy", "ans"} {
		env := load(t, name)
		seqRandom, err := env.PartitionSearch(context.Background(), "random", cons, w, 7, 400, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seqGreedy, err := env.PartitionSearch(context.Background(), "greedy", cons, w, 7, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{1, 4} {
			par, err := env.PartitionSearchParallel(context.Background(), "random", cons, w, 7, 400, 0, partition.ParallelOptions{Workers: workers, Legs: 4})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if par.Cost != seqRandom.Cost || par.Best.String() != seqRandom.Best.String() {
				t.Errorf("%s: parallel random @%d workers (cost %v) != sequential random (cost %v)",
					name, workers, par.Cost, seqRandom.Cost)
			}
			if par.Evals != seqRandom.Evals {
				t.Errorf("%s: parallel random evals %d != sequential %d", name, par.Evals, seqRandom.Evals)
			}
			multi, err := env.PartitionSearchParallel(context.Background(), "multi", cons, w, 7, 0, 0, partition.ParallelOptions{Workers: workers, Legs: 1})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if multi.Cost != seqGreedy.Cost || multi.Best.String() != seqGreedy.Best.String() {
				t.Errorf("%s: 1-leg MultiStart @%d workers (cost %v) != greedy (cost %v)",
					name, workers, multi.Cost, seqGreedy.Cost)
			}
		}
		// The full portfolio must not lose to its own greedy leg.
		full, err := env.PartitionSearchParallel(context.Background(), "multi", cons, w, 7, 300, 0, partition.ParallelOptions{Workers: 4, Legs: 6})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if full.Cost > seqGreedy.Cost+1e-9 {
			t.Errorf("%s: MultiStart portfolio (%v) lost to greedy (%v)", name, full.Cost, seqGreedy.Cost)
		}
		if err := full.Best.Validate(); err != nil {
			t.Errorf("%s: portfolio best invalid: %v", name, err)
		}
	}
}

// TestSlifRoundTripExamples serializes every example and reads it back.
func TestSlifRoundTripExamples(t *testing.T) {
	for _, name := range []string{"ans", "ether", "fuzzy", "vol"} {
		env := load(t, name)
		pt, err := env.DefaultPartition()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := core.Write(&buf, env.Graph, pt); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		g2, pt2, err := core.Read(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if g2.Stats() != env.Graph.Stats() {
			t.Errorf("%s: round trip changed stats", name)
		}
		if pt2 == nil || pt2.Validate() != nil {
			t.Errorf("%s: round trip lost the partition", name)
		}
		// The reread graph estimates identically.
		e1 := estimate.New(env.Graph, pt, estimate.Options{})
		e2 := estimate.New(g2, pt2, estimate.Options{})
		for _, p := range env.Graph.Processes() {
			v1, err1 := e1.Exectime(p)
			v2, err2 := e2.Exectime(g2.NodeByName(p.Name))
			if err1 != nil || err2 != nil || math.Abs(v1-v2) > 1e-9 {
				t.Errorf("%s: exectime(%s) drifted: %v vs %v (%v, %v)", name, p.Name, v1, v2, err1, err2)
			}
		}
	}
}

// TestBuildErrors covers the environment's failure paths.
func TestBuildErrors(t *testing.T) {
	env := New()
	if err := env.Build(); err == nil {
		t.Error("build without source accepted")
	}
	env.LoadVHDL("this is not vhdl")
	if err := env.Build(); err == nil {
		t.Error("garbage source accepted")
	}
	if _, err := env.DefaultPartition(); err == nil {
		t.Error("partition before build accepted")
	}
	if err := env.LoadVHDLFile("/does/not/exist.vhd"); err == nil {
		t.Error("missing file accepted")
	}
	if err := env.LoadProfileFile("/does/not/exist.prob"); err == nil {
		t.Error("missing profile accepted")
	}
	if err := env.LoadLibraryFile("/does/not/exist.lib"); err == nil {
		t.Error("missing library accepted")
	}
	if err := env.LoadOverridesFile("/does/not/exist.ov"); err == nil {
		t.Error("missing overrides accepted")
	}
}

// TestBusWidthTradeoff pins the eq. 1 / eq. 6 interaction the bus-width
// sweep exposes: widening the bus never slows a process down (ceil
// division collapses) and always costs at least as many pins.
func TestBusWidthTradeoff(t *testing.T) {
	var lastET = math.Inf(1)
	lastIO := 0
	for _, width := range []int{4, 8, 16, 32, 64} {
		env := load(t, "fuzzy")
		g := env.Graph
		g.BusByName("sysbus").BitWidth = width
		pt, err := env.DefaultPartition()
		if err != nil {
			t.Fatal(err)
		}
		asic := g.ProcByName("asic")
		for _, name := range []string{"evaluaterule", "convolve", "mr1", "mr2", "tmr1", "tmr2", "conv"} {
			if err := pt.Assign(g.NodeByName(name), asic); err != nil {
				t.Fatal(err)
			}
		}
		est := estimate.New(g, pt, estimate.Options{})
		et, err := est.Exectime(g.NodeByName("fuzzymain"))
		if err != nil {
			t.Fatal(err)
		}
		io := est.IO(asic)
		if et > lastET+1e-9 {
			t.Errorf("width %d: exectime rose to %v (was %v)", width, et, lastET)
		}
		if io < lastIO {
			t.Errorf("width %d: IO fell to %d (was %d)", width, io, lastIO)
		}
		lastET, lastIO = et, io
	}
}

// TestTwoBusAllocation: with an internal+external bus pair, the searched
// partition routes internal channels onto the local bus, and the result
// beats the same search over the single shared bus.
func TestTwoBusAllocation(t *testing.T) {
	// Single-bus baseline.
	single := load(t, "fuzzy")
	cons := partition.Constraints{Deadline: map[string]float64{"fuzzymain": 500}}
	w := partition.DefaultWeights()
	resSingle, err := single.PartitionSearch(context.Background(), "gm", cons, w, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Two-bus allocation.
	env := New()
	if err := env.LoadVHDLFile(filepath.Join(testdata, "fuzzy.vhd")); err != nil {
		t.Fatal(err)
	}
	if err := env.LoadProfileFile(filepath.Join(testdata, "fuzzy.prob")); err != nil {
		t.Fatal(err)
	}
	if err := env.LoadLibraryFile(filepath.Join(testdata, "twobus.lib")); err != nil {
		t.Fatal(err)
	}
	if err := env.Build(); err != nil {
		t.Fatal(err)
	}
	res, err := env.PartitionSearch(context.Background(), "gm", cons, w, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	// Internal channels must ride the local bus.
	local := env.Graph.BusByName("localbus")
	sys := env.Graph.BusByName("sysbus")
	for _, c := range env.Graph.Channels {
		internal := res.Best.DstComp(c) != nil && res.Best.DstComp(c) == res.Best.BvComp(c.Src)
		bus := res.Best.ChanBus(c)
		if internal && bus != local {
			t.Errorf("internal channel %s on %s", c.Key(), bus.Name)
		}
		if !internal && bus != sys {
			t.Errorf("crossing channel %s on %s", c.Key(), bus.Name)
		}
	}
	// A fast local bus can only help.
	if res.Cost > resSingle.Cost+1e-9 {
		t.Errorf("two-bus result (%v) worse than single shared bus (%v)", res.Cost, resSingle.Cost)
	}
}

// TestPinConstraintDrives: an ASIC with almost no pins must repel mappings
// that cut heavy traffic across its boundary.
func TestPinConstraintDrives(t *testing.T) {
	env := load(t, "fuzzy")
	g := env.Graph
	g.ProcByName("asic").PinCon = 8 // the 16-bit bus alone violates this
	cons := partition.Constraints{}
	res, err := env.PartitionSearch(context.Background(), "gm", cons, partition.DefaultWeights(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	est := estimate.New(g, res.Best, estimate.Options{})
	asicIO := est.IO(g.ProcByName("asic"))
	// Feasible only if the ASIC is unused (IO 0): any cut bus costs 16 pins.
	if asicIO != 0 {
		t.Errorf("search left %d pins of traffic on a pin-starved ASIC", asicIO)
	}
}

// TestMemoryConstraintScenario: a tiny cpu data budget must push the big
// arrays to the memory component.
func TestMemoryConstraintScenario(t *testing.T) {
	env := load(t, "ans")
	g := env.Graph
	g.ProcByName("cpu").SizeCon = 2000  // bytes: msgmem alone is 49k
	g.ProcByName("asic").SizeCon = 4000 // gates: arrays cost bits×8 gates, far over
	res, err := env.PartitionSearch(context.Background(), "gm", partition.Constraints{}, partition.DefaultWeights(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ev := partition.NewEvaluator(g, partition.Constraints{}, partition.DefaultWeights(), estimate.Options{})
	feasible, err := ev.Feasible(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if !feasible {
		t.Fatal("no feasible mapping found despite the memory having room")
	}
	ram := g.MemByName("ram")
	if res.Best.BvComp(g.NodeByName("msgmem")) != core.Component(ram) {
		t.Errorf("msgmem (49k samples) not on the memory: %v",
			res.Best.BvComp(g.NodeByName("msgmem")).CompName())
	}
}
