// Package specsyn is the environment façade tying the pipeline together,
// mirroring how the paper's SpecSyn tool is used: read a VHDL specification
// (plus profile, component library and designer overrides), build the
// annotated SLIF once, then interactively estimate, partition and transform
// — each step fast because everything is precomputed in the graph.
package specsyn

import (
	"context"
	"fmt"
	"os"
	"time"

	"specsyn/internal/alloc"
	"specsyn/internal/builder"
	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/partition"
	"specsyn/internal/profile"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// Env is one design session.
type Env struct {
	Source    string // VHDL text
	Design    *sem.Design
	Graph     *core.Graph
	Lib       *alloc.Library
	Prof      *profile.Profile
	Overrides *builder.Overrides

	// BuildTime is the wall-clock cost of the last Build or Reload — the
	// paper's "T-slif" quantity (incremental for reloads).
	BuildTime time.Duration

	// depsCache keeps the compiled snapshot and dependency index alive
	// across searches for the current graph; a Reload that finds no
	// semantic change keeps the graph pointer and therefore the compiled
	// state too. A pointer so shallow Env copies share one cache (and stay
	// vet-clean); nil (a zero-literal Env) just disables the reuse.
	depsCache *estimate.DepsCache
}

// New returns an empty session with the standard library and profile.
func New() *Env {
	return &Env{Lib: alloc.Std(), Prof: profile.Empty(), depsCache: &estimate.DepsCache{}}
}

// LoadVHDL sets the specification source.
func (e *Env) LoadVHDL(src string) { e.Source = src }

// LoadVHDLFile reads the specification from disk.
func (e *Env) LoadVHDLFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	e.Source = string(data)
	return nil
}

// LoadProfileFile reads a branch-probability file.
func (e *Env) LoadProfileFile(path string) error {
	p, err := profile.Load(path)
	if err != nil {
		return err
	}
	e.Prof = p
	return nil
}

// LoadLibraryFile reads a component library / allocation file.
func (e *Env) LoadLibraryFile(path string) error {
	l, err := alloc.Load(path)
	if err != nil {
		return err
	}
	e.Lib = l
	return nil
}

// LoadOverridesFile reads a designer weight-override file.
func (e *Env) LoadOverridesFile(path string) error {
	o, err := builder.LoadOverrides(path)
	if err != nil {
		return err
	}
	e.Overrides = o
	return nil
}

// Build parses, elaborates and constructs the annotated SLIF graph, then
// installs the library's allocation. It records BuildTime.
func (e *Env) Build() error {
	if e.Source == "" {
		return fmt.Errorf("specsyn: no VHDL source loaded")
	}
	start := time.Now()
	df, err := vhdl.Parse(e.Source)
	if err != nil {
		return fmt.Errorf("specsyn: %w", err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		return fmt.Errorf("specsyn: %w", err)
	}
	g, err := builder.Build(d, builder.Options{
		Profile:   e.Prof,
		Techs:     e.Lib.Techs,
		Overrides: e.Overrides,
	})
	if err != nil {
		return err
	}
	if err := e.Lib.Apply(g); err != nil {
		return err
	}
	e.Design, e.Graph = d, g
	e.BuildTime = time.Since(start)
	return nil
}

// Reload swaps in an edited specification source, rebuilding the SLIF
// graph incrementally against the current one (builder.Rebuild): a
// semantically empty edit keeps the graph — and every compiled estimator
// structure — untouched; a localized edit patches a copy-on-write clone
// and re-applies the allocation; anything else falls back to a full
// build, with the reason in the Delta. The current graph is never
// mutated, so searches already running on it stay consistent. On error
// the session keeps its previous source, design and graph.
func (e *Env) Reload(src string) (builder.Delta, error) {
	if e.Graph == nil || e.Source == "" {
		prevSrc := e.Source
		e.Source = src
		if err := e.Build(); err != nil {
			e.Source = prevSrc
			return builder.Delta{}, err
		}
		return builder.Delta{Full: true, Reason: "no previous build"}, nil
	}
	start := time.Now()
	g, delta, err := builder.Rebuild(e.Graph, e.Source, src, builder.Options{
		Profile:   e.Prof,
		Techs:     e.Lib.Techs,
		Overrides: e.Overrides,
	})
	if err != nil {
		return builder.Delta{}, err
	}
	if delta.Empty() {
		// Comment or formatting edit: the graph pointer — and with it the
		// elaborated design and every compiled estimator structure — stays
		// as it was; only the source text advances so the next diff runs
		// against the right base.
		e.Source = src
		e.BuildTime = time.Since(start)
		return delta, nil
	}
	if err := e.Lib.Apply(g); err != nil {
		return delta, err
	}
	// The design matching the new graph comes out of the front-end cache
	// Rebuild just populated, so this re-parses nothing. It is fetched —
	// and checked — before any session field changes, so a failure leaves
	// the previous source, design and graph fully intact.
	_, d, err := builder.Frontend(src)
	if err != nil {
		return delta, fmt.Errorf("specsyn: reload front end: %w", err)
	}
	e.Design = d
	e.Source, e.Graph = src, g
	e.BuildTime = time.Since(start)
	return delta, nil
}

// ReloadFile reads an edited specification from disk and Reloads it.
func (e *Env) ReloadFile(path string) (builder.Delta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return builder.Delta{}, err
	}
	return e.Reload(string(data))
}

// InvalidateCompiled drops the session's cached compiled state (snapshot
// and dependency index). Required after in-place graph surgery — the
// transform commands mutate the graph under the same pointer, which the
// identity-keyed cache cannot see. Reload never needs it: its patches are
// copy-on-write, so a changed graph is a changed pointer.
func (e *Env) InvalidateCompiled() {
	if e.depsCache != nil {
		e.depsCache.Invalidate()
	}
}

// DefaultPartition maps everything onto the first processor and the first
// bus — the all-software starting point.
func (e *Env) DefaultPartition() (*core.Partition, error) {
	if e.Graph == nil {
		return nil, fmt.Errorf("specsyn: Build first")
	}
	if len(e.Graph.Procs) == 0 || len(e.Graph.Buses) == 0 {
		return nil, fmt.Errorf("specsyn: allocation has no processor or no bus")
	}
	return core.AllToProcessor(e.Graph, e.Graph.Procs[0], e.Graph.Buses[0]), nil
}

// Estimate computes the full §3 metric report for a partition and returns
// it with the wall-clock estimation time — the paper's "T-est" quantity.
func (e *Env) Estimate(pt *core.Partition, opt estimate.Options) (*estimate.Report, time.Duration, error) {
	start := time.Now()
	rep, err := estimate.New(e.Graph, pt, opt).Report()
	return rep, time.Since(start), err
}

// searchConfig assembles the evaluator and bus policy every search shares.
func (e *Env) searchConfig(cons partition.Constraints, w partition.Weights, seed int64, iters int) (partition.Config, error) {
	if e.Graph == nil {
		return partition.Config{}, fmt.Errorf("specsyn: Build first")
	}
	if len(e.Graph.Buses) == 0 {
		return partition.Config{}, fmt.Errorf("specsyn: allocation has no bus")
	}
	ev := partition.NewEvaluator(e.Graph, cons, w, estimate.Options{})
	if e.depsCache != nil {
		if deps, err := e.depsCache.For(e.Graph); err == nil {
			// Pre-seed the evaluator with the session-cached compiled state;
			// on a cache error the evaluator compiles (and reports) itself.
			ev.UseDeps(deps)
		}
	}
	// Single-bus allocations put everything on that bus; with two or more
	// buses the first is the external (inter-component) bus and the second
	// the internal one, re-derived after every move.
	policy := partition.SingleBus(e.Graph.Buses[0])
	idx := partition.SingleBusIdx(e.Graph, e.Graph.Buses[0])
	if len(e.Graph.Buses) > 1 {
		policy = partition.InternalExternal(e.Graph.Buses[1], e.Graph.Buses[0])
		idx = partition.InternalExternalIdx(e.Graph, e.Graph.Buses[1], e.Graph.Buses[0])
	}
	return partition.Config{
		Eval:      ev,
		Policy:    policy,
		IdxPolicy: idx,
		Seed:      seed,
		MaxIters:  iters,
	}, nil
}

// PartitionSearch runs the named algorithm ("random", "greedy", "gm",
// "anneal", "cluster", "exhaustive"); "gm" and "anneal" start from the
// greedy result. The context bounds the whole run: on cancellation or
// deadline the algorithm returns its best-so-far result with Partial set.
// maxEvals (0 = unlimited) caps the cost evaluations spent.
func (e *Env) PartitionSearch(ctx context.Context, algo string, cons partition.Constraints, w partition.Weights, seed int64, iters, maxEvals int) (partition.Result, error) {
	cfg, err := e.searchConfig(cons, w, seed, iters)
	if err != nil {
		return partition.Result{}, err
	}
	cfg.MaxEvals = maxEvals
	switch algo {
	case "random":
		return partition.Random(ctx, e.Graph, cfg)
	case "greedy":
		return partition.Greedy(ctx, e.Graph, cfg)
	case "cluster":
		return partition.ClusterGreedy(ctx, e.Graph, cfg)
	case "exhaustive":
		return partition.Exhaustive(ctx, e.Graph, cfg)
	case "gm":
		res, err := partition.Greedy(ctx, e.Graph, cfg)
		if err != nil || res.Partial {
			return res, err
		}
		return partition.GroupMigration(ctx, res.Best, cfg)
	case "anneal":
		res, err := partition.Greedy(ctx, e.Graph, cfg)
		if err != nil || res.Partial {
			return res, err
		}
		return partition.Anneal(ctx, res.Best, cfg)
	}
	return partition.Result{}, fmt.Errorf("specsyn: unknown algorithm %q (want random, greedy, cluster, gm, anneal or exhaustive)", algo)
}

// PartitionSearchParallel runs the parallel multi-start engine: "random"
// shards the random candidate enumeration across legs (bit-identical to
// the sequential Random at equal seeds), "multi" (or "") runs the mixed
// greedy/anneal/random portfolio, and "portfolio" runs the same mix under
// the adaptive round-based orchestrator (incumbent tracking, laggard
// kill/respawn, anytime curve). The result is deterministic for a given
// seed and leg count, whatever the worker count.
func (e *Env) PartitionSearchParallel(ctx context.Context, algo string, cons partition.Constraints, w partition.Weights, seed int64, iters, maxEvals int, opt partition.ParallelOptions) (partition.MultiResult, error) {
	cfg, err := e.searchConfig(cons, w, seed, iters)
	if err != nil {
		return partition.MultiResult{}, err
	}
	cfg.MaxEvals = maxEvals
	switch algo {
	case "random":
		return partition.ParallelRandom(ctx, e.Graph, cfg, opt)
	case "multi", "":
		return partition.MultiStart(ctx, e.Graph, cfg, opt)
	case "portfolio":
		opt.Adaptive = true
		return partition.MultiStart(ctx, e.Graph, cfg, opt)
	}
	return partition.MultiResult{}, fmt.Errorf("specsyn: unknown parallel algorithm %q (want random, multi or portfolio)", algo)
}
