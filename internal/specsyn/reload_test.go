package specsyn

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/partition"
	"specsyn/internal/vhdl"
)

// reloadBytes compiles a graph stripped of its allocation, so Reload
// results can be compared against fresh full builds.
func reloadBytes(t testing.TB, g *core.Graph) []byte {
	t.Helper()
	s, err := core.Compile(g.Clone(false))
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// insertNull returns src with a null statement prepended to the body of
// its first process — the canonical one-behavior edit.
func insertNull(t testing.TB, src string) string {
	t.Helper()
	df := vhdl.MustParse(src)
	ps := df.Architectures[0].Processes[0]
	ps.Body = append([]vhdl.Stmt{&vhdl.NullStmt{}}, ps.Body...)
	return vhdl.Format(df)
}

func TestEnvReloadPaths(t *testing.T) {
	env := load(t, "fuzzy")
	g0 := env.Graph

	// Comment-only edit: same graph pointer, empty delta.
	delta, err := env.Reload("-- edited\n" + env.Source)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() || env.Graph != g0 {
		t.Fatalf("comment edit: delta %+v, graph changed %v", delta, env.Graph != g0)
	}

	// One-behavior edit: incremental rebuild, byte-identical to a fresh
	// session built from the edited source, previous graph left intact.
	before := reloadBytes(t, g0)
	edited := insertNull(t, env.Source)
	delta, err = env.Reload(edited)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Full || delta.Empty() {
		t.Fatalf("one-behavior edit: delta %+v", delta)
	}
	if env.Graph == g0 {
		t.Fatal("incremental reload kept the old graph pointer")
	}
	if !bytes.Equal(reloadBytes(t, g0), before) {
		t.Error("reload mutated the previous graph")
	}
	fresh := load(t, "fuzzy")
	if _, err := fresh.Reload(edited); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reloadBytes(t, env.Graph), reloadBytes(t, fresh.Graph)) {
		t.Error("incremental reload diverges from full build of edited source")
	}
	if len(env.Graph.Procs) == 0 || len(env.Graph.Buses) == 0 {
		t.Error("reload dropped the allocation")
	}

	// Structural edit (renamed entity): full fallback with a reason.
	renamed := strings.Replace(env.Source, "fuzzycontrollere", "fuzzycontrollerx", 2)
	delta, err = env.Reload(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Full || delta.Reason == "" {
		t.Fatalf("entity rename: delta %+v", delta)
	}

	// Broken edit: error reported, session state untouched.
	prevSrc, prevGraph := env.Source, env.Graph
	if _, err := env.Reload("entity broken is"); err == nil {
		t.Fatal("broken source accepted")
	}
	if env.Source != prevSrc || env.Graph != prevGraph {
		t.Error("failed reload disturbed the session")
	}
}

// TestReloadNoPreviousBuildKeepsSource is the regression test for the
// no-previous-build path: a Reload whose Build fails must restore the
// source that was loaded before, not leave the session holding the broken
// text (which would make a designer's subsequent Build fail on input they
// never asked to keep, and corrupt the base of the next incremental diff).
func TestReloadNoPreviousBuildKeepsSource(t *testing.T) {
	env := New()
	if err := env.LoadVHDLFile(filepath.Join(testdata, "fuzzy.vhd")); err != nil {
		t.Fatal(err)
	}
	good := env.Source
	if _, err := env.Reload("entity broken is"); err == nil {
		t.Fatal("broken source accepted on the no-previous-build path")
	}
	if env.Source != good {
		t.Fatalf("failed reload replaced the loaded source (kept %d bytes of broken text)", len(env.Source))
	}
	if env.Graph != nil {
		t.Fatal("failed reload installed a graph")
	}
	// The session is intact: building the originally loaded source works.
	if err := env.Build(); err != nil {
		t.Fatalf("Build after failed reload: %v", err)
	}

	// Same contract for a completely fresh session (Source == "").
	empty := New()
	if _, err := empty.Reload("entity broken is"); err == nil {
		t.Fatal("broken source accepted by an empty session")
	}
	if empty.Source != "" {
		t.Error("failed reload left broken source in an empty session")
	}
}

// TestReloadEmptyDeltaKeepsDesign is the regression test for the reload
// front-end path: a semantically empty edit must not re-run the front end
// at all — the elaborated design stays pointer-identical, matching the
// untouched graph — while a real edit must advance the design along with
// the graph.
func TestReloadEmptyDeltaKeepsDesign(t *testing.T) {
	env := load(t, "fuzzy")
	d0, g0 := env.Design, env.Graph

	commented := "-- comment only\n" + env.Source
	delta, err := env.Reload(commented)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() {
		t.Fatalf("comment edit produced non-empty delta %+v", delta)
	}
	if env.Design != d0 {
		t.Error("empty-delta reload re-elaborated the design (front end ran for nothing)")
	}
	if env.Graph != g0 {
		t.Error("empty-delta reload replaced the graph")
	}
	if env.Source != commented {
		t.Error("empty-delta reload did not advance the source text")
	}

	// A real one-behavior edit must swap in the design elaborated from the
	// new source, keeping Design and Graph in step.
	edited := insertNull(t, env.Source)
	delta, err = env.Reload(edited)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Empty() || delta.Full {
		t.Fatalf("one-behavior edit: delta %+v", delta)
	}
	if env.Design == d0 {
		t.Error("incremental reload left the design stale relative to the graph")
	}
}

// TestEnvReloadSearchAfter runs a search after each reload flavor: the
// cached compiled state must never leak across graph versions.
func TestEnvReloadSearchAfter(t *testing.T) {
	env := load(t, "ans")
	search := func() float64 {
		t.Helper()
		res, err := env.PartitionSearch(context.Background(), "greedy", partition.Constraints{}, partition.DefaultWeights(), 1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost
	}
	c0 := search()
	if _, err := env.Reload("-- same\n" + env.Source); err != nil {
		t.Fatal(err)
	}
	if c1 := search(); c1 != c0 {
		t.Errorf("cost changed across empty reload: %v vs %v", c1, c0)
	}
	if _, err := env.Reload(insertNull(t, env.Source)); err != nil {
		t.Fatal(err)
	}
	search() // must not panic or use stale deps

	// A fresh env over the edited source must agree with the reloaded one.
	fresh := load(t, "ans")
	if _, err := fresh.Reload(env.Source); err != nil {
		t.Fatal(err)
	}
	res1, err := env.PartitionSearch(context.Background(), "greedy", partition.Constraints{}, partition.DefaultWeights(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := fresh.PartitionSearch(context.Background(), "greedy", partition.Constraints{}, partition.DefaultWeights(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cost != res2.Cost {
		t.Errorf("search after reload diverges: %v vs %v", res1.Cost, res2.Cost)
	}
}

// TestReloadDuringParallelSearch is the reload/search race: a search
// running over a snapshot of the session must not observe a concurrent
// Reload, because reloads are copy-on-write. Run under -race this fails
// loudly on any shared-structure mutation.
func TestReloadDuringParallelSearch(t *testing.T) {
	env := load(t, "fuzzy")
	// A shallow copy pins the current graph the way an in-flight search
	// does: the original env reloads underneath it.
	searchEnv := *env

	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 16)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := searchEnv.PartitionSearchParallel(context.Background(), "multi",
				partition.Constraints{}, partition.DefaultWeights(), 1, 0, 2000, partition.ParallelOptions{Legs: 4}); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		src := env.Source
		for i := 0; i < 8; i++ {
			edited := insertNull(t, src)
			if _, err := env.Reload(edited); err != nil {
				errs <- err
				return
			}
			if _, err := env.Reload(src); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
