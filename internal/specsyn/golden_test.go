package specsyn

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"specsyn/internal/core"
)

// TestGoldenSlif protects the .slif serialization format and the full
// build pipeline's determinism: building the fuzzy example must reproduce
// testdata/golden/fuzzy.slif byte for byte. Regenerate the golden file
// after an intentional format change with:
//
//	go run ./cmd/slifdump -slif -prob testdata/fuzzy.prob \
//	    -ov testdata/fuzzy.ov -lib testdata/std.lib testdata/fuzzy.vhd \
//	    > testdata/golden/fuzzy.slif
func TestGoldenSlif(t *testing.T) {
	env := load(t, "fuzzy")
	var buf bytes.Buffer
	if err := core.Write(&buf, env.Graph, nil); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(testdata, "golden", "fuzzy.slif"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		got, wantS := buf.String(), string(want)
		// Report the first differing line for a usable failure message.
		gl, wl := splitLines(got), splitLines(wantS)
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Fatalf("golden mismatch at line %d:\n got: %q\nwant: %q", i+1, g, w)
			}
		}
		t.Fatal("golden mismatch (length only)")
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
