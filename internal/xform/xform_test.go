package xform

import (
	"math"
	"testing"
	"testing/quick"

	"specsyn/internal/core"
)

// callGraph builds:
//
//	p1 (process) ──2──▶ helper ──5──▶ arr
//	p1 ──1──▶ v
//	p2 (process) ──3──▶ helper
//	p2 ──1──▶ v
func callGraph(t testing.TB) *core.Graph {
	t.Helper()
	g := core.NewGraph("xf")
	p1 := &core.Node{Name: "p1", Kind: core.BehaviorNode, IsProcess: true}
	p2 := &core.Node{Name: "p2", Kind: core.BehaviorNode, IsProcess: true}
	helper := &core.Node{Name: "helper", Kind: core.BehaviorNode}
	v := &core.Node{Name: "v", Kind: core.VariableNode, StorageBits: 8}
	arr := &core.Node{Name: "arr", Kind: core.VariableNode, StorageBits: 512}
	for _, n := range []*core.Node{p1, p2, helper, v, arr} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
		n.SetICT("proc10", 10)
		n.SetSize("proc10", 100)
	}
	add := func(c *core.Channel) {
		if err := g.AddChannel(c); err != nil {
			t.Fatal(err)
		}
	}
	add(&core.Channel{Src: p1, Dst: helper, AccFreq: 2, AccMin: 1, AccMax: 4, Bits: 16, Tag: core.NoTag})
	add(&core.Channel{Src: helper, Dst: arr, AccFreq: 5, AccMin: 2, AccMax: 10, Bits: 15, Tag: core.NoTag})
	add(&core.Channel{Src: p1, Dst: v, AccFreq: 1, AccMin: 1, AccMax: 1, Bits: 8, Tag: core.NoTag})
	add(&core.Channel{Src: p2, Dst: helper, AccFreq: 3, AccMin: 3, AccMax: 3, Bits: 16, Tag: core.NoTag})
	add(&core.Channel{Src: p2, Dst: v, AccFreq: 1, AccMin: 1, AccMax: 1, Bits: 8, Tag: core.NoTag})
	return g
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestInlineSharedCalleeKept(t *testing.T) {
	g := callGraph(t)
	before := Traffic(g)
	if err := Inline(g, g.NodeByName("p1"), g.NodeByName("helper")); err != nil {
		t.Fatal(err)
	}
	// p1 absorbed helper's accesses: p1→arr freq 2×5 = 10.
	c := g.FindChannel("p1", "arr")
	if c == nil || !almost(c.AccFreq, 10) {
		t.Fatalf("p1->arr = %+v, want freq 10", c)
	}
	if !almost(c.AccMin, 2) || !almost(c.AccMax, 40) {
		t.Errorf("min/max scaling: %v/%v, want 2/40", c.AccMin, c.AccMax)
	}
	// The call edge is gone; helper stays (p2 still calls it).
	if g.FindChannel("p1", "helper") != nil {
		t.Error("call channel survived inlining")
	}
	if g.NodeByName("helper") == nil {
		t.Error("shared callee removed while p2 still calls it")
	}
	// Caller's weights grew: ict by 2×10, size by one body.
	p1 := g.NodeByName("p1")
	if !almost(p1.ICT["proc10"], 30) {
		t.Errorf("p1 ict = %v, want 30", p1.ICT["proc10"])
	}
	if !almost(p1.Size["proc10"], 200) {
		t.Errorf("p1 size = %v, want 200", p1.Size["proc10"])
	}
	if !almost(Traffic(g), before) {
		t.Errorf("traffic changed: %v → %v", before, Traffic(g))
	}
}

func TestInlineLastCallerRemovesCallee(t *testing.T) {
	g := callGraph(t)
	if err := Inline(g, g.NodeByName("p1"), g.NodeByName("helper")); err != nil {
		t.Fatal(err)
	}
	if err := Inline(g, g.NodeByName("p2"), g.NodeByName("helper")); err != nil {
		t.Fatal(err)
	}
	if g.NodeByName("helper") != nil {
		t.Error("orphaned callee not removed")
	}
	// p2→arr freq 3×5 = 15.
	if c := g.FindChannel("p2", "arr"); c == nil || !almost(c.AccFreq, 15) {
		t.Errorf("p2->arr: %+v", c)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("graph invalid after inlining: %v", err)
	}
}

func TestInlineMergesWithExistingChannel(t *testing.T) {
	g := callGraph(t)
	// Give p1 a pre-existing direct access to arr.
	if err := g.AddChannel(&core.Channel{
		Src: g.NodeByName("p1"), Dst: g.NodeByName("arr"),
		AccFreq: 1, AccMin: 1, AccMax: 1, Bits: 15, Tag: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if err := Inline(g, g.NodeByName("p1"), g.NodeByName("helper")); err != nil {
		t.Fatal(err)
	}
	c := g.FindChannel("p1", "arr")
	if !almost(c.AccFreq, 11) { // 1 + 2×5
		t.Errorf("merged freq = %v, want 11", c.AccFreq)
	}
	if c.Tag != core.NoTag {
		t.Error("inlined accesses must drop their concurrency tag")
	}
}

func TestInlineRejections(t *testing.T) {
	g := callGraph(t)
	p1 := g.NodeByName("p1")
	if err := Inline(g, p1, p1); err == nil {
		t.Error("self-inline accepted")
	}
	if err := Inline(g, p1, g.NodeByName("p2")); err == nil {
		t.Error("inlining a process accepted")
	}
	if err := Inline(g, p1, g.NodeByName("v")); err == nil {
		t.Error("inlining a variable accepted")
	}
	if err := Inline(g, g.NodeByName("p2"), g.NodeByName("arr")); err == nil {
		t.Error("inline without a call channel accepted")
	}
}

func TestInlineAll(t *testing.T) {
	// helper2 called only by helper, helper called by p1 and p2: only
	// helper2 inlines.
	g := callGraph(t)
	h2 := &core.Node{Name: "helper2", Kind: core.BehaviorNode}
	h2.SetICT("proc10", 1)
	h2.SetSize("proc10", 10)
	if err := g.AddNode(h2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddChannel(&core.Channel{Src: g.NodeByName("helper"), Dst: h2, AccFreq: 4, Bits: 0, Tag: core.NoTag}); err != nil {
		t.Fatal(err)
	}
	before := Traffic(g)
	inlined, err := InlineAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(inlined) != 1 || inlined[0] != "helper2" {
		t.Errorf("inlined %v, want [helper2]", inlined)
	}
	if g.NodeByName("helper2") != nil {
		t.Error("helper2 not removed")
	}
	if g.NodeByName("helper") == nil {
		t.Error("helper (two callers) should remain")
	}
	if !almost(Traffic(g), before) {
		t.Errorf("traffic changed: %v → %v", before, Traffic(g))
	}
}

func TestMergeProcesses(t *testing.T) {
	g := callGraph(t)
	before := Traffic(g)
	merged, err := MergeProcesses(g, g.NodeByName("p1"), g.NodeByName("p2"), "p12")
	if err != nil {
		t.Fatal(err)
	}
	if !merged.IsProcess {
		t.Error("merged node lost process flag")
	}
	// Channels union with frequencies summed.
	if c := g.FindChannel("p12", "helper"); c == nil || !almost(c.AccFreq, 5) {
		t.Errorf("p12->helper: %+v, want freq 5", c)
	}
	if c := g.FindChannel("p12", "v"); c == nil || !almost(c.AccFreq, 2) {
		t.Errorf("p12->v: %+v, want freq 2", c)
	}
	// Weights summed.
	if !almost(merged.ICT["proc10"], 20) || !almost(merged.Size["proc10"], 200) {
		t.Errorf("merged weights: ict %v size %v", merged.ICT["proc10"], merged.Size["proc10"])
	}
	// Old nodes gone; traffic preserved.
	if g.NodeByName("p1") != nil || g.NodeByName("p2") != nil {
		t.Error("original processes still present")
	}
	if !almost(Traffic(g), before) {
		t.Errorf("traffic changed: %v → %v", before, Traffic(g))
	}
	if err := g.Validate(); err != nil {
		t.Errorf("graph invalid after merge: %v", err)
	}
}

func TestMergeCrossAccessBecomesInternal(t *testing.T) {
	g := callGraph(t)
	// p1 sends messages to p2.
	if err := g.AddChannel(&core.Channel{
		Src: g.NodeByName("p1"), Dst: g.NodeByName("p2"),
		AccFreq: 7, Bits: 32, Tag: core.NoTag,
	}); err != nil {
		t.Fatal(err)
	}
	merged, err := MergeProcesses(g, g.NodeByName("p1"), g.NodeByName("p2"), "p12")
	if err != nil {
		t.Fatal(err)
	}
	if g.FindChannel("p12", "p12") != nil {
		t.Error("self-channel created from cross access")
	}
	_ = merged
}

func TestMergeIncomingRedirected(t *testing.T) {
	g := callGraph(t)
	// A third process calls p2 (p2 doubles as a server behavior is not
	// modelled; use a non-process caller to keep merge legal).
	caller := &core.Node{Name: "caller", Kind: core.BehaviorNode, IsProcess: true}
	caller.SetICT("proc10", 1)
	caller.SetSize("proc10", 1)
	if err := g.AddNode(caller); err != nil {
		t.Fatal(err)
	}
	if err := g.AddChannel(&core.Channel{Src: caller, Dst: g.NodeByName("p2"), AccFreq: 2, Bits: 8, Tag: core.NoTag}); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeProcesses(g, g.NodeByName("p1"), g.NodeByName("p2"), "p12"); err != nil {
		t.Fatal(err)
	}
	if c := g.FindChannel("caller", "p12"); c == nil || !almost(c.AccFreq, 2) {
		t.Errorf("incoming channel not redirected: %+v", c)
	}
}

func TestMergeRejections(t *testing.T) {
	g := callGraph(t)
	p1 := g.NodeByName("p1")
	if _, err := MergeProcesses(g, p1, p1, "x"); err == nil {
		t.Error("self-merge accepted")
	}
	if _, err := MergeProcesses(g, p1, g.NodeByName("helper"), "x"); err == nil {
		t.Error("merging a procedure accepted")
	}
	if _, err := MergeProcesses(g, p1, g.NodeByName("p2"), "v"); err == nil {
		t.Error("name collision accepted")
	}
}

// Property: for random call frequencies, inlining preserves Traffic and
// never creates an invalid graph.
func TestInlineTrafficInvariantQuick(t *testing.T) {
	f := func(callF, accF uint8) bool {
		g := callGraph(t)
		g.FindChannel("p1", "helper").AccFreq = float64(callF%20) + 1
		g.FindChannel("helper", "arr").AccFreq = float64(accF%20) + 1
		before := Traffic(g)
		if err := Inline(g, g.NodeByName("p1"), g.NodeByName("helper")); err != nil {
			return false
		}
		return almost(Traffic(g), before) && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
