// Package xform implements the specification transformations of §1/§3
// ("a transformation, such as procedure inlining or process merging, would
// require modification of certain nodes and edges, along with
// recomputation of certain annotations") directly on the SLIF graph.
//
// Two transformations are provided:
//
//   - Inline(caller, callee): the caller absorbs the callee's accesses,
//     scaled by how often the caller called it; the call channel
//     disappears; the callee node is removed once no caller remains.
//   - MergeProcesses(a, b): two process nodes become one sequential
//     process, their channels unioned (same-target frequencies summed) and
//     their weights summed — the paper's "merging processes into a single
//     process for implementation with a single controller".
//
// Both preserve the invariant the tests check: the total dynamic traffic
// (Σ accfreq×bits reaching variable and port endpoints) is unchanged, so
// bitrate and communication estimates stay consistent.
package xform

import (
	"fmt"

	"specsyn/internal/core"
)

// Inline folds one call edge caller→callee into the caller. Annotation
// recomputation:
//
//   - For every callee channel callee→x with frequency f, the caller gains
//     callFreq×f accesses to x (min/max scale by the call's min/max).
//   - The caller's ict on every component type grows by callFreq×ict_callee
//     (the work is now internal rather than behind a call).
//   - The caller's size grows by one copy of the callee's size (one inlined
//     body per call site pair that SLIF merged into this edge; SLIF cannot
//     distinguish call sites, so one copy is the documented model).
//   - Inlined accesses are strictly sequential (NoTag): the callee's
//     schedule does not survive inlining.
//
// If no other behavior calls the callee afterwards, the callee node and its
// remaining channels are removed. Recursive edges (caller == callee) are
// rejected.
func Inline(g *core.Graph, caller, callee *core.Node) error {
	if caller == callee {
		return fmt.Errorf("xform: cannot inline recursive call %q", caller.Name)
	}
	if !caller.IsBehavior() || !callee.IsBehavior() {
		return fmt.Errorf("xform: inline endpoints must be behaviors")
	}
	if callee.IsProcess {
		return fmt.Errorf("xform: cannot inline process %q; merge processes instead", callee.Name)
	}
	call := g.FindChannel(caller.Name, callee.Name)
	if call == nil {
		return fmt.Errorf("xform: no channel %s->%s", caller.Name, callee.Name)
	}
	callFreq, callMin, callMax := call.AccFreq, call.AccMin, call.AccMax
	g.RemoveChannel(call)

	// Absorb the callee's accesses, scaled by the call frequency.
	for _, cc := range g.BehChans(callee) {
		if existing := g.FindChannel(caller.Name, cc.Dst.EndpointName()); existing != nil {
			existing.AccFreq += callFreq * cc.AccFreq
			existing.AccMin += callMin * cc.AccMin
			existing.AccMax += callMax * cc.AccMax
			existing.Tag = core.NoTag
			continue
		}
		nc := &core.Channel{
			Src: caller, Dst: cc.Dst,
			AccFreq: callFreq * cc.AccFreq,
			AccMin:  callMin * cc.AccMin,
			AccMax:  callMax * cc.AccMax,
			Bits:    cc.Bits,
			Tag:     core.NoTag,
		}
		if err := g.AddChannel(nc); err != nil {
			return err
		}
	}

	// Weight recomputation.
	for t, v := range callee.ICT {
		caller.ICT[t] += callFreq * v
	}
	for t, v := range callee.Size {
		caller.Size[t] += v
	}

	// Remove the callee if orphaned.
	if len(g.InChans(callee.Name)) == 0 {
		g.RemoveNode(callee)
	}
	return nil
}

// InlineAll inlines every non-process behavior that has exactly one caller
// (the classic profitable case), repeating until no such behavior remains.
// It returns the names of the behaviors inlined, in order.
func InlineAll(g *core.Graph) ([]string, error) {
	var inlined []string
	for changed := true; changed; {
		changed = false
		for _, n := range g.Behaviors() {
			if n.IsProcess {
				continue
			}
			callers := g.InChans(n.Name)
			if len(callers) != 1 {
				continue
			}
			caller := callers[0].Src
			if caller == n {
				continue // recursion
			}
			if err := Inline(g, caller, n); err != nil {
				return inlined, err
			}
			inlined = append(inlined, n.Name)
			changed = true
			break // indices changed; restart the scan
		}
	}
	return inlined, nil
}

// MergeProcesses replaces process nodes a and b with a single process named
// name. The merged process executes both bodies sequentially, so:
//
//   - channels union, same-target frequencies (and min/max) sum;
//   - ict weights sum per component type (sequential execution);
//   - size weights sum (both controllers' logic/code is retained);
//   - cross-accesses between a and b (process-to-process channels) become
//     internal and disappear, exactly as when two processes share one
//     controller.
//
// Channels from other behaviors *to* a or b are redirected to the merged
// node (frequencies summing when both were accessed).
func MergeProcesses(g *core.Graph, a, b *core.Node, name string) (*core.Node, error) {
	if !a.IsProcess || !b.IsProcess {
		return nil, fmt.Errorf("xform: merge requires two process nodes")
	}
	if a == b {
		return nil, fmt.Errorf("xform: cannot merge %q with itself", a.Name)
	}
	if g.NodeByName(name) != nil && g.NodeByName(name) != a && g.NodeByName(name) != b {
		return nil, fmt.Errorf("xform: node %q already exists", name)
	}

	merged := &core.Node{Name: name, Kind: core.BehaviorNode, IsProcess: true}
	merged.ICT = map[string]float64{}
	merged.Size = map[string]float64{}
	for _, src := range []*core.Node{a, b} {
		for t, v := range src.ICT {
			merged.ICT[t] += v
		}
		for t, v := range src.Size {
			merged.Size[t] += v
		}
	}

	// Collect outgoing and incoming before mutation.
	type flow struct {
		freq, min, max float64
		bits           int
	}
	outgoing := map[string]*flow{} // dst name → merged flow
	var outOrder []string
	for _, src := range []*core.Node{a, b} {
		for _, c := range g.BehChans(src) {
			dst := c.Dst.EndpointName()
			if dst == a.Name || dst == b.Name {
				continue // becomes internal
			}
			f := outgoing[dst]
			if f == nil {
				f = &flow{bits: c.Bits}
				outgoing[dst] = f
				outOrder = append(outOrder, dst)
			}
			f.freq += c.AccFreq
			f.min += c.AccMin
			f.max += c.AccMax
		}
	}
	incoming := map[*core.Node]*flow{}
	var inOrder []*core.Node
	for _, dst := range []*core.Node{a, b} {
		for _, c := range g.InChans(dst.Name) {
			if c.Src == a || c.Src == b {
				continue
			}
			f := incoming[c.Src]
			if f == nil {
				f = &flow{bits: c.Bits}
				incoming[c.Src] = f
				inOrder = append(inOrder, c.Src)
			}
			f.freq += c.AccFreq
			f.min += c.AccMin
			f.max += c.AccMax
		}
	}

	g.RemoveNode(a)
	g.RemoveNode(b)
	if err := g.AddNode(merged); err != nil {
		return nil, err
	}
	for _, dstName := range outOrder {
		f := outgoing[dstName]
		var dst core.Endpoint
		if n := g.NodeByName(dstName); n != nil {
			dst = n
		} else if p := g.PortByName(dstName); p != nil {
			dst = p
		} else {
			return nil, fmt.Errorf("xform: merged channel destination %q vanished", dstName)
		}
		if err := g.AddChannel(&core.Channel{
			Src: merged, Dst: dst,
			AccFreq: f.freq, AccMin: f.min, AccMax: f.max,
			Bits: f.bits, Tag: core.NoTag,
		}); err != nil {
			return nil, err
		}
	}
	for _, src := range inOrder {
		f := incoming[src]
		if err := g.AddChannel(&core.Channel{
			Src: src, Dst: merged,
			AccFreq: f.freq, AccMin: f.min, AccMax: f.max,
			Bits: f.bits, Tag: core.NoTag,
		}); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// Traffic returns the total dynamic data traffic per system iteration: for
// every process, the accfreq×bits reaching variable and port endpoints,
// with accesses made through subprogram calls weighted by the product of
// call frequencies along the call path. This is the quantity Inline and
// MergeProcesses preserve — inlining moves accesses from callee to caller
// but multiplies their frequency by exactly the factor the call chain
// contributed, and merging sums the processes' flows.
//
// Recursive call cycles contribute the acyclic part of their traffic.
func Traffic(g *core.Graph) float64 {
	memo := map[*core.Node]float64{}
	onPath := map[*core.Node]bool{}
	var eff func(b *core.Node) float64
	eff = func(b *core.Node) float64 {
		if v, ok := memo[b]; ok {
			return v
		}
		if onPath[b] {
			return 0
		}
		onPath[b] = true
		defer delete(onPath, b)
		var total float64
		for _, c := range g.BehChans(b) {
			if n, ok := c.Dst.(*core.Node); ok && n.IsBehavior() {
				total += c.AccFreq * eff(n)
				continue
			}
			total += c.AccFreq * float64(c.Bits)
		}
		memo[b] = total
		return total
	}
	var sum float64
	for _, p := range g.Processes() {
		sum += eff(p)
	}
	return sum
}
