package syngen

import (
	"strings"
	"testing"
	"testing/quick"

	"specsyn/internal/builder"
	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/interp"
	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42})
	b := Generate(Config{Seed: 42})
	if a != b {
		t.Error("same seed produced different specifications")
	}
	c := Generate(Config{Seed: 43})
	if a == c {
		t.Error("different seeds produced identical specifications")
	}
}

func TestGeneratedSpecsParseCleanly(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := Generate(Config{Seed: seed})
		df, err := vhdl.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		d, err := sem.Elaborate(df)
		if err != nil {
			t.Fatalf("seed %d: elaborate: %v", seed, err)
		}
		if len(d.Warnings) != 0 {
			t.Errorf("seed %d: unresolved names: %v", seed, d.Warnings)
		}
	}
}

// TestGeneratedPipeline pushes generated specs through the whole stack:
// build, estimate, serialize, reread, re-estimate identically.
func TestGeneratedPipeline(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := Generate(Config{Seed: seed, Processes: 3})
		g, err := builder.BuildVHDL(src, builder.Options{})
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cpu := &core.Processor{Name: "cpu", TypeName: "proc10"}
		g.AddProcessor(cpu)
		g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})
		pt := core.AllToProcessor(g, cpu, g.Buses[0])
		rep, err := estimate.New(g, pt, estimate.Options{}).Report()
		if err != nil {
			t.Fatalf("seed %d: estimate: %v", seed, err)
		}
		for _, p := range rep.Processes {
			if p.Exectime <= 0 {
				t.Errorf("seed %d: process %s has exectime %v", seed, p.Name, p.Exectime)
			}
		}

		var buf strings.Builder
		if err := core.Write(&buf, g, pt); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		g2, pt2, err := core.Read(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		rep2, err := estimate.New(g2, pt2, estimate.Options{}).Report()
		if err != nil {
			t.Fatalf("seed %d: re-estimate: %v", seed, err)
		}
		for i := range rep.Processes {
			if rep.Processes[i] != rep2.Processes[i] {
				t.Errorf("seed %d: estimate drifted across serialization", seed)
			}
		}
	}
}

// TestGeneratedSpecsSimulate: every generated design must also run in the
// interpreter without runtime errors.
func TestGeneratedSpecsSimulate(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := Generate(Config{Seed: seed})
		df, err := vhdl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		d, err := sem.Elaborate(df)
		if err != nil {
			t.Fatal(err)
		}
		m, err := interp.New(d)
		if err != nil {
			t.Fatal(err)
		}
		err = m.Run(20, func(step int, m *interp.Machine) {
			_ = m.SetPort("din", int64((step*131)%1024))
			_ = m.SetPort("sel", int64(step%16))
		})
		if err != nil {
			t.Fatalf("seed %d: simulate: %v\n%s", seed, err, src)
		}
	}
}

// TestGenerateLeanConfig: negative counts mean "none", producing the lean
// many-process shape the thousand-node partitioning benchmarks use. The
// output must stay a valid subset member end to end.
func TestGenerateLeanConfig(t *testing.T) {
	cfg := Config{Seed: 7, Processes: 64, ProcsPer: -1, VarsPer: 1, ArraysPer: -1, StmtsPer: 2, SharedSigs: 1}
	src := Generate(cfg)
	if src != Generate(cfg) {
		t.Error("lean config not deterministic")
	}
	for _, kw := range []string{"procedure ", "function ", " array "} {
		if strings.Contains(src, kw) {
			t.Errorf("lean config emitted %q", kw)
		}
	}
	g, err := builder.BuildVHDL(src, builder.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Nodes); got < 64 {
		t.Errorf("lean config built only %d nodes for 64 processes", got)
	}
}

// Property: generation is total and grows monotonically with the process
// count.
func TestGenerateSizeQuick(t *testing.T) {
	f := func(seed int64, raw uint8) bool {
		n := int(raw%6) + 1
		small := Generate(Config{Seed: seed, Processes: n})
		large := Generate(Config{Seed: seed, Processes: n + 2})
		return len(large) > len(small)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
