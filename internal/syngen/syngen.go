// Package syngen deterministically generates synthetic behavioral VHDL
// specifications of parameterized size. Two uses:
//
//   - Scalability experiments beyond the paper's largest example (1021
//     lines / 123 objects): T-slif and T-est as functions of
//     specification size, and partitioning throughput on graphs an order
//     of magnitude larger than the paper's.
//   - Stress input for the whole pipeline: generated specifications
//     exercise the parser, elaborator, builder, estimator and simulator
//     with shapes no hand-written test would contain.
//
// Generated designs are always valid members of the subset: every name
// resolves, every call matches its signature, loops terminate, and every
// process ends in a wait on an input port, so the specifications also
// simulate.
package syngen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config sizes a generated specification. Zero fields take defaults; a
// negative count means "none" — lean configurations (no procedures, no
// arrays, no shared signals) generate thousand-process subjects cheap
// enough for CI-scale partitioning benchmarks.
type Config struct {
	Seed       int64
	Processes  int // concurrent processes (default 2)
	ProcsPer   int // procedures/functions per process (default 3, -1 none)
	VarsPer    int // variables per process (default 4, -1 none)
	ArraysPer  int // array variables per process (default 1, -1 none)
	StmtsPer   int // statements per body (default 6, min 1)
	SharedSigs int // architecture-level signals (default 2, -1 none)
}

func (c *Config) defaults() {
	clamp := func(n *int, def int) {
		switch {
		case *n == 0:
			*n = def
		case *n < 0:
			*n = 0
		}
	}
	if c.Processes <= 0 {
		c.Processes = 2
	}
	clamp(&c.ProcsPer, 3)
	clamp(&c.VarsPer, 4)
	clamp(&c.ArraysPer, 1)
	clamp(&c.SharedSigs, 2)
	if c.StmtsPer <= 0 { // every body needs at least one statement
		if c.StmtsPer == 0 {
			c.StmtsPer = 6
		} else {
			c.StmtsPer = 1
		}
	}
}

// gen carries generation state.
type gen struct {
	rng *rand.Rand
	sb  strings.Builder
	ind int
}

func (g *gen) line(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("    ", g.ind))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

// Generate returns the VHDL source of a synthetic specification.
func Generate(cfg Config) string {
	cfg.defaults()
	g := &gen{rng: rand.New(rand.NewSource(cfg.Seed))}

	g.line("-- synthetic specification (syngen seed %d)", cfg.Seed)
	g.line("entity SynE is")
	g.ind++
	g.line("port ( din  : in integer range 0 to 1023;")
	g.line("       sel  : in integer range 0 to 15;")
	g.line("       dout : out integer range 0 to 1023 );")
	g.ind--
	g.line("end;")
	g.line("")
	g.line("architecture behav of SynE is")
	g.ind++
	for i := 0; i < cfg.SharedSigs; i++ {
		g.line("signal shared%d : integer range 0 to 1023;", i)
	}
	g.ind--
	g.line("begin")
	g.ind++
	for p := 0; p < cfg.Processes; p++ {
		g.process(p, cfg)
		g.line("")
	}
	g.ind--
	g.line("end;")
	return g.sb.String()
}

// names available inside process p's bodies.
type scope struct {
	vars   []string // scalar variables
	arrays []string // array variables (each 64 entries, index 0..63)
	procs  []string // parameterless procedures
	funcs  []string // single-int functions
	shared []string
}

func (g *gen) process(p int, cfg Config) {
	sc := &scope{}
	for i := 0; i < cfg.SharedSigs; i++ {
		sc.shared = append(sc.shared, fmt.Sprintf("shared%d", i))
	}
	g.line("P%d: process", p)
	g.ind++
	for i := 0; i < cfg.VarsPer; i++ {
		name := fmt.Sprintf("v%d_%d", p, i)
		g.line("variable %s : integer range 0 to 1023;", name)
		sc.vars = append(sc.vars, name)
	}
	for i := 0; i < cfg.ArraysPer; i++ {
		name := fmt.Sprintf("a%d_%d", p, i)
		g.line("type t_%s is array (0 to 63) of integer range 0 to 1023;", name)
		g.line("variable %s : t_%s;", name, name)
		sc.arrays = append(sc.arrays, name)
	}
	g.line("")
	for i := 0; i < cfg.ProcsPer; i++ {
		if g.rng.Intn(2) == 0 {
			name := fmt.Sprintf("f%d_%d", p, i)
			g.function(name, sc, cfg)
			sc.funcs = append(sc.funcs, name)
		} else {
			name := fmt.Sprintf("q%d_%d", p, i)
			g.procedure(name, sc, cfg)
			sc.procs = append(sc.procs, name)
		}
		g.line("")
	}
	g.ind--
	g.line("begin")
	g.ind++
	g.stmts(sc, cfg.StmtsPer, 0)
	g.line("dout <= %s;", g.rvalue(sc, 0))
	g.line("wait on din, sel;")
	g.ind--
	g.line("end process;")
}

func (g *gen) function(name string, sc *scope, cfg Config) {
	g.line("function %s(x : in integer) return integer is", name)
	g.ind++
	g.line("variable r : integer range 0 to 1023;")
	g.ind--
	g.line("begin")
	g.ind++
	g.line("r := (x * %d + %d) mod 1024;", 1+g.rng.Intn(7), g.rng.Intn(64))
	g.line("if r > %d then", 256+g.rng.Intn(512))
	g.ind++
	g.line("r := r / 2;")
	g.ind--
	g.line("end if;")
	g.line("return r;")
	g.ind--
	g.line("end;")
}

func (g *gen) procedure(name string, sc *scope, cfg Config) {
	g.line("procedure %s is", name)
	g.ind--
	g.line("begin")
	g.ind++
	g.ind++
	g.stmts(sc, cfg.StmtsPer/2+1, 1)
	g.ind--
	g.ind--
	g.line("end;")
	g.ind++
}

// rvalue returns a random right-hand-side expression. depth bounds call
// nesting so generated programs terminate quickly.
func (g *gen) rvalue(sc *scope, depth int) string {
	choices := g.rng.Intn(6)
	switch {
	case choices == 0 && len(sc.funcs) > 0 && depth < 2:
		f := sc.funcs[g.rng.Intn(len(sc.funcs))]
		return fmt.Sprintf("%s(%s)", f, g.rvalue(sc, depth+1))
	case choices == 1 && len(sc.arrays) > 0:
		a := sc.arrays[g.rng.Intn(len(sc.arrays))]
		return fmt.Sprintf("%s(%d)", a, g.rng.Intn(64))
	case choices == 2 && len(sc.shared) > 0:
		return sc.shared[g.rng.Intn(len(sc.shared))]
	case choices == 3:
		return "din"
	case choices == 4 && len(sc.vars) > 1:
		x := sc.vars[g.rng.Intn(len(sc.vars))]
		y := sc.vars[g.rng.Intn(len(sc.vars))]
		op := []string{"+", "-", "*"}[g.rng.Intn(3)]
		return fmt.Sprintf("(%s %s %s) mod 1024", x, op, y)
	default:
		if len(sc.vars) > 0 {
			return sc.vars[g.rng.Intn(len(sc.vars))]
		}
		return fmt.Sprintf("%d", g.rng.Intn(1024))
	}
}

// stmts emits n random statements. kind 1 marks procedure bodies (no
// signal writes to dout, which only the process tail drives).
func (g *gen) stmts(sc *scope, n, kind int) {
	for i := 0; i < n; i++ {
		switch g.rng.Intn(6) {
		case 0: // plain assignment
			if len(sc.vars) > 0 {
				g.line("%s := %s;", sc.vars[g.rng.Intn(len(sc.vars))], g.rvalue(sc, 0))
			}
		case 1: // array write
			if len(sc.arrays) > 0 {
				a := sc.arrays[g.rng.Intn(len(sc.arrays))]
				g.line("%s(%d) := %s;", a, g.rng.Intn(64), g.rvalue(sc, 0))
			}
		case 2: // if/else
			g.line("if %s > %d then", g.rvalue(sc, 1), g.rng.Intn(1024))
			g.ind++
			if len(sc.vars) > 0 {
				g.line("%s := %s;", sc.vars[g.rng.Intn(len(sc.vars))], g.rvalue(sc, 1))
			} else {
				g.line("null;")
			}
			g.ind--
			g.line("else")
			g.ind++
			g.line("null;")
			g.ind--
			g.line("end if;")
		case 3: // bounded for over an array
			if len(sc.arrays) > 0 && len(sc.vars) > 0 {
				a := sc.arrays[g.rng.Intn(len(sc.arrays))]
				v := sc.vars[g.rng.Intn(len(sc.vars))]
				g.line("for i in 0 to 63 loop")
				g.ind++
				g.line("%s := (%s + %s(i)) mod 1024;", v, v, a)
				g.ind--
				g.line("end loop;")
			}
		case 4: // procedure call
			if len(sc.procs) > 0 {
				g.line("%s;", sc.procs[g.rng.Intn(len(sc.procs))])
			}
		case 5: // shared signal update
			if len(sc.shared) > 0 {
				g.line("%s <= %s;", sc.shared[g.rng.Intn(len(sc.shared))], g.rvalue(sc, 0))
			}
		}
	}
}
