// Package store is specsynd's durability layer: an append-only,
// CRC32-framed journal of session *inputs* (sources, auxiliary texts,
// deletions) plus per-session compiled-image checkpoints of the SLIF
// snapshot. The journal is the source of truth — replaying it rebuilds
// every session from scratch — and checkpoints are an optimization that
// lets recovery skip the front end: decode the snapshot, Decompile it to
// a graph, and at most one incremental Reload brings the session to the
// journal's tip.
//
// Crash model: the process can die at any instruction. Every journal
// append is one write + fsync of a self-checking frame; a crash mid-write
// leaves a torn frame that recovery detects (length or CRC mismatch) and
// truncates — the journal is never a reason to refuse startup. Checkpoint
// files are written to a temp name, fsynced, atomically renamed, and the
// directory fsynced, so a checkpoint either exists completely or not at
// all. All I/O goes through faultinject.FS, so the crash model is an
// ordinary test: hand the store a ChaosFS and kill the write you like.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Record is one journaled session mutation. Op "build" carries the full
// input set and resets the session; "reload" advances only the VHDL
// source; "delete" is a tombstone.
type Record struct {
	Seq       uint64 `json:"seq"`
	Op        string `json:"op"`
	ID        string `json:"id"`
	VHDL      string `json:"vhdl,omitempty"`
	Profile   string `json:"profile,omitempty"`
	Library   string `json:"library,omitempty"`
	Overrides string `json:"overrides,omitempty"`
}

const (
	opBuild  = "build"
	opReload = "reload"
	opDelete = "delete"
)

// Journal frame: [u32 payload length][u32 CRC32-IEEE of payload][payload].
const frameHeader = 8

// maxFrame bounds a frame's declared payload length; anything larger is
// corruption (the HTTP layer caps request bodies at 16 MiB well below it).
const maxFrame = 64 << 20

// frame encodes one record for appending.
func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	b := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	copy(b[frameHeader:], payload)
	return b, nil
}

// scanJournal walks data frame by frame, returning the decoded records and
// the byte length of the valid prefix. It never fails: the first torn,
// length-corrupt, CRC-corrupt or undecodable frame ends the scan, and
// recovery truncates the file to good.
func scanJournal(data []byte) (recs []Record, good int64) {
	off := 0
	for off+frameHeader <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n > maxFrame || off+frameHeader+n > len(data) {
			break // torn or corrupt length
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
		off += frameHeader + n
	}
	return recs, int64(off)
}
