package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/faultinject"
)

// testGraph builds a small valid design graph directly through the core
// API — the store never runs the front end, so neither do its tests.
func testGraph(t testing.TB) *core.Graph {
	t.Helper()
	g := core.NewGraph("storetest")
	main := &core.Node{Name: "main", Kind: core.BehaviorNode, IsProcess: true}
	v := &core.Node{Name: "v", Kind: core.VariableNode, StorageBits: 64}
	for _, n := range []*core.Node{main, v} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
		n.SetICT("proc10", 5)
		n.SetSize("proc10", 50)
	}
	if err := g.AddChannel(&core.Channel{Src: main, Dst: v, AccFreq: 2, AccMax: 2, Bits: 8, Tag: core.NoTag}); err != nil {
		t.Fatal(err)
	}
	g.AddProcessor(&core.Processor{Name: "cpu", TypeName: "proc10", SizeCon: 4096, PinCon: 40})
	g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func mustOpen(t *testing.T, dir string, fsys faultinject.FS) (*Store, RecoveryStats) {
	t.Helper()
	s, stats, err := Open(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, stats
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, stats := mustOpen(t, dir, nil)
	if stats.Records != 0 || stats.Sessions != 0 {
		t.Fatalf("fresh store stats = %+v", stats)
	}
	if seq, err := s.AppendBuild("des1", "v1", "prof", "lib", "ovr"); err != nil || seq != 1 {
		t.Fatalf("AppendBuild = %d, %v", seq, err)
	}
	if seq, err := s.AppendReload("des1", "v2"); err != nil || seq != 2 {
		t.Fatalf("AppendReload = %d, %v", seq, err)
	}
	if _, err := s.AppendBuild("des2", "w1", "", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelete("des2"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, stats := mustOpen(t, dir, nil)
	if stats.Records != 4 || stats.Sessions != 1 || stats.TruncatedBytes != 0 {
		t.Fatalf("reopen stats = %+v", stats)
	}
	if ids := s2.Sessions(); len(ids) != 1 || ids[0] != "des1" {
		t.Fatalf("Sessions = %v", ids)
	}
	sd, err := s2.Load("des1")
	if err != nil {
		t.Fatal(err)
	}
	if sd.VHDL != "v2" || sd.Profile != "prof" || sd.Library != "lib" ||
		sd.Overrides != "ovr" || sd.Seq != 2 || sd.Ckpt != nil {
		t.Fatalf("Load = %+v", sd)
	}
	if _, err := s2.Load("des2"); err == nil {
		t.Fatal("deleted session still loads")
	}
	// Sequence numbering continues where the journal left off.
	if seq, err := s2.AppendReload("des1", "v3"); err != nil || seq != 5 {
		t.Fatalf("post-recovery append seq = %d, %v", seq, err)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, nil)
	if _, err := s.AppendBuild("a", "v1", "", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendReload("a", "v2"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: half a frame on the end of the journal.
	jpath := filepath.Join(dir, journalName)
	torn, err := frame(Record{Seq: 3, Op: opReload, ID: "a", VHDL: "v3"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, stats := mustOpen(t, dir, nil)
	if stats.Records != 2 || stats.TruncatedBytes != int64(len(torn)/2) {
		t.Fatalf("recovery stats = %+v", stats)
	}
	sd, err := s2.Load("a")
	if err != nil || sd.VHDL != "v2" {
		t.Fatalf("recovered session = %+v, %v", sd, err)
	}
	// The torn tail is physically gone: the next append lands cleanly and a
	// further recovery sees all three records.
	if seq, err := s2.AppendReload("a", "v3"); err != nil || seq != 3 {
		t.Fatalf("append after truncation = %d, %v", seq, err)
	}
	s2.Close()
	_, stats = mustOpen(t, dir, nil)
	if stats.Records != 3 || stats.TruncatedBytes != 0 {
		t.Fatalf("final stats = %+v", stats)
	}
}

func TestCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, nil)
	g := testGraph(t)
	snap, err := core.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s.AppendBuild("des", "vhdl-at-ckpt", "prof", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint("des", seq, snap, "vhdl-at-ckpt", "prof", "", ""); err != nil {
		t.Fatal(err)
	}
	if s.CkptSeq("des") != seq {
		t.Fatalf("CkptSeq = %d, want %d", s.CkptSeq("des"), seq)
	}
	// The source moves on; the checkpoint lags at seq 1.
	if _, err := s.AppendReload("des", "vhdl-newer"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, stats := mustOpen(t, dir, nil)
	if stats.Checkpoints != 1 || stats.CorruptCkpts != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	sd, err := s2.Load("des")
	if err != nil {
		t.Fatal(err)
	}
	if sd.VHDL != "vhdl-newer" || sd.Ckpt == nil ||
		sd.Ckpt.Seq != seq || sd.Ckpt.VHDL != "vhdl-at-ckpt" {
		t.Fatalf("Load = %+v (ckpt %+v)", sd, sd.Ckpt)
	}
	// The restored graph recompiles to the exact bytes that were stored —
	// the bit-identical recovery guarantee, end to end through the store.
	resnap, err := core.Compile(sd.Ckpt.Graph)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resnap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restored graph does not recompile bit-identically")
	}
}

func TestCorruptCheckpointDegradesToJournal(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, nil)
	snap, err := core.Compile(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := s.AppendBuild("des", "v1", "", "", "")
	if err := s.Checkpoint("des", seq, snap, "v1", "", "", ""); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one byte in the checkpoint body: the CRC catches it and recovery
	// drops the file rather than serving a damaged image.
	cpath := filepath.Join(dir, ckptName("des"))
	raw, err := os.ReadFile(cpath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(cpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, stats := mustOpen(t, dir, nil)
	if stats.CorruptCkpts != 1 || stats.Checkpoints != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	sd, err := s2.Load("des")
	if err != nil || sd == nil || sd.Ckpt != nil || sd.VHDL != "v1" {
		t.Fatalf("Load = %+v, %v", sd, err)
	}
	if _, err := os.Stat(cpath); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint file not removed")
	}
}

func TestResurrectFromCheckpointOnly(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, nil)
	snap, err := core.Compile(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := s.AppendBuild("des", "v1", "prof", "", "")
	if err := s.Checkpoint("des", seq, snap, "v1", "prof", "", ""); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A lost (or compacted-away) journal must not lose the session: the
	// checkpoint header carries enough to resurrect it.
	if err := os.Remove(filepath.Join(dir, journalName)); err != nil {
		t.Fatal(err)
	}
	s2, stats := mustOpen(t, dir, nil)
	if stats.Sessions != 1 || stats.Checkpoints != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	sd, err := s2.Load("des")
	if err != nil || sd.VHDL != "v1" || sd.Profile != "prof" || sd.Ckpt == nil {
		t.Fatalf("Load = %+v, %v", sd, err)
	}
	// Sequence numbers restart above the checkpoint's.
	if nseq, err := s2.AppendReload("des", "v2"); err != nil || nseq != seq+1 {
		t.Fatalf("append = %d, %v", nseq, err)
	}
}

func TestDeleteTombstoneBeatsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, nil)
	snap, err := core.Compile(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := s.AppendBuild("des", "v1", "", "", "")
	if err := s.Checkpoint("des", seq, snap, "v1", "", "", ""); err != nil {
		t.Fatal(err)
	}
	// Crash between the delete record landing and the checkpoint removal:
	// recreate the checkpoint file after AppendDelete removed it.
	if err := s.AppendDelete("des"); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint("des", seq, snap, "v1", "", "", ""); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, stats := mustOpen(t, dir, nil)
	if stats.OrphansRemoved != 1 || stats.Sessions != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if s2.Has("des") {
		t.Fatal("tombstoned session resurrected from stale checkpoint")
	}
	if _, err := os.Stat(filepath.Join(dir, ckptName("des"))); !os.IsNotExist(err) {
		t.Fatal("stale checkpoint not removed")
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, nil)
	if _, err := s.AppendBuild("a", "a1", "p", "", ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.AppendReload("a", "a2"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AppendBuild("b", "b1", "", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDelete("b"); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction grew the journal: %d → %d", before.Size(), after.Size())
	}
	// The compacted store still appends and still recovers.
	if _, err := s.AppendReload("a", "a3"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, stats := mustOpen(t, dir, nil)
	if stats.Sessions != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	sd, err := s2.Load("a")
	if err != nil || sd.VHDL != "a3" || sd.Profile != "p" {
		t.Fatalf("Load = %+v, %v", sd, err)
	}
}

func TestAppendSurvivesInjectedFaults(t *testing.T) {
	dir := t.TempDir()
	// Writes 1–2 land the first record and its sync ... actually each
	// append is one write + one sync; fail the second append's write and
	// tear the fourth's.
	cfs := faultinject.NewChaosFS(nil, faultinject.FSPlan{FailWriteAt: 2, TornWriteAt: 4})
	s, _, err := Open(dir, cfs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendBuild("a", "v1", "", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendReload("a", "v2"); err == nil {
		t.Fatal("injected write failure not surfaced")
	}
	// The store healed: the next append succeeds with the next sequence.
	if seq, err := s.AppendReload("a", "v3"); err != nil || seq != 2 {
		t.Fatalf("append after heal = %d, %v", seq, err)
	}
	// Write 4 is torn: half a frame hits the disk, the append fails, and
	// heal truncates it away.
	if _, err := s.AppendReload("a", "v4"); err == nil {
		t.Fatal("injected torn write not surfaced")
	}
	if seq, err := s.AppendReload("a", "v5"); err != nil || seq != 3 {
		t.Fatalf("append after torn heal = %d, %v", seq, err)
	}
	s.Close()

	s2, stats := mustOpen(t, dir, nil)
	if stats.Records != 3 || stats.TruncatedBytes != 0 {
		t.Fatalf("recovery after chaos = %+v", stats)
	}
	sd, err := s2.Load("a")
	if err != nil || sd.VHDL != "v5" {
		t.Fatalf("Load = %+v, %v", sd, err)
	}
}

func TestCheckpointSurvivesRenameFault(t *testing.T) {
	dir := t.TempDir()
	snap, err := core.Compile(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	cfs := faultinject.NewChaosFS(nil, faultinject.FSPlan{FailRenameAt: 2})
	s, _, err := Open(dir, cfs)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := s.AppendBuild("des", "v1", "", "", "")
	if err := s.Checkpoint("des", seq, snap, "v1", "", "", ""); err != nil {
		t.Fatal(err)
	}
	// The second checkpoint's atomic install fails; the first must be
	// untouched and the temp file cleaned up.
	seq2, _ := s.AppendReload("des", "v2")
	if err := s.Checkpoint("des", seq2, snap, "v2", "", "", ""); err == nil {
		t.Fatal("injected rename failure not surfaced")
	}
	if s.CkptSeq("des") != seq {
		t.Fatalf("failed checkpoint advanced CkptSeq to %d", s.CkptSeq("des"))
	}
	s.Close()

	s2, stats := mustOpen(t, dir, nil)
	if stats.Checkpoints != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	sd, err := s2.Load("des")
	if err != nil || sd.Ckpt == nil || sd.Ckpt.VHDL != "v1" || sd.VHDL != "v2" {
		t.Fatalf("Load = %+v (ckpt %+v), %v", sd, sd.Ckpt, err)
	}
	names, _ := faultinject.OSFS{}.ReadDir(dir)
	for _, n := range names {
		if filepath.Ext(n) == ".tmp" {
			t.Fatalf("temp file %q left behind", n)
		}
	}
}
