package store

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strings"

	"specsyn/internal/faultinject"
)

// ckptMagic versions the checkpoint container. The embedded snapshot has
// its own magic (core's SLIFSNAP format), checked by its own decoder.
const ckptMagic = "SLIFCKPT\x01"

// ckptImage is the decoded content of one checkpoint file: the journal
// sequence it covers, the exact inputs that produced the snapshot (the
// VHDL here is the source the snapshot was compiled from, which may lag
// the journal tip), and the marshaled core.Snapshot.
type ckptImage struct {
	Seq       uint64
	ID        string
	VHDL      string
	Profile   string
	Library   string
	Overrides string
	Snap      []byte
}

// ckptName maps a session ID — arbitrary URL-path text — to a safe,
// reversible file name.
func ckptName(id string) string {
	return "ckpt-" + hex.EncodeToString([]byte(id)) + ".slif"
}

// idFromCkptName inverts ckptName; ok is false for foreign files.
func idFromCkptName(name string) (string, bool) {
	h, found := strings.CutPrefix(name, "ckpt-")
	h, ok := strings.CutSuffix(h, ".slif")
	if !found || !ok {
		return "", false
	}
	id, err := hex.DecodeString(h)
	if err != nil {
		return "", false
	}
	return string(id), true
}

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// encodeCkpt lays the image out as magic, body, CRC32-IEEE of the body.
func encodeCkpt(img ckptImage) []byte {
	b := []byte(ckptMagic)
	b = binary.LittleEndian.AppendUint64(b, img.Seq)
	b = appendStr(b, img.ID)
	b = appendStr(b, img.VHDL)
	b = appendStr(b, img.Profile)
	b = appendStr(b, img.Library)
	b = appendStr(b, img.Overrides)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(img.Snap)))
	b = append(b, img.Snap...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[len(ckptMagic):]))
}

// ckptReader is a bounds-checked cursor with a sticky error, mirroring the
// snapshot decoder's discipline: check d.err once at the end.
type ckptReader struct {
	data []byte
	off  int
	err  error
}

func (d *ckptReader) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("store: checkpoint: "+format, args...)
	}
}

func (d *ckptReader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.fail("truncated at byte %d", d.off)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *ckptReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *ckptReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *ckptReader) str() string {
	n := int(d.u32())
	if d.err == nil && d.off+n > len(d.data) {
		d.fail("string length %d exceeds remaining %d bytes", n, len(d.data)-d.off)
	}
	return string(d.take(n))
}

// decodeCkpt validates and decodes one checkpoint file. A file that fails
// here is treated as absent: recovery falls back to replaying the journal
// through the front end.
func decodeCkpt(data []byte) (ckptImage, error) {
	var img ckptImage
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return img, fmt.Errorf("store: checkpoint: bad magic")
	}
	body, sum := data[len(ckptMagic):len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(sum) {
		return img, fmt.Errorf("store: checkpoint: CRC mismatch")
	}
	d := &ckptReader{data: body}
	img.Seq = d.u64()
	img.ID = d.str()
	img.VHDL = d.str()
	img.Profile = d.str()
	img.Library = d.str()
	img.Overrides = d.str()
	img.Snap = d.take(int(d.u32()))
	if d.err == nil && d.off != len(body) {
		d.fail("%d trailing bytes", len(body)-d.off)
	}
	return img, d.err
}

// atomicWrite installs data at dir/name so that a crash at any point
// leaves either the old file or the new one, never a mixture: temp file,
// fsync, rename, directory fsync.
func atomicWrite(fsys faultinject.FS, dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, name)); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}
