package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"specsyn/internal/core"
	"specsyn/internal/faultinject"
)

const journalName = "journal.slifj"

// state is the in-memory tip of one session: the latest merged inputs
// (rec.Seq is the session's newest journal sequence) and the sequence the
// on-disk checkpoint covers (0 = no checkpoint).
type state struct {
	rec     Record
	ckptSeq uint64
}

// Store is the durable session store. It is safe for concurrent use; the
// coarse mutex is fine because appends are small and checkpoint bodies are
// built by the caller.
type Store struct {
	dir string
	fs  faultinject.FS

	mu       sync.Mutex
	seq      uint64 // last sequence number issued
	jf       faultinject.File
	off      int64 // validated journal length; heal truncates back to it
	sessions map[string]*state
	deleted  map[string]uint64 // tombstone → its sequence
}

// RecoveryStats reports what Open found and repaired.
type RecoveryStats struct {
	Records        int   // journal records replayed
	TruncatedBytes int64 // torn/corrupt journal tail discarded
	Sessions       int   // live sessions after replay
	Checkpoints    int   // usable checkpoint files attached
	CorruptCkpts   int   // checkpoint files discarded (bad magic/CRC)
	OrphansRemoved int   // checkpoint files for tombstoned sessions
}

// Open loads (or creates) the store at dir, replaying the journal and
// scanning checkpoints. fsys nil means the real filesystem. Open never
// refuses a corrupt store: torn journal tails are truncated and bad
// checkpoint files dropped, with the damage reported in RecoveryStats.
func Open(dir string, fsys faultinject.FS) (*Store, RecoveryStats, error) {
	if fsys == nil {
		fsys = faultinject.OSFS{}
	}
	var stats RecoveryStats
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, stats, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		fs:       fsys,
		sessions: make(map[string]*state),
		deleted:  make(map[string]uint64),
	}

	jpath := filepath.Join(dir, journalName)
	data, err := fsys.ReadFile(jpath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, stats, fmt.Errorf("store: read journal: %w", err)
	}
	recs, good := scanJournal(data)
	if good < int64(len(data)) {
		stats.TruncatedBytes = int64(len(data)) - good
		if err := fsys.Truncate(jpath, good); err != nil {
			return nil, stats, fmt.Errorf("store: truncate torn journal: %w", err)
		}
	}
	stats.Records = len(recs)
	for _, rec := range recs {
		s.apply(rec)
	}

	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, stats, fmt.Errorf("store: %w", err)
	}
	for _, name := range names {
		if filepath.Ext(name) == ".tmp" {
			_ = fsys.Remove(filepath.Join(dir, name)) // crashed mid-checkpoint
			continue
		}
		id, ok := idFromCkptName(name)
		if !ok {
			continue
		}
		raw, err := fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		img, err := decodeCkpt(raw)
		if err != nil || img.ID != id {
			stats.CorruptCkpts++
			_ = fsys.Remove(filepath.Join(dir, name))
			continue
		}
		switch ss := s.sessions[id]; {
		case ss != nil:
			ss.ckptSeq = img.Seq
			stats.Checkpoints++
		case s.deleted[id] > img.Seq:
			// Deleted after this checkpoint was taken; the tombstone wins.
			stats.OrphansRemoved++
			_ = fsys.Remove(filepath.Join(dir, name))
		default:
			// No journal record at all: the journal was compacted past this
			// session, so the checkpoint header is its record of truth.
			s.sessions[id] = &state{
				rec: Record{
					Seq: img.Seq, Op: opBuild, ID: id, VHDL: img.VHDL,
					Profile: img.Profile, Library: img.Library, Overrides: img.Overrides,
				},
				ckptSeq: img.Seq,
			}
			if img.Seq > s.seq {
				s.seq = img.Seq
			}
			stats.Checkpoints++
		}
	}
	stats.Sessions = len(s.sessions)

	jf, err := fsys.Append(jpath)
	if err != nil {
		return nil, stats, fmt.Errorf("store: open journal: %w", err)
	}
	s.jf = jf
	s.off = good
	return s, stats, nil
}

// apply folds one record into the in-memory tip. Caller holds mu (or is
// single-threaded recovery).
func (s *Store) apply(rec Record) {
	if rec.Seq > s.seq {
		s.seq = rec.Seq
	}
	switch rec.Op {
	case opBuild:
		s.sessions[rec.ID] = &state{rec: rec}
		delete(s.deleted, rec.ID)
	case opReload:
		if ss := s.sessions[rec.ID]; ss != nil {
			ss.rec.VHDL = rec.VHDL
			ss.rec.Seq = rec.Seq
		}
	case opDelete:
		delete(s.sessions, rec.ID)
		s.deleted[rec.ID] = rec.Seq
	}
}

// journalPath is the journal's full path.
func (s *Store) journalPath() string { return filepath.Join(s.dir, journalName) }

// heal recovers the append handle after a failed write or sync: the file
// may hold a torn frame, so truncate back to the last validated offset and
// reopen. Caller holds mu. On failure the handle stays nil and the next
// append retries the reopen.
func (s *Store) heal() {
	if s.jf != nil {
		_ = s.jf.Close()
		s.jf = nil
	}
	if err := s.fs.Truncate(s.journalPath(), s.off); err != nil {
		return
	}
	if jf, err := s.fs.Append(s.journalPath()); err == nil {
		s.jf = jf
	}
}

// append journals one record durably (write + fsync) and folds it into the
// in-memory tip, returning its sequence number. A failed append leaves the
// store consistent: the torn tail is truncated and the sequence unissued.
func (s *Store) append(rec Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jf == nil {
		s.heal()
		if s.jf == nil {
			return 0, fmt.Errorf("store: journal unavailable after failed append")
		}
	}
	rec.Seq = s.seq + 1
	fr, err := frame(rec)
	if err != nil {
		return 0, err
	}
	if _, err := s.jf.Write(fr); err != nil {
		s.heal()
		return 0, fmt.Errorf("store: journal append: %w", err)
	}
	if err := s.jf.Sync(); err != nil {
		s.heal()
		return 0, fmt.Errorf("store: journal sync: %w", err)
	}
	s.off += int64(len(fr))
	s.apply(rec)
	return rec.Seq, nil
}

// AppendBuild journals a session build (or rebuild) with its full inputs.
func (s *Store) AppendBuild(id, vhdl, profile, library, overrides string) (uint64, error) {
	return s.append(Record{Op: opBuild, ID: id, VHDL: vhdl,
		Profile: profile, Library: library, Overrides: overrides})
}

// AppendReload journals an accepted source reload.
func (s *Store) AppendReload(id, vhdl string) (uint64, error) {
	return s.append(Record{Op: opReload, ID: id, VHDL: vhdl})
}

// AppendDelete journals a session deletion and removes its checkpoint.
func (s *Store) AppendDelete(id string) error {
	if _, err := s.append(Record{Op: opDelete, ID: id}); err != nil {
		return err
	}
	err := s.fs.Remove(filepath.Join(s.dir, ckptName(id)))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: remove checkpoint: %w", err)
	}
	return nil
}

// Checkpoint atomically installs a compiled-image checkpoint for id: snap
// must be the compilation of the graph produced by vhdl (plus the
// auxiliary inputs), and seq the journal sequence that state corresponds
// to. Old checkpoints are replaced; a crash mid-write leaves the previous
// one intact.
func (s *Store) Checkpoint(id string, seq uint64, snap *core.Snapshot, vhdl, profile, library, overrides string) error {
	data, err := snap.MarshalBinary()
	if err != nil {
		return fmt.Errorf("store: checkpoint %q: %w", id, err)
	}
	buf := encodeCkpt(ckptImage{
		Seq: seq, ID: id, VHDL: vhdl,
		Profile: profile, Library: library, Overrides: overrides, Snap: data,
	})
	if err := atomicWrite(s.fs, s.dir, ckptName(id), buf); err != nil {
		return fmt.Errorf("store: checkpoint %q: %w", id, err)
	}
	s.mu.Lock()
	if ss := s.sessions[id]; ss != nil && seq >= ss.ckptSeq {
		ss.ckptSeq = seq
	}
	s.mu.Unlock()
	return nil
}

// CheckpointData is a decoded, decompiled checkpoint: the graph as
// compiled from VHDL at journal sequence Seq.
type CheckpointData struct {
	Seq   uint64
	VHDL  string
	Graph *core.Graph
}

// SessionData is everything recovery needs for one session: the latest
// journaled inputs plus the checkpoint, if one is usable. When Ckpt is
// non-nil and Ckpt.VHDL == VHDL the session restores with no front-end
// work at all; when the source advanced past the checkpoint, one
// incremental Reload closes the gap.
type SessionData struct {
	ID        string
	Seq       uint64
	VHDL      string
	Profile   string
	Library   string
	Overrides string
	Ckpt      *CheckpointData
}

// Load returns the session's recovery data. An unknown id returns (nil,
// err). A known session always returns non-nil data; if its checkpoint
// exists but cannot be decoded, data comes back with Ckpt nil alongside a
// non-nil error describing the damage — callers log it and rebuild through
// the front end.
func (s *Store) Load(id string) (*SessionData, error) {
	s.mu.Lock()
	ss := s.sessions[id]
	if ss == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: no session %q", id)
	}
	rec, ckptSeq := ss.rec, ss.ckptSeq
	s.mu.Unlock()

	sd := &SessionData{
		ID: id, Seq: rec.Seq, VHDL: rec.VHDL,
		Profile: rec.Profile, Library: rec.Library, Overrides: rec.Overrides,
	}
	if ckptSeq == 0 {
		return sd, nil
	}
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, ckptName(id)))
	if err != nil {
		return sd, fmt.Errorf("store: checkpoint %q: %w", id, err)
	}
	img, err := decodeCkpt(raw)
	if err != nil {
		return sd, err
	}
	var snap core.Snapshot
	if err := snap.UnmarshalBinary(img.Snap); err != nil {
		return sd, fmt.Errorf("store: checkpoint %q snapshot: %w", id, err)
	}
	g, err := core.Decompile(&snap)
	if err != nil {
		return sd, fmt.Errorf("store: checkpoint %q: %w", id, err)
	}
	sd.Ckpt = &CheckpointData{Seq: img.Seq, VHDL: img.VHDL, Graph: g}
	return sd, nil
}

// Sessions lists the live session ids, sorted.
func (s *Store) Sessions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Has reports whether id is a live session.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id] != nil
}

// CkptSeq returns the journal sequence the session's checkpoint covers
// (0 = none or unknown session).
func (s *Store) CkptSeq(id string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ss := s.sessions[id]; ss != nil {
		return ss.ckptSeq
	}
	return 0
}

// Compact atomically rewrites the journal to one merged build record per
// live session, dropping superseded reloads and tombstones. Sequence
// numbers are preserved, so checkpoints stay correctly ordered against the
// compacted journal.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]Record, 0, len(s.sessions))
	for _, ss := range s.sessions {
		recs = append(recs, ss.rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	var buf []byte
	for _, rec := range recs {
		rec.Op = opBuild // merged state always carries the full input set
		fr, err := frame(rec)
		if err != nil {
			return err
		}
		buf = append(buf, fr...)
	}
	if s.jf != nil {
		_ = s.jf.Close()
		s.jf = nil
	}
	if err := atomicWrite(s.fs, s.dir, journalName, buf); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	jf, err := s.fs.Append(s.journalPath())
	if err != nil {
		return fmt.Errorf("store: compact: reopen journal: %w", err)
	}
	s.jf = jf
	s.off = int64(len(buf))
	s.deleted = make(map[string]uint64)
	return nil
}

// Close releases the journal handle. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jf == nil {
		return nil
	}
	err := s.jf.Close()
	s.jf = nil
	s.off = -1 // poison: heal() cannot reopen a closed store
	return err
}
