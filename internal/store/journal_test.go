package store

import (
	"encoding/binary"
	"reflect"
	"testing"
)

func TestFrameScanRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Op: opBuild, ID: "a", VHDL: "v1", Profile: "p", Library: "l", Overrides: "o"},
		{Seq: 2, Op: opReload, ID: "a", VHDL: "v2"},
		{Seq: 3, Op: opDelete, ID: "a"},
	}
	var buf []byte
	for _, rec := range recs {
		fr, err := frame(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, fr...)
	}
	got, good := scanJournal(buf)
	if good != int64(len(buf)) || !reflect.DeepEqual(got, recs) {
		t.Fatalf("scan = %v (good %d of %d)", got, good, len(buf))
	}
	// Every torn tail scans to a record boundary, never an error.
	for cut := 0; cut < len(buf); cut++ {
		got, good := scanJournal(buf[:cut])
		if good > int64(cut) {
			t.Fatalf("cut %d: good %d overruns input", cut, good)
		}
		if len(got) > len(recs) {
			t.Fatalf("cut %d: %d records from a prefix", cut, len(got))
		}
	}
	// A corrupted payload byte ends the scan at the frame boundary.
	mut := append([]byte{}, buf...)
	mut[frameHeader] ^= 0xff
	if got, good := scanJournal(mut); len(got) != 0 || good != 0 {
		t.Fatalf("CRC-corrupt first frame scanned as %d records, good %d", len(got), good)
	}
	// An absurd declared length is corruption, not an allocation.
	huge := binary.LittleEndian.AppendUint32(nil, maxFrame+1)
	huge = binary.LittleEndian.AppendUint32(huge, 0)
	if got, good := scanJournal(huge); len(got) != 0 || good != 0 {
		t.Fatalf("oversized frame scanned as %d records, good %d", len(got), good)
	}
}

// FuzzJournalScan feeds the journal decoder arbitrary bytes — the content
// of a journal file after any crash or corruption. Invariants: no panic;
// the valid prefix is stable (rescanning data[:good] reproduces the same
// records and length); and a well-formed frame appended after the valid
// prefix is picked up.
func FuzzJournalScan(f *testing.F) {
	fr1, err := frame(Record{Seq: 1, Op: opBuild, ID: "x", VHDL: "entity e is end;"})
	if err != nil {
		f.Fatal(err)
	}
	fr2, _ := frame(Record{Seq: 2, Op: opReload, ID: "x", VHDL: "-- edited"})
	f.Add(append(append([]byte{}, fr1...), fr2...))
	f.Add(fr1[:len(fr1)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good := scanJournal(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good %d out of range for %d bytes", good, len(data))
		}
		again, goodAgain := scanJournal(data[:good])
		if goodAgain != good || !reflect.DeepEqual(again, recs) {
			t.Fatalf("rescan of valid prefix differs: %d vs %d records, good %d vs %d",
				len(again), len(recs), goodAgain, good)
		}
		ext, err := frame(Record{Seq: 99, Op: opDelete, ID: "tail"})
		if err != nil {
			t.Fatal(err)
		}
		extended := append(append([]byte{}, data[:good]...), ext...)
		more, goodExt := scanJournal(extended)
		if len(more) != len(recs)+1 || goodExt != good+int64(len(ext)) {
			t.Fatalf("appended frame not picked up: %d records, good %d", len(more), goodExt)
		}
	})
}
