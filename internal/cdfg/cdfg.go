// Package cdfg builds a fine-grained control/dataflow graph from an
// elaborated design: one node per operation, constant, variable reference
// and control construct, with dataflow edges between value producers and
// consumers and control edges sequencing statements.
//
// This is the format the paper's §5 compares SLIF against ("the CDFG
// format required over 1100 nodes and 900 edges" for the fuzzy example,
// versus 35/56 for the SLIF-AG). High-level synthesis needs this
// granularity; system-level partitioning drowns in it — reproducing that
// contrast is this package's purpose, so it favors a faithful node/edge
// accounting over scheduling-oriented niceties.
package cdfg

import (
	"fmt"

	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// NodeKind classifies CDFG nodes.
type NodeKind int

// CDFG node kinds.
const (
	NOp      NodeKind = iota // arithmetic/logic/relational operation
	NConst                   // literal
	NRead                    // variable/signal/port read
	NWrite                   // variable/signal/port write
	NIndex                   // array address computation
	NCall                    // subprogram call
	NBranch                  // if/case decision
	NMerge                   // control merge after a decision
	NLoop                    // loop head
	NLoopEnd                 // loop latch
	NWait                    // process synchronization
	NReturn                  // subprogram return
	NCheck                   // VHDL runtime range check on a write
	NCopy                    // parameter copy-in for a call
)

var nodeKindNames = [...]string{
	"op", "const", "read", "write", "index", "call",
	"branch", "merge", "loop", "loopend", "wait", "return",
	"check", "copy",
}

func (k NodeKind) String() string {
	if int(k) < len(nodeKindNames) {
		return nodeKindNames[k]
	}
	return "node?"
}

// EdgeKind distinguishes dataflow from control edges.
type EdgeKind int

// CDFG edge kinds.
const (
	EData EdgeKind = iota
	ECtrl
)

// Node is one CDFG node.
type Node struct {
	ID    int
	Kind  NodeKind
	Label string // operator symbol, name or literal
	Beh   string // owning behavior
}

// Edge connects two CDFG nodes.
type Edge struct {
	From, To int
	Kind     EdgeKind
}

// Graph is a complete control/dataflow graph for a design.
type Graph struct {
	Design string
	Nodes  []Node
	Edges  []Edge
}

// Stats are the node/edge counts reported in the §5 comparison.
type Stats struct{ Nodes, Edges int }

// Stats returns the graph's size.
func (g *Graph) Stats() Stats { return Stats{Nodes: len(g.Nodes), Edges: len(g.Edges)} }

// CountKind returns how many nodes have kind k.
func (g *Graph) CountKind(k NodeKind) int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind == k {
			n++
		}
	}
	return n
}

// builder carries per-behavior construction state.
type gbuilder struct {
	g    *Graph
	d    *sem.Design
	b    *sem.Behavior
	prev int // last control node, -1 at behavior entry
}

func (gb *gbuilder) node(kind NodeKind, label string) int {
	id := len(gb.g.Nodes)
	gb.g.Nodes = append(gb.g.Nodes, Node{ID: id, Kind: kind, Label: label, Beh: gb.b.UniqueID})
	return id
}

func (gb *gbuilder) edge(from, to int, kind EdgeKind) {
	if from < 0 || to < 0 {
		return
	}
	gb.g.Edges = append(gb.g.Edges, Edge{From: from, To: to, Kind: kind})
}

// chain appends n to the control chain.
func (gb *gbuilder) chain(n int) {
	gb.edge(gb.prev, n, ECtrl)
	gb.prev = n
}

// Build constructs the CDFG of every behavior in the design.
func Build(d *sem.Design) *Graph {
	g := &Graph{Design: d.Name}
	for _, b := range d.Behaviors {
		gb := &gbuilder{g: g, d: d, b: b, prev: -1}
		gb.stmts(b.Body)
	}
	return g
}

// BuildVHDL parses, elaborates and builds in one step.
func BuildVHDL(src string) (*Graph, error) {
	df, err := vhdl.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("cdfg: %w", err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		return nil, fmt.Errorf("cdfg: %w", err)
	}
	return Build(d), nil
}

// expr builds the dataflow subgraph of an expression, returning the id of
// the node producing its value.
func (gb *gbuilder) expr(e vhdl.Expr) int {
	switch x := e.(type) {
	case *vhdl.IntExpr:
		return gb.node(NConst, fmt.Sprintf("%d", x.Val))
	case *vhdl.CharExpr:
		return gb.node(NConst, string(rune(x.Val)))
	case *vhdl.StrExpr:
		return gb.node(NConst, x.Val)
	case *vhdl.NameExpr:
		return gb.node(NRead, x.Name)
	case *vhdl.AttrExpr:
		return gb.node(NRead, x.Prefix+"'"+x.Attr)
	case *vhdl.UnaryExpr:
		op := gb.node(NOp, x.Op.String())
		gb.edge(gb.expr(x.X), op, EData)
		return op
	case *vhdl.BinExpr:
		op := gb.node(NOp, x.Op.String())
		gb.edge(gb.expr(x.L), op, EData)
		gb.edge(gb.expr(x.R), op, EData)
		return op
	case *vhdl.CallExpr:
		sym := gb.d.Lookup(gb.b, x.Name)
		kind, label := NIndex, x.Name+"[]"
		if sym != nil && sym.Kind == sem.SymBehavior {
			kind, label = NCall, x.Name
		}
		n := gb.node(kind, label)
		if kind == NIndex {
			// The array read feeds the address computation's result.
			rd := gb.node(NRead, x.Name)
			gb.edge(rd, n, EData)
			for _, a := range x.Args {
				gb.edge(gb.expr(a), n, EData)
			}
			return n
		}
		for _, a := range x.Args {
			cp := gb.node(NCopy, "param")
			gb.edge(gb.expr(a), cp, EData)
			gb.edge(cp, n, EData)
		}
		return n
	case *vhdl.AggregateExpr:
		n := gb.node(NOp, "aggregate")
		for _, a := range x.Assocs {
			if a.Choice != nil {
				gb.edge(gb.expr(a.Choice), n, EData)
			}
			gb.edge(gb.expr(a.Value), n, EData)
		}
		return n
	}
	return gb.node(NConst, "?")
}

func (gb *gbuilder) stmts(stmts []vhdl.Stmt) {
	for _, s := range stmts {
		gb.stmt(s)
	}
}

func (gb *gbuilder) stmt(s vhdl.Stmt) {
	switch st := s.(type) {
	case *vhdl.AssignStmt:
		val := gb.expr(st.Value)
		// VHDL mandates a runtime range check before every write to a
		// constrained object; high-level synthesis CDFGs carry it as an
		// explicit node so it can be scheduled (or proven away).
		chk := gb.node(NCheck, "rangecheck")
		gb.edge(val, chk, EData)
		var wr int
		switch t := st.Target.(type) {
		case *vhdl.NameExpr:
			wr = gb.node(NWrite, t.Name)
		case *vhdl.CallExpr:
			wr = gb.node(NWrite, t.Name+"[]")
			idx := gb.node(NIndex, t.Name+"@")
			for _, a := range t.Args {
				gb.edge(gb.expr(a), idx, EData)
			}
			gb.edge(idx, wr, EData)
		default:
			wr = gb.node(NWrite, "?")
		}
		gb.edge(chk, wr, EData)
		gb.chain(wr)

	case *vhdl.IfStmt:
		cond := gb.expr(st.Cond)
		br := gb.node(NBranch, "if")
		gb.edge(cond, br, EData)
		gb.chain(br)
		merge := gb.node(NMerge, "endif")

		gb.prev = br
		gb.stmts(st.Then)
		gb.edge(gb.prev, merge, ECtrl)
		for _, el := range st.Elifs {
			gb.prev = br
			c2 := gb.expr(el.Cond)
			gb.edge(c2, br, EData)
			gb.stmts(el.Body)
			gb.edge(gb.prev, merge, ECtrl)
		}
		gb.prev = br
		if len(st.Else) > 0 {
			gb.stmts(st.Else)
		}
		gb.edge(gb.prev, merge, ECtrl)
		gb.prev = merge

	case *vhdl.CaseStmt:
		sel := gb.expr(st.Expr)
		br := gb.node(NBranch, "case")
		gb.edge(sel, br, EData)
		gb.chain(br)
		merge := gb.node(NMerge, "endcase")
		for _, w := range st.Whens {
			for _, c := range w.Choices {
				gb.edge(gb.expr(c), br, EData)
			}
			gb.prev = br
			gb.stmts(w.Body)
			gb.edge(gb.prev, merge, ECtrl)
		}
		gb.prev = merge

	case *vhdl.ForStmt:
		// The loop index machinery is explicit dataflow: initialize the
		// index, compare against the bound each iteration, increment at
		// the latch. This is what makes loops expensive in a CDFG and
		// free in SLIF.
		lo := gb.expr(st.Low)
		hi := gb.expr(st.High)
		init := gb.node(NWrite, st.Var)
		gb.edge(lo, init, EData)
		gb.chain(init)
		head := gb.node(NLoop, "for "+st.Var)
		idxRead := gb.node(NRead, st.Var)
		cmp := gb.node(NOp, "<=")
		gb.edge(idxRead, cmp, EData)
		gb.edge(hi, cmp, EData)
		gb.edge(cmp, head, EData)
		gb.chain(head)
		gb.stmts(st.Body)
		one := gb.node(NConst, "1")
		incRead := gb.node(NRead, st.Var)
		inc := gb.node(NOp, "+")
		gb.edge(incRead, inc, EData)
		gb.edge(one, inc, EData)
		incWrite := gb.node(NWrite, st.Var)
		gb.edge(inc, incWrite, EData)
		gb.chain(incWrite)
		latch := gb.node(NLoopEnd, "endfor")
		gb.chain(latch)
		gb.edge(latch, head, ECtrl) // back edge
		gb.prev = latch

	case *vhdl.WhileStmt:
		head := gb.node(NLoop, "while")
		gb.chain(head)
		cond := gb.expr(st.Cond)
		gb.edge(cond, head, EData)
		gb.stmts(st.Body)
		latch := gb.node(NLoopEnd, "endwhile")
		gb.chain(latch)
		gb.edge(latch, head, ECtrl)
		gb.prev = latch

	case *vhdl.LoopStmt:
		head := gb.node(NLoop, "loop")
		gb.chain(head)
		gb.stmts(st.Body)
		latch := gb.node(NLoopEnd, "endloop")
		gb.chain(latch)
		gb.edge(latch, head, ECtrl)
		gb.prev = latch

	case *vhdl.ExitStmt:
		n := gb.node(NBranch, "exit")
		if st.Cond != nil {
			gb.edge(gb.expr(st.Cond), n, EData)
		}
		gb.chain(n)

	case *vhdl.CallStmt:
		n := gb.node(NCall, st.Name)
		for _, a := range st.Args {
			cp := gb.node(NCopy, "param")
			gb.edge(gb.expr(a), cp, EData)
			gb.edge(cp, n, EData)
		}
		gb.chain(n)

	case *vhdl.WaitStmt:
		n := gb.node(NWait, "wait")
		for _, sig := range st.OnSignals {
			gb.edge(gb.node(NRead, sig), n, EData)
		}
		if st.Until != nil {
			gb.edge(gb.expr(st.Until), n, EData)
		}
		gb.chain(n)

	case *vhdl.ReturnStmt:
		n := gb.node(NReturn, "return")
		if st.Value != nil {
			gb.edge(gb.expr(st.Value), n, EData)
		}
		gb.chain(n)

	case *vhdl.NullStmt:
		// no node: null compiles to nothing
	}
}
