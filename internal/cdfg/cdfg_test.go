package cdfg

import (
	"os"
	"path/filepath"
	"testing"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("testdata: %v", err)
	}
	return string(data)
}

const smallSrc = `
entity E is port (a : in integer; o : out integer); end;
architecture x of E is begin
P: process
    variable v : integer;
begin
    v := a + 1;
    if v > 3 then
        o <= v;
    end if;
    wait on a;
end process; end;
`

func TestBuildSmall(t *testing.T) {
	g, err := BuildVHDL(smallSrc)
	if err != nil {
		t.Fatal(err)
	}
	// v := a+1 → read a, const 1, op +, check, write v (5 nodes)
	// if → read v, const 3, op >, branch, merge (5)
	// o <= v → read v, check, write o (3)
	// wait → read a, wait (2)
	if got := g.Stats().Nodes; got != 15 {
		t.Errorf("nodes = %d, want 15", got)
	}
	if g.CountKind(NOp) != 2 || g.CountKind(NConst) != 2 {
		t.Errorf("op/const counts: %d/%d", g.CountKind(NOp), g.CountKind(NConst))
	}
	if g.CountKind(NBranch) != 1 || g.CountKind(NMerge) != 1 {
		t.Error("branch/merge missing")
	}
	if g.CountKind(NCheck) != 2 {
		t.Errorf("range checks = %d, want 2", g.CountKind(NCheck))
	}
	if g.CountKind(NWait) != 1 {
		t.Error("wait node missing")
	}
}

func TestEdgesWellFormed(t *testing.T) {
	g, err := BuildVHDL(readTestdata(t, "fuzzy.vhd"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			t.Fatalf("edge %v out of range", e)
		}
	}
}

func TestForLoopMachinery(t *testing.T) {
	g, err := BuildVHDL(`
entity E is end;
architecture x of E is begin
P: process
    variable s : integer;
begin
    for i in 1 to 4 loop
        s := s + 1;
    end loop;
    wait;
end process; end;`)
	if err != nil {
		t.Fatal(err)
	}
	if g.CountKind(NLoop) != 1 || g.CountKind(NLoopEnd) != 1 {
		t.Error("loop head/latch missing")
	}
	// Index init, increment: two writes of i plus the body's write of s
	// plus the check node's write... writes: i(init), i(incr), s = 3.
	if got := g.CountKind(NWrite); got != 3 {
		t.Errorf("writes = %d, want 3 (index init, index incr, body)", got)
	}
	// A back edge exists (to the loop head).
	back := false
	for _, e := range g.Edges {
		if g.Nodes[e.To].Kind == NLoop && g.Nodes[e.From].Kind == NLoopEnd {
			back = true
		}
	}
	if !back {
		t.Error("loop back edge missing")
	}
}

// TestOrderOfMagnitude pins the §5 relationship on the real fuzzy spec:
// the CDFG must be an order of magnitude larger than the SLIF-AG (35/56).
func TestOrderOfMagnitude(t *testing.T) {
	g, err := BuildVHDL(readTestdata(t, "fuzzy.vhd"))
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Nodes < 350 { // ≥10× the 35 SLIF nodes
		t.Errorf("CDFG nodes = %d, want >= 350 (10x SLIF)", st.Nodes)
	}
	if st.Edges < 300 {
		t.Errorf("CDFG edges = %d, want >= 300", st.Edges)
	}
}

func TestAllExamplesBuild(t *testing.T) {
	for _, name := range []string{"ans", "ether", "fuzzy", "vol"} {
		g, err := BuildVHDL(readTestdata(t, name+".vhd"))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.Stats().Nodes == 0 {
			t.Errorf("%s: empty CDFG", name)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	if NOp.String() != "op" || NCheck.String() != "check" {
		t.Error("node kind names broken")
	}
}
