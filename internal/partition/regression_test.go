package partition

// Regression tests for two latent search-loop bugs: the greedy
// constructor's mid-node budget-exhaustion path committing a nil
// component when no candidate has produced a finite cost yet, and
// GroupMigration's abandoned in-flight pass, which must keep the best
// improving prefix of committed moves.

import (
	"context"
	"math"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
)

// TestGreedyBudgetNaNFirstCandidate: with NaN weights every MoveCost is
// NaN, so no candidate ever beats the +Inf starting bound and bestComp is
// still nil when the budget dies mid-node. The old code passed that nil
// straight to Apply, tearing the mapping; the fixed path falls back to
// the node's current component, exactly like the end-of-node commit.
func TestGreedyBudgetNaNFirstCandidate(t *testing.T) {
	g := benchGraph(t, 6, 3)
	w := Weights{Size: math.NaN()}

	// The delta mover may spend setup evaluations before the first trial;
	// measure them on a probe so the budget dies exactly one MoveCost in,
	// for the full-recompute and the delta mover alike.
	setupEvals := func(full bool) int {
		ev := NewEvaluator(g, Constraints{}, w, estimate.Options{})
		if full {
			return 0
		}
		pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
		if _, err := ev.Delta(pt, SingleBus(g.Buses[0])); err != nil {
			t.Fatal(err)
		}
		return ev.Evals
	}

	for _, full := range []bool{true, false} {
		ev := NewEvaluator(g, Constraints{}, w, estimate.Options{})
		cfg := Config{
			Eval:     ev,
			Policy:   SingleBus(g.Buses[0]),
			Seed:     1,
			FullEval: full,
			MaxEvals: setupEvals(full) + 1,
		}
		res, err := Greedy(context.Background(), g, cfg)
		if err != nil {
			t.Fatalf("full=%v: budget-exhausted greedy with NaN costs failed: %v", full, err)
		}
		if !res.Partial {
			t.Errorf("full=%v: budget-exhausted run not marked partial", full)
		}
		completeMapping(t, res)
	}
}

// TestGroupMigrationAbandonedPassKeepsPrefix: a budget that dies midway
// through the first pass must not discard the moves already committed —
// the result is partial, strictly better than the start, and its cost
// survives a full recompute.
func TestGroupMigrationAbandonedPassKeepsPrefix(t *testing.T) {
	g := benchGraph(t, 10, 5)
	g.Procs[0].SizeCon = 600 // heavily violated by the all-on-cpu start
	cons := Constraints{Deadline: map[string]float64{"b0": 120}}
	cfg := config(g, cons)

	init := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	initCost, err := oracleEvaluator(t, g, cons).Cost(init)
	if err != nil {
		t.Fatal(err)
	}

	// A full first pass needs ~55 trial evaluations here (one lock round
	// per behavior); 25 dies in the middle of it, after a few commits.
	cfg.MaxEvals = 25
	res, err := GroupMigration(context.Background(), init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("budget-abandoned pass not marked partial")
	}
	// The budget is polled per lock round, so the overshoot is bounded by
	// one round of trials: at most one per (node, alternate candidate).
	roundBound := 0
	for _, n := range g.Nodes {
		if c := len(Allowed(g, n)); c > 1 {
			roundBound += c - 1
		}
	}
	if res.Evals > cfg.MaxEvals+roundBound {
		t.Errorf("budget %d overspent past a lock round: %d evals", cfg.MaxEvals, res.Evals)
	}
	completeMapping(t, res)
	if res.Cost >= initCost {
		t.Errorf("abandoned pass lost its committed prefix: cost %v, start %v", res.Cost, initCost)
	}
	recost := oracleCost(t, cfg.Eval, res.Best, cfg.Policy)
	if math.Abs(recost-res.Cost) > 1e-9 {
		t.Errorf("reported cost %v != recomputed %v", res.Cost, recost)
	}
}

// oracleEvaluator builds a fresh evaluator matching config()'s weights
// for out-of-band cost checks.
func oracleEvaluator(t *testing.T, g *core.Graph, cons Constraints) *Evaluator {
	t.Helper()
	return NewEvaluator(g, cons, DefaultWeights(), estimate.Options{})
}
