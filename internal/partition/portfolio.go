package partition

// The adaptive portfolio orchestrator: MultiStart's mixed leg portfolio
// run in eval-budget rounds instead of fire-and-forget. Each leg becomes a
// strand with persistent state (its best partition, its seed lineage, its
// shard cursor); every round, the live strands each run one budgeted step
// on the worker pool, publish their bests to a lock-free incumbent board,
// and meet at a barrier where all cross-leg decisions happen in leg-index
// order: the incumbent is updated, the anytime curve is sampled, strands
// lagging the incumbent by more than the kill margin are killed and
// respawned with perturbed derived seeds, and (with sharing on) lagging
// strands are scheduled to reheat their next annealing step from the
// shared incumbent.
//
// Determinism: a step is a pure function of (strand state, round) — its
// RNG stream derives from the strand's seed lineage and the round index,
// never from scheduling. Because strands only read each other's state at
// barriers, and barriers process strands in index order, the whole run is
// reproducible for a fixed seed and leg count at ANY worker count, with
// sharing on or off. (The acceptance bar is fixed seed + worker count;
// the barrier design gives the stronger property.) Only the curve's
// ElapsedMs field is wall clock.
//
// The incumbent board is the strands' mid-round observable: every step
// CAS-publishes its result cost as it finishes, so the board converges to
// the strand minimum before the barrier reads it; the epoch counts
// improvements. Faults are contained per step exactly like the static
// engine's per leg: a panicking step is recorded with stack and seed, the
// strand's pre-fault best survives for the merge, and the strand is
// respawned while the respawn budget lasts.

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"specsyn/internal/core"
)

// incumbentBoard is the lock-free cross-leg blackboard: the best cost any
// strand has published, plus an epoch bumped once per improvement.
type incumbentBoard struct {
	bits  atomic.Uint64 // math.Float64bits of the best published cost
	epoch atomic.Uint64 // improvements published so far
}

func newIncumbentBoard() *incumbentBoard {
	b := &incumbentBoard{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (b *incumbentBoard) best() float64 { return math.Float64frombits(b.bits.Load()) }

// publish CAS-mins cost into the board; reports whether it improved.
func (b *incumbentBoard) publish(cost float64) bool {
	for {
		old := b.bits.Load()
		if !(cost < math.Float64frombits(old)) {
			return false
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(cost)) {
			b.epoch.Add(1)
			return true
		}
	}
}

// strand is one leg's persistent state across rounds.
type strand struct {
	idx      int
	kind     string // current kind: "greedy", "anneal" or "random"
	lineage  int64  // seed lineage; step r uses legSeed(lineage, r)
	initSeed int64  // random-start seed for the next fresh annealing step
	rotate   int    // greedy constructive-order rotation
	lo, hi   int    // random shard cursor (kind "random")

	best     *core.Partition
	cost     float64
	evals    int
	started  bool
	fresh    bool // next step anneals from a random start
	reheat   bool // next step anneals from the shared incumbent
	done     bool // no further rounds: shard exhausted or terminally failed
	failed   bool // terminal fault with no respawn budget left
	respawns int
}

// adaptiveMultiStart is MultiStart's round-based orchestrator; see the
// file comment for the design and ParallelOptions for the knobs.
func adaptiveMultiStart(ctx context.Context, g *core.Graph, cfg Config, opt ParallelOptions) (MultiResult, error) {
	if cfg.Eval == nil {
		return MultiResult{}, fmt.Errorf("partition: parallel search needs Config.Eval")
	}
	if opt.SwapProb > 0 && cfg.SwapProb == 0 {
		cfg.SwapProb = opt.SwapProb
	}
	table, err := candidateTable(g)
	if err != nil {
		return MultiResult{}, err
	}

	nLegs := opt.legs()
	workers := opt.workers()
	if workers > nLegs {
		workers = nLegs
	}
	roundEvals := opt.RoundEvals
	if roundEvals <= 0 {
		roundEvals = 256
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 8
	}
	killMargin := opt.KillMargin
	if killMargin == 0 {
		killMargin = 0.25
	}
	respawnBudget := opt.MaxRespawns
	if respawnBudget == 0 {
		respawnBudget = nLegs
	}
	if respawnBudget < 0 {
		respawnBudget = 0
	}

	// The same portfolio split as the static engine; the adaptive salt
	// ranges (1<<20 and up) are disjoint from the static ones so no two
	// leg paths ever share an RNG stream.
	nGreedy := (nLegs + 2) / 3
	nAnneal := (nLegs + 1) / 3
	nRandom := nLegs - nGreedy - nAnneal
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 1000
	}
	strands := make([]*strand, 0, nLegs)
	for r := 0; r < nGreedy; r++ {
		idx := len(strands)
		strands = append(strands, &strand{idx: idx, kind: "greedy", rotate: r,
			lineage: legSeed(cfg.Seed, 1<<20+idx), initSeed: legSeed(cfg.Seed, 1<<20+idx+512), cost: math.Inf(1)})
	}
	for a := 0; a < nAnneal; a++ {
		idx := len(strands)
		strands = append(strands, &strand{idx: idx, kind: "anneal",
			lineage: legSeed(cfg.Seed, 1<<16+a), initSeed: legSeed(cfg.Seed, a), fresh: true, cost: math.Inf(1)})
	}
	for k := 0; k < nRandom; k++ {
		idx := len(strands)
		strands = append(strands, &strand{idx: idx, kind: "random",
			lineage: legSeed(cfg.Seed, 1<<21+idx), lo: k * iters / nRandom, hi: (k + 1) * iters / nRandom, cost: math.Inf(1)})
	}

	board := newIncumbentBoard()
	rep := SearchReport{LegsPlanned: nLegs}
	hookProto := cfg.Eval.Hook
	startT := time.Now()
	remaining := cfg.MaxEvals // 0 = unlimited
	spentTotal := 0
	respawnsUsed := 0
	endedEarly := false

	var incBest *core.Partition
	incCost := math.Inf(1)
	incIdx := -1

	// respawn restarts a strand's trajectory with a perturbed derived
	// seed, keeping its best-so-far for the merge. Returns false when the
	// respawn budget is dry; the caller then retires the strand.
	respawn := func(s *strand) bool {
		if respawnsUsed >= respawnBudget {
			return false
		}
		respawnsUsed++
		rep.LegsRespawned++
		s.respawns++
		s.kind = "anneal"
		s.lineage = legSeed(cfg.Seed, 1<<22+s.idx*257+s.respawns)
		s.initSeed = legSeed(s.lineage, 1)
		if opt.Share && incBest != nil {
			s.fresh, s.reheat = false, true
		} else {
			s.fresh, s.reheat = true, false
		}
		return true
	}

	for round := 0; round < maxRounds; round++ {
		var live []*strand
		for _, s := range strands {
			if !s.done {
				live = append(live, s)
			}
		}
		if len(live) == 0 {
			break
		}
		if cancelled(ctx) {
			endedEarly = true
			break
		}
		if cfg.MaxEvals > 0 && remaining <= 0 {
			endedEarly = true
			break
		}

		// Deal this round's budget: roundEvals per leg, or the remaining
		// global budget split evenly (remainder to lower indices). Greedy
		// constructions under an unlimited budget run uncapped so leg 0
		// stays the canonical Greedy.
		quota := make([]int, len(live))
		chunkHi := make([]int, len(live))
		if cfg.MaxEvals == 0 {
			for i, s := range live {
				if s.kind == "greedy" && !s.started {
					quota[i] = 0
				} else {
					quota[i] = roundEvals
				}
			}
		} else {
			pool := len(live) * roundEvals
			if pool > remaining {
				pool = remaining
			}
			quota = splitBudget(pool, len(live))
		}
		for i, s := range live {
			if s.kind != "random" {
				continue
			}
			chunk := quota[i]
			if chunk == 0 {
				chunk = roundEvals
			} else if chunk < 0 {
				chunk = 0
			}
			chunkHi[i] = s.lo + chunk
			if chunkHi[i] > s.hi {
				chunkHi[i] = s.hi
			}
		}

		type stepOut struct {
			res   Result
			err   error
			panic *PanicRecord
			evals int
		}
		outs := make([]stepOut, len(live))
		reheatFrom := incBest
		jobs := make(chan int)
		var wg sync.WaitGroup
		nw := workers
		if nw > len(live) {
			nw = len(live)
		}
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wcfg := cfg
				wcfg.Eval = cfg.Eval.Clone()
				for i := range jobs {
					s := live[i]
					stepSeed := legSeed(s.lineage, round)
					if hookProto != nil {
						wcfg.Eval.Hook = hookProto.ForLeg(s.idx, stepSeed)
					}
					before := wcfg.Eval.Evals
					res, err := runStrandStep(ctx, wcfg, g, table, s, stepSeed, quota[i], chunkHi[i], roundEvals, reheatFrom, board, &outs[i].panic)
					outs[i].res, outs[i].err = res, err
					outs[i].evals = wcfg.Eval.Evals - before
					if outs[i].panic != nil {
						// The panic may have caught the pooled estimator
						// mid-rebind; discard the clone.
						e := wcfg.Eval.Evals
						wcfg.Eval = cfg.Eval.Clone()
						wcfg.Eval.Evals = e
					}
				}
			}()
		}
		for i := range live {
			jobs <- i
		}
		close(jobs)
		wg.Wait()

		// Barrier: commit step outcomes in leg order.
		for i, s := range live {
			o := outs[i]
			s.started = true
			s.evals += o.evals
			spentTotal += o.evals
			if cfg.MaxEvals > 0 {
				remaining -= o.evals
			}
			switch {
			case o.panic != nil:
				rep.Panics = append(rep.Panics, *o.panic)
				if !respawn(s) {
					s.done, s.failed = true, true
				}
			case o.err != nil:
				rep.Errors = append(rep.Errors, LegError{Leg: s.idx, Kind: s.kind, Err: o.err})
				if !respawn(s) {
					s.done, s.failed = true, true
				}
			default:
				if o.res.Best != nil && o.res.Cost < s.cost {
					s.best, s.cost = o.res.Best, o.res.Cost
				}
				s.fresh, s.reheat = false, false
				if s.kind == "random" {
					s.lo = chunkHi[i]
					if s.lo >= s.hi {
						s.done = true
					}
				}
			}
		}

		// Incumbent: the deterministic strand minimum, ties to the lower
		// index — the same value the board converged to mid-round.
		incIdx = -1
		for _, s := range strands {
			if s.best != nil && (incIdx < 0 || s.cost < incCost) {
				incIdx, incCost, incBest = s.idx, s.cost, s.best
			}
		}
		board.publish(incCost)
		rep.Rounds++
		rep.Curve = append(rep.Curve, CurvePoint{
			Round: rep.Rounds, Evals: spentTotal, BestCost: incCost,
			ElapsedMs: float64(time.Since(startT).Microseconds()) / 1000,
		})

		// Kills: strands lagging the incumbent by more than the margin.
		if killMargin > 0 && incIdx >= 0 {
			scale := math.Abs(incCost)
			if scale < 1e-9 {
				scale = 1e-9
			}
			for _, s := range strands {
				if s.done || s.idx == incIdx || s.best == nil {
					continue
				}
				if s.cost-incCost > killMargin*scale {
					rep.LegsKilled++
					if !respawn(s) {
						s.done = true
					}
				}
			}
		}

		// Sharing: schedule lagging strands to reheat from the incumbent.
		if opt.Share && incBest != nil {
			for _, s := range strands {
				if !s.done && s.kind != "random" && !s.fresh && !s.reheat && s.cost > incCost {
					s.reheat = true
				}
			}
		}
	}
	if cancelled(ctx) {
		endedEarly = true
	}

	// Merge over whatever survives: lowest cost, ties to the lower index —
	// killed strands still contribute their pre-kill best.
	best := -1
	for i, s := range strands {
		if s.best != nil && (best < 0 || s.cost < strands[best].cost) {
			best = i
		}
	}
	rep.Partial = endedEarly
	legs := make([]Result, len(strands))
	for i, s := range strands {
		switch {
		case !s.started:
			rep.LegsSkipped++
		case s.failed:
			// Counted through Panics/Errors, like the static engine.
		case endedEarly && !s.done:
			rep.LegsPartial++
		default:
			rep.LegsCompleted++
		}
		legs[i] = Result{Best: s.best, Cost: s.cost, Evals: s.evals,
			Partial: endedEarly && s.started && !s.done && !s.failed}
	}
	rep.Evals = spentTotal
	if best < 0 {
		if len(rep.Errors) > 0 {
			return MultiResult{Report: rep}, fmt.Errorf("partition: no leg survived; leg %d (%s): %w",
				rep.Errors[0].Leg, rep.Errors[0].Kind, rep.Errors[0].Err)
		}
		if len(rep.Panics) > 0 {
			return MultiResult{Report: rep}, fmt.Errorf("partition: no leg survived; %s", rep.Panics[0])
		}
		return MultiResult{Report: rep}, fmt.Errorf("partition: no leg produced a partition")
	}
	cfg.Eval.Evals += spentTotal
	out := MultiResult{Result: legs[best], BestLeg: best, Legs: legs, Report: rep}
	out.Result.Evals = spentTotal
	out.Result.Partial = rep.Partial
	return out, nil
}

// runStrandStep executes one strand's round step with panic containment.
// quota is the step's evaluation budget (0 = unlimited, negative = an
// already-dry share); chunkHi bounds a random strand's shard advance.
func runStrandStep(ctx context.Context, cfg Config, g *core.Graph, table [][]core.Component,
	s *strand, stepSeed int64, quota, chunkHi, roundEvals int,
	reheatFrom *core.Partition, board *incumbentBoard, rec **PanicRecord) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			*rec = &PanicRecord{Leg: s.idx, Kind: s.kind, Seed: stepSeed, Value: r, Stack: string(debug.Stack())}
			res, err = Result{}, nil
		}
	}()
	if quota < 0 {
		return Result{Cost: math.Inf(1), Partial: true}, nil
	}
	switch {
	case s.kind == "random":
		cfg.MaxEvals = 0 // the chunk bounds are the budget
		res, err = snapRandomRange(ctx, g, cfg, s.lo, chunkHi)
	case s.kind == "greedy" && !s.started:
		cfg.MaxEvals = quota
		res, err = greedyRotated(ctx, g, cfg, s.rotate)
	default:
		// An annealing step: a fresh restart, a reheat from the shared
		// incumbent, or an improvement run from the strand's own best.
		// MaxIters tracks the quota so every step is a complete hot-to-
		// cold schedule — a restart, not a frozen continuation.
		var init *core.Partition
		switch {
		case s.reheat && reheatFrom != nil:
			init = reheatFrom
		case !s.fresh && s.best != nil:
			init = s.best
		default:
			init, err = randomStart(g, table, s.initSeed)
			if err != nil {
				return Result{}, err
			}
		}
		cfg.Seed = stepSeed
		if quota == 0 {
			quota = roundEvals
		}
		cfg.MaxEvals = quota
		cfg.MaxIters = quota - 1
		if cfg.MaxIters < 1 {
			cfg.MaxIters = 1
		}
		res, err = Anneal(ctx, init, cfg)
	}
	if err == nil && res.Best != nil {
		board.publish(res.Cost)
	}
	return res, err
}
