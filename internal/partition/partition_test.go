package partition

import (
	"context"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
)

// benchGraph builds a synthetic SLIF with nBeh behaviors chained into a
// pipeline plus nVar variables, suitable for exercising the search
// algorithms. Behavior i accesses variable i%nVar heavily.
func benchGraph(t testing.TB, nBeh, nVar int) *core.Graph {
	t.Helper()
	g := core.NewGraph("synown")
	var behs []*core.Node
	for i := 0; i < nBeh; i++ {
		n := &core.Node{Name: fmt.Sprintf("b%d", i), Kind: core.BehaviorNode, IsProcess: i == 0}
		n.SetICT("proc10", float64(10+i))
		n.SetICT("asic50", float64(1+i)/2)
		n.SetSize("proc10", float64(100+10*i))
		n.SetSize("asic50", float64(500+50*i))
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
		behs = append(behs, n)
	}
	var vars []*core.Node
	for i := 0; i < nVar; i++ {
		n := &core.Node{Name: fmt.Sprintf("v%d", i), Kind: core.VariableNode, StorageBits: int64(64 << (i % 4))}
		n.SetICT("proc10", 0.2)
		n.SetICT("asic50", 0.02)
		n.SetICT("sram8", 0.1)
		n.SetSize("proc10", float64(n.StorageBits/8))
		n.SetSize("asic50", float64(n.StorageBits*4))
		n.SetSize("sram8", float64(n.StorageBits/8))
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
		vars = append(vars, n)
	}
	for i := 0; i < nBeh-1; i++ {
		if err := g.AddChannel(&core.Channel{Src: behs[i], Dst: behs[i+1], AccFreq: 1, Bits: 16, Tag: core.NoTag}); err != nil {
			t.Fatal(err)
		}
	}
	for i, b := range behs {
		if nVar == 0 {
			break
		}
		v := vars[i%nVar]
		if err := g.AddChannel(&core.Channel{Src: b, Dst: v, AccFreq: float64(5 + i), Bits: 8, Tag: core.NoTag}); err != nil {
			t.Fatal(err)
		}
	}
	g.AddProcessor(&core.Processor{Name: "cpu", TypeName: "proc10", SizeCon: 100000})
	g.AddProcessor(&core.Processor{Name: "asic", TypeName: "asic50", Custom: true, SizeCon: 1e7})
	g.AddMemory(&core.Memory{Name: "ram", TypeName: "sram8", SizeCon: 100000})
	g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})
	return g
}

func config(g *core.Graph, cons Constraints) Config {
	ev := NewEvaluator(g, cons, DefaultWeights(), estimate.Options{})
	return Config{Eval: ev, Policy: SingleBus(g.Buses[0]), Seed: 1}
}

func TestCostZeroWhenUnconstrained(t *testing.T) {
	g := benchGraph(t, 4, 3)
	ev := NewEvaluator(g, Constraints{}, Weights{Size: 1, Pins: 1, Time: 1, Rate: 1}, estimate.Options{})
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	cost, err := ev.Cost(pt)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("unconstrained all-software cost = %v, want 0", cost)
	}
	ok, err := ev.Feasible(pt)
	if err != nil || !ok {
		t.Errorf("Feasible = %v, %v", ok, err)
	}
}

func TestCostDeadlineViolation(t *testing.T) {
	g := benchGraph(t, 4, 3)
	cons := Constraints{Deadline: map[string]float64{"b0": 0.001}}
	ev := NewEvaluator(g, cons, Weights{Time: 1}, estimate.Options{})
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	cost, err := ev.Cost(pt)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("impossible deadline not penalized")
	}
	if ok, _ := ev.Feasible(pt); ok {
		t.Error("infeasible partition reported feasible")
	}
}

func TestCostSizeViolationScales(t *testing.T) {
	g := benchGraph(t, 4, 3)
	g.Procs[0].SizeCon = 1 // absurd
	ev := NewEvaluator(g, Constraints{}, Weights{Size: 1}, estimate.Options{})
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	c1, err := ev.Cost(pt)
	if err != nil {
		t.Fatal(err)
	}
	g.Procs[0].SizeCon = 2
	c2, _ := ev.Cost(pt)
	if !(c1 > c2 && c2 > 0) {
		t.Errorf("violation not proportional: con=1→%v, con=2→%v", c1, c2)
	}
}

func TestCommTermPrefersColocation(t *testing.T) {
	g := benchGraph(t, 2, 1)
	ev := NewEvaluator(g, Constraints{}, Weights{Comm: 1}, estimate.Options{})
	together := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	apart := together.Clone()
	if err := apart.Assign(g.NodeByName("b1"), g.Procs[1]); err != nil {
		t.Fatal(err)
	}
	c1, err1 := ev.Cost(together)
	c2, err2 := ev.Cost(apart)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if c1 >= c2 {
		t.Errorf("communication term backwards: together %v, apart %v", c1, c2)
	}
}

func TestAllowed(t *testing.T) {
	g := benchGraph(t, 2, 2)
	b := g.NodeByName("b0")
	v := g.NodeByName("v0")
	for _, c := range Allowed(g, b) {
		if _, ok := c.(*core.Memory); ok {
			t.Error("behavior allowed on memory")
		}
	}
	foundMem := false
	for _, c := range Allowed(g, v) {
		if _, ok := c.(*core.Memory); ok {
			foundMem = true
		}
	}
	if !foundMem {
		t.Error("variable not allowed on memory")
	}
	// A node without weights for a type is not allowed there.
	delete(b.ICT, "asic50")
	for _, c := range Allowed(g, b) {
		if c.TypeKey() == "asic50" {
			t.Error("node allowed on component type it has no weights for")
		}
	}
}

func TestBusPolicies(t *testing.T) {
	g := benchGraph(t, 2, 1)
	internal := &core.Bus{Name: "ibus", BitWidth: 32, TS: 0.01, TD: 0.01}
	g.AddBus(internal)
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	if err := pt.Assign(g.NodeByName("b1"), g.Procs[1]); err != nil {
		t.Fatal(err)
	}
	pol := InternalExternal(internal, g.Buses[0])
	if err := ApplyBusPolicy(pt, pol); err != nil {
		t.Fatal(err)
	}
	// b0→b1 crosses → external; b0→v0 internal.
	if pt.ChanBus(g.FindChannel("b0", "b1")) != g.Buses[0] {
		t.Error("cross channel not on external bus")
	}
	if pt.ChanBus(g.FindChannel("b0", "v0")) != internal {
		t.Error("internal channel not on internal bus")
	}
}

func TestRandomSearch(t *testing.T) {
	g := benchGraph(t, 6, 4)
	cfg := config(g, Constraints{})
	cfg.MaxIters = 200
	res, err := Random(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Evals != 200 {
		t.Fatalf("result: %+v", res)
	}
	if err := res.Best.Validate(); err != nil {
		t.Errorf("best partition invalid: %v", err)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	g := benchGraph(t, 6, 4)
	run := func(seed int64) float64 {
		cfg := config(g, Constraints{})
		cfg.Seed = seed
		cfg.MaxIters = 100
		res, err := Random(context.Background(), g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost
	}
	if run(7) != run(7) {
		t.Error("same seed, different result")
	}
}

func TestGreedyBeatsWorstRandom(t *testing.T) {
	g := benchGraph(t, 8, 6)
	// Constrain the cpu so greedy has real work to do.
	g.Procs[0].SizeCon = 500
	cons := Constraints{Deadline: map[string]float64{"b0": 200}}
	cfg := config(g, cons)
	greedy, err := Greedy(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.Best.Validate(); err != nil {
		t.Fatalf("greedy partition invalid: %v", err)
	}
	cfg2 := config(g, cons)
	cfg2.MaxIters = 1
	oneRandom, err := Random(context.Background(), g, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Cost > oneRandom.Cost+1e-9 {
		t.Errorf("greedy (%v) lost to a single random draw (%v)", greedy.Cost, oneRandom.Cost)
	}
}

func TestGroupMigrationImproves(t *testing.T) {
	g := benchGraph(t, 8, 6)
	g.Procs[0].SizeCon = 500
	cfg := config(g, Constraints{})
	init := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	if err := ApplyBusPolicy(init, cfg.Policy); err != nil {
		t.Fatal(err)
	}
	startCost, err := cfg.Eval.Cost(init)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GroupMigration(context.Background(), init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > startCost+1e-9 {
		t.Errorf("group migration worsened: %v → %v", startCost, res.Cost)
	}
	if err := res.Best.Validate(); err != nil {
		t.Errorf("result invalid: %v", err)
	}
}

func TestAnnealRuns(t *testing.T) {
	g := benchGraph(t, 6, 4)
	g.Procs[0].SizeCon = 500
	cfg := config(g, Constraints{})
	cfg.MaxIters = 500
	init := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	if err := ApplyBusPolicy(init, cfg.Policy); err != nil {
		t.Fatal(err)
	}
	startCost, err := cfg.Eval.Cost(init)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Anneal(context.Background(), init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > startCost+1e-9 {
		t.Errorf("annealing returned something worse than its start: %v → %v", startCost, res.Cost)
	}
	if err := res.Best.Validate(); err != nil {
		t.Errorf("result invalid: %v", err)
	}
}

func TestExhaustiveIsOptimal(t *testing.T) {
	g := benchGraph(t, 3, 2) // 5 nodes ≤ 3^5 = 243 partitions
	g.Procs[0].SizeCon = 400
	cfg := config(g, Constraints{})
	opt, err := Exhaustive(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No heuristic may beat the exhaustive optimum.
	for name, run := range map[string]func() (Result, error){
		"greedy": func() (Result, error) { return Greedy(context.Background(), g, config(g, Constraints{})) },
		"random": func() (Result, error) {
			c := config(g, Constraints{})
			c.MaxIters = 300
			return Random(context.Background(), g, c)
		},
		"cluster": func() (Result, error) { return ClusterGreedy(context.Background(), g, config(g, Constraints{})) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Cost < opt.Cost-1e-9 {
			t.Errorf("%s (%v) beat the exhaustive optimum (%v)", name, res.Cost, opt.Cost)
		}
	}
}

func TestExhaustiveRefusesHugeSpace(t *testing.T) {
	g := benchGraph(t, 20, 20)
	if _, err := Exhaustive(context.Background(), g, config(g, Constraints{})); err == nil {
		t.Error("exhaustive accepted an enormous space")
	}
}

func TestClosenessSymmetric(t *testing.T) {
	g := benchGraph(t, 5, 3)
	m, comp := Closeness(g)
	if comp != len(g.Nodes)*len(g.Nodes) {
		t.Errorf("computations = %d", comp)
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("self-closeness nonzero at %d", i)
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetry at %d,%d", i, j)
			}
		}
	}
}

func TestHierarchicalClusters(t *testing.T) {
	g := benchGraph(t, 6, 4)
	for _, k := range []int{1, 2, 3, len(g.Nodes)} {
		clusters, _, err := HierarchicalClusters(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(clusters) != k {
			t.Errorf("k=%d: got %d clusters", k, len(clusters))
		}
		seen := map[*core.Node]bool{}
		total := 0
		for _, c := range clusters {
			for _, n := range c.Nodes {
				if seen[n] {
					t.Error("node in two clusters")
				}
				seen[n] = true
				total++
			}
		}
		if total != len(g.Nodes) {
			t.Errorf("k=%d: clusters cover %d of %d nodes", k, total, len(g.Nodes))
		}
	}
	if _, _, err := HierarchicalClusters(g, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := HierarchicalClusters(g, len(g.Nodes)+1); err == nil {
		t.Error("k>n accepted")
	}
}

func TestClusterKeepsTalkers(t *testing.T) {
	// Two pairs that talk heavily within themselves and not across must
	// end up in separate clusters.
	g := core.NewGraph("pairs")
	mk := func(name string) *core.Node {
		n := &core.Node{Name: name, Kind: core.BehaviorNode}
		n.SetICT("proc10", 1)
		n.SetSize("proc10", 1)
		_ = g.AddNode(n)
		return n
	}
	a1, a2, b1, b2 := mk("a1"), mk("a2"), mk("b1"), mk("b2")
	_ = g.AddChannel(&core.Channel{Src: a1, Dst: a2, AccFreq: 100, Bits: 32, Tag: core.NoTag})
	_ = g.AddChannel(&core.Channel{Src: b1, Dst: b2, AccFreq: 100, Bits: 32, Tag: core.NoTag})
	_ = g.AddChannel(&core.Channel{Src: a1, Dst: b1, AccFreq: 1, Bits: 1, Tag: core.NoTag})
	clusters, _, err := HierarchicalClusters(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	find := func(n *core.Node) int {
		for i, c := range clusters {
			for _, m := range c.Nodes {
				if m == n {
					return i
				}
			}
		}
		return -1
	}
	if find(a1) != find(a2) || find(b1) != find(b2) || find(a1) == find(b1) {
		t.Errorf("clustering split the talking pairs: a1=%d a2=%d b1=%d b2=%d",
			find(a1), find(a2), find(b1), find(b2))
	}
}

// Property: for any seed, every algorithm returns a legal partition whose
// cost is finite and non-negative.
func TestAlgorithmsAlwaysLegalQuick(t *testing.T) {
	g := benchGraph(t, 5, 3)
	f := func(seed int64) bool {
		cfg := config(g, Constraints{})
		cfg.Seed = seed
		cfg.MaxIters = 50
		res, err := Random(context.Background(), g, cfg)
		if err != nil || res.Best.Validate() != nil {
			return false
		}
		if math.IsNaN(res.Cost) || res.Cost < 0 {
			return false
		}
		gm, err := GroupMigration(context.Background(), res.Best, cfg)
		if err != nil || gm.Best.Validate() != nil || gm.Cost > res.Cost+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
