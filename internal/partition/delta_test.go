package partition

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/faultinject"
)

// portedGraph is benchGraph plus an output port written by b0 — the shape
// that exercises port handling in the cut/IO accounting.
func portedGraph(t testing.TB, nBeh, nVar int) *core.Graph {
	t.Helper()
	g := benchGraph(t, nBeh, nVar)
	p := &core.Port{Name: "out", Dir: core.Out, Bits: 8}
	if err := g.AddPort(p); err != nil {
		t.Fatal(err)
	}
	if err := g.AddChannel(&core.Channel{Src: g.NodeByName("b0"), Dst: p, AccFreq: 3, Bits: 8, Tag: core.NoTag}); err != nil {
		t.Fatal(err)
	}
	return g
}

// twoBusGraph is portedGraph with an internal/external bus pair.
func twoBusGraph(t testing.TB, nBeh, nVar int) *core.Graph {
	t.Helper()
	g := portedGraph(t, nBeh, nVar)
	g.AddBus(&core.Bus{Name: "ext", BitWidth: 8, TS: 0.1, TD: 0.8})
	return g
}

// deltaScenario is one differential-test configuration.
type deltaScenario struct {
	name   string
	graph  *core.Graph
	cons   Constraints
	w      Weights
	opt    estimate.Options
	policy func(g *core.Graph) BusPolicy
}

func deltaScenarios(t testing.TB) []deltaScenario {
	single := func(g *core.Graph) BusPolicy { return SingleBus(g.Buses[0]) }
	intExt := func(g *core.Graph) BusPolicy { return InternalExternal(g.Buses[0], g.Buses[1]) }
	// Constraints tight enough that every cost term is non-zero somewhere
	// in the move sequences.
	cons := Constraints{
		Deadline:   map[string]float64{"b0": 25},
		MaxBusRate: map[string]float64{"bus": 8},
	}
	return []deltaScenario{
		{"basic", benchGraph(t, 8, 4), cons, DefaultWeights(), estimate.Options{}, single},
		{"ported", portedGraph(t, 8, 4), cons, DefaultWeights(), estimate.Options{}, single},
		{"intext", twoBusGraph(t, 8, 4), cons, DefaultWeights(), estimate.Options{}, intExt},
		{"clamp-sharing", benchGraph(t, 6, 3), cons, DefaultWeights(),
			estimate.Options{ClampBusBitrate: true, SharingFactor: 0.4}, single},
		{"minmode", benchGraph(t, 6, 3), cons, DefaultWeights(), estimate.Options{Mode: estimate.Min}, single},
		{"no-rate-weight", benchGraph(t, 6, 3), cons, Weights{Size: 1, Pins: 1, Time: 1, Comm: 0.1}, estimate.Options{}, single},
	}
}

// oracleCost is the full-recompute reference: policy applied to a clone,
// costed by a dedicated evaluator.
func oracleCost(t testing.TB, ev *Evaluator, pt *core.Partition, policy BusPolicy) float64 {
	t.Helper()
	clone := pt.Clone()
	if err := ApplyBusPolicy(clone, policy); err != nil {
		t.Fatal(err)
	}
	cost, err := ev.Cost(clone)
	if err != nil {
		t.Fatal(err)
	}
	return cost
}

// TestDeltaMatchesOracleRandomMoves is the differential property test of
// the tentpole: over long random move sequences — trials, commits, undos,
// spanning many refresh intervals — every incremental cost must match the
// full recompute within 1e-9.
func TestDeltaMatchesOracleRandomMoves(t *testing.T) {
	const steps = 1200
	for _, sc := range deltaScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			g := sc.graph
			ev := NewEvaluator(g, sc.cons, sc.w, sc.opt)
			oracle := NewEvaluator(g, sc.cons, sc.w, sc.opt)
			policy := sc.policy(g)
			pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
			d, err := ev.Delta(pt, policy)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			for step := 0; step < steps; step++ {
				n := g.Nodes[rng.Intn(len(g.Nodes))]
				cands := Allowed(g, n)
				to := cands[rng.Intn(len(cands))]

				got, err := d.MoveCost(n, to)
				if err != nil {
					t.Fatalf("step %d: MoveCost(%s→%s): %v", step, n.Name, to.CompName(), err)
				}
				trial := pt.Clone()
				if err := trial.Assign(n, to); err != nil {
					t.Fatal(err)
				}
				if err := ApplyBusPolicy(trial, policy); err != nil {
					t.Fatal(err)
				}
				want, err := oracle.Cost(trial)
				if err != nil {
					t.Fatalf("step %d: oracle: %v", step, err)
				}
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("step %d: MoveCost(%s→%s) = %.15g, oracle %.15g (Δ %g)",
						step, n.Name, to.CompName(), got, want, got-want)
				}

				switch r := rng.Float64(); {
				case r < 0.45:
					if err := d.Apply(n, to); err != nil {
						t.Fatalf("step %d: Apply: %v", step, err)
					}
				case r < 0.55:
					if err := d.Apply(n, to); err != nil {
						t.Fatalf("step %d: Apply: %v", step, err)
					}
					if err := d.Undo(); err != nil {
						t.Fatalf("step %d: Undo: %v", step, err)
					}
				}
				if step%97 == 0 {
					got, err := d.Cost()
					if err != nil {
						t.Fatalf("step %d: Cost: %v", step, err)
					}
					want := oracleCost(t, oracle, pt, policy)
					if math.Abs(got-want) > 1e-9 {
						t.Fatalf("step %d: committed Cost = %.15g, oracle %.15g", step, got, want)
					}
				}
			}
			// Final state, once more, through both paths.
			got, err := d.Cost()
			if err != nil {
				t.Fatal(err)
			}
			if want := oracleCost(t, oracle, pt, policy); math.Abs(got-want) > 1e-9 {
				t.Fatalf("final Cost = %.15g, oracle %.15g", got, want)
			}
		})
	}
}

// countingHook counts BeforeEval calls.
type countingHook struct{ n int }

func (h *countingHook) BeforeEval() error                  { h.n++; return nil }
func (h *countingHook) ForLeg(int, int64) faultinject.Hook { return h }

// TestDeltaEvalAccounting pins the eval/hook contract: MoveCost and Cost
// each fire the hook once and count one evaluation; Rebind, Apply and Undo
// count nothing.
func TestDeltaEvalAccounting(t *testing.T) {
	g := benchGraph(t, 6, 3)
	ev := NewEvaluator(g, Constraints{}, DefaultWeights(), estimate.Options{})
	hook := &countingHook{}
	ev.Hook = hook
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	d, err := ev.Delta(pt, SingleBus(g.Buses[0]))
	if err != nil {
		t.Fatal(err)
	}
	if hook.n != 0 || ev.Evals != 0 {
		t.Fatalf("binding the delta evaluator counted evals: hook %d, evals %d", hook.n, ev.Evals)
	}
	n := g.NodeByName("b1")
	asic := g.ProcByName("asic")
	for i := 0; i < 5; i++ {
		if _, err := d.MoveCost(n, asic); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := d.Apply(n, asic); err != nil {
			t.Fatal(err)
		}
		if err := d.Undo(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := d.Cost(); err != nil {
			t.Fatal(err)
		}
	}
	if hook.n != 7 || ev.Evals != 7 {
		t.Errorf("5 MoveCost + 3 Apply/Undo + 2 Cost: hook %d, evals %d; want 7, 7", hook.n, ev.Evals)
	}
}

// TestDeltaUndo checks that Undo restores both the mapping and the cost,
// and that a second Undo is refused.
func TestDeltaUndo(t *testing.T) {
	g := benchGraph(t, 6, 3)
	ev := NewEvaluator(g, Constraints{Deadline: map[string]float64{"b0": 25}}, DefaultWeights(), estimate.Options{})
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	d, err := ev.Delta(pt, SingleBus(g.Buses[0]))
	if err != nil {
		t.Fatal(err)
	}
	before, err := d.Cost()
	if err != nil {
		t.Fatal(err)
	}
	n := g.NodeByName("b2")
	from := pt.BvComp(n)
	if err := d.Apply(n, g.ProcByName("asic")); err != nil {
		t.Fatal(err)
	}
	if err := d.Undo(); err != nil {
		t.Fatal(err)
	}
	if pt.BvComp(n) != from {
		t.Errorf("Undo left %s on %s, want %s", n.Name, pt.BvComp(n).CompName(), from.CompName())
	}
	after, err := d.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(before-after) > 1e-9 {
		t.Errorf("cost after Apply+Undo = %.15g, want %.15g", after, before)
	}
	if err := d.Undo(); err == nil {
		t.Error("second Undo succeeded, want error")
	}
}

// TestMoveCostZeroAllocs pins the steady-state allocation budget of the
// incremental hot path at zero, including the periodic full refresh.
func TestMoveCostZeroAllocs(t *testing.T) {
	g := benchGraph(t, 12, 6)
	ev := NewEvaluator(g, Constraints{
		Deadline:   map[string]float64{"b0": 25},
		MaxBusRate: map[string]float64{"bus": 8},
	}, DefaultWeights(), estimate.Options{})
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	d, err := ev.Delta(pt, SingleBus(g.Buses[0]))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NodeByName("b3")
	asic := g.ProcByName("asic")
	for i := 0; i < 2*deltaRefreshInterval; i++ { // warm up past a refresh
		if _, err := d.MoveCost(n, asic); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(3*deltaRefreshInterval, func() {
		if _, err := d.MoveCost(n, asic); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("MoveCost allocates %v per op in steady state, want 0", allocs)
	}
}

// TestDeltaFallsBackOnRecursion: a cyclic access graph cannot be evaluated
// incrementally; Delta must fail (stickily) and the searches must fall
// back to full recompute with identical results.
func TestDeltaFallsBackOnRecursion(t *testing.T) {
	g := benchGraph(t, 6, 3)
	// Close a cycle b5 → b0 (benchGraph chains b0 → … → b5).
	if err := g.AddChannel(&core.Channel{Src: g.NodeByName("b5"), Dst: g.NodeByName("b0"), AccFreq: 1, Bits: 8, Tag: core.NoTag}); err != nil {
		t.Fatal(err)
	}
	// No deadline constraints: the full estimator never needs an Exectime,
	// so full recompute tolerates the cycle.
	ev := NewEvaluator(g, Constraints{}, DefaultWeights(), estimate.Options{})
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	if _, err := ev.Delta(pt, SingleBus(g.Buses[0])); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Delta on cyclic graph: err = %v, want cycle", err)
	}
	if _, err := ev.Delta(pt, SingleBus(g.Buses[0])); err == nil {
		t.Fatal("second Delta call succeeded; the failure should be sticky")
	}

	cfg := Config{Eval: ev, Policy: SingleBus(g.Buses[0]), Seed: 1}
	res, err := Greedy(context.Background(), g, cfg)
	if err != nil {
		t.Fatalf("Greedy with fallback: %v", err)
	}
	full := Config{Eval: NewEvaluator(g, Constraints{}, DefaultWeights(), estimate.Options{}), Policy: SingleBus(g.Buses[0]), Seed: 1, FullEval: true}
	want, err := Greedy(context.Background(), g, full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != want.Cost || res.Evals != want.Evals {
		t.Errorf("fallback Greedy = (%v, %d evals), full = (%v, %d evals)", res.Cost, res.Evals, want.Cost, want.Evals)
	}
}

// TestSearchesDeltaMatchesFullEval runs the rewired searches both ways on
// the same inputs: the incremental path must reproduce the full-recompute
// path's result quality and evaluation count.
func TestSearchesDeltaMatchesFullEval(t *testing.T) {
	cons := Constraints{
		Deadline:   map[string]float64{"b0": 25},
		MaxBusRate: map[string]float64{"bus": 8},
	}
	mk := func(full bool) (Config, *core.Graph) {
		g := benchGraph(t, 8, 4)
		cfg := config(g, cons)
		cfg.FullEval = full
		return cfg, g
	}

	cfgD, gD := mk(false)
	cfgF, gF := mk(true)
	rd, err := Greedy(context.Background(), gD, cfgD)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Greedy(context.Background(), gF, cfgF)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rd.Cost-rf.Cost) > 1e-9 || rd.Evals != rf.Evals {
		t.Errorf("Greedy delta = (%.15g, %d evals), full = (%.15g, %d evals)", rd.Cost, rd.Evals, rf.Cost, rf.Evals)
	}

	cfgD, gD = mk(false)
	cfgF, gF = mk(true)
	initD := core.AllToProcessor(gD, gD.Procs[0], gD.Buses[0])
	initF := core.AllToProcessor(gF, gF.Procs[0], gF.Buses[0])
	md, err := GroupMigration(context.Background(), initD, cfgD)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := GroupMigration(context.Background(), initF, cfgF)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(md.Cost-mf.Cost) > 1e-9 {
		t.Errorf("GroupMigration delta cost = %.15g, full = %.15g", md.Cost, mf.Cost)
	}
}

// TestSearchResultsRecostCleanly: whatever the rewired searches report as
// Result.Cost must match a fresh full recompute of Result.Best — the
// incremental path may never report a cost its partition doesn't have.
func TestSearchResultsRecostCleanly(t *testing.T) {
	cons := Constraints{
		Deadline:   map[string]float64{"b0": 25},
		MaxBusRate: map[string]float64{"bus": 8},
	}
	g := benchGraph(t, 8, 4)
	check := func(name string, res Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fresh := NewEvaluator(g, cons, DefaultWeights(), estimate.Options{})
		got, err := fresh.Cost(res.Best)
		if err != nil {
			t.Fatalf("%s: recost: %v", name, err)
		}
		if math.Abs(got-res.Cost) > 1e-9 {
			t.Errorf("%s reported cost %.15g but its Best recosts to %.15g", name, res.Cost, got)
		}
	}
	cfg := config(g, cons)
	res, err := Greedy(context.Background(), g, cfg)
	check("Greedy", res, err)
	init := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	res, err = GroupMigration(context.Background(), init, config(g, cons))
	check("GroupMigration", res, err)
	res, err = Anneal(context.Background(), init, config(g, cons))
	check("Anneal", res, err)
}

// TestCommTermExcludesPortTraffic is the Comm-asymmetry regression: port
// traffic is external under every partition, so it must be excluded from
// the numerator AND the normalizer — a fully cut two-behavior graph with a
// large port write must score Comm exactly 1.
func TestCommTermExcludesPortTraffic(t *testing.T) {
	g := core.NewGraph("ports")
	b0 := &core.Node{Name: "b0", Kind: core.BehaviorNode, IsProcess: true}
	b1 := &core.Node{Name: "b1", Kind: core.BehaviorNode}
	for _, n := range []*core.Node{b0, b1} {
		n.SetICT("proc10", 1)
		n.SetICT("asic50", 1)
		n.SetSize("proc10", 10)
		n.SetSize("asic50", 10)
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	p := &core.Port{Name: "out", Dir: core.Out, Bits: 8}
	if err := g.AddPort(p); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*core.Channel{
		{Src: b0, Dst: b1, AccFreq: 1, Bits: 16, Tag: core.NoTag}, // 16 bits of internal traffic
		{Src: b0, Dst: p, AccFreq: 100, Bits: 8, Tag: core.NoTag}, // 800 bits of port traffic
	} {
		if err := g.AddChannel(c); err != nil {
			t.Fatal(err)
		}
	}
	g.AddProcessor(&core.Processor{Name: "cpu", TypeName: "proc10", SizeCon: 1e6})
	g.AddProcessor(&core.Processor{Name: "asic", TypeName: "asic50", Custom: true, SizeCon: 1e6})
	g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})

	pt := core.AllToProcessor(g, g.ProcByName("cpu"), g.Buses[0])
	if err := pt.Assign(b1, g.ProcByName("asic")); err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(g, Constraints{}, Weights{Comm: 1}, estimate.Options{})
	cost, err := ev.Cost(pt)
	if err != nil {
		t.Fatal(err)
	}
	// All partitionable traffic (the 16-bit channel) is cut: Comm = 1.
	// Before the fix the 800 bits of port traffic diluted the fraction.
	if math.Abs(cost-1) > 1e-12 {
		t.Errorf("Comm with fully cut internal traffic = %v, want 1", cost)
	}
}
