package partition

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"specsyn/internal/core"
)

// Config parameterizes the search algorithms.
type Config struct {
	Eval     *Evaluator
	Policy   BusPolicy
	Seed     int64
	MaxIters int // algorithm-specific iteration budget; 0 = default
}

// Result is the outcome of one search run.
type Result struct {
	Best  *core.Partition
	Cost  float64
	Evals int // partitions estimated during this run
}

func (r Result) String() string {
	return fmt.Sprintf("cost %.4f after %d evaluations", r.Cost, r.Evals)
}

// evalWith applies the bus policy and costs the partition.
func evalWith(cfg Config, pt *core.Partition) (float64, error) {
	if err := ApplyBusPolicy(pt, cfg.Policy); err != nil {
		return 0, err
	}
	return cfg.Eval.Cost(pt)
}

// Random samples MaxIters (default 1000) random legal partitions and
// returns the best — the baseline every smarter algorithm must beat, and
// the workload for the "thousands of possible designs" speed claim.
func Random(g *core.Graph, cfg Config) (Result, error) {
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := cfg.Eval.Evals

	var best *core.Partition
	bestCost := math.Inf(1)
	for i := 0; i < iters; i++ {
		pt := core.NewPartition(g)
		ok := true
		for _, n := range g.Nodes {
			cands := Allowed(g, n)
			if len(cands) == 0 {
				ok = false
				break
			}
			if err := pt.Assign(n, cands[rng.Intn(len(cands))]); err != nil {
				return Result{}, err
			}
		}
		if !ok {
			return Result{}, fmt.Errorf("partition: some node has no candidate component")
		}
		cost, err := evalWith(cfg, pt)
		if err != nil {
			return Result{}, err
		}
		if cost < bestCost {
			bestCost, best = cost, pt
		}
	}
	return Result{Best: best, Cost: bestCost, Evals: cfg.Eval.Evals - start}, nil
}

// Greedy builds a partition constructively: nodes in descending traffic
// order, each placed on the candidate component that minimizes the cost of
// the partial mapping (unplaced nodes temporarily ride on the first
// candidate so the estimate is always defined).
func Greedy(g *core.Graph, cfg Config) (Result, error) {
	start := cfg.Eval.Evals

	// Node order: heaviest communicators first.
	traffic := map[*core.Node]float64{}
	for _, c := range g.Channels {
		v := c.AccFreq * float64(c.Bits)
		traffic[c.Src] += v
		if n, ok := c.Dst.(*core.Node); ok {
			traffic[n] += v
		}
	}
	nodes := append([]*core.Node(nil), g.Nodes...)
	sort.SliceStable(nodes, func(i, j int) bool { return traffic[nodes[i]] > traffic[nodes[j]] })

	// Seed: everything on its first candidate.
	pt := core.NewPartition(g)
	for _, n := range g.Nodes {
		cands := Allowed(g, n)
		if len(cands) == 0 {
			return Result{}, fmt.Errorf("partition: node %q has no candidate component", n.Name)
		}
		if err := pt.Assign(n, cands[0]); err != nil {
			return Result{}, err
		}
	}

	for _, n := range nodes {
		bestCost := math.Inf(1)
		var bestComp core.Component
		for _, comp := range Allowed(g, n) {
			if err := pt.Assign(n, comp); err != nil {
				return Result{}, err
			}
			cost, err := evalWith(cfg, pt)
			if err != nil {
				return Result{}, err
			}
			if cost < bestCost {
				bestCost, bestComp = cost, comp
			}
		}
		if err := pt.Assign(n, bestComp); err != nil {
			return Result{}, err
		}
	}
	cost, err := evalWith(cfg, pt)
	if err != nil {
		return Result{}, err
	}
	return Result{Best: pt, Cost: cost, Evals: cfg.Eval.Evals - start}, nil
}

// GroupMigration is a Kernighan–Lin style improvement pass over an initial
// partition: repeatedly, every node is trial-moved to every other candidate
// component, the single best move is committed and the node locked; a pass
// ends when all nodes are locked, the best prefix of moves is kept, and
// passes repeat until one yields no improvement.
func GroupMigration(init *core.Partition, cfg Config) (Result, error) {
	g := init.Graph()
	start := cfg.Eval.Evals
	cur := init.Clone()
	curCost, err := evalWith(cfg, cur)
	if err != nil {
		return Result{}, err
	}

	maxPasses := cfg.MaxIters
	if maxPasses <= 0 {
		maxPasses = 10
	}
	for pass := 0; pass < maxPasses; pass++ {
		type move struct {
			n    *core.Node
			from core.Component
			to   core.Component
			cost float64 // cost after this move in the sequence
		}
		locked := map[*core.Node]bool{}
		work := cur.Clone()
		workCost := curCost
		var seq []move

		for len(locked) < len(g.Nodes) {
			bestCost := math.Inf(1)
			var bestMove *move
			for _, n := range g.Nodes {
				if locked[n] {
					continue
				}
				from := work.BvComp(n)
				for _, to := range Allowed(g, n) {
					if to == from {
						continue
					}
					if err := work.Assign(n, to); err != nil {
						return Result{}, err
					}
					cost, err := evalWith(cfg, work)
					if err != nil {
						return Result{}, err
					}
					if cost < bestCost {
						bestCost = cost
						bestMove = &move{n: n, from: from, to: to, cost: cost}
					}
				}
				if err := work.Assign(n, from); err != nil {
					return Result{}, err
				}
			}
			if bestMove == nil {
				break // every unlocked node has a single candidate
			}
			if err := work.Assign(bestMove.n, bestMove.to); err != nil {
				return Result{}, err
			}
			locked[bestMove.n] = true
			seq = append(seq, *bestMove)
			workCost = bestMove.cost
		}
		_ = workCost

		// Keep the best prefix of the move sequence.
		bestPrefix, bestPrefixCost := 0, curCost
		for i, m := range seq {
			if m.cost < bestPrefixCost {
				bestPrefix, bestPrefixCost = i+1, m.cost
			}
		}
		if bestPrefix == 0 {
			break // no improving prefix: converged
		}
		for _, m := range seq[:bestPrefix] {
			if err := cur.Assign(m.n, m.to); err != nil {
				return Result{}, err
			}
		}
		curCost = bestPrefixCost
		if err := ApplyBusPolicy(cur, cfg.Policy); err != nil {
			return Result{}, err
		}
	}
	return Result{Best: cur, Cost: curCost, Evals: cfg.Eval.Evals - start}, nil
}

// Anneal runs simulated annealing from an initial partition: random node
// moves accepted when improving or with Boltzmann probability otherwise,
// geometric cooling.
func Anneal(init *core.Partition, cfg Config) (Result, error) {
	g := init.Graph()
	start := cfg.Eval.Evals
	rng := rand.New(rand.NewSource(cfg.Seed))

	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 2000
	}
	cur := init.Clone()
	curCost, err := evalWith(cfg, cur)
	if err != nil {
		return Result{}, err
	}
	best := cur.Clone()
	bestCost := curCost

	temp := math.Max(curCost, 1.0)
	cool := math.Pow(0.01/temp, 1/float64(iters)) // end near temp=0.01

	movable := make([]*core.Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if len(Allowed(g, n)) > 1 {
			movable = append(movable, n)
		}
	}
	if len(movable) == 0 {
		return Result{Best: best, Cost: bestCost, Evals: cfg.Eval.Evals - start}, nil
	}

	for i := 0; i < iters; i++ {
		n := movable[rng.Intn(len(movable))]
		from := cur.BvComp(n)
		cands := Allowed(g, n)
		to := cands[rng.Intn(len(cands))]
		if to == from {
			continue
		}
		if err := cur.Assign(n, to); err != nil {
			return Result{}, err
		}
		cost, err := evalWith(cfg, cur)
		if err != nil {
			return Result{}, err
		}
		accept := cost <= curCost || rng.Float64() < math.Exp((curCost-cost)/temp)
		if accept {
			curCost = cost
			if cost < bestCost {
				bestCost = cost
				best = cur.Clone()
			}
		} else {
			if err := cur.Assign(n, from); err != nil {
				return Result{}, err
			}
		}
		temp *= cool
	}
	if err := ApplyBusPolicy(best, cfg.Policy); err != nil {
		return Result{}, err
	}
	return Result{Best: best, Cost: bestCost, Evals: cfg.Eval.Evals - start}, nil
}

// Exhaustive enumerates every legal partition — exponential, usable only
// for small graphs; the oracle the heuristics are tested against.
func Exhaustive(g *core.Graph, cfg Config) (Result, error) {
	start := cfg.Eval.Evals
	cands := make([][]core.Component, len(g.Nodes))
	total := 1.0
	for i, n := range g.Nodes {
		cands[i] = Allowed(g, n)
		if len(cands[i]) == 0 {
			return Result{}, fmt.Errorf("partition: node %q has no candidate component", n.Name)
		}
		total *= float64(len(cands[i]))
		if total > 1e7 {
			return Result{}, fmt.Errorf("partition: search space too large for exhaustive enumeration (%g partitions)", total)
		}
	}

	pt := core.NewPartition(g)
	var best *core.Partition
	bestCost := math.Inf(1)
	var recurse func(i int) error
	recurse = func(i int) error {
		if i == len(g.Nodes) {
			cost, err := evalWith(cfg, pt)
			if err != nil {
				return err
			}
			if cost < bestCost {
				bestCost = cost
				best = pt.Clone()
			}
			return nil
		}
		for _, comp := range cands[i] {
			if err := pt.Assign(g.Nodes[i], comp); err != nil {
				return err
			}
			if err := recurse(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := recurse(0); err != nil {
		return Result{}, err
	}
	if best != nil {
		if err := ApplyBusPolicy(best, cfg.Policy); err != nil {
			return Result{}, err
		}
	}
	return Result{Best: best, Cost: bestCost, Evals: cfg.Eval.Evals - start}, nil
}
