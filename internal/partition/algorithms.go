package partition

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"specsyn/internal/core"
)

// Config parameterizes the search algorithms.
type Config struct {
	Eval     *Evaluator
	Policy   BusPolicy
	Seed     int64
	MaxIters int // algorithm-specific iteration budget; 0 = default

	// IdxPolicy, when set, is the snapshot-native twin of Policy (see
	// IndexedPolicy): it must derive the same bus per channel. Move-based
	// searches then run their trial moves entirely on the flat assignment
	// vector, and SnapRandom requires it. Leave nil to drive the delta
	// evaluator through the pointer policy (still incremental, slightly
	// slower).
	IdxPolicy IndexedPolicy

	// MaxEvals caps the cost evaluations a run may spend; 0 = unlimited.
	// A search that exhausts the budget stops and returns its best-so-far
	// result with Partial set (anytime semantics), possibly spending one
	// grace evaluation to cost the final partition of a constructive
	// algorithm. Parallel engines split the budget deterministically
	// across legs, so a budgeted run is still reproducible at a fixed
	// seed and leg plan.
	MaxEvals int

	// FullEval forces the move-based searches (Greedy, GroupMigration,
	// Anneal) to cost every trial with a full recompute instead of the
	// incremental delta evaluator. Set it when the bus policy is not
	// endpoint-local (see BusPolicy), or to cross-check the incremental
	// path — the two produce identical searches up to floating-point
	// rounding, and the differential tests hold them to 1e-9.
	FullEval bool

	// SwapProb, when positive, makes Anneal propose a pair-swap move (two
	// nodes exchanging components, costed in one SwapCost evaluation) with
	// this probability per iteration instead of a single-node move. Zero
	// keeps the historical single-move proposal stream bit-identical.
	SwapProb float64

	// SwapPass, when set, makes GroupMigration follow its converged move
	// passes with a Kernighan–Lin style swap pass: repeatedly commit the
	// best strictly-improving pair exchange until none remains. Off by
	// default so existing runs are unchanged.
	SwapPass bool
}

// checkInterval is how many candidates/iterations a search hot loop runs
// between cooperative cancellation checks. Polling the context is a mutex
// acquisition, so amortizing it keeps the allocation-free fast path from
// the parallel engine intact; a cancel therefore takes effect within at
// most this many evaluations.
const checkInterval = 64

// cancelled polls the context; nil contexts never cancel, so internal
// callers can pass whatever they were handed.
func cancelled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// budgetLeft reports whether the run may spend another evaluation. A
// negative MaxEvals means an already-exhausted budget (the parallel
// engine's way of giving a leg a zero quota), as opposed to 0 = unlimited.
func (c Config) budgetLeft(start int) bool {
	if c.MaxEvals == 0 {
		return true
	}
	if c.MaxEvals < 0 {
		return false
	}
	return c.Eval.Evals-start < c.MaxEvals
}

// Result is the outcome of one search run.
type Result struct {
	Best  *core.Partition
	Cost  float64
	Evals int // partitions estimated during this run

	// Partial marks an anytime result: the search stopped early — context
	// cancelled, deadline passed, or evaluation budget exhausted — and
	// Best is the best candidate seen so far rather than the algorithm's
	// converged answer. Best may be nil if the search was stopped before
	// it evaluated anything.
	Partial bool

	// FinalTemp is set by Anneal only: the temperature after the last
	// iteration. The geometric schedule cools once per iteration, so for a
	// fixed MaxIters it always lands at the same value (≈0.01).
	FinalTemp float64
}

func (r Result) String() string {
	s := fmt.Sprintf("cost %.4f after %d evaluations", r.Cost, r.Evals)
	if r.Partial {
		s += " (partial)"
	}
	return s
}

// evalWith applies the bus policy and costs the partition.
func evalWith(cfg Config, pt *core.Partition) (float64, error) {
	if err := ApplyBusPolicy(pt, cfg.Policy); err != nil {
		return 0, err
	}
	return cfg.Eval.Cost(pt)
}

// mover is what a move-based search needs from an evaluator: the cost of
// the current partition, the cost the partition would have after one node
// move or one pair exchange (without keeping it), and committing either.
// DeltaEval satisfies it at O(degree) per call; fullMover is the O(graph)
// recompute with identical semantics. Both count one evaluation per
// Cost/MoveCost/SwapCost and none per Apply/ApplySwap, so budgets and
// fault injection see the same sequence whichever implementation runs.
type mover interface {
	Cost() (float64, error)
	MoveCost(n *core.Node, to core.Component) (float64, error)
	Apply(n *core.Node, to core.Component) error
	SwapCost(a, b *core.Node) (float64, error)
	ApplySwap(a, b *core.Node) error
}

// fullMover implements mover by full recompute: MoveCost assigns, costs
// and restores, exactly the trial loops the searches used to inline.
type fullMover struct {
	cfg Config
	pt  *core.Partition
}

func (m *fullMover) Cost() (float64, error) { return evalWith(m.cfg, m.pt) }

func (m *fullMover) MoveCost(n *core.Node, to core.Component) (float64, error) {
	from := m.pt.BvComp(n)
	if err := m.pt.Assign(n, to); err != nil {
		return 0, err
	}
	cost, cerr := evalWith(m.cfg, m.pt)
	if err := m.pt.Assign(n, from); err != nil {
		return 0, err
	}
	return cost, cerr
}

// Apply commits the node move only; the bus policy is re-applied by the
// next evaluation (evalWith), as the searches always did.
func (m *fullMover) Apply(n *core.Node, to core.Component) error {
	return m.pt.Assign(n, to)
}

// SwapCost costs the pair exchange of a and b by assign-cost-restore,
// mirroring DeltaEval.SwapCost: one evaluation, and a degenerate swap
// (same node or same component) is costed as a no-op.
func (m *fullMover) SwapCost(a, b *core.Node) (float64, error) {
	ca, cb := m.pt.BvComp(a), m.pt.BvComp(b)
	if a == b || ca == cb {
		return evalWith(m.cfg, m.pt)
	}
	if err := m.pt.Assign(a, cb); err != nil {
		return 0, err
	}
	if err := m.pt.Assign(b, ca); err != nil {
		if rerr := m.pt.Assign(a, ca); rerr != nil {
			return 0, rerr
		}
		return 0, err
	}
	cost, cerr := evalWith(m.cfg, m.pt)
	if err := m.pt.Assign(b, cb); err != nil {
		return 0, err
	}
	if err := m.pt.Assign(a, ca); err != nil {
		return 0, err
	}
	return cost, cerr
}

// ApplySwap commits the pair exchange only, like Apply.
func (m *fullMover) ApplySwap(a, b *core.Node) error {
	ca, cb := m.pt.BvComp(a), m.pt.BvComp(b)
	if a == b || ca == cb {
		return nil
	}
	if err := m.pt.Assign(a, cb); err != nil {
		return err
	}
	if err := m.pt.Assign(b, ca); err != nil {
		if rerr := m.pt.Assign(a, ca); rerr != nil {
			return rerr
		}
		return err
	}
	return nil
}

// newMover binds the best available mover to pt: the evaluator's pooled
// delta evaluator, or a full-recompute mover when the graph doesn't
// support incremental evaluation (recursive access graph, degenerate bus,
// incomplete mapping) or the caller opted out with cfg.FullEval. The
// fallback preserves full-recompute semantics exactly — including which
// degenerate inputs it tolerates and how it reports the ones it doesn't.
func newMover(cfg Config, pt *core.Partition) mover {
	if !cfg.FullEval {
		if d, err := cfg.Eval.Delta(pt, cfg.Policy); err == nil {
			if cfg.IdxPolicy != nil {
				d.UseIndexedPolicy(cfg.IdxPolicy)
			}
			return d
		}
	}
	return &fullMover{cfg: cfg, pt: pt}
}

// sampler is a tiny splitmix64 PRNG used to draw random candidates. Unlike
// a single math/rand stream, every candidate index gets its own stream
// derived from (seed, index), so a run sharded across parallel legs
// enumerates exactly the same candidates as a sequential one — the basis
// of the engine's determinism guarantee. Seeding is two multiplies, not
// math/rand's 607-word table fill, so per-candidate reseeding is free.
type sampler struct{ state uint64 }

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// candidateSampler returns the sampler for one candidate index.
func candidateSampler(seed int64, candidate int) sampler {
	return sampler{state: mix64(uint64(seed)) + 0x9E3779B97F4A7C15*uint64(candidate)}
}

func (s *sampler) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix64(s.state)
}

// intn returns a value in [0, n). The modulo bias is negligible for the
// handful of candidate components a node ever has.
func (s *sampler) intn(n int) int { return int(s.next() % uint64(n)) }

// candidateTable precomputes Allowed for every node once, in g.Nodes order,
// so the sampling loop does no per-candidate slice allocation.
func candidateTable(g *core.Graph) ([][]core.Component, error) {
	table := make([][]core.Component, len(g.Nodes))
	for i, n := range g.Nodes {
		table[i] = Allowed(g, n)
		if len(table[i]) == 0 {
			return nil, fmt.Errorf("partition: node %q has no candidate component", n.Name)
		}
	}
	return table, nil
}

// Random samples MaxIters (default 1000) random legal partitions and
// returns the best — the baseline every smarter algorithm must beat, and
// the workload for the "thousands of possible designs" speed claim. On
// cancellation or budget exhaustion it returns the best candidate seen so
// far with Partial set.
func Random(ctx context.Context, g *core.Graph, cfg Config) (Result, error) {
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 1000
	}
	return randomRange(ctx, g, cfg, 0, iters)
}

// randomRange evaluates the candidates with indices [lo, hi) of the
// deterministic candidate enumeration defined by cfg.Seed. Candidates are
// built on one scratch partition (cloned only on improvement), so the loop
// is allocation-light. Ties keep the earliest candidate, matching what a
// sequential first-strictly-better scan would keep. The context is polled
// every checkInterval candidates; a poll that never fires changes nothing,
// so an uncancelled run is bit-identical to the pre-context engine.
func randomRange(ctx context.Context, g *core.Graph, cfg Config, lo, hi int) (Result, error) {
	start := cfg.Eval.Evals
	table, err := candidateTable(g)
	if err != nil {
		return Result{}, err
	}
	pt := core.NewPartition(g)
	var best *core.Partition
	bestCost := math.Inf(1)
	partial := false
	for i := lo; i < hi; i++ {
		if (i-lo)%checkInterval == 0 && cancelled(ctx) {
			partial = true
			break
		}
		if !cfg.budgetLeft(start) {
			partial = true
			break
		}
		s := candidateSampler(cfg.Seed, i)
		for j, n := range g.Nodes {
			cands := table[j]
			if err := pt.Assign(n, cands[s.intn(len(cands))]); err != nil {
				return Result{}, err
			}
		}
		cost, err := evalWith(cfg, pt)
		if err != nil {
			return Result{}, err
		}
		if cost < bestCost {
			bestCost, best = cost, pt.Clone()
		}
	}
	return Result{Best: best, Cost: bestCost, Evals: cfg.Eval.Evals - start, Partial: partial}, nil
}

// Greedy builds a partition constructively: nodes in descending traffic
// order, each placed on the candidate component that minimizes the cost of
// the partial mapping (unplaced nodes temporarily ride on the first
// candidate so the estimate is always defined). Cancelled or
// budget-exhausted runs stop placing and return the (always complete and
// legal) mapping built so far with Partial set, spending one grace
// evaluation to cost it.
func Greedy(ctx context.Context, g *core.Graph, cfg Config) (Result, error) {
	return greedyRotated(ctx, g, cfg, 0)
}

// greedyRotated is Greedy with the constructive order rotated left by
// rotate positions — the multi-start engine's source of distinct greedy
// legs. rotate 0 is the canonical heaviest-communicators-first order.
func greedyRotated(ctx context.Context, g *core.Graph, cfg Config, rotate int) (Result, error) {
	start := cfg.Eval.Evals

	// Node order: heaviest communicators first.
	traffic := map[*core.Node]float64{}
	for _, c := range g.Channels {
		v := c.AccFreq * float64(c.Bits)
		traffic[c.Src] += v
		if n, ok := c.Dst.(*core.Node); ok {
			traffic[n] += v
		}
	}
	nodes := append([]*core.Node(nil), g.Nodes...)
	sort.SliceStable(nodes, func(i, j int) bool { return traffic[nodes[i]] > traffic[nodes[j]] })
	if len(nodes) > 0 {
		if r := rotate % len(nodes); r > 0 {
			nodes = append(nodes[r:], nodes[:r]...)
		}
	}

	// Seed: everything on its first candidate.
	pt := core.NewPartition(g)
	for _, n := range g.Nodes {
		cands := Allowed(g, n)
		if len(cands) == 0 {
			return Result{}, fmt.Errorf("partition: node %q has no candidate component", n.Name)
		}
		if err := pt.Assign(n, cands[0]); err != nil {
			return Result{}, err
		}
	}

	m := newMover(cfg, pt)
	partial := false
place:
	for _, n := range nodes {
		if cancelled(ctx) || !cfg.budgetLeft(start) {
			partial = true
			break
		}
		bestCost := math.Inf(1)
		var bestComp core.Component
		from := pt.BvComp(n)
		for _, comp := range Allowed(g, n) {
			cost, err := m.MoveCost(n, comp)
			if err != nil {
				return Result{}, err
			}
			if cost < bestCost {
				bestCost, bestComp = cost, comp
			}
			if !cfg.budgetLeft(start) {
				// Mid-node budget exhaustion: commit the best candidate
				// tried so far (the mapping stays complete) and stop. The
				// same fallback as below — no candidate may have beaten
				// +Inf yet (every cost so far NaN), and Apply(n, nil)
				// would tear the mapping.
				if bestComp == nil {
					bestComp = from
				}
				if err := m.Apply(n, bestComp); err != nil {
					return Result{}, err
				}
				partial = true
				break place
			}
		}
		if bestComp == nil {
			bestComp = from
		}
		if err := m.Apply(n, bestComp); err != nil {
			return Result{}, err
		}
	}
	cost, err := m.Cost()
	if err != nil {
		return Result{}, err
	}
	return Result{Best: pt, Cost: cost, Evals: cfg.Eval.Evals - start, Partial: partial}, nil
}

// GroupMigration is a Kernighan–Lin style improvement pass over an initial
// partition: repeatedly, every node is trial-moved to every other candidate
// component, the single best move is committed and the node locked; a pass
// ends when all nodes are locked, the best prefix of moves is kept, and
// passes repeat until one yields no improvement. Cancellation or budget
// exhaustion abandons the in-flight pass and returns the last committed
// partition with Partial set — committed prefixes are never lost.
func GroupMigration(ctx context.Context, init *core.Partition, cfg Config) (Result, error) {
	g := init.Graph()
	start := cfg.Eval.Evals
	cur := init.Clone()
	// This mover is used for exactly one evaluation: each pass binds the
	// evaluator's pooled delta state to its own working clone, so a mover
	// is never held across pass boundaries.
	curCost, err := newMover(cfg, cur).Cost()
	if err != nil {
		return Result{}, err
	}

	partial := false
	maxPasses := cfg.MaxIters
	if maxPasses <= 0 {
		maxPasses = 10
	}
	for pass := 0; pass < maxPasses; pass++ {
		type move struct {
			n    *core.Node
			from core.Component
			to   core.Component
			cost float64 // cost after this move in the sequence
		}
		locked := map[*core.Node]bool{}
		work := cur.Clone()
		wm := newMover(cfg, work)
		var seq []move

		for len(locked) < len(g.Nodes) {
			if cancelled(ctx) || !cfg.budgetLeft(start) {
				partial = true
				break
			}
			bestCost := math.Inf(1)
			var bestMove *move
			for _, n := range g.Nodes {
				if locked[n] {
					continue
				}
				from := work.BvComp(n)
				for _, to := range Allowed(g, n) {
					if to == from {
						continue
					}
					cost, err := wm.MoveCost(n, to)
					if err != nil {
						return Result{}, err
					}
					if cost < bestCost {
						bestCost = cost
						bestMove = &move{n: n, from: from, to: to, cost: cost}
					}
				}
			}
			if bestMove == nil {
				break // every unlocked node has a single candidate
			}
			if err := wm.Apply(bestMove.n, bestMove.to); err != nil {
				return Result{}, err
			}
			locked[bestMove.n] = true
			seq = append(seq, *bestMove)
		}

		// Keep the best prefix of the move sequence.
		bestPrefix, bestPrefixCost := 0, curCost
		for i, m := range seq {
			if m.cost < bestPrefixCost {
				bestPrefix, bestPrefixCost = i+1, m.cost
			}
		}
		if bestPrefix == 0 {
			break // no improving prefix: converged (or pass abandoned dry)
		}
		for _, m := range seq[:bestPrefix] {
			if err := cur.Assign(m.n, m.to); err != nil {
				return Result{}, err
			}
		}
		curCost = bestPrefixCost
		if err := ApplyBusPolicy(cur, cfg.Policy); err != nil {
			return Result{}, err
		}
		if partial {
			break
		}
	}
	if cfg.SwapPass && !partial {
		var err error
		curCost, partial, err = swapPass(ctx, g, cur, curCost, cfg, start)
		if err != nil {
			return Result{}, err
		}
	}
	return Result{Best: cur, Cost: curCost, Evals: cfg.Eval.Evals - start, Partial: partial}, nil
}

// swapPass is GroupMigration's Kernighan–Lin style pair-exchange phase:
// single-node passes move mass between components, but a pair of nodes
// whose individual moves both worsen the cost can still improve it as an
// exchange (the classic KL insight). Each iteration trials every cross-
// component pair whose endpoints can legally host each other's component
// and commits the single best strictly-improving exchange; iterations
// repeat until none improves. Every committed swap strictly improves cur,
// so an abandoned pass (cancel/budget) never needs prefix rollback.
func swapPass(ctx context.Context, g *core.Graph, cur *core.Partition, curCost float64, cfg Config, start int) (float64, bool, error) {
	// Hostability table: swaps must stay within each node's candidate set.
	allowed := make(map[*core.Node]map[core.Component]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		set := make(map[core.Component]bool)
		for _, c := range Allowed(g, n) {
			set[c] = true
		}
		allowed[n] = set
	}
	work := cur.Clone()
	wm := newMover(cfg, work)
	trials := 0
	for {
		if cancelled(ctx) || !cfg.budgetLeft(start) {
			return curCost, true, nil
		}
		bestCost := curCost
		var bestA, bestB *core.Node
		for i, a := range g.Nodes {
			for _, b := range g.Nodes[i+1:] {
				ca, cb := work.BvComp(a), work.BvComp(b)
				if ca == cb || !allowed[a][cb] || !allowed[b][ca] {
					continue
				}
				if trials%checkInterval == 0 && cancelled(ctx) {
					return curCost, true, nil
				}
				if !cfg.budgetLeft(start) {
					return curCost, true, nil
				}
				trials++
				cost, err := wm.SwapCost(a, b)
				if err != nil {
					return 0, false, err
				}
				if cost < bestCost {
					bestCost, bestA, bestB = cost, a, b
				}
			}
		}
		if bestA == nil {
			return curCost, false, nil // no improving exchange left
		}
		if err := wm.ApplySwap(bestA, bestB); err != nil {
			return 0, false, err
		}
		// Commit through to cur immediately: strictly-improving exchanges
		// need no prefix bookkeeping to be safe against abandonment.
		if err := cur.Assign(bestA, work.BvComp(bestA)); err != nil {
			return 0, false, err
		}
		if err := cur.Assign(bestB, work.BvComp(bestB)); err != nil {
			return 0, false, err
		}
		curCost = bestCost
		if err := ApplyBusPolicy(cur, cfg.Policy); err != nil {
			return 0, false, err
		}
	}
}

// Anneal runs simulated annealing from an initial partition: random node
// moves — plus, with Config.SwapProb, random pair exchanges — accepted
// when improving or with Boltzmann probability otherwise, geometric
// cooling. A cancelled or budget-exhausted run returns the best partition
// seen so far with Partial set; the context is polled every checkInterval
// iterations so the RNG stream is untouched by the checks.
func Anneal(ctx context.Context, init *core.Partition, cfg Config) (Result, error) {
	g := init.Graph()
	start := cfg.Eval.Evals
	rng := rand.New(rand.NewSource(cfg.Seed))

	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 2000
	}
	cur := init.Clone()
	m := newMover(cfg, cur)
	curCost, err := m.Cost()
	if err != nil {
		return Result{}, err
	}
	best := cur.Clone()
	bestCost := curCost

	temp := math.Max(curCost, 1.0)
	cool := math.Pow(0.01/temp, 1/float64(iters)) // end near temp=0.01

	movable := make([]*core.Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if len(Allowed(g, n)) > 1 {
			movable = append(movable, n)
		}
	}
	if len(movable) == 0 {
		return Result{Best: best, Cost: bestCost, Evals: cfg.Eval.Evals - start}, nil
	}

	// Swap proposals need the candidate sets as membership tests; built
	// only when the move kind is enabled so SwapProb == 0 costs nothing.
	var swapAllowed map[*core.Node]map[core.Component]bool
	if cfg.SwapProb > 0 {
		swapAllowed = make(map[*core.Node]map[core.Component]bool, len(movable))
		for _, n := range movable {
			set := make(map[core.Component]bool)
			for _, c := range Allowed(g, n) {
				set[c] = true
			}
			swapAllowed[n] = set
		}
	}

	partial := false
	for i := 0; i < iters; i++ {
		if i%checkInterval == 0 && cancelled(ctx) {
			partial = true
			break
		}
		if !cfg.budgetLeft(start) {
			partial = true
			break
		}
		if cfg.SwapProb > 0 && len(movable) > 1 && rng.Float64() < cfg.SwapProb {
			a := movable[rng.Intn(len(movable))]
			b := movable[rng.Intn(len(movable))]
			ca, cb := cur.BvComp(a), cur.BvComp(b)
			if a != b && ca != cb && swapAllowed[a][cb] && swapAllowed[b][ca] {
				cost, err := m.SwapCost(a, b)
				if err != nil {
					return Result{}, err
				}
				if cost <= curCost || rng.Float64() < math.Exp((curCost-cost)/temp) {
					if err := m.ApplySwap(a, b); err != nil {
						return Result{}, err
					}
					curCost = cost
					if cost < bestCost {
						bestCost = cost
						best = cur.Clone()
					}
				}
				temp *= cool
				continue
			}
			// Infeasible draw (same node, same component, or a component the
			// partner cannot host): fall through to a single-node move so
			// the iteration still proposes something and cools exactly once.
		}
		n := movable[rng.Intn(len(movable))]
		from := cur.BvComp(n)
		cands := Allowed(g, n)
		// Draw the destination from the candidates excluding from, so every
		// iteration proposes a real move and cools exactly once. (Redrawing
		// on to == from made the effective schedule length depend on how
		// often the RNG hit the current component: two runs with equal
		// MaxIters saw different final temperatures.)
		fromIdx := -1
		for k, c := range cands {
			if c == from {
				fromIdx = k
				break
			}
		}
		var to core.Component
		if fromIdx < 0 {
			// Initial partition mapped n outside its candidate set; any
			// candidate is a real move.
			to = cands[rng.Intn(len(cands))]
		} else {
			j := rng.Intn(len(cands) - 1)
			if j >= fromIdx {
				j++
			}
			to = cands[j]
		}
		cost, err := m.MoveCost(n, to)
		if err != nil {
			return Result{}, err
		}
		accept := cost <= curCost || rng.Float64() < math.Exp((curCost-cost)/temp)
		if accept {
			if err := m.Apply(n, to); err != nil {
				return Result{}, err
			}
			curCost = cost
			if cost < bestCost {
				bestCost = cost
				best = cur.Clone()
			}
		}
		temp *= cool
	}
	if err := ApplyBusPolicy(best, cfg.Policy); err != nil {
		return Result{}, err
	}
	return Result{Best: best, Cost: bestCost, Evals: cfg.Eval.Evals - start, Partial: partial, FinalTemp: temp}, nil
}

// Exhaustive enumerates every legal partition — exponential, usable only
// for small graphs; the oracle the heuristics are tested against. On
// cancellation or budget exhaustion the enumeration stops and the best
// partition found so far is returned with Partial set.
func Exhaustive(ctx context.Context, g *core.Graph, cfg Config) (Result, error) {
	start := cfg.Eval.Evals
	cands := make([][]core.Component, len(g.Nodes))
	total := 1.0
	for i, n := range g.Nodes {
		cands[i] = Allowed(g, n)
		if len(cands[i]) == 0 {
			return Result{}, fmt.Errorf("partition: node %q has no candidate component", n.Name)
		}
		total *= float64(len(cands[i]))
		if total > 1e7 {
			return Result{}, fmt.Errorf("partition: search space too large for exhaustive enumeration (%g partitions)", total)
		}
	}

	pt := core.NewPartition(g)
	var best *core.Partition
	bestCost := math.Inf(1)
	partial := false
	visited := 0
	var recurse func(i int) error
	recurse = func(i int) error {
		if partial {
			return nil
		}
		if i == len(g.Nodes) {
			if visited%checkInterval == 0 && cancelled(ctx) {
				partial = true
				return nil
			}
			if !cfg.budgetLeft(start) {
				partial = true
				return nil
			}
			visited++
			cost, err := evalWith(cfg, pt)
			if err != nil {
				return err
			}
			if cost < bestCost {
				bestCost = cost
				best = pt.Clone()
			}
			return nil
		}
		for _, comp := range cands[i] {
			if err := pt.Assign(g.Nodes[i], comp); err != nil {
				return err
			}
			if err := recurse(i + 1); err != nil {
				return err
			}
			if partial {
				return nil
			}
		}
		return nil
	}
	if err := recurse(0); err != nil {
		return Result{}, err
	}
	if best != nil {
		if err := ApplyBusPolicy(best, cfg.Policy); err != nil {
			return Result{}, err
		}
	}
	return Result{Best: best, Cost: bestCost, Evals: cfg.Eval.Evals - start, Partial: partial}, nil
}
