package partition

// Tests for the anytime/fault-isolation contract: injected panics are
// contained per leg and reported with reproduction seeds, deadlines and
// budgets yield valid best-so-far results with Partial set, and none of it
// perturbs the deterministic merge.

import (
	"context"
	"errors"
	"testing"
	"time"

	"specsyn/internal/faultinject"
)

// completeMapping fails the test unless every node of the result's graph
// is mapped — the "anytime results are always valid partitions" invariant.
func completeMapping(t *testing.T, res Result) {
	t.Helper()
	if res.Best == nil {
		t.Fatal("result has no partition")
	}
	for _, n := range res.Best.Graph().Nodes {
		if res.Best.BvComp(n) == nil {
			t.Fatalf("node %q unmapped in anytime result", n.Name)
		}
	}
}

// TestInjectedPanicsContained: K of N legs panic on a deterministic
// schedule; the run still succeeds with the best surviving leg, the report
// lists exactly the K panics with their derived seeds, and the whole thing
// is bit-reproducible at any worker count.
func TestInjectedPanicsContained(t *testing.T) {
	g := benchGraph(t, 8, 5)
	const nLegs = 8
	panicLegs := []int{1, 3, 5} // K = 3 of N = 8

	mk := func(inject bool) Config {
		cfg := config(g, Constraints{})
		cfg.Seed = 42
		cfg.MaxIters = 200
		if inject {
			cfg.Eval.Hook = &faultinject.Injector{PanicLegs: panicLegs, PanicAtEval: 3}
		}
		return cfg
	}

	clean, err := MultiStart(context.Background(), g, mk(false), ParallelOptions{Workers: 4, Legs: nLegs})
	if err != nil {
		t.Fatal(err)
	}

	var runs []MultiResult
	for _, workers := range []int{1, 2, 4, 7} {
		out, err := MultiStart(context.Background(), g, mk(true), ParallelOptions{Workers: workers, Legs: nLegs})
		if err != nil {
			t.Fatalf("workers=%d: injected panics not contained: %v", workers, err)
		}
		if got := len(out.Report.Panics); got != len(panicLegs) {
			t.Fatalf("workers=%d: %d panics reported, want %d", workers, got, len(panicLegs))
		}
		for i, p := range out.Report.Panics {
			if p.Leg != panicLegs[i] {
				t.Errorf("workers=%d: panic %d on leg %d, want %d", workers, i, p.Leg, panicLegs[i])
			}
			ip, ok := p.Value.(*faultinject.Panic)
			if !ok {
				t.Fatalf("workers=%d: panic value %T, want *faultinject.Panic", workers, p.Value)
			}
			if ip.Seed != p.Seed {
				t.Errorf("workers=%d: record seed %d != injected seed %d", workers, p.Seed, ip.Seed)
			}
			if p.Stack == "" {
				t.Error("panic record has no stack")
			}
		}
		if out.Report.Partial {
			t.Errorf("workers=%d: contained panics marked the run partial", workers)
		}
		if out.Report.LegsCompleted != nLegs-len(panicLegs) {
			t.Errorf("workers=%d: %d legs completed, want %d", workers, out.Report.LegsCompleted, nLegs-len(panicLegs))
		}
		runs = append(runs, out)
	}

	// Deterministic across worker counts: same winner, same cost.
	for _, out := range runs[1:] {
		if out.Cost != runs[0].Cost || out.BestLeg != runs[0].BestLeg {
			t.Fatalf("injected run not deterministic: (cost %v, leg %d) vs (cost %v, leg %d)",
				out.Cost, out.BestLeg, runs[0].Cost, runs[0].BestLeg)
		}
	}

	// The winner is the best over the SURVIVING legs, and each surviving
	// leg's result is untouched by its neighbours' crashes.
	dead := map[int]bool{}
	for _, l := range panicLegs {
		dead[l] = true
	}
	best := -1
	for i, r := range runs[0].Legs {
		if dead[i] || r.Best == nil {
			continue
		}
		if r.Cost != clean.Legs[i].Cost {
			t.Errorf("surviving leg %d cost %v differs from uninjected run's %v", i, r.Cost, clean.Legs[i].Cost)
		}
		if best < 0 || r.Cost < runs[0].Legs[best].Cost {
			best = i
		}
	}
	if runs[0].BestLeg != best {
		t.Errorf("BestLeg = %d, want best surviving leg %d", runs[0].BestLeg, best)
	}
}

// TestInjectedErrorRecorded: an injected estimator error fails its leg,
// lands in Report.Errors as a *faultinject.Error (distinguishable from a
// real failure), and the portfolio still returns a result.
func TestInjectedErrorRecorded(t *testing.T) {
	g := benchGraph(t, 6, 4)
	cfg := config(g, Constraints{})
	cfg.MaxIters = 100
	cfg.Eval.Hook = &faultinject.Injector{ErrLegs: []int{0}, ErrAtEval: 2}

	out, err := MultiStart(context.Background(), g, cfg, ParallelOptions{Workers: 2, Legs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Report.Errors) != 1 || out.Report.Errors[0].Leg != 0 {
		t.Fatalf("Errors = %+v, want one entry for leg 0", out.Report.Errors)
	}
	var ie *faultinject.Error
	if !errors.As(out.Report.Errors[0].Err, &ie) {
		t.Fatalf("leg error %v is not a *faultinject.Error", out.Report.Errors[0].Err)
	}
	if out.BestLeg == 0 {
		t.Error("failed leg won the merge")
	}
	completeMapping(t, out.Result)
}

// TestAllLegsPanicIsAnError: when nothing survives, the engine reports an
// error naming the first panic — and still returns the full report.
func TestAllLegsPanicIsAnError(t *testing.T) {
	g := benchGraph(t, 5, 3)
	cfg := config(g, Constraints{})
	cfg.Eval.Hook = &faultinject.Injector{PanicProb: 1}

	out, err := MultiStart(context.Background(), g, cfg, ParallelOptions{Workers: 2, Legs: 3})
	if err == nil {
		t.Fatal("run with zero surviving legs succeeded")
	}
	if len(out.Report.Panics) != 3 {
		t.Errorf("%d panics reported, want 3", len(out.Report.Panics))
	}
}

// TestDeadlinePartialResult: a deadline far shorter than the full search
// returns a valid, complete best-so-far partition with Partial set, for
// both the sequential greedy and the parallel portfolio. Injected delays
// make the timing machine-independent.
func TestDeadlinePartialResult(t *testing.T) {
	g := benchGraph(t, 10, 6)

	mk := func() Config {
		cfg := config(g, Constraints{})
		cfg.MaxIters = 100000
		cfg.Eval.Hook = faultinject.Delayer{D: 200 * time.Microsecond}
		return cfg
	}

	t.Run("greedy", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		defer cancel()
		cfg := mk()
		cfg.Eval.Hook = cfg.Eval.Hook.ForLeg(0, cfg.Seed)
		res, err := Greedy(ctx, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial {
			t.Error("deadline did not mark the greedy result partial")
		}
		completeMapping(t, res)
	})

	t.Run("multi", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		out, err := MultiStart(ctx, g, mk(), ParallelOptions{Workers: 2, Legs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Report.Partial || !out.Result.Partial {
			t.Errorf("deadline-bounded run not marked partial: %+v", out.Report)
		}
		completeMapping(t, out.Result)
	})
}

// TestCancelMidParallelRandom: cancelling the context mid-run stops the
// legs at their next cooperative check and the merge returns the best of
// what was evaluated, marked partial.
func TestCancelMidParallelRandom(t *testing.T) {
	g := benchGraph(t, 8, 5)
	cfg := config(g, Constraints{})
	cfg.MaxIters = 1 << 30 // would run ~forever without the cancel
	cfg.Eval.Hook = faultinject.Delayer{D: 50 * time.Microsecond}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	out, err := ParallelRandom(ctx, g, cfg, ParallelOptions{Workers: 2, Legs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancel took %v to take effect", elapsed)
	}
	if !out.Result.Partial || !out.Report.Partial {
		t.Error("cancelled run not marked partial")
	}
	if out.Evals >= 1<<30 {
		t.Error("cancelled run claims to have finished the plan")
	}
	completeMapping(t, out.Result)
}

// TestMaxEvalsBudget: the evaluation budget is a hard cap (plus at most
// one grace evaluation for constructive algorithms) and budgeted runs are
// marked partial.
func TestMaxEvalsBudget(t *testing.T) {
	g := benchGraph(t, 8, 5)

	t.Run("random", func(t *testing.T) {
		cfg := config(g, Constraints{})
		cfg.MaxIters = 300
		cfg.MaxEvals = 100
		res, err := Random(context.Background(), g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Evals != 100 || !res.Partial {
			t.Errorf("Evals = %d, Partial = %v; want exactly 100, true", res.Evals, res.Partial)
		}
		// The budgeted prefix equals an unbudgeted run of just that prefix.
		cfg2 := config(g, Constraints{})
		cfg2.MaxIters = 100
		ref, err := Random(context.Background(), g, cfg2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != ref.Cost {
			t.Errorf("budgeted cost %v != prefix cost %v", res.Cost, ref.Cost)
		}
	})

	t.Run("greedy-grace", func(t *testing.T) {
		cfg := config(g, Constraints{})
		cfg.MaxEvals = 5
		res, err := Greedy(context.Background(), g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Evals > 6 { // budget + one grace eval of the final mapping
			t.Errorf("Evals = %d, want <= 6", res.Evals)
		}
		if !res.Partial {
			t.Error("budget-stopped greedy not marked partial")
		}
		completeMapping(t, res)
	})

	t.Run("parallel-random-clamp", func(t *testing.T) {
		cfg := config(g, Constraints{})
		cfg.MaxIters = 300
		cfg.MaxEvals = 100
		out, err := ParallelRandom(context.Background(), g, cfg, ParallelOptions{Workers: 3, Legs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if out.Evals != 100 || !out.Result.Partial {
			t.Errorf("Evals = %d, Partial = %v; want exactly 100, true", out.Evals, out.Result.Partial)
		}
		// Bit-identical to the budgeted sequential run.
		cfg2 := config(g, Constraints{})
		cfg2.MaxIters = 300
		cfg2.MaxEvals = 100
		seq, err := Random(context.Background(), g, cfg2)
		if err != nil {
			t.Fatal(err)
		}
		if out.Cost != seq.Cost || out.Best.String() != seq.Best.String() {
			t.Error("budgeted parallel result differs from budgeted sequential")
		}
	})

	t.Run("multi-split", func(t *testing.T) {
		cfg := config(g, Constraints{})
		cfg.MaxIters = 200
		cfg.MaxEvals = 60
		for _, workers := range []int{1, 4} {
			out, err := MultiStart(context.Background(), g, cfg, ParallelOptions{Workers: workers, Legs: 6})
			if err != nil {
				t.Fatal(err)
			}
			// Even split + at most one grace eval per constructive leg.
			if out.Evals > 60+6 {
				t.Errorf("workers=%d: Evals = %d, want <= 66", workers, out.Evals)
			}
			if !out.Report.Partial {
				t.Errorf("workers=%d: budget-capped run not marked partial", workers)
			}
			completeMapping(t, out.Result)
		}
	})
}

// TestNilContext: internal callers may pass a nil context; it must behave
// as Background (never cancelled).
func TestNilContext(t *testing.T) {
	g := benchGraph(t, 5, 3)
	cfg := config(g, Constraints{})
	cfg.MaxIters = 50
	res, err := Random(nil, g, cfg) //nolint:staticcheck // nil ctx is part of the contract
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Error("nil context marked the run partial")
	}
	bg, err := Random(context.Background(), g, config(g, Constraints{}))
	_ = bg
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlreadyCancelled: a context cancelled before the run starts skips
// every leg and reports a structured error rather than panicking.
func TestAlreadyCancelled(t *testing.T) {
	g := benchGraph(t, 5, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cfg := config(g, Constraints{})
	out, err := MultiStart(ctx, g, cfg, ParallelOptions{Workers: 2, Legs: 4})
	if err == nil {
		t.Fatal("fully skipped run returned no error")
	}
	if out.Report.LegsSkipped != 4 {
		t.Errorf("LegsSkipped = %d, want 4", out.Report.LegsSkipped)
	}
	if !out.Report.Partial {
		t.Error("fully skipped run not marked partial")
	}

	// Sequential algorithms return an empty partial result instead.
	res, err := Random(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Best != nil {
		t.Errorf("pre-cancelled Random: Partial=%v Best=%v, want true, nil", res.Partial, res.Best)
	}
}
