// Package partition implements the partitioning task of §1/§3: searching
// for a mapping of SLIF functional objects onto an allocated set of system
// components that satisfies size, pin, performance and bitrate constraints.
//
// The cost function is a SpecSyn-style normalized constraint-violation sum,
// with an optional communication term so the search has a direction once
// feasibility is reached. Every candidate partition is evaluated with the
// §3 equations — fast enough, thanks to SLIF's preprocessing, that the
// algorithms here really do "explore thousands of possible designs" (§5).
package partition

import (
	"fmt"
	"sync"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/faultinject"
)

// Constraints carries design constraints beyond the per-component size/pin
// constraints stored on the components themselves.
type Constraints struct {
	// Deadline is the maximum execution time (µs) per process node name.
	Deadline map[string]float64
	// MaxBusRate is the maximum bitrate (bits/µs) per bus name.
	MaxBusRate map[string]float64
}

// Weights scales each violation class in the cost. A zero weight disables
// the class.
type Weights struct {
	Size float64 // component size constraint excess
	Pins float64 // component pin constraint excess
	Time float64 // process deadline excess
	Rate float64 // bus bitrate excess
	Comm float64 // secondary objective: fraction of traffic crossing components
}

// DefaultWeights weight all violation classes equally, with a small
// communication term to order feasible partitions.
func DefaultWeights() Weights {
	return Weights{Size: 1, Pins: 1, Time: 1, Rate: 1, Comm: 0.1}
}

// Evaluator computes the cost of partitions over one graph. It counts
// evaluations, which the benchmarks report as "designs explored".
//
// An Evaluator is stateful (evaluation counter, pooled estimator) and must
// not be shared between goroutines; give each worker its own Clone.
// EstOpt is captured by the pooled estimator on the first Cost call and
// must not change afterwards.
type Evaluator struct {
	G      *core.Graph
	Cons   Constraints
	W      Weights
	EstOpt estimate.Options

	// Hook, when non-nil, fires before every cost evaluation — the
	// fault-injection seam. Production runs leave it nil, which costs a
	// single predicted branch per evaluation. The parallel engine derives
	// per-leg hooks from it via ForLeg; a hook used sequentially must be
	// single-goroutine (evaluators are anyway).
	Hook faultinject.Hook

	Evals int

	totalTraffic float64             // Σ freq×bits over non-port channels, for Comm normalization
	est          *estimate.Estimator // pooled, rebound per evaluation
	delta        *DeltaEval          // pooled incremental evaluator (see Delta)
	deltaErr     error               // sticky: graph does not support incremental evaluation
	shared       *evalShared         // snapshot + dependency index, shared by all clones
}

// evalShared is the read-only compiled state an evaluator and all its
// clones share: the graph's Snapshot and dependency index, built once
// under a sync.Once so a parallel fleet of workers pays for compilation
// a single time and every clone's delta evaluator shrinks to scratch
// arrays over the one shared copy.
type evalShared struct {
	once sync.Once
	deps *estimate.Deps
	err  error
}

// NewEvaluator returns an evaluator for g.
func NewEvaluator(g *core.Graph, cons Constraints, w Weights, estOpt estimate.Options) *Evaluator {
	ev := &Evaluator{G: g, Cons: cons, W: w, EstOpt: estOpt, shared: &evalShared{}}
	for _, c := range g.Channels {
		if _, isPort := c.Dst.(*core.Port); isPort {
			// Port traffic is external under every partition, and the Comm
			// term skips it; keeping it out of the normalizer too makes the
			// term a true fraction of the traffic a partition can affect.
			continue
		}
		ev.totalTraffic += c.AccFreq * float64(c.Bits)
	}
	return ev
}

// Clone returns an evaluator over the same graph, constraints, weights and
// options but with its own evaluation counter and estimator pool — the
// per-worker instance the parallel search engine hands each goroutine.
// The compiled Snapshot and dependency index are shared with the original
// (they are immutable), so cloning is cheap no matter the graph size.
func (ev *Evaluator) Clone() *Evaluator {
	shared := ev.shared
	if shared == nil {
		// A literal-constructed prototype: give the clone its own shared
		// state rather than racing to lazily install one on the original.
		shared = &evalShared{}
	}
	return &Evaluator{
		G: ev.G, Cons: ev.Cons, W: ev.W, EstOpt: ev.EstOpt, Hook: ev.Hook,
		totalTraffic: ev.totalTraffic, shared: shared,
	}
}

// UseDeps pre-seeds the evaluator's shared compiled state with a
// dependency index already built for ev.G — typically served by an
// estimate.DepsCache that survives interactive reloads, so a search after
// an unchanged (or incrementally patched) rebuild skips recompilation.
// Call it before the first Cost/Snapshot use; once the shared state is
// populated the call is a no-op. deps must have been built from ev.G.
func (ev *Evaluator) UseDeps(deps *estimate.Deps) {
	if deps == nil {
		return
	}
	if ev.shared == nil {
		ev.shared = &evalShared{}
	}
	ev.shared.once.Do(func() { ev.shared.deps = deps })
}

// sharedDeps returns the evaluator's shared dependency index (and with it
// the compiled snapshot), building it on first use. Safe to call from any
// clone concurrently; the build happens once.
func (ev *Evaluator) sharedDeps() (*estimate.Deps, error) {
	if ev.shared == nil {
		ev.shared = &evalShared{}
	}
	ev.shared.once.Do(func() {
		ev.shared.deps, ev.shared.err = estimate.NewDeps(ev.G)
	})
	return ev.shared.deps, ev.shared.err
}

// Snapshot returns the graph's compiled snapshot, shared read-only across
// the evaluator and every clone. It errors when the graph cannot be
// compiled or its access graph is recursive (no dependency index exists).
func (ev *Evaluator) Snapshot() (*core.Snapshot, error) {
	deps, err := ev.sharedDeps()
	if err != nil {
		return nil, err
	}
	return deps.Snapshot(), nil
}

// estimator returns the pooled estimator rebound to pt.
func (ev *Evaluator) estimator(pt *core.Partition) *estimate.Estimator {
	if ev.est == nil {
		ev.est = estimate.New(ev.G, pt, ev.EstOpt)
	} else {
		ev.est.Rebind(pt)
	}
	return ev.est
}

// excess returns the normalized amount by which val exceeds limit; 0 when
// within the limit or unconstrained (limit <= 0).
func excess(val, limit float64) float64 {
	if limit <= 0 || val <= limit {
		return 0
	}
	return (val - limit) / limit
}

// Cost evaluates the partition. A cost of 0 means every constraint is met
// and no weighted secondary objective applies; lower is better. Partitions
// the estimator cannot evaluate (missing weights, unmapped objects) return
// an error.
func (ev *Evaluator) Cost(pt *core.Partition) (float64, error) {
	return ev.costWith(pt, ev.W)
}

// costWith evaluates pt under an explicit weight set, so callers can vary
// weights (Feasible disables Comm) without mutating shared state.
func (ev *Evaluator) costWith(pt *core.Partition, w Weights) (float64, error) {
	if ev.Hook != nil {
		if err := ev.Hook.BeforeEval(); err != nil {
			return 0, err
		}
	}
	ev.Evals++
	est := ev.estimator(pt)
	var cost float64

	for _, comp := range ev.G.Components() {
		size, err := est.Size(comp)
		if err != nil {
			return 0, err
		}
		switch c := comp.(type) {
		case *core.Processor:
			cost += w.Size * excess(size, c.SizeCon)
			cost += w.Pins * excess(float64(est.IO(comp)), float64(c.PinCon))
		case *core.Memory:
			cost += w.Size * excess(size, c.SizeCon)
		}
	}

	if w.Time > 0 {
		for _, p := range ev.G.Processes() {
			limit, ok := ev.Cons.Deadline[p.Name]
			if !ok {
				continue
			}
			et, err := est.Exectime(p)
			if err != nil {
				return 0, err
			}
			cost += w.Time * excess(et, limit)
		}
	}

	if w.Rate > 0 {
		for _, b := range ev.G.Buses {
			limit, ok := ev.Cons.MaxBusRate[b.Name]
			if !ok {
				continue
			}
			rate, err := est.BusBitrate(b)
			if err != nil {
				return 0, err
			}
			cost += w.Rate * excess(rate, limit)
		}
	}

	if w.Comm > 0 && ev.totalTraffic > 0 {
		var cut float64
		for _, c := range ev.G.Channels {
			if _, isPort := c.Dst.(*core.Port); isPort {
				continue // external traffic is cut under every partition
			}
			src, dst := pt.BvComp(c.Src), pt.DstComp(c)
			if src == nil || dst == nil {
				continue // an unmapped endpoint is not attributable to a cut
			}
			if src != dst {
				cut += c.AccFreq * float64(c.Bits)
			}
		}
		cost += w.Comm * cut / ev.totalTraffic
	}

	return cost, nil
}

// Feasible reports whether the partition meets every hard constraint
// (i.e. cost with the communication term disabled is zero). It evaluates
// with a value copy of the weights: ev.W is never written, so Feasible
// cannot skew an interleaved Cost call or race with one.
func (ev *Evaluator) Feasible(pt *core.Partition) (bool, error) {
	w := ev.W
	w.Comm = 0
	cost, err := ev.costWith(pt, w)
	if err != nil {
		return false, err
	}
	return cost == 0, nil
}

// Allowed returns the components a node may map to: processors for
// behaviors; processors and memories for variables — restricted to
// components whose type the node has weights for.
func Allowed(g *core.Graph, n *core.Node) []core.Component {
	var out []core.Component
	for _, p := range g.Procs {
		if _, ok := n.ICT[p.TypeName]; ok {
			out = append(out, p)
		}
	}
	if !n.IsBehavior() {
		for _, m := range g.Mems {
			if _, ok := n.ICT[m.TypeName]; ok {
				out = append(out, m)
			}
		}
	}
	return out
}

// BusPolicy derives the channel→bus mapping from the node mapping. The
// paper treats channel mapping as part of the partition; in practice tools
// re-derive it after each node move, which is what the algorithms here do.
//
// A policy must be endpoint-local: its choice for a channel may depend
// only on that channel and the mapping of the channel's own endpoints.
// The incremental delta evaluator relies on this to re-derive only the
// channels incident to a moved node (SingleBus and InternalExternal both
// qualify). A policy that inspects unrelated nodes needs Config.FullEval.
type BusPolicy func(pt *core.Partition, c *core.Channel) *core.Bus

// SingleBus maps every channel to one bus.
func SingleBus(b *core.Bus) BusPolicy {
	return func(*core.Partition, *core.Channel) *core.Bus { return b }
}

// InternalExternal maps component-internal channels to the internal bus and
// component-crossing (or port) channels to the external bus.
func InternalExternal(internal, external *core.Bus) BusPolicy {
	return func(pt *core.Partition, c *core.Channel) *core.Bus {
		if dst := pt.DstComp(c); dst != nil && dst == pt.BvComp(c.Src) {
			return internal
		}
		return external
	}
}

// ApplyBusPolicy rewrites the partition's channel mapping per the policy.
func ApplyBusPolicy(pt *core.Partition, policy BusPolicy) error {
	for _, c := range pt.Graph().Channels {
		b := policy(pt, c)
		if b == nil {
			return fmt.Errorf("partition: bus policy returned nil for channel %s", c.Key())
		}
		pt.AssignChan(c, b)
	}
	return nil
}

// IndexedPolicy is the snapshot-native form of a BusPolicy: it derives the
// bus ID for channel ci from the assignment vector alone — no Partition,
// no pointers, no map lookups — so the delta evaluator's trial moves and
// SnapRandom's candidate loop stay pure array work. The same
// endpoint-local contract applies: the choice may depend only on the
// channel and its endpoints' mapping. Set one in Config.IdxPolicy as the
// indexed twin of Config.Policy; it must derive the same bus (by ID) that
// the pointer policy derives, or the differential guarantees are void.
type IndexedPolicy func(s *core.Snapshot, a *core.Assignment, ci int32) int32

// SingleBusIdx is SingleBus in indexed form: every channel on b. The bus
// is resolved against g once, up front; a bus outside g yields a policy
// that always returns -1, which the evaluator reports as an error.
func SingleBusIdx(g *core.Graph, b *core.Bus) IndexedPolicy {
	bi := int32(-1)
	for i, x := range g.Buses {
		if x == b {
			bi = int32(i)
			break
		}
	}
	return func(*core.Snapshot, *core.Assignment, int32) int32 { return bi }
}

// InternalExternalIdx is InternalExternal in indexed form:
// component-internal channels on the internal bus, component-crossing (or
// port) channels on the external bus.
func InternalExternalIdx(g *core.Graph, internal, external *core.Bus) IndexedPolicy {
	ii, ei := int32(-1), int32(-1)
	for i, x := range g.Buses {
		if x == internal {
			ii = int32(i)
		}
		if x == external {
			ei = int32(i)
		}
	}
	return func(s *core.Snapshot, a *core.Assignment, ci int32) int32 {
		if di := s.ChanDst[ci]; di >= 0 {
			if dc := a.NodeComp[di]; dc >= 0 && dc == a.NodeComp[s.ChanSrc[ci]] {
				return ii
			}
		}
		return ei
	}
}
