package partition

// The delta evaluator: incremental cost estimation for single-node moves.
//
// Evaluator.Cost re-walks every component, process, bus and channel per
// candidate — O(graph) — even when the candidate differs from the previous
// one by a single object move. DeltaEval instead materializes every sum
// the cost function reads (per-component size and IO, per-bus bitrate,
// the cut-traffic total, per-node Exectime) and updates only the entries
// a move touches: O(degree of the moved node + its dependent region).
// That makes a move trial "a matter of table lookups and sums" (§4) and
// is what lets the searches explore thousands of designs per second on
// graphs where a full re-estimate would dominate.
//
// Since the snapshot refactor the evaluator's working state is a flat
// core.Assignment vector over the graph's compiled core.Snapshot: a trial
// move is int32 stores and array sums, with no partition-map or
// annotation-map access on the hot path at all. The bound Partition is the
// caller-visible mirror — trials never touch it when an IndexedPolicy is
// installed (commits write through), and under a pointer BusPolicy trials
// touch only its node mapping, which the policy is allowed to read.
//
// Correctness discipline: the full recompute stays the oracle. Integer
// sums (cut counts, IO widths) are maintained exactly; floating-point
// sums (sizes, bitrates, cut traffic) drift by one rounding error per
// inverse update, so they are re-derived from scratch — in the oracle's
// summation order — every deltaRefreshInterval moves and on every Cost
// call. Exectime values are recomputed from scratch per affected node
// (estimate.Incr), so they carry no incremental drift at all.

import (
	"fmt"
	"math"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
)

// deltaRefreshInterval is how many incremental updates the evaluator
// applies between full re-derivations of its floating-point sums. Each
// trial or commit perturbs a sum by add/subtract pairs that do not cancel
// exactly in floating point; re-deriving every few dozen moves keeps the
// accumulated drift orders of magnitude below the 1e-9 the differential
// tests (and reasonable callers) care about, while amortizing the
// O(graph) refresh to a negligible per-move cost.
const deltaRefreshInterval = 64

// DeltaEval is the incremental counterpart of Evaluator.Cost for
// single-node moves. Obtain one with Evaluator.Delta; it is pooled on the
// evaluator and rebound per search, and like the evaluator it must not be
// shared between goroutines (the Snapshot and Deps it reads are shared;
// its scratch arrays are not).
//
// MoveCost and Cost fire the evaluator's fault-injection hook and count
// one evaluation each, exactly like Evaluator.Cost; Apply and Undo are
// bookkeeping and count nothing.
type DeltaEval struct {
	ev     *Evaluator
	deps   *estimate.Deps
	snap   *core.Snapshot
	incr   *estimate.Incr
	pt     *core.Partition
	policy BusPolicy
	ipol   IndexedPolicy
	w      Weights // captured at Rebind; see Evaluator's EstOpt contract

	// Static tables, built once per evaluator. Object pointers are kept
	// only to translate between the caller's pointer world and the
	// snapshot's ID world at the API boundary.
	comps   []core.Component
	compIdx map[core.Component]int32
	buses   []*core.Bus
	busIdx  map[*core.Bus]int32
	chans   []*core.Channel
	chVol   []float64 // AccFreq × Bits (Comm-term traffic); 0 for port channels
	chRVol  []float64 // mode freq × Bits (bitrate volume)
	dlNode  []int32   // deadline-constrained processes, in Processes order
	dlLimit []float64
	rateBus []int32 // bitrate-constrained buses, in g.Buses order
	rateLim []float64

	// Dynamic state for the bound partition: the assignment vector is the
	// source of truth; everything below it is sums derived from it.
	asg     *core.Assignment
	chBr    []float64 // last-computed bitrate per channel (rate-tracked buses)
	chBad   []bool    // channel has traffic but zero source Exectime
	hasRate []bool    // bus participates in the Rate term (constrained, W.Rate > 0)
	sizeSum []float64 // per component
	ioSum   []int32   // per component: Σ widths of buses with a cut channel
	cutCnt  []int32   // comp × bus: cut channels of comp on bus
	busRate []float64 // per bus
	badCnt  []int32   // per bus: channels with chBad set
	cut     float64   // Σ chVol over component-crossing channels

	sinceRefresh int
	undoNode     int32
	undoComp     int32
	undoNode2    int32 // swap partner (undoIsSwap only)
	undoComp2    int32
	undoIsSwap   bool
	hasUndo      bool
	broken       bool // a move failed midway; sums are unreliable
}

// Delta returns the evaluator's pooled incremental evaluator, bound to pt
// with its channel mapping (re)derived by policy — the same derivation
// evalWith performs, written through to pt. It returns an error when the
// graph does not support incremental evaluation (recursive access graph,
// non-positive bus width — the error is sticky) or when pt is not a
// complete, estimable mapping; callers then fall back to full recompute,
// which reports such states with precise diagnostics or, per its
// semantics, tolerates them.
func (ev *Evaluator) Delta(pt *core.Partition, policy BusPolicy) (*DeltaEval, error) {
	if ev.deltaErr != nil {
		return nil, ev.deltaErr
	}
	if ev.delta == nil {
		d, err := newDeltaEval(ev)
		if err != nil {
			ev.deltaErr = err
			return nil, err
		}
		ev.delta = d
	}
	if err := ev.delta.Rebind(pt, policy); err != nil {
		return nil, err
	}
	return ev.delta, nil
}

// newDeltaEval builds the partition-independent tables. The dependency
// index and compiled snapshot come from the evaluator's shared state, so
// every clone in a parallel fleet reuses one copy.
func newDeltaEval(ev *Evaluator) (*DeltaEval, error) {
	deps, err := ev.sharedDeps()
	if err != nil {
		return nil, err
	}
	g := ev.G
	for _, b := range g.Buses {
		// The full estimator only trips over a degenerate bus when a
		// deadline forces an Exectime through it; incremental evaluation
		// computes every Exectime up front and would diverge, so refuse.
		if b.BitWidth <= 0 {
			return nil, fmt.Errorf("partition: bus %q has non-positive bitwidth %d", b.Name, b.BitWidth)
		}
	}
	snap := deps.Snapshot()
	nc, nb, nch := snap.NumComps(), snap.NumBuses(), snap.NumChans()
	d := &DeltaEval{
		ev:      ev,
		deps:    deps,
		snap:    snap,
		incr:    estimate.NewIncr(deps, ev.EstOpt),
		comps:   g.Components(),
		compIdx: make(map[core.Component]int32, nc),
		buses:   g.Buses,
		busIdx:  make(map[*core.Bus]int32, nb),
		chans:   g.Channels,
		chVol:   make([]float64, nch),
		chRVol:  make([]float64, nch),
		asg:     core.NewAssignment(snap),
		chBr:    make([]float64, nch),
		chBad:   make([]bool, nch),
		hasRate: make([]bool, nb),
		sizeSum: make([]float64, nc),
		ioSum:   make([]int32, nc),
		cutCnt:  make([]int32, nc*nb),
		busRate: make([]float64, nb),
		badCnt:  make([]int32, nb),
	}
	for i, c := range d.comps {
		d.compIdx[c] = int32(i)
	}
	for i, b := range g.Buses {
		d.busIdx[b] = int32(i)
	}
	for ci, c := range g.Channels {
		if snap.ChanDst[ci] >= 0 {
			d.chVol[ci] = c.AccFreq * float64(c.Bits)
		}
		d.chRVol[ci] = ev.EstOpt.Freq(c) * float64(c.Bits)
	}
	for _, p := range g.Processes() {
		limit, ok := ev.Cons.Deadline[p.Name]
		if !ok {
			continue
		}
		ni, _ := deps.Index(p)
		d.dlNode = append(d.dlNode, ni)
		d.dlLimit = append(d.dlLimit, limit)
	}
	for bi, b := range g.Buses {
		limit, ok := ev.Cons.MaxBusRate[b.Name]
		if !ok {
			continue
		}
		d.rateBus = append(d.rateBus, int32(bi))
		d.rateLim = append(d.rateLim, limit)
	}
	return d, nil
}

// Rebind points the evaluator at a partition and bus policy, applies the
// policy to every channel (writing the derivation through to pt), and
// re-derives every sum — O(graph), paid once per search, not per move.
// Rebind clears any installed IndexedPolicy; reinstall it afterwards.
func (d *DeltaEval) Rebind(pt *core.Partition, policy BusPolicy) error {
	d.pt, d.policy, d.ipol = pt, policy, nil
	d.broken, d.hasUndo, d.undoIsSwap = false, false, false
	d.w = d.ev.W
	for i := range d.hasRate {
		d.hasRate[i] = false
	}
	if d.w.Rate > 0 {
		for _, bi := range d.rateBus {
			d.hasRate[bi] = true
		}
	}
	for i, n := range d.ev.G.Nodes {
		c := pt.BvComp(n)
		if c == nil {
			return fmt.Errorf("partition: node %q is unmapped", n.Name)
		}
		ci, ok := d.compIdx[c]
		if !ok {
			return fmt.Errorf("partition: node %q is mapped to a component outside the graph", n.Name)
		}
		d.asg.NodeComp[i] = ci
	}
	for ci, c := range d.chans {
		b := policy(pt, c)
		if b == nil {
			return fmt.Errorf("partition: bus policy returned nil for channel %s", c.Key())
		}
		bi, ok := d.busIdx[b]
		if !ok {
			return fmt.Errorf("partition: bus policy returned a bus outside the graph for channel %s", c.Key())
		}
		d.asg.ChanBus[ci] = bi
		pt.AssignChan(c, b)
	}
	if err := d.incr.Bind(d.asg); err != nil {
		return err
	}
	return d.refresh()
}

// UseIndexedPolicy installs the snapshot-native form of the bound bus
// policy. It MUST derive the same bus for every channel as the BusPolicy
// the evaluator was rebound with — it is a faster expression of the same
// policy, not an override. With it installed, trial moves (MoveCost) run
// entirely on the assignment vector and never touch the bound Partition;
// commits still write through. Rebind clears it. Installing nil reverts
// to the pointer policy.
func (d *DeltaEval) UseIndexedPolicy(p IndexedPolicy) { d.ipol = p }

// Partition returns the partition the evaluator is bound to.
func (d *DeltaEval) Partition() *core.Partition { return d.pt }

// refresh re-derives every floating-point sum from scratch, in the same
// summation order the full recompute uses, resetting accumulated drift.
// The integer sums (cutCnt, ioSum, badCnt) are re-derived too, though
// incremental maintenance keeps those exact anyway.
func (d *DeltaEval) refresh() error {
	for i := range d.sizeSum {
		d.sizeSum[i] = 0
		d.ioSum[i] = 0
	}
	for i := range d.cutCnt {
		d.cutCnt[i] = 0
	}
	for i := range d.busRate {
		d.busRate[i] = 0
		d.badCnt[i] = 0
	}
	d.cut = 0
	s := d.snap
	nc := s.NumComps()
	for i, ci := range d.asg.NodeComp {
		w := s.Size[i*nc+int(ci)]
		if math.IsNaN(w) {
			return fmt.Errorf("estimate: node %q has no size weight for component type %q", s.NodeNames[i], s.TypeNames[s.CompType[ci]])
		}
		d.sizeSum[ci] += w
	}
	for ci := 0; ci < s.NumChans(); ci++ {
		src := d.asg.NodeComp[s.ChanSrc[ci]]
		bi := d.asg.ChanBus[ci]
		if di := s.ChanDst[ci]; di < 0 {
			d.incCut(src, bi)
		} else if dc := d.asg.NodeComp[di]; dc != src {
			d.incCut(src, bi)
			d.incCut(dc, bi)
			d.cut += d.chVol[ci]
		}
		d.chBr[ci], d.chBad[ci] = 0, false
		if d.hasRate[bi] {
			br, bad := d.bitrate(ci)
			d.chBr[ci], d.chBad[ci] = br, bad
			if bad {
				d.badCnt[bi]++
			} else {
				d.busRate[bi] += br
			}
		}
	}
	d.sinceRefresh = 0
	return nil
}

func (d *DeltaEval) refreshIfDue() error {
	if d.sinceRefresh < deltaRefreshInterval {
		return nil
	}
	if err := d.refresh(); err != nil {
		d.broken = true
		return err
	}
	return nil
}

// bitrate evaluates eq. 2 for one channel from the current Exectime of
// its source. bad reports non-zero traffic from a zero-Exectime source,
// which the full estimator treats as an error.
func (d *DeltaEval) bitrate(ci int) (br float64, bad bool) {
	vol := d.chRVol[ci]
	if vol == 0 {
		return 0, false
	}
	et := d.incr.Et(d.snap.ChanSrc[ci])
	if et == 0 {
		return 0, true
	}
	return vol / et, false
}

// incCut records one more cut channel of component comp on bus; the first
// one adds the bus to the component's IO (eq. 6).
func (d *DeltaEval) incCut(comp, bus int32) {
	k := int(comp)*len(d.buses) + int(bus)
	if d.cutCnt[k] == 0 {
		d.ioSum[comp] += d.snap.BusWidth[bus]
	}
	d.cutCnt[k]++
}

func (d *DeltaEval) decCut(comp, bus int32) {
	k := int(comp)*len(d.buses) + int(bus)
	d.cutCnt[k]--
	if d.cutCnt[k] == 0 {
		d.ioSum[comp] -= d.snap.BusWidth[bus]
	}
}

// detachCut removes channel ci's contribution to the cut counts, IO sums
// and cut traffic, under the current assignment.
func (d *DeltaEval) detachCut(ci int32) {
	bi := d.asg.ChanBus[ci]
	src := d.asg.NodeComp[d.snap.ChanSrc[ci]]
	if di := d.snap.ChanDst[ci]; di < 0 {
		d.decCut(src, bi)
	} else if dc := d.asg.NodeComp[di]; dc != src {
		d.decCut(src, bi)
		d.decCut(dc, bi)
		d.cut -= d.chVol[ci]
	}
}

func (d *DeltaEval) attachCut(ci int32) {
	bi := d.asg.ChanBus[ci]
	src := d.asg.NodeComp[d.snap.ChanSrc[ci]]
	if di := d.snap.ChanDst[ci]; di < 0 {
		d.incCut(src, bi)
	} else if dc := d.asg.NodeComp[di]; dc != src {
		d.incCut(src, bi)
		d.incCut(dc, bi)
		d.cut += d.chVol[ci]
	}
}

// rederive re-applies the bus policy to the given channel IDs (the ones
// incident to a moved node — the only ones an endpoint-local policy can
// change), updating the assignment vector. With an IndexedPolicy this is
// pure array work; under a pointer policy the policy reads the bound
// partition's node mapping (which move keeps current).
func (d *DeltaEval) rederive(chs []int32) error {
	if d.ipol != nil {
		nb := int32(d.snap.NumBuses())
		for _, ci := range chs {
			bi := d.ipol(d.snap, d.asg, ci)
			if bi < 0 || bi >= nb {
				return fmt.Errorf("partition: indexed bus policy returned bus %d out of range for channel %s", bi, d.snap.ChanKey(ci))
			}
			d.asg.ChanBus[ci] = bi
		}
		return nil
	}
	for _, ci := range chs {
		c := d.chans[ci]
		b := d.policy(d.pt, c)
		if b == nil {
			return fmt.Errorf("partition: bus policy returned nil for channel %s", c.Key())
		}
		bi, ok := d.busIdx[b]
		if !ok {
			return fmt.Errorf("partition: bus policy returned a bus outside the graph for channel %s", c.Key())
		}
		d.asg.ChanBus[ci] = bi
	}
	return nil
}

// move transitions the assignment vector and every sum from "ni on its
// current component" to "ni on toIdx". Validation that can fail happens
// before any sum is touched; a failure after mutation begins (a policy
// misbehaving mid-move) marks the evaluator broken. With an IndexedPolicy
// the bound Partition is untouched; under a pointer policy only its node
// mapping is updated (so the policy sees the move), which the inverse
// move restores — commits make the partition fully current via syncNode.
func (d *DeltaEval) move(ni, toIdx int32) error {
	fromIdx := d.asg.NodeComp[ni]
	if toIdx == fromIdx {
		return nil
	}
	s := d.snap
	nc := s.NumComps()
	wTo := s.Size[int(ni)*nc+int(toIdx)]
	if math.IsNaN(wTo) {
		return fmt.Errorf("estimate: node %q has no size weight for component type %q", s.NodeNames[ni], s.TypeNames[s.CompType[toIdx]])
	}
	if math.IsNaN(s.ICT[int(ni)*nc+int(toIdx)]) {
		return fmt.Errorf("estimate: node %q has no ict weight for component type %q", s.NodeNames[ni], s.TypeNames[s.CompType[toIdx]])
	}
	if s.NodeKind[ni] == core.BehaviorNode && s.IsMem(toIdx) {
		// Same rule, and same message, as Partition.Assign.
		return fmt.Errorf("partition: behavior %q may only map to a processor, not %q", s.NodeNames[ni], s.CompNames[toIdx])
	}
	if d.ipol == nil {
		// The pointer policy reads pt's node mapping during rederive.
		// The checks above are exactly Assign's, so this cannot fail.
		_ = d.pt.Assign(d.ev.G.Nodes[ni], d.comps[toIdx])
	}

	aff := d.deps.Affected(ni)
	// Detach: cut/IO/traffic contributions of the channels touching n
	// (under the old buses and components) ...
	for _, ci := range s.Out(ni) {
		d.detachCut(ci)
	}
	for _, ci := range s.In(ni) {
		d.detachCut(ci)
	}
	// ... and the bitrate of every channel whose source Exectime is about
	// to change (the incident channels' sources are all in aff).
	for _, ai := range aff {
		for _, ci := range s.Out(ai) {
			if d.chBad[ci] {
				d.badCnt[d.asg.ChanBus[ci]]--
				d.chBad[ci] = false
			} else if d.hasRate[d.asg.ChanBus[ci]] {
				d.busRate[d.asg.ChanBus[ci]] -= d.chBr[ci]
			}
		}
	}

	// Swap the node itself.
	d.sizeSum[fromIdx] -= s.Size[int(ni)*nc+int(fromIdx)]
	d.sizeSum[toIdx] += wTo
	d.asg.NodeComp[ni] = toIdx

	// Reattach under the new mapping: incident buses first (the policy
	// sees the updated mapping), then the affected Exectimes
	// callee-first, then bitrates and cut sums.
	if err := d.rederive(s.Out(ni)); err != nil {
		d.broken = true
		return err
	}
	if err := d.rederive(s.In(ni)); err != nil {
		d.broken = true
		return err
	}
	if err := d.incr.RecomputeAffected(aff); err != nil {
		d.broken = true
		return err
	}
	for _, ai := range aff {
		for _, ci := range s.Out(ai) {
			bi := d.asg.ChanBus[ci]
			if !d.hasRate[bi] {
				continue
			}
			br, bad := d.bitrate(int(ci))
			d.chBr[ci], d.chBad[ci] = br, bad
			if bad {
				d.badCnt[bi]++
			} else {
				d.busRate[bi] += br
			}
		}
	}
	for _, ci := range s.Out(ni) {
		d.attachCut(ci)
	}
	for _, ci := range s.In(ni) {
		d.attachCut(ci)
	}
	d.sinceRefresh++
	return nil
}

// syncNode writes node ni's committed state — its component and the buses
// of its incident channels — through to the bound Partition, keeping the
// caller-visible mirror current after Apply/Undo. Only channels incident
// to the moved node can have changed under an endpoint-local policy.
func (d *DeltaEval) syncNode(ni int32) {
	_ = d.pt.Assign(d.ev.G.Nodes[ni], d.comps[d.asg.NodeComp[ni]])
	for _, ci := range d.snap.Out(ni) {
		d.pt.AssignChan(d.chans[ci], d.buses[d.asg.ChanBus[ci]])
	}
	for _, ci := range d.snap.In(ni) {
		d.pt.AssignChan(d.chans[ci], d.buses[d.asg.ChanBus[ci]])
	}
}

// costNow evaluates the cost function from the materialized sums — the
// same terms, in the same order, as Evaluator.costWith.
func (d *DeltaEval) costNow() (float64, error) {
	w := d.w
	s := d.snap
	var cost float64
	for ci := range d.sizeSum {
		size := d.sizeSum[ci]
		if s.IsMem(int32(ci)) {
			cost += w.Size * excess(size, s.CompSizeCon[ci])
			continue
		}
		if s.CompCustom[ci] && d.ev.EstOpt.SharingFactor > 0 {
			size *= 1 - d.ev.EstOpt.SharingFactor
		}
		cost += w.Size * excess(size, s.CompSizeCon[ci])
		cost += w.Pins * excess(float64(d.ioSum[ci]), float64(s.CompPinCon[ci]))
	}
	if w.Time > 0 {
		for k, ni := range d.dlNode {
			cost += w.Time * excess(d.incr.Et(ni), d.dlLimit[k])
		}
	}
	if w.Rate > 0 {
		for k, bi := range d.rateBus {
			if d.badCnt[bi] > 0 {
				return 0, fmt.Errorf("estimate: bus %q carries traffic from a source with zero execution time", s.BusNames[bi])
			}
			rate := d.busRate[bi]
			if d.ev.EstOpt.ClampBusBitrate {
				if capacity, ok := estimate.BusCapacity(d.buses[bi]); ok && rate > capacity {
					rate = capacity
				}
			}
			cost += w.Rate * excess(rate, d.rateLim[k])
		}
	}
	if w.Comm > 0 && d.ev.totalTraffic > 0 {
		cost += w.Comm * d.cut / d.ev.totalTraffic
	}
	return cost, nil
}

// beginEval fires the fault-injection hook and counts the evaluation —
// the same per-evaluation observable sequence as Evaluator.Cost, so
// budgets, injected faults and eval accounting are strategy-independent.
func (d *DeltaEval) beginEval() error {
	if d.broken {
		return fmt.Errorf("partition: delta evaluator is broken by an earlier failed move; Rebind it")
	}
	if d.ev.Hook != nil {
		if err := d.ev.Hook.BeforeEval(); err != nil {
			return err
		}
	}
	d.ev.Evals++
	return nil
}

// MoveCost returns the cost the bound partition would have with n moved
// to `to`, leaving the partition as it was: the move is applied, costed
// and inverted, all at O(degree). It counts as one evaluation.
func (d *DeltaEval) MoveCost(n *core.Node, to core.Component) (float64, error) {
	if err := d.beginEval(); err != nil {
		return 0, err
	}
	if err := d.refreshIfDue(); err != nil {
		return 0, err
	}
	ni, ok := d.deps.Index(n)
	if !ok {
		return 0, fmt.Errorf("partition: node %q is not in the evaluator's graph", n.Name)
	}
	toIdx, ok := d.compIdx[to]
	if !ok {
		return 0, fmt.Errorf("partition: component %q is not in the evaluator's graph", to.CompName())
	}
	fromIdx := d.asg.NodeComp[ni]
	if toIdx == fromIdx {
		return d.costNow()
	}
	if err := d.move(ni, toIdx); err != nil {
		return 0, err
	}
	cost, cerr := d.costNow()
	if err := d.move(ni, fromIdx); err != nil {
		d.broken = true // the forward move succeeded; its inverse cannot cleanly fail
		return 0, err
	}
	return cost, cerr
}

// Apply commits the move of n to `to` (a no-op if already there) and
// remembers it for Undo, writing the new state through to the bound
// Partition. It is bookkeeping, not an evaluation: no hook fires and no
// evaluation is counted, matching a search loop that trials with MoveCost
// and then commits the winner.
func (d *DeltaEval) Apply(n *core.Node, to core.Component) error {
	if d.broken {
		return fmt.Errorf("partition: delta evaluator is broken by an earlier failed move; Rebind it")
	}
	if err := d.refreshIfDue(); err != nil {
		return err
	}
	ni, ok := d.deps.Index(n)
	if !ok {
		return fmt.Errorf("partition: node %q is not in the evaluator's graph", n.Name)
	}
	toIdx, ok := d.compIdx[to]
	if !ok {
		return fmt.Errorf("partition: component %q is not in the evaluator's graph", to.CompName())
	}
	d.undoNode, d.undoComp, d.undoIsSwap, d.hasUndo = ni, d.asg.NodeComp[ni], false, true
	if err := d.move(ni, toIdx); err != nil {
		return err
	}
	d.syncNode(ni)
	return nil
}

// Undo reverts the most recent Apply or ApplySwap. Only one level is kept.
func (d *DeltaEval) Undo() error {
	if d.broken {
		return fmt.Errorf("partition: delta evaluator is broken by an earlier failed move; Rebind it")
	}
	if !d.hasUndo {
		return fmt.Errorf("partition: Undo without a preceding Apply")
	}
	d.hasUndo = false
	if d.undoIsSwap {
		d.undoIsSwap = false
		if err := d.move(d.undoNode2, d.undoComp2); err != nil {
			return err
		}
		d.syncNode(d.undoNode2)
	}
	if err := d.move(d.undoNode, d.undoComp); err != nil {
		return err
	}
	d.syncNode(d.undoNode)
	return nil
}

// swapIdx resolves a swap's endpoints to dense indices and their current
// components, rejecting nodes outside the evaluator's graph.
func (d *DeltaEval) swapIdx(a, b *core.Node) (ai, bi, ca, cb int32, err error) {
	ai, ok := d.deps.Index(a)
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("partition: node %q is not in the evaluator's graph", a.Name)
	}
	bi, ok = d.deps.Index(b)
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("partition: node %q is not in the evaluator's graph", b.Name)
	}
	return ai, bi, d.asg.NodeComp[ai], d.asg.NodeComp[bi], nil
}

// SwapCost returns the cost the bound partition would have with nodes a
// and b exchanging components, leaving the partition as it was. The
// exchange is composed of two single-node moves — each a correct O(degree
// + dependent region) transition of every sum, so their composition needs
// no special handling of channels the two nodes share — then inverted in
// reverse order. It counts as one evaluation, exactly like MoveCost. A
// degenerate swap (a == b, or both on one component) is costed as a no-op.
func (d *DeltaEval) SwapCost(a, b *core.Node) (float64, error) {
	if err := d.beginEval(); err != nil {
		return 0, err
	}
	if err := d.refreshIfDue(); err != nil {
		return 0, err
	}
	ai, bi, ca, cb, err := d.swapIdx(a, b)
	if err != nil {
		return 0, err
	}
	if ai == bi || ca == cb {
		return d.costNow()
	}
	if err := d.move(ai, cb); err != nil {
		return 0, err
	}
	if err := d.move(bi, ca); err != nil {
		// b cannot host a's component: roll a back. The inverse of a
		// completed move validates trivially, so a failure here means
		// the sums are no longer trustworthy.
		if rerr := d.move(ai, ca); rerr != nil {
			d.broken = true
			return 0, rerr
		}
		return 0, err
	}
	cost, cerr := d.costNow()
	if err := d.move(bi, cb); err != nil {
		d.broken = true
		return 0, err
	}
	if err := d.move(ai, ca); err != nil {
		d.broken = true
		return 0, err
	}
	return cost, cerr
}

// ApplySwap commits the exchange of a's and b's components and remembers
// it for Undo, writing the new state through to the bound Partition. Like
// Apply it is bookkeeping: no hook fires and no evaluation is counted. A
// degenerate swap commits nothing but still arms Undo (as a no-op).
func (d *DeltaEval) ApplySwap(a, b *core.Node) error {
	if d.broken {
		return fmt.Errorf("partition: delta evaluator is broken by an earlier failed move; Rebind it")
	}
	if err := d.refreshIfDue(); err != nil {
		return err
	}
	ai, bi, ca, cb, err := d.swapIdx(a, b)
	if err != nil {
		return err
	}
	d.undoNode, d.undoComp = ai, ca
	d.undoNode2, d.undoComp2 = bi, cb
	d.undoIsSwap, d.hasUndo = true, true
	if ai == bi || ca == cb {
		return nil
	}
	if err := d.move(ai, cb); err != nil {
		return err
	}
	if err := d.move(bi, ca); err != nil {
		if rerr := d.move(ai, ca); rerr != nil {
			d.broken = true
			return rerr
		}
		return err
	}
	d.syncNode(ai)
	d.syncNode(bi)
	return nil
}

// Cost counts one evaluation and returns the cost of the bound partition,
// re-deriving the floating-point sums first so the value carries no
// incremental drift (it matches the full recompute up to summation-order
// rounding).
func (d *DeltaEval) Cost() (float64, error) {
	if err := d.beginEval(); err != nil {
		return 0, err
	}
	if err := d.refresh(); err != nil {
		d.broken = true
		return 0, err
	}
	return d.costNow()
}

// costCandidate costs the current assignment vector from scratch: every
// channel's bus re-derived by the installed IndexedPolicy, every Exectime
// recomputed callee-first, every sum re-derived — O(graph), but pure array
// work with zero allocations and no Partition access, which is what lets
// SnapRandom cost thousands of whole candidate designs per second. It
// counts one evaluation. The bound Partition is NOT updated; callers own
// the assignment vector and materialize a Partition only for the winner.
func (d *DeltaEval) costCandidate() (float64, error) {
	if err := d.beginEval(); err != nil {
		return 0, err
	}
	nb := int32(d.snap.NumBuses())
	for ci := range d.asg.ChanBus {
		bi := d.ipol(d.snap, d.asg, int32(ci))
		if bi < 0 || bi >= nb {
			d.broken = true
			return 0, fmt.Errorf("partition: indexed bus policy returned bus %d out of range for channel %s", bi, d.snap.ChanKey(int32(ci)))
		}
		d.asg.ChanBus[ci] = bi
	}
	if err := d.incr.RecomputeAffected(d.deps.Order()); err != nil {
		d.broken = true
		return 0, err
	}
	if err := d.refresh(); err != nil {
		d.broken = true
		return 0, err
	}
	return d.costNow()
}
