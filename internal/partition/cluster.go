package partition

import (
	"context"
	"fmt"
	"math"

	"specsyn/internal/core"
)

// This file implements hierarchical clustering over the access graph — the
// kind of O(n²) algorithm the paper's §5 uses to argue format size matters:
// "if an n² algorithm is to be applied, then the SLIF-AG, VT or ADD, and
// CDFG formats would require 1225, 202500, and 1210000 computations".
// Closeness between two nodes is their communication volume (Σ freq×bits
// over connecting channels), the natural metric for partitioning: tightly
// communicating objects belong on the same component.

// Cluster is a set of node indices with a combined traffic total.
type Cluster struct {
	Nodes []*core.Node
}

// Closeness returns the pairwise closeness matrix of the graph's nodes —
// the O(n²) structure over which clustering runs. PairComputations reports
// how many pair computations that took (n² in the paper's accounting).
func Closeness(g *core.Graph) (matrix [][]float64, pairComputations int) {
	n := len(g.Nodes)
	index := make(map[*core.Node]int, n)
	for i, nd := range g.Nodes {
		index[nd] = i
	}
	matrix = make([][]float64, n)
	for i := range matrix {
		matrix[i] = make([]float64, n)
	}
	for _, c := range g.Channels {
		dst, ok := c.Dst.(*core.Node)
		if !ok {
			continue // port traffic has no partner node
		}
		i, j := index[c.Src], index[dst]
		if i == j {
			continue
		}
		v := c.AccFreq * float64(c.Bits)
		matrix[i][j] += v
		matrix[j][i] += v
	}
	return matrix, n * n
}

// HierarchicalClusters agglomerates the graph's nodes into k clusters by
// repeatedly merging the closest pair (average linkage). It returns the
// clusters and the number of pairwise computations performed — the
// quantity the §5 comparison reasons about.
func HierarchicalClusters(g *core.Graph, k int) ([]Cluster, int, error) {
	n := len(g.Nodes)
	if k < 1 || k > n {
		return nil, 0, fmt.Errorf("partition: cannot form %d clusters from %d nodes", k, n)
	}
	closeM, computations := Closeness(g)

	clusters := make([]Cluster, n)
	for i, nd := range g.Nodes {
		clusters[i] = Cluster{Nodes: []*core.Node{nd}}
	}
	// cl holds the live cluster indices; dist the inter-cluster closeness.
	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	dist := closeM // reuse: dist[i][j] between live clusters

	for alive := n; alive > k; alive-- {
		// Find the closest live pair.
		bi, bj, best := -1, -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if !live[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !live[j] {
					continue
				}
				computations++
				if dist[i][j] > best {
					bi, bj, best = i, j, dist[i][j]
				}
			}
		}
		if bi < 0 {
			break
		}
		// Merge bj into bi, average linkage.
		si, sj := float64(len(clusters[bi].Nodes)), float64(len(clusters[bj].Nodes))
		clusters[bi].Nodes = append(clusters[bi].Nodes, clusters[bj].Nodes...)
		live[bj] = false
		for t := 0; t < n; t++ {
			if !live[t] || t == bi {
				continue
			}
			dist[bi][t] = (dist[bi][t]*si + dist[bj][t]*sj) / (si + sj)
			dist[t][bi] = dist[bi][t]
		}
	}

	var out []Cluster
	for i := 0; i < n; i++ {
		if live[i] {
			out = append(out, clusters[i])
		}
	}
	return out, computations, nil
}

// ClusterGreedy partitions by first clustering the nodes to as many
// clusters as there are components, then assigning whole clusters to
// components greedily by cost. Clusters whose nodes cannot all live on the
// chosen component (behaviors on a memory) spill those nodes to their first
// allowed component. A cancelled or budget-exhausted run stops placing
// clusters and returns the complete mapping built so far with Partial set.
func ClusterGreedy(ctx context.Context, g *core.Graph, cfg Config) (Result, error) {
	start := cfg.Eval.Evals
	comps := g.Components()
	if len(comps) == 0 {
		return Result{}, fmt.Errorf("partition: graph has no components")
	}
	k := len(comps)
	if k > len(g.Nodes) {
		k = len(g.Nodes)
	}
	clusters, _, err := HierarchicalClusters(g, k)
	if err != nil {
		return Result{}, err
	}

	// Seed everything legal, then move cluster by cluster.
	pt := core.NewPartition(g)
	for _, n := range g.Nodes {
		cands := Allowed(g, n)
		if len(cands) == 0 {
			return Result{}, fmt.Errorf("partition: node %q has no candidate component", n.Name)
		}
		if err := pt.Assign(n, cands[0]); err != nil {
			return Result{}, err
		}
	}

	assignCluster := func(cl Cluster, comp core.Component) error {
		for _, n := range cl.Nodes {
			target := comp
			ok := false
			for _, cand := range Allowed(g, n) {
				if cand == comp {
					ok = true
					break
				}
			}
			if !ok {
				target = Allowed(g, n)[0]
			}
			if err := pt.Assign(n, target); err != nil {
				return err
			}
		}
		return nil
	}

	partial := false
	for _, cl := range clusters {
		if cancelled(ctx) || !cfg.budgetLeft(start) {
			partial = true
			break
		}
		bestCost := math.Inf(1)
		var bestComp core.Component
		for _, comp := range comps {
			if err := assignCluster(cl, comp); err != nil {
				return Result{}, err
			}
			cost, err := evalWith(cfg, pt)
			if err != nil {
				return Result{}, err
			}
			if cost < bestCost {
				bestCost, bestComp = cost, comp
			}
		}
		if err := assignCluster(cl, bestComp); err != nil {
			return Result{}, err
		}
	}
	cost, err := evalWith(cfg, pt)
	if err != nil {
		return Result{}, err
	}
	return Result{Best: pt, Cost: cost, Evals: cfg.Eval.Evals - start, Partial: partial}, nil
}
