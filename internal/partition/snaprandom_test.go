package partition

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
)

// idxPolicyFor returns the indexed twin of each deltaScenario's pointer
// policy, mirroring the single-bus / internal-external split the scenarios
// use.
func idxPolicyFor(sc deltaScenario) IndexedPolicy {
	if len(sc.graph.Buses) > 1 {
		return InternalExternalIdx(sc.graph, sc.graph.Buses[0], sc.graph.Buses[1])
	}
	return SingleBusIdx(sc.graph, sc.graph.Buses[0])
}

// TestDeltaMatchesOracleRandomMovesIndexed is the indexed-policy variant of
// the central differential test: with an IndexedPolicy installed, move
// trials never touch a Partition at all — the assignment vector and the
// compiled snapshot carry everything — yet every cost must still match the
// pointer-walking full recompute within 1e-9 over long trial/commit/undo
// sequences.
func TestDeltaMatchesOracleRandomMovesIndexed(t *testing.T) {
	const steps = 1200
	for _, sc := range deltaScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			g := sc.graph
			ev := NewEvaluator(g, sc.cons, sc.w, sc.opt)
			oracle := NewEvaluator(g, sc.cons, sc.w, sc.opt)
			policy := sc.policy(g)
			pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
			d, err := ev.Delta(pt, policy)
			if err != nil {
				t.Fatal(err)
			}
			d.UseIndexedPolicy(idxPolicyFor(sc))
			rng := rand.New(rand.NewSource(11))
			for step := 0; step < steps; step++ {
				n := g.Nodes[rng.Intn(len(g.Nodes))]
				cands := Allowed(g, n)
				to := cands[rng.Intn(len(cands))]

				got, err := d.MoveCost(n, to)
				if err != nil {
					t.Fatalf("step %d: MoveCost(%s→%s): %v", step, n.Name, to.CompName(), err)
				}
				trial := pt.Clone()
				if err := trial.Assign(n, to); err != nil {
					t.Fatal(err)
				}
				if err := ApplyBusPolicy(trial, policy); err != nil {
					t.Fatal(err)
				}
				want, err := oracle.Cost(trial)
				if err != nil {
					t.Fatalf("step %d: oracle: %v", step, err)
				}
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("step %d: MoveCost(%s→%s) = %.15g, oracle %.15g (Δ %g)",
						step, n.Name, to.CompName(), got, want, got-want)
				}

				switch r := rng.Float64(); {
				case r < 0.45:
					if err := d.Apply(n, to); err != nil {
						t.Fatalf("step %d: Apply: %v", step, err)
					}
				case r < 0.55:
					if err := d.Apply(n, to); err != nil {
						t.Fatalf("step %d: Apply: %v", step, err)
					}
					if err := d.Undo(); err != nil {
						t.Fatalf("step %d: Undo: %v", step, err)
					}
				}
				// Apply/Undo write the committed state through to pt, so the
				// pointer oracle must agree on it at any moment.
				if step%97 == 0 {
					got, err := d.Cost()
					if err != nil {
						t.Fatalf("step %d: Cost: %v", step, err)
					}
					want := oracleCost(t, oracle, pt, policy)
					if math.Abs(got-want) > 1e-9 {
						t.Fatalf("step %d: committed Cost = %.15g, oracle %.15g", step, got, want)
					}
				}
			}
			got, err := d.Cost()
			if err != nil {
				t.Fatal(err)
			}
			if want := oracleCost(t, oracle, pt, policy); math.Abs(got-want) > 1e-9 {
				t.Fatalf("final Cost = %.15g, oracle %.15g", got, want)
			}
		})
	}
}

// TestSnapRandomMatchesRandom: the snapshot-native explorer walks the same
// candidate enumeration as Random and must land on the same answer — cost
// within summation tolerance, evaluation count exactly equal, and a Best
// partition that recosts to the reported cost.
func TestSnapRandomMatchesRandom(t *testing.T) {
	for _, sc := range deltaScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			g := sc.graph
			mkCfg := func(indexed bool) Config {
				cfg := Config{
					Eval:     NewEvaluator(g, sc.cons, sc.w, sc.opt),
					Policy:   sc.policy(g),
					Seed:     42,
					MaxIters: 400,
				}
				if indexed {
					cfg.IdxPolicy = idxPolicyFor(sc)
				}
				return cfg
			}
			want, err := Random(context.Background(), g, mkCfg(false))
			if err != nil {
				t.Fatal(err)
			}
			cfg := mkCfg(true)
			got, err := SnapRandom(context.Background(), g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Cost-want.Cost) > 1e-9 {
				t.Errorf("SnapRandom cost = %.15g, Random = %.15g", got.Cost, want.Cost)
			}
			if got.Evals != want.Evals {
				t.Errorf("SnapRandom evals = %d, Random = %d", got.Evals, want.Evals)
			}
			fresh := NewEvaluator(g, sc.cons, sc.w, sc.opt)
			recost, err := fresh.Cost(got.Best)
			if err != nil {
				t.Fatalf("recost: %v", err)
			}
			if math.Abs(recost-got.Cost) > 1e-9 {
				t.Errorf("SnapRandom reported %.15g but Best recosts to %.15g", got.Cost, recost)
			}
		})
	}
}

// TestSnapRandomFallsBack: without an IdxPolicy (or with FullEval, or on a
// graph the incremental path refuses) SnapRandom must behave exactly like
// Random.
func TestSnapRandomFallsBack(t *testing.T) {
	cons := Constraints{Deadline: map[string]float64{"b0": 25}}
	g := benchGraph(t, 6, 3)
	base := config(g, cons)
	base.MaxIters = 100

	want, err := Random(context.Background(), g, config(g, cons))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"no-idx-policy", func(c *Config) {}},
		{"full-eval", func(c *Config) { c.IdxPolicy = SingleBusIdx(g, g.Buses[0]); c.FullEval = true }},
	} {
		cfg := config(g, cons)
		tc.mut(&cfg)
		got, err := SnapRandom(context.Background(), g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if math.Abs(got.Cost-want.Cost) > 1e-9 || got.Evals != want.Evals {
			t.Errorf("%s: SnapRandom = (%.15g, %d evals), Random = (%.15g, %d evals)",
				tc.name, got.Cost, got.Evals, want.Cost, want.Evals)
		}
	}

	// Cyclic graph: Delta refuses, SnapRandom falls back to Random's
	// full-recompute semantics.
	gc := benchGraph(t, 6, 3)
	if err := gc.AddChannel(&core.Channel{Src: gc.NodeByName("b5"), Dst: gc.NodeByName("b0"), AccFreq: 1, Bits: 8, Tag: core.NoTag}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Eval: NewEvaluator(gc, Constraints{}, DefaultWeights(), estimate.Options{}),
		Policy: SingleBus(gc.Buses[0]), IdxPolicy: SingleBusIdx(gc, gc.Buses[0]), Seed: 1}
	got, err := SnapRandom(context.Background(), gc, cfg)
	if err != nil {
		t.Fatalf("cyclic fallback: %v", err)
	}
	full := Config{Eval: NewEvaluator(gc, Constraints{}, DefaultWeights(), estimate.Options{}),
		Policy: SingleBus(gc.Buses[0]), Seed: 1, FullEval: true}
	wantC, err := Random(context.Background(), gc, full)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Cost-wantC.Cost) > 1e-9 || got.Evals != wantC.Evals {
		t.Errorf("cyclic fallback = (%.15g, %d evals), full Random = (%.15g, %d evals)",
			got.Cost, got.Evals, wantC.Cost, wantC.Evals)
	}
}

// TestParallelSnapRandomDeterministic: the sharded explorer returns
// bit-identical results at every worker count, equal to the sequential
// run.
func TestParallelSnapRandomDeterministic(t *testing.T) {
	cons := Constraints{
		Deadline:   map[string]float64{"b0": 25},
		MaxBusRate: map[string]float64{"bus": 8},
	}
	g := benchGraph(t, 8, 4)
	mkCfg := func() Config {
		cfg := config(g, cons)
		cfg.IdxPolicy = SingleBusIdx(g, g.Buses[0])
		cfg.Seed = 9
		cfg.MaxIters = 300
		return cfg
	}
	seq, err := SnapRandom(context.Background(), g, mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		res, err := ParallelSnapRandom(context.Background(), g, mkCfg(), ParallelOptions{Workers: workers, Legs: 4})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if math.Abs(res.Result.Cost-seq.Cost) > 1e-12 {
			t.Errorf("workers=%d: cost %.15g, sequential %.15g", workers, res.Result.Cost, seq.Cost)
		}
		if res.Result.Evals != seq.Evals {
			t.Errorf("workers=%d: evals %d, sequential %d", workers, res.Result.Evals, seq.Evals)
		}
		for _, n := range g.Nodes {
			if res.Result.Best.BvComp(n) != seq.Best.BvComp(n) {
				t.Errorf("workers=%d: node %s on %v, sequential %v", workers, n.Name,
					res.Result.Best.BvComp(n).CompName(), seq.Best.BvComp(n).CompName())
			}
		}
	}
}

// TestSnapshotSharedAcrossClones pins the fleet-sharing contract: every
// clone of an evaluator compiles the design exactly once and hands out the
// same read-only *core.Snapshot, and concurrent incremental evaluation on
// sibling clones is race-free (this test is the -race CI target).
func TestSnapshotSharedAcrossClones(t *testing.T) {
	g := benchGraph(t, 8, 4)
	ev := NewEvaluator(g, Constraints{Deadline: map[string]float64{"b0": 25}}, DefaultWeights(), estimate.Options{})
	s0, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	clones := make([]*Evaluator, workers)
	for i := range clones {
		clones[i] = ev.Clone()
		si, err := clones[i].Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if si != s0 {
			t.Fatalf("clone %d compiled its own snapshot", i)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(ev *Evaluator, seed int64) {
			defer wg.Done()
			pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
			d, err := ev.Delta(pt, SingleBus(g.Buses[0]))
			if err != nil {
				t.Error(err)
				return
			}
			d.UseIndexedPolicy(SingleBusIdx(g, g.Buses[0]))
			rng := rand.New(rand.NewSource(seed))
			for step := 0; step < 300; step++ {
				n := g.Nodes[rng.Intn(len(g.Nodes))]
				cands := Allowed(g, n)
				to := cands[rng.Intn(len(cands))]
				if _, err := d.MoveCost(n, to); err != nil {
					t.Errorf("seed %d step %d: %v", seed, step, err)
					return
				}
				if rng.Float64() < 0.3 {
					if err := d.Apply(n, to); err != nil {
						t.Errorf("seed %d step %d: %v", seed, step, err)
						return
					}
				}
			}
		}(clones[i], int64(i+1))
	}
	wg.Wait()
}
