package partition

// SnapRandom: the snapshot-native random explorer. Random (algorithms.go)
// builds every candidate in a Partition's maps and costs it with the full
// pointer-walking estimator; SnapRandom writes each candidate straight
// into the delta evaluator's flat assignment vector and costs it entirely
// from the compiled Snapshot's arrays — same candidate enumeration, same
// first-strictly-better selection, zero map traffic and zero allocations
// per candidate. The two agree on the best cost to floating-point
// summation order (the differential tests hold them to 1e-9); a Partition
// is materialized only for the winner.

import (
	"context"
	"fmt"
	"math"

	"specsyn/internal/core"
)

// SnapRandom samples MaxIters (default 1000) random legal partitions on
// the compiled snapshot and returns the best. It requires Config.IdxPolicy
// (the indexed twin of Config.Policy); without one — or with FullEval set,
// or on a graph that does not support incremental evaluation — it falls
// back to Random, which has identical semantics. On cancellation or budget
// exhaustion it returns the best candidate seen so far with Partial set.
func SnapRandom(ctx context.Context, g *core.Graph, cfg Config) (Result, error) {
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 1000
	}
	return snapRandomRange(ctx, g, cfg, 0, iters)
}

// snapRandomRange evaluates the candidates with indices [lo, hi) of the
// same deterministic enumeration randomRange walks, on the assignment
// vector. Ties keep the earliest candidate.
func snapRandomRange(ctx context.Context, g *core.Graph, cfg Config, lo, hi int) (Result, error) {
	if cfg.IdxPolicy == nil || cfg.FullEval {
		return randomRange(ctx, g, cfg, lo, hi)
	}
	start := cfg.Eval.Evals
	table, err := candidateTable(g)
	if err != nil {
		return Result{}, err
	}
	// The delta evaluator needs a complete, legal mapping to bind to;
	// every node on its first candidate is one (it is Greedy's seed too).
	pt := core.NewPartition(g)
	for j, n := range g.Nodes {
		if err := pt.Assign(n, table[j][0]); err != nil {
			return Result{}, err
		}
	}
	d, err := cfg.Eval.Delta(pt, cfg.Policy)
	if err != nil {
		// The graph does not support incremental evaluation; Random
		// preserves full-recompute semantics exactly, as newMover does.
		return randomRange(ctx, g, cfg, lo, hi)
	}
	d.UseIndexedPolicy(cfg.IdxPolicy)

	// Candidate component IDs per node, resolved once.
	snap := d.snap
	idxTable := make([][]int32, len(table))
	for j, cands := range table {
		ids := make([]int32, len(cands))
		for k, c := range cands {
			ci := snap.CompID(c.CompName())
			if ci < 0 {
				return Result{}, fmt.Errorf("partition: component %q is not in the evaluator's graph", c.CompName())
			}
			ids[k] = ci
		}
		idxTable[j] = ids
	}

	bestVec := make([]int32, snap.NumNodes())
	bestCost := math.Inf(1)
	found := false
	partial := false
	for i := lo; i < hi; i++ {
		if (i-lo)%checkInterval == 0 && cancelled(ctx) {
			partial = true
			break
		}
		if !cfg.budgetLeft(start) {
			partial = true
			break
		}
		s := candidateSampler(cfg.Seed, i)
		for j := range idxTable {
			ids := idxTable[j]
			d.asg.NodeComp[j] = ids[s.intn(len(ids))]
		}
		cost, err := d.costCandidate()
		if err != nil {
			return Result{}, err
		}
		if cost < bestCost {
			bestCost = cost
			copy(bestVec, d.asg.NodeComp)
			found = true
		}
	}

	// Materialize the winner as a Partition, with its channel mapping
	// derived the same way randomRange's evalWith leaves it.
	var best *core.Partition
	if found {
		best = core.NewPartition(g)
		for j, n := range g.Nodes {
			if err := best.Assign(n, d.comps[bestVec[j]]); err != nil {
				return Result{}, err
			}
		}
		if err := ApplyBusPolicy(best, cfg.Policy); err != nil {
			return Result{}, err
		}
	}
	return Result{Best: best, Cost: bestCost, Evals: cfg.Eval.Evals - start, Partial: partial}, nil
}

// ParallelSnapRandom is SnapRandom with its candidate enumeration sharded
// across legs, exactly as ParallelRandom shards Random: leg k evaluates
// the contiguous range [k·iters/legs, (k+1)·iters/legs) of the same
// enumeration, every worker sharing one read-only Snapshot through its
// evaluator clone. Best cost and partition are identical to SnapRandom's
// for every worker and leg count.
func ParallelSnapRandom(ctx context.Context, g *core.Graph, cfg Config, opt ParallelOptions) (MultiResult, error) {
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 1000
	}
	clamped := false
	if cfg.MaxEvals > 0 && cfg.MaxEvals < iters {
		iters, clamped = cfg.MaxEvals, true
	}
	nLegs := opt.legs()
	plans := make([]legPlan, 0, nLegs)
	for k := 0; k < nLegs; k++ {
		lo, hi := k*iters/nLegs, (k+1)*iters/nLegs
		plans = append(plans, legPlan{kind: "random", seed: cfg.Seed,
			run: func(ctx context.Context, c Config) (Result, error) {
				c.MaxEvals = 0 // the shard bounds are the budget
				return snapRandomRange(ctx, g, c, lo, hi)
			}})
	}
	out, err := runLegs(ctx, cfg, plans, opt.workers())
	if err == nil && clamped {
		out.Result.Partial = true
		out.Report.Partial = true
	}
	return out, err
}
