package partition

// Tests for the adaptive portfolio orchestrator: barrier determinism at
// any worker count (sharing off and on), the never-worse-than-Greedy
// guarantee, monotone anytime curves, kill/respawn accounting, fault
// containment in respawned legs, budget discipline, and the empty-shard
// report semantics the static engine also honors.

import (
	"context"
	"math"
	"testing"

	"specsyn/internal/faultinject"
)

// adaptiveRun is one standard adaptive invocation for the determinism
// tests; kills are likely with the tight margin.
func adaptiveRun(t *testing.T, workers int, opt ParallelOptions) MultiResult {
	t.Helper()
	g := benchGraph(t, 9, 6)
	g.Procs[0].SizeCon = 700
	cfg := config(g, Constraints{Deadline: map[string]float64{"b0": 150}})
	cfg.Seed = 11
	cfg.MaxIters = 200
	opt.Workers = workers
	if opt.Legs == 0 {
		opt.Legs = 6
	}
	opt.Adaptive = true
	if opt.RoundEvals == 0 {
		opt.RoundEvals = 64
	}
	if opt.MaxRounds == 0 {
		opt.MaxRounds = 4
	}
	res, err := MultiStart(context.Background(), g, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameAdaptive asserts two runs are bit-identical in everything but wall
// clock: costs, partitions, winning leg, and every counter and curve
// point the report carries.
func sameAdaptive(t *testing.T, a, b MultiResult, label string) {
	t.Helper()
	if a.Cost != b.Cost || a.BestLeg != b.BestLeg || a.Best.String() != b.Best.String() {
		t.Errorf("%s: result differs: cost %v vs %v, leg %d vs %d", label, a.Cost, b.Cost, a.BestLeg, b.BestLeg)
	}
	ra, rb := a.Report, b.Report
	if ra.Rounds != rb.Rounds || ra.LegsKilled != rb.LegsKilled || ra.LegsRespawned != rb.LegsRespawned ||
		ra.Evals != rb.Evals || ra.LegsCompleted != rb.LegsCompleted {
		t.Errorf("%s: report differs: %s vs %s", label, ra, rb)
	}
	if len(ra.Curve) != len(rb.Curve) {
		t.Fatalf("%s: curve lengths differ: %d vs %d", label, len(ra.Curve), len(rb.Curve))
	}
	for i := range ra.Curve {
		if ra.Curve[i].BestCost != rb.Curve[i].BestCost || ra.Curve[i].Evals != rb.Curve[i].Evals {
			t.Errorf("%s: curve point %d differs: %+v vs %+v", label, i, ra.Curve[i], rb.Curve[i])
		}
	}
}

// TestAdaptiveDeterministicAcrossWorkers: cross-leg decisions happen only
// at round barriers in leg order, so the adaptive engine is reproducible
// at ANY worker count — sharing off and on.
func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	for _, share := range []bool{false, true} {
		opt := ParallelOptions{Share: share, KillMargin: 0.05}
		a := adaptiveRun(t, 1, opt)
		b := adaptiveRun(t, 4, opt)
		c := adaptiveRun(t, 4, opt)
		label := "share=off"
		if share {
			label = "share=on"
		}
		sameAdaptive(t, a, b, label+" workers 1 vs 4")
		sameAdaptive(t, b, c, label+" rerun")
		if err := a.Best.Validate(); err != nil {
			t.Errorf("%s: best partition invalid: %v", label, err)
		}
	}
}

// TestAdaptiveNotWorseThanGreedy: leg 0's first round is the canonical
// uncapped greedy construction and strand bests only improve, so the
// merged adaptive result can never be worse than Greedy.
func TestAdaptiveNotWorseThanGreedy(t *testing.T) {
	g := benchGraph(t, 9, 6)
	g.Procs[0].SizeCon = 700
	cons := Constraints{Deadline: map[string]float64{"b0": 150}}
	seq, err := Greedy(context.Background(), g, config(g, cons))
	if err != nil {
		t.Fatal(err)
	}
	for _, share := range []bool{false, true} {
		cfg := config(g, cons)
		cfg.Seed = 11
		res, err := MultiStart(context.Background(), g, cfg,
			ParallelOptions{Workers: 4, Legs: 6, Adaptive: true, Share: share, RoundEvals: 64, MaxRounds: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > seq.Cost+1e-9 {
			t.Errorf("share=%v: adaptive cost %v worse than Greedy %v", share, res.Cost, seq.Cost)
		}
	}
}

// TestAdaptiveCurveMonotone: the incumbent trajectory never worsens and
// the evaluation axis is strictly increasing, one point per round.
func TestAdaptiveCurveMonotone(t *testing.T) {
	res := adaptiveRun(t, 4, ParallelOptions{Share: true, KillMargin: 0.05})
	rep := res.Report
	if rep.Rounds == 0 || len(rep.Curve) != rep.Rounds {
		t.Fatalf("rounds %d, curve %d points", rep.Rounds, len(rep.Curve))
	}
	for i := 1; i < len(rep.Curve); i++ {
		if rep.Curve[i].BestCost > rep.Curve[i-1].BestCost {
			t.Errorf("curve not monotone at round %d: %v > %v", i, rep.Curve[i].BestCost, rep.Curve[i-1].BestCost)
		}
		if rep.Curve[i].Evals <= rep.Curve[i-1].Evals {
			t.Errorf("curve evals not increasing at round %d", i)
		}
	}
	if last := rep.Curve[len(rep.Curve)-1]; last.BestCost != res.Cost || last.Evals != rep.Evals {
		t.Errorf("curve end (%v, %d) != merged result (%v, %d)", last.BestCost, last.Evals, res.Cost, rep.Evals)
	}
}

// TestAdaptiveKillRespawn: with a tight margin laggards are killed and
// respawned; the counters are consistent and deterministic, and killed
// strands still contribute their pre-kill bests to the merge.
func TestAdaptiveKillRespawn(t *testing.T) {
	opt := ParallelOptions{KillMargin: 0.001, MaxRounds: 6}
	res := adaptiveRun(t, 4, opt)
	rep := res.Report
	if rep.LegsKilled == 0 {
		t.Fatalf("no kills with a 0.1%% margin: %s", rep)
	}
	if rep.LegsRespawned == 0 || rep.LegsRespawned > rep.LegsKilled+len(rep.Panics)+len(rep.Errors) {
		t.Errorf("respawn count %d inconsistent with %d kills", rep.LegsRespawned, rep.LegsKilled)
	}
	if len(res.Legs) != rep.LegsPlanned {
		t.Errorf("per-leg results: %d, planned %d", len(res.Legs), rep.LegsPlanned)
	}
	for i, leg := range res.Legs {
		if leg.Best != nil && leg.Cost < res.Cost {
			t.Errorf("leg %d beat the merged result: %v < %v", i, leg.Cost, res.Cost)
		}
	}
	sameAdaptive(t, res, adaptiveRun(t, 2, opt), "kill/respawn determinism")
}

// TestAdaptiveRespawnPanics: a leg that panics on a deterministic
// schedule — including in its respawned trajectories — is contained every
// time, recorded with its per-step seed, and the rest of the portfolio
// finishes deterministically. This is the orchestrator's -race target.
func TestAdaptiveRespawnPanics(t *testing.T) {
	run := func(workers int) MultiResult {
		g := benchGraph(t, 8, 5)
		cfg := config(g, Constraints{})
		cfg.Seed = 7
		cfg.MaxIters = 200
		cfg.Eval.Hook = &faultinject.Injector{PanicLegs: []int{1}, PanicAtEval: 3}
		res, err := MultiStart(context.Background(), g, cfg,
			ParallelOptions{Workers: workers, Legs: 5, Adaptive: true, Share: true, RoundEvals: 48, MaxRounds: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(3)
	rep := res.Report
	if len(rep.Panics) < 2 {
		t.Fatalf("leg 1 should panic in its original and respawned trajectories; got %d panics", len(rep.Panics))
	}
	for _, p := range rep.Panics {
		if p.Leg != 1 {
			t.Errorf("panic recorded for leg %d, injected only into leg 1", p.Leg)
		}
	}
	if rep.LegsRespawned == 0 {
		t.Error("panicking leg was never respawned")
	}
	completeMapping(t, res.Result)
	sameAdaptive(t, res, run(1), "panic containment determinism")
}

// TestAdaptiveBudget: a global MaxEvals budget is dealt out per round and
// stops the run with Partial set; the overshoot is bounded by one grace
// evaluation per leg, as in the static engine.
func TestAdaptiveBudget(t *testing.T) {
	g := benchGraph(t, 9, 6)
	cfg := config(g, Constraints{})
	cfg.Seed = 3
	cfg.MaxEvals = 200
	const nLegs = 4
	res, err := MultiStart(context.Background(), g, cfg,
		ParallelOptions{Workers: 4, Legs: nLegs, Adaptive: true, RoundEvals: 64, MaxRounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals > 200+nLegs {
		t.Errorf("budget 200 overspent: %d evals", res.Evals)
	}
	if !res.Partial || !res.Report.Partial {
		t.Error("budget-exhausted adaptive run not marked partial")
	}
	completeMapping(t, res.Result)
}

// TestParallelEmptyShardSemantics pins the satellite contract: a
// zero-width random shard (lo == hi) runs, contributes no candidate, and
// still counts as a completed leg — in the static engines and in the
// adaptive orchestrator, at several worker counts.
func TestParallelEmptyShardSemantics(t *testing.T) {
	g := benchGraph(t, 6, 3)
	const iters, nLegs = 3, 8 // 8 shards over 3 candidates: 5 empty

	mkCfg := func(indexed bool) Config {
		cfg := config(g, Constraints{})
		cfg.Seed = 5
		cfg.MaxIters = iters
		if indexed {
			cfg.IdxPolicy = SingleBusIdx(g, g.Buses[0])
		}
		return cfg
	}
	seq, err := Random(context.Background(), g, mkCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5} {
		for _, indexed := range []bool{false, true} {
			var res MultiResult
			var err error
			if indexed {
				res, err = ParallelSnapRandom(context.Background(), g, mkCfg(true), ParallelOptions{Workers: workers, Legs: nLegs})
			} else {
				res, err = ParallelRandom(context.Background(), g, mkCfg(false), ParallelOptions{Workers: workers, Legs: nLegs})
			}
			if err != nil {
				t.Fatal(err)
			}
			rep := res.Report
			if rep.LegsCompleted != nLegs || rep.LegsPartial != 0 || rep.LegsSkipped != 0 {
				t.Errorf("workers=%d indexed=%v: empty shards miscounted: %s", workers, indexed, rep)
			}
			if rep.Evals != iters {
				t.Errorf("workers=%d indexed=%v: %d evals, want %d", workers, indexed, rep.Evals, iters)
			}
			if math.Abs(res.Cost-seq.Cost) > 1e-9 {
				t.Errorf("workers=%d indexed=%v: cost %v != sequential %v", workers, indexed, res.Cost, seq.Cost)
			}
			if rep.LegsKilled != 0 || rep.LegsRespawned != 0 || rep.Rounds != 0 {
				t.Errorf("workers=%d indexed=%v: static engine reported adaptive counters: %s", workers, indexed, rep)
			}
		}
	}

	// Adaptive: 12 legs → 4 random shards over 3 candidates, at least one
	// zero-width. Empty shards finish in round one as completed legs and
	// are never killed or respawned.
	for _, workers := range []int{1, 4} {
		cfg := mkCfg(false)
		res, err := MultiStart(context.Background(), g, cfg,
			ParallelOptions{Workers: workers, Legs: 12, Adaptive: true, RoundEvals: 32, MaxRounds: 3, KillMargin: -1})
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Report
		if rep.LegsCompleted != 12 || rep.LegsPartial != 0 || rep.LegsSkipped != 0 {
			t.Errorf("adaptive workers=%d: empty shards miscounted: %s", workers, rep)
		}
		if rep.LegsKilled != 0 || rep.LegsRespawned != 0 {
			t.Errorf("adaptive workers=%d: empty shards killed/respawned: %s", workers, rep)
		}
	}
}
