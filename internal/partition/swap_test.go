package partition

// Tests for the pair-swap move kind: the differential oracle for
// SwapCost/ApplySwap/Undo on the delta evaluator, the eval-accounting
// contract, and the two searches that use swaps (Anneal's swap proposals
// and GroupMigration's KL-style swap pass).

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
)

// allowedSets precomputes candidate-set membership for swap feasibility.
func allowedSets(g *core.Graph) map[*core.Node]map[core.Component]bool {
	out := make(map[*core.Node]map[core.Component]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		set := make(map[core.Component]bool)
		for _, c := range Allowed(g, n) {
			set[c] = true
		}
		out[n] = set
	}
	return out
}

// TestDeltaSwapMatchesOracle is the swap counterpart of the random-moves
// differential test: over long random sequences of SwapCost trials,
// ApplySwap commits and Undo reversals — spanning many refresh intervals,
// degenerate same-component pairs included — every incremental swap cost
// must match a full recompute of the exchanged partition within 1e-9.
func TestDeltaSwapMatchesOracle(t *testing.T) {
	const steps = 1200
	for _, sc := range deltaScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			g := sc.graph
			ev := NewEvaluator(g, sc.cons, sc.w, sc.opt)
			oracle := NewEvaluator(g, sc.cons, sc.w, sc.opt)
			policy := sc.policy(g)
			pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
			d, err := ev.Delta(pt, policy)
			if err != nil {
				t.Fatal(err)
			}
			allowed := allowedSets(g)
			rng := rand.New(rand.NewSource(11))
			for step := 0; step < steps; step++ {
				var a, b *core.Node
				for tries := 0; ; tries++ {
					a = g.Nodes[rng.Intn(len(g.Nodes))]
					b = g.Nodes[rng.Intn(len(g.Nodes))]
					if allowed[a][pt.BvComp(b)] && allowed[b][pt.BvComp(a)] {
						break
					}
					if tries > 200 {
						t.Fatal("no feasible swap pair found")
					}
				}

				got, err := d.SwapCost(a, b)
				if err != nil {
					t.Fatalf("step %d: SwapCost(%s, %s): %v", step, a.Name, b.Name, err)
				}
				trial := pt.Clone()
				ca, cb := pt.BvComp(a), pt.BvComp(b)
				if err := trial.Assign(a, cb); err != nil {
					t.Fatal(err)
				}
				if err := trial.Assign(b, ca); err != nil {
					t.Fatal(err)
				}
				if err := ApplyBusPolicy(trial, policy); err != nil {
					t.Fatal(err)
				}
				want, err := oracle.Cost(trial)
				if err != nil {
					t.Fatalf("step %d: oracle: %v", step, err)
				}
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("step %d: SwapCost(%s, %s) = %.15g, oracle %.15g (Δ %g)",
						step, a.Name, b.Name, got, want, got-want)
				}

				switch r := rng.Float64(); {
				case r < 0.45:
					if err := d.ApplySwap(a, b); err != nil {
						t.Fatalf("step %d: ApplySwap: %v", step, err)
					}
				case r < 0.55:
					if err := d.ApplySwap(a, b); err != nil {
						t.Fatalf("step %d: ApplySwap: %v", step, err)
					}
					if err := d.Undo(); err != nil {
						t.Fatalf("step %d: Undo: %v", step, err)
					}
				}
				if step%97 == 0 {
					got, err := d.Cost()
					if err != nil {
						t.Fatalf("step %d: Cost: %v", step, err)
					}
					want := oracleCost(t, oracle, pt, policy)
					if math.Abs(got-want) > 1e-9 {
						t.Fatalf("step %d: committed Cost = %.15g, oracle %.15g", step, got, want)
					}
				}
			}
			got, err := d.Cost()
			if err != nil {
				t.Fatal(err)
			}
			if want := oracleCost(t, oracle, pt, policy); math.Abs(got-want) > 1e-9 {
				t.Fatalf("final Cost = %.15g, oracle %.15g", got, want)
			}
		})
	}
}

// TestDeltaSwapEvalAccounting pins the swap eval/hook contract: SwapCost
// fires the hook once and counts one evaluation — degenerate swaps
// included — while ApplySwap and Undo count nothing.
func TestDeltaSwapEvalAccounting(t *testing.T) {
	g := benchGraph(t, 6, 3)
	ev := NewEvaluator(g, Constraints{}, DefaultWeights(), estimate.Options{})
	hook := &countingHook{}
	ev.Hook = hook
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	d, err := ev.Delta(pt, SingleBus(g.Buses[0]))
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.NodeByName("b1"), g.NodeByName("b2")
	if err := d.Apply(b, g.ProcByName("asic")); err != nil {
		t.Fatal(err)
	}
	evalsBefore := ev.Evals
	for i := 0; i < 4; i++ {
		if _, err := d.SwapCost(a, b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.SwapCost(a, a); err != nil { // degenerate: same node
		t.Fatal(err)
	}
	if got := ev.Evals - evalsBefore; got != 5 || hook.n != 5 {
		t.Fatalf("5 SwapCost calls counted %d evals, %d hook fires; want 5, 5", got, hook.n)
	}
	for i := 0; i < 3; i++ {
		if err := d.ApplySwap(a, b); err != nil {
			t.Fatal(err)
		}
		if err := d.Undo(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ev.Evals - evalsBefore; got != 5 || hook.n != 5 {
		t.Fatalf("ApplySwap/Undo counted evals: %d evals, %d hook fires; want 5, 5", got, hook.n)
	}
}

// TestDeltaSwapUndo: ApplySwap then Undo restores the exact mapping and
// the committed cost, including after a degenerate swap.
func TestDeltaSwapUndo(t *testing.T) {
	g := benchGraph(t, 6, 3)
	ev := NewEvaluator(g, Constraints{}, DefaultWeights(), estimate.Options{})
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	d, err := ev.Delta(pt, SingleBus(g.Buses[0]))
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.NodeByName("b1"), g.NodeByName("v0")
	if err := d.Apply(b, g.MemByName("ram")); err != nil {
		t.Fatal(err)
	}
	before := pt.String()
	costBefore, err := d.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ApplySwap(a, a); err != nil { // degenerate arms a no-op undo
		t.Fatal(err)
	}
	if err := d.Undo(); err != nil {
		t.Fatal(err)
	}
	if pt.String() != before {
		t.Fatal("degenerate swap + Undo changed the mapping")
	}
	// b1 (cpu) and v0 (ram) cannot host each other's components — use two
	// behaviors instead so the exchange is legal.
	b = g.NodeByName("b3")
	if err := d.Apply(b, g.ProcByName("asic")); err != nil {
		t.Fatal(err)
	}
	before = pt.String()
	costBefore, err = d.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ApplySwap(a, b); err != nil {
		t.Fatal(err)
	}
	if pt.BvComp(a).CompName() != "asic" || pt.BvComp(b).CompName() != "cpu" {
		t.Fatalf("swap did not exchange components: a on %s, b on %s",
			pt.BvComp(a).CompName(), pt.BvComp(b).CompName())
	}
	if err := d.Undo(); err != nil {
		t.Fatal(err)
	}
	if pt.String() != before {
		t.Fatal("Undo did not restore the pre-swap mapping")
	}
	costAfter, err := d.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(costAfter-costBefore) > 1e-9 {
		t.Fatalf("Undo cost %v != pre-swap cost %v", costAfter, costBefore)
	}
}

// TestAnnealSwapMoves: with SwapProb set Anneal proposes pair exchanges;
// the run must stay valid — complete mapping, reported cost matching a
// full recompute of the returned best, never worse than the start — on
// both the delta and the full-recompute mover.
func TestAnnealSwapMoves(t *testing.T) {
	g := benchGraph(t, 9, 5)
	g.Procs[0].SizeCon = 700
	for _, full := range []bool{false, true} {
		cfg := config(g, Constraints{Deadline: map[string]float64{"b0": 150}})
		cfg.Seed = 5
		cfg.MaxIters = 400
		cfg.SwapProb = 0.4
		cfg.FullEval = full
		init := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
		initCost, err := NewEvaluator(g, Constraints{Deadline: map[string]float64{"b0": 150}}, DefaultWeights(), estimate.Options{}).Cost(init)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Anneal(context.Background(), init, cfg)
		if err != nil {
			t.Fatalf("full=%v: %v", full, err)
		}
		completeMapping(t, res)
		if res.Cost > initCost {
			t.Errorf("full=%v: anneal with swaps worsened the start: %v > %v", full, res.Cost, initCost)
		}
		recost := oracleCost(t, cfg.Eval, res.Best, cfg.Policy)
		if math.Abs(recost-res.Cost) > 1e-9 {
			t.Errorf("full=%v: reported cost %v != recomputed %v", full, res.Cost, recost)
		}
	}
}

// TestGroupMigrationSwapPass: the KL-style swap pass only ever commits
// strictly improving exchanges, so SwapPass on can never end worse than
// off, and its reported cost must survive a full recompute.
func TestGroupMigrationSwapPass(t *testing.T) {
	g := benchGraph(t, 10, 5)
	// Both processors tight: neither side can absorb every behavior, so
	// the converged partition is split with nonzero cost and the swap
	// pass has cross-component pairs to trial.
	g.Procs[0].SizeCon = 600
	g.Procs[1].SizeCon = 1500
	cons := Constraints{Deadline: map[string]float64{"b0": 120}}
	run := func(swap bool) Result {
		cfg := config(g, cons)
		cfg.SwapPass = swap
		init := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
		res, err := GroupMigration(context.Background(), init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		completeMapping(t, res)
		recost := oracleCost(t, cfg.Eval, res.Best, cfg.Policy)
		if math.Abs(recost-res.Cost) > 1e-9 {
			t.Fatalf("swap=%v: reported cost %v != recomputed %v", swap, res.Cost, recost)
		}
		return res
	}
	off, on := run(false), run(true)
	if on.Cost > off.Cost+1e-9 {
		t.Errorf("swap pass worsened the result: %v > %v", on.Cost, off.Cost)
	}
	if on.Evals <= off.Evals {
		t.Errorf("swap pass spent no evaluations: %d <= %d", on.Evals, off.Evals)
	}
}
