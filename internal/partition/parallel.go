package partition

// This file is the parallel multi-start search engine: the §5 "explore
// thousands of possible designs" loop run as N independent legs on a
// worker pool. A leg is one self-contained search start — a shard of the
// random candidate enumeration, a simulated-annealing restart with its own
// derived seed, or a greedy construction from a rotated node order. Every
// worker owns an Evaluator clone (the evaluator's pooled estimator is not
// goroutine-safe), leg evaluation counts are aggregated atomically, and
// the merge is deterministic: the same seed and leg plan produce the same
// best cost for ANY worker count — ties between legs break toward the
// lower leg index, and random shards are contiguous index ranges, so the
// winner is exactly the candidate a sequential scan would have kept.
//
// The engine is anytime and fault-isolated. Cancelling the context stops
// in-flight legs at their next cooperative check and skips legs that have
// not started; the merge then runs over whatever the surviving legs
// produced, and the SearchReport says exactly how much of the plan ran. A
// leg that panics — a bug, or an injected fault — is captured with its
// stack and derived seed, recorded in the report, and the remaining legs
// keep running on a fresh evaluator clone; the deterministic
// lowest-leg-index merge is preserved over the survivors.

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"specsyn/internal/core"
)

// ParallelOptions sizes the worker pool and the leg plan, and opts in to
// the adaptive portfolio orchestrator (see portfolio.go). All adaptive
// knobs default to off/zero, which keeps MultiStart bit-identical to the
// static engine.
type ParallelOptions struct {
	// Workers is the number of concurrent goroutines; 0 means GOMAXPROCS.
	// The worker count affects only scheduling, never the result.
	Workers int
	// Legs is the number of independent search starts; 0 means Workers.
	Legs int

	// Adaptive turns MultiStart into the round-based portfolio
	// orchestrator: legs run in eval-budget rounds against a lock-free
	// incumbent board, laggards are killed and respawned with perturbed
	// derived seeds, and the report carries the anytime curve. The result
	// is still deterministic for a fixed seed and leg count at any worker
	// count — all cross-leg decisions happen at round barriers in leg
	// order. Off by default: the static engine runs unchanged.
	Adaptive bool
	// Share lets adaptive improvement rounds reheat from the shared
	// incumbent instead of each leg's own best (implies Adaptive). With
	// sharing on, a run is reproducible at a fixed seed and leg count.
	Share bool
	// RoundEvals is the per-leg evaluation budget of one adaptive round;
	// 0 means 256.
	RoundEvals int
	// MaxRounds bounds the adaptive rounds; 0 means 8.
	MaxRounds int
	// KillMargin is the relative cost lag over the incumbent that kills a
	// leg at a round barrier; 0 means 0.25, negative disables killing.
	KillMargin float64
	// MaxRespawns bounds the total respawns across the run; 0 means one
	// per leg, negative disables respawning.
	MaxRespawns int
	// SwapProb is copied into Config.SwapProb for the portfolio's anneal
	// legs, enabling pair-swap proposals (see Config.SwapProb).
	SwapProb float64
}

func (o ParallelOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o ParallelOptions) legs() int {
	if o.Legs > 0 {
		return o.Legs
	}
	return o.workers()
}

// PanicRecord captures one contained leg panic: everything needed to
// reproduce the crash deterministically (the leg's kind and derived seed)
// plus the recovered value and the stack at the point of the panic.
type PanicRecord struct {
	Leg   int    // leg index
	Kind  string // "greedy", "anneal" or "random"
	Seed  int64  // the leg's derived seed — rerun with it to reproduce
	Value any    // the recovered panic value
	Stack string // goroutine stack at recovery
}

func (p PanicRecord) String() string {
	return fmt.Sprintf("leg %d (%s, seed %d) panicked: %v", p.Leg, p.Kind, p.Seed, p.Value)
}

// LegError is one leg's terminal error, preserved by leg index so a
// deterministic run reports errors deterministically.
type LegError struct {
	Leg  int
	Kind string
	Err  error
}

// SearchReport is the structured account of a multi-leg run: how much of
// the plan executed, what failed, and whether the merged result is partial.
// It is always populated, even on fully successful runs, so callers can
// log evaluation counts without special-casing.
type SearchReport struct {
	LegsPlanned   int // legs in the plan
	LegsCompleted int // legs that ran to a non-partial, non-failed finish
	LegsPartial   int // legs stopped early by cancellation or budget
	LegsSkipped   int // legs never started (context cancelled first)
	Evals         int // total cost evaluations across all legs, failed ones included

	// Partial is true when the merged result reflects less than the full
	// plan: the context fired, a budget ran out, or legs were skipped.
	// Failed legs (panics, errors) do NOT set Partial — the surviving
	// portfolio still ran to completion.
	Partial bool

	Panics []PanicRecord // contained panics, ordered by leg index
	Errors []LegError    // leg errors, ordered by leg index

	// Adaptive-orchestrator accounting; all zero for the static engine.
	Rounds        int          // round barriers executed
	LegsKilled    int          // legs killed for lagging the incumbent
	LegsRespawned int          // legs respawned (after kills or contained faults)
	Curve         []CurvePoint // incumbent trajectory, one point per round
}

// CurvePoint is one sample of an adaptive run's anytime curve: the
// incumbent cost at a round barrier. Evals is deterministic; ElapsedMs is
// wall clock and varies run to run.
type CurvePoint struct {
	Round     int     `json:"round"`
	Evals     int     `json:"evals"`
	BestCost  float64 `json:"best_cost"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

func (r SearchReport) String() string {
	s := fmt.Sprintf("%d/%d legs completed, %d evals", r.LegsCompleted, r.LegsPlanned, r.Evals)
	if r.LegsPartial > 0 {
		s += fmt.Sprintf(", %d partial", r.LegsPartial)
	}
	if r.LegsSkipped > 0 {
		s += fmt.Sprintf(", %d skipped", r.LegsSkipped)
	}
	if r.Rounds > 0 {
		s += fmt.Sprintf(", %d rounds", r.Rounds)
	}
	if r.LegsKilled > 0 {
		s += fmt.Sprintf(", %d killed", r.LegsKilled)
	}
	if r.LegsRespawned > 0 {
		s += fmt.Sprintf(", %d respawned", r.LegsRespawned)
	}
	if len(r.Panics) > 0 {
		s += fmt.Sprintf(", %d panics contained", len(r.Panics))
	}
	if len(r.Errors) > 0 {
		s += fmt.Sprintf(", %d leg errors", len(r.Errors))
	}
	if r.Partial {
		s += " (partial)"
	}
	return s
}

// MultiResult is the merged outcome of a multi-leg parallel run.
type MultiResult struct {
	Result
	BestLeg int          // index of the winning leg
	Legs    []Result     // every leg's own result, indexed by leg
	Report  SearchReport // structured account of the run
}

// legPlan is one scheduled leg: its search closure plus the metadata the
// report needs when the leg fails.
type legPlan struct {
	kind string // "greedy", "anneal" or "random"
	seed int64  // derived seed (or run seed for shards) for reproduction
	run  func(ctx context.Context, cfg Config) (Result, error)
}

// legSeed derives a per-leg seed from the run seed; leg paths are given
// disjoint salt ranges so no two legs share an RNG stream.
func legSeed(seed int64, salt int) int64 {
	return int64(mix64(uint64(seed) ^ (0x9E3779B97F4A7C15 * uint64(salt+1))))
}

// runLegs executes the legs on a pool of workers and merges their results.
// cfg.Eval is cloned once per worker; the prototype evaluator is only
// read, then credited with the aggregated evaluation count at the end.
// Panicking legs are contained: the panic is recorded (with stack and
// seed) and the worker continues with a fresh evaluator clone, since a
// panic may have left the pooled estimator mid-rebind. An error return
// happens only when no leg produced a partition at all.
func runLegs(ctx context.Context, cfg Config, plans []legPlan, workers int) (MultiResult, error) {
	if cfg.Eval == nil {
		return MultiResult{}, fmt.Errorf("partition: parallel search needs Config.Eval")
	}
	if len(plans) == 0 {
		return MultiResult{}, fmt.Errorf("partition: parallel search needs at least one leg")
	}
	if workers > len(plans) {
		workers = len(plans)
	}

	results := make([]Result, len(plans))
	errs := make([]error, len(plans))
	panics := make([]*PanicRecord, len(plans))
	skipped := make([]bool, len(plans))
	hookProto := cfg.Eval.Hook
	var evals atomic.Int64
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wcfg := cfg
			wcfg.Eval = cfg.Eval.Clone()
			for i := range jobs {
				if cancelled(ctx) {
					skipped[i] = true
					continue
				}
				if hookProto != nil {
					wcfg.Eval.Hook = hookProto.ForLeg(i, plans[i].seed)
				}
				before := wcfg.Eval.Evals
				res, err := runOneLeg(ctx, wcfg, i, plans[i], &panics[i])
				results[i], errs[i] = res, err
				evals.Add(int64(wcfg.Eval.Evals - before))
				if panics[i] != nil {
					// The panic may have interrupted the pooled estimator
					// mid-rebind; discard the clone rather than trust it.
					e := wcfg.Eval.Evals
					wcfg.Eval = cfg.Eval.Clone()
					wcfg.Eval.Evals = e
				}
			}
		}()
	}
	for i := range plans {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Merge deterministically over the surviving legs: lowest cost, ties
	// to the lower leg index. Failed and skipped legs contribute nothing.
	rep := SearchReport{LegsPlanned: len(plans), Evals: int(evals.Load())}
	best := -1
	for i, r := range results {
		switch {
		case skipped[i]:
			rep.LegsSkipped++
			continue
		case panics[i] != nil:
			rep.Panics = append(rep.Panics, *panics[i])
			continue
		case errs[i] != nil:
			rep.Errors = append(rep.Errors, LegError{Leg: i, Kind: plans[i].kind, Err: errs[i]})
			continue
		case r.Partial:
			rep.LegsPartial++
		default:
			rep.LegsCompleted++
		}
		if r.Best == nil {
			continue // empty leg (e.g. a zero-width random shard)
		}
		if best < 0 || r.Cost < results[best].Cost {
			best = i
		}
	}
	rep.Partial = rep.LegsPartial > 0 || rep.LegsSkipped > 0 || cancelled(ctx)
	if best < 0 {
		if len(rep.Errors) > 0 {
			return MultiResult{Report: rep}, fmt.Errorf("partition: no leg survived; leg %d (%s): %w",
				rep.Errors[0].Leg, rep.Errors[0].Kind, rep.Errors[0].Err)
		}
		if len(rep.Panics) > 0 {
			return MultiResult{Report: rep}, fmt.Errorf("partition: no leg survived; %s", rep.Panics[0])
		}
		return MultiResult{Report: rep}, fmt.Errorf("partition: no leg produced a partition")
	}
	cfg.Eval.Evals += rep.Evals
	out := MultiResult{Result: results[best], BestLeg: best, Legs: results, Report: rep}
	out.Result.Evals = rep.Evals
	out.Result.Partial = rep.Partial
	return out, nil
}

// runOneLeg runs a single leg with panic containment: a panic anywhere in
// the leg (evaluator, estimator, injected fault) is recovered, recorded
// with the leg's metadata and stack, and turned into an empty result so
// the merge simply passes over it.
func runOneLeg(ctx context.Context, cfg Config, leg int, p legPlan, rec **PanicRecord) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			*rec = &PanicRecord{Leg: leg, Kind: p.kind, Seed: p.seed, Value: r, Stack: string(debug.Stack())}
			res, err = Result{}, nil
		}
	}()
	return p.run(ctx, cfg)
}

// splitBudget deals cfg.MaxEvals out to nLegs legs — evenly, remainder to
// the lower indices — so a budgeted parallel run is deterministic for any
// worker count. With no budget every quota is 0 (unlimited); under a
// budget a leg whose share rounds to nothing gets -1, the "already
// exhausted" sentinel, so it cannot silently run unbounded.
func splitBudget(maxEvals, nLegs int) []int {
	quota := make([]int, nLegs)
	if maxEvals <= 0 {
		return quota
	}
	base, rem := maxEvals/nLegs, maxEvals%nLegs
	for i := range quota {
		quota[i] = base
		if i < rem {
			quota[i]++
		}
		if quota[i] == 0 {
			quota[i] = -1
		}
	}
	return quota
}

// ParallelRandom is Random with its candidate enumeration sharded across
// legs: leg k evaluates the contiguous index range [k·iters/legs,
// (k+1)·iters/legs) of the same per-candidate-seeded enumeration Random
// walks sequentially. Best cost and best partition are therefore identical
// to Random's for every worker and leg count. A MaxEvals budget clamps
// the enumeration to its first MaxEvals candidates — again exactly the
// prefix a budgeted sequential Random would evaluate.
func ParallelRandom(ctx context.Context, g *core.Graph, cfg Config, opt ParallelOptions) (MultiResult, error) {
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 1000
	}
	clamped := false
	if cfg.MaxEvals > 0 && cfg.MaxEvals < iters {
		iters, clamped = cfg.MaxEvals, true
	}
	nLegs := opt.legs()
	plans := make([]legPlan, 0, nLegs)
	for k := 0; k < nLegs; k++ {
		lo, hi := k*iters/nLegs, (k+1)*iters/nLegs
		plans = append(plans, legPlan{kind: "random", seed: cfg.Seed,
			run: func(ctx context.Context, c Config) (Result, error) {
				c.MaxEvals = 0 // the shard bounds are the budget
				return randomRange(ctx, g, c, lo, hi)
			}})
	}
	out, err := runLegs(ctx, cfg, plans, opt.workers())
	if err == nil && clamped {
		out.Result.Partial = true
		out.Report.Partial = true
	}
	return out, err
}

// MultiStart runs a mixed portfolio of legs — greedy constructions from
// rotated node orders, annealing restarts from random starts with derived
// seeds, and random sampling shards — and returns the best. Leg 0 is
// always the canonical greedy construction, so a 1-leg MultiStart equals
// Greedy exactly. A MaxEvals budget is dealt out across the legs evenly
// (remainder to the lower indices), keeping budgeted runs deterministic.
//
// With opt.Adaptive (or opt.Share) set the same portfolio runs under the
// round-based adaptive orchestrator instead — see adaptiveMultiStart.
func MultiStart(ctx context.Context, g *core.Graph, cfg Config, opt ParallelOptions) (MultiResult, error) {
	if opt.Adaptive || opt.Share {
		return adaptiveMultiStart(ctx, g, cfg, opt)
	}
	nLegs := opt.legs()
	// Portfolio split: greedy gets the first share (rounded up), then
	// anneal restarts, then random shards.
	nGreedy := (nLegs + 2) / 3
	nAnneal := (nLegs + 1) / 3
	nRandom := nLegs - nGreedy - nAnneal

	table, err := candidateTable(g)
	if err != nil {
		return MultiResult{}, err
	}

	quota := splitBudget(cfg.MaxEvals, nLegs)
	plans := make([]legPlan, 0, nLegs)
	for r := 0; r < nGreedy; r++ {
		rotate := r
		q := quota[len(plans)]
		plans = append(plans, legPlan{kind: "greedy", seed: cfg.Seed,
			run: func(ctx context.Context, c Config) (Result, error) {
				c.MaxEvals = q
				return greedyRotated(ctx, g, c, rotate)
			}})
	}
	for a := 0; a < nAnneal; a++ {
		initSeed := legSeed(cfg.Seed, a)
		runSeed := legSeed(cfg.Seed, 1<<16+a)
		q := quota[len(plans)]
		plans = append(plans, legPlan{kind: "anneal", seed: runSeed,
			run: func(ctx context.Context, c Config) (Result, error) {
				init, err := randomStart(g, table, initSeed)
				if err != nil {
					return Result{}, err
				}
				c.Seed = runSeed
				c.MaxEvals = q
				return Anneal(ctx, init, c)
			}})
	}
	if nRandom > 0 {
		iters := cfg.MaxIters
		if iters <= 0 {
			iters = 1000
		}
		for k := 0; k < nRandom; k++ {
			lo, hi := k*iters/nRandom, (k+1)*iters/nRandom
			q := quota[len(plans)]
			plans = append(plans, legPlan{kind: "random", seed: cfg.Seed,
				run: func(ctx context.Context, c Config) (Result, error) {
					c.MaxEvals = q
					return randomRange(ctx, g, c, lo, hi)
				}})
		}
	}
	return runLegs(ctx, cfg, plans, opt.workers())
}

// randomStart builds one random legal partition from a seed — the starting
// point of an annealing restart leg.
func randomStart(g *core.Graph, table [][]core.Component, seed int64) (*core.Partition, error) {
	s := candidateSampler(seed, 0)
	pt := core.NewPartition(g)
	for j, n := range g.Nodes {
		if err := pt.Assign(n, table[j][s.intn(len(table[j]))]); err != nil {
			return nil, err
		}
	}
	return pt, nil
}
