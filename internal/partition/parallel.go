package partition

// This file is the parallel multi-start search engine: the §5 "explore
// thousands of possible designs" loop run as N independent legs on a
// worker pool. A leg is one self-contained search start — a shard of the
// random candidate enumeration, a simulated-annealing restart with its own
// derived seed, or a greedy construction from a rotated node order. Every
// worker owns an Evaluator clone (the evaluator's pooled estimator is not
// goroutine-safe), leg evaluation counts are aggregated atomically, and
// the merge is deterministic: the same seed and leg plan produce the same
// best cost for ANY worker count — ties between legs break toward the
// lower leg index, and random shards are contiguous index ranges, so the
// winner is exactly the candidate a sequential scan would have kept.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"specsyn/internal/core"
)

// ParallelOptions sizes the worker pool and the leg plan.
type ParallelOptions struct {
	// Workers is the number of concurrent goroutines; 0 means GOMAXPROCS.
	// The worker count affects only scheduling, never the result.
	Workers int
	// Legs is the number of independent search starts; 0 means Workers.
	Legs int
}

func (o ParallelOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o ParallelOptions) legs() int {
	if o.Legs > 0 {
		return o.Legs
	}
	return o.workers()
}

// MultiResult is the merged outcome of a multi-leg parallel run.
type MultiResult struct {
	Result
	BestLeg int      // index of the winning leg
	Legs    []Result // every leg's own result, indexed by leg
}

// legFunc runs one leg with a worker-local Config (its Eval field is the
// worker's private Evaluator clone).
type legFunc func(cfg Config) (Result, error)

// legSeed derives a per-leg seed from the run seed; leg paths are given
// disjoint salt ranges so no two legs share an RNG stream.
func legSeed(seed int64, salt int) int64 {
	return int64(mix64(uint64(seed) ^ (0x9E3779B97F4A7C15 * uint64(salt+1))))
}

// runLegs executes the legs on a pool of workers and merges their results.
// cfg.Eval is cloned once per worker; the prototype evaluator is only
// read, then credited with the aggregated evaluation count at the end.
func runLegs(cfg Config, legs []legFunc, workers int) (MultiResult, error) {
	if cfg.Eval == nil {
		return MultiResult{}, fmt.Errorf("partition: parallel search needs Config.Eval")
	}
	if len(legs) == 0 {
		return MultiResult{}, fmt.Errorf("partition: parallel search needs at least one leg")
	}
	if workers > len(legs) {
		workers = len(legs)
	}

	results := make([]Result, len(legs))
	errs := make([]error, len(legs))
	var evals atomic.Int64
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wcfg := cfg
			wcfg.Eval = cfg.Eval.Clone()
			for i := range jobs {
				res, err := legs[i](wcfg)
				results[i], errs[i] = res, err
				evals.Add(int64(res.Evals))
			}
		}()
	}
	for i := range legs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Merge deterministically: first error by leg index; otherwise the
	// lowest cost, ties to the lower leg index.
	for i, err := range errs {
		if err != nil {
			return MultiResult{}, fmt.Errorf("partition: leg %d: %w", i, err)
		}
	}
	best := -1
	for i, r := range results {
		if r.Best == nil {
			continue // empty leg (e.g. a zero-width random shard)
		}
		if best < 0 || r.Cost < results[best].Cost {
			best = i
		}
	}
	if best < 0 {
		return MultiResult{}, fmt.Errorf("partition: no leg produced a partition")
	}
	total := int(evals.Load())
	cfg.Eval.Evals += total
	out := MultiResult{Result: results[best], BestLeg: best, Legs: results}
	out.Result.Evals = total
	return out, nil
}

// ParallelRandom is Random with its candidate enumeration sharded across
// legs: leg k evaluates the contiguous index range [k·iters/legs,
// (k+1)·iters/legs) of the same per-candidate-seeded enumeration Random
// walks sequentially. Best cost and best partition are therefore identical
// to Random's for every worker and leg count.
func ParallelRandom(g *core.Graph, cfg Config, opt ParallelOptions) (MultiResult, error) {
	iters := cfg.MaxIters
	if iters <= 0 {
		iters = 1000
	}
	nLegs := opt.legs()
	legs := make([]legFunc, 0, nLegs)
	for k := 0; k < nLegs; k++ {
		lo, hi := k*iters/nLegs, (k+1)*iters/nLegs
		legs = append(legs, func(c Config) (Result, error) {
			return randomRange(g, c, lo, hi)
		})
	}
	return runLegs(cfg, legs, opt.workers())
}

// MultiStart runs a mixed portfolio of legs — greedy constructions from
// rotated node orders, annealing restarts from random starts with derived
// seeds, and random sampling shards — and returns the best. Leg 0 is
// always the canonical greedy construction, so a 1-leg MultiStart equals
// Greedy exactly.
func MultiStart(g *core.Graph, cfg Config, opt ParallelOptions) (MultiResult, error) {
	nLegs := opt.legs()
	// Portfolio split: greedy gets the first share (rounded up), then
	// anneal restarts, then random shards.
	nGreedy := (nLegs + 2) / 3
	nAnneal := (nLegs + 1) / 3
	nRandom := nLegs - nGreedy - nAnneal

	table, err := candidateTable(g)
	if err != nil {
		return MultiResult{}, err
	}

	legs := make([]legFunc, 0, nLegs)
	for r := 0; r < nGreedy; r++ {
		rotate := r
		legs = append(legs, func(c Config) (Result, error) {
			return greedyRotated(g, c, rotate)
		})
	}
	for a := 0; a < nAnneal; a++ {
		initSeed := legSeed(cfg.Seed, a)
		runSeed := legSeed(cfg.Seed, 1<<16+a)
		legs = append(legs, func(c Config) (Result, error) {
			init, err := randomStart(g, table, initSeed)
			if err != nil {
				return Result{}, err
			}
			c.Seed = runSeed
			return Anneal(init, c)
		})
	}
	if nRandom > 0 {
		iters := cfg.MaxIters
		if iters <= 0 {
			iters = 1000
		}
		for k := 0; k < nRandom; k++ {
			lo, hi := k*iters/nRandom, (k+1)*iters/nRandom
			legs = append(legs, func(c Config) (Result, error) {
				return randomRange(g, c, lo, hi)
			})
		}
	}
	return runLegs(cfg, legs, opt.workers())
}

// randomStart builds one random legal partition from a seed — the starting
// point of an annealing restart leg.
func randomStart(g *core.Graph, table [][]core.Component, seed int64) (*core.Partition, error) {
	s := candidateSampler(seed, 0)
	pt := core.NewPartition(g)
	for j, n := range g.Nodes {
		if err := pt.Assign(n, table[j][s.intn(len(table[j]))]); err != nil {
			return nil, err
		}
	}
	return pt, nil
}
