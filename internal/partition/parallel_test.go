package partition

import (
	"context"
	"math"
	"sync"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
)

// TestParallelRandomMatchesSequential: sharding the candidate enumeration
// across legs and workers must reproduce the sequential Random result
// exactly — same best cost, same best partition — for every worker/leg
// count, because candidates are seeded per index, shards are contiguous,
// and ties break toward the earlier leg.
func TestParallelRandomMatchesSequential(t *testing.T) {
	g := benchGraph(t, 8, 5)
	g.Procs[0].SizeCon = 900
	mk := func() Config {
		cfg := config(g, Constraints{})
		cfg.Seed = 42
		cfg.MaxIters = 300
		return cfg
	}
	seq, err := Random(context.Background(), g, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []ParallelOptions{
		{Workers: 1, Legs: 1},
		{Workers: 1, Legs: 4},
		{Workers: 4, Legs: 4},
		{Workers: 4, Legs: 7},
		{Workers: 3},
	} {
		cfg := mk()
		par, err := ParallelRandom(context.Background(), g, cfg, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if par.Cost != seq.Cost {
			t.Errorf("%+v: parallel cost %v != sequential %v", opt, par.Cost, seq.Cost)
		}
		if par.Best.String() != seq.Best.String() {
			t.Errorf("%+v: parallel best partition differs from sequential", opt)
		}
		if par.Evals != 300 {
			t.Errorf("%+v: evals = %d, want 300", opt, par.Evals)
		}
	}
}

// TestParallelEvalsAggregation: the merged Evals equals the sum over legs,
// and the caller's (prototype) evaluator is credited with the same total.
func TestParallelEvalsAggregation(t *testing.T) {
	g := benchGraph(t, 6, 4)
	cfg := config(g, Constraints{})
	cfg.Seed = 5
	cfg.MaxIters = 120
	before := cfg.Eval.Evals
	res, err := ParallelRandom(context.Background(), g, cfg, ParallelOptions{Workers: 4, Legs: 5})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, leg := range res.Legs {
		sum += leg.Evals
	}
	if res.Evals != sum {
		t.Errorf("merged Evals %d != Σ leg Evals %d", res.Evals, sum)
	}
	if got := cfg.Eval.Evals - before; got != sum {
		t.Errorf("prototype evaluator credited %d evals, want %d", got, sum)
	}
	if len(res.Legs) != 5 {
		t.Errorf("got %d leg results, want 5", len(res.Legs))
	}
}

// TestMultiStartDeterministic: same seed and leg plan ⇒ same best cost and
// partition, regardless of the worker count.
func TestMultiStartDeterministic(t *testing.T) {
	g := benchGraph(t, 9, 6)
	g.Procs[0].SizeCon = 700
	run := func(workers int) MultiResult {
		cfg := config(g, Constraints{Deadline: map[string]float64{"b0": 150}})
		cfg.Seed = 11
		cfg.MaxIters = 200
		res, err := MultiStart(context.Background(), g, cfg, ParallelOptions{Workers: workers, Legs: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := run(1), run(4), run(4)
	if a.Cost != b.Cost || b.Cost != c.Cost {
		t.Errorf("costs differ across worker counts/reruns: %v %v %v", a.Cost, b.Cost, c.Cost)
	}
	if a.Best.String() != b.Best.String() || a.BestLeg != b.BestLeg {
		t.Errorf("best partition or winning leg differs across worker counts")
	}
	if err := a.Best.Validate(); err != nil {
		t.Errorf("best partition invalid: %v", err)
	}
}

// TestMultiStartOneLegEqualsGreedy: leg 0 is the canonical greedy
// construction, so a single-leg MultiStart is exactly Greedy.
func TestMultiStartOneLegEqualsGreedy(t *testing.T) {
	g := benchGraph(t, 7, 4)
	g.Procs[0].SizeCon = 600
	seq, err := Greedy(context.Background(), g, config(g, Constraints{}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := config(g, Constraints{})
	par, err := MultiStart(context.Background(), g, cfg, ParallelOptions{Workers: 1, Legs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if par.Cost != seq.Cost || par.Best.String() != seq.Best.String() {
		t.Errorf("1-leg MultiStart (cost %v) != Greedy (cost %v)", par.Cost, seq.Cost)
	}
}

// TestMultiStartNotWorseThanGreedy: adding anneal/random legs can only
// improve (or tie) the merged cost relative to the greedy leg.
func TestMultiStartNotWorseThanGreedy(t *testing.T) {
	g := benchGraph(t, 10, 6)
	g.Procs[0].SizeCon = 500
	greedy, err := Greedy(context.Background(), g, config(g, Constraints{}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := config(g, Constraints{})
	cfg.Seed = 3
	res, err := MultiStart(context.Background(), g, cfg, ParallelOptions{Workers: 4, Legs: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > greedy.Cost+1e-9 {
		t.Errorf("MultiStart (%v) lost to its own greedy leg (%v)", res.Cost, greedy.Cost)
	}
}

// TestAnnealFinalTemperature pins the schedule-length fix: with the
// destination redrawn to exclude the current component, the temperature
// cools on every iteration and always lands at the designed end point
// (0.01), independent of how often the RNG would have redrawn.
func TestAnnealFinalTemperature(t *testing.T) {
	g := benchGraph(t, 6, 4)
	g.Procs[0].SizeCon = 500
	for _, seed := range []int64{1, 2, 99} {
		cfg := config(g, Constraints{})
		cfg.Seed = seed
		cfg.MaxIters = 777
		init := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
		if err := ApplyBusPolicy(init, cfg.Policy); err != nil {
			t.Fatal(err)
		}
		res, err := Anneal(context.Background(), init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.FinalTemp-0.01) > 1e-6 {
			t.Errorf("seed %d: final temperature %v, want 0.01 (schedule length depends on RNG redraws)", seed, res.FinalTemp)
		}
	}
}

// TestFeasibleDoesNotMutateEvaluator: Feasible computes with a value copy
// of the weights; the evaluator's own weights must never change, and
// Feasible must agree with a comm-disabled evaluator's Cost.
func TestFeasibleDoesNotMutateEvaluator(t *testing.T) {
	g := benchGraph(t, 5, 3)
	ev := NewEvaluator(g, Constraints{}, DefaultWeights(), estimate.Options{})
	pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
	before := ev.W
	ok, err := ev.Feasible(pt)
	if err != nil {
		t.Fatal(err)
	}
	if ev.W != before {
		t.Errorf("Feasible mutated the evaluator's weights: %+v -> %+v", before, ev.W)
	}
	if !ok {
		t.Error("unconstrained all-software partition reported infeasible")
	}
	// Feasibility is "cost with Comm disabled is zero".
	w := before
	w.Comm = 0
	ref := NewEvaluator(g, Constraints{}, w, estimate.Options{})
	cost, err := ref.Cost(pt)
	if err != nil {
		t.Fatal(err)
	}
	if (cost == 0) != ok {
		t.Errorf("Feasible = %v disagrees with comm-disabled cost %v", ok, cost)
	}
}

// TestEvaluatorClonesConcurrently exercises per-goroutine evaluator clones
// under the race detector: clones share only the immutable graph.
func TestEvaluatorClonesConcurrently(t *testing.T) {
	g := benchGraph(t, 8, 5)
	proto := NewEvaluator(g, Constraints{}, DefaultWeights(), estimate.Options{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			ev := proto.Clone()
			pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
			for i := 0; i < 50; i++ {
				if _, err := ev.Cost(pt); err != nil {
					t.Error(err)
					return
				}
				if _, err := ev.Feasible(pt); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
