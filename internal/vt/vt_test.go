package vt

import (
	"os"
	"path/filepath"
	"testing"

	"specsyn/internal/cdfg"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("testdata: %v", err)
	}
	return string(data)
}

const smallSrc = `
entity E is port (a : in integer; o : out integer); end;
architecture x of E is begin
P: process
    variable v : integer;
begin
    v := a + 1;
    if v > 3 then
        o <= v;
    end if;
    wait on a;
end process; end;
`

func TestBuildSmall(t *testing.T) {
	g, err := BuildVHDL(smallSrc)
	if err != nil {
		t.Fatal(err)
	}
	// v := a+1 → op(+){read a}, value v             (3 nodes)
	// if        → decision{op(>){read v}}           (3)
	// o <= v    → value o{read v}, guarded          (2)
	// wait on a → sync{read a}                      (2)
	if got := g.Stats().Nodes; got != 10 {
		t.Errorf("nodes = %d, want 10", got)
	}
	// Guard edge: decision → value(o).
	guarded := false
	for _, e := range g.Edges {
		if g.Nodes[e.From].Kind == NDecision && g.Nodes[e.To].Kind == NValue && g.Nodes[e.To].Label == "o" {
			guarded = true
		}
	}
	if !guarded {
		t.Error("decision does not guard the conditional assignment")
	}
}

func TestGuardNesting(t *testing.T) {
	g, err := BuildVHDL(`
entity E is end;
architecture x of E is begin
P: process
    variable v, w : integer;
begin
    if v = 1 then
        for i in 1 to 3 loop
            w := 1;
        end loop;
    end if;
    wait;
end process; end;`)
	if err != nil {
		t.Fatal(err)
	}
	// The for decision must be guarded by the if decision, and the
	// assignment by the for decision.
	var ifID, forID, valID = -1, -1, -1
	for _, n := range g.Nodes {
		switch {
		case n.Kind == NDecision && n.Label == "if":
			ifID = n.ID
		case n.Kind == NDecision && n.Label == "for i":
			forID = n.ID
		case n.Kind == NValue && n.Label == "w":
			valID = n.ID
		}
	}
	if ifID < 0 || forID < 0 || valID < 0 {
		t.Fatalf("nodes missing: if=%d for=%d w=%d", ifID, forID, valID)
	}
	has := func(from, to int) bool {
		for _, e := range g.Edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	if !has(ifID, forID) {
		t.Error("for not guarded by if")
	}
	if !has(forID, valID) {
		t.Error("assignment not guarded by for")
	}
	if has(ifID, valID) {
		t.Error("assignment guarded by outer decision directly (should be innermost only)")
	}
}

func TestEdgesWellFormed(t *testing.T) {
	g, err := BuildVHDL(readTestdata(t, "fuzzy.vhd"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			t.Fatalf("edge %v out of range", e)
		}
	}
}

// TestSitsBetweenSLIFAndCDFG pins the §5 ordering on the fuzzy example:
// SLIF (35) << VT/ADD << CDFG.
func TestSitsBetweenSLIFAndCDFG(t *testing.T) {
	src := readTestdata(t, "fuzzy.vhd")
	vg, err := BuildVHDL(src)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cdfg.BuildVHDL(src)
	if err != nil {
		t.Fatal(err)
	}
	vn, cn := vg.Stats().Nodes, cg.Stats().Nodes
	if vn <= 35*4 {
		t.Errorf("VT nodes = %d, want well above the 35-node SLIF-AG", vn)
	}
	if vn >= cn {
		t.Errorf("VT (%d) not smaller than CDFG (%d)", vn, cn)
	}
}

func TestAllExamplesBuild(t *testing.T) {
	for _, name := range []string{"ans", "ether", "fuzzy", "vol"} {
		g, err := BuildVHDL(readTestdata(t, name+".vhd"))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.Stats().Nodes == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	if NValue.String() != "value" || NOpVal.String() != "op" || NSync.String() != "sync" {
		t.Error("kind names broken")
	}
}
