// Package vt builds an assignment-level dataflow format in the style of
// the Value Trace / ADD representations the paper's §5 compares against
// ("the ADD format, which is similar in form and complexity to the VT
// format, required over 450 nodes and 400 edges" for the fuzzy example).
//
// The format sits between SLIF and a full CDFG in granularity: it is a
// pure value-flow graph — one value node per operation occurrence, read
// occurrence and assignment target, and one decision node per control
// construct, with edges from operand values into the values they produce
// and from decisions into the values they guard. What it does NOT carry is
// the CDFG's control scaffolding: no statement chaining, merges, loop
// index arithmetic, range checks or parameter copies. That difference is
// what keeps it roughly half a CDFG and still an order of magnitude above
// the SLIF access graph.
package vt

import (
	"fmt"

	"specsyn/internal/sem"
	"specsyn/internal/vhdl"
)

// NodeKind classifies VT/ADD nodes.
type NodeKind int

// VT node kinds.
const (
	NValue    NodeKind = iota // assignment target occurrence
	NReadVal                  // read reference feeding an assignment or decision
	NOpVal                    // value produced by an operation occurrence
	NDecision                 // control construct condition
	NCall                     // subprogram activation
	NSync                     // wait/return
)

func (k NodeKind) String() string {
	switch k {
	case NValue:
		return "value"
	case NReadVal:
		return "read"
	case NOpVal:
		return "op"
	case NDecision:
		return "decision"
	case NCall:
		return "call"
	default:
		return "sync"
	}
}

// Node is one VT node.
type Node struct {
	ID    int
	Kind  NodeKind
	Label string
	Beh   string
}

// Edge is a dataflow or decision edge.
type Edge struct{ From, To int }

// Graph is the complete VT/ADD representation of a design.
type Graph struct {
	Design string
	Nodes  []Node
	Edges  []Edge
}

// Stats are the node/edge counts for the §5 comparison.
type Stats struct{ Nodes, Edges int }

// Stats returns the graph's size.
func (g *Graph) Stats() Stats { return Stats{Nodes: len(g.Nodes), Edges: len(g.Edges)} }

type vbuilder struct {
	g         *Graph
	d         *sem.Design
	b         *sem.Behavior
	decisions []int // active decision node stack: guards for nested stmts
}

func (vb *vbuilder) node(kind NodeKind, label string) int {
	id := len(vb.g.Nodes)
	vb.g.Nodes = append(vb.g.Nodes, Node{ID: id, Kind: kind, Label: label, Beh: vb.b.UniqueID})
	return id
}

func (vb *vbuilder) edge(from, to int) {
	if from >= 0 && to >= 0 {
		vb.g.Edges = append(vb.g.Edges, Edge{From: from, To: to})
	}
}

// guard connects the innermost active decision to a node.
func (vb *vbuilder) guard(to int) {
	if len(vb.decisions) > 0 {
		vb.edge(vb.decisions[len(vb.decisions)-1], to)
	}
}

// Build constructs the VT/ADD graph of every behavior in the design.
func Build(d *sem.Design) *Graph {
	g := &Graph{Design: d.Name}
	for _, b := range d.Behaviors {
		vb := &vbuilder{g: g, d: d, b: b}
		vb.stmts(b.Body)
	}
	return g
}

// BuildVHDL parses, elaborates and builds in one step.
func BuildVHDL(src string) (*Graph, error) {
	df, err := vhdl.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("vt: %w", err)
	}
	d, err := sem.Elaborate(df)
	if err != nil {
		return nil, fmt.Errorf("vt: %w", err)
	}
	return Build(d), nil
}

// value builds the value-flow subgraph of an expression and returns the id
// of the node producing its value, or -1 for literals (constants are folded
// into their consumers, as in the VT). Every operation and name occurrence
// is its own value node.
func (vb *vbuilder) value(e vhdl.Expr) int {
	switch x := e.(type) {
	case *vhdl.NameExpr:
		return vb.node(NReadVal, x.Name)
	case *vhdl.AttrExpr:
		return vb.node(NReadVal, x.Prefix+"'"+x.Attr)
	case *vhdl.UnaryExpr:
		n := vb.node(NOpVal, x.Op.String())
		vb.edge(vb.value(x.X), n)
		return n
	case *vhdl.BinExpr:
		n := vb.node(NOpVal, x.Op.String())
		vb.edge(vb.value(x.L), n)
		vb.edge(vb.value(x.R), n)
		return n
	case *vhdl.CallExpr:
		kind, label := NReadVal, x.Name+"[]"
		if sym := vb.d.Lookup(vb.b, x.Name); sym != nil && sym.Kind == sem.SymBehavior {
			kind, label = NCall, x.Name
		}
		n := vb.node(kind, label)
		for _, a := range x.Args {
			vb.edge(vb.value(a), n)
		}
		return n
	case *vhdl.AggregateExpr:
		n := vb.node(NOpVal, "aggregate")
		for _, a := range x.Assocs {
			if a.Choice != nil {
				vb.edge(vb.value(a.Choice), n)
			}
			vb.edge(vb.value(a.Value), n)
		}
		return n
	}
	return -1 // literal: folded into the consumer
}

// reads adapts value() for statement positions that take a list of
// contributing values.
func (vb *vbuilder) reads(e vhdl.Expr) []int {
	if e == nil {
		return nil
	}
	if id := vb.value(e); id >= 0 {
		return []int{id}
	}
	return nil
}

func (vb *vbuilder) stmts(stmts []vhdl.Stmt) {
	for _, s := range stmts {
		vb.stmt(s)
	}
}

func (vb *vbuilder) stmt(s vhdl.Stmt) {
	switch st := s.(type) {
	case *vhdl.AssignStmt:
		label := "?"
		var indexReads []int
		switch t := st.Target.(type) {
		case *vhdl.NameExpr:
			label = t.Name
		case *vhdl.CallExpr:
			label = t.Name + "[]"
			for _, a := range t.Args {
				indexReads = append(indexReads, vb.reads(a)...)
			}
		}
		val := vb.node(NValue, label)
		for _, id := range indexReads {
			vb.edge(id, val)
		}
		for _, id := range vb.reads(st.Value) {
			vb.edge(id, val)
		}
		vb.guard(val)

	case *vhdl.IfStmt:
		dec := vb.node(NDecision, "if")
		for _, id := range vb.reads(st.Cond) {
			vb.edge(id, dec)
		}
		vb.guard(dec)
		vb.decisions = append(vb.decisions, dec)
		vb.stmts(st.Then)
		for _, el := range st.Elifs {
			for _, id := range vb.reads(el.Cond) {
				vb.edge(id, dec)
			}
			vb.stmts(el.Body)
		}
		vb.stmts(st.Else)
		vb.decisions = vb.decisions[:len(vb.decisions)-1]

	case *vhdl.CaseStmt:
		dec := vb.node(NDecision, "case")
		for _, id := range vb.reads(st.Expr) {
			vb.edge(id, dec)
		}
		vb.guard(dec)
		vb.decisions = append(vb.decisions, dec)
		for _, w := range st.Whens {
			vb.stmts(w.Body)
		}
		vb.decisions = vb.decisions[:len(vb.decisions)-1]

	case *vhdl.ForStmt:
		dec := vb.node(NDecision, "for "+st.Var)
		for _, id := range vb.reads(st.Low) {
			vb.edge(id, dec)
		}
		for _, id := range vb.reads(st.High) {
			vb.edge(id, dec)
		}
		vb.guard(dec)
		vb.decisions = append(vb.decisions, dec)
		vb.stmts(st.Body)
		vb.decisions = vb.decisions[:len(vb.decisions)-1]

	case *vhdl.WhileStmt:
		dec := vb.node(NDecision, "while")
		for _, id := range vb.reads(st.Cond) {
			vb.edge(id, dec)
		}
		vb.guard(dec)
		vb.decisions = append(vb.decisions, dec)
		vb.stmts(st.Body)
		vb.decisions = vb.decisions[:len(vb.decisions)-1]

	case *vhdl.LoopStmt:
		dec := vb.node(NDecision, "loop")
		vb.guard(dec)
		vb.decisions = append(vb.decisions, dec)
		vb.stmts(st.Body)
		vb.decisions = vb.decisions[:len(vb.decisions)-1]

	case *vhdl.ExitStmt:
		dec := vb.node(NDecision, "exit")
		for _, id := range vb.reads(st.Cond) {
			vb.edge(id, dec)
		}
		vb.guard(dec)

	case *vhdl.CallStmt:
		call := vb.node(NCall, st.Name)
		for _, a := range st.Args {
			for _, id := range vb.reads(a) {
				vb.edge(id, call)
			}
		}
		vb.guard(call)

	case *vhdl.WaitStmt:
		n := vb.node(NSync, "wait")
		for _, sig := range st.OnSignals {
			vb.edge(vb.node(NReadVal, sig), n)
		}
		for _, id := range vb.reads(st.Until) {
			vb.edge(id, n)
		}
		vb.guard(n)

	case *vhdl.ReturnStmt:
		n := vb.node(NSync, "return")
		for _, id := range vb.reads(st.Value) {
			vb.edge(id, n)
		}
		vb.guard(n)
	}
}
