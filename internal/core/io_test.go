package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := tinyGraph(t)
	pt := split(t, g)

	var buf bytes.Buffer
	if err := Write(&buf, g, pt); err != nil {
		t.Fatal(err)
	}
	g2, pt2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
	if pt2 == nil {
		t.Fatal("partition lost")
	}
	for _, n := range g.Nodes {
		want := pt.BvComp(n).CompName()
		got := pt2.BvComp(g2.NodeByName(n.Name))
		if got == nil || got.CompName() != want {
			t.Errorf("node %s mapping: got %v, want %s", n.Name, got, want)
		}
	}
	for _, c := range g.Channels {
		c2 := g2.FindChannel(c.Src.Name, c.Dst.EndpointName())
		if pt2.ChanBus(c2) == nil || pt2.ChanBus(c2).Name != pt.ChanBus(c).Name {
			t.Errorf("channel %s bus mapping lost", c.Key())
		}
	}
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.Name != b.Name {
		t.Errorf("names %q vs %q", a.Name, b.Name)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats %+v vs %+v", a.Stats(), b.Stats())
	}
	for i, n := range a.Nodes {
		m := b.Nodes[i]
		if n.Name != m.Name || n.Kind != m.Kind || n.IsProcess != m.IsProcess || n.StorageBits != m.StorageBits {
			t.Errorf("node %d differs: %+v vs %+v", i, n, m)
		}
		if !reflect.DeepEqual(n.ICT, m.ICT) || !reflect.DeepEqual(n.Size, m.Size) {
			t.Errorf("node %s annotations differ", n.Name)
		}
	}
	for i, c := range a.Channels {
		d := b.Channels[i]
		if c.Key() != d.Key() || c.AccFreq != d.AccFreq || c.AccMin != d.AccMin ||
			c.AccMax != d.AccMax || c.Bits != d.Bits || c.Tag != d.Tag {
			t.Errorf("channel %d differs: %+v vs %+v", i, c, d)
		}
	}
	for i, p := range a.Procs {
		if *p != *b.Procs[i] {
			t.Errorf("proc %d differs", i)
		}
	}
	for i, m := range a.Mems {
		if *m != *b.Mems[i] {
			t.Errorf("mem %d differs", i)
		}
	}
	for i, bus := range a.Buses {
		if *bus != *b.Buses[i] {
			t.Errorf("bus %d differs", i)
		}
	}
	for i, p := range a.Ports {
		if *p != *b.Ports[i] {
			t.Errorf("port %d differs", i)
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	g := tinyGraph(t)
	var b1, b2 bytes.Buffer
	if err := Write(&b1, g, nil); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, g, nil); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("two writes of the same graph differ")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                        // no header
		"node x variable\n",       // record before header
		"slif g\nnode x bogus\n",  // bad node kind
		"slif g\nchan a b\n",      // malformed chan
		"slif g\nict ghost t 1\n", // unknown node
		"slif g\nwhat is this\n",  // unknown record
		"slif g\nport p sideways 8\n",
	}
	for _, src := range cases {
		if _, _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", src)
		}
	}
}

func TestReadRejectsDuplicateHeader(t *testing.T) {
	src := "slif g\nnode a process\nslif h\n"
	_, _, err := Read(strings.NewReader(src))
	if err == nil {
		t.Fatal("duplicate slif header accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error does not name the offending line: %v", err)
	}
}

func TestReadRecordCap(t *testing.T) {
	defer func(old int) { readMaxRecords = old }(readMaxRecords)
	readMaxRecords = 4

	var src strings.Builder
	src.WriteString("slif g\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&src, "node n%d variable\n", i)
	}
	_, _, err := Read(strings.NewReader(src.String()))
	if err == nil {
		t.Fatal("over-long stream accepted")
	}
	if !strings.Contains(err.Error(), "line 5") || !strings.Contains(err.Error(), "4 records") {
		t.Errorf("cap error missing line or limit: %v", err)
	}

	// At the cap exactly, the stream still parses.
	ok := "slif g\nnode a variable\nnode b variable\nnode c variable\n"
	if _, _, err := Read(strings.NewReader(ok)); err != nil {
		t.Errorf("stream at the cap rejected: %v", err)
	}
}

func TestReadErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		src  string
		line string
	}{
		{"slif g\nnode x bogus\n", "line 2"},
		{"slif g\nnode a process\nict ghost t 1\n", "line 3"},
		{"slif g\n\n# comment\nchan a b\n", "line 4"},
	}
	for _, c := range cases {
		_, _, err := Read(strings.NewReader(c.src))
		if err == nil {
			t.Errorf("Read(%q) succeeded, want error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.line) {
			t.Errorf("Read(%q) error %q does not mention %s", c.src, err, c.line)
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	src := "# header comment\n\nslif g\n# another\nnode a process\n"
	g, _, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeByName("a") == nil {
		t.Error("node lost")
	}
}

// randomGraph builds a structurally valid random SLIF for the round-trip
// property test.
func randomGraph(rng *rand.Rand) *Graph {
	g := NewGraph(fmt.Sprintf("g%d", rng.Intn(1000)))
	nBeh := 1 + rng.Intn(5)
	nVar := rng.Intn(5)
	nPort := rng.Intn(3)
	var behs []*Node
	for i := 0; i < nBeh; i++ {
		n := &Node{Name: fmt.Sprintf("b%d", i), Kind: BehaviorNode, IsProcess: rng.Intn(2) == 0}
		n.SetICT("t1", float64(rng.Intn(100)))
		n.SetSize("t1", float64(rng.Intn(1000)))
		_ = g.AddNode(n)
		behs = append(behs, n)
	}
	var ends []Endpoint
	for _, b := range behs {
		ends = append(ends, b)
	}
	for i := 0; i < nVar; i++ {
		n := &Node{Name: fmt.Sprintf("v%d", i), Kind: VariableNode, StorageBits: int64(rng.Intn(4096))}
		n.SetICT("t1", rng.Float64())
		n.SetSize("t1", float64(rng.Intn(100)))
		_ = g.AddNode(n)
		ends = append(ends, n)
	}
	for i := 0; i < nPort; i++ {
		p := &Port{Name: fmt.Sprintf("p%d", i), Dir: PortDir(rng.Intn(3)), Bits: 1 + rng.Intn(32)}
		_ = g.AddPort(p)
		ends = append(ends, p)
	}
	for tries := 0; tries < 10; tries++ {
		src := behs[rng.Intn(len(behs))]
		dst := ends[rng.Intn(len(ends))]
		mn := float64(rng.Intn(3))
		c := &Channel{
			Src: src, Dst: dst,
			AccFreq: mn + rng.Float64()*10, AccMin: mn, AccMax: mn + 100,
			Bits: rng.Intn(64), Tag: rng.Intn(4) - 1,
		}
		_ = g.AddChannel(c) // duplicates rejected, fine
	}
	g.AddProcessor(&Processor{Name: "P", TypeName: "t1", Custom: rng.Intn(2) == 0, SizeCon: float64(rng.Intn(10000)), PinCon: rng.Intn(100)})
	g.AddBus(&Bus{Name: "B", BitWidth: 1 + rng.Intn(64), TS: rng.Float64(), TD: rng.Float64() * 3})
	return g
}

// Property: Read(Write(g)) == g for arbitrary valid graphs.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		var buf bytes.Buffer
		if err := Write(&buf, g, nil); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		g2, _, err := Read(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		if g.Stats() != g2.Stats() || g.Name != g2.Name {
			return false
		}
		for i, c := range g.Channels {
			d := g2.Channels[i]
			if c.Key() != d.Key() || c.AccFreq != d.AccFreq || c.Bits != d.Bits || c.Tag != d.Tag {
				return false
			}
		}
		for _, n := range g.Nodes {
			m := g2.NodeByName(n.Name)
			if m == nil || !reflect.DeepEqual(n.ICT, m.ICT) || !reflect.DeepEqual(n.Size, m.Size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := tinyGraph(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"digraph", `"main"`, "style=bold", `"main" -> "sub"`, "shape=diamond"} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT output missing %q", frag)
		}
	}
}

func TestWriteDOTPartition(t *testing.T) {
	g := tinyGraph(t)
	pt := split(t, g)
	var buf bytes.Buffer
	if err := WriteDOTPartition(&buf, g, pt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"subgraph cluster_0", `label="cpu"`, `label="asic"`,
		`"main" -> "sub" [color=red]`, // crossing edge marked
		`"sub" -> "arr";`,             // internal edge unmarked
		`"out1" [shape=diamond]`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("partition DOT missing %q:\n%s", frag, out)
		}
	}
	// Partial partitions render unmapped nodes dashed.
	pt2 := NewPartition(g)
	_ = pt2.Assign(g.NodeByName("main"), g.ProcByName("cpu"))
	buf.Reset()
	if err := WriteDOTPartition(&buf, g, pt2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "style=dashed") {
		t.Error("unmapped nodes not marked")
	}
}

// TestReadRejectsNonPositiveBusWidth is the regression for the estimator
// div-by-zero: a zero or negative bus width must be rejected at parse time
// with a positioned error, never reaching the transfer-time math.
func TestReadRejectsNonPositiveBusWidth(t *testing.T) {
	for _, src := range []string{
		"slif g\nbus b width 0 ts 1 td 2\n",
		"slif g\nbus b width -3 ts 1 td 2\n",
	} {
		_, _, err := Read(strings.NewReader(src))
		if err == nil {
			t.Errorf("Read(%q) accepted a non-positive bus width", src)
			continue
		}
		if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "width") {
			t.Errorf("Read(%q) error %v does not name line and width", src, err)
		}
	}
}
