package core

import (
	"strings"
	"testing"
)

// split maps main+v to the cpu, sub+arr to the asic, all channels to the bus.
func split(t testing.TB, g *Graph) *Partition {
	t.Helper()
	pt := NewPartition(g)
	cpu, asic := g.ProcByName("cpu"), g.ProcByName("asic")
	assign := func(name string, c Component) {
		if err := pt.Assign(g.NodeByName(name), c); err != nil {
			t.Fatal(err)
		}
	}
	assign("main", cpu)
	assign("v", cpu)
	assign("sub", asic)
	assign("arr", asic)
	for _, c := range g.Channels {
		pt.AssignChan(c, g.Buses[0])
	}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestPartitionQueries(t *testing.T) {
	g := tinyGraph(t)
	pt := split(t, g)
	cpu, asic := g.ProcByName("cpu"), g.ProcByName("asic")

	if pt.BvComp(g.NodeByName("main")) != cpu {
		t.Error("BvComp(main) wrong")
	}
	if got := pt.NodesOn(asic); len(got) != 2 {
		t.Errorf("NodesOn(asic) = %d", len(got))
	}
	if got := pt.ChansOn(g.Buses[0]); len(got) != 4 {
		t.Errorf("ChansOn = %d", len(got))
	}
	if ict, ok := pt.BvIct(g.NodeByName("main"), cpu); !ok || ict != 10 {
		t.Errorf("BvIct = %v,%v", ict, ok)
	}
	if sz, ok := pt.BvSize(g.NodeByName("arr"), asic); !ok || sz != 8192 {
		t.Errorf("BvSize = %v,%v", sz, ok)
	}
	// DstComp of a port channel is nil.
	if pt.DstComp(g.FindChannel("main", "out1")) != nil {
		t.Error("port destination should have nil component")
	}
}

func TestBehaviorOnlyToProcessor(t *testing.T) {
	g := tinyGraph(t)
	pt := NewPartition(g)
	if err := pt.Assign(g.NodeByName("main"), g.MemByName("ram")); err == nil {
		t.Error("behavior assigned to memory")
	}
	if err := pt.Assign(g.NodeByName("arr"), g.MemByName("ram")); err != nil {
		t.Errorf("variable to memory rejected: %v", err)
	}
}

func TestCutChansAndBuses(t *testing.T) {
	g := tinyGraph(t)
	pt := split(t, g)
	cpu, asic := g.ProcByName("cpu"), g.ProcByName("asic")

	// main(cpu)→sub(asic) cut; main→v internal; main→out1 cut (port);
	// sub(asic)→arr(asic) internal.
	cut := pt.CutChans(cpu)
	if len(cut) != 2 {
		t.Fatalf("CutChans(cpu) = %d, want 2", len(cut))
	}
	keys := map[string]bool{}
	for _, c := range cut {
		keys[c.Key()] = true
	}
	if !keys["main->sub"] || !keys["main->out1"] {
		t.Errorf("cut set: %v", keys)
	}
	// For the asic, only the call channel crosses (arr is internal,
	// out1 is not on the asic side at all).
	if got := pt.CutChans(asic); len(got) != 1 || got[0].Key() != "main->sub" {
		t.Errorf("CutChans(asic): %v", got)
	}
	// Both cut channels ride one bus: it must be reported once.
	if got := pt.CutBuses(cpu); len(got) != 1 {
		t.Errorf("CutBuses(cpu) = %d, want 1", len(got))
	}
}

func TestValidateReportsAllProblems(t *testing.T) {
	g := tinyGraph(t)
	pt := NewPartition(g)
	// Nothing mapped: every node and channel should be named.
	err := pt.Validate()
	if err == nil {
		t.Fatal("empty partition validated")
	}
	for _, frag := range []string{"main", "sub", "arr", `"v"`, "main->sub"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error does not mention %s: %v", frag, err)
		}
	}
}

func TestValidateForeignMappings(t *testing.T) {
	g := tinyGraph(t)
	pt := split(t, g)
	other := tinyGraph(t)
	// Smuggle a mapping for a node of a different graph.
	pt.bvComp[other.NodeByName("main")] = g.ProcByName("cpu")
	if err := pt.Validate(); err == nil || !strings.Contains(err.Error(), "foreign") {
		t.Errorf("foreign mapping not caught: %v", err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := tinyGraph(t)
	pt := split(t, g)
	cl := pt.Clone()
	if err := cl.Assign(g.NodeByName("v"), g.MemByName("ram")); err != nil {
		t.Fatal(err)
	}
	if pt.BvComp(g.NodeByName("v")) == Component(g.MemByName("ram")) {
		t.Error("clone shares mapping state")
	}
}

func TestAllToProcessor(t *testing.T) {
	g := tinyGraph(t)
	pt := AllToProcessor(g, g.ProcByName("cpu"), g.Buses[0])
	if err := pt.Validate(); err != nil {
		t.Fatalf("all-software partition invalid: %v", err)
	}
	if len(pt.NodesOn(g.ProcByName("cpu"))) != 4 {
		t.Error("not everything on the cpu")
	}
	// Nothing crosses except port traffic.
	if got := pt.CutChans(g.ProcByName("cpu")); len(got) != 1 {
		t.Errorf("cut channels = %d, want 1 (the port write)", len(got))
	}
}

func TestPartitionString(t *testing.T) {
	g := tinyGraph(t)
	pt := split(t, g)
	s := pt.String()
	for _, frag := range []string{"cpu:", "asic:", "ram:", "bus:", "main", "arr"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}
