// FuzzCompile lives in an external test package so it can hold the
// compiled snapshot's costs to the pointer-walking estimation path, which
// needs the estimate and partition packages (both import core).
package core_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"specsyn/internal/core"
	"specsyn/internal/estimate"
	"specsyn/internal/partition"
)

// FuzzCompile drives core.Compile with arbitrary .slif streams.
// Invariants on any Read-accepted graph:
//
//  1. Compile never panics, and is deterministic: two compiles agree on
//     error-ness, and on success serialize byte-identically.
//  2. The snapshot cost path (delta evaluator over the compiled arrays)
//     agrees with the pointer-oracle full cost — same error-ness, and
//     costs within 1e-9 — for the everything-on-one-processor mapping.
func FuzzCompile(f *testing.F) {
	var golden bytes.Buffer
	g := core.NewGraph("seed")
	main := &core.Node{Name: "main", Kind: core.BehaviorNode, IsProcess: true}
	v := &core.Node{Name: "v", Kind: core.VariableNode, StorageBits: 64}
	for _, n := range []*core.Node{main, v} {
		if err := g.AddNode(n); err != nil {
			f.Fatal(err)
		}
		n.SetICT("t", 2)
		n.SetSize("t", 10)
	}
	if err := g.AddPort(&core.Port{Name: "p", Dir: core.In, Bits: 8}); err != nil {
		f.Fatal(err)
	}
	for _, c := range []*core.Channel{
		{Src: main, Dst: v, AccFreq: 3, Bits: 16, Tag: core.NoTag},
		{Src: main, Dst: g.PortByName("p"), AccFreq: 1, Bits: 8, Tag: core.NoTag},
	} {
		if err := g.AddChannel(c); err != nil {
			f.Fatal(err)
		}
	}
	g.AddProcessor(&core.Processor{Name: "cpu", TypeName: "t", SizeCon: 4096, PinCon: 40})
	g.AddBus(&core.Bus{Name: "bus", BitWidth: 16, TS: 0.05, TD: 0.4})
	if err := core.Write(&golden, g, nil); err != nil {
		f.Fatal(err)
	}

	f.Add(golden.String())
	f.Add("slif x\nnode a process\n")
	f.Add("slif x\nnode a process\nproc p t std sizecon 1 pincon 2\nproc p t std sizecon 1 pincon 2\n")                                      // duplicate comp name
	f.Add("slif x\nnode a process\nnode b behavior\nchan a b freq 1 min 0 max 2 bits 8 tag -1\nchan b a freq 1 min 0 max 2 bits 8 tag -1\n") // cycle
	f.Add("slif x\nnode a process\nict a t 1\nsize a t 2\nproc p t std sizecon 0 pincon 0\nbus b width 0 ts 1 td 2\n")                       // zero-width bus
	f.Add("slif x\nnode a process\nproc p t std sizecon 1 pincon 2\nmem p t sizecon 8\nbus b width 8 ts 1 td 2\n")                           // proc/mem name clash
	f.Fuzz(func(t *testing.T, src string) {
		g, _, err := core.Read(strings.NewReader(src))
		if err != nil {
			return
		}
		s1, err1 := core.Compile(g)
		s2, err2 := core.Compile(g)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Compile nondeterministic error-ness: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return // e.g. duplicate component names, which Read does not police
		}
		b1, mErr1 := s1.MarshalBinary()
		b2, mErr2 := s2.MarshalBinary()
		if mErr1 != nil || mErr2 != nil {
			t.Fatalf("MarshalBinary: %v / %v", mErr1, mErr2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("two compiles of one graph serialize differently")
		}

		// Cost differential needs somewhere to put everything.
		if len(g.Procs) == 0 || len(g.Buses) == 0 {
			return
		}
		pt := core.AllToProcessor(g, g.Procs[0], g.Buses[0])
		ev := partition.NewEvaluator(g, partition.Constraints{},
			partition.Weights{Size: 1, Pins: 1, Time: 1, Comm: 0.1, Rate: 1}, estimate.Options{})
		want, wantErr := ev.Cost(pt)
		d, dErr := ev.Delta(pt, partition.SingleBus(g.Buses[0]))
		if dErr != nil {
			// Graphs the incremental path cannot serve (access cycles)
			// must also be unservable — or at least not silently costed —
			// which Delta signals by refusing to bind. Nothing to compare.
			return
		}
		got, gotErr := d.Cost()
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("cost error-ness differs: full=%v delta=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("delta cost %v != full cost %v", got, want)
		}
	})
}
